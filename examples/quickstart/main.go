// Quickstart: build the paper's generic multi-channel foundation model
// (Fig. 1), run it serially and with the D-CHAG channel stage over two
// simulated ranks, and verify that both produce the same predictions while
// D-CHAG's backward pass performs zero communication.
package main

import (
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func main() {
	log.SetFlags(0)
	// A small model: 16 channels of 8x8 images, patch 2 (16 spatial tokens),
	// 16-dim embeddings, 2 transformer blocks.
	arch := model.Arch{
		Config: core.Config{
			Channels: 16, ImgH: 8, ImgW: 8, Patch: 2,
			Embed: 16, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 42,
		},
		Depth:      2,
		MetaTokens: 1,
	}
	fmt.Printf("architecture: %d channels, %d tokens, %d params (serial)\n",
		arch.Channels, arch.Tokens(), arch.ParamCount())

	// A random multi-channel image batch.
	rng := tensor.NewRNG(7)
	x := tensor.Randn(rng, 2, arch.Channels, arch.ImgH, arch.ImgW)

	// Serial model mathematically equivalent to D-CHAG over 2 ranks.
	serial := model.NewSerialDCHAGEquivalent(arch, 2)
	want := serial.Forward(x, nil)
	fmt.Printf("serial prediction shape: %v\n", want.Shape)

	// The same model distributed over two simulated ranks: each rank holds
	// half of the channels and the full spatial batch.
	group, err := comm.Run(2, func(c *comm.Communicator) error {
		m := model.NewDistributed(arch, c, false)
		stage := m.Stage.(*model.DCHAGStage)
		lo, hi := stage.ChannelBounds()
		c.SetPhase("forward")
		pred := m.Forward(tensor.SliceAxis(x, 1, lo, hi), nil)
		if diff := tensor.MaxAbsDiff(pred, want); diff > 1e-9 {
			return fmt.Errorf("rank %d diverges from serial by %g", c.Rank(), diff)
		}
		c.SetPhase("backward")
		nn.ZeroGrads(m.Params())
		m.Backward(tensor.Ones(pred.Shape...))
		fmt.Printf("rank %d: channels [%d,%d), prediction matches serial exactly\n", c.Rank(), lo, hi)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forward communication: %d bytes (one token per rank AllGather)\n",
		group.Traffic().BytesInPhase("forward"))
	fmt.Printf("backward communication: %d bytes (the paper's zero-comm claim)\n",
		group.Traffic().BytesInPhase("backward"))
}
