// Weather forecasting: the paper's Sec. 5.2 evaluation at reduced scale.
// Trains the ClimaX-like image-to-image forecaster on the synthetic ERA5
// substitute (80 channels: 5 variables x 15 pressure levels + surface +
// static fields, regridded with the bilinear xESMF substitute), comparing
// the baseline with D-CHAG-C and D-CHAG-L on four simulated ranks, and
// evaluates Z500 / T850 / U10 RMSE on held-out steps.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	const (
		steps = 24
		batch = 2
		gridH = 8
		gridW = 16
		ranks = 4
	)
	w := data.NewWeather(data.WeatherConfig{NativeH: 32, NativeW: 64, Steps: 256, DtHours: 6, Seed: 515})
	fmt.Printf("synthetic ERA5: %d channels on %dx%d (regridded from %dx%d)\n",
		w.Channels(), gridH, gridW, 32, 64)

	arch := model.Arch{
		Config: core.Config{
			Channels: w.Channels(), ImgH: gridH, ImgW: gridW, Patch: 2,
			Embed: 16, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 1202,
		},
		Depth:      2,
		MetaTokens: 1,
	}
	xs := make([]*tensor.Tensor, steps)
	ys := make([]*tensor.Tensor, steps)
	for s := 0; s < steps; s++ {
		xs[s], ys[s] = w.PairBatch(s*batch, batch, 1, gridH, gridW)
	}
	batchFn := func(s int) (*tensor.Tensor, *tensor.Tensor) { return xs[s], ys[s] }
	opts := train.Options{Steps: steps, Batch: batch, LR: 3e-3, ClipNorm: 1, Seed: 12}

	evalX, evalY := w.PairBatch(steps*batch+16, 4, 1, gridH, gridW)
	chans := []int{w.ChannelIndex("z500"), w.ChannelIndex("t850"), w.ChannelIndex("u10")}
	names := []string{"Z500", "T850", "U10"}

	fmt.Println("training baseline (1 rank) ...")
	baseModel := model.NewSerial(arch)
	baseline := train.Serial(baseModel, opts, batchFn)
	baseRMSE := train.EvalForecastRMSE(baseModel, []*tensor.Tensor{evalX}, []*tensor.Tensor{evalY}, chans)

	type variant struct {
		kind core.LayerKind
		hist train.History
		rmse map[int]float64
	}
	variants := []*variant{{kind: core.KindCross}, {kind: core.KindLinear}}
	for _, v := range variants {
		a := arch
		a.Kind = v.kind
		fmt.Printf("training D-CHAG-%s (%d simulated ranks) ...\n", v.kind, ranks)
		hist, group, err := train.Distributed(a, ranks, false, opts, batchFn)
		if err != nil {
			log.Fatal(err)
		}
		if b := group.Traffic().BytesInPhase("backward"); b != 0 {
			log.Fatalf("unexpected backward communication: %d bytes", b)
		}
		v.hist = hist
		eq := model.NewSerialDCHAGEquivalent(a, ranks)
		train.Serial(eq, opts, batchFn)
		v.rmse = train.EvalForecastRMSE(eq, []*tensor.Tensor{evalX}, []*tensor.Tensor{evalY}, chans)
	}

	fmt.Printf("\n%-6s %-12s %-12s %-12s\n", "step", "baseline", "D-CHAG-C", "D-CHAG-L")
	for s := 0; s < steps; s += 4 {
		fmt.Printf("%-6d %-12.6f %-12.6f %-12.6f\n", s, baseline.Loss[s], variants[0].hist.Loss[s], variants[1].hist.Loss[s])
	}
	fmt.Printf("%-6d %-12.6f %-12.6f %-12.6f\n", steps-1, baseline.Last(), variants[0].hist.Last(), variants[1].hist.Last())

	fmt.Printf("\nheld-out latitude-weighted RMSE:\n%-6s %-10s %-10s %-10s\n", "var", "baseline", "D-CHAG-C", "D-CHAG-L")
	for i, ch := range chans {
		fmt.Printf("%-6s %-10.5f %-10.5f %-10.5f\n", names[i], baseRMSE[ch], variants[0].rmse[ch], variants[1].rmse[ch])
	}
	fmt.Println("\npaper: training losses match almost exactly; test RMSE within ~1%")
}
