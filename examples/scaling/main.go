// Scaling study: uses the analytic performance model to answer the paper's
// Sec. 6 questions for any model size — where TP alone stops fitting, what
// D-CHAG saves, and what the hybrid configuration sustains at scale.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

func main() {
	machine := hw.Frontier()
	cal := perfmodel.DefaultCalibration()

	fmt.Println("Feasibility frontier (minimum TP to fit, micro-batch 4):")
	fmt.Printf("%-6s %-10s %-14s %-14s\n", "model", "channels", "TP baseline", "D-CHAG-L")
	for _, name := range []string{"1.7B", "7B", "15B", "26B"} {
		shape := perfmodel.Shapes[name]
		for _, ch := range []int{128, 256, 512, 1024} {
			wl := perfmodel.ReferenceWorkload(ch)
			base := perfmodel.MinTPToFit(shape, wl, perfmodel.Strategy{Method: perfmodel.MethodBaseline}, machine, cal, 32)
			dchag := perfmodel.MinTPToFit(shape, wl, perfmodel.Strategy{
				Method: perfmodel.MethodDCHAG, Tree: 0, Kind: core.KindLinear,
			}, machine, cal, 32)
			fmt.Printf("%-6s %-10d %-14s %-14s\n", name, ch, tpStr(base), tpStr(dchag))
		}
	}

	fmt.Println("\nHybrid throughput projection, 7B @ 500 channels (max micro-batch):")
	fmt.Printf("%-8s %-20s %-20s %-8s\n", "GCDs", "baseline TFLOPs/s", "hybrid TFLOPs/s", "gain")
	shape := perfmodel.Shapes["7B"]
	for _, gpus := range []int{16, 64, 256, 1024} {
		base := perfmodel.Strategy{Method: perfmodel.MethodBaseline, TP: 8, FSDP: 2, DP: gpus / 16}
		hyb := perfmodel.Strategy{Method: perfmodel.MethodDCHAG, TP: 2, FSDP: 4, DP: gpus / 8, Tree: 0, Kind: core.KindLinear}
		tb := throughputAtMaxBatch(shape, base, machine, cal)
		th := throughputAtMaxBatch(shape, hyb, machine, cal)
		fmt.Printf("%-8d %-20.0f %-20.0f %+.0f%%\n", gpus, tb, th, 100*(th/tb-1))
	}
}

func tpStr(tp int) string {
	if tp == 0 {
		return "infeasible"
	}
	return fmt.Sprintf("TP=%d", tp)
}

func throughputAtMaxBatch(shape perfmodel.ModelShape, s perfmodel.Strategy, machine hw.Machine, cal perfmodel.Calibration) float64 {
	wl := perfmodel.ReferenceWorkload(500)
	wl.MicroBatch = 1
	b := perfmodel.MaxMicroBatch(shape, wl, s, machine, cal)
	if b == 0 {
		return 0
	}
	wl.MicroBatch = b
	return perfmodel.Analyze(shape, wl, s, machine, cal).TFLOPsPerSec()
}
