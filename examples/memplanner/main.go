// Memory planner: walks through the paper's feasibility story (Secs. 4.2,
// 4.3 and 6.1) using the analytic performance model as a library — from
// "what fits on one GCD" through "where TP becomes necessary" to "what only
// D-CHAG can fit" — and prints the per-component breakdown behind each
// answer.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

func main() {
	machine := hw.Frontier()
	cal := perfmodel.DefaultCalibration()

	fmt.Println("1. Single-GCD limits (paper Fig. 6):")
	for _, name := range []string{"100M", "1B", "3B"} {
		shape := perfmodel.Shapes[name]
		maxCh := 0
		for ch := 32; ch <= 2048; ch *= 2 {
			r := perfmodel.Analyze(shape, perfmodel.ReferenceWorkload(ch), perfmodel.Strategy{Method: perfmodel.MethodBaseline}, machine, cal)
			if r.Fits() {
				maxCh = ch
			}
		}
		fmt.Printf("   %-5s handles up to %d channels on one GCD\n", name, maxCh)
	}

	fmt.Println("\n2. Where the memory goes (7B, 512 channels, TP=16):")
	r := perfmodel.Analyze(perfmodel.Shapes["7B"], perfmodel.ReferenceWorkload(512),
		perfmodel.Strategy{Method: perfmodel.MethodBaseline, TP: 16}, machine, cal)
	for _, c := range perfmodel.Components {
		fmt.Printf("   %-13s %6.1f GiB (act %.1f + state %.1f)\n",
			c, r.ComponentMemBytes(c)/(1<<30), r.ActBytes[c]/(1<<30), r.StateBytes[c]/(1<<30))
	}
	fmt.Printf("   total %.1f GiB of %.1f usable\n", r.TotalMemBytes()/(1<<30), float64(machine.UsableMemBytes())/(1<<30))

	fmt.Println("\n3. What only D-CHAG can do (paper Fig. 14):")
	shape := perfmodel.Shapes["26B"]
	wl := perfmodel.ReferenceWorkload(512)
	base := perfmodel.MinTPToFit(shape, wl, perfmodel.Strategy{Method: perfmodel.MethodBaseline}, machine, cal, 8)
	dchag := perfmodel.MinTPToFit(shape, wl, perfmodel.Strategy{
		Method: perfmodel.MethodDCHAG, Tree: 0, Kind: core.KindLinear,
	}, machine, cal, 8)
	fmt.Printf("   26B @ 512 channels, TP within one node: baseline %s, D-CHAG-L %s\n",
		feas(base), feas(dchag))

	fmt.Println("\n4. Freed memory becomes batch (paper Fig. 15):")
	for _, s := range []perfmodel.Strategy{
		{Method: perfmodel.MethodBaseline, TP: 16},
		{Method: perfmodel.MethodDCHAG, TP: 2, FSDP: 8, Tree: 0, Kind: core.KindLinear},
	} {
		w := perfmodel.ReferenceWorkload(500)
		w.MicroBatch = 1
		b := perfmodel.MaxMicroBatch(perfmodel.Shapes["7B"], w, s, machine, cal)
		fmt.Printf("   %-34s max micro-batch %d\n", s.Label(), b)
	}
}

func feas(tp int) string {
	if tp == 0 {
		return "infeasible"
	}
	return fmt.Sprintf("fits at TP=%d", tp)
}
