// Biogeochemistry: the paper's introduction cites E3SM land-model outputs
// with over 500 channels as a motivating workload. This example runs MAE
// pretraining on a synthetic 500-channel soil-column dataset with D-CHAG
// over four simulated ranks, and contrasts Tree0 with deeper partial-module
// trees at a channel count where the hierarchy matters (125 channels per
// rank).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	const (
		steps = 12
		batch = 2
		ranks = 4
	)
	gen := data.NewBiogeochem(data.DefaultBiogeochem(8, 8))
	fmt.Printf("synthetic E3SM biogeochemistry: %d channels (%d variables x %d layers) on %dx%d\n",
		gen.Channels(), gen.Cfg.Variables, gen.Cfg.Layers, gen.Cfg.GridH, gen.Cfg.GridW)

	arch := model.Arch{
		Config: core.Config{
			Channels: gen.Channels(), ImgH: 8, ImgW: 8, Patch: 2,
			Embed: 16, Heads: 2, Tree: 4, Kind: core.KindLinear, Seed: 3350,
		},
		Depth:      2,
		MetaTokens: 1,
	}
	batches := make([]*tensor.Tensor, steps)
	for s := range batches {
		batches[s] = gen.Batch(s*batch, batch)
	}
	batchFn := func(s int) (*tensor.Tensor, *tensor.Tensor) { return batches[s], batches[s] }
	opts := train.Options{Steps: steps, Batch: batch, LR: 3e-3, ClipNorm: 1, MaskRatio: 0.5, Seed: 33}

	fmt.Printf("training D-CHAG-L-Tree%d over %d ranks (%d channels per rank) ...\n",
		arch.Tree, ranks, gen.Channels()/ranks)
	hist, group, err := train.Distributed(arch, ranks, false, opts, batchFn)
	if err != nil {
		log.Fatal(err)
	}
	for s := 0; s < steps; s += 3 {
		fmt.Printf("step %3d  loss %.6f\n", s, hist.Loss[s])
	}
	fmt.Printf("step %3d  loss %.6f\n", steps-1, hist.Last())
	fmt.Printf("backward communication: %d bytes\n", group.Traffic().BytesInPhase("backward"))

	// The Sec. 3.2 trade-off at 125 channels per rank: deeper trees shrink
	// the largest aggregation group while adding (tiny, for -L) parameters.
	fmt.Println("\npartial-module layouts at 125 channels/rank:")
	for _, tree := range []int{0, 2, 4, 8} {
		plan := core.BuildTreePlan(gen.Channels()/ranks, tree)
		agg := core.NewHierarchicalAggregator("probe", plan, core.KindLinear, arch.Embed, arch.Heads, 1)
		fmt.Printf("  Tree%-2d max group %3d, layers %d, params %d\n",
			tree, plan.MaxGroup(), plan.NumLayers(), nn.NumParams(agg.Params()))
	}
}
