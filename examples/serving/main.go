// Serving: demonstrate the async, batched inference path (internal/serve)
// end to end. A D-CHAG model with 4 logical channel partitions is trained
// for a few steps on 4 simulated ranks and checkpointed; the checkpoint is
// then served — resharded to 2 ranks x 2 replicas — behind a bounded queue
// and a dynamic micro-batcher. Requests arrive on a mix of grids and
// channel subsets (the batcher regrids and zero-fills), a concurrent burst
// shows micro-batching in action, and the served answers match the serial
// restore of the same checkpoint bit for bit.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	const (
		partitions = 4
		steps      = 5
		batchSize  = 2
	)
	arch := model.Arch{
		Config: core.Config{
			Channels: 8, ImgH: 8, ImgW: 8, Patch: 2,
			Embed: 16, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 42,
		},
		Depth: 1, MetaTokens: 1, Partitions: partitions,
	}

	// Train at 4 ranks and checkpoint (one shard per rank + manifest; the
	// manifest records the architecture, so serving needs no other config).
	gen := data.NewHyperspectral(data.HyperspectralConfig{
		Images: steps * batchSize, Channels: arch.Channels, ImgH: 8, ImgW: 8,
		Endmembers: 3, Noise: 0.01, Seed: 7,
	})
	batch := func(s int) (*tensor.Tensor, *tensor.Tensor) {
		x := gen.Batch(s*batchSize, batchSize)
		return x, x
	}
	dir, err := os.MkdirTemp("", "dchag-serving-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	opts := train.Options{
		Steps: steps, Batch: batchSize, LR: 1e-2, MaskRatio: 0.5, Seed: 3,
		CheckpointDir: dir,
	}
	if _, _, err := train.Distributed(arch, partitions, false, opts, batch); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %d steps at %d ranks, checkpointed to %s\n", steps, partitions, dir)

	// Serve the checkpoint at a different topology: 2 ranks per replica,
	// 2 replicas, micro-batches of up to 4 with a 5ms deadline.
	src, err := serve.FromCheckpoint(dir)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := serve.Start(serve.Config{
		Ranks: 2, Replicas: 2, MaxBatch: 4, MaxWait: 5 * time.Millisecond,
	}, src)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := engine.Close(); err != nil {
			log.Printf("engine close: %v", err)
		}
	}()
	fmt.Printf("serving resharded 4 -> 2 ranks x 2 replicas\n\n")

	// A serial (1-rank) engine over the same checkpoint is the correctness
	// oracle: same logical model, different serving topology.
	oracleSrc, err := serve.FromCheckpoint(dir)
	if err != nil {
		log.Fatal(err)
	}
	serialEngine, err := serve.Start(serve.Config{Ranks: 1, Replicas: 1, MaxBatch: 1}, oracleSrc)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := serialEngine.Close(); err != nil {
			log.Printf("serial engine close: %v", err)
		}
	}()

	rng := tensor.NewRNG(99)
	check := func(name string, req *serve.Request) {
		resp, err := engine.Do(context.Background(), req)
		if err != nil {
			log.Fatal(err)
		}
		want, err := serialEngine.Do(context.Background(), &serve.Request{
			ID: req.ID, Input: req.Input, Channels: req.Channels,
		})
		if err != nil {
			log.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(resp.Output, want.Output); d != 0 {
			log.Fatalf("%s: resharded serving differs from serial restore by %g", name, d)
		}
		fmt.Printf("%-18s batch=%d queued=%v total=%v (matches serial restore bitwise)\n",
			name, resp.BatchSize, resp.Queued.Round(time.Microsecond), resp.Total.Round(time.Microsecond))
	}

	// A native-grid request, a coarse-grid request (regridded on admission),
	// and a partial channel set (missing channels zero-filled).
	check("native-grid", &serve.Request{ID: "a", Input: tensor.Randn(rng, arch.Channels, 8, 8)})
	check("coarse-grid", &serve.Request{ID: "b", Input: tensor.Randn(rng, arch.Channels, 4, 4)})
	check("partial-channels", &serve.Request{
		ID: "c", Input: tensor.Randn(rng, 3, 8, 8), Channels: []int{0, 3, 6},
	})

	// A concurrent burst: the micro-batcher coalesces what the queue holds.
	before := engine.Metrics().Snapshot().Batches
	var wg sync.WaitGroup
	sizes := make([]int, 12)
	for i := range sizes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := engine.Do(context.Background(), &serve.Request{
				Input: tensor.Randn(tensor.NewRNG(int64(i)), arch.Channels, 8, 8),
			})
			if err != nil {
				log.Fatal(err)
			}
			sizes[i] = resp.BatchSize
		}(i)
	}
	wg.Wait()
	snap := engine.Metrics().Snapshot()
	burst := snap.Batches - before
	fmt.Printf("\nburst of %d concurrent requests: %d batches, mean %.1f req/batch\n",
		len(sizes), burst, float64(len(sizes))/float64(burst))
	fmt.Printf("engine totals: %d served, p50 %.2fms, p99 %.2fms\n",
		snap.Completed, snap.TotalP50Ms, snap.TotalP99Ms)
}
