// Hyperspectral MAE: the paper's Sec. 5.1 evaluation at reduced scale.
// Trains a masked autoencoder on synthetic VNIR plant images (the APPL
// substitute) twice — the single-rank baseline architecture and D-CHAG-L
// over two simulated ranks — with identical hyperparameters, then compares
// the loss curves and reconstructs a held-out image.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	const (
		channels = 32
		steps    = 40
		batch    = 4
	)
	arch := model.Arch{
		Config: core.Config{
			Channels: channels, ImgH: 8, ImgW: 8, Patch: 2,
			Embed: 16, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 4094,
		},
		Depth:      2,
		MetaTokens: 1,
	}
	gen := data.NewHyperspectral(data.HyperspectralConfig{
		Images: 494, Channels: channels, ImgH: 8, ImgW: 8,
		Endmembers: 4, Noise: 0.01, Seed: 4094,
	})
	batches := make([]*tensor.Tensor, steps)
	for s := range batches {
		batches[s] = gen.Batch(s*batch, batch)
	}
	batchFn := func(s int) (*tensor.Tensor, *tensor.Tensor) { return batches[s], batches[s] }
	opts := train.Options{Steps: steps, Batch: batch, LR: 3e-3, ClipNorm: 1, MaskRatio: 0.5, Seed: 11}

	fmt.Println("training baseline (1 rank) ...")
	baseline := train.Serial(model.NewSerial(arch), opts, batchFn)
	fmt.Println("training D-CHAG-L (2 simulated ranks) ...")
	dchag, group, err := train.Distributed(arch, 2, false, opts, batchFn)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-6s %-12s %-12s\n", "step", "baseline", "D-CHAG-L")
	for s := 0; s < steps; s += 5 {
		fmt.Printf("%-6d %-12.6f %-12.6f\n", s, baseline.Loss[s], dchag.Loss[s])
	}
	fmt.Printf("%-6d %-12.6f %-12.6f\n", steps-1, baseline.Last(), dchag.Last())
	fmt.Printf("\nfinal losses within %.1f%% (paper: 'good agreement')\n",
		100*math.Abs(baseline.Last()-dchag.Last())/baseline.Last())
	fmt.Printf("backward-pass communication: %d bytes\n", group.Traffic().BytesInPhase("backward"))

	// Reconstruct a held-out image with the D-CHAG-trained weights (via the
	// serial mathematical equivalent) and report per-band error, the
	// counterpart of the paper's pseudo-RGB reconstruction panel.
	eq := model.NewSerialDCHAGEquivalent(arch, 2)
	train.Serial(eq, opts, batchFn)
	held := gen.Batch(steps*batch+3, 1)
	recon := eq.PredictImage(held)
	var worst float64
	total := 0.0
	for c := 0; c < channels; c++ {
		bandMSE := 0.0
		for p := 0; p < arch.ImgH*arch.ImgW; p++ {
			d := recon.Data[c*arch.ImgH*arch.ImgW+p] - held.Data[c*arch.ImgH*arch.ImgW+p]
			bandMSE += d * d
		}
		bandMSE /= float64(arch.ImgH * arch.ImgW)
		total += bandMSE
		if bandMSE > worst {
			worst = bandMSE
		}
	}
	fmt.Printf("held-out reconstruction: mean band MSE %.5f, worst band %.5f\n",
		total/float64(channels), worst)

	// Pseudo-RGB rendering of original vs reconstruction (the paper's
	// Fig. 11 visualization), printed as mean per-plane difference.
	orig3 := held.Reshape(channels, arch.ImgH, arch.ImgW)
	rgbOrig := data.PseudoRGB(orig3, -1, -1, -1)
	rgbRecon := data.PseudoRGB(recon.Reshape(channels, arch.ImgH, arch.ImgW), -1, -1, -1)
	diff := 0.0
	for i := range rgbOrig.Data {
		diff += abs(rgbOrig.Data[i] - rgbRecon.Data[i])
	}
	fmt.Printf("pseudo-RGB mean abs difference (original vs reconstruction): %.4f\n",
		diff/float64(len(rgbOrig.Data)))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
