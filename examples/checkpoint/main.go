// Checkpoint: demonstrate shard-aware, reshardable checkpointing
// (internal/ckpt). A D-CHAG model with 4 logical channel partitions is
// trained for a few steps on 4 simulated ranks and checkpointed (one shard
// file per rank plus a manifest); the run is then resumed — exactly, Adam
// moments and mask stream included — on 2 ranks and serially, and all three
// continuations produce bit-identical loss trajectories, because a
// checkpoint describes the logical model, not the topology that saved it.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	const (
		partitions = 4
		steps      = 6
		half       = 3
		batchSize  = 2
	)
	arch := model.Arch{
		Config: core.Config{
			Channels: 8, ImgH: 8, ImgW: 8, Patch: 2,
			Embed: 16, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 42,
		},
		Depth: 1, MetaTokens: 1, Partitions: partitions,
	}
	gen := data.NewHyperspectral(data.HyperspectralConfig{
		Images: steps * batchSize, Channels: arch.Channels, ImgH: 8, ImgW: 8,
		Endmembers: 3, Noise: 0.01, Seed: 7,
	})
	batch := func(s int) (*tensor.Tensor, *tensor.Tensor) {
		x := gen.Batch(s*batchSize, batchSize)
		return x, x
	}
	opts := train.Options{Steps: steps, Batch: batchSize, LR: 1e-2, MaskRatio: 0.5, Seed: 3, ClipNorm: 1}

	// The uninterrupted reference trajectory.
	full, _, err := train.Distributed(arch, partitions, false, opts, batch)
	if err != nil {
		log.Fatal(err)
	}

	// Train half the steps on 4 ranks and checkpoint.
	dir, err := os.MkdirTemp("", "dchag-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	firstOpts := opts
	firstOpts.Steps = half
	firstOpts.CheckpointDir = dir
	if _, _, err := train.Distributed(arch, partitions, false, firstOpts, batch); err != nil {
		log.Fatal(err)
	}
	man, err := ckpt.ReadManifest(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: step %d, %d shards, %d logical partitions\n",
		man.Step, man.World, man.Partitions)

	// Resume on 2 ranks and serially: same logical model, same trajectory.
	// Each continuation resumes from its own copy, since resumed runs write
	// their next checkpoint into the directory they resume from.
	resume := opts
	resume.Resume = true
	resume.CheckpointDir = copyDir(dir)
	twoRank, _, err := train.Distributed(arch, 2, false, resume, batch)
	if err != nil {
		log.Fatal(err)
	}
	os.RemoveAll(resume.CheckpointDir)
	resume.CheckpointDir = copyDir(dir)
	serial, err := train.SerialCheckpointed(model.NewSerialDCHAGEquivalent(arch, partitions), resume, batch)
	if err != nil {
		log.Fatal(err)
	}
	os.RemoveAll(resume.CheckpointDir)

	// Across topologies the trajectories agree to float64 round-off (the
	// distributed clip-norm reduction associates sums differently than the
	// serial loop); at the same topology resume is bitwise.
	const tol = 1e-12
	fmt.Println("step  uninterrupted   resumed@2ranks  resumed@serial")
	for s := half; s < steps; s++ {
		a, b, c := full.Loss[s], twoRank.Loss[s-half], serial.Loss[s-half]
		fmt.Printf("%4d  %.12f  %.12f  %.12f\n", s, a, b, c)
		if abs(a-b) > tol*abs(a) || abs(a-c) > tol*abs(a) {
			log.Fatal("trajectories diverged — resharded resume must continue the run")
		}
	}
	fmt.Println("resharded resume continues the trajectory: 4 ranks -> {2 ranks, serial}")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// copyDir clones a checkpoint directory into a fresh temp directory.
func copyDir(src string) string {
	dst, err := os.MkdirTemp("", "dchag-ckpt-copy-*")
	if err != nil {
		log.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(src + "/" + e.Name())
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(dst+"/"+e.Name(), data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	return dst
}
