// Package leakcheck fails tests that leave goroutines running — the
// distributed analogue of a file-descriptor leak. A mesh teardown that
// strands a rank goroutine in a collective, or an engine shutdown that
// leaves a replica leader blocked on its work channel, passes every
// functional assertion and then deadlocks some later test (or the race
// detector) at a distance. Calling Check(t) at the top of a test makes
// the strand itself the failure, with the leaked stacks in the output.
//
// The check is goleak-style: when the test ends it polls the runtime's
// goroutine dump until only benign goroutines (the testing harness, the
// runtime's own workers) remain, giving legitimate teardown a grace
// period to finish, and fails with the surviving stanzas once the grace
// expires.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// DefaultGrace is how long Check waits for teardown goroutines to exit
// before declaring them leaked. Abort cascades and channel-closing
// shutdown protocols finish in microseconds; two seconds keeps slow CI
// machines from flaking.
const DefaultGrace = 2 * time.Second

// TestingT is the subset of *testing.T the checker needs; an interface
// so the package's own tests can observe failures without failing.
type TestingT interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// checkGrace is the grace period Check uses; a variable so the
// package's own tests can shorten the failing path.
var checkGrace = DefaultGrace

// Check registers a cleanup that fails t if goroutines beyond the benign
// set are still running when the test (and its other cleanups) finish.
// Call it first thing in the test so its cleanup runs last.
func Check(t TestingT) {
	t.Helper()
	t.Cleanup(func() {
		if err := NoLeaks(checkGrace); err != nil {
			t.Errorf("goroutine leak:\n%v", err)
		}
	})
}

// NoLeaks polls until no interesting goroutines remain or the grace
// period expires; it returns an error carrying the leaked stacks.
func NoLeaks(grace time.Duration) error {
	deadline := time.Now().Add(grace)
	delay := time.Millisecond
	for {
		leaked := interesting(stacks())
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%d goroutine(s) still running after %v:\n\n%s",
				len(leaked), grace, strings.Join(leaked, "\n\n"))
		}
		time.Sleep(delay)
		if delay < 100*time.Millisecond {
			delay *= 2
		}
	}
}

// stacks returns the full goroutine dump split into per-goroutine
// stanzas.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for _, s := range strings.Split(string(buf), "\n\n") {
		if strings.HasPrefix(s, "goroutine ") {
			out = append(out, strings.TrimRight(s, "\n"))
		}
	}
	return out
}

// benignMarks identify goroutines that are part of the harness or the
// runtime rather than the code under test.
var benignMarks = []string{
	"repro/internal/leakcheck.stacks(", // the polling goroutine itself
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.runTests(",
	"testing.(*M).",
	"testing.(*testContext)",
	"created by runtime",
	"runtime.ReadTrace",
	"runtime/trace.Start",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ensureSigM",
}

// interesting filters the dump down to goroutines worth reporting.
func interesting(stanzas []string) []string {
	var out []string
stanza:
	for _, s := range stanzas {
		for _, mark := range benignMarks {
			if strings.Contains(s, mark) {
				continue stanza
			}
		}
		out = append(out, s)
	}
	return out
}
