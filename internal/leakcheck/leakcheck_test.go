package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestNoLeaksOnQuietProcess(t *testing.T) {
	if err := NoLeaks(time.Second); err != nil {
		t.Fatalf("quiet test binary reported a leak:\n%v", err)
	}
}

func TestDetectsAndReleasesLeak(t *testing.T) {
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-block
	}()

	err := NoLeaks(50 * time.Millisecond)
	if err == nil {
		t.Fatal("NoLeaks missed a goroutine parked on a channel")
	}
	if !strings.Contains(err.Error(), "chan receive") {
		t.Errorf("leak report does not show the blocked stack:\n%v", err)
	}

	// Releasing the goroutine clears the report within the grace period
	// even though it exits asynchronously.
	close(block)
	<-done
	if err := NoLeaks(time.Second); err != nil {
		t.Fatalf("leak report persists after the goroutine exited:\n%v", err)
	}
}

// fakeT records failures instead of failing, so the Check path itself is
// testable.
type fakeT struct {
	cleanups []func()
	failures []string
}

func (f *fakeT) Helper()                           {}
func (f *fakeT) Errorf(format string, args ...any) { f.failures = append(f.failures, format) }
func (f *fakeT) Cleanup(fn func())                 { f.cleanups = append(f.cleanups, fn) }
func (f *fakeT) runCleanups() {
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

func TestCheckFailsThroughCleanup(t *testing.T) {
	old := checkGrace
	checkGrace = 50 * time.Millisecond
	defer func() { checkGrace = old }()

	block := make(chan struct{})
	done := make(chan struct{})
	ft := &fakeT{}
	Check(ft)
	go func() {
		defer close(done)
		<-block
	}()

	ft.runCleanups()
	if len(ft.failures) == 0 {
		t.Fatal("Check did not report the parked goroutine")
	}
	close(block)
	<-done
}

func TestCheckPassesOnCleanExit(t *testing.T) {
	ft := &fakeT{}
	Check(ft)
	ch := make(chan struct{})
	go func() { close(ch) }()
	<-ch
	ft.runCleanups()
	if len(ft.failures) != 0 {
		t.Fatalf("Check failed a clean test: %v", ft.failures)
	}
}
