package data

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Atmospheric variable names used by the synthetic ERA5 substitute; the
// paper's five pressure-level variables plus three surface variables
// (Sec. 5.2).
var (
	// LevelVars are defined on PressureLevels.
	LevelVars = []string{"z", "t", "u", "v", "q"}
	// SurfaceVars are single-level.
	SurfaceVars = []string{"t2m", "u10", "v10"}
	// PressureLevels in hPa; "more than 10 pressure levels" per the paper.
	// 5 vars x 15 levels + 3 surface = 78 channels; two static fields
	// (orography, land-sea mask) complete the paper's 80.
	PressureLevels = []int{50, 100, 150, 200, 250, 300, 400, 500, 600, 700, 775, 850, 925, 975, 1000}
	// StaticVars complete the channel set.
	StaticVars = []string{"orography", "lsm"}
)

// WeatherConfig sizes the synthetic atmosphere.
type WeatherConfig struct {
	// NativeH, NativeW is the generation grid; fields are generated here and
	// (optionally) regridded to the training resolution, mirroring the
	// paper's 0.25 deg -> 5.625 deg xESMF pipeline.
	NativeH, NativeW int
	// Steps is the number of time steps available.
	Steps int
	// DtHours is the model time step in hours.
	DtHours float64
	Seed    int64
}

// DefaultWeather mirrors the paper's setup at a manageable native grid.
func DefaultWeather() WeatherConfig {
	return WeatherConfig{NativeH: 128, NativeW: 256, Steps: 512, DtHours: 6, Seed: 515}
}

// Weather synthesizes a deterministic, temporally-evolving global
// atmosphere: each channel is a superposition of traveling planetary waves
// (zonal wavenumbers with level-dependent amplitude and phase speed) over a
// latitude-dependent base state. Channels are cross-correlated through
// shared wave phases, giving a forecast model real structure to learn.
type Weather struct {
	Cfg      WeatherConfig
	channels []channelSpec
}

type channelSpec struct {
	name   string
	base   float64 // mean value
	latAmp float64 // latitude gradient amplitude
	waves  []waveSpec
	static bool
}

type waveSpec struct {
	kx, ky int     // zonal / meridional wavenumber
	amp    float64 // amplitude
	omega  float64 // angular frequency per hour
	phase  float64
}

// NewWeather builds the generator; channel structure derives from cfg.Seed.
func NewWeather(cfg WeatherConfig) *Weather {
	if cfg.NativeH < 4 || cfg.NativeW < 4 || cfg.Steps < 2 {
		panic(fmt.Sprintf("data: invalid weather config %+v", cfg))
	}
	w := &Weather{Cfg: cfg}
	rng := tensor.NewRNG(cfg.Seed)
	addChannel := func(name string, base, latAmp float64, static bool) {
		spec := channelSpec{name: name, base: base, latAmp: latAmp, static: static}
		nw := 3 + rng.Intn(3)
		for i := 0; i < nw; i++ {
			spec.waves = append(spec.waves, waveSpec{
				kx:    1 + rng.Intn(6),
				ky:    1 + rng.Intn(3),
				amp:   (0.3 + rng.Float64()) * latAmp * 0.5,
				omega: (0.5 + rng.Float64()) * 2 * math.Pi / 240, // ~10-day periods
				phase: rng.Float64() * 2 * math.Pi,
			})
		}
		w.channels = append(w.channels, spec)
	}
	for _, v := range LevelVars {
		for _, lv := range PressureLevels {
			// Base magnitude loosely shaped by variable and level.
			base := 1.0
			latAmp := 1.0
			switch v {
			case "z":
				base = float64(11000-10*lv) / 1000
				latAmp = 1.5
			case "t":
				base = (210 + 0.09*float64(lv)) / 100
				latAmp = 0.4
			case "u", "v":
				base = 0.2
				latAmp = 0.8
			case "q":
				base = 0.05 * float64(lv) / 1000
				latAmp = 0.1
			}
			addChannel(fmt.Sprintf("%s%d", v, lv), base, latAmp, false)
		}
	}
	for _, v := range SurfaceVars {
		addChannel(v, 1.2, 0.6, false)
	}
	for _, v := range StaticVars {
		addChannel(v, 0.5, 0.8, true)
	}
	return w
}

// Channels returns the channel count (80 with the default structure).
func (w *Weather) Channels() int { return len(w.channels) }

// ChannelNames lists the channel names in order.
func (w *Weather) ChannelNames() []string {
	names := make([]string, len(w.channels))
	for i, c := range w.channels {
		names[i] = c.name
	}
	return names
}

// ChannelIndex returns the index of a named channel (e.g. "z500", "t850",
// "u10") or -1.
func (w *Weather) ChannelIndex(name string) int {
	for i, c := range w.channels {
		if c.name == name {
			return i
		}
	}
	return -1
}

// Field materializes channel ch at time step on the native grid [H, W].
func (w *Weather) Field(ch, step int) *tensor.Tensor {
	if ch < 0 || ch >= len(w.channels) {
		panic(fmt.Sprintf("data: weather channel %d out of range", ch))
	}
	spec := w.channels[ch]
	h, wd := w.Cfg.NativeH, w.Cfg.NativeW
	t := float64(step) * w.Cfg.DtHours
	if spec.static {
		t = 0
	}
	out := tensor.New(h, wd)
	for y := 0; y < h; y++ {
		lat := (0.5 - (float64(y)+0.5)/float64(h)) * math.Pi // +pi/2..-pi/2
		base := spec.base + spec.latAmp*math.Sin(lat)
		for x := 0; x < wd; x++ {
			lon := 2 * math.Pi * float64(x) / float64(wd)
			v := base
			for _, wave := range spec.waves {
				v += wave.amp *
					math.Cos(float64(wave.kx)*lon-wave.omega*t+wave.phase) *
					math.Sin(float64(wave.ky)*(lat+math.Pi/2))
			}
			out.Data[y*wd+x] = v
		}
	}
	return out
}

// Snapshot materializes all channels at a time step: [Channels, H, W] on the
// native grid.
func (w *Weather) Snapshot(step int) *tensor.Tensor {
	fields := make([]*tensor.Tensor, len(w.channels))
	for c := range w.channels {
		fields[c] = w.Field(c, step)
	}
	return tensor.Stack(fields...)
}

// SnapshotAt materializes all channels regridded to [Channels, h, w] via the
// bilinear regridder (the xESMF substitute).
func (w *Weather) SnapshotAt(step, h, wd int) *tensor.Tensor {
	fields := make([]*tensor.Tensor, len(w.channels))
	for c := range w.channels {
		fields[c] = RegridBilinear(w.Field(c, step), h, wd)
	}
	return tensor.Stack(fields...)
}

// Pair returns the (input, target) snapshot pair (t, t+lead) at resolution
// h x w — one forecast training example.
func (w *Weather) Pair(step, lead, h, wd int) (x, y *tensor.Tensor) {
	return w.SnapshotAt(step, h, wd), w.SnapshotAt(step+lead, h, wd)
}

// PairBatch stacks examples with inputs at steps from..from+batch-1:
// x, y of shape [batch, Channels, h, w].
func (w *Weather) PairBatch(from, batch, lead, h, wd int) (x, y *tensor.Tensor) {
	xs := make([]*tensor.Tensor, batch)
	ys := make([]*tensor.Tensor, batch)
	for i := 0; i < batch; i++ {
		step := (from + i) % (w.Cfg.Steps - lead)
		xs[i], ys[i] = w.Pair(step, lead, h, wd)
	}
	return tensor.Stack(xs...), tensor.Stack(ys...)
}
