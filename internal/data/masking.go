package data

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// RandomMask returns a [batch, tokens] 0/1 mask with exactly
// round(ratio*tokens) ones per row, sampled without replacement from rng —
// the MAE masking scheme (the paper's Fig. 10 pipeline). Deterministic in
// the rng state, so serial and distributed runs can share masks exactly.
func RandomMask(rng interface {
	Perm(n int) []int
}, batch, tokens int, ratio float64) *tensor.Tensor {
	if ratio < 0 || ratio > 1 {
		panic(fmt.Sprintf("data: mask ratio %v out of [0,1]", ratio))
	}
	k := int(float64(tokens)*ratio + 0.5)
	mask := tensor.New(batch, tokens)
	for b := 0; b < batch; b++ {
		perm := rng.Perm(tokens)
		for i := 0; i < k; i++ {
			mask.Set(1, b, perm[i])
		}
	}
	return mask
}

// MaskedCount returns the number of ones in a mask.
func MaskedCount(mask *tensor.Tensor) int {
	n := 0
	for _, v := range mask.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// Normalize standardizes x in place to zero mean and unit variance per
// channel over the batch: x has shape [B, C, H, W]. Returns the per-channel
// means and stds used (std floors at 1e-8). Standard preprocessing for both
// applications.
func Normalize(x *tensor.Tensor) (means, stds []float64) {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("data: Normalize wants [B,C,H,W], got %v", x.Shape))
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	n := float64(b * h * w)
	means = make([]float64, c)
	stds = make([]float64, c)
	for ci := 0; ci < c; ci++ {
		sum := 0.0
		for bi := 0; bi < b; bi++ {
			off := (bi*c + ci) * h * w
			for p := 0; p < h*w; p++ {
				sum += x.Data[off+p]
			}
		}
		mean := sum / n
		variance := 0.0
		for bi := 0; bi < b; bi++ {
			off := (bi*c + ci) * h * w
			for p := 0; p < h*w; p++ {
				d := x.Data[off+p] - mean
				variance += d * d
			}
		}
		std := math.Sqrt(variance / n)
		if std < 1e-8 {
			std = 1e-8
		}
		means[ci], stds[ci] = mean, std
		inv := 1 / std
		for bi := 0; bi < b; bi++ {
			off := (bi*c + ci) * h * w
			for p := 0; p < h*w; p++ {
				x.Data[off+p] = (x.Data[off+p] - mean) * inv
			}
		}
	}
	return means, stds
}
