package data

import (
	"fmt"

	"repro/internal/tensor"
)

// RegridBilinear resamples a 2D field [H, W] to [newH, newW] with bilinear
// interpolation, treating cell centers as sample points (the convention of
// the ESMF bilinear method behind xESMF, which the paper uses to take ERA5
// from 0.25 deg to 5.625 deg). Longitude (the W axis) wraps periodically;
// latitude (the H axis) clamps at the poles.
func RegridBilinear(field *tensor.Tensor, newH, newW int) *tensor.Tensor {
	if len(field.Shape) != 2 {
		panic(fmt.Sprintf("data: RegridBilinear wants [H,W], got %v", field.Shape))
	}
	if newH < 1 || newW < 1 {
		panic(fmt.Sprintf("data: RegridBilinear target %dx%d invalid", newH, newW))
	}
	h, w := field.Shape[0], field.Shape[1]
	out := tensor.New(newH, newW)
	for y := 0; y < newH; y++ {
		// Source coordinate of the target cell centre.
		sy := (float64(y)+0.5)*float64(h)/float64(newH) - 0.5
		y0 := int(floor(sy))
		fy := sy - float64(y0)
		y0c, y1c := clampIdx(y0, h), clampIdx(y0+1, h)
		for x := 0; x < newW; x++ {
			sx := (float64(x)+0.5)*float64(w)/float64(newW) - 0.5
			x0 := int(floor(sx))
			fx := sx - float64(x0)
			x0w, x1w := wrapIdx(x0, w), wrapIdx(x0+1, w)
			v00 := field.Data[y0c*w+x0w]
			v01 := field.Data[y0c*w+x1w]
			v10 := field.Data[y1c*w+x0w]
			v11 := field.Data[y1c*w+x1w]
			out.Data[y*newW+x] = (1-fy)*((1-fx)*v00+fx*v01) + fy*((1-fx)*v10+fx*v11)
		}
	}
	return out
}

// RegridBatch applies RegridBilinear to every channel of [C, H, W].
func RegridBatch(fields *tensor.Tensor, newH, newW int) *tensor.Tensor {
	if len(fields.Shape) != 3 {
		panic(fmt.Sprintf("data: RegridBatch wants [C,H,W], got %v", fields.Shape))
	}
	c := fields.Shape[0]
	out := make([]*tensor.Tensor, c)
	for i := 0; i < c; i++ {
		f := tensor.FromSlice(fields.Data[i*fields.Shape[1]*fields.Shape[2]:(i+1)*fields.Shape[1]*fields.Shape[2]], fields.Shape[1], fields.Shape[2])
		out[i] = RegridBilinear(f, newH, newW)
	}
	return tensor.Stack(out...)
}

func floor(v float64) float64 {
	f := float64(int(v))
	if v < 0 && v != f {
		f--
	}
	return f
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func wrapIdx(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}
