package data

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestHyperspectralShapeAndDeterminism(t *testing.T) {
	cfg := HyperspectralConfig{Images: 5, Channels: 20, ImgH: 8, ImgW: 8, Endmembers: 3, Noise: 0.01, Seed: 1}
	g := NewHyperspectral(cfg)
	if g.Len() != 5 {
		t.Fatalf("Len = %d", g.Len())
	}
	img := g.Image(2)
	if img.Shape[0] != 20 || img.Shape[1] != 8 || img.Shape[2] != 8 {
		t.Fatalf("shape = %v", img.Shape)
	}
	img2 := NewHyperspectral(cfg).Image(2)
	if tensor.MaxAbsDiff(img, img2) != 0 {
		t.Fatal("same (seed, idx) must reproduce the image")
	}
	if tensor.MaxAbsDiff(g.Image(0), g.Image(1)) == 0 {
		t.Fatal("different images must differ")
	}
}

func TestHyperspectralSpectralSmoothness(t *testing.T) {
	// Adjacent bands must be strongly correlated — the physical property a
	// hyperspectral MAE exploits. Compare adjacent-band difference to
	// far-band difference on a noise-free generator.
	cfg := HyperspectralConfig{Images: 1, Channels: 64, ImgH: 8, ImgW: 8, Endmembers: 3, Noise: 0, Seed: 3}
	g := NewHyperspectral(cfg)
	img := g.Image(0)
	hw := 64
	adj, far := 0.0, 0.0
	for c := 0; c+8 < 64; c++ {
		for p := 0; p < hw; p++ {
			adj += math.Abs(img.Data[c*hw+p] - img.Data[(c+1)*hw+p])
			far += math.Abs(img.Data[c*hw+p] - img.Data[(c+8)*hw+p])
		}
	}
	if adj >= far {
		t.Fatalf("adjacent-band variation %v should be below far-band variation %v", adj, far)
	}
}

func TestHyperspectralBatchWraps(t *testing.T) {
	cfg := HyperspectralConfig{Images: 3, Channels: 4, ImgH: 4, ImgW: 4, Endmembers: 2, Noise: 0, Seed: 4}
	g := NewHyperspectral(cfg)
	b := g.Batch(2, 2) // images 2 and 0 (wrap)
	if b.Shape[0] != 2 {
		t.Fatalf("batch shape = %v", b.Shape)
	}
	if tensor.MaxAbsDiff(tensor.SliceAxis(b, 0, 1, 2).Reshape(4, 4, 4), g.Image(0)) != 0 {
		t.Fatal("batch must wrap around the dataset")
	}
}

func TestWeatherChannelStructure(t *testing.T) {
	w := NewWeather(WeatherConfig{NativeH: 16, NativeW: 32, Steps: 8, DtHours: 6, Seed: 5})
	if w.Channels() != 80 {
		t.Fatalf("channels = %d, want 80 (paper Sec. 5.2)", w.Channels())
	}
	for _, name := range []string{"z500", "t850", "u10"} {
		if w.ChannelIndex(name) < 0 {
			t.Fatalf("missing evaluation channel %q", name)
		}
	}
	if w.ChannelIndex("nope") != -1 {
		t.Fatal("unknown channel should be -1")
	}
	if len(w.ChannelNames()) != 80 {
		t.Fatal("ChannelNames length mismatch")
	}
}

func TestWeatherEvolvesAndIsDeterministic(t *testing.T) {
	cfg := WeatherConfig{NativeH: 16, NativeW: 32, Steps: 8, DtHours: 6, Seed: 6}
	w := NewWeather(cfg)
	f0 := w.Field(0, 0)
	f1 := w.Field(0, 1)
	if tensor.MaxAbsDiff(f0, f1) == 0 {
		t.Fatal("dynamic field must evolve in time")
	}
	// Static channels do not evolve.
	oro := w.ChannelIndex("orography")
	if tensor.MaxAbsDiff(w.Field(oro, 0), w.Field(oro, 5)) != 0 {
		t.Fatal("static field must not evolve")
	}
	// Determinism.
	if tensor.MaxAbsDiff(NewWeather(cfg).Field(0, 3), w.Field(0, 3)) != 0 {
		t.Fatal("weather must be deterministic in (seed, step)")
	}
}

func TestWeatherPairBatchShapes(t *testing.T) {
	w := NewWeather(WeatherConfig{NativeH: 16, NativeW: 32, Steps: 8, DtHours: 6, Seed: 7})
	x, y := w.PairBatch(0, 2, 1, 8, 16)
	if x.Shape[0] != 2 || x.Shape[1] != 80 || x.Shape[2] != 8 || x.Shape[3] != 16 {
		t.Fatalf("x shape = %v", x.Shape)
	}
	if !tensor.SameShape(x, y) {
		t.Fatal("x and y must have the same shape")
	}
	if tensor.MaxAbsDiff(x, y) == 0 {
		t.Fatal("input and lead-time target must differ")
	}
}

func TestRegridPreservesConstants(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		v := rng.Float64()*10 - 5
		field := tensor.Full(v, 8, 16)
		out := RegridBilinear(field, 3, 5)
		for _, got := range out.Data {
			if math.Abs(got-v) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRegridIdentity(t *testing.T) {
	rng := tensor.NewRNG(8)
	field := tensor.Randn(rng, 6, 12)
	same := RegridBilinear(field, 6, 12)
	if tensor.MaxAbsDiff(field, same) > 1e-12 {
		t.Fatal("same-resolution regrid must be the identity")
	}
}

func TestRegridLinearGradientExact(t *testing.T) {
	// Bilinear interpolation reproduces a linear ramp exactly away from the
	// clamped boundary rows.
	h, w := 8, 8
	field := tensor.New(h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			field.Data[y*w+x] = float64(y)
		}
	}
	out := RegridBilinear(field, 4, 4)
	// Interior target rows: source coordinate sy = (y+0.5)*2 - 0.5.
	for y := 1; y < 3; y++ {
		want := (float64(y)+0.5)*2 - 0.5
		for x := 0; x < 4; x++ {
			if math.Abs(out.At(y, x)-want) > 1e-12 {
				t.Fatalf("ramp value at (%d,%d) = %v, want %v", y, x, out.At(y, x), want)
			}
		}
	}
}

func TestRegridLongitudeWraps(t *testing.T) {
	// A field with a discontinuity only at the dateline must interpolate
	// across the wrap, not clamp.
	field := tensor.New(2, 4)
	field.Data = []float64{1, 0, 0, 1, 1, 0, 0, 1} // wraps smoothly: col 3 -> col 0 both 1
	out := RegridBilinear(field, 2, 8)
	// Sample near the wrap boundary; all values must be within [0, 1].
	for _, v := range out.Data {
		if v < -1e-12 || v > 1+1e-12 {
			t.Fatalf("wrap interpolation out of range: %v", out.Data)
		}
	}
}

func TestRegridBatch(t *testing.T) {
	rng := tensor.NewRNG(9)
	fields := tensor.Randn(rng, 3, 8, 8)
	out := RegridBatch(fields, 4, 4)
	if out.Shape[0] != 3 || out.Shape[1] != 4 || out.Shape[2] != 4 {
		t.Fatalf("shape = %v", out.Shape)
	}
}

func TestRandomMaskRatioExact(t *testing.T) {
	rng := tensor.NewRNG(10)
	mask := RandomMask(rng, 4, 16, 0.75)
	for b := 0; b < 4; b++ {
		n := 0
		for tIdx := 0; tIdx < 16; tIdx++ {
			if mask.At(b, tIdx) != 0 {
				n++
			}
		}
		if n != 12 {
			t.Fatalf("row %d has %d masked, want 12", b, n)
		}
	}
	if MaskedCount(mask) != 48 {
		t.Fatalf("MaskedCount = %d", MaskedCount(mask))
	}
}

func TestRandomMaskDeterministicStream(t *testing.T) {
	m1 := RandomMask(tensor.NewRNG(11), 2, 8, 0.5)
	m2 := RandomMask(tensor.NewRNG(11), 2, 8, 0.5)
	if tensor.MaxAbsDiff(m1, m2) != 0 {
		t.Fatal("same rng state must give same mask")
	}
}

func TestNormalize(t *testing.T) {
	rng := tensor.NewRNG(12)
	x := tensor.RandnScaled(rng, 5, 2, 3, 4, 4)
	tensor.AddInPlace(x, tensor.Full(7, 2, 3, 4, 4))
	means, stds := Normalize(x)
	if len(means) != 3 || len(stds) != 3 {
		t.Fatalf("per-channel stats: %d, %d", len(means), len(stds))
	}
	// Post-normalization stats per channel: mean 0, var 1.
	b, c, h, w := 2, 3, 4, 4
	for ci := 0; ci < c; ci++ {
		sum, sq := 0.0, 0.0
		for bi := 0; bi < b; bi++ {
			off := (bi*c + ci) * h * w
			for p := 0; p < h*w; p++ {
				sum += x.Data[off+p]
				sq += x.Data[off+p] * x.Data[off+p]
			}
		}
		n := float64(b * h * w)
		if math.Abs(sum/n) > 1e-9 || math.Abs(sq/n-1) > 1e-9 {
			t.Fatalf("channel %d not standardized: mean %v var %v", ci, sum/n, sq/n)
		}
	}
}

func TestPseudoRGB(t *testing.T) {
	g := NewHyperspectral(HyperspectralConfig{Images: 1, Channels: 32, ImgH: 4, ImgW: 4, Endmembers: 2, Noise: 0, Seed: 13})
	img := g.Image(0)
	rgb := PseudoRGB(img, -1, -1, -1)
	if rgb.Shape[0] != 3 || rgb.Shape[1] != 4 || rgb.Shape[2] != 4 {
		t.Fatalf("shape = %v", rgb.Shape)
	}
	for _, v := range rgb.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside [0,1]", v)
		}
	}
	// Explicit bands select exactly those channels (up to normalization).
	rgb2 := PseudoRGB(img, 5, 5, 5)
	if tensor.MaxAbsDiff(tensor.SliceAxis(rgb2, 0, 0, 1), tensor.SliceAxis(rgb2, 0, 1, 2)) != 0 {
		t.Fatal("same band must render identically in every plane")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range band")
		}
	}()
	PseudoRGB(img, 99, 0, 0)
}

func TestBiogeochemStructure(t *testing.T) {
	g := NewBiogeochem(BiogeochemConfig{Variables: 5, Layers: 4, GridH: 4, GridW: 4, Steps: 24, Seed: 1})
	if g.Channels() != 20 {
		t.Fatalf("channels = %d, want 20", g.Channels())
	}
	if g.ChannelName(5) != "v1_l1" {
		t.Fatalf("channel name = %q", g.ChannelName(5))
	}
	snap := g.Snapshot(3)
	if snap.Shape[0] != 20 || snap.Shape[1] != 4 || snap.Shape[2] != 4 {
		t.Fatalf("snapshot shape = %v", snap.Shape)
	}
	// Deterministic.
	g2 := NewBiogeochem(BiogeochemConfig{Variables: 5, Layers: 4, GridH: 4, GridW: 4, Steps: 24, Seed: 1})
	if tensor.MaxAbsDiff(snap, g2.Snapshot(3)) != 0 {
		t.Fatal("same (seed, step) must reproduce the snapshot")
	}
	// Seasonal cycle: different months differ.
	if tensor.MaxAbsDiff(g.Snapshot(0), g.Snapshot(6)) == 0 {
		t.Fatal("opposite seasons must differ")
	}
	b := g.Batch(22, 4) // wraps past Steps
	if b.Shape[0] != 4 {
		t.Fatalf("batch shape = %v", b.Shape)
	}
}

func TestBiogeochemVerticalCorrelation(t *testing.T) {
	// Adjacent soil layers of the same variable must correlate more than
	// surface vs deep layers — the structure channel aggregation exploits.
	g := NewBiogeochem(BiogeochemConfig{Variables: 3, Layers: 10, GridH: 8, GridW: 8, Steps: 12, Seed: 2})
	snap := g.Snapshot(4)
	hw := 64
	layer := func(v, l int) []float64 {
		ch := v*10 + l
		return snap.Data[ch*hw : (ch+1)*hw]
	}
	for v := 0; v < 3; v++ {
		adj, far := 0.0, 0.0
		top, next, deep := layer(v, 0), layer(v, 1), layer(v, 9)
		for p := 0; p < hw; p++ {
			adj += math.Abs(top[p] - next[p])
			far += math.Abs(top[p] - deep[p])
		}
		if adj >= far {
			t.Fatalf("variable %d: adjacent-layer diff %v >= deep diff %v", v, adj, far)
		}
	}
}
