package data

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// The serving batcher regrids heterogeneous request grids onto the model
// grid through this package; these tests pin the regrid/masking behavior it
// depends on, on the two loaders that previously had the least coverage.

// TestWeatherSnapshotAtMatchesRegrid pins that the loader's fused
// snapshot-and-regrid path is exactly RegridBilinear applied per channel —
// so a serving request carrying a native-grid snapshot regrids to the same
// tensor the training pipeline produced.
func TestWeatherSnapshotAtMatchesRegrid(t *testing.T) {
	w := NewWeather(WeatherConfig{NativeH: 16, NativeW: 32, Steps: 8, DtHours: 6, Seed: 7})
	native := w.Snapshot(3)
	want := RegridBatch(native, 8, 16)
	got := w.SnapshotAt(3, 8, 16)
	if !tensor.SameShape(want, got) {
		t.Fatalf("shape mismatch: %v vs %v", want.Shape, got.Shape)
	}
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("SnapshotAt differs from per-channel RegridBilinear by %g", d)
	}
}

// regridRoundTripErr downsamples [C, H, W] to (h, w), upsamples back, and
// returns the max abs error relative to the max abs field value.
func regridRoundTripErr(fields *tensor.Tensor, h, w int) float64 {
	back := RegridBatch(RegridBatch(fields, h, w), fields.Shape[1], fields.Shape[2])
	maxAbs := 0.0
	for _, v := range fields.Data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	return tensor.MaxAbsDiff(back, fields) / maxAbs
}

// TestWeatherRegridRoundTrip bounds the down-up regrid round-trip error on
// the synthetic atmosphere: the fields are smooth superpositions of
// low-wavenumber planetary waves, so halving the grid and interpolating
// back must stay within a modest relative error.
func TestWeatherRegridRoundTrip(t *testing.T) {
	w := NewWeather(WeatherConfig{NativeH: 32, NativeW: 64, Steps: 4, DtHours: 6, Seed: 11})
	if err := regridRoundTripErr(w.Snapshot(1), 16, 32); err > 0.25 {
		t.Fatalf("weather 2x regrid round-trip relative error %.3f too large", err)
	}
	// Down-up-down must reproduce the first downsample closely (the coarse
	// grid is a near fixed point of the round trip).
	coarse := RegridBatch(w.Snapshot(1), 16, 32)
	again := RegridBatch(RegridBatch(coarse, 32, 64), 16, 32)
	maxAbs := 0.0
	for _, v := range coarse.Data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if d := tensor.MaxAbsDiff(coarse, again) / maxAbs; d > 0.05 {
		t.Fatalf("coarse grid moved by relative %.3f under up-down round trip", d)
	}
}

// TestBiogeochemRegridRoundTrip does the same for the land-model loader:
// its latent drivers are broad Gaussian bumps, so the round trip through a
// half-resolution grid stays tight.
func TestBiogeochemRegridRoundTrip(t *testing.T) {
	g := NewBiogeochem(BiogeochemConfig{
		Variables: 4, Layers: 3, GridH: 16, GridW: 16, Steps: 12, Seed: 13,
	})
	if err := regridRoundTripErr(g.Snapshot(2), 8, 8); err > 0.25 {
		t.Fatalf("biogeochem 2x regrid round-trip relative error %.3f too large", err)
	}
}

// TestBiogeochemBatchDeterminismAndWrap pins the loader behaviors the
// serving and training paths assume: Batch is bitwise reproducible and
// wraps the time axis modulo Steps.
func TestBiogeochemBatchDeterminismAndWrap(t *testing.T) {
	cfg := BiogeochemConfig{Variables: 3, Layers: 2, GridH: 4, GridW: 5, Steps: 6, Seed: 17}
	a := NewBiogeochem(cfg).Batch(4, 4)
	b := NewBiogeochem(cfg).Batch(4, 4)
	if d := tensor.MaxAbsDiff(a, b); d != 0 {
		t.Fatalf("Batch not deterministic: differs by %g", d)
	}
	// Row 2 of Batch(4, ...) is step (4+2) % 6 = 0.
	row := tensor.SliceAxis(a, 0, 2, 3)
	want := NewBiogeochem(cfg).Snapshot(0)
	if d := tensor.MaxAbsDiff(row.Reshape(want.Shape...), want); d != 0 {
		t.Fatalf("Batch does not wrap modulo Steps: differs by %g", d)
	}
}

// TestRandomMaskEdgeRatios pins the mask generator's boundary behavior on
// the weather token grid: ratio 0 masks nothing, ratio 1 masks everything,
// and the count is exact at every intermediate ratio.
func TestRandomMaskEdgeRatios(t *testing.T) {
	tokens := 4 * 8 // the 8x16-at-patch-2 weather grid
	for _, tc := range []struct {
		ratio float64
		want  int
	}{
		{0, 0},
		{1, tokens},
		{0.5, tokens / 2},
		{0.75, tokens * 3 / 4},
	} {
		m := RandomMask(tensor.NewRNG(23), 3, tokens, tc.ratio)
		if got := MaskedCount(m); got != 3*tc.want {
			t.Fatalf("ratio %v masked %d tokens, want %d", tc.ratio, got, 3*tc.want)
		}
		// Per-row exactness, not just in aggregate.
		for b := 0; b < 3; b++ {
			n := 0
			for ti := 0; ti < tokens; ti++ {
				if m.At(b, ti) != 0 {
					n++
				}
			}
			if n != tc.want {
				t.Fatalf("ratio %v row %d masked %d, want %d", tc.ratio, b, n, tc.want)
			}
		}
	}
}

// TestRandomMaskStreamReplay pins the property exact resume and the serving
// tests rely on: replaying a consumed mask stream from the same seed
// reproduces it bit for bit, draw by draw.
func TestRandomMaskStreamReplay(t *testing.T) {
	const batch, tokens = 2, 24
	first := tensor.NewRNG(29)
	var stream []*tensor.Tensor
	for i := 0; i < 5; i++ {
		stream = append(stream, RandomMask(first, batch, tokens, 0.5))
	}
	replay := tensor.NewRNG(29)
	for i := 0; i < 5; i++ {
		m := RandomMask(replay, batch, tokens, 0.5)
		if d := tensor.MaxAbsDiff(stream[i], m); d != 0 {
			t.Fatalf("draw %d differs on replay by %g", i, d)
		}
	}
}
