package data

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BiogeochemConfig sizes the synthetic land-model output, standing in for
// the E3SM biogeochemistry simulations the paper's introduction cites as a
// 500+-channel workload ("In E3SM biogeochemistry simulations, outputs can
// reach over 500 channels").
type BiogeochemConfig struct {
	// Variables is the number of biogeochemical state variables (carbon and
	// nitrogen pools, decomposition rates, ...).
	Variables int
	// Layers is the number of soil layers each variable is resolved on; the
	// channel count is Variables * Layers.
	Layers int
	// GridH, GridW is the regional grid.
	GridH, GridW int
	// Steps is the number of available time steps (monthly cadence).
	Steps int
	Seed  int64
}

// DefaultBiogeochem mirrors the paper's 500-channel figure: 25 variables
// on 20 soil layers.
func DefaultBiogeochem(gridH, gridW int) BiogeochemConfig {
	return BiogeochemConfig{
		Variables: 25, Layers: 20,
		GridH: gridH, GridW: gridW,
		Steps: 240, Seed: 3350,
	}
}

// Biogeochem synthesizes coupled soil-column fields: every variable shares
// two latent drivers (temperature- and moisture-like smooth fields with a
// seasonal cycle), responds to them with its own sensitivity, and attenuates
// with soil depth at its own e-folding scale. The result is a channel set
// with strong vertical (adjacent-layer) and cross-variable correlation —
// the structure a channel-aggregating foundation model exploits.
type Biogeochem struct {
	Cfg BiogeochemConfig

	// Per-variable response parameters.
	tempSens, moistSens, depthScale, base []float64
	// Latent driver spatial modes.
	tempField, moistField *tensor.Tensor
}

// NewBiogeochem builds the generator deterministically from cfg.Seed.
func NewBiogeochem(cfg BiogeochemConfig) *Biogeochem {
	if cfg.Variables < 1 || cfg.Layers < 1 || cfg.GridH < 1 || cfg.GridW < 1 || cfg.Steps < 1 {
		panic(fmt.Sprintf("data: invalid biogeochem config %+v", cfg))
	}
	g := &Biogeochem{Cfg: cfg}
	rng := tensor.NewRNG(cfg.Seed)
	for v := 0; v < cfg.Variables; v++ {
		g.tempSens = append(g.tempSens, rng.NormFloat64())
		g.moistSens = append(g.moistSens, rng.NormFloat64())
		g.depthScale = append(g.depthScale, 0.15+0.85*rng.Float64())
		g.base = append(g.base, 0.5+rng.Float64())
	}
	smooth := func() *tensor.Tensor {
		f := tensor.New(cfg.GridH, cfg.GridW)
		bumps := 3 + rng.Intn(3)
		for i := 0; i < bumps; i++ {
			cy, cx := rng.Float64()*float64(cfg.GridH), rng.Float64()*float64(cfg.GridW)
			sy := (0.2 + 0.4*rng.Float64()) * float64(cfg.GridH)
			sx := (0.2 + 0.4*rng.Float64()) * float64(cfg.GridW)
			amp := rng.NormFloat64()
			for y := 0; y < cfg.GridH; y++ {
				for x := 0; x < cfg.GridW; x++ {
					dy := (float64(y) - cy) / sy
					dx := (float64(x) - cx) / sx
					f.Data[y*cfg.GridW+x] += amp * math.Exp(-0.5*(dy*dy+dx*dx))
				}
			}
		}
		return f
	}
	g.tempField = smooth()
	g.moistField = smooth()
	return g
}

// Channels returns Variables * Layers.
func (g *Biogeochem) Channels() int { return g.Cfg.Variables * g.Cfg.Layers }

// ChannelName returns the name of channel ch ("v<k>_l<d>").
func (g *Biogeochem) ChannelName(ch int) string {
	return fmt.Sprintf("v%d_l%d", ch/g.Cfg.Layers, ch%g.Cfg.Layers)
}

// Snapshot materializes all channels at time step: [Channels, H, W].
// Deterministic in (Seed, step).
func (g *Biogeochem) Snapshot(step int) *tensor.Tensor {
	cfg := g.Cfg
	season := math.Sin(2 * math.Pi * float64(step) / 12)
	season2 := math.Cos(2 * math.Pi * float64(step) / 12)
	rng := tensor.NewRNG(cfg.Seed ^ int64(step+1)*0x51ED2701)
	hw := cfg.GridH * cfg.GridW
	out := tensor.New(g.Channels(), cfg.GridH, cfg.GridW)
	for v := 0; v < cfg.Variables; v++ {
		for l := 0; l < cfg.Layers; l++ {
			ch := v*cfg.Layers + l
			// Seasonal forcing attenuates and lags with depth.
			depth := float64(l) / float64(cfg.Layers)
			atten := math.Exp(-depth / g.depthScale[v])
			lag := season*math.Cos(depth*2) + season2*math.Sin(depth*2)
			noise := 0.01 * rng.NormFloat64()
			for p := 0; p < hw; p++ {
				drivers := g.tempSens[v]*g.tempField.Data[p] + g.moistSens[v]*g.moistField.Data[p]
				out.Data[ch*hw+p] = g.base[v] + atten*(drivers+0.5*lag) + noise
			}
		}
	}
	return out
}

// Batch stacks snapshots [from, from+batch) into [batch, Channels, H, W].
func (g *Biogeochem) Batch(from, batch int) *tensor.Tensor {
	snaps := make([]*tensor.Tensor, batch)
	for i := 0; i < batch; i++ {
		snaps[i] = g.Snapshot((from + i) % g.Cfg.Steps)
	}
	return tensor.Stack(snaps...)
}
