// Package data provides the synthetic datasets and preprocessing the
// repository's experiments run on, substituting for the paper's proprietary
// or external data (see DESIGN.md): a VNIR hyperspectral plant generator
// standing in for the ORNL APPL dataset (494 images x 500 spectral bands,
// Sec. 5.1), an ERA5-like synthetic atmosphere (80 channels on a lat-lon
// grid, Sec. 5.2), a bilinear regridder standing in for xESMF, and MAE
// masking utilities.
//
// Everything is deterministic in (seed, index): any rank or process can
// materialize any sample independently, which is what lets the distributed
// training tests compare against serial baselines bit-for-bit.
package data

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// HyperspectralConfig sizes the synthetic plant dataset. Defaults mirror the
// paper's APPL subset: 494 images, 500 VNIR bands (400-900 nm).
type HyperspectralConfig struct {
	Images   int
	Channels int
	ImgH     int
	ImgW     int
	// Endmembers is the number of spectral signatures mixed per scene
	// (leaf, stem, soil, background, ...).
	Endmembers int
	// Noise is the standard deviation of additive sensor noise.
	Noise float64
	Seed  int64
}

// DefaultHyperspectral mirrors the APPL subset's shape at the given spatial
// resolution.
func DefaultHyperspectral(imgH, imgW int) HyperspectralConfig {
	return HyperspectralConfig{
		Images:     494,
		Channels:   500,
		ImgH:       imgH,
		ImgW:       imgW,
		Endmembers: 4,
		Noise:      0.01,
		Seed:       4094,
	}
}

// Hyperspectral generates synthetic VNIR hyperspectral plant images as
// linear mixtures of smooth spectral signatures over spatially correlated
// abundance maps — the structure a masked autoencoder must learn to exploit
// (strong spectral correlation between adjacent bands, spatial coherence of
// plant matter).
type Hyperspectral struct {
	Cfg HyperspectralConfig
	// signatures[k][c]: reflectance of endmember k in band c; smooth in c as
	// a mixture of Gaussian absorption/reflection features.
	signatures [][]float64
}

// NewHyperspectral builds the generator (signatures are derived from
// cfg.Seed; images are derived from cfg.Seed and the image index).
func NewHyperspectral(cfg HyperspectralConfig) *Hyperspectral {
	if cfg.Images < 1 || cfg.Channels < 1 || cfg.Endmembers < 1 {
		panic(fmt.Sprintf("data: invalid hyperspectral config %+v", cfg))
	}
	g := &Hyperspectral{Cfg: cfg}
	rng := tensor.NewRNG(cfg.Seed)
	for k := 0; k < cfg.Endmembers; k++ {
		sig := make([]float64, cfg.Channels)
		base := 0.2 + 0.6*rng.Float64()
		nFeatures := 3 + rng.Intn(4)
		type feat struct{ center, width, amp float64 }
		feats := make([]feat, nFeatures)
		for f := range feats {
			feats[f] = feat{
				center: rng.Float64() * float64(cfg.Channels),
				width:  float64(cfg.Channels) * (0.03 + 0.12*rng.Float64()),
				amp:    (rng.Float64() - 0.4) * 0.8,
			}
		}
		for c := 0; c < cfg.Channels; c++ {
			v := base
			for _, f := range feats {
				d := (float64(c) - f.center) / f.width
				v += f.amp * math.Exp(-0.5*d*d)
			}
			sig[c] = v
		}
		g.signatures = append(g.signatures, sig)
	}
	return g
}

// Len returns the dataset size.
func (g *Hyperspectral) Len() int { return g.Cfg.Images }

// Signature returns endmember k's spectral signature (len Channels).
func (g *Hyperspectral) Signature(k int) []float64 { return g.signatures[k] }

// Image materializes image idx as [Channels, H, W]. Deterministic in
// (Seed, idx).
func (g *Hyperspectral) Image(idx int) *tensor.Tensor {
	if idx < 0 || idx >= g.Cfg.Images {
		panic(fmt.Sprintf("data: hyperspectral image %d out of range [0,%d)", idx, g.Cfg.Images))
	}
	cfg := g.Cfg
	rng := tensor.NewRNG(cfg.Seed ^ int64(idx+1)*0x9E3779B9)
	// Abundance maps: per endmember, a sum of random spatial Gaussian bumps
	// (plant organs), softmax-normalized across endmembers per pixel.
	h, w := cfg.ImgH, cfg.ImgW
	ab := make([][]float64, cfg.Endmembers)
	for k := range ab {
		ab[k] = make([]float64, h*w)
		bumps := 2 + rng.Intn(3)
		for bi := 0; bi < bumps; bi++ {
			cy, cx := rng.Float64()*float64(h), rng.Float64()*float64(w)
			sy := (0.1 + 0.3*rng.Float64()) * float64(h)
			sx := (0.1 + 0.3*rng.Float64()) * float64(w)
			amp := 0.5 + rng.Float64()
			for y := 0; y < h; y++ {
				for x := 0; x < w; x++ {
					dy := (float64(y) - cy) / sy
					dx := (float64(x) - cx) / sx
					ab[k][y*w+x] += amp * math.Exp(-0.5*(dy*dy+dx*dx))
				}
			}
		}
	}
	// Normalize abundances to a convex combination per pixel.
	for p := 0; p < h*w; p++ {
		sum := 0.0
		for k := range ab {
			sum += ab[k][p]
		}
		if sum == 0 {
			sum = 1
		}
		for k := range ab {
			ab[k][p] /= sum
		}
	}
	out := tensor.New(cfg.Channels, h, w)
	for c := 0; c < cfg.Channels; c++ {
		for p := 0; p < h*w; p++ {
			v := 0.0
			for k := range ab {
				v += ab[k][p] * g.signatures[k][c]
			}
			out.Data[c*h*w+p] = v + cfg.Noise*rng.NormFloat64()
		}
	}
	return out
}

// Batch stacks images [from, from+batch) (wrapping around the dataset) into
// [batch, Channels, H, W].
func (g *Hyperspectral) Batch(from, batch int) *tensor.Tensor {
	imgs := make([]*tensor.Tensor, batch)
	for i := 0; i < batch; i++ {
		imgs[i] = g.Image((from + i) % g.Cfg.Images)
	}
	return tensor.Stack(imgs...)
}

// PseudoRGB renders a hyperspectral image [C, H, W] as an RGB triplet
// [3, H, W] by sampling three bands (defaults when negative: ~60%, ~35%,
// ~10% of the spectrum, matching the red/green/blue VNIR positions the
// paper's Fig. 11 visualization uses) and min-max normalizing each to
// [0, 1].
func PseudoRGB(img *tensor.Tensor, rBand, gBand, bBand int) *tensor.Tensor {
	if len(img.Shape) != 3 {
		panic(fmt.Sprintf("data: PseudoRGB wants [C,H,W], got %v", img.Shape))
	}
	c, h, w := img.Shape[0], img.Shape[1], img.Shape[2]
	pick := func(b int, frac float64) int {
		if b >= 0 {
			if b >= c {
				panic(fmt.Sprintf("data: PseudoRGB band %d out of %d", b, c))
			}
			return b
		}
		return int(frac * float64(c-1))
	}
	bands := []int{pick(rBand, 0.6), pick(gBand, 0.35), pick(bBand, 0.1)}
	out := tensor.New(3, h, w)
	for i, band := range bands {
		src := img.Data[band*h*w : (band+1)*h*w]
		lo, hi := src[0], src[0]
		for _, v := range src {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		scale := hi - lo
		if scale == 0 {
			scale = 1
		}
		dst := out.Data[i*h*w : (i+1)*h*w]
		for p, v := range src {
			dst[p] = (v - lo) / scale
		}
	}
	return out
}
