package hw

import (
	"math"
	"testing"
)

func TestContiguousPlacement(t *testing.T) {
	m := Frontier()
	// Node-aligned group of a node's width stays on one node.
	if p := m.ContiguousPlacement(0, 8); !p.IntraNode() || p.NodeSpan() != 1 || p.InterHops() != 0 {
		t.Fatalf("aligned 8-rank group should be intra-node, got %v", p)
	}
	// The same size starting mid-node straddles the boundary — the case the
	// deprecated size-only GroupIntraNode cannot see.
	p := m.ContiguousPlacement(4, 8)
	if p.IntraNode() || p.NodeSpan() != 2 {
		t.Fatalf("unaligned 8-rank group must span two nodes, got %v", p)
	}
	// Hops: one crossing inside the ring, plus the wraparound back.
	if p.InterHops() != 2 {
		t.Fatalf("unaligned group must have 2 inter-node hops, got %d (%v)", p.InterHops(), p)
	}
	if !m.ContiguousPlacement(4, 2).IntraNode() {
		t.Fatal("small mid-node group stays intra-node")
	}
}

func TestDeprecatedGroupIntraNodeStillAligned(t *testing.T) {
	m := Frontier()
	if !m.GroupIntraNode(8) || m.GroupIntraNode(16) {
		t.Fatal("deprecated GroupIntraNode must keep its aligned-group semantics")
	}
	// Degenerate sizes keep their pre-placement behavior (no panics).
	if !m.GroupIntraNode(0) || !m.GroupIntraNode(1) {
		t.Fatal("empty and single-rank groups are trivially intra-node")
	}
}

func TestRingLinkSlowestHop(t *testing.T) {
	m := Frontier()
	if bw, lat := m.RingLink(Placement{0, 0, 0, 0}); bw != m.IntraBW || lat != m.LatIntra {
		t.Fatal("all-intra ring must use the Infinity Fabric link")
	}
	// A single boundary crossing is enough: the lockstep ring waits for it.
	if bw, lat := m.RingLink(Placement{0, 0, 1, 1}); bw != m.InterBWPerGPU || lat != m.LatInter {
		t.Fatal("mixed ring must be priced by its slowest (inter-node) link")
	}
	if bw, _ := m.RingLink(Placement{0}); bw != m.IntraBW {
		t.Fatal("trivial placement is intra-node")
	}
}

func TestPlacedCollectiveTimes(t *testing.T) {
	m := Frontier()
	intra := m.ContiguousPlacement(0, 8)
	inter := m.ContiguousPlacement(4, 8)
	bytes := int64(1 << 24)
	// Same group size, same bytes: crossing the boundary is strictly slower.
	if !(m.AllReduceTimeOn(inter, bytes) > m.AllReduceTimeOn(intra, bytes)) {
		t.Fatal("inter-node ring must be slower than an equal-size intra-node ring")
	}
	// Placement-priced times agree with the explicit-link variants.
	if m.AllGatherTimeOn(intra, bytes) != m.AllGatherTimeAt(8, bytes, true) {
		t.Fatal("intra placement must match the explicit intra link")
	}
	if m.AllReduceTimeOn(inter, bytes) != m.AllReduceTimeAt(8, bytes, false) {
		t.Fatal("boundary-crossing placement must match the explicit inter link")
	}
	if m.ReduceScatterTimeOn(inter, bytes) != m.ReduceScatterTimeAt(8, bytes, false) {
		t.Fatal("reduce-scatter placement pricing must match the explicit inter link")
	}
	// Trivial groups are free.
	if m.AllGatherTimeOn(Placement{0}, bytes) != 0 || m.AllReduceTimeOn(Placement{3}, bytes) != 0 {
		t.Fatal("single-rank collectives are free")
	}
	// Ring identity holds for placed pricing too.
	ar := m.AllReduceTimeOn(inter, bytes)
	rsag := m.ReduceScatterTimeOn(inter, bytes) + m.AllGatherTimeOn(inter, bytes/8)
	if math.Abs(ar-rsag)/ar > 0.01 {
		t.Fatalf("ring identity violated on placement: AR=%v RS+AG=%v", ar, rsag)
	}
}

func TestWireTime(t *testing.T) {
	m := Frontier()
	intra := Placement{0, 0}
	inter := Placement{0, 1}
	if got := m.WireTime(intra, 1<<20); got != float64(1<<20)/m.IntraBW {
		t.Fatalf("intra wire time = %v", got)
	}
	if !(m.WireTime(inter, 1<<20) > m.WireTime(intra, 1<<20)) {
		t.Fatal("inter-node wire time must exceed intra-node at equal bytes")
	}
	if m.WireTime(Placement{0}, 1<<20) != 0 {
		t.Fatal("single-rank groups put nothing on the wire")
	}
}
