package hw

import (
	"math"
	"strings"
	"testing"
)

func TestFrontierConstants(t *testing.T) {
	m := Frontier()
	if m.GPUMemBytes != 64<<30 {
		t.Fatalf("GCD memory = %d, want 64 GiB", m.GPUMemBytes)
	}
	if m.GPUsPerNode != 8 {
		t.Fatalf("GPUs per node = %d, want 8 (4x MI250X = 8 GCDs)", m.GPUsPerNode)
	}
	if m.IntraBW <= m.InterBWPerGPU {
		t.Fatal("intra-node Infinity Fabric must be faster than the per-GCD Slingshot share")
	}
	if m.UsableMemBytes() >= m.GPUMemBytes {
		t.Fatal("usable memory must leave allocator headroom")
	}
	if m.SustainedFLOPS() >= m.PeakTFLOPS*1e12 {
		t.Fatal("sustained rate must be below peak")
	}
}

func TestGroupPlacement(t *testing.T) {
	m := Frontier()
	if !m.GroupIntraNode(8) {
		t.Fatal("8 GCDs fit in one node")
	}
	if m.GroupIntraNode(16) {
		t.Fatal("16 GCDs span nodes")
	}
}

func TestCollectiveTimesScaleWithSizeAndBytes(t *testing.T) {
	m := Frontier()
	// Zero for trivial groups.
	if m.AllGatherTime(1, 1<<20) != 0 || m.AllReduceTime(1, 1<<20) != 0 || m.ReduceScatterTime(1, 1<<20) != 0 {
		t.Fatal("single-rank collectives are free")
	}
	// More bytes take longer.
	if !(m.AllGatherTime(4, 1<<24) > m.AllGatherTime(4, 1<<20)) {
		t.Fatal("AllGather must scale with volume")
	}
	// Crossing the node boundary costs more at equal volume.
	if !(m.AllReduceTime(16, 1<<24) > m.AllReduceTime(8, 1<<24)) {
		t.Fatal("inter-node all-reduce must cost more than intra-node")
	}
	// AllReduce ~ ReduceScatter + AllGather of the chunks.
	n, bytes := 4, int64(1<<24)
	ar := m.AllReduceTime(n, bytes)
	rsag := m.ReduceScatterTime(n, bytes) + m.AllGatherTime(n, bytes/int64(n))
	if math.Abs(ar-rsag)/ar > 0.01 {
		t.Fatalf("ring identity violated: AR=%v RS+AG=%v", ar, rsag)
	}
}

func TestExplicitLinkVariants(t *testing.T) {
	m := Frontier()
	intra := m.AllReduceTimeAt(4, 1<<24, true)
	inter := m.AllReduceTimeAt(4, 1<<24, false)
	if !(inter > intra) {
		t.Fatal("forced inter-node link must be slower")
	}
	if m.AllGatherTimeAt(1, 1<<20, true) != 0 || m.ReduceScatterTimeAt(1, 1<<20, false) != 0 {
		t.Fatal("single-rank variants are free")
	}
	// Contiguous convenience must match the explicit variant.
	if m.AllGatherTime(4, 1<<20) != m.AllGatherTimeAt(4, 1<<20, true) {
		t.Fatal("size-based link selection should be intra for n<=8")
	}
}

func TestComputeTimeAndNodes(t *testing.T) {
	m := Frontier()
	if m.ComputeTime(m.SustainedFLOPS()) != 1 {
		t.Fatal("one sustained-second of FLOPs must take one second")
	}
	if m.Nodes(1) != 1 || m.Nodes(8) != 1 || m.Nodes(9) != 2 || m.Nodes(1024) != 128 {
		t.Fatal("node counting wrong")
	}
}

func TestFormatBytes(t *testing.T) {
	if s := FormatBytes(64 << 30); !strings.Contains(s, "64.00 GiB") {
		t.Fatalf("FormatBytes = %q", s)
	}
}
