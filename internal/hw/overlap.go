package hw

// Comm/compute overlap arithmetic. A training step's compute time is a
// budget of seconds that communication can hide behind: every collective
// stream that the software pipeline overlaps with math (FSDP parameter
// prefetch, DP gradient buckets) draws its hidden time from that one
// budget, because the step has only one compute timeline — two streams
// cannot both hide behind the same GEMM. The budget therefore caps total
// hidden time at the step's compute time, which is what guarantees the
// overlapped step can never be priced below max(compute, total comm).
//
// The discipline-specific windows (which slice of compute a stream may
// overlap: the whole step for prefetch, only the backward pass for gradient
// buckets) and the calibrated efficiency factors live in internal/perfmodel;
// this file owns only the machine-level arithmetic.

// OverlapBudget tracks the compute seconds still available for hiding
// communication within one step. Streams draw from it in discipline order
// via Hide; the zero value is an empty budget (everything stays exposed).
type OverlapBudget struct {
	remaining float64
}

// NewOverlapBudget returns a budget of the step's compute seconds.
// Negative compute is treated as zero.
func NewOverlapBudget(computeSeconds float64) *OverlapBudget {
	if computeSeconds < 0 {
		computeSeconds = 0
	}
	return &OverlapBudget{remaining: computeSeconds}
}

// Remaining returns the compute seconds not yet claimed by any stream.
func (b *OverlapBudget) Remaining() float64 { return b.remaining }

// Hide prices one communication stream against the budget and returns its
// exposed (non-overlapped) seconds. The hidden portion is
//
//	hidden = min(factor*comm, window, remaining budget)
//
// — the stream hides at most the calibrated fraction of its own time, at
// most its discipline's compute window, and at most what no earlier stream
// has already claimed — and is consumed from the budget. factor is clamped
// to [0, 1] and window to [0, inf); factor 0 returns comm unchanged
// (bit-for-bit: nothing is subtracted), which is the serial composition.
func (b *OverlapBudget) Hide(comm, window, factor float64) float64 {
	if comm <= 0 {
		return 0
	}
	if factor <= 0 {
		return comm
	}
	if factor > 1 {
		factor = 1
	}
	hidden := factor * comm
	if window < 0 {
		window = 0
	}
	if hidden > window {
		hidden = window
	}
	if hidden > b.remaining {
		hidden = b.remaining
	}
	b.remaining -= hidden
	return comm - hidden
}
