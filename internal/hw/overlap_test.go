package hw

import "testing"

func TestOverlapBudgetHideBounds(t *testing.T) {
	b := NewOverlapBudget(1.0)
	// factor 1, window and budget ample: everything hides.
	if got := b.Hide(0.3, 1.0, 1.0); got != 0 {
		t.Fatalf("fully hideable stream exposed %v, want 0", got)
	}
	if got := b.Remaining(); got != 0.7 {
		t.Fatalf("remaining = %v, want 0.7", got)
	}
	// Window caps the hidden portion even with budget left.
	if got := b.Hide(0.5, 0.2, 1.0); got != 0.3 {
		t.Fatalf("window-capped stream exposed %v, want 0.3", got)
	}
	// Budget caps the hidden portion once earlier streams drained it.
	if got := b.Hide(10.0, 10.0, 1.0); got != 10.0-0.5 {
		t.Fatalf("budget-capped stream exposed %v, want 9.5", got)
	}
	if b.Remaining() != 0 {
		t.Fatalf("budget must be drained, remaining %v", b.Remaining())
	}
	// A drained budget exposes everything.
	if got := b.Hide(0.4, 1.0, 1.0); got != 0.4 {
		t.Fatalf("drained budget exposed %v, want 0.4", got)
	}
}

func TestOverlapBudgetFactorZeroIsSerialBitForBit(t *testing.T) {
	b := NewOverlapBudget(5.0)
	comm := 0.123456789
	if got := b.Hide(comm, 5.0, 0); got != comm {
		t.Fatalf("factor 0 exposed %v, want comm %v unchanged", got, comm)
	}
	if b.Remaining() != 5.0 {
		t.Fatal("factor 0 must not consume budget")
	}
}

func TestOverlapBudgetClamps(t *testing.T) {
	b := NewOverlapBudget(-1)
	if b.Remaining() != 0 {
		t.Fatal("negative compute must clamp to an empty budget")
	}
	if got := b.Hide(1.0, 1.0, 1.0); got != 1.0 {
		t.Fatal("empty budget must expose everything")
	}
	b = NewOverlapBudget(10)
	// factor > 1 clamps to 1; negative window clamps to 0.
	if got := b.Hide(2.0, 5.0, 3.0); got != 0 {
		t.Fatalf("factor > 1 must clamp to full hiding, exposed %v", got)
	}
	if got := b.Hide(2.0, -1, 1.0); got != 2.0 {
		t.Fatalf("negative window must hide nothing, exposed %v", got)
	}
	if got := b.Hide(0, 5, 1); got != 0 {
		t.Fatalf("zero comm must expose zero, got %v", got)
	}
	if got := b.Hide(-3, 5, 1); got != 0 {
		t.Fatalf("negative comm must expose zero, got %v", got)
	}
}

func TestOverlapBudgetMonotoneInFactor(t *testing.T) {
	// Exposed time is non-increasing as the factor rises, all else equal.
	prev := 2.0 + 1
	for _, f := range []float64{0, 0.25, 0.5, 0.75, 1} {
		b := NewOverlapBudget(0.8)
		got := b.Hide(2.0, 0.6, f)
		if got > prev {
			t.Fatalf("exposed rose from %v to %v at factor %v", prev, got, f)
		}
		prev = got
	}
}
