package hw

// Placement is the physical location of a collective group: element i is
// the node hosting the group's rank i, in ring order. Ring collectives move
// chunks between consecutive positions, so hop i connects position i to
// position (i+1) mod len(p) — the wraparound hop is a real link of the ring
// and is classified like any other.
//
// Placements are how placement-dependent link selection reaches the cost
// functions: intra-node hops run over Infinity Fabric (IntraBW/LatIntra),
// inter-node hops over the per-GCD Slingshot share (InterBWPerGPU/LatInter),
// and a mixed ring is priced by its slowest link, because every ring step
// moves all chunks in lockstep and completes only when the slowest hop does.
type Placement []int

// IntraNode reports whether every position of the placement is on one node.
// Trivial placements (size <= 1) are intra-node.
func (p Placement) IntraNode() bool {
	for _, n := range p {
		if n != p[0] {
			return false
		}
	}
	return true
}

// InterHops counts the ring hops (including the wraparound hop) that cross
// a node boundary.
func (p Placement) InterHops() int {
	if len(p) <= 1 {
		return 0
	}
	hops := 0
	for i := range p {
		if p[i] != p[(i+1)%len(p)] {
			hops++
		}
	}
	return hops
}

// NodeSpan returns the number of distinct nodes the placement touches.
func (p Placement) NodeSpan() int {
	seen := map[int]bool{}
	for _, n := range p {
		seen[n] = true
	}
	return len(seen)
}

// ContiguousPlacement returns the placement of n ranks packed densely from
// world rank start under the machine's node width — the layout of TP (and
// node-filling FSDP) groups in internal/dist. Unlike the deprecated
// GroupIntraNode, it is exact for groups that do not start at a node
// boundary.
func (m Machine) ContiguousPlacement(start, n int) Placement {
	p := make(Placement, n)
	for i := range p {
		p[i] = (start + i) / m.GPUsPerNode
	}
	return p
}

// RingLink returns the bandwidth and latency of the slowest link in the
// placement's ring: intra-node values when no hop crosses a node boundary,
// otherwise the inter-node values (the hop every lockstep ring step waits
// for). Trivial placements (size <= 1) are priced intra-node.
func (m Machine) RingLink(p Placement) (bw, lat float64) {
	if len(p) > 1 && p.InterHops() > 0 {
		return m.InterBWPerGPU, m.LatInter
	}
	return m.IntraBW, m.LatIntra
}

// ringSteps prices `steps` lockstep ring steps each moving chunkBytes per
// rank: every step costs the slowest hop's latency plus its transfer time.
func (m Machine) ringSteps(p Placement, steps float64, chunkBytes float64) float64 {
	bw, lat := m.RingLink(p)
	return steps*lat + steps*chunkBytes/bw
}

// AllGatherTimeOn returns the ring all-gather time for a group with the
// given placement, each rank contributing bytesPerRank.
func (m Machine) AllGatherTimeOn(p Placement, bytesPerRank int64) float64 {
	n := len(p)
	if n <= 1 {
		return 0
	}
	return m.ringSteps(p, float64(n-1), float64(bytesPerRank))
}

// AllReduceTimeOn returns the ring all-reduce (reduce-scatter + all-gather)
// time for a group with the given placement over a buffer of the given size.
func (m Machine) AllReduceTimeOn(p Placement, bytes int64) float64 {
	n := len(p)
	if n <= 1 {
		return 0
	}
	return m.ringSteps(p, 2*float64(n-1), float64(bytes)/float64(n))
}

// ReduceScatterTimeOn returns the ring reduce-scatter time for a group with
// the given placement over a buffer of the given size.
func (m Machine) ReduceScatterTimeOn(p Placement, bytes int64) float64 {
	n := len(p)
	if n <= 1 {
		return 0
	}
	return m.ringSteps(p, float64(n-1), float64(bytes)/float64(n))
}

// WireTime returns the time to move perRankBytes through the placement's
// slowest link at full bandwidth (no latency term) — the pricing used to
// convert measured traffic-ledger volumes into simulated seconds.
func (m Machine) WireTime(p Placement, perRankBytes int64) float64 {
	if len(p) <= 1 {
		return 0
	}
	bw, _ := m.RingLink(p)
	return float64(perRankBytes) / bw
}
