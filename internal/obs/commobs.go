package obs

import "repro/internal/comm"

// CommObserver adapts one tracer row to the comm.Observer hook points: a
// pre point opens a span named after the operation, the matching post
// point closes it with the recorded wire volume. One observer instance
// belongs to exactly one communicator — communicators are single-
// goroutine, and the substrate guarantees pre/post pairing (a post fires
// on every completed rendezvous, including the early-return branches),
// so a single open-span slot suffices.
//
// Install per axis with dist.Mesh.SetObserver:
//
//	mesh.SetObserver(func(a dist.Axis, rank int) comm.Observer {
//		return obs.NewCommObserver(tr.Rank(rank), obs.CommCat(a.String()))
//	})
type CommObserver struct {
	r    *Rank
	cat  string
	open Span
}

// CommCat interns the trace category for one mesh axis ("comm/tp",
// "comm/fsdp", "comm/dp"). Called once at observer construction so the
// record path reuses the string.
func CommCat(axis string) string { return "comm/" + axis }

// NewCommObserver builds an observer recording onto r under the given
// category. A nil r yields a working observer that records nothing —
// but prefer installing no observer at all when tracing is off, which
// keeps the disabled cost inside the communicator's single nil test.
func NewCommObserver(r *Rank, cat string) *CommObserver {
	return &CommObserver{r: r, cat: cat}
}

// OpPoint implements comm.Observer. Op names are static string constants
// (comm.OpAllReduce, ...), so the conversion below is allocation-free.
//
// dchag:hotpath
func (o *CommObserver) OpPoint(op comm.Op, pre bool, elems int) {
	if pre {
		o.open = o.r.Begin(string(op), o.cat)
		return
	}
	o.open.EndBytes(int64(elems) * comm.BytesPerElem)
	o.open = Span{}
}
