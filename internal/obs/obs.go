// Package obs is the unified observability layer: an allocation-free
// per-rank span tracer with fixed-capacity ring buffers, a Chrome
// trace-event JSON exporter (viewable in Perfetto / chrome://tracing), and
// the comm.Observer adapter that timestamps every collective and
// point-to-point operation a mesh executes.
//
// Design constraints, in order:
//
//   - Zero overhead when disabled. Every record entry point is nil-safe:
//     a nil *Tracer yields nil *Rank rows, and Begin/End/Instant on a nil
//     *Rank are a single pointer test. Call sites never branch.
//   - Allocation-free when enabled. Record methods carry the dchag:hotpath
//     marker, so the hotalloc analyzer enforces that the steady-state
//     record path performs no allocation: events land in preallocated
//     rings, span handles are values, and names must be static interned
//     strings (callers pass literals or pre-built labels, never
//     fmt.Sprintf results).
//   - Bounded memory. Each row is a fixed-capacity ring; when it wraps,
//     the oldest events are overwritten and counted in Dropped rather than
//     growing the buffer.
//
// A Tracer carries one row per mesh world rank plus, by convention, one
// extra row for the supervisor / front-end (the elastic generation loop,
// the serve engine). Trace time is relative to the tracer epoch; the
// exporter converts to the microseconds Chrome's trace viewer expects.
//
// See DESIGN.md "Observability" for the hook-point inventory.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Event is one recorded trace entry. Start and Dur are offsets from the
// tracer epoch; Ph distinguishes complete spans ('X') from instants ('i').
type Event struct {
	Seq   uint64
	Name  string
	Cat   string
	Start time.Duration
	Dur   time.Duration
	Ph    byte
	Bytes int64
}

// Tracer owns the per-row event rings and the run metadata exported with
// the trace. The zero value is not usable; a nil *Tracer is the disabled
// tracer and is safe everywhere.
type Tracer struct {
	epoch time.Time
	ranks []*Rank

	mu       sync.Mutex
	meta     map[string]string // guarded by mu
	rowNames []string          // guarded by mu
}

// NewTracer creates a tracer with rows independent event rings of the
// given capacity (events per row). Row i is retrieved with Rank(i).
func NewTracer(rows, capacity int) *Tracer {
	if rows <= 0 || capacity <= 0 {
		panic(fmt.Sprintf("obs: invalid tracer shape rows=%d capacity=%d", rows, capacity))
	}
	t := &Tracer{
		epoch:    time.Now(),
		ranks:    make([]*Rank, rows),
		meta:     make(map[string]string),
		rowNames: make([]string, rows),
	}
	for i := range t.ranks {
		t.ranks[i] = &Rank{epoch: t.epoch, row: i, events: make([]Event, capacity)}
	}
	return t
}

// Rows returns the number of rows, 0 for the disabled tracer.
func (t *Tracer) Rows() int {
	if t == nil {
		return 0
	}
	return len(t.ranks)
}

// Rank returns row i's recording handle. It is nil-safe in both
// directions: a nil tracer or an out-of-range row yields a nil *Rank,
// whose record methods are no-ops — so call sites thread tracer rows
// unconditionally and pay a pointer test when tracing is off.
func (t *Tracer) Rank(i int) *Rank {
	if t == nil || i < 0 || i >= len(t.ranks) {
		return nil
	}
	return t.ranks[i]
}

// SetMeta attaches a key/value pair to the trace metadata (build stamp,
// mesh shape, workload name). Exported verbatim by WriteChromeTrace.
func (t *Tracer) SetMeta(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta[key] = value
	t.mu.Unlock()
}

// Meta returns a copy of the trace metadata.
func (t *Tracer) Meta() map[string]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]string, len(t.meta))
	for k, v := range t.meta {
		out[k] = v
	}
	return out
}

// SetRowName labels row i in the exported trace (Chrome thread_name
// metadata). Unnamed rows default to "rank <i>".
func (t *Tracer) SetRowName(i int, name string) {
	if t == nil || i < 0 || i >= len(t.ranks) {
		return
	}
	t.mu.Lock()
	t.rowNames[i] = name
	t.mu.Unlock()
}

// RowName returns row i's label ("rank <i>" when unset).
func (t *Tracer) RowName(i int) string {
	if t == nil || i < 0 || i >= len(t.ranks) {
		return ""
	}
	t.mu.Lock()
	name := t.rowNames[i]
	t.mu.Unlock()
	if name == "" {
		name = fmt.Sprintf("rank %d", i)
	}
	return name
}

// Events returns row i's recorded events oldest-first. When the ring has
// wrapped, only the newest capacity events survive.
func (t *Tracer) Events(i int) []Event {
	r := t.Rank(i)
	if r == nil {
		return nil
	}
	return r.Events()
}

// Dropped returns how many events row i overwrote after its ring filled.
func (t *Tracer) Dropped(i int) uint64 {
	r := t.Rank(i)
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seq <= uint64(len(r.events)) {
		return 0
	}
	return r.seq - uint64(len(r.events))
}

// Rank is one row's recording handle: a fixed-capacity ring of events
// behind a mutex. Multiple goroutines may record on the same row (e.g.
// the per-axis comm observers of one world rank); a nil *Rank discards
// everything.
type Rank struct {
	epoch time.Time
	row   int

	mu     sync.Mutex
	events []Event // guarded by mu; fixed-capacity ring, slot = seq % cap
	seq    uint64  // guarded by mu; next sequence number
}

// Span is an open interval returned by Begin. It is a value handle: End
// closes it by locating its ring slot. If the ring wrapped past the slot
// in between, End is a silent no-op (the event was already sacrificed to
// the capacity bound).
type Span struct {
	r     *Rank
	seq   uint64
	start time.Duration
}

// Begin opens a span. name and cat must be static or interned strings —
// the ring stores them by reference and the hot path must not allocate.
//
// dchag:hotpath
func (r *Rank) Begin(name, cat string) Span {
	if r == nil {
		return Span{}
	}
	start := time.Since(r.epoch)
	r.mu.Lock()
	seq := r.seq
	r.seq++
	slot := &r.events[seq%uint64(len(r.events))]
	slot.Seq = seq
	slot.Name = name
	slot.Cat = cat
	slot.Start = start
	slot.Dur = 0
	slot.Ph = 'X'
	slot.Bytes = 0
	r.mu.Unlock()
	return Span{r: r, seq: seq, start: start}
}

// End closes the span with zero payload bytes.
//
// dchag:hotpath
func (s Span) End() { s.EndBytes(0) }

// EndBytes closes the span and attaches a byte volume (wire bytes for
// comm ops, payload bytes for serve batches).
//
// dchag:hotpath
func (s Span) EndBytes(bytes int64) {
	if s.r == nil {
		return
	}
	dur := time.Since(s.r.epoch) - s.start
	s.r.mu.Lock()
	slot := &s.r.events[s.seq%uint64(len(s.r.events))]
	// The ring may have lapped this span's slot; writing the duration
	// into a stranger's event would corrupt it.
	if slot.Seq == s.seq && slot.Ph == 'X' {
		slot.Dur = dur
		slot.Bytes = bytes
	}
	s.r.mu.Unlock()
}

// Instant records a zero-duration marker event (rank death, rendezvous,
// cache hit). name and cat must be static or interned strings.
//
// dchag:hotpath
func (r *Rank) Instant(name, cat string) {
	if r == nil {
		return
	}
	start := time.Since(r.epoch)
	r.mu.Lock()
	seq := r.seq
	r.seq++
	slot := &r.events[seq%uint64(len(r.events))]
	slot.Seq = seq
	slot.Name = name
	slot.Cat = cat
	slot.Start = start
	slot.Dur = 0
	slot.Ph = 'i'
	slot.Bytes = 0
	r.mu.Unlock()
}

// Row returns the row index (-1 on the nil handle).
func (r *Rank) Row() int {
	if r == nil {
		return -1
	}
	return r.row
}

// Events returns the row's events oldest-first (a copy).
func (r *Rank) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.events))
	if r.seq <= n {
		return append([]Event(nil), r.events[:r.seq]...)
	}
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.events[(r.seq+i)%n])
	}
	return out
}
