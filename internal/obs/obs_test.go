package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/tensor"
)

func TestNilTracerIsSafeEverywhere(t *testing.T) {
	var tr *Tracer
	if tr.Rows() != 0 {
		t.Fatalf("nil tracer rows = %d, want 0", tr.Rows())
	}
	r := tr.Rank(0)
	if r != nil {
		t.Fatalf("nil tracer Rank(0) = %v, want nil", r)
	}
	// Every record entry point must be a no-op on the nil row.
	sp := r.Begin("x", "y")
	sp.End()
	sp.EndBytes(7)
	r.Instant("x", "y")
	if got := r.Events(); got != nil {
		t.Fatalf("nil rank Events = %v, want nil", got)
	}
	if r.Row() != -1 {
		t.Fatalf("nil rank Row = %d, want -1", r.Row())
	}
	tr.SetMeta("k", "v")
	tr.SetRowName(0, "n")
	if tr.Meta() != nil {
		t.Fatalf("nil tracer Meta = %v, want nil", tr.Meta())
	}
}

func TestSpanAndInstantRecording(t *testing.T) {
	tr := NewTracer(2, 8)
	sp := tr.Rank(0).Begin("allreduce", "comm/tp")
	time.Sleep(time.Millisecond)
	sp.EndBytes(4096)
	tr.Rank(1).Instant("rank-death", "elastic")

	evs := tr.Events(0)
	if len(evs) != 1 {
		t.Fatalf("row 0 has %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Name != "allreduce" || ev.Cat != "comm/tp" || ev.Ph != 'X' || ev.Bytes != 4096 {
		t.Fatalf("unexpected span event %+v", ev)
	}
	if ev.Dur <= 0 {
		t.Fatalf("span duration %v, want > 0", ev.Dur)
	}
	ins := tr.Events(1)
	if len(ins) != 1 || ins[0].Ph != 'i' || ins[0].Name != "rank-death" {
		t.Fatalf("unexpected instant events %+v", ins)
	}
}

func TestRingOverwriteKeepsNewestAndCountsDropped(t *testing.T) {
	tr := NewTracer(1, 4)
	r := tr.Rank(0)
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, n := range names {
		r.Instant(n, "t")
	}
	evs := tr.Events(0)
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, want := range []string{"c", "d", "e", "f"} {
		if evs[i].Name != want {
			t.Fatalf("event %d = %q, want %q (ring should keep newest)", i, evs[i].Name, want)
		}
	}
	if got := tr.Dropped(0); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
}

func TestStaleSpanEndIsNoOp(t *testing.T) {
	tr := NewTracer(1, 2)
	r := tr.Rank(0)
	sp := r.Begin("victim", "t")
	// Lap the ring so the span's slot now holds a different event.
	r.Instant("x", "t")
	r.Instant("y", "t")
	r.Instant("z", "t")
	sp.EndBytes(999)
	for _, ev := range tr.Events(0) {
		if ev.Bytes == 999 || ev.Name == "victim" {
			t.Fatalf("stale End mutated a lapped slot: %+v", ev)
		}
	}
}

func TestRecordPathDoesNotAllocate(t *testing.T) {
	tr := NewTracer(1, 1024)
	r := tr.Rank(0)
	if allocs := testing.AllocsPerRun(200, func() {
		sp := r.Begin("allreduce", "comm/tp")
		sp.EndBytes(1024)
		r.Instant("tick", "t")
	}); allocs != 0 {
		t.Fatalf("enabled record path allocates %.1f per op, want 0", allocs)
	}
	var off *Rank
	if allocs := testing.AllocsPerRun(200, func() {
		sp := off.Begin("allreduce", "comm/tp")
		sp.End()
		off.Instant("tick", "t")
	}); allocs != 0 {
		t.Fatalf("disabled record path allocates %.1f per op, want 0", allocs)
	}
}

func TestConcurrentRecordOnSharedRow(t *testing.T) {
	tr := NewTracer(1, 1<<12)
	r := tr.Rank(0)
	var wg sync.WaitGroup
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := r.Begin("op", "t")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Events(0)); got != workers*per {
		t.Fatalf("recorded %d events, want %d", got, workers*per)
	}
}

func TestChromeTraceExportValidates(t *testing.T) {
	tr := NewTracer(2, 8)
	tr.SetMeta("version", "test")
	tr.SetRowName(1, "supervisor")
	sp := tr.Rank(0).Begin("forward", "train")
	sp.End()
	tr.Rank(1).Instant("generation-start", "elastic")

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails validation: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{`"thread_name"`, `"supervisor"`, `"forward"`, `"generation-start"`, `"version"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("exported trace missing %s:\n%s", want, out)
		}
	}
}

func TestValidateChromeTraceRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       `]`,
		"no traceEvents": `{"metadata":{}}`,
		"empty events":   `{"traceEvents":[]}`,
		"missing name":   `{"traceEvents":[{"ph":"X","ts":0,"dur":1,"pid":0,"tid":0}]}`,
		"missing dur":    `{"traceEvents":[{"name":"a","ph":"X","ts":0,"pid":0,"tid":0}]}`,
		"negative dur":   `{"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":-1,"pid":0,"tid":0}]}`,
		"bad phase":      `{"traceEvents":[{"name":"a","ph":"Q","ts":0,"pid":0,"tid":0}]}`,
		"bad scope":      `{"traceEvents":[{"name":"a","ph":"i","ts":0,"s":"x","pid":0,"tid":0}]}`,
		"no scope":       `{"traceEvents":[{"name":"a","ph":"i","ts":0,"pid":0,"tid":0}]}`,
	}
	for name, data := range cases {
		if err := ValidateChromeTrace([]byte(data)); err == nil {
			t.Errorf("%s: validator accepted malformed trace %s", name, data)
		}
	}
}

// TestCommObserverTracesCollectives drives a real 2-rank group with
// observers installed and checks every base op lands as a closed span
// with the ledger's wire volume.
func TestCommObserverTracesCollectives(t *testing.T) {
	tr := NewTracer(2, 64)
	g, err := comm.Run(2, func(c *comm.Communicator) error {
		c.SetObserver(NewCommObserver(tr.Rank(c.Rank()), CommCat("tp")))
		x := tensor.FromSlice([]float64{1, 2, 3, 4}, 4)
		c.Barrier()
		c.AllReduceSum(x)
		c.AllGather(x)
		c.ReduceScatterSum(x, 0)
		c.Broadcast(x, 0)
		c.Gather(x, 0)
		if c.Rank() == 0 {
			c.Send(1, x)
		} else {
			c.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("comm.Run: %v", err)
	}
	wantOps := map[string]int64{
		"barrier":       0,
		"allreduce":     2 * 4 / 2 * comm.BytesPerElem, // 2*(n-1)*numel/n
		"allgather":     4 * comm.BytesPerElem,
		"reducescatter": 4 / 2 * comm.BytesPerElem,
		"broadcast":     4 * comm.BytesPerElem,
		"gather":        4 * comm.BytesPerElem,
	}
	for rank := 0; rank < 2; rank++ {
		got := map[string]int64{}
		for _, ev := range tr.Events(rank) {
			if ev.Ph != 'X' {
				t.Fatalf("rank %d: comm event %+v is not a span", rank, ev)
			}
			if ev.Cat != "comm/tp" {
				t.Fatalf("rank %d: comm event category %q", rank, ev.Cat)
			}
			got[ev.Name] = ev.Bytes
		}
		for op, bytes := range wantOps {
			b, ok := got[op]
			if !ok {
				t.Fatalf("rank %d: no span for %s (got %v)", rank, op, got)
			}
			if b != bytes {
				t.Fatalf("rank %d %s: bytes = %d, want %d", rank, op, b, bytes)
			}
		}
	}
	// p2p: rank 0 sent, rank 1 received; spans carry the payload volume.
	found := func(rank int, name string) bool {
		for _, ev := range tr.Events(rank) {
			if ev.Name == name && ev.Bytes == 4*comm.BytesPerElem {
				return true
			}
		}
		return false
	}
	if !found(0, "send") || !found(1, "recv") {
		t.Fatalf("p2p spans missing: rank0=%v rank1=%v", tr.Events(0), tr.Events(1))
	}
	_ = g
}
