package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Chrome trace-event JSON export (the "JSON Object Format" of the Trace
// Event spec): {"traceEvents": [...], "displayTimeUnit": "ms",
// "metadata": {...}}. Spans become 'X' (complete) events, instants 'i'
// with thread scope, and each row gets an 'M' thread_name record so
// Perfetto labels the tracks. Timestamps and durations are microseconds
// relative to the tracer epoch; pid is always 0 (one process), tid is
// the row index.

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []traceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"metadata,omitempty"`
}

// WriteChromeTrace serializes the tracer's rings as Chrome trace-event
// JSON. The trace remains loadable while ranks keep recording (each
// ring is copied under its lock), but a consistent snapshot needs the
// run quiesced first.
func WriteChromeTrace(w io.Writer, t *Tracer) error {
	if t == nil {
		return fmt.Errorf("obs: cannot export nil tracer")
	}
	ct := chromeTrace{DisplayTimeUnit: "ms", Metadata: t.Meta()}
	for row := 0; row < t.Rows(); row++ {
		ct.TraceEvents = append(ct.TraceEvents, traceEvent{
			Name: "thread_name",
			Ph:   "M",
			Pid:  0,
			Tid:  row,
			Args: map[string]any{"name": t.RowName(row)},
		})
	}
	for row := 0; row < t.Rows(); row++ {
		for _, ev := range t.Events(row) {
			te := traceEvent{
				Name: ev.Name,
				Cat:  ev.Cat,
				Ph:   string(ev.Ph),
				Ts:   float64(ev.Start.Nanoseconds()) / 1e3,
				Pid:  0,
				Tid:  row,
			}
			switch ev.Ph {
			case 'X':
				dur := float64(ev.Dur.Nanoseconds()) / 1e3
				te.Dur = &dur
			case 'i':
				te.S = "t" // thread-scoped instant
			}
			if ev.Bytes != 0 {
				te.Args = map[string]any{"bytes": ev.Bytes}
			}
			ct.TraceEvents = append(ct.TraceEvents, te)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}

// WriteChromeTraceFile writes the trace to path (0644).
func WriteChromeTraceFile(path string, t *Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTrace(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ValidateChromeTrace checks data against the subset of the Chrome
// trace-event schema this package emits: a top-level object with a
// non-empty traceEvents array whose entries carry a name, a known phase
// ('X', 'i', or 'M'), numeric pid/tid, a numeric ts for timed phases, a
// non-negative dur for complete events, and a scope for instants. The
// trace-smoke CI gate runs every exported trace through it.
func ValidateChromeTrace(data []byte) error {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return fmt.Errorf("obs: trace is not a JSON object: %w", err)
	}
	raw, ok := top["traceEvents"]
	if !ok {
		return fmt.Errorf("obs: trace has no traceEvents key")
	}
	var events []map[string]json.RawMessage
	if err := json.Unmarshal(raw, &events); err != nil {
		return fmt.Errorf("obs: traceEvents is not an array of objects: %w", err)
	}
	if len(events) == 0 {
		return fmt.Errorf("obs: traceEvents is empty")
	}
	for i, ev := range events {
		var name string
		if err := unmarshalKey(ev, "name", &name); err != nil {
			return fmt.Errorf("obs: event %d: %w", i, err)
		}
		if name == "" {
			return fmt.Errorf("obs: event %d has an empty name", i)
		}
		var ph string
		if err := unmarshalKey(ev, "ph", &ph); err != nil {
			return fmt.Errorf("obs: event %d (%s): %w", i, name, err)
		}
		var pid, tid float64
		if err := unmarshalKey(ev, "pid", &pid); err != nil {
			return fmt.Errorf("obs: event %d (%s): %w", i, name, err)
		}
		if err := unmarshalKey(ev, "tid", &tid); err != nil {
			return fmt.Errorf("obs: event %d (%s): %w", i, name, err)
		}
		switch ph {
		case "M":
			// Metadata records carry no timestamp.
		case "X":
			var ts, dur float64
			if err := unmarshalKey(ev, "ts", &ts); err != nil {
				return fmt.Errorf("obs: event %d (%s): %w", i, name, err)
			}
			if err := unmarshalKey(ev, "dur", &dur); err != nil {
				return fmt.Errorf("obs: event %d (%s): %w", i, name, err)
			}
			if dur < 0 {
				return fmt.Errorf("obs: event %d (%s) has negative dur %v", i, name, dur)
			}
		case "i":
			var ts float64
			if err := unmarshalKey(ev, "ts", &ts); err != nil {
				return fmt.Errorf("obs: event %d (%s): %w", i, name, err)
			}
			var scope string
			if err := unmarshalKey(ev, "s", &scope); err != nil {
				return fmt.Errorf("obs: event %d (%s): %w", i, name, err)
			}
			switch scope {
			case "t", "p", "g":
			default:
				return fmt.Errorf("obs: event %d (%s) has invalid instant scope %q", i, name, scope)
			}
		default:
			return fmt.Errorf("obs: event %d (%s) has unsupported phase %q", i, name, ph)
		}
	}
	return nil
}

func unmarshalKey[T any](ev map[string]json.RawMessage, key string, dst *T) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %q", key)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		return fmt.Errorf("invalid %q: %w", key, err)
	}
	return nil
}
