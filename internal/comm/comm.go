// Package comm implements the collective-communication substrate the
// repository's distributed simulation runs on: a group of in-process ranks
// (one goroutine each) with rendezvous AllGather, AllReduce, ReduceScatter,
// Broadcast, Gather and Barrier operations that really move tensor data
// between ranks.
//
// It is the functional stand-in for RCCL on Frontier (see DESIGN.md): the
// algorithmic content of the paper — which tensors cross which rank boundary,
// in which pass — is exercised exactly, deterministically, and without
// hardware. Every operation is recorded in a Traffic ledger with the byte
// volume a ring implementation of the collective would put on the wire, so
// tests can assert communication claims (e.g. the D-CHAG module's
// zero-communication backward pass) quantitatively.
package comm

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// Group is the shared rendezvous state for a set of ranks. Create one with
// NewGroup and hand each rank its Communicator via Comm(rank), or use Run to
// manage the goroutines.
type Group struct {
	size int

	mu       sync.Mutex
	cond     *sync.Cond
	phase    uint64        // guarded by mu
	arrived  int           // guarded by mu
	slots    []any         // guarded by mu
	gathered []any         // guarded by mu
	aborted  bool          // guarded by mu
	done     chan struct{} // closed on Abort; releases p2p Send/Recv

	p2pMu sync.Mutex
	p2p   map[pairKey]chan *tensor.Tensor // guarded by p2pMu

	traffic *Traffic
}

// NewGroup creates a rendezvous group of the given size with a fresh traffic
// ledger.
func NewGroup(size int) *Group {
	if size <= 0 {
		panic(fmt.Sprintf("comm: group size %d must be positive", size))
	}
	g := &Group{size: size, slots: make([]any, size), traffic: NewTraffic(), done: make(chan struct{})}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Size returns the number of ranks in the group.
func (g *Group) Size() int { return g.size }

// Traffic returns the group's communication ledger.
func (g *Group) Traffic() *Traffic { return g.traffic }

// Comm returns the communicator handle for the given rank.
func (g *Group) Comm(rank int) *Communicator {
	if rank < 0 || rank >= g.size {
		panic(fmt.Sprintf("comm: rank %d out of range [0,%d)", rank, g.size))
	}
	return &Communicator{group: g, rank: rank, phaseLabel: "default"}
}

// Abort releases every rank blocked in a collective or a point-to-point
// Send/Recv; they panic with ErrAborted. Used when one rank fails so the
// others do not hang. Abort is idempotent and safe to call from any
// goroutine.
func (g *Group) Abort() {
	g.mu.Lock()
	if !g.aborted {
		g.aborted = true
		close(g.done)
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Aborted reports whether the group has been aborted.
func (g *Group) Aborted() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.aborted
}

// ErrAborted is the panic value raised in ranks blocked on a collective when
// the group is aborted.
var ErrAborted = fmt.Errorf("comm: group aborted")

// RankPanicError converts a value recovered from a rank goroutine's panic
// into that rank's error: ErrAborted releases are wrapped so errors.Is
// identifies them as cascades; anything else is reported as a panic. Shared
// by Run and dist.RunMesh so both classify failures identically.
func RankPanicError(scope string, rank int, rec any) error {
	if err, ok := rec.(error); ok {
		if errors.Is(err, ErrAborted) {
			return fmt.Errorf("%s: rank %d released from aborted collective: %w", scope, rank, ErrAborted)
		}
		// Wrap rather than format so typed panic values — e.g.
		// *faultinject.Killed — stay reachable via errors.As through the
		// per-rank error chain.
		return fmt.Errorf("%s: rank %d panicked: %w", scope, rank, err)
	}
	return fmt.Errorf("%s: rank %d panicked: %v", scope, rank, rec)
}

// RootCause picks the error to surface from a per-rank error slice: the
// first real error in rank order, falling back to the first ErrAborted
// cascade when no rank produced one, or nil when all succeeded.
func RootCause(errs []error) error {
	var abortErr error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, ErrAborted):
			if abortErr == nil {
				abortErr = err
			}
		default:
			return err
		}
	}
	return abortErr
}

// exchangeTensor deposits a defensive copy of x (nil allowed), so a rank
// that mutates its buffer immediately after the collective cannot race with
// slower ranks still reading the deposited value.
func (g *Group) exchangeTensor(rank int, x *tensor.Tensor) []any {
	var val any
	if x != nil {
		val = x.Clone()
	} else {
		val = (*tensor.Tensor)(nil)
	}
	return g.exchange(rank, val)
}

// exchange is the core rendezvous: every rank deposits one value and
// receives the slice of all ranks' values (indexed by rank). It blocks until
// all ranks of the group have arrived.
func (g *Group) exchange(rank int, val any) []any {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.aborted {
		panic(ErrAborted)
	}
	gen := g.phase
	g.slots[rank] = val
	g.arrived++
	if g.arrived == g.size {
		g.arrived = 0
		g.gathered = append([]any(nil), g.slots...)
		g.phase++
		g.cond.Broadcast()
	} else {
		for g.phase == gen && !g.aborted {
			g.cond.Wait()
		}
		// Panic only when the rendezvous cannot complete. A rank whose
		// phase already advanced holds the exchanged data; releasing it
		// with ErrAborted anyway would make the set of "failed" ranks
		// depend on wake-up order — nondeterminism the fault-injection
		// harness cannot tolerate.
		if g.phase == gen && g.aborted {
			panic(ErrAborted)
		}
	}
	return g.gathered
}

// Run spawns fn on every rank of a fresh group and waits for all of them.
// A panic in any rank aborts the group (so no rank hangs) and is returned as
// an error. When one rank's failure cascades — other ranks are released from
// blocked collectives with ErrAborted — the root cause is returned in
// preference to the cascade errors. The group is returned for traffic
// inspection.
func Run(size int, fn func(c *Communicator) error) (*Group, error) {
	g := NewGroup(size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = RankPanicError("comm", rank, rec)
					g.Abort()
				}
			}()
			errs[rank] = fn(g.Comm(rank))
			if errs[rank] != nil {
				g.Abort()
			}
		}(r)
	}
	wg.Wait()
	return g, RootCause(errs)
}

// FaultInjector observes every base collective and point-to-point operation
// a communicator executes, immediately before (pre=true) and after
// (pre=false) the rendezvous. id names the calling rank in the injector's
// own namespace — dist.Mesh wires it to the world rank, so one injector
// sees a single per-rank operation sequence across all axis groups. An
// injector kills a rank by panicking from Point; the panic propagates
// exactly like any other rank failure (group abort, ErrAborted cascades).
type FaultInjector interface {
	Point(id int, op Op, pre bool)
}

// Observer is the passive twin of FaultInjector: it sees every base
// collective and point-to-point operation immediately before (pre=true)
// and after (pre=false) the rendezvous, without the power to kill the
// rank. The post point carries the per-rank ring wire volume in float64
// elements (the same figure the Traffic ledger records; multiply by
// BytesPerElem for bytes); pre points carry zero. Observers must be fast
// and allocation-free — they run inline on every communication operation
// of their rank — and need not be safe for concurrent use: each
// communicator calls its own observer from its single rank goroutine.
//
// Hook ordering places the observer strictly inside the fault-injection
// envelope (pre: fault then observe; post: observe then fault), so a
// fault fired at a post point cannot strand a half-open span.
type Observer interface {
	OpPoint(op Op, pre bool, elems int)
}

// Communicator is a single rank's handle on its group. It is not safe for
// concurrent use by multiple goroutines; each rank goroutine owns one.
type Communicator struct {
	group      *Group
	rank       int
	phaseLabel string
	fault      FaultInjector
	faultID    int
	obs        Observer
}

// SetFaultInjector installs f on this communicator under the given injector
// id. Must be called before the communicator is used; convenience wrappers
// (AllGatherConcat, AllReduceMean, AllReduceScalarSum, RingAllReduceSum)
// instrument only the base operations they are built from, so each
// wire-level rendezvous is exactly one injection point.
func (c *Communicator) SetFaultInjector(f FaultInjector, id int) {
	c.fault = f
	c.faultID = id
}

func (c *Communicator) faultPoint(op Op, pre bool) {
	if c.fault != nil {
		c.fault.Point(c.faultID, op, pre)
	}
}

// SetObserver installs o on this communicator. Like SetFaultInjector it
// must be called before the communicator is used; the convenience
// wrappers instrument only the base operations they are built from, so
// each wire-level rendezvous is exactly one observed interval.
func (c *Communicator) SetObserver(o Observer) { c.obs = o }

// obsPoint forwards one hook point to the installed observer. The
// disabled path is a single nil test.
//
// dchag:hotpath
func (c *Communicator) obsPoint(op Op, pre bool, elems int) {
	if c.obs != nil {
		c.obs.OpPoint(op, pre, elems)
	}
}

// Rank returns this communicator's rank within the group.
func (c *Communicator) Rank() int { return c.rank }

// Size returns the group size.
func (c *Communicator) Size() int { return c.group.size }

// Group returns the underlying group.
func (c *Communicator) Group() *Group { return c.group }

// SetPhase labels subsequent traffic entries (e.g. "forward", "backward").
// Tests use phases to assert where communication happens.
func (c *Communicator) SetPhase(label string) { c.phaseLabel = label }

// Phase returns the current traffic label.
func (c *Communicator) Phase() string { return c.phaseLabel }

func (c *Communicator) record(op Op, elems int) {
	c.group.traffic.Record(c.rank, c.phaseLabel, op, elems)
}

// Barrier blocks until every rank has reached it.
func (c *Communicator) Barrier() {
	c.faultPoint(OpBarrier, true)
	c.obsPoint(OpBarrier, true, 0)
	c.record(OpBarrier, 0)
	c.group.exchange(c.rank, nil)
	c.obsPoint(OpBarrier, false, 0)
	c.faultPoint(OpBarrier, false)
}

// AllGather exchanges each rank's tensor and returns fresh copies of all of
// them, indexed by rank. Contributions may differ in shape.
func (c *Communicator) AllGather(x *tensor.Tensor) []*tensor.Tensor {
	c.faultPoint(OpAllGather, true)
	c.obsPoint(OpAllGather, true, 0)
	vals := c.group.exchangeTensor(c.rank, x)
	out := make([]*tensor.Tensor, len(vals))
	total := 0
	for i, v := range vals {
		t := v.(*tensor.Tensor)
		out[i] = t.Clone()
		total += t.Numel()
	}
	// Ring all-gather wire volume per rank: every element that is not
	// already local transits this rank once.
	c.record(OpAllGather, total-x.Numel())
	c.obsPoint(OpAllGather, false, total-x.Numel())
	c.faultPoint(OpAllGather, false)
	return out
}

// AllGatherConcat gathers each rank's tensor and concatenates the results
// along the given axis in rank order.
func (c *Communicator) AllGatherConcat(x *tensor.Tensor, axis int) *tensor.Tensor {
	parts := c.AllGather(x)
	return tensor.Concat(axis, parts...)
}

// AllReduceSum returns the elementwise sum of every rank's tensor. All
// contributions must share a shape.
func (c *Communicator) AllReduceSum(x *tensor.Tensor) *tensor.Tensor {
	c.faultPoint(OpAllReduce, true)
	c.obsPoint(OpAllReduce, true, 0)
	vals := c.group.exchangeTensor(c.rank, x)
	out := vals[0].(*tensor.Tensor).Clone()
	for _, v := range vals[1:] {
		t := v.(*tensor.Tensor)
		if !tensor.SameShape(out, t) {
			panic(fmt.Sprintf("comm: AllReduceSum shape mismatch %v vs %v", out.Shape, t.Shape))
		}
		tensor.AddInPlace(out, t)
	}
	// Ring all-reduce wire volume per rank: 2*(n-1)/n elements.
	c.record(OpAllReduce, 2*(c.Size()-1)*x.Numel()/c.Size())
	c.obsPoint(OpAllReduce, false, 2*(c.Size()-1)*x.Numel()/c.Size())
	c.faultPoint(OpAllReduce, false)
	return out
}

// AllReduceMean returns the elementwise mean of every rank's tensor.
func (c *Communicator) AllReduceMean(x *tensor.Tensor) *tensor.Tensor {
	out := c.AllReduceSum(x)
	tensor.ScaleInPlace(out, 1/float64(c.Size()))
	return out
}

// AllReduceMax returns the elementwise maximum of every rank's tensor.
func (c *Communicator) AllReduceMax(x *tensor.Tensor) *tensor.Tensor {
	c.faultPoint(OpAllReduce, true)
	c.obsPoint(OpAllReduce, true, 0)
	vals := c.group.exchangeTensor(c.rank, x)
	out := vals[0].(*tensor.Tensor).Clone()
	for _, v := range vals[1:] {
		t := v.(*tensor.Tensor)
		for i, tv := range t.Data {
			if tv > out.Data[i] {
				out.Data[i] = tv
			}
		}
	}
	c.record(OpAllReduce, 2*(c.Size()-1)*x.Numel()/c.Size())
	c.obsPoint(OpAllReduce, false, 2*(c.Size()-1)*x.Numel()/c.Size())
	c.faultPoint(OpAllReduce, false)
	return out
}

// AllReduceScalarSum sums a scalar across ranks (convenience for losses and
// metrics).
func (c *Communicator) AllReduceScalarSum(v float64) float64 {
	t := tensor.FromSlice([]float64{v}, 1)
	return c.AllReduceSum(t).Data[0]
}

// ReduceScatterSum splits every rank's tensor into Size equal chunks along
// axis, sums chunk r across ranks, and returns chunk r to rank r. The axis
// extent must be divisible by the group size.
func (c *Communicator) ReduceScatterSum(x *tensor.Tensor, axis int) *tensor.Tensor {
	c.faultPoint(OpReduceScatter, true)
	c.obsPoint(OpReduceScatter, true, 0)
	vals := c.group.exchangeTensor(c.rank, x)
	var out *tensor.Tensor
	for _, v := range vals {
		t := v.(*tensor.Tensor)
		chunk := tensor.SplitEqual(t, axis, c.Size())[c.rank]
		if out == nil {
			out = chunk
		} else {
			tensor.AddInPlace(out, chunk)
		}
	}
	// Ring reduce-scatter wire volume per rank: (n-1)/n elements.
	c.record(OpReduceScatter, (c.Size()-1)*x.Numel()/c.Size())
	c.obsPoint(OpReduceScatter, false, (c.Size()-1)*x.Numel()/c.Size())
	c.faultPoint(OpReduceScatter, false)
	return out
}

// Broadcast returns a copy of root's tensor on every rank. Non-root ranks
// may pass nil.
func (c *Communicator) Broadcast(x *tensor.Tensor, root int) *tensor.Tensor {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("comm: Broadcast root %d out of range", root))
	}
	c.faultPoint(OpBroadcast, true)
	c.obsPoint(OpBroadcast, true, 0)
	vals := c.group.exchangeTensor(c.rank, x)
	src := vals[root].(*tensor.Tensor)
	c.record(OpBroadcast, src.Numel())
	c.obsPoint(OpBroadcast, false, src.Numel())
	c.faultPoint(OpBroadcast, false)
	return src.Clone()
}

// Gather returns all ranks' tensors (in rank order) on root and nil on every
// other rank.
func (c *Communicator) Gather(x *tensor.Tensor, root int) []*tensor.Tensor {
	c.faultPoint(OpGather, true)
	c.obsPoint(OpGather, true, 0)
	vals := c.group.exchangeTensor(c.rank, x)
	if c.rank != root {
		c.record(OpGather, x.Numel())
		c.obsPoint(OpGather, false, x.Numel())
		c.faultPoint(OpGather, false)
		return nil
	}
	out := make([]*tensor.Tensor, len(vals))
	for i, v := range vals {
		out[i] = v.(*tensor.Tensor).Clone()
	}
	c.record(OpGather, x.Numel())
	c.obsPoint(OpGather, false, x.Numel())
	c.faultPoint(OpGather, false)
	return out
}
