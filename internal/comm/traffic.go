package comm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Op identifies a collective operation kind in the traffic ledger.
type Op string

// Collective operation kinds.
const (
	OpAllGather     Op = "allgather"
	OpAllReduce     Op = "allreduce"
	OpReduceScatter Op = "reducescatter"
	OpBroadcast     Op = "broadcast"
	OpGather        Op = "gather"
	OpSend          Op = "send"
	OpRecv          Op = "recv" // fault-injection points only; Recv moves no bytes of its own
	OpBarrier       Op = "barrier"
)

// BytesPerElem is the byte width of one element on the simulated wire:
// the collectives exchange float64 tensors, so every elems figure the
// Traffic ledger and the Observer hook report converts to bytes at 8.
const BytesPerElem = 8

// Stat accumulates call count and byte volume for one ledger key.
type Stat struct {
	Calls int
	Bytes int64
}

type trafficKey struct {
	Rank  int
	Phase string
	Op    Op
}

// Traffic is a thread-safe ledger of collective operations, keyed by
// (rank, phase label, op). The byte volumes recorded are the per-rank wire
// volumes of ring implementations of each collective, which is what the
// paper's communication claims are about.
type Traffic struct {
	mu      sync.Mutex
	entries map[trafficKey]*Stat
}

// NewTraffic returns an empty ledger.
func NewTraffic() *Traffic {
	return &Traffic{entries: make(map[trafficKey]*Stat)}
}

// Record adds one operation of elems float64 elements for (rank, phase, op).
func (t *Traffic) Record(rank int, phase string, op Op, elems int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := trafficKey{Rank: rank, Phase: phase, Op: op}
	s := t.entries[k]
	if s == nil {
		s = &Stat{}
		t.entries[k] = s
	}
	s.Calls++
	s.Bytes += int64(elems) * BytesPerElem
}

// Reset clears the ledger.
func (t *Traffic) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = make(map[trafficKey]*Stat)
}

// BytesInPhase returns the total bytes recorded under the given phase label
// across all ranks and ops. Barrier entries carry zero bytes.
func (t *Traffic) BytesInPhase(phase string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total int64
	for k, s := range t.entries {
		if k.Phase == phase {
			total += s.Bytes
		}
	}
	return total
}

// CallsInPhase returns the total collective calls under the given phase
// label, excluding barriers.
func (t *Traffic) CallsInPhase(phase string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	total := 0
	for k, s := range t.entries {
		if k.Phase == phase && k.Op != OpBarrier {
			total += s.Calls
		}
	}
	return total
}

// BytesFor returns bytes for a specific (rank, phase, op) triple.
func (t *Traffic) BytesFor(rank int, phase string, op Op) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.entries[trafficKey{Rank: rank, Phase: phase, Op: op}]; s != nil {
		return s.Bytes
	}
	return 0
}

// CallsFor returns call count for a specific (rank, phase, op) triple.
func (t *Traffic) CallsFor(rank int, phase string, op Op) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s := t.entries[trafficKey{Rank: rank, Phase: phase, Op: op}]; s != nil {
		return s.Calls
	}
	return 0
}

// TotalBytes returns the ledger-wide byte volume.
func (t *Traffic) TotalBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var total int64
	for _, s := range t.entries {
		total += s.Bytes
	}
	return total
}

// String renders the ledger sorted by rank, phase and op, for debugging and
// experiment reports.
func (t *Traffic) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]trafficKey, 0, len(t.entries))
	for k := range t.entries {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Rank != keys[j].Rank {
			return keys[i].Rank < keys[j].Rank
		}
		if keys[i].Phase != keys[j].Phase {
			return keys[i].Phase < keys[j].Phase
		}
		return keys[i].Op < keys[j].Op
	})
	var b strings.Builder
	for _, k := range keys {
		s := t.entries[k]
		fmt.Fprintf(&b, "rank %d  %-10s %-14s calls=%-4d bytes=%d\n", k.Rank, k.Phase, k.Op, s.Calls, s.Bytes)
	}
	return b.String()
}
