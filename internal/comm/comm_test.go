package comm

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/tensor"
)

func TestAllGatherOrderAndContent(t *testing.T) {
	const size = 4
	_, err := Run(size, func(c *Communicator) error {
		x := tensor.Full(float64(c.Rank()), 2)
		parts := c.AllGather(x)
		if len(parts) != size {
			return fmt.Errorf("got %d parts", len(parts))
		}
		for r, p := range parts {
			if p.Data[0] != float64(r) || p.Data[1] != float64(r) {
				return fmt.Errorf("rank %d saw wrong part %d: %v", c.Rank(), r, p.Data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherReturnsCopies(t *testing.T) {
	// Mutating a gathered tensor must not affect other ranks' views.
	_, err := Run(2, func(c *Communicator) error {
		x := tensor.Full(float64(c.Rank()), 3)
		parts := c.AllGather(x)
		parts[0].Fill(99) // would corrupt rank 0's contribution if shared
		c.Barrier()
		again := c.AllGather(x)
		if again[0].Data[0] == 99 && c.Rank() == 1 {
			return fmt.Errorf("gathered tensors alias across ranks")
		}
		if x.Data[0] != float64(c.Rank()) {
			return fmt.Errorf("local input mutated")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherVariableShapes(t *testing.T) {
	_, err := Run(3, func(c *Communicator) error {
		x := tensor.Full(1, c.Rank()+1) // rank r contributes r+1 elements
		parts := c.AllGather(x)
		for r, p := range parts {
			if p.Numel() != r+1 {
				return fmt.Errorf("part %d has %d elems", r, p.Numel())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherConcat(t *testing.T) {
	_, err := Run(2, func(c *Communicator) error {
		x := tensor.Full(float64(c.Rank()), 1, 2)
		joined := c.AllGatherConcat(x, 1)
		want := []float64{0, 0, 1, 1}
		for i, w := range want {
			if joined.Data[i] != w {
				return fmt.Errorf("concat = %v", joined.Data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceSumEqualsSumOfInputs(t *testing.T) {
	const size = 5
	_, err := Run(size, func(c *Communicator) error {
		x := tensor.Full(float64(c.Rank()+1), 3)
		s := c.AllReduceSum(x)
		want := float64(size * (size + 1) / 2)
		for _, v := range s.Data {
			if v != want {
				return fmt.Errorf("sum = %v, want %v", v, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceMeanAndMax(t *testing.T) {
	_, err := Run(4, func(c *Communicator) error {
		x := tensor.Full(float64(c.Rank()), 2)
		m := c.AllReduceMean(x)
		if m.Data[0] != 1.5 {
			return fmt.Errorf("mean = %v, want 1.5", m.Data[0])
		}
		mx := c.AllReduceMax(x)
		if mx.Data[0] != 3 {
			return fmt.Errorf("max = %v, want 3", mx.Data[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduceScalarSum(t *testing.T) {
	_, err := Run(3, func(c *Communicator) error {
		got := c.AllReduceScalarSum(float64(c.Rank()))
		if got != 3 {
			return fmt.Errorf("scalar sum = %v, want 3", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterSum(t *testing.T) {
	const size = 2
	_, err := Run(size, func(c *Communicator) error {
		// rank r contributes [r, r, 10r, 10r] split into 2 chunks of 2.
		r := float64(c.Rank())
		x := tensor.FromSlice([]float64{r, r, 10 * r, 10 * r}, 4)
		out := c.ReduceScatterSum(x, 0)
		if out.Numel() != 2 {
			return fmt.Errorf("chunk size = %d", out.Numel())
		}
		var want float64
		if c.Rank() == 0 {
			want = 0 + 1 // sum of first chunks
		} else {
			want = 0 + 10 // sum of second chunks
		}
		if out.Data[0] != want || out.Data[1] != want {
			return fmt.Errorf("rank %d chunk = %v, want %v", c.Rank(), out.Data, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterThenAllGatherEqualsAllReduce(t *testing.T) {
	// The classic decomposition identity, here as a property over seeds.
	f := func(seed int64) bool {
		const size = 4
		rng := tensor.NewRNG(seed)
		inputs := make([]*tensor.Tensor, size)
		for r := range inputs {
			inputs[r] = tensor.Randn(rng, size*3)
		}
		ok := true
		_, err := Run(size, func(c *Communicator) error {
			viaAR := c.AllReduceSum(inputs[c.Rank()])
			chunk := c.ReduceScatterSum(inputs[c.Rank()], 0)
			viaRSAG := c.AllGatherConcat(chunk, 0)
			if tensor.MaxAbsDiff(viaAR, viaRSAG) > 1e-12 {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast(t *testing.T) {
	_, err := Run(3, func(c *Communicator) error {
		var x *tensor.Tensor
		if c.Rank() == 1 {
			x = tensor.FromSlice([]float64{7, 8}, 2)
		}
		got := c.Broadcast(x, 1)
		if got.Data[0] != 7 || got.Data[1] != 8 {
			return fmt.Errorf("broadcast = %v", got.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	_, err := Run(3, func(c *Communicator) error {
		x := tensor.Full(float64(c.Rank()), 1)
		got := c.Gather(x, 2)
		if c.Rank() != 2 {
			if got != nil {
				return fmt.Errorf("non-root got %v", got)
			}
			return nil
		}
		for r, p := range got {
			if p.Data[0] != float64(r) {
				return fmt.Errorf("root gathered %v", p.Data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSequentialCollectivesDoNotInterleave(t *testing.T) {
	// Back-to-back collectives with different values must not bleed into
	// each other even when ranks race.
	_, err := Run(4, func(c *Communicator) error {
		for i := 0; i < 50; i++ {
			x := tensor.Full(float64(i*10+c.Rank()), 1)
			s := c.AllReduceSum(x)
			want := float64(4*10*i + 0 + 1 + 2 + 3)
			if s.Data[0] != want {
				return fmt.Errorf("iter %d: sum %v, want %v", i, s.Data[0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	_, err := Run(3, func(c *Communicator) error {
		if c.Rank() == 1 {
			return fmt.Errorf("boom")
		}
		// Other ranks block on a collective; the abort must release them.
		defer func() { recover() }() // swallow ErrAborted panic
		c.Barrier()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	_, err := Run(2, func(c *Communicator) error {
		if c.Rank() == 0 {
			panic("rank zero exploded")
		}
		defer func() { recover() }()
		c.Barrier()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("err = %v, want panic text", err)
	}
}

func TestRunPrefersRootCauseOverAbortCascade(t *testing.T) {
	// Rank 0 blocks in a collective and is released by rank 1's failure with
	// an ErrAborted panic; Run must report rank 1's error, not the cascade.
	boom := errors.New("root cause")
	g, err := Run(2, func(c *Communicator) error {
		if c.Rank() == 1 {
			return boom
		}
		c.Barrier() // released by abort; the ErrAborted panic reaches Run's recover
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if !g.Aborted() {
		t.Fatal("group should report aborted")
	}
}

func TestAbortReleasesBlockedRecv(t *testing.T) {
	leakcheck.Check(t)
	// A rank stranded in a p2p Recv (not a rendezvous collective) must also
	// be released by the abort, within the timeout.
	done := make(chan error, 1)
	go func() {
		_, err := Run(2, func(c *Communicator) error {
			if c.Rank() == 0 {
				return errors.New("sender died")
			}
			c.Recv(0) // never satisfied; must panic ErrAborted on abort
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "sender died") {
			t.Fatalf("err = %v, want sender's error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Recv deadlocked after peer failure")
	}
}

func TestAbortReleasesBlockedSend(t *testing.T) {
	leakcheck.Check(t)
	// Send blocks once the pair buffer (capacity 4) is full; abort must
	// release it too.
	done := make(chan error, 1)
	go func() {
		_, err := Run(2, func(c *Communicator) error {
			if c.Rank() == 1 {
				return errors.New("receiver died")
			}
			for i := 0; i < 16; i++ { // overflows the buffer, then blocks
				c.Send(1, tensor.Full(1, 1))
			}
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "receiver died") {
			t.Fatalf("err = %v, want receiver's error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Send deadlocked after peer failure")
	}
}

func TestTrafficLedgerPhases(t *testing.T) {
	g, err := Run(2, func(c *Communicator) error {
		c.SetPhase("forward")
		c.AllGather(tensor.Full(1, 10))
		c.SetPhase("backward")
		// no collectives in backward
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.Traffic().BytesInPhase("backward") != 0 {
		t.Fatal("backward phase must have zero bytes")
	}
	fwd := g.Traffic().BytesInPhase("forward")
	// Each rank relays the other's 10 elements: 2 ranks * 10 elems * 8 B.
	if fwd != 2*10*8 {
		t.Fatalf("forward bytes = %d, want 160", fwd)
	}
	if g.Traffic().CallsFor(0, "forward", OpAllGather) != 1 {
		t.Fatal("call count wrong")
	}
}

func TestTrafficAllReduceVolume(t *testing.T) {
	g, err := Run(4, func(c *Communicator) error {
		c.SetPhase("sync")
		c.AllReduceSum(tensor.Full(1, 8))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Ring all-reduce: 2*(n-1)/n * numel elements per rank = 2*3/4*8 = 12
	// elements = 96 bytes per rank, 4 ranks.
	if got := g.Traffic().BytesInPhase("sync"); got != 4*12*8 {
		t.Fatalf("allreduce bytes = %d, want 384", got)
	}
}

func TestTrafficStringAndReset(t *testing.T) {
	g, err := Run(2, func(c *Communicator) error {
		c.AllReduceSum(tensor.Full(1, 2))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.Traffic().String(), "allreduce") {
		t.Fatal("String missing op name")
	}
	g.Traffic().Reset()
	if g.Traffic().TotalBytes() != 0 {
		t.Fatal("Reset did not clear ledger")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// All ranks must observe every other rank's pre-barrier write after the
	// barrier. The exchange itself is the synchronization point.
	const size = 8
	flags := make([]int32, size)
	_, err := Run(size, func(c *Communicator) error {
		flags[c.Rank()] = 1
		c.Barrier()
		for r, f := range flags {
			if f != 1 {
				return fmt.Errorf("rank %d not visible after barrier", r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size 0")
		}
	}()
	NewGroup(0)
}

func TestCommRankValidation(t *testing.T) {
	g := NewGroup(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad rank")
		}
	}()
	g.Comm(2)
}

func TestSendRecvPointToPoint(t *testing.T) {
	_, err := Run(3, func(c *Communicator) error {
		// Each rank sends its rank value to the next and receives from the
		// previous.
		next := (c.Rank() + 1) % 3
		prev := (c.Rank() + 2) % 3
		c.Send(next, tensor.Full(float64(c.Rank()), 2))
		got := c.Recv(prev)
		if got.Data[0] != float64(prev) {
			return fmt.Errorf("rank %d received %v, want %d", c.Rank(), got.Data[0], prev)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendIsCopy(t *testing.T) {
	_, err := Run(2, func(c *Communicator) error {
		// Send/Recv are rank-addressed, but the Barrier is kept outside the
		// rank conditional so both ranks run the same collective sequence.
		var got *tensor.Tensor
		if c.Rank() == 0 {
			x := tensor.Full(1, 2)
			c.Send(1, x)
			x.Fill(99) // must not affect what rank 1 receives
		} else {
			got = c.Recv(0)
		}
		c.Barrier()
		if c.Rank() == 1 && got.Data[0] != 1 {
			return fmt.Errorf("receiver saw sender's mutation: %v", got.Data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	g := NewGroup(2)
	c := g.Comm(0)
	for _, bad := range []int{-1, 0, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Send to %d should panic", bad)
				}
			}()
			c.Send(bad, tensor.New(1))
		}()
	}
}

func TestRingAllReduceMatchesRendezvous(t *testing.T) {
	f := func(seed int64) bool {
		const n = 4
		rng := tensor.NewRNG(seed)
		inputs := make([]*tensor.Tensor, n)
		for r := range inputs {
			inputs[r] = tensor.Randn(rng, n*5)
		}
		ok := true
		_, err := Run(n, func(c *Communicator) error {
			want := c.AllReduceSum(inputs[c.Rank()])
			got := c.RingAllReduceSum(inputs[c.Rank()])
			if tensor.MaxAbsDiff(got, want) > 1e-12 {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRingAllReduceWireVolumeMatchesModel(t *testing.T) {
	// The whole point of the ring implementation: its actual Send traffic
	// must equal the 2*(n-1)/n*numel volume the ledger models for
	// OpAllReduce (and internal/hw charges for ring all-reduce time).
	const n, numel = 4, 32
	g, err := Run(n, func(c *Communicator) error {
		c.SetPhase("ring")
		c.RingAllReduceSum(tensor.Full(float64(c.Rank()), numel))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantPerRank := int64(2*(n-1)*numel/n) * 8
	for r := 0; r < n; r++ {
		if got := g.Traffic().BytesFor(r, "ring", OpSend); got != wantPerRank {
			t.Fatalf("rank %d ring sends %d bytes, model says %d", r, got, wantPerRank)
		}
	}
}

func TestRingAllReduceSingleRankAndValidation(t *testing.T) {
	_, err := Run(1, func(c *Communicator) error {
		x := tensor.Full(3, 4)
		got := c.RingAllReduceSum(x)
		if tensor.MaxAbsDiff(got, x) != 0 {
			return fmt.Errorf("single-rank ring must be identity")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(2, func(c *Communicator) (err error) {
		defer func() {
			if recover() != nil {
				err = fmt.Errorf("panicked as expected")
			}
		}()
		c.RingAllReduceSum(tensor.New(3)) // 3 not divisible by 2
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "as expected") {
		t.Fatalf("want divisibility panic, got %v", err)
	}
}
