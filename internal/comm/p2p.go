package comm

import (
	"fmt"

	"repro/internal/tensor"
)

// Point-to-point messaging between ranks, and a ring all-reduce built on it.
//
// The rendezvous collectives in comm.go are the *functional* substrate; the
// ring implementation here exists to validate the cost model: the byte
// volumes the Traffic ledger records for OpAllReduce (2*(n-1)/n elements per
// rank) and the ring formulas in internal/hw are exactly what this
// algorithm puts on the wire, which the tests verify by counting actual
// Send traffic.

type pairKey struct{ from, to int }

// pairChan returns the buffered channel carrying messages from -> to,
// creating it on first use.
func (g *Group) pairChan(from, to int) chan *tensor.Tensor {
	g.p2pMu.Lock()
	defer g.p2pMu.Unlock()
	if g.p2p == nil {
		g.p2p = make(map[pairKey]chan *tensor.Tensor)
	}
	k := pairKey{from, to}
	ch, ok := g.p2p[k]
	if !ok {
		// Capacity 4 keeps ring schedules (send then receive) deadlock-free.
		ch = make(chan *tensor.Tensor, 4)
		g.p2p[k] = ch
	}
	return ch
}

// Send transmits a copy of x to the destination rank. It blocks only when
// the pair's in-flight buffer is full. A group Abort releases a blocked
// Send with an ErrAborted panic, matching the collectives' behavior.
func (c *Communicator) Send(to int, x *tensor.Tensor) {
	if to < 0 || to >= c.Size() || to == c.rank {
		panic(fmt.Sprintf("comm: Send to invalid rank %d from %d", to, c.rank))
	}
	c.faultPoint(OpSend, true)
	c.obsPoint(OpSend, true, 0)
	select {
	case c.group.pairChan(c.rank, to) <- x.Clone():
		// Recorded only on success so a Send released by Abort does not
		// count phantom bytes in post-failure traffic inspection.
		c.record(OpSend, x.Numel())
		c.obsPoint(OpSend, false, x.Numel())
	case <-c.group.done:
		panic(ErrAborted)
	}
	c.faultPoint(OpSend, false)
}

// Recv blocks until a message from the source rank arrives and returns it.
// A group Abort releases a blocked Recv with an ErrAborted panic, so a
// failed peer cannot strand this rank on the channel.
func (c *Communicator) Recv(from int) *tensor.Tensor {
	if from < 0 || from >= c.Size() || from == c.rank {
		panic(fmt.Sprintf("comm: Recv from invalid rank %d on %d", from, c.rank))
	}
	c.faultPoint(OpRecv, true)
	c.obsPoint(OpRecv, true, 0)
	select {
	case t := <-c.group.pairChan(from, c.rank):
		// The observer's post point carries the received volume even
		// though Recv moves no wire bytes of its own (the Send side
		// recorded them) — the span still shows what arrived.
		c.obsPoint(OpRecv, false, t.Numel())
		c.faultPoint(OpRecv, false)
		return t
	case <-c.group.done:
		panic(ErrAborted)
	}
}

// RingAllReduceSum computes the same result as AllReduceSum with the
// classic two-phase ring algorithm over Send/Recv: n-1 reduce-scatter steps
// followed by n-1 all-gather steps, each moving one 1/n chunk to the next
// rank. The contribution length must be divisible by the group size.
//
// The per-rank wire volume is exactly 2*(n-1)*numel/n elements — the figure
// the Traffic ledger models for OpAllReduce and internal/hw charges for ring
// all-reduce time.
func (c *Communicator) RingAllReduceSum(x *tensor.Tensor) *tensor.Tensor {
	n := c.Size()
	if n == 1 {
		return x.Clone()
	}
	if x.Numel()%n != 0 {
		panic(fmt.Sprintf("comm: RingAllReduceSum length %d not divisible by %d ranks", x.Numel(), n))
	}
	chunk := x.Numel() / n
	acc := x.Clone()
	next := (c.rank + 1) % n
	prev := (c.rank - 1 + n) % n
	slice := func(t *tensor.Tensor, i int) *tensor.Tensor {
		return tensor.FromSlice(t.Data[i*chunk:(i+1)*chunk], chunk)
	}
	// Phase 1: reduce-scatter. After step s, rank r holds the running sum of
	// chunk (r-s+n)%n from s+1 contributors.
	for s := 0; s < n-1; s++ {
		sendIdx := (c.rank - s + n) % n
		recvIdx := (c.rank - s - 1 + n) % n
		c.Send(next, slice(acc, sendIdx))
		in := c.Recv(prev)
		dst := slice(acc, recvIdx)
		tensor.AddInPlace(dst, in)
	}
	// Phase 2: all-gather the fully-reduced chunks around the ring.
	for s := 0; s < n-1; s++ {
		sendIdx := (c.rank + 1 - s + n) % n
		recvIdx := (c.rank - s + n) % n
		c.Send(next, slice(acc, sendIdx))
		in := c.Recv(prev)
		copy(slice(acc, recvIdx).Data, in.Data)
	}
	return acc
}
