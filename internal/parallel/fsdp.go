package parallel

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// FSDP implements fully-sharded data parallelism over a module's parameter
// list, following the PyTorch FSDP flow the paper layers on top of TP
// (Sec. 3.4): every rank owns a 1/n flat shard of each parameter (plus its
// gradient and optimizer state), parameters are materialized by AllGather
// before use, and gradients are reduce-scattered so each rank keeps only its
// shard's (mean) gradient.
//
// The optimizer must be constructed over ShardParams(); the live module
// parameters are refreshed from the shards by GatherParams() at the start of
// every step. Because AdamW updates are elementwise, the sharded training
// trajectory is identical to DDP's, which the tests assert.
type FSDP struct {
	Comm   *comm.Communicator
	Live   []*nn.Param // the module's full parameters
	shards []*nn.Param // rank-owned flat shards (optimizer targets)
	padded []int       // padded flat length per parameter
}

// NewFSDP shards the given parameters across the communicator's group,
// seeding the shards from the parameters' current values.
func NewFSDP(c *comm.Communicator, params []*nn.Param) *FSDP {
	f := &FSDP{
		Comm:   c,
		Live:   params,
		shards: make([]*nn.Param, len(params)),
		padded: make([]int, len(params)),
	}
	n := c.Size()
	for i, p := range params {
		padded := ((p.Numel() + n - 1) / n) * n
		f.padded[i] = padded
		chunk := padded / n
		shard := tensor.New(chunk)
		lo := c.Rank() * chunk
		for j := 0; j < chunk; j++ {
			if lo+j < p.Numel() {
				shard.Data[j] = p.W.Data[lo+j]
			}
		}
		f.shards[i] = nn.NewParam(fmt.Sprintf("%s.shard%d", p.Name, c.Rank()), shard)
	}
	return f
}

// ShardParams returns the rank-owned parameter shards; hand these to the
// optimizer.
func (f *FSDP) ShardParams() []*nn.Param { return f.shards }

// GatherParams materializes the full parameters from all ranks' shards
// (the pre-forward AllGather of the FSDP flow).
func (f *FSDP) GatherParams() {
	for i, p := range f.Live {
		full := f.Comm.AllGatherConcat(f.shards[i].W, 0)
		copy(p.W.Data, full.Data[:p.Numel()])
	}
}

// ReduceScatterGrads averages the live gradients across ranks and keeps only
// this rank's shard (the post-backward ReduceScatter of the FSDP flow). Live
// gradients are invalid afterwards; only shard gradients are meaningful.
func (f *FSDP) ReduceScatterGrads() {
	n := f.Comm.Size()
	for i, p := range f.Live {
		flat := tensor.New(f.padded[i])
		copy(flat.Data, p.Grad.Data)
		shardGrad := f.Comm.ReduceScatterSum(flat, 0)
		tensor.ScaleInPlace(shardGrad, 1/float64(n))
		f.shards[i].Grad.CopyFrom(shardGrad)
	}
}

// ZeroGrads clears both live and shard gradients.
func (f *FSDP) ZeroGrads() {
	nn.ZeroGrads(f.Live)
	nn.ZeroGrads(f.shards)
}

// ShardBytes returns the per-rank parameter bytes held between steps — the
// memory-saving FSDP exists for. Used by tests and reports.
func (f *FSDP) ShardBytes() int64 {
	var total int64
	for _, s := range f.shards {
		total += int64(s.Numel()) * 8
	}
	return total
}

// DDP implements plain data parallelism: every rank holds a full replica and
// processes a different micro-batch; gradients are averaged with one
// AllReduce per parameter at the end of the backward pass.
type DDP struct {
	Comm   *comm.Communicator
	Params []*nn.Param
}

// NewDDP wraps the given replica parameters.
func NewDDP(c *comm.Communicator, params []*nn.Param) *DDP {
	return &DDP{Comm: c, Params: params}
}

// SyncGradients averages every parameter's gradient across the group. Call
// after backward, before the optimizer step.
func (d *DDP) SyncGradients() {
	for _, p := range d.Params {
		avg := d.Comm.AllReduceMean(p.Grad)
		p.Grad.CopyFrom(avg)
	}
}
