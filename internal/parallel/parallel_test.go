package parallel

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

const tpTol = 1e-9

func TestColumnRowPairMatchesSerialLinears(t *testing.T) {
	const (
		in, mid, out = 6, 8, 5
		tp           = 2
		seed1, seed2 = 100, 101
	)
	rng := tensor.NewRNG(1)
	x := tensor.Randn(rng, 3, in)
	upstream := tensor.Randn(rng, 3, out)

	// Serial reference: two stacked linears.
	l1 := nn.NewLinear("l1", in, mid, seed1)
	l2 := nn.NewLinear("l2", mid, out, seed2)
	ySerial := l2.Forward(l1.Forward(x))
	nn.ZeroGrads(append(l1.Params(), l2.Params()...))
	dxSerial := l1.Backward(l2.Backward(upstream))

	results := make([]*tensor.Tensor, tp)
	dxs := make([]*tensor.Tensor, tp)
	_, err := comm.Run(tp, func(c *comm.Communicator) error {
		col := NewColumnParallelLinear("l1", in, mid, seed1, c)
		row := NewRowParallelLinear("l2", mid, out, seed2, c)
		y := row.Forward(col.Forward(x))
		results[c.Rank()] = y
		dx := col.Backward(row.Backward(upstream))
		dxs[c.Rank()] = dx
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tp; r++ {
		if tensor.MaxAbsDiff(results[r], ySerial) > tpTol {
			t.Fatalf("rank %d forward differs from serial by %g", r, tensor.MaxAbsDiff(results[r], ySerial))
		}
		if tensor.MaxAbsDiff(dxs[r], dxSerial) > tpTol {
			t.Fatalf("rank %d dx differs from serial by %g", r, tensor.MaxAbsDiff(dxs[r], dxSerial))
		}
	}
}

func TestColumnParallelWeightShardMatchesSlice(t *testing.T) {
	const in, out, tp = 4, 6, 3
	full := nn.NewLinear("w", in, out, 42)
	_, err := comm.Run(tp, func(c *comm.Communicator) error {
		col := NewColumnParallelLinear("w", in, out, 42, c)
		lo := out / tp
		want := tensor.SliceAxis(full.Weight.W, 1, c.Rank()*lo, (c.Rank()+1)*lo)
		if tensor.MaxAbsDiff(col.Local.Weight.W, want) != 0 {
			return fmt.Errorf("rank %d shard is not the column slice", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestColumnParallelGradShardMatchesSerial(t *testing.T) {
	const in, out, tp = 4, 6, 2
	rng := tensor.NewRNG(2)
	x := tensor.Randn(rng, 5, in)
	upstream := tensor.Randn(rng, 5, out)

	serial := nn.NewLinear("w", in, out, 7)
	serial.Forward(x)
	nn.ZeroGrads(serial.Params())
	serial.Backward(upstream)

	_, err := comm.Run(tp, func(c *comm.Communicator) error {
		col := NewColumnParallelLinear("w", in, out, 7, c)
		col.Forward(x)
		nn.ZeroGrads(col.Params())
		lo := out / tp
		localUp := tensor.SliceAxis(upstream, 1, c.Rank()*lo, (c.Rank()+1)*lo)
		col.Backward(localUp)
		wantW := tensor.SliceAxis(serial.Weight.Grad, 1, c.Rank()*lo, (c.Rank()+1)*lo)
		if tensor.MaxAbsDiff(col.Local.Weight.Grad, wantW) > tpTol {
			return fmt.Errorf("rank %d weight grad shard mismatch", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelSelfAttentionMatchesSerial(t *testing.T) {
	const embed, heads, tp = 12, 4, 2
	rng := tensor.NewRNG(3)
	x := tensor.Randn(rng, 2, 5, embed)
	upstream := tensor.Randn(rng, 2, 5, embed)

	serial := nn.NewSelfAttention("attn", embed, heads, 55)
	ySerial := serial.Forward(x)
	nn.ZeroGrads(serial.Params())
	dxSerial := serial.Backward(upstream)

	_, err := comm.Run(tp, func(c *comm.Communicator) error {
		par := NewParallelSelfAttention("attn", embed, heads, 55, c)
		y := par.Forward(x)
		if tensor.MaxAbsDiff(y, ySerial) > tpTol {
			return fmt.Errorf("rank %d forward diff %g", c.Rank(), tensor.MaxAbsDiff(y, ySerial))
		}
		dx := par.Backward(upstream)
		if tensor.MaxAbsDiff(dx, dxSerial) > tpTol {
			return fmt.Errorf("rank %d dx diff %g", c.Rank(), tensor.MaxAbsDiff(dx, dxSerial))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelCrossAttentionMatchesSerial(t *testing.T) {
	const embed, heads, tp = 8, 2, 2
	rng := tensor.NewRNG(4)
	q := tensor.Randn(rng, 2, 3, embed)
	kv := tensor.Randn(rng, 2, 7, embed)
	upstream := tensor.Randn(rng, 2, 3, embed)

	serial := nn.NewCrossAttention("x", embed, heads, 66)
	ySerial := serial.Forward(q, kv)
	nn.ZeroGrads(serial.Params())
	dqS, dkvS := serial.Backward(upstream)

	_, err := comm.Run(tp, func(c *comm.Communicator) error {
		par := NewParallelCrossAttention("x", embed, heads, 66, c)
		y := par.Forward(q, kv)
		if tensor.MaxAbsDiff(y, ySerial) > tpTol {
			return fmt.Errorf("forward diff %g", tensor.MaxAbsDiff(y, ySerial))
		}
		dq, dkv := par.Backward(upstream)
		if tensor.MaxAbsDiff(dq, dqS) > tpTol || tensor.MaxAbsDiff(dkv, dkvS) > tpTol {
			return fmt.Errorf("backward diff q=%g kv=%g", tensor.MaxAbsDiff(dq, dqS), tensor.MaxAbsDiff(dkv, dkvS))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelMLPMatchesSerial(t *testing.T) {
	const embed, hidden, tp = 6, 12, 3
	rng := tensor.NewRNG(5)
	x := tensor.Randn(rng, 4, embed)
	upstream := tensor.Randn(rng, 4, embed)

	serial := nn.NewMLP("mlp", embed, hidden, 77)
	ySerial := serial.Forward(x)
	nn.ZeroGrads(serial.Params())
	dxSerial := serial.Backward(upstream)

	_, err := comm.Run(tp, func(c *comm.Communicator) error {
		par := NewParallelMLP("mlp", embed, hidden, 77, c)
		y := par.Forward(x)
		if tensor.MaxAbsDiff(y, ySerial) > tpTol {
			return fmt.Errorf("forward diff %g", tensor.MaxAbsDiff(y, ySerial))
		}
		dx := par.Backward(upstream)
		if tensor.MaxAbsDiff(dx, dxSerial) > tpTol {
			return fmt.Errorf("dx diff %g", tensor.MaxAbsDiff(dx, dxSerial))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelBlockMatchesSerial(t *testing.T) {
	const embed, heads, tp = 8, 4, 4
	rng := tensor.NewRNG(6)
	x := tensor.Randn(rng, 2, 3, embed)
	upstream := tensor.Randn(rng, 2, 3, embed)

	serial := nn.NewTransformerBlock("blk", embed, heads, 88)
	ySerial := serial.Forward(x)
	nn.ZeroGrads(serial.Params())
	dxSerial := serial.Backward(upstream)

	_, err := comm.Run(tp, func(c *comm.Communicator) error {
		par := NewParallelTransformerBlock("blk", embed, heads, 88, c)
		y := par.Forward(x)
		if tensor.MaxAbsDiff(y, ySerial) > tpTol {
			return fmt.Errorf("forward diff %g", tensor.MaxAbsDiff(y, ySerial))
		}
		dx := par.Backward(upstream)
		if tensor.MaxAbsDiff(dx, dxSerial) > tpTol {
			return fmt.Errorf("dx diff %g", tensor.MaxAbsDiff(dx, dxSerial))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelMLPCommunicationCount(t *testing.T) {
	// Exactly one forward AllReduce and one backward AllReduce per rank.
	const embed, hidden, tp = 4, 8, 2
	x := tensor.Randn(tensor.NewRNG(7), 2, embed)
	g, err := comm.Run(tp, func(c *comm.Communicator) error {
		par := NewParallelMLP("mlp", embed, hidden, 99, c)
		c.SetPhase("forward")
		y := par.Forward(x)
		c.SetPhase("backward")
		par.Backward(y)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tp; r++ {
		if got := g.Traffic().CallsFor(r, "forward", comm.OpAllReduce); got != 1 {
			t.Fatalf("rank %d forward allreduces = %d, want 1", r, got)
		}
		if got := g.Traffic().CallsFor(r, "backward", comm.OpAllReduce); got != 1 {
			t.Fatalf("rank %d backward allreduces = %d, want 1", r, got)
		}
	}
}

// trainSerial runs steps of full-batch training on a small regression model
// and returns the final weights.
func trainSerial(t *testing.T, steps int, xs, ys []*tensor.Tensor) *tensor.Tensor {
	t.Helper()
	model := nn.NewLinear("m", 4, 2, 500)
	opt := optim.NewAdamW(model.Params(), 0.05, 0.01)
	loss := nn.NewMSELoss()
	for s := 0; s < steps; s++ {
		pred := model.Forward(xs[s])
		loss.Forward(pred, ys[s])
		nn.ZeroGrads(model.Params())
		model.Backward(loss.Backward())
		opt.Step()
	}
	return model.Weight.W.Clone()
}

func makeBatches(steps, batch int) (xs, ys []*tensor.Tensor) {
	rng := tensor.NewRNG(501)
	trueW := tensor.Randn(rng, 4, 2)
	for s := 0; s < steps; s++ {
		x := tensor.Randn(rng, batch, 4)
		y := tensor.MatMul(x, trueW)
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return xs, ys
}

func TestDDPMatchesSerialFullBatch(t *testing.T) {
	const steps, batch, world = 5, 8, 2
	xs, ys := makeBatches(steps, batch)
	wSerial := trainSerial(t, steps, xs, ys)

	finals := make([]*tensor.Tensor, world)
	_, err := comm.Run(world, func(c *comm.Communicator) error {
		model := nn.NewLinear("m", 4, 2, 500)
		ddp := NewDDP(c, model.Params())
		opt := optim.NewAdamW(model.Params(), 0.05, 0.01)
		loss := nn.NewMSELoss()
		half := batch / world
		for s := 0; s < steps; s++ {
			x := tensor.SliceAxis(xs[s], 0, c.Rank()*half, (c.Rank()+1)*half)
			y := tensor.SliceAxis(ys[s], 0, c.Rank()*half, (c.Rank()+1)*half)
			pred := model.Forward(x)
			loss.Forward(pred, y)
			nn.ZeroGrads(model.Params())
			model.Backward(loss.Backward())
			ddp.SyncGradients()
			opt.Step()
		}
		finals[c.Rank()] = model.Weight.W.Clone()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < world; r++ {
		if tensor.MaxAbsDiff(finals[r], wSerial) > 1e-9 {
			t.Fatalf("DDP rank %d final weights differ from serial by %g", r, tensor.MaxAbsDiff(finals[r], wSerial))
		}
	}
}

func TestFSDPMatchesDDP(t *testing.T) {
	const steps, batch, world = 5, 8, 2
	xs, ys := makeBatches(steps, batch)
	wSerial := trainSerial(t, steps, xs, ys)

	finals := make([]*tensor.Tensor, world)
	_, err := comm.Run(world, func(c *comm.Communicator) error {
		model := nn.NewLinear("m", 4, 2, 500)
		fsdp := NewFSDP(c, model.Params())
		opt := optim.NewAdamW(fsdp.ShardParams(), 0.05, 0.01)
		loss := nn.NewMSELoss()
		half := batch / world
		for s := 0; s < steps; s++ {
			fsdp.GatherParams()
			x := tensor.SliceAxis(xs[s], 0, c.Rank()*half, (c.Rank()+1)*half)
			y := tensor.SliceAxis(ys[s], 0, c.Rank()*half, (c.Rank()+1)*half)
			pred := model.Forward(x)
			loss.Forward(pred, y)
			fsdp.ZeroGrads()
			model.Backward(loss.Backward())
			fsdp.ReduceScatterGrads()
			opt.Step()
		}
		fsdp.GatherParams()
		finals[c.Rank()] = model.Weight.W.Clone()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < world; r++ {
		if tensor.MaxAbsDiff(finals[r], wSerial) > 1e-9 {
			t.Fatalf("FSDP rank %d final weights differ from serial by %g", r, tensor.MaxAbsDiff(finals[r], wSerial))
		}
	}
}

func TestFSDPShardBytesScaleDown(t *testing.T) {
	// The point of FSDP: per-rank persistent parameter memory is ~1/n.
	model4 := nn.NewLinear("m", 32, 32, 1)
	var bytes1, bytes4 int64
	if _, err := comm.Run(1, func(c *comm.Communicator) error {
		bytes1 = NewFSDP(c, model4.Params()).ShardBytes()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := comm.Run(4, func(c *comm.Communicator) error {
		f := NewFSDP(c, nn.NewLinear("m", 32, 32, 1).Params())
		if c.Rank() == 0 {
			bytes4 = f.ShardBytes()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if bytes4*4 != bytes1 {
		t.Fatalf("shard bytes %d * 4 != full %d", bytes4, bytes1)
	}
}

func TestFSDPPaddingNonDivisible(t *testing.T) {
	// 3 elements across 2 ranks forces padding; round trip must preserve
	// values exactly.
	_, err := comm.Run(2, func(c *comm.Communicator) error {
		p := nn.NewParam("p", tensor.FromSlice([]float64{1, 2, 3}, 3))
		f := NewFSDP(c, []*nn.Param{p})
		p.W.Zero() // destroy live copy
		f.GatherParams()
		want := []float64{1, 2, 3}
		for i, w := range want {
			if p.W.Data[i] != w {
				return fmt.Errorf("rank %d: param[%d] = %v after gather", c.Rank(), i, p.W.Data[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelModuleParamCounts(t *testing.T) {
	// Shard parameter counts must sum (over the group) to the serial counts,
	// with replicated parameters (row biases, norms) counted once per rank.
	const embed, heads, tp = 8, 4, 2
	serialBlock := nn.NewTransformerBlock("blk", embed, heads, 5)
	serialCount := nn.NumParams(serialBlock.Params())
	counts := make([]int, tp)
	replCounts := make([]int, tp)
	_, err := comm.Run(tp, func(c *comm.Communicator) error {
		blk := NewParallelTransformerBlock("blk", embed, heads, 5, c)
		local, repl := blk.Partition()
		counts[c.Rank()] = nn.NumParams(local)
		replCounts[c.Rank()] = nn.NumParams(repl)
		if len(blk.Params()) != len(local)+len(repl) {
			return fmt.Errorf("partition must cover Params exactly")
		}
		if nn.NumParams(blk.Attn.Params()) == 0 || nn.NumParams(blk.FFN.Params()) == 0 {
			return fmt.Errorf("attention/MLP params must be non-empty")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := counts[0] + counts[1] + replCounts[0] // replicated counted once
	if total != serialCount {
		t.Fatalf("shards %v + replicated %d != serial %d", counts, replCounts[0], serialCount)
	}
	if replCounts[0] != replCounts[1] {
		t.Fatal("replicated param count must agree across ranks")
	}
}

func TestParallelCrossAttentionParams(t *testing.T) {
	_, err := comm.Run(2, func(c *comm.Communicator) error {
		a := NewParallelCrossAttention("x", 8, 2, 1, c)
		if len(a.Params()) == 0 {
			return fmt.Errorf("params must be exposed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
