package parallel

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestSPSelfAttentionMatchesSerial(t *testing.T) {
	const (
		embed, heads = 8, 2
		b, tokens    = 2, 8
		sp           = 4
	)
	rng := tensor.NewRNG(1)
	x := tensor.Randn(rng, b, tokens, embed)
	up := tensor.Randn(rng, b, tokens, embed)

	serial := nn.NewSelfAttention("attn", embed, heads, 99)
	wantY := serial.Forward(x)
	nn.ZeroGrads(serial.Params())
	wantDx := serial.Backward(up)

	_, err := comm.Run(sp, func(c *comm.Communicator) error {
		a := NewSPSelfAttention("attn", embed, heads, 99, c)
		xl := ScatterTokens(x, c)
		y := a.Forward(xl)
		wantShard := ScatterTokens(wantY, c)
		if diff := tensor.MaxAbsDiff(y, wantShard); diff > 1e-9 {
			return fmt.Errorf("rank %d forward differs by %g", c.Rank(), diff)
		}
		nn.ZeroGrads(a.Params())
		dx := a.Backward(ScatterTokens(up, c))
		wantDxShard := ScatterTokens(wantDx, c)
		if diff := tensor.MaxAbsDiff(dx, wantDxShard); diff > 1e-9 {
			return fmt.Errorf("rank %d dx differs by %g", c.Rank(), diff)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSPBlockMatchesSerialIncludingGradients(t *testing.T) {
	const (
		embed, heads = 8, 2
		b, tokens    = 1, 6
		sp           = 2
	)
	rng := tensor.NewRNG(2)
	x := tensor.Randn(rng, b, tokens, embed)
	up := tensor.Randn(rng, b, tokens, embed)

	serial := nn.NewTransformerBlock("blk", embed, heads, 55)
	wantY := serial.Forward(x)
	nn.ZeroGrads(serial.Params())
	wantDx := serial.Backward(up)
	wantGrads := map[string]*tensor.Tensor{}
	for _, p := range serial.Params() {
		wantGrads[p.Name] = p.Grad.Clone()
	}

	_, err := comm.Run(sp, func(c *comm.Communicator) error {
		blk := NewSPTransformerBlock("blk", embed, heads, 55, c)
		y := blk.Forward(ScatterTokens(x, c))
		if diff := tensor.MaxAbsDiff(y, ScatterTokens(wantY, c)); diff > 1e-9 {
			return fmt.Errorf("rank %d forward differs by %g", c.Rank(), diff)
		}
		nn.ZeroGrads(blk.Params())
		dx := blk.Backward(ScatterTokens(up, c))
		if diff := tensor.MaxAbsDiff(dx, ScatterTokens(wantDx, c)); diff > 1e-9 {
			return fmt.Errorf("rank %d dx differs by %g", c.Rank(), diff)
		}
		blk.SyncGradients()
		for _, p := range blk.Params() {
			want, ok := wantGrads[p.Name]
			if !ok {
				return fmt.Errorf("param %q missing from serial block", p.Name)
			}
			if diff := tensor.MaxAbsDiff(p.Grad, want); diff > 1e-9 {
				return fmt.Errorf("rank %d param %q grad differs by %g", c.Rank(), p.Name, diff)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterGatherTokensRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(3)
	x := tensor.Randn(rng, 2, 8, 4)
	_, err := comm.Run(4, func(c *comm.Communicator) error {
		back := GatherTokens(ScatterTokens(x, c), c)
		if tensor.MaxAbsDiff(back, x) != 0 {
			return fmt.Errorf("rank %d round trip failed", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDCHAGComposesWithSP demonstrates the paper's Sec. 3.5 claim: the
// D-CHAG channel stage ends exactly where sequence parallelism begins, so
// the fused representation can be scattered along the token axis and the
// whole pipeline still matches the serial model.
func TestDCHAGComposesWithSP(t *testing.T) {
	cfg := core.Config{
		Channels: 8, ImgH: 4, ImgW: 4, Patch: 2, // 4 spatial tokens
		Embed: 8, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 77,
	}
	const p = 2
	rng := tensor.NewRNG(4)
	x := tensor.Randn(rng, 2, cfg.Channels, cfg.ImgH, cfg.ImgW)
	up := tensor.Randn(rng, 2, cfg.Tokens(), cfg.Embed)

	// Serial pipeline: D-CHAG reference stage + serial block.
	ref := core.NewReference(cfg, p)
	blkSerial := nn.NewTransformerBlock("spvit", cfg.Embed, cfg.Heads, 88)
	wantY := blkSerial.Forward(ref.Forward(x))
	nn.ZeroGrads(ref.Params())
	nn.ZeroGrads(blkSerial.Params())
	wantDimg := ref.Backward(blkSerial.Backward(up))

	_, err := comm.Run(p, func(c *comm.Communicator) error {
		stage := core.NewDCHAG(cfg, c)
		blk := NewSPTransformerBlock("spvit", cfg.Embed, cfg.Heads, 88, c)
		xs := tensor.SliceAxis(x, 1, stage.ChLo, stage.ChHi)

		fused := stage.Forward(xs)                     // replicated [B,T,E]
		yLocal := blk.Forward(ScatterTokens(fused, c)) // SP shard
		y := GatherTokens(yLocal, c)
		if diff := tensor.MaxAbsDiff(y, wantY); diff > 1e-9 {
			return fmt.Errorf("rank %d D-CHAG+SP forward differs by %g", c.Rank(), diff)
		}

		nn.ZeroGrads(stage.Params())
		nn.ZeroGrads(blk.Params())
		dFusedLocal := blk.Backward(ScatterTokens(up, c))
		dFused := GatherTokens(dFusedLocal, c) // back to replicated layout
		dimg := stage.Backward(dFused)
		lo, hi := stage.ChLo, stage.ChHi
		if diff := tensor.MaxAbsDiff(dimg, tensor.SliceAxis(wantDimg, 1, lo, hi)); diff > 1e-9 {
			return fmt.Errorf("rank %d D-CHAG+SP backward differs by %g", c.Rank(), diff)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSPCommunicationPattern(t *testing.T) {
	// SP attention: 2 AllGathers forward (K and V), 2 ReduceScatters
	// backward — the "different performance characteristics" the paper
	// contrasts with D-CHAG's silent backward.
	const sp = 2
	rng := tensor.NewRNG(5)
	x := tensor.Randn(rng, 1, 4, 8)
	up := tensor.Randn(rng, 1, 4, 8)
	g, err := comm.Run(sp, func(c *comm.Communicator) error {
		a := NewSPSelfAttention("a", 8, 2, 1, c)
		c.SetPhase("forward")
		a.Forward(ScatterTokens(x, c))
		c.SetPhase("backward")
		a.Backward(ScatterTokens(up, c))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < sp; r++ {
		if got := g.Traffic().CallsFor(r, "forward", comm.OpAllGather); got != 2 {
			t.Fatalf("rank %d forward allgathers = %d, want 2 (K and V)", r, got)
		}
		if got := g.Traffic().CallsFor(r, "backward", comm.OpReduceScatter); got != 2 {
			t.Fatalf("rank %d backward reduce-scatters = %d, want 2 (dK and dV)", r, got)
		}
	}
}
