// Package parallel implements the distributed-training strategies the paper
// layers D-CHAG on top of: Megatron-style tensor parallelism (column/row
// parallel linears, head-sharded attention, parallel transformer blocks),
// PyTorch-FSDP-style parameter sharding, and data parallelism with gradient
// all-reduce. All strategies are functionally exact: with the same seeds
// they reproduce the serial modules' outputs and training trajectories to
// float64 round-off, which the tests assert.
package parallel

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ColumnParallelLinear shards a Linear's output dimension across the TP
// group: rank r holds columns [r*Out/t, (r+1)*Out/t) of the full weight. The
// forward pass is local (the input is replicated); the backward pass
// all-reduces the input gradient, which is the Megatron "f" operator.
type ColumnParallelLinear struct {
	Comm     *comm.Communicator
	In, Out  int // full dimensions
	LocalOut int
	Local    *nn.Linear
}

// NewColumnParallelLinear builds rank's shard of the Linear that
// nn.NewLinear(name, in, out, seed) would build serially: the full weight is
// generated from the same seed and the rank's column block is sliced out, so
// TP and serial runs are bit-identical.
func NewColumnParallelLinear(name string, in, out int, seed int64, c *comm.Communicator) *ColumnParallelLinear {
	t := c.Size()
	if out%t != 0 {
		panic(fmt.Sprintf("parallel: output dim %d not divisible by TP size %d", out, t))
	}
	full := nn.NewLinear(name, in, out, seed)
	lo := out / t
	w := tensor.SliceAxis(full.Weight.W, 1, c.Rank()*lo, (c.Rank()+1)*lo)
	b := tensor.SliceAxis(full.Bias.W, 0, c.Rank()*lo, (c.Rank()+1)*lo)
	l := &ColumnParallelLinear{
		Comm: c, In: in, Out: out, LocalOut: lo,
		Local: nn.NewLinearFrom(fmt.Sprintf("%s.col%d", name, c.Rank()), w, b),
	}
	l.Local.Weight.MarkShard(name+".weight", 1, []int{in, out}, c.Rank()*lo, (c.Rank()+1)*lo)
	l.Local.Bias.MarkShard(name+".bias", 0, []int{out}, c.Rank()*lo, (c.Rank()+1)*lo)
	return l
}

// Forward computes the local output slice [.., Out/t] from the replicated
// input. No communication.
func (l *ColumnParallelLinear) Forward(x *tensor.Tensor) *tensor.Tensor {
	return l.Local.Forward(x)
}

// BackwardPartial accumulates local weight gradients and returns this
// rank's *partial* input gradient (the contribution of its column block).
// The caller must all-reduce the sum of partials once per replicated input.
func (l *ColumnParallelLinear) BackwardPartial(grad *tensor.Tensor) *tensor.Tensor {
	return l.Local.Backward(grad)
}

// Backward is BackwardPartial followed by the all-reduce, for callers that
// use this layer standalone.
func (l *ColumnParallelLinear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return l.Comm.AllReduceSum(l.BackwardPartial(grad))
}

// Params returns the local shard's parameters.
func (l *ColumnParallelLinear) Params() []*nn.Param { return l.Local.Params() }

// RowParallelLinear shards a Linear's input dimension across the TP group:
// rank r holds rows [r*In/t, (r+1)*In/t). Its input is the column-parallel
// output slice; the forward pass all-reduces the partial products (the
// Megatron "g" operator) and the backward pass is local.
//
// The bias is replicated and added after the reduction; since every rank
// sees the identical reduced activation, bias gradients stay identical
// across ranks without synchronization.
type RowParallelLinear struct {
	Comm    *comm.Communicator
	In, Out int // full dimensions
	LocalIn int
	Local   *nn.Linear // bias-free local product
	Bias    *nn.Param

	lastGrad *tensor.Tensor
}

// NewRowParallelLinear builds rank's row shard of the serial
// nn.NewLinear(name, in, out, seed) layer.
func NewRowParallelLinear(name string, in, out int, seed int64, c *comm.Communicator) *RowParallelLinear {
	t := c.Size()
	if in%t != 0 {
		panic(fmt.Sprintf("parallel: input dim %d not divisible by TP size %d", in, t))
	}
	full := nn.NewLinear(name, in, out, seed)
	li := in / t
	w := tensor.SliceAxis(full.Weight.W, 0, c.Rank()*li, (c.Rank()+1)*li)
	l := &RowParallelLinear{
		Comm: c, In: in, Out: out, LocalIn: li,
		Local: nn.NewLinearFrom(fmt.Sprintf("%s.row%d", name, c.Rank()), w, nil),
		Bias:  nn.NewParam(name+".bias", full.Bias.W),
	}
	l.Local.Weight.MarkShard(name+".weight", 0, []int{in, out}, c.Rank()*li, (c.Rank()+1)*li)
	return l
}

// Forward computes the partial product from the local input slice and
// all-reduces it, then adds the replicated bias.
func (l *RowParallelLinear) Forward(xLocal *tensor.Tensor) *tensor.Tensor {
	partial := l.Local.Forward(xLocal)
	y := l.Comm.AllReduceSum(partial)
	y2, shape := y.Reshape(-1, l.Out), y.Shape
	for i := 0; i < y2.Shape[0]; i++ {
		row := y2.Data[i*l.Out : (i+1)*l.Out]
		for j, bv := range l.Bias.W.Data {
			row[j] += bv
		}
	}
	return y2.Reshape(shape...)
}

// Backward accumulates weight and bias gradients and returns the gradient
// with respect to the local input slice. No communication.
func (l *RowParallelLinear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g2 := grad.Reshape(-1, l.Out)
	tensor.AddInPlace(l.Bias.Grad, tensor.SumAxis(g2, 0))
	l.lastGrad = grad
	return l.Local.Backward(grad)
}

// Params returns the local weight shard and the replicated bias.
func (l *RowParallelLinear) Params() []*nn.Param {
	return append(l.Local.Params(), l.Bias)
}
