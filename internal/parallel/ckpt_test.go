package parallel

import (
	"fmt"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestTPBlockCheckpointReshards saves a tensor-parallel transformer block
// (head-sharded attention, column/row-parallel MLP) at TP=4 and restores it
// at TP=2 and into the serial block: the shard annotations on the
// column/row-parallel weights must reassemble the serial layer's logical
// tensors bit-for-bit.
func TestTPBlockCheckpointReshards(t *testing.T) {
	const embed, heads, seed = 8, 4, 1234
	dir := t.TempDir()

	// Save at TP=4: each rank writes its shard of the block.
	_, err := comm.Run(4, func(c *comm.Communicator) error {
		blk := NewParallelTransformerBlock("blk", embed, heads, seed, c)
		return ckpt.WriteShard(dir, c.Rank(), ckpt.BuildTree(blk.Params(), nil))
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.WriteManifest(dir, ckpt.Manifest{World: 4}); err != nil {
		t.Fatal(err)
	}
	ck, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// The assembled logical tensors equal the serial block's parameters.
	serial := nn.NewTransformerBlock("blk", embed, heads, seed)
	for _, p := range serial.Params() {
		logical, ok := ck.LogicalTensor(p.Name)
		if !ok {
			t.Fatalf("logical tensor %q missing from TP=4 checkpoint", p.Name)
		}
		if tensor.MaxAbsDiff(logical, p.W) != 0 {
			t.Fatalf("assembled %q differs from the serial layer", p.Name)
		}
	}

	// Restore into a differently-seeded serial block: exact match after.
	dst := nn.NewTransformerBlock("blk", embed, heads, 9999)
	if err := ck.RestoreParams(dst.Params()); err != nil {
		t.Fatal(err)
	}
	if !nn.ParamsEqual(serial.Params(), dst.Params(), 0) {
		t.Fatal("serial restore from TP=4 checkpoint not bit-identical")
	}

	// Restore at TP=2 with a different seed: every shard must equal the
	// corresponding slice of the serial parameters.
	_, err = comm.Run(2, func(c *comm.Communicator) error {
		blk := NewParallelTransformerBlock("blk", embed, heads, 4321, c)
		if err := ck.RestoreParams(blk.Params()); err != nil {
			return err
		}
		ref := NewParallelTransformerBlock("blk", embed, heads, seed, c)
		refPs, gotPs := ref.Params(), blk.Params()
		for i := range refPs {
			if tensor.MaxAbsDiff(refPs[i].W, gotPs[i].W) != 0 {
				return fmt.Errorf("rank %d: restored %q differs from the seeded TP=2 shard", c.Rank(), gotPs[i].Name)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
