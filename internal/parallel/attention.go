package parallel

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ParallelSelfAttention is the tensor-parallel multi-head self-attention of
// the paper's Sec. 4.3 baseline: Q/K/V projections are column-parallel
// (each rank owns heads/t heads), the attention product runs on local heads
// only, and the output projection is row-parallel. One forward AllReduce
// (in the row-parallel output) and one backward AllReduce (for the
// replicated input) per layer.
//
// Constructed with the same name/seed as nn.NewSelfAttention, it reproduces
// the serial layer exactly.
type ParallelSelfAttention struct {
	Comm         *comm.Communicator
	Embed, Heads int
	LocalHeads   int
	Wq, Wk, Wv   *ColumnParallelLinear
	Wo           *RowParallelLinear

	q, k, v *tensor.Tensor // local head tensors [B,Hl,T,Dh]
	attn    *tensor.Tensor
}

// NewParallelSelfAttention shards nn.NewSelfAttention(name, embed, heads,
// seed) across the TP group c.
func NewParallelSelfAttention(name string, embed, heads int, seed int64, c *comm.Communicator) *ParallelSelfAttention {
	t := c.Size()
	if heads%t != 0 {
		panic(fmt.Sprintf("parallel: heads %d not divisible by TP size %d", heads, t))
	}
	return &ParallelSelfAttention{
		Comm:  c,
		Embed: embed, Heads: heads, LocalHeads: heads / t,
		Wq: NewColumnParallelLinear(name+".wq", embed, embed, nn.SubSeed(seed, 0), c),
		Wk: NewColumnParallelLinear(name+".wk", embed, embed, nn.SubSeed(seed, 1), c),
		Wv: NewColumnParallelLinear(name+".wv", embed, embed, nn.SubSeed(seed, 2), c),
		Wo: NewRowParallelLinear(name+".wo", embed, embed, nn.SubSeed(seed, 3), c),
	}
}

// Forward computes the attention output [B,T,E] from replicated input
// [B,T,E]. Only the row-parallel output projection communicates.
func (a *ParallelSelfAttention) Forward(x *tensor.Tensor) *tensor.Tensor {
	a.q = nn.SplitHeads(a.Wq.Forward(x), a.LocalHeads)
	a.k = nn.SplitHeads(a.Wk.Forward(x), a.LocalHeads)
	a.v = nn.SplitHeads(a.Wv.Forward(x), a.LocalHeads)
	scale := 1 / math.Sqrt(float64(a.Embed/a.Heads))
	scores := tensor.BatchedMatMulT(a.q, a.k)
	tensor.ScaleInPlace(scores, scale)
	a.attn = tensor.SoftmaxLastDim(scores)
	ctx := nn.MergeHeads(tensor.BatchedMatMul(a.attn, a.v))
	return a.Wo.Forward(ctx)
}

// Backward back-propagates to the replicated input with a single AllReduce
// over the summed Q/K/V partial input gradients.
func (a *ParallelSelfAttention) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dctx := nn.SplitHeads(a.Wo.Backward(grad), a.LocalHeads)
	scale := 1 / math.Sqrt(float64(a.Embed/a.Heads))
	dA := tensor.BatchedMatMulT(dctx, a.v)
	dv := tensor.BatchedTMatMul(a.attn, dctx)
	dS := tensor.SoftmaxBackwardLastDim(a.attn, dA)
	tensor.ScaleInPlace(dS, scale)
	dq := tensor.BatchedMatMul(dS, a.k)
	dk := tensor.BatchedTMatMul(dS, a.q)
	dx := a.Wq.BackwardPartial(nn.MergeHeads(dq))
	tensor.AddInPlace(dx, a.Wk.BackwardPartial(nn.MergeHeads(dk)))
	tensor.AddInPlace(dx, a.Wv.BackwardPartial(nn.MergeHeads(dv)))
	return a.Comm.AllReduceSum(dx)
}

// Params returns the local shard parameters.
func (a *ParallelSelfAttention) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, a.Wq.Params()...)
	ps = append(ps, a.Wk.Params()...)
	ps = append(ps, a.Wv.Params()...)
	ps = append(ps, a.Wo.Params()...)
	return ps
}

// ParallelCrossAttention is the tensor-parallel version of
// nn.CrossAttention, used for the shared final aggregation layer of D-CHAG
// when it is combined with TP (paper Sec. 3.3: "we can distribute the
// embedding space similarly to how we distribute it in the downstream
// transformer block modules").
type ParallelCrossAttention struct {
	Comm         *comm.Communicator
	Embed, Heads int
	LocalHeads   int
	Wq, Wk, Wv   *ColumnParallelLinear
	Wo           *RowParallelLinear

	q, k, v *tensor.Tensor
	attn    *tensor.Tensor
}

// NewParallelCrossAttention shards nn.NewCrossAttention(name, embed, heads,
// seed) across the TP group c.
func NewParallelCrossAttention(name string, embed, heads int, seed int64, c *comm.Communicator) *ParallelCrossAttention {
	t := c.Size()
	if heads%t != 0 {
		panic(fmt.Sprintf("parallel: heads %d not divisible by TP size %d", heads, t))
	}
	return &ParallelCrossAttention{
		Comm:  c,
		Embed: embed, Heads: heads, LocalHeads: heads / t,
		Wq: NewColumnParallelLinear(name+".wq", embed, embed, nn.SubSeed(seed, 0), c),
		Wk: NewColumnParallelLinear(name+".wk", embed, embed, nn.SubSeed(seed, 1), c),
		Wv: NewColumnParallelLinear(name+".wv", embed, embed, nn.SubSeed(seed, 2), c),
		Wo: NewRowParallelLinear(name+".wo", embed, embed, nn.SubSeed(seed, 3), c),
	}
}

// Forward attends query [B,Tq,E] over context [B,Tk,E]; both inputs are
// replicated across the TP group.
func (a *ParallelCrossAttention) Forward(query, context *tensor.Tensor) *tensor.Tensor {
	a.q = nn.SplitHeads(a.Wq.Forward(query), a.LocalHeads)
	a.k = nn.SplitHeads(a.Wk.Forward(context), a.LocalHeads)
	a.v = nn.SplitHeads(a.Wv.Forward(context), a.LocalHeads)
	scale := 1 / math.Sqrt(float64(a.Embed/a.Heads))
	scores := tensor.BatchedMatMulT(a.q, a.k)
	tensor.ScaleInPlace(scores, scale)
	a.attn = tensor.SoftmaxLastDim(scores)
	ctx := nn.MergeHeads(tensor.BatchedMatMul(a.attn, a.v))
	return a.Wo.Forward(ctx)
}

// Backward returns gradients for the replicated query and context inputs,
// using one AllReduce each.
func (a *ParallelCrossAttention) Backward(grad *tensor.Tensor) (dQuery, dContext *tensor.Tensor) {
	dctx := nn.SplitHeads(a.Wo.Backward(grad), a.LocalHeads)
	scale := 1 / math.Sqrt(float64(a.Embed/a.Heads))
	dA := tensor.BatchedMatMulT(dctx, a.v)
	dv := tensor.BatchedTMatMul(a.attn, dctx)
	dS := tensor.SoftmaxBackwardLastDim(a.attn, dA)
	tensor.ScaleInPlace(dS, scale)
	dq := tensor.BatchedMatMul(dS, a.k)
	dk := tensor.BatchedTMatMul(dS, a.q)
	dQuery = a.Comm.AllReduceSum(a.Wq.BackwardPartial(nn.MergeHeads(dq)))
	dc := a.Wk.BackwardPartial(nn.MergeHeads(dk))
	tensor.AddInPlace(dc, a.Wv.BackwardPartial(nn.MergeHeads(dv)))
	dContext = a.Comm.AllReduceSum(dc)
	return dQuery, dContext
}

// Params returns the local shard parameters.
func (a *ParallelCrossAttention) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, a.Wq.Params()...)
	ps = append(ps, a.Wk.Params()...)
	ps = append(ps, a.Wv.Params()...)
	ps = append(ps, a.Wo.Params()...)
	return ps
}

// ParallelMLP is the tensor-parallel feed-forward block: fc1 is
// column-parallel, the activation is local, fc2 is row-parallel.
type ParallelMLP struct {
	Comm *comm.Communicator
	Fc1  *ColumnParallelLinear
	Fc2  *RowParallelLinear
	Act  *nn.GELU
}

// NewParallelMLP shards nn.NewMLP(name, embed, hidden, seed) across the TP
// group c.
func NewParallelMLP(name string, embed, hidden int, seed int64, c *comm.Communicator) *ParallelMLP {
	return &ParallelMLP{
		Comm: c,
		Fc1:  NewColumnParallelLinear(name+".fc1", embed, hidden, nn.SubSeed(seed, 0), c),
		Fc2:  NewRowParallelLinear(name+".fc2", hidden, embed, nn.SubSeed(seed, 1), c),
		Act:  nn.NewGELU(),
	}
}

// Forward applies fc2(gelu(fc1(x))) with one AllReduce in fc2.
func (m *ParallelMLP) Forward(x *tensor.Tensor) *tensor.Tensor {
	return m.Fc2.Forward(m.Act.Forward(m.Fc1.Forward(x)))
}

// Backward back-propagates with one AllReduce for the replicated input.
func (m *ParallelMLP) Backward(grad *tensor.Tensor) *tensor.Tensor {
	partial := m.Fc1.BackwardPartial(m.Act.Backward(m.Fc2.Backward(grad)))
	return m.Comm.AllReduceSum(partial)
}

// Params returns the local shard parameters.
func (m *ParallelMLP) Params() []*nn.Param {
	return append(m.Fc1.Params(), m.Fc2.Params()...)
}

// ParallelTransformerBlock is the tensor-parallel pre-norm ViT block. Layer
// norms are replicated: their inputs (and therefore their gradients) are
// identical on every TP rank, so they need no synchronization.
type ParallelTransformerBlock struct {
	Embed, Heads int
	Norm1, Norm2 *nn.LayerNorm
	Attn         *ParallelSelfAttention
	FFN          *ParallelMLP
}

// NewParallelTransformerBlock shards nn.NewTransformerBlock(name, embed,
// heads, seed) across the TP group c.
func NewParallelTransformerBlock(name string, embed, heads int, seed int64, c *comm.Communicator) *ParallelTransformerBlock {
	return &ParallelTransformerBlock{
		Embed: embed,
		Heads: heads,
		Norm1: nn.NewLayerNorm(name+".norm1", embed),
		Norm2: nn.NewLayerNorm(name+".norm2", embed),
		Attn:  NewParallelSelfAttention(name+".attn", embed, heads, nn.SubSeed(seed, 0), c),
		FFN:   NewParallelMLP(name+".mlp", embed, 4*embed, nn.SubSeed(seed, 1), c),
	}
}

// Forward applies the block to replicated x [B,T,E].
func (b *ParallelTransformerBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := tensor.Add(x, b.Attn.Forward(b.Norm1.Forward(x)))
	return tensor.Add(h, b.FFN.Forward(b.Norm2.Forward(h)))
}

// Backward back-propagates through both residual branches.
func (b *ParallelTransformerBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dh := tensor.Add(grad, b.Norm2.Backward(b.FFN.Backward(grad)))
	return tensor.Add(dh, b.Norm1.Backward(b.Attn.Backward(dh)))
}

// Params returns the block's local parameters (norms replicated, attention
// and MLP sharded).
func (b *ParallelTransformerBlock) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, b.Norm1.Params()...)
	ps = append(ps, b.Attn.Params()...)
	ps = append(ps, b.Norm2.Params()...)
	ps = append(ps, b.FFN.Params()...)
	return ps
}

// Partition splits the block's parameters into rank-local weight shards and
// group-replicated parameters (layer norms and row-parallel biases, whose
// gradients are identical on every TP rank). Distributed global-norm
// computations count local shards across the group and replicated
// parameters once.
func (b *ParallelTransformerBlock) Partition() (local, replicated []*nn.Param) {
	replicated = append(replicated, b.Norm1.Params()...)
	replicated = append(replicated, b.Norm2.Params()...)
	for _, col := range []*ColumnParallelLinear{b.Attn.Wq, b.Attn.Wk, b.Attn.Wv, b.FFN.Fc1} {
		local = append(local, col.Params()...)
	}
	for _, row := range []*RowParallelLinear{b.Attn.Wo, b.FFN.Fc2} {
		local = append(local, row.Local.Params()...)
		replicated = append(replicated, row.Bias)
	}
	return local, replicated
}
