package parallel

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Sequence parallelism (paper Sec. 3.5): instead of sharding the embedding
// dimension (TP), SP shards the *token* dimension of the ViT. The paper
// notes D-CHAG composes with SP exactly as with TP — the channel stage ends
// just before the self-attention layers, where the fused representation can
// be scattered along the sequence axis.
//
// This implementation keeps parameters replicated and tokens sharded:
//
//   - layer norms and MLPs act independently per token, so they run on the
//     local shard with no communication;
//   - self-attention computes local queries against the AllGathered keys and
//     values (ring-attention without the overlap optimization); the backward
//     pass ReduceScatters the key/value gradients back to their owners.
//
// Parameter gradients are computed from local token shards only, so they
// must be averaged across the SP group after backward — SyncGradients does
// this, mirroring how Megatron-SP folds the reduction into its TP
// collectives.
type SPSelfAttention struct {
	Comm         *comm.Communicator
	Embed, Heads int
	Wq, Wk, Wv   *nn.Linear
	Wo           *nn.Linear

	q, kFull, vFull *tensor.Tensor
	attn            *tensor.Tensor
	localT          int
}

// NewSPSelfAttention builds the sequence-parallel twin of
// nn.NewSelfAttention(name, embed, heads, seed): parameters are replicated
// bit-for-bit on every rank.
func NewSPSelfAttention(name string, embed, heads int, seed int64, c *comm.Communicator) *SPSelfAttention {
	if embed%heads != 0 {
		panic(fmt.Sprintf("parallel: embed %d not divisible by heads %d", embed, heads))
	}
	return &SPSelfAttention{
		Comm:  c,
		Embed: embed, Heads: heads,
		Wq: nn.NewLinear(name+".wq", embed, embed, nn.SubSeed(seed, 0)),
		Wk: nn.NewLinear(name+".wk", embed, embed, nn.SubSeed(seed, 1)),
		Wv: nn.NewLinear(name+".wv", embed, embed, nn.SubSeed(seed, 2)),
		Wo: nn.NewLinear(name+".wo", embed, embed, nn.SubSeed(seed, 3)),
	}
}

// Forward consumes the local token shard [B, T/p, E] and returns the
// attention output for the same shard. One AllGather of K and one of V.
func (a *SPSelfAttention) Forward(xLocal *tensor.Tensor) *tensor.Tensor {
	if len(xLocal.Shape) != 3 {
		panic(fmt.Sprintf("parallel: SPSelfAttention.Forward wants [B,Tl,E], got %v", xLocal.Shape))
	}
	a.localT = xLocal.Shape[1]
	a.q = nn.SplitHeads(a.Wq.Forward(xLocal), a.Heads) // [B,H,Tl,Dh]
	kLocal := a.Wk.Forward(xLocal)
	vLocal := a.Wv.Forward(xLocal)
	a.kFull = nn.SplitHeads(a.Comm.AllGatherConcat(kLocal, 1), a.Heads) // [B,H,T,Dh]
	a.vFull = nn.SplitHeads(a.Comm.AllGatherConcat(vLocal, 1), a.Heads)

	scale := 1 / math.Sqrt(float64(a.Embed/a.Heads))
	scores := tensor.BatchedMatMulT(a.q, a.kFull) // [B,H,Tl,T]
	tensor.ScaleInPlace(scores, scale)
	a.attn = tensor.SoftmaxLastDim(scores)
	ctx := nn.MergeHeads(tensor.BatchedMatMul(a.attn, a.vFull)) // [B,Tl,E]
	return a.Wo.Forward(ctx)
}

// Backward consumes the local output gradient [B, T/p, E] and returns the
// local input gradient. K/V gradients are ReduceScattered back to the token
// owners (the SP backward communication the paper contrasts with D-CHAG's
// silent backward).
func (a *SPSelfAttention) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if a.attn == nil {
		panic("parallel: SPSelfAttention.Backward before Forward")
	}
	dctx := nn.SplitHeads(a.Wo.Backward(grad), a.Heads)
	scale := 1 / math.Sqrt(float64(a.Embed/a.Heads))
	dA := tensor.BatchedMatMulT(dctx, a.vFull)    // [B,H,Tl,T]
	dvFull := tensor.BatchedTMatMul(a.attn, dctx) // [B,H,T,Dh]
	dS := tensor.SoftmaxBackwardLastDim(a.attn, dA)
	tensor.ScaleInPlace(dS, scale)
	dq := tensor.BatchedMatMul(dS, a.kFull)  // [B,H,Tl,Dh]
	dkFull := tensor.BatchedTMatMul(dS, a.q) // [B,H,T,Dh]

	// Each rank holds only the contribution of its queries to dK/dV; sum the
	// contributions and keep the local token slice.
	dkLocal := a.Comm.ReduceScatterSum(nn.MergeHeads(dkFull), 1)
	dvLocal := a.Comm.ReduceScatterSum(nn.MergeHeads(dvFull), 1)

	dx := a.Wq.Backward(nn.MergeHeads(dq))
	tensor.AddInPlace(dx, a.Wk.Backward(dkLocal))
	tensor.AddInPlace(dx, a.Wv.Backward(dvLocal))
	return dx
}

// Params returns the replicated projection parameters.
func (a *SPSelfAttention) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, a.Wq.Params()...)
	ps = append(ps, a.Wk.Params()...)
	ps = append(ps, a.Wv.Params()...)
	ps = append(ps, a.Wo.Params()...)
	return ps
}

// SPTransformerBlock is the sequence-parallel pre-norm ViT block: norms and
// the MLP run on the local token shard; attention gathers K/V.
type SPTransformerBlock struct {
	Embed, Heads int
	Norm1, Norm2 *nn.LayerNorm
	Attn         *SPSelfAttention
	FFN          *nn.MLP
}

// NewSPTransformerBlock builds the SP twin of nn.NewTransformerBlock with
// identical parameters.
func NewSPTransformerBlock(name string, embed, heads int, seed int64, c *comm.Communicator) *SPTransformerBlock {
	return &SPTransformerBlock{
		Embed: embed,
		Heads: heads,
		Norm1: nn.NewLayerNorm(name+".norm1", embed),
		Norm2: nn.NewLayerNorm(name+".norm2", embed),
		Attn:  NewSPSelfAttention(name+".attn", embed, heads, nn.SubSeed(seed, 0), c),
		FFN:   nn.NewMLP(name+".mlp", embed, 4*embed, nn.SubSeed(seed, 1)),
	}
}

// Forward applies the block to the local token shard [B, T/p, E].
func (b *SPTransformerBlock) Forward(xLocal *tensor.Tensor) *tensor.Tensor {
	h := tensor.Add(xLocal, b.Attn.Forward(b.Norm1.Forward(xLocal)))
	return tensor.Add(h, b.FFN.Forward(b.Norm2.Forward(h)))
}

// Backward back-propagates through both residual branches on the shard.
func (b *SPTransformerBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dh := tensor.Add(grad, b.Norm2.Backward(b.FFN.Backward(grad)))
	return tensor.Add(dh, b.Norm1.Backward(b.Attn.Backward(dh)))
}

// Params returns the block's replicated parameters.
func (b *SPTransformerBlock) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, b.Norm1.Params()...)
	ps = append(ps, b.Attn.Params()...)
	ps = append(ps, b.Norm2.Params()...)
	ps = append(ps, b.FFN.Params()...)
	return ps
}

// SyncGradients sums the block's parameter gradients across the SP group:
// each rank saw only its token shard's contribution, and the serial gradient
// is the sum over all tokens. Required once per step, after Backward.
func (b *SPTransformerBlock) SyncGradients() {
	for _, p := range b.Params() {
		sum := b.Attn.Comm.AllReduceSum(p.Grad)
		p.Grad.CopyFrom(sum)
	}
}

// ScatterTokens splits a replicated sequence [B, T, E] into this rank's
// shard [B, T/p, E]; the boundary operation between a D-CHAG channel stage
// (whose output is replicated) and an SP ViT.
func ScatterTokens(x *tensor.Tensor, c *comm.Communicator) *tensor.Tensor {
	return tensor.SplitEqual(x, 1, c.Size())[c.Rank()]
}

// GatherTokens reassembles the full sequence from this rank's shard (used
// before the replicated head).
func GatherTokens(xLocal *tensor.Tensor, c *comm.Communicator) *tensor.Tensor {
	return c.AllGatherConcat(xLocal, 1)
}
