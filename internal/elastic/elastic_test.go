package elastic

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/train"
)

func tinyArch(channels int) model.Arch {
	return model.Arch{
		Config: core.Config{
			Channels: channels, ImgH: 4, ImgW: 4, Patch: 2,
			Embed: 8, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 99,
		},
		Depth:      1,
		MetaTokens: 1,
	}
}

// fixedBatches precomputes deterministic batches so every topology and
// every replay consumes byte-identical data.
func fixedBatches(t *testing.T, channels, steps, batch int) train.BatchFn {
	t.Helper()
	g := data.NewHyperspectral(data.HyperspectralConfig{
		Images: steps * batch, Channels: channels, ImgH: 4, ImgW: 4,
		Endmembers: 2, Noise: 0.01, Seed: 42,
	})
	xs := make([]*tensor.Tensor, steps)
	for s := 0; s < steps; s++ {
		xs[s] = g.Batch(s*batch, batch)
	}
	return func(step int) (*tensor.Tensor, *tensor.Tensor) {
		return xs[step], xs[step]
	}
}

func sameLoss(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: history lengths differ: %d vs %d", label, len(want), len(got))
	}
	for s := range want {
		if want[s] != got[s] {
			t.Fatalf("%s: step %d: want %v, got %v", label, s, want[s], got[s])
		}
	}
}

// nearLoss tolerates float64 round-off; cross-topology comparisons need it
// because the distributed clip-norm reduction associates partial sums
// differently than the serial loop.
func nearLoss(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: history lengths differ: %d vs %d", label, len(want), len(got))
	}
	for s := range want {
		if math.Abs(want[s]-got[s]) > 1e-12*math.Abs(want[s]) {
			t.Fatalf("%s: step %d: want %v, got %v", label, s, want[s], got[s])
		}
	}
}

// serialReference trains the serial DCHAG-equivalent model on the same
// options and returns its per-step losses — the oracle every elastic
// trajectory must match step for step.
func serialReference(t *testing.T, a model.Arch, partitions int, opts train.Options, batch train.BatchFn) []float64 {
	t.Helper()
	opts.CheckpointDir = ""
	opts.CheckpointEvery = 0
	opts.CheckpointKeep = 0
	return train.Serial(model.NewSerialDCHAGEquivalent(a, partitions), opts, batch).Loss
}

// copyDir clones a committed checkpoint directory so later training cannot
// disturb the copy the control run restores from.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestElasticShrinkBitwiseVsColdRestore is the acceptance pin: train at 8
// ranks, kill one rank mid-run under the deterministic fault plan,
// re-rendezvous at 4 ranks from the last committed checkpoint, continue —
// and the continued loss trajectory must be bitwise identical to a cold
// restore-at-4 (the independent train.Distributed resume path) from the
// same commit.
func TestElasticShrinkBitwiseVsColdRestore(t *testing.T) {
	leakcheck.Check(t)
	const (
		channels = 8
		steps    = 10
	)
	a := tinyArch(channels)
	root := t.TempDir()
	opts := train.Options{
		Steps: steps, Batch: 4, LR: 1e-2, MaskRatio: 0.5, Seed: 5, ClipNorm: 1,
		CheckpointDir: root, CheckpointEvery: 3, CheckpointKeep: 4,
	}
	batch := fixedBatches(t, channels, steps, opts.Batch)
	plan := faultinject.NewPlan().KillAtStep(5, 7)

	rep, err := Run(a, opts, Options{TP: 8, DP: 1, MinWorld: 2, Plan: plan}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Generations) != 2 {
		t.Fatalf("generations = %+v, want 2", rep.Generations)
	}
	g0, g1 := rep.Generations[0], rep.Generations[1]
	if g0.TP != 8 || g0.DP != 1 || g0.Start != 0 || g0.Source != SourceFresh {
		t.Fatalf("generation 0 = %+v", g0)
	}
	if len(g0.Failed) != 1 || g0.Failed[0] != 5 {
		t.Fatalf("generation 0 failed set = %v, want [5]", g0.Failed)
	}
	// Rank 5's shard has no surviving replica at TP8×DP1, so the reshard
	// must come from the step-6 commit (the step-7 kill fires before any
	// step-7 state exists anywhere).
	if g1.TP != 4 || g1.DP != 1 || g1.Start != 6 || g1.Source != SourceCheckpoint {
		t.Fatalf("generation 1 = %+v, want TP4 DP1 from checkpoint at step 6", g1)
	}
	if len(plan.Fired()) != 1 {
		t.Fatalf("fired faults = %v", plan.Fired())
	}

	// Control: cold restore-at-4 from a copy of the same commit, through
	// train.Distributed's own resume path (independent of the generation
	// loop).
	a4 := a
	a4.Partitions = 8
	cold := copyDir(t, ckpt.StepDir(root, 6))
	coldOpts := train.Options{
		Steps: steps, Batch: 4, LR: 1e-2, MaskRatio: 0.5, Seed: 5, ClipNorm: 1,
		CheckpointDir: cold, Resume: true,
	}
	hist, _, err := train.Distributed(a4, 4, false, coldOpts, batch)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Start != 6 {
		t.Fatalf("cold restore started at %d, want 6", hist.Start)
	}
	sameLoss(t, "elastic continuation vs cold restore-at-4", hist.Loss, rep.Loss[6:])

	// And the whole realized trajectory still tracks the serial oracle.
	ref := serialReference(t, a, 8, opts, batch)
	nearLoss(t, "elastic trajectory vs serial reference", ref, rep.Loss)
}

type genExpect struct {
	tp, dp int
	start  int
	source string
	failed []int
}

// TestElasticChaosMatrix drives the supervisor through the failure modes
// that matter: death at a step boundary, death mid-collective, death during
// a checkpoint save, a double failure, an explicit shrink-then-grow, and a
// DP-replicated death that reshards from memory with zero rollback. Every
// case must end with the full trajectory matching the serial oracle and no
// leaked goroutines.
func TestElasticChaosMatrix(t *testing.T) {
	const steps = 6
	cases := []struct {
		name       string
		channels   int
		tp, dp     int
		ckptEvery  int // 0: no checkpoint dir
		plan       func() *faultinject.Plan
		resizes    []Resize
		wantGens   []genExpect
		skipSource bool // mid-collective: boundary spread depends on op layout
	}{
		{
			name: "fail-at-step-boundary", channels: 4, tp: 4, dp: 1, ckptEvery: 2,
			plan: func() *faultinject.Plan { return faultinject.NewPlan().KillAtStep(2, 3) },
			wantGens: []genExpect{
				{tp: 4, dp: 1, start: 0, source: SourceFresh, failed: []int{2}},
				{tp: 2, dp: 1, start: 2, source: SourceCheckpoint},
			},
		},
		{
			name: "fail-mid-collective", channels: 4, tp: 2, dp: 2, ckptEvery: 2,
			plan:       func() *faultinject.Plan { return faultinject.NewPlan().KillBeforeOp(1, 2) },
			skipSource: true,
			wantGens: []genExpect{
				{tp: 2, dp: 2, start: 0, source: SourceFresh, failed: []int{1}},
				{tp: 2, dp: 1, start: 0, source: SourceMemory},
			},
		},
		{
			name: "fail-during-checkpoint-save", channels: 4, tp: 4, dp: 1, ckptEvery: 2,
			plan: func() *faultinject.Plan { return faultinject.NewPlan().KillInCheckpoint(3, 4) },
			wantGens: []genExpect{
				{tp: 4, dp: 1, start: 0, source: SourceFresh, failed: []int{3}},
				// The step-4 save died uncommitted; the rollback target is
				// the step-2 commit, not the poisoned partial.
				{tp: 2, dp: 1, start: 2, source: SourceCheckpoint},
			},
		},
		{
			name: "double-failure", channels: 4, tp: 4, dp: 1, ckptEvery: 2,
			plan: func() *faultinject.Plan { return faultinject.NewPlan().KillAtStep(0, 3).KillAtStep(2, 3) },
			wantGens: []genExpect{
				{tp: 4, dp: 1, start: 0, source: SourceFresh, failed: []int{0, 2}},
				{tp: 2, dp: 1, start: 2, source: SourceCheckpoint},
			},
		},
		{
			name: "shrink-then-grow", channels: 4, tp: 4, dp: 1,
			resizes: []Resize{{AtStep: 2, TP: 2, DP: 1}, {AtStep: 4, TP: 4, DP: 1}},
			wantGens: []genExpect{
				{tp: 4, dp: 1, start: 0, source: SourceFresh},
				{tp: 2, dp: 1, start: 2, source: SourceMemory},
				{tp: 4, dp: 1, start: 4, source: SourceMemory},
			},
		},
		{
			name: "dp-replica-survives-in-memory", channels: 4, tp: 2, dp: 2,
			plan: func() *faultinject.Plan { return faultinject.NewPlan().KillAtStep(1, 3) },
			wantGens: []genExpect{
				{tp: 2, dp: 2, start: 0, source: SourceFresh, failed: []int{1}},
				// Rank 1's shard survives on its DP twin, so the reshard is
				// in-memory at the kill boundary: zero steps lost.
				{tp: 2, dp: 1, start: 3, source: SourceMemory},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			leakcheck.Check(t)
			a := tinyArch(tc.channels)
			opts := train.Options{
				Steps: steps, Batch: 4, LR: 1e-2, MaskRatio: 0.5, Seed: 9, ClipNorm: 1,
			}
			if tc.ckptEvery > 0 {
				opts.CheckpointDir = t.TempDir()
				opts.CheckpointEvery = tc.ckptEvery
				opts.CheckpointKeep = 8
			}
			batch := fixedBatches(t, tc.channels, steps, opts.Batch)
			eo := Options{TP: tc.tp, DP: tc.dp, MinWorld: 1, Resizes: tc.resizes}
			var plan *faultinject.Plan
			if tc.plan != nil {
				plan = tc.plan()
				eo.Plan = plan
			}
			rep, err := Run(a, opts, eo, batch)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Generations) != len(tc.wantGens) {
				t.Fatalf("generations = %+v, want %d", rep.Generations, len(tc.wantGens))
			}
			for i, want := range tc.wantGens {
				g := rep.Generations[i]
				if g.TP != want.tp || g.DP != want.dp {
					t.Fatalf("generation %d shape = %dx%d, want %dx%d", i, g.TP, g.DP, want.tp, want.dp)
				}
				if !tc.skipSource || i == 0 {
					if g.Start != want.start || g.Source != want.source {
						t.Fatalf("generation %d = %+v, want start %d source %s", i, g, want.start, want.source)
					}
				}
				if want.failed != nil {
					if len(g.Failed) != len(want.failed) {
						t.Fatalf("generation %d failed = %v, want %v", i, g.Failed, want.failed)
					}
					for j := range want.failed {
						if g.Failed[j] != want.failed[j] {
							t.Fatalf("generation %d failed = %v, want %v", i, g.Failed, want.failed)
						}
					}
				}
			}
			if plan != nil && len(plan.Fired()) == 0 {
				t.Fatal("no planned fault fired")
			}
			ref := serialReference(t, a, tc.tp, opts, batch)
			nearLoss(t, "trajectory vs serial reference", ref, rep.Loss)
		})
	}
}

// TestElasticFailsBelowMinWorld: when the survivors cannot form a viable
// mesh, the supervisor must fail loudly with the triggering rank error
// still in the chain — silent shrink-to-nothing is not recovery.
func TestElasticFailsBelowMinWorld(t *testing.T) {
	leakcheck.Check(t)
	a := tinyArch(4)
	opts := train.Options{
		Steps: 4, Batch: 4, LR: 1e-2, MaskRatio: 0.5, Seed: 9, ClipNorm: 1,
		CheckpointDir: t.TempDir(), CheckpointEvery: 1, CheckpointKeep: 8,
	}
	batch := fixedBatches(t, 4, 4, opts.Batch)
	plan := faultinject.NewPlan().KillAtStep(0, 2).KillAtStep(1, 2).KillAtStep(2, 2)
	rep, err := Run(a, opts, Options{TP: 4, DP: 1, MinWorld: 2, Plan: plan}, batch)
	if err == nil {
		t.Fatal("supervisor recovered below MinWorld")
	}
	if len(rep.Generations) != 1 || len(rep.Generations[0].Failed) != 3 {
		t.Fatalf("generations = %+v", rep.Generations)
	}
}
