package elastic

import (
	"math/rand"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/leakcheck"
	"repro/internal/train"
)

// TestElasticPropertyRandomFailures is the property check behind the chaos
// matrix: for random world sizes, random checkpoint cadences, and a random
// victim killed at a random step, the supervisor's realized trajectory must
// match the serial oracle step for step, and every recovery shape must be a
// divisor of the logical partition count no larger than the survivor count.
// The trials are seeded, so a failure reproduces deterministically.
func TestElasticPropertyRandomFailures(t *testing.T) {
	const steps = 6
	worlds := []int{4, 8}
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		p := worlds[rng.Intn(len(worlds))]
		every := 1 + rng.Intn(2)
		// The earliest kill leaves at least one committed checkpoint, so
		// recovery never needs state that was never made durable.
		killStep := every + rng.Intn(steps-every)
		victim := rng.Intn(p)
		t.Run("", func(t *testing.T) {
			leakcheck.Check(t)
			a := tinyArch(p)
			opts := train.Options{
				Steps: steps, Batch: 4, LR: 1e-2, MaskRatio: 0.5, Seed: int64(7 + trial), ClipNorm: 1,
				CheckpointDir: t.TempDir(), CheckpointEvery: every, CheckpointKeep: 16,
			}
			batch := fixedBatches(t, p, steps, opts.Batch)
			plan := faultinject.NewPlan().KillAtStep(victim, killStep)
			rep, err := Run(a, opts, Options{TP: p, DP: 1, MinWorld: 1, Plan: plan}, batch)
			if err != nil {
				t.Fatalf("p=%d every=%d kill rank %d at step %d: %v", p, every, victim, killStep, err)
			}
			if len(rep.Generations) < 2 {
				t.Fatalf("generations = %+v, want a failure and a recovery", rep.Generations)
			}
			g0 := rep.Generations[0]
			if len(g0.Failed) != 1 || g0.Failed[0] != victim {
				t.Fatalf("generation 0 failed = %v, want [%d]", g0.Failed, victim)
			}
			for i, g := range rep.Generations {
				if g.TP < 1 || p%g.TP != 0 {
					t.Fatalf("generation %d TP %d does not divide partitions %d", i, g.TP, p)
				}
				if i > 0 && g.TP*g.DP > p-1 {
					t.Fatalf("generation %d world %d exceeds %d survivors", i, g.TP*g.DP, p-1)
				}
			}
			ref := serialReference(t, a, p, opts, batch)
			nearLoss(t, "trajectory vs serial reference", ref, rep.Loss)
		})
	}
}
