// Package elastic is the fault-tolerant training supervisor: it wraps
// hybrid (TP×DP) training in generations, and on a rank failure — or an
// explicit grow/shrink request — re-rendezvouses the survivors at a new
// mesh shape whose TP extent divides the logical partition count, reshards
// the training state, and continues with the LR schedule and mask-RNG
// stream fast-forwarded exactly as a checkpoint resume would.
//
// Resharding prefers the zero-I/O path: every rank snapshots its state tree
// at each step boundary, and because the collectives are rendezvous-
// synchronous, survivors' snapshots are usually from the same boundary; if
// they are consistent and jointly cover every logical tensor (data-parallel
// replication makes this common), the supervisor assembles them in memory
// and loses zero steps. Otherwise it rolls back to the latest committed
// checkpoint (ckpt.OpenLatest) — which is why durable elastic runs want the
// keep-last-k retention layout, where a kill mid-save can never corrupt an
// earlier commit. See DESIGN.md "Elastic training".
package elastic

import (
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/dist"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/train"
)

// Resize is an explicit shape change: the running generation ends at the
// boundary before executing global step AtStep, and the next one starts
// there at TP×DP.
type Resize struct {
	AtStep int
	TP, DP int
}

// Options configures the supervisor.
type Options struct {
	// TP and DP are the initial mesh shape.
	TP, DP int
	// MinWorld is the smallest world size the supervisor will re-rendezvous
	// at; below it, the run fails with the triggering error. 0 means 1.
	MinWorld int
	// MaxGenerations bounds the number of re-rendezvous attempts (a repeated
	// deterministic failure must not loop forever). 0 means 16.
	MaxGenerations int
	// Plan is the deterministic fault plan threaded through every
	// generation's mesh (nil: no injected faults). The supervisor advances
	// its generation scope before each launch.
	Plan *faultinject.Plan
	// Resizes are explicit shape changes, applied in AtStep order.
	Resizes []Resize
	TPViT   bool
	// Trace, when non-nil, records supervisor lifecycle instants
	// (generation start/end, rank deaths, reshard decisions) on the
	// tracer's last row, while the generations' per-rank rows come from
	// train.Options.Trace — by convention the same tracer sized with
	// rows = initial world + 1 so world ranks and supervisor never share
	// a row.
	Trace *obs.Tracer
}

// Source values recorded per generation: how its initial state was produced.
const (
	SourceFresh      = "fresh"      // random initialization at step 0
	SourceMemory     = "memory"     // in-memory reshard of survivors' boundary snapshots
	SourceCheckpoint = "checkpoint" // restore from the latest committed checkpoint
)

// Generation records one generation's shape and fate.
type Generation struct {
	Gen    int
	TP, DP int
	// Start is the global step the generation began at.
	Start int
	// Source says how the generation's initial state was produced.
	Source string
	// Failed lists the ranks that died during the generation (root causes
	// from dist.FailedRanks); empty when it completed its step range.
	Failed []int
}

// Report is the supervisor's outcome. Loss is indexed by global step; when
// a rollback replays steps, the replayed values overwrite the originals, so
// the final vector is the realized trajectory.
type Report struct {
	Loss        []float64
	Generations []Generation
}

// Run trains arch for opts.Steps steps under elastic supervision. The
// returned Report covers every generation even when Run fails partway.
func Run(arch model.Arch, opts train.Options, eo Options, batch train.BatchFn) (Report, error) {
	rep := Report{Loss: make([]float64, opts.Steps)}
	if eo.TP < 1 || eo.DP < 1 {
		return rep, fmt.Errorf("elastic: invalid initial shape tp=%d dp=%d", eo.TP, eo.DP)
	}
	// Pin the logical partition count to the initial TP extent so every
	// later generation builds the same logical model regardless of its
	// world size (the model default would re-derive it from the group).
	partitions := arch.Partitions
	if partitions == 0 {
		partitions = eo.TP
		arch.Partitions = partitions
	}
	if partitions%eo.TP != 0 {
		return rep, fmt.Errorf("elastic: tp %d does not divide partitions %d", eo.TP, partitions)
	}
	resizes := append([]Resize(nil), eo.Resizes...)
	sort.Slice(resizes, func(i, j int) bool { return resizes[i].AtStep < resizes[j].AtStep })
	for _, rz := range resizes {
		if rz.TP < 1 || rz.DP < 1 || partitions%rz.TP != 0 || opts.Batch%rz.DP != 0 {
			return rep, fmt.Errorf("elastic: invalid resize to tp=%d dp=%d at step %d", rz.TP, rz.DP, rz.AtStep)
		}
	}
	maxGen := eo.MaxGenerations
	if maxGen == 0 {
		maxGen = 16
	}
	tp, dp := eo.TP, eo.DP
	start := 0
	source := SourceFresh
	var from *ckpt.Checkpoint
	if opts.Resume {
		ck, err := ckpt.OpenLatest(opts.CheckpointDir)
		if err != nil {
			return rep, err
		}
		from, start, source = ck, ck.Manifest.Step, SourceCheckpoint
	}
	// The generation loop consumes opts.Resume/InitFrom here; the restore
	// source reaches RunGeneration explicitly via GenSpec.From.
	opts.Resume = false
	opts.InitFrom = ""
	if opts.Trace == nil {
		opts.Trace = eo.Trace
	}

	// Supervisor lifecycle events land on the tracer's last row, leaving
	// rows [0, world) to the generations' rank goroutines.
	sup := eo.Trace.Rank(eo.Trace.Rows() - 1)
	for gen := 0; gen < maxGen; gen++ {
		end := opts.Steps
		var next *Resize
		for i := range resizes {
			if resizes[i].AtStep > start && resizes[i].AtStep < opts.Steps {
				next = &resizes[i]
				end = resizes[i].AtStep
				break
			}
		}
		if eo.Plan != nil {
			eo.Plan.Advance(gen)
		}
		sup.Instant("generation-start", "elastic")
		genSpan := sup.Begin("generation", "elastic")
		res := train.RunGeneration(arch, opts, train.GenSpec{
			TP: tp, DP: dp, Start: start, End: end,
			From: from, Fault: eo.Plan, TPViT: eo.TPViT,
		}, batch)
		genSpan.End()
		grec := Generation{Gen: gen, TP: tp, DP: dp, Start: start, Source: source}
		for i, l := range res.Hist.Loss {
			if s := res.Hist.Start + i; s < len(rep.Loss) {
				rep.Loss[s] = l
			}
		}
		if res.Err == nil {
			rep.Generations = append(rep.Generations, grec)
			if end == opts.Steps {
				sup.Instant("run-complete", "elastic")
				return rep, nil
			}
			// Clean resize boundary: every rank's tree is present at the
			// same step, so the in-memory reshard cannot fail for coverage.
			sup.Instant("resize", "elastic")
			ck, err := boundarySource(arch, partitions, res, nil)
			if err != nil {
				return rep, fmt.Errorf("elastic: reshard at resize boundary %d: %w", end, err)
			}
			from, start, source = ck, end, SourceMemory
			tp, dp = next.TP, next.DP
			consumeResize(&resizes, end)
			continue
		}
		failed := dist.FailedRanks(res.Err)
		if len(failed) == 0 {
			// Pre-run validation or a pure cascade: not a survivable rank
			// loss.
			return rep, res.Err
		}
		for range failed {
			sup.Instant("rank-death", "elastic")
		}
		grec.Failed = failed
		rep.Generations = append(rep.Generations, grec)
		survivors := tp*dp - len(failed)
		ntp, ndp, ok := nextShape(partitions, tp, survivors, eo.MinWorld, opts.Batch)
		if !ok {
			return rep, fmt.Errorf("elastic: %d survivor(s) below viable world (min %d): %w",
				survivors, eo.MinWorld, res.Err)
		}
		sup.Instant("re-rendezvous", "elastic")
		if ck, step, ok := memoryReshard(arch, partitions, res, failed); ok {
			sup.Instant("reshard-memory", "elastic")
			from, start, source = ck, step, SourceMemory
		} else if opts.CheckpointDir != "" {
			ck, err := ckpt.OpenLatest(opts.CheckpointDir)
			if err != nil {
				return rep, fmt.Errorf("elastic: no in-memory reshard and checkpoint restore failed: %w", err)
			}
			sup.Instant("reshard-checkpoint", "elastic")
			from, start, source = ck, ck.Manifest.Step, SourceCheckpoint
		} else {
			return rep, fmt.Errorf("elastic: survivors cannot cover state and no checkpoint dir: %w", res.Err)
		}
		tp, dp = ntp, ndp
	}
	return rep, fmt.Errorf("elastic: gave up after %d generations", maxGen)
}

// consumeResize drops every resize at or before step so it is not re-applied.
func consumeResize(resizes *[]Resize, step int) {
	out := (*resizes)[:0]
	for _, rz := range *resizes {
		if rz.AtStep > step {
			out = append(out, rz)
		}
	}
	*resizes = out
}

// boundarySource assembles the surviving ranks' boundary trees into a
// restore source, requiring every survivor to be at the same boundary.
// failed is the set of dead ranks to exclude (nil: none).
func boundarySource(arch model.Arch, partitions int, res train.GenResult, failed []int) (*ckpt.Checkpoint, error) {
	dead := make(map[int]bool, len(failed))
	for _, r := range failed {
		dead[r] = true
	}
	boundary := -1
	var trees []ckpt.Tree
	for r := range res.Trees {
		if dead[r] {
			continue
		}
		if res.Boundary[r] < 0 {
			return nil, fmt.Errorf("elastic: rank %d has no boundary snapshot", r)
		}
		if boundary == -1 {
			boundary = res.Boundary[r]
		} else if boundary != res.Boundary[r] {
			return nil, fmt.Errorf("elastic: survivors at inconsistent boundaries %d vs %d", boundary, res.Boundary[r])
		}
		trees = append(trees, res.Trees[r])
	}
	ck, err := train.AssembleBoundary(arch, partitions, boundary, trees)
	if err != nil {
		return nil, err
	}
	return ck, nil
}

// memoryReshard attempts the zero-rollback path after a failure. Survivors
// may legitimately straddle two step boundaries (a victim's data-parallel
// group blocks at gradient sync while the other groups finish the step), so
// it buckets the surviving trees per boundary and assembles the highest
// boundary whose bucket covers every logical tensor. The boundary is capped
// at the last step whose loss rank 0 recorded — restoring past it would
// leave a hole in the trajectory. Reports false — the caller falls back to
// the checkpoint — when no bucket covers (a needed shard died with its rank).
func memoryReshard(arch model.Arch, partitions int, res train.GenResult, failed []int) (*ckpt.Checkpoint, int, bool) {
	dead := make(map[int]bool, len(failed))
	for _, r := range failed {
		dead[r] = true
	}
	recorded := res.Hist.Start + len(res.Hist.Loss)
	buckets := map[int][]ckpt.Tree{}
	for r := range res.Trees {
		if dead[r] || res.Boundary[r] < 0 || res.Boundary[r] > recorded {
			continue
		}
		buckets[res.Boundary[r]] = append(buckets[res.Boundary[r]], res.Trees[r])
	}
	var steps []int
	for b := range buckets {
		steps = append(steps, b)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(steps)))
	for _, b := range steps {
		if ck, err := train.AssembleBoundary(arch, partitions, b, buckets[b]); err == nil {
			return ck, b, true
		}
	}
	return nil, 0, false
}

// nextShape picks the post-failure mesh shape: keep the TP extent (the
// channel sharding) and shed data-parallel replicas when enough ranks
// survive; otherwise drop TP to the largest divisor of the partition count
// that fits the survivors, at DP=1. Returns false when no shape at or above
// minWorld exists.
func nextShape(partitions, tp, survivors, minWorld, batch int) (ntp, ndp int, ok bool) {
	if minWorld < 1 {
		minWorld = 1
	}
	if survivors >= tp {
		ndp := survivors / tp
		for ndp > 1 && batch%ndp != 0 {
			ndp--
		}
		if tp*ndp >= minWorld {
			return tp, ndp, true
		}
	}
	for d := tp; d >= 1; d-- {
		if d <= survivors && partitions%d == 0 {
			if d >= minWorld {
				return d, 1, true
			}
			return 0, 0, false
		}
	}
	return 0, 0, false
}
