package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// attnCore holds the cached intermediates of a scaled-dot-product attention
// over already-projected head tensors, shared by self- and cross-attention.
type attnCore struct {
	heads, headDim int

	q, k, v *tensor.Tensor // [B,H,Tq,Dh], [B,H,Tk,Dh], [B,H,Tk,Dh]
	attn    *tensor.Tensor // softmax weights [B,H,Tq,Tk]
}

// run computes softmax(q k^T / sqrt(Dh)) v, caching intermediates.
func (c *attnCore) run(q, k, v *tensor.Tensor) *tensor.Tensor {
	c.q, c.k, c.v = q, k, v
	scale := 1 / math.Sqrt(float64(c.headDim))
	scores := tensor.BatchedMatMulT(q, k)
	tensor.ScaleInPlace(scores, scale)
	c.attn = tensor.SoftmaxLastDim(scores)
	return tensor.BatchedMatMul(c.attn, v) // [B,H,Tq,Dh]
}

// infer computes run's output without caching the head tensors or attention
// weights for backward.
func (c *attnCore) infer(q, k, v *tensor.Tensor) *tensor.Tensor {
	scale := 1 / math.Sqrt(float64(c.headDim))
	scores := tensor.BatchedMatMulT(q, k)
	tensor.ScaleInPlace(scores, scale)
	attn := tensor.SoftmaxLastDim(scores)
	return tensor.BatchedMatMul(attn, v) // [B,H,Tq,Dh]
}

// grad back-propagates through the attention product, returning gradients
// with respect to the projected q, k and v head tensors.
func (c *attnCore) grad(dctx *tensor.Tensor) (dq, dk, dv *tensor.Tensor) {
	if c.attn == nil {
		panic("nn: attention backward before forward")
	}
	scale := 1 / math.Sqrt(float64(c.headDim))
	dA := tensor.BatchedMatMulT(dctx, c.v)   // [B,H,Tq,Tk]
	dv = tensor.BatchedTMatMul(c.attn, dctx) // [B,H,Tk,Dh]
	dS := tensor.SoftmaxBackwardLastDim(c.attn, dA)
	tensor.ScaleInPlace(dS, scale)
	dq = tensor.BatchedMatMul(dS, c.k)  // [B,H,Tq,Dh]
	dk = tensor.BatchedTMatMul(dS, c.q) // [B,H,Tk,Dh]
	return dq, dk, dv
}

// SplitHeads reshapes [B,T,E] to [B,H,T,Dh] where E = H*Dh.
func SplitHeads(x *tensor.Tensor, heads int) *tensor.Tensor {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("nn: SplitHeads requires rank 3, got %v", x.Shape))
	}
	b, t, e := x.Shape[0], x.Shape[1], x.Shape[2]
	if e%heads != 0 {
		panic(fmt.Sprintf("nn: embed dim %d not divisible by %d heads", e, heads))
	}
	dh := e / heads
	out := tensor.New(b, heads, t, dh)
	for bi := 0; bi < b; bi++ {
		for ti := 0; ti < t; ti++ {
			src := x.Data[(bi*t+ti)*e : (bi*t+ti+1)*e]
			for h := 0; h < heads; h++ {
				dst := out.Data[((bi*heads+h)*t+ti)*dh : ((bi*heads+h)*t+ti+1)*dh]
				copy(dst, src[h*dh:(h+1)*dh])
			}
		}
	}
	return out
}

// MergeHeads reshapes [B,H,T,Dh] back to [B,T,H*Dh]; the inverse of
// SplitHeads.
func MergeHeads(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: MergeHeads requires rank 4, got %v", x.Shape))
	}
	b, h, t, dh := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	e := h * dh
	out := tensor.New(b, t, e)
	for bi := 0; bi < b; bi++ {
		for hi := 0; hi < h; hi++ {
			for ti := 0; ti < t; ti++ {
				src := x.Data[((bi*h+hi)*t+ti)*dh : ((bi*h+hi)*t+ti+1)*dh]
				dst := out.Data[(bi*t+ti)*e+hi*dh : (bi*t+ti)*e+(hi+1)*dh]
				copy(dst, src)
			}
		}
	}
	return out
}

// SelfAttention is a standard multi-head self-attention layer: the ViT
// component of the paper's architecture applies it over spatial tokens.
type SelfAttention struct {
	Embed, Heads int
	Wq, Wk, Wv   *Linear
	Wo           *Linear

	core attnCore
}

// NewSelfAttention constructs a multi-head self-attention layer over embed
// dimensions with the given head count.
func NewSelfAttention(name string, embed, heads int, seed int64) *SelfAttention {
	if embed%heads != 0 {
		panic(fmt.Sprintf("nn: embed %d not divisible by heads %d", embed, heads))
	}
	return &SelfAttention{
		Embed: embed,
		Heads: heads,
		Wq:    NewLinear(name+".wq", embed, embed, SubSeed(seed, 0)),
		Wk:    NewLinear(name+".wk", embed, embed, SubSeed(seed, 1)),
		Wv:    NewLinear(name+".wv", embed, embed, SubSeed(seed, 2)),
		Wo:    NewLinear(name+".wo", embed, embed, SubSeed(seed, 3)),
		core:  attnCore{heads: heads, headDim: embed / heads},
	}
}

// Forward computes multi-head self-attention over x of shape [B,T,E].
func (a *SelfAttention) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("nn: SelfAttention.Forward requires [B,T,E], got %v", x.Shape))
	}
	q := SplitHeads(a.Wq.Forward(x), a.Heads)
	k := SplitHeads(a.Wk.Forward(x), a.Heads)
	v := SplitHeads(a.Wv.Forward(x), a.Heads)
	ctx := MergeHeads(a.core.run(q, k, v))
	return a.Wo.Forward(ctx)
}

// Infer computes Forward's output through the projections' no-grad fast
// paths, caching nothing.
func (a *SelfAttention) Infer(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("nn: SelfAttention.Infer requires [B,T,E], got %v", x.Shape))
	}
	q := SplitHeads(a.Wq.Infer(x), a.Heads)
	k := SplitHeads(a.Wk.Infer(x), a.Heads)
	v := SplitHeads(a.Wv.Infer(x), a.Heads)
	ctx := MergeHeads(a.core.infer(q, k, v))
	return a.Wo.Infer(ctx)
}

// Backward back-propagates to the forward input, accumulating parameter
// gradients in the four projections.
func (a *SelfAttention) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dctx := SplitHeads(a.Wo.Backward(grad), a.Heads)
	dq, dk, dv := a.core.grad(dctx)
	dx := a.Wq.Backward(MergeHeads(dq))
	tensor.AddInPlace(dx, a.Wk.Backward(MergeHeads(dk)))
	tensor.AddInPlace(dx, a.Wv.Backward(MergeHeads(dv)))
	return dx
}

// Params returns the projection parameters.
func (a *SelfAttention) Params() []*Param {
	var ps []*Param
	ps = append(ps, a.Wq.Params()...)
	ps = append(ps, a.Wk.Params()...)
	ps = append(ps, a.Wv.Params()...)
	ps = append(ps, a.Wo.Params()...)
	return ps
}

// CrossAttention attends a query sequence to a separate key/value context
// sequence. The paper's channel-aggregation module is a cross-attention
// whose query and context are both the per-location channel tokens; its
// output is then reduced across the channel axis.
type CrossAttention struct {
	Embed, Heads int
	Wq, Wk, Wv   *Linear
	Wo           *Linear

	core attnCore
}

// NewCrossAttention constructs a multi-head cross-attention layer.
func NewCrossAttention(name string, embed, heads int, seed int64) *CrossAttention {
	if embed%heads != 0 {
		panic(fmt.Sprintf("nn: embed %d not divisible by heads %d", embed, heads))
	}
	return &CrossAttention{
		Embed: embed,
		Heads: heads,
		Wq:    NewLinear(name+".wq", embed, embed, SubSeed(seed, 0)),
		Wk:    NewLinear(name+".wk", embed, embed, SubSeed(seed, 1)),
		Wv:    NewLinear(name+".wv", embed, embed, SubSeed(seed, 2)),
		Wo:    NewLinear(name+".wo", embed, embed, SubSeed(seed, 3)),
		core:  attnCore{heads: heads, headDim: embed / heads},
	}
}

// Forward computes attention of query [B,Tq,E] over context [B,Tk,E],
// returning [B,Tq,E].
func (a *CrossAttention) Forward(query, context *tensor.Tensor) *tensor.Tensor {
	if len(query.Shape) != 3 || len(context.Shape) != 3 {
		panic(fmt.Sprintf("nn: CrossAttention.Forward requires rank-3 inputs, got %v and %v", query.Shape, context.Shape))
	}
	q := SplitHeads(a.Wq.Forward(query), a.Heads)
	k := SplitHeads(a.Wk.Forward(context), a.Heads)
	v := SplitHeads(a.Wv.Forward(context), a.Heads)
	ctx := MergeHeads(a.core.run(q, k, v))
	return a.Wo.Forward(ctx)
}

// Infer computes Forward's output through the projections' no-grad fast
// paths, caching nothing.
func (a *CrossAttention) Infer(query, context *tensor.Tensor) *tensor.Tensor {
	if len(query.Shape) != 3 || len(context.Shape) != 3 {
		panic(fmt.Sprintf("nn: CrossAttention.Infer requires rank-3 inputs, got %v and %v", query.Shape, context.Shape))
	}
	q := SplitHeads(a.Wq.Infer(query), a.Heads)
	k := SplitHeads(a.Wk.Infer(context), a.Heads)
	v := SplitHeads(a.Wv.Infer(context), a.Heads)
	ctx := MergeHeads(a.core.infer(q, k, v))
	return a.Wo.Infer(ctx)
}

// Backward returns gradients with respect to the query and context inputs.
func (a *CrossAttention) Backward(grad *tensor.Tensor) (dQuery, dContext *tensor.Tensor) {
	dctx := SplitHeads(a.Wo.Backward(grad), a.Heads)
	dq, dk, dv := a.core.grad(dctx)
	dQuery = a.Wq.Backward(MergeHeads(dq))
	dContext = a.Wk.Backward(MergeHeads(dk))
	tensor.AddInPlace(dContext, a.Wv.Backward(MergeHeads(dv)))
	return dQuery, dContext
}

// Params returns the projection parameters.
func (a *CrossAttention) Params() []*Param {
	var ps []*Param
	ps = append(ps, a.Wq.Params()...)
	ps = append(ps, a.Wk.Params()...)
	ps = append(ps, a.Wv.Params()...)
	ps = append(ps, a.Wo.Params()...)
	return ps
}
