package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// attnCore holds the cached intermediates and scratch buffers of a
// scaled-dot-product attention over already-projected head tensors, shared
// by self- and cross-attention.
type attnCore struct {
	heads, headDim int
	dtype          tensor.DType // arithmetic of the no-grad infer path

	q, k, v *tensor.Tensor // [B,H,Tq,Dh], [B,H,Tk,Dh], [B,H,Tk,Dh]
	attn    *tensor.Tensor // softmax weights [B,H,Tq,Tk] (aliases scores)

	scores *tensor.Tensor // Forward scores/softmax scratch
	ctx    *tensor.Tensor // Forward context scratch
	iscore *tensor.Tensor // Infer scratch, separate so an eval pass never
	ictx   *tensor.Tensor // clobbers the attn cache a pending Backward reads
	dA     *tensor.Tensor // Backward dAttn/dScores scratch
	dq     *tensor.Tensor
	dk     *tensor.Tensor
	dv     *tensor.Tensor
}

// run computes softmax(q k^T / sqrt(Dh)) v, caching intermediates. The
// returned context is core-owned scratch.
//
// dchag:hotpath — the attention product of every block, every step.
func (c *attnCore) run(q, k, v *tensor.Tensor) *tensor.Tensor {
	c.q, c.k, c.v = q, k, v
	scale := 1 / math.Sqrt(float64(c.headDim))
	b, h, tq, tk := q.Shape[0], q.Shape[1], q.Shape[2], k.Shape[2]
	c.scores = tensor.EnsureShape(c.scores, b, h, tq, tk)
	tensor.BatchedMatMulTInto(c.scores, q, k)
	tensor.ScaleInPlace(c.scores, scale)
	c.attn = tensor.SoftmaxLastDimInto(c.scores, c.scores)
	c.ctx = tensor.EnsureShape(c.ctx, b, h, tq, q.Shape[3])
	return tensor.BatchedMatMulInto(c.ctx, c.attn, v) // [B,H,Tq,Dh]
}

// infer computes run's output without caching the head tensors or attention
// weights for backward. Under dtype F32 the two matrix products run in
// float32; the softmax stays float64.
//
// dchag:hotpath — the serve dispatch loop runs this once per block per
// micro-batch.
func (c *attnCore) infer(q, k, v *tensor.Tensor) *tensor.Tensor {
	scale := 1 / math.Sqrt(float64(c.headDim))
	b, h, tq, tk := q.Shape[0], q.Shape[1], q.Shape[2], k.Shape[2]
	c.iscore = tensor.EnsureShape(c.iscore, b, h, tq, tk)
	if c.dtype == tensor.F32 {
		tensor.BatchedMatMulTF32Into(c.iscore, q, k)
	} else {
		tensor.BatchedMatMulTInto(c.iscore, q, k)
	}
	tensor.ScaleInPlace(c.iscore, scale)
	attn := tensor.SoftmaxLastDimInto(c.iscore, c.iscore)
	c.ictx = tensor.EnsureShape(c.ictx, b, h, tq, q.Shape[3])
	if c.dtype == tensor.F32 {
		return tensor.BatchedMatMulF32Into(c.ictx, attn, v)
	}
	return tensor.BatchedMatMulInto(c.ictx, attn, v) // [B,H,Tq,Dh]
}

// grad back-propagates through the attention product, returning gradients
// with respect to the projected q, k and v head tensors (core-owned
// scratch).
//
// dchag:hotpath — per-step attention backward kernels.
func (c *attnCore) grad(dctx *tensor.Tensor) (dq, dk, dv *tensor.Tensor) {
	if c.attn == nil {
		panic("nn: attention backward before forward")
	}
	scale := 1 / math.Sqrt(float64(c.headDim))
	c.dA = tensor.EnsureShape(c.dA, c.attn.Shape...)
	tensor.BatchedMatMulTInto(c.dA, dctx, c.v) // [B,H,Tq,Tk]
	c.dv = tensor.EnsureShape(c.dv, c.v.Shape...)
	tensor.BatchedTMatMulInto(c.dv, c.attn, dctx) // [B,H,Tk,Dh]
	dS := tensor.SoftmaxBackwardLastDimInto(c.dA, c.attn, c.dA)
	tensor.ScaleInPlace(dS, scale)
	c.dq = tensor.EnsureShape(c.dq, c.q.Shape...)
	tensor.BatchedMatMulInto(c.dq, dS, c.k) // [B,H,Tq,Dh]
	c.dk = tensor.EnsureShape(c.dk, c.k.Shape...)
	tensor.BatchedTMatMulInto(c.dk, dS, c.q) // [B,H,Tk,Dh]
	return c.dq, c.dk, c.dv
}

// SplitHeadsInto reshapes x [B,T,E] to dst [B,H,T,Dh] where E = H*Dh. dst
// may be nil (allocate) or a reusable buffer (its backing array is grown as
// needed). It returns dst.
//
// dchag:hotpath — head shuffle on the attention path; with a warm dst it
// performs no heap allocation.
func SplitHeadsInto(dst, x *tensor.Tensor, heads int) *tensor.Tensor {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("nn: SplitHeads requires rank 3, got %v", x.Shape))
	}
	b, t, e := x.Shape[0], x.Shape[1], x.Shape[2]
	if e%heads != 0 {
		panic(fmt.Sprintf("nn: embed dim %d not divisible by %d heads", e, heads))
	}
	dh := e / heads
	dst = tensor.EnsureShape(dst, b, heads, t, dh)
	for bi := 0; bi < b; bi++ {
		for ti := 0; ti < t; ti++ {
			src := x.Data[(bi*t+ti)*e : (bi*t+ti+1)*e]
			for h := 0; h < heads; h++ {
				d := dst.Data[((bi*heads+h)*t+ti)*dh : ((bi*heads+h)*t+ti+1)*dh]
				copy(d, src[h*dh:(h+1)*dh])
			}
		}
	}
	return dst
}

// SplitHeads reshapes [B,T,E] to [B,H,T,Dh]; the allocating wrapper over
// SplitHeadsInto.
func SplitHeads(x *tensor.Tensor, heads int) *tensor.Tensor {
	return SplitHeadsInto(nil, x, heads)
}

// MergeHeadsInto reshapes x [B,H,T,Dh] back to dst [B,T,H*Dh]; the inverse
// of SplitHeadsInto. dst may be nil or a reusable buffer. It returns dst.
//
// dchag:hotpath — head shuffle on the attention path; with a warm dst it
// performs no heap allocation.
func MergeHeadsInto(dst, x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: MergeHeads requires rank 4, got %v", x.Shape))
	}
	b, h, t, dh := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	e := h * dh
	dst = tensor.EnsureShape(dst, b, t, e)
	for bi := 0; bi < b; bi++ {
		for hi := 0; hi < h; hi++ {
			for ti := 0; ti < t; ti++ {
				src := x.Data[((bi*h+hi)*t+ti)*dh : ((bi*h+hi)*t+ti+1)*dh]
				d := dst.Data[(bi*t+ti)*e+hi*dh : (bi*t+ti)*e+(hi+1)*dh]
				copy(d, src)
			}
		}
	}
	return dst
}

// MergeHeads reshapes [B,H,T,Dh] back to [B,T,H*Dh]; the allocating wrapper
// over MergeHeadsInto.
func MergeHeads(x *tensor.Tensor) *tensor.Tensor { return MergeHeadsInto(nil, x) }

// SelfAttention is a standard multi-head self-attention layer: the ViT
// component of the paper's architecture applies it over spatial tokens.
type SelfAttention struct {
	Embed, Heads int
	Wq, Wk, Wv   *Linear
	Wo           *Linear

	core attnCore

	qh, kh, vh *tensor.Tensor // split-head scratch
	merged     *tensor.Tensor // merged-context scratch
	dctxh      *tensor.Tensor // backward split-head scratch
	dm         *tensor.Tensor // backward merge scratch, reused across q/k/v
}

// NewSelfAttention constructs a multi-head self-attention layer over embed
// dimensions with the given head count.
func NewSelfAttention(name string, embed, heads int, seed int64) *SelfAttention {
	if embed%heads != 0 {
		panic(fmt.Sprintf("nn: embed %d not divisible by heads %d", embed, heads))
	}
	return &SelfAttention{
		Embed: embed,
		Heads: heads,
		Wq:    NewLinear(name+".wq", embed, embed, SubSeed(seed, 0)),
		Wk:    NewLinear(name+".wk", embed, embed, SubSeed(seed, 1)),
		Wv:    NewLinear(name+".wv", embed, embed, SubSeed(seed, 2)),
		Wo:    NewLinear(name+".wo", embed, embed, SubSeed(seed, 3)),
		core:  attnCore{heads: heads, headDim: embed / heads},
	}
}

// SetInferDType selects the arithmetic of the no-grad Infer path for the
// four projections and the attention products.
func (a *SelfAttention) SetInferDType(dt tensor.DType) {
	a.Wq.SetInferDType(dt)
	a.Wk.SetInferDType(dt)
	a.Wv.SetInferDType(dt)
	a.Wo.SetInferDType(dt)
	a.core.dtype = dt
}

// Forward computes multi-head self-attention over x of shape [B,T,E].
func (a *SelfAttention) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("nn: SelfAttention.Forward requires [B,T,E], got %v", x.Shape))
	}
	a.qh = SplitHeadsInto(a.qh, a.Wq.Forward(x), a.Heads)
	a.kh = SplitHeadsInto(a.kh, a.Wk.Forward(x), a.Heads)
	a.vh = SplitHeadsInto(a.vh, a.Wv.Forward(x), a.Heads)
	a.merged = MergeHeadsInto(a.merged, a.core.run(a.qh, a.kh, a.vh))
	return a.Wo.Forward(a.merged)
}

// Infer computes Forward's output through the projections' no-grad fast
// paths, caching nothing.
func (a *SelfAttention) Infer(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 {
		panic(fmt.Sprintf("nn: SelfAttention.Infer requires [B,T,E], got %v", x.Shape))
	}
	a.qh = SplitHeadsInto(a.qh, a.Wq.Infer(x), a.Heads)
	a.kh = SplitHeadsInto(a.kh, a.Wk.Infer(x), a.Heads)
	a.vh = SplitHeadsInto(a.vh, a.Wv.Infer(x), a.Heads)
	a.merged = MergeHeadsInto(a.merged, a.core.infer(a.qh, a.kh, a.vh))
	return a.Wo.Infer(a.merged)
}

// Backward back-propagates to the forward input, accumulating parameter
// gradients in the four projections.
func (a *SelfAttention) Backward(grad *tensor.Tensor) *tensor.Tensor {
	a.dctxh = SplitHeadsInto(a.dctxh, a.Wo.Backward(grad), a.Heads)
	dq, dk, dv := a.core.grad(a.dctxh)
	// The merge scratch is reused for dk and dv: each projection's Backward
	// fully consumes it before the next merge overwrites it.
	a.dm = MergeHeadsInto(a.dm, dq)
	dx := a.Wq.Backward(a.dm)
	a.dm = MergeHeadsInto(a.dm, dk)
	tensor.AddInPlace(dx, a.Wk.Backward(a.dm))
	a.dm = MergeHeadsInto(a.dm, dv)
	tensor.AddInPlace(dx, a.Wv.Backward(a.dm))
	return dx
}

// Params returns the projection parameters.
func (a *SelfAttention) Params() []*Param {
	var ps []*Param
	ps = append(ps, a.Wq.Params()...)
	ps = append(ps, a.Wk.Params()...)
	ps = append(ps, a.Wv.Params()...)
	ps = append(ps, a.Wo.Params()...)
	return ps
}

// CrossAttention attends a query sequence to a separate key/value context
// sequence. The paper's channel-aggregation module is a cross-attention
// whose query and context are both the per-location channel tokens; its
// output is then reduced across the channel axis.
type CrossAttention struct {
	Embed, Heads int
	Wq, Wk, Wv   *Linear
	Wo           *Linear

	core attnCore

	qh, kh, vh *tensor.Tensor
	merged     *tensor.Tensor
	dctxh      *tensor.Tensor
	dm         *tensor.Tensor
}

// NewCrossAttention constructs a multi-head cross-attention layer.
func NewCrossAttention(name string, embed, heads int, seed int64) *CrossAttention {
	if embed%heads != 0 {
		panic(fmt.Sprintf("nn: embed %d not divisible by heads %d", embed, heads))
	}
	return &CrossAttention{
		Embed: embed,
		Heads: heads,
		Wq:    NewLinear(name+".wq", embed, embed, SubSeed(seed, 0)),
		Wk:    NewLinear(name+".wk", embed, embed, SubSeed(seed, 1)),
		Wv:    NewLinear(name+".wv", embed, embed, SubSeed(seed, 2)),
		Wo:    NewLinear(name+".wo", embed, embed, SubSeed(seed, 3)),
		core:  attnCore{heads: heads, headDim: embed / heads},
	}
}

// SetInferDType selects the arithmetic of the no-grad Infer path for the
// four projections and the attention products.
func (a *CrossAttention) SetInferDType(dt tensor.DType) {
	a.Wq.SetInferDType(dt)
	a.Wk.SetInferDType(dt)
	a.Wv.SetInferDType(dt)
	a.Wo.SetInferDType(dt)
	a.core.dtype = dt
}

// Forward computes attention of query [B,Tq,E] over context [B,Tk,E],
// returning [B,Tq,E].
func (a *CrossAttention) Forward(query, context *tensor.Tensor) *tensor.Tensor {
	if len(query.Shape) != 3 || len(context.Shape) != 3 {
		panic(fmt.Sprintf("nn: CrossAttention.Forward requires rank-3 inputs, got %v and %v", query.Shape, context.Shape))
	}
	a.qh = SplitHeadsInto(a.qh, a.Wq.Forward(query), a.Heads)
	a.kh = SplitHeadsInto(a.kh, a.Wk.Forward(context), a.Heads)
	a.vh = SplitHeadsInto(a.vh, a.Wv.Forward(context), a.Heads)
	a.merged = MergeHeadsInto(a.merged, a.core.run(a.qh, a.kh, a.vh))
	return a.Wo.Forward(a.merged)
}

// Infer computes Forward's output through the projections' no-grad fast
// paths, caching nothing.
func (a *CrossAttention) Infer(query, context *tensor.Tensor) *tensor.Tensor {
	if len(query.Shape) != 3 || len(context.Shape) != 3 {
		panic(fmt.Sprintf("nn: CrossAttention.Infer requires rank-3 inputs, got %v and %v", query.Shape, context.Shape))
	}
	a.qh = SplitHeadsInto(a.qh, a.Wq.Infer(query), a.Heads)
	a.kh = SplitHeadsInto(a.kh, a.Wk.Infer(context), a.Heads)
	a.vh = SplitHeadsInto(a.vh, a.Wv.Infer(context), a.Heads)
	a.merged = MergeHeadsInto(a.merged, a.core.infer(a.qh, a.kh, a.vh))
	return a.Wo.Infer(a.merged)
}

// Backward returns gradients with respect to the query and context inputs.
func (a *CrossAttention) Backward(grad *tensor.Tensor) (dQuery, dContext *tensor.Tensor) {
	a.dctxh = SplitHeadsInto(a.dctxh, a.Wo.Backward(grad), a.Heads)
	dq, dk, dv := a.core.grad(a.dctxh)
	a.dm = MergeHeadsInto(a.dm, dq)
	dQuery = a.Wq.Backward(a.dm)
	a.dm = MergeHeadsInto(a.dm, dk)
	dContext = a.Wk.Backward(a.dm)
	a.dm = MergeHeadsInto(a.dm, dv)
	tensor.AddInPlace(dContext, a.Wv.Backward(a.dm))
	return dQuery, dContext
}

// Params returns the projection parameters.
func (a *CrossAttention) Params() []*Param {
	var ps []*Param
	ps = append(ps, a.Wq.Params()...)
	ps = append(ps, a.Wk.Params()...)
	ps = append(ps, a.Wv.Params()...)
	ps = append(ps, a.Wo.Params()...)
	return ps
}
