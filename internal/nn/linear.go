package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Linear is an affine layer y = x@W + b operating on the last dimension of
// its input. Leading dimensions are treated as batch.
//
// The layer owns its output and input-gradient scratch: Forward, Infer and
// Backward return layer-owned buffers that stay valid until the same method
// is called again (the single-stream contract in the package doc). Steady
// state, none of the three allocates.
type Linear struct {
	In, Out int
	Weight  *Param // [In, Out]
	Bias    *Param // [Out], nil when the layer is bias-free

	x  *tensor.Tensor // cached folded input for backward
	y  *tensor.Tensor // Forward output scratch
	yi *tensor.Tensor // Infer output scratch (kept separate from y so an
	// eval pass never clobbers activations a pending Backward still reads)
	dx *tensor.Tensor // Backward input-gradient scratch

	inferDType tensor.DType
	pb32       *tensor.PackedB32 // prepacked f32 weights when inferDType == F32
}

// NewLinear constructs a Linear layer with Xavier-uniform weights drawn
// deterministically from seed and a zero bias.
func NewLinear(name string, in, out int, seed int64) *Linear {
	rng := tensor.NewRNG(seed)
	return &Linear{
		In:     in,
		Out:    out,
		Weight: NewParam(name+".weight", tensor.XavierUniform(rng, in, out)),
		Bias:   NewParam(name+".bias", tensor.New(out)),
	}
}

// NewLinearNoBias constructs a bias-free Linear layer.
func NewLinearNoBias(name string, in, out int, seed int64) *Linear {
	l := NewLinear(name, in, out, seed)
	l.Bias = nil
	return l
}

// NewLinearFrom wraps explicit weight (and optional bias) tensors; used by
// tensor-parallel shards that slice a master weight.
func NewLinearFrom(name string, w, b *tensor.Tensor) *Linear {
	if len(w.Shape) != 2 {
		panic(fmt.Sprintf("nn: linear weight must be rank 2, got %v", w.Shape))
	}
	l := &Linear{In: w.Shape[0], Out: w.Shape[1], Weight: NewParam(name+".weight", w)}
	if b != nil {
		if len(b.Shape) != 1 || b.Shape[0] != l.Out {
			panic(fmt.Sprintf("nn: linear bias shape %v does not match out %d", b.Shape, l.Out))
		}
		l.Bias = NewParam(name+".bias", b)
	}
	return l
}

// SetInferDType selects the arithmetic of the no-grad Infer path. F32
// prepacks the weights for the float32 kernels; the pack snapshots Weight.W,
// so call SetInferDType again after mutating the weights (e.g. after an
// optimizer step or a checkpoint load). Forward and Backward always run
// float64.
func (l *Linear) SetInferDType(dt tensor.DType) {
	l.inferDType = dt
	if dt == tensor.F32 {
		l.pb32 = tensor.PackB32(l.Weight.W)
	} else {
		l.pb32 = nil
	}
}

// Forward computes x@W + b. The input's last dimension must equal In.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	mustLastDim("Linear.Forward", x, l.In)
	x2, shape := foldLeading(x)
	l.x = x2
	l.y = tensor.EnsureShape(l.y, x2.Shape[0], l.Out)
	l.affine(l.y, x2)
	outShape := append(append([]int(nil), shape[:len(shape)-1]...), l.Out)
	return l.y.Reshape(outShape...)
}

// Infer computes Forward's output without caching the input for backward.
// Under SetInferDType(F32) the matrix product runs in float32 against the
// prepacked weights (bias addition stays float64); the output then differs
// from Forward by float32 round-off — see the tolerance contract in
// DESIGN.md.
func (l *Linear) Infer(x *tensor.Tensor) *tensor.Tensor {
	mustLastDim("Linear.Infer", x, l.In)
	x2, shape := foldLeading(x)
	l.yi = tensor.EnsureShape(l.yi, x2.Shape[0], l.Out)
	l.inferAffine(l.yi, x2)
	outShape := append(append([]int(nil), shape[:len(shape)-1]...), l.Out)
	return l.yi.Reshape(outShape...)
}

// affine computes dst = x2@W + b on the folded input.
//
// dchag:hotpath — every projection in the model funnels through here; dst is
// layer-owned scratch and the kernels are destination-passing.
func (l *Linear) affine(dst, x2 *tensor.Tensor) {
	tensor.MatMulInto(dst, x2, l.Weight.W)
	l.addBias(dst)
}

// inferAffine is affine on the no-grad path, dispatching on the inference
// dtype.
//
// dchag:hotpath — the serve dispatch loop runs this once per projection per
// micro-batch.
func (l *Linear) inferAffine(dst, x2 *tensor.Tensor) {
	if l.inferDType == tensor.F32 && l.pb32 != nil {
		tensor.MatMulPackedF32Into(dst, x2, l.pb32)
	} else {
		tensor.MatMulInto(dst, x2, l.Weight.W)
	}
	l.addBias(dst)
}

// addBias adds the bias row-wise to y [rows, Out].
//
// dchag:hotpath — inner loop of the affine layer.
func (l *Linear) addBias(y *tensor.Tensor) {
	if l.Bias == nil {
		return
	}
	n := y.Shape[0]
	for i := 0; i < n; i++ {
		row := y.Data[i*l.Out : (i+1)*l.Out]
		for j, bv := range l.Bias.W.Data {
			row[j] += bv
		}
	}
}

// Backward accumulates dW = x^T@dy and db = sum(dy), returning dx = dy@W^T
// reshaped to the forward input's shape.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	mustLastDim("Linear.Backward", grad, l.Out)
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	g2, shape := foldLeading(grad)
	l.dx = tensor.EnsureShape(l.dx, g2.Shape[0], l.In)
	l.backward(l.dx, g2)
	outShape := append(append([]int(nil), shape[:len(shape)-1]...), l.In)
	return l.dx.Reshape(outShape...)
}

// backward accumulates the parameter gradients and writes dx = g2@W^T.
//
// dchag:hotpath — per-step gradient kernels; dW accumulates directly into
// Weight.Grad with no intermediate product tensor.
func (l *Linear) backward(dx, g2 *tensor.Tensor) {
	tensor.TMatMulAccInto(l.Weight.Grad, l.x, g2)
	if l.Bias != nil {
		rows := g2.Shape[0]
		bg := l.Bias.Grad.Data
		for r := 0; r < rows; r++ {
			row := g2.Data[r*l.Out : (r+1)*l.Out]
			for j, v := range row {
				bg[j] += v
			}
		}
	}
	tensor.MatMulTInto(dx, g2, l.Weight.W)
}

// Params returns the layer's parameters.
func (l *Linear) Params() []*Param {
	if l.Bias == nil {
		return []*Param{l.Weight}
	}
	return []*Param{l.Weight, l.Bias}
}
