package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Linear is an affine layer y = x@W + b operating on the last dimension of
// its input. Leading dimensions are treated as batch.
type Linear struct {
	In, Out int
	Weight  *Param // [In, Out]
	Bias    *Param // [Out], nil when the layer is bias-free

	x *tensor.Tensor // cached folded input for backward
}

// NewLinear constructs a Linear layer with Xavier-uniform weights drawn
// deterministically from seed and a zero bias.
func NewLinear(name string, in, out int, seed int64) *Linear {
	rng := tensor.NewRNG(seed)
	return &Linear{
		In:     in,
		Out:    out,
		Weight: NewParam(name+".weight", tensor.XavierUniform(rng, in, out)),
		Bias:   NewParam(name+".bias", tensor.New(out)),
	}
}

// NewLinearNoBias constructs a bias-free Linear layer.
func NewLinearNoBias(name string, in, out int, seed int64) *Linear {
	l := NewLinear(name, in, out, seed)
	l.Bias = nil
	return l
}

// NewLinearFrom wraps explicit weight (and optional bias) tensors; used by
// tensor-parallel shards that slice a master weight.
func NewLinearFrom(name string, w, b *tensor.Tensor) *Linear {
	if len(w.Shape) != 2 {
		panic(fmt.Sprintf("nn: linear weight must be rank 2, got %v", w.Shape))
	}
	l := &Linear{In: w.Shape[0], Out: w.Shape[1], Weight: NewParam(name+".weight", w)}
	if b != nil {
		if len(b.Shape) != 1 || b.Shape[0] != l.Out {
			panic(fmt.Sprintf("nn: linear bias shape %v does not match out %d", b.Shape, l.Out))
		}
		l.Bias = NewParam(name+".bias", b)
	}
	return l
}

// Forward computes x@W + b. The input's last dimension must equal In.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	mustLastDim("Linear.Forward", x, l.In)
	x2, shape := foldLeading(x)
	l.x = x2
	y := l.affine(x2)
	outShape := append(append([]int(nil), shape[:len(shape)-1]...), l.Out)
	return y.Reshape(outShape...)
}

// Infer computes Forward's output without caching the input for backward.
func (l *Linear) Infer(x *tensor.Tensor) *tensor.Tensor {
	mustLastDim("Linear.Infer", x, l.In)
	x2, shape := foldLeading(x)
	y := l.affine(x2)
	outShape := append(append([]int(nil), shape[:len(shape)-1]...), l.Out)
	return y.Reshape(outShape...)
}

// affine computes x2@W + b on the folded input.
func (l *Linear) affine(x2 *tensor.Tensor) *tensor.Tensor {
	y := tensor.MatMul(x2, l.Weight.W)
	if l.Bias != nil {
		n := y.Shape[0]
		for i := 0; i < n; i++ {
			row := y.Data[i*l.Out : (i+1)*l.Out]
			for j, bv := range l.Bias.W.Data {
				row[j] += bv
			}
		}
	}
	return y
}

// Backward accumulates dW = x^T@dy and db = sum(dy), returning dx = dy@W^T
// reshaped to the forward input's shape.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	mustLastDim("Linear.Backward", grad, l.Out)
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	g2, shape := foldLeading(grad)
	tensor.AddInPlace(l.Weight.Grad, tensor.TMatMul(l.x, g2))
	if l.Bias != nil {
		tensor.AddInPlace(l.Bias.Grad, tensor.SumAxis(g2, 0))
	}
	dx := tensor.MatMulT(g2, l.Weight.W)
	outShape := append(append([]int(nil), shape[:len(shape)-1]...), l.In)
	return dx.Reshape(outShape...)
}

// Params returns the layer's parameters.
func (l *Linear) Params() []*Param {
	if l.Bias == nil {
		return []*Param{l.Weight}
	}
	return []*Param{l.Weight, l.Bias}
}
