package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// dotAll returns sum(a*b) used as a scalar test loss.
func dotAll(a, b *tensor.Tensor) float64 {
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// checkGrad compares an analytic gradient against central finite differences
// of the scalar function loss() with respect to x.
func checkGrad(t *testing.T, name string, x, analytic *tensor.Tensor, loss func() float64, tol float64) {
	t.Helper()
	const eps = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss()
		x.Data[i] = orig - eps
		lm := loss()
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-analytic.Data[i]) > tol {
			t.Fatalf("%s: grad mismatch at %d: numeric %.10f analytic %.10f", name, i, numeric, analytic.Data[i])
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(10)
	l := NewLinear("lin", 4, 3, 11)
	x := tensor.Randn(rng, 2, 5, 4)
	r := tensor.Randn(rng, 2, 5, 3)

	loss := func() float64 { return dotAll(l.Forward(x), r) }
	loss() // populate cache
	ZeroGrads(l.Params())
	dx := l.Backward(r)

	checkGrad(t, "linear/x", x, dx, loss, 1e-6)
	checkGrad(t, "linear/W", l.Weight.W, l.Weight.Grad, loss, 1e-6)
	checkGrad(t, "linear/b", l.Bias.W, l.Bias.Grad, loss, 1e-6)
}

func TestLinearNoBias(t *testing.T) {
	l := NewLinearNoBias("lin", 3, 2, 5)
	if len(l.Params()) != 1 {
		t.Fatalf("Params = %d, want 1 (weight only)", len(l.Params()))
	}
	x := tensor.Randn(tensor.NewRNG(1), 4, 3)
	y := l.Forward(x)
	want := tensor.MatMul(x, l.Weight.W)
	if tensor.MaxAbsDiff(y, want) > 1e-12 {
		t.Fatal("bias-free forward should be pure matmul")
	}
}

func TestLayerNormGradients(t *testing.T) {
	rng := tensor.NewRNG(20)
	l := NewLayerNorm("ln", 6)
	// Non-trivial gamma/beta so their gradients are exercised.
	for i := range l.Gamma.W.Data {
		l.Gamma.W.Data[i] = 0.5 + 0.1*float64(i)
		l.Beta.W.Data[i] = -0.2 * float64(i)
	}
	x := tensor.Randn(rng, 3, 6)
	r := tensor.Randn(rng, 3, 6)

	loss := func() float64 { return dotAll(l.Forward(x), r) }
	loss()
	ZeroGrads(l.Params())
	dx := l.Backward(r)

	checkGrad(t, "layernorm/x", x, dx, loss, 1e-5)
	checkGrad(t, "layernorm/gamma", l.Gamma.W, l.Gamma.Grad, loss, 1e-5)
	checkGrad(t, "layernorm/beta", l.Beta.W, l.Beta.Grad, loss, 1e-5)
}

func TestLayerNormNormalizes(t *testing.T) {
	rng := tensor.NewRNG(21)
	l := NewLayerNorm("ln", 8)
	x := tensor.RandnScaled(rng, 5, 4, 8)
	y := l.Forward(x)
	for rIdx := 0; rIdx < 4; rIdx++ {
		row := y.Data[rIdx*8 : (rIdx+1)*8]
		mean, varr := 0.0, 0.0
		for _, v := range row {
			mean += v
		}
		mean /= 8
		for _, v := range row {
			varr += (v - mean) * (v - mean)
		}
		varr /= 8
		if math.Abs(mean) > 1e-9 || math.Abs(varr-1) > 1e-3 {
			t.Fatalf("row %d not normalized: mean %v var %v", rIdx, mean, varr)
		}
	}
}

func TestGELUGradients(t *testing.T) {
	rng := tensor.NewRNG(30)
	g := NewGELU()
	x := tensor.Randn(rng, 3, 4)
	r := tensor.Randn(rng, 3, 4)
	loss := func() float64 { return dotAll(g.Forward(x), r) }
	loss()
	dx := g.Backward(r)
	checkGrad(t, "gelu/x", x, dx, loss, 1e-6)
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2, -3}, 4)
	y := r.Forward(x)
	want := []float64{0, 0, 2, 0}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("ReLU fwd = %v", y.Data)
		}
	}
	g := tensor.FromSlice([]float64{5, 5, 5, 5}, 4)
	dx := r.Backward(g)
	wantG := []float64{0, 0, 5, 0}
	for i, w := range wantG {
		if dx.Data[i] != w {
			t.Fatalf("ReLU bwd = %v", dx.Data)
		}
	}
}

func TestSelfAttentionGradients(t *testing.T) {
	rng := tensor.NewRNG(40)
	a := NewSelfAttention("attn", 8, 2, 41)
	x := tensor.Randn(rng, 2, 3, 8)
	r := tensor.Randn(rng, 2, 3, 8)
	loss := func() float64 { return dotAll(a.Forward(x), r) }
	loss()
	ZeroGrads(a.Params())
	dx := a.Backward(r)
	checkGrad(t, "selfattn/x", x, dx, loss, 1e-5)
	checkGrad(t, "selfattn/Wq", a.Wq.Weight.W, a.Wq.Weight.Grad, loss, 1e-5)
	checkGrad(t, "selfattn/Wo", a.Wo.Weight.W, a.Wo.Weight.Grad, loss, 1e-5)
}

func TestCrossAttentionGradients(t *testing.T) {
	rng := tensor.NewRNG(50)
	a := NewCrossAttention("xattn", 8, 2, 51)
	q := tensor.Randn(rng, 2, 2, 8)
	kv := tensor.Randn(rng, 2, 5, 8)
	r := tensor.Randn(rng, 2, 2, 8)
	loss := func() float64 { return dotAll(a.Forward(q, kv), r) }
	loss()
	ZeroGrads(a.Params())
	dq, dkv := a.Backward(r)
	checkGrad(t, "xattn/q", q, dq, loss, 1e-5)
	checkGrad(t, "xattn/kv", kv, dkv, loss, 1e-5)
	checkGrad(t, "xattn/Wk", a.Wk.Weight.W, a.Wk.Weight.Grad, loss, 1e-5)
	checkGrad(t, "xattn/Wv", a.Wv.Weight.W, a.Wv.Weight.Grad, loss, 1e-5)
}

func TestMLPGradients(t *testing.T) {
	rng := tensor.NewRNG(60)
	m := NewMLP("mlp", 4, 8, 61)
	x := tensor.Randn(rng, 3, 4)
	r := tensor.Randn(rng, 3, 4)
	loss := func() float64 { return dotAll(m.Forward(x), r) }
	loss()
	ZeroGrads(m.Params())
	dx := m.Backward(r)
	checkGrad(t, "mlp/x", x, dx, loss, 1e-5)
	checkGrad(t, "mlp/fc1", m.Fc1.Weight.W, m.Fc1.Weight.Grad, loss, 1e-5)
	checkGrad(t, "mlp/fc2", m.Fc2.Weight.W, m.Fc2.Weight.Grad, loss, 1e-5)
}

func TestTransformerBlockGradients(t *testing.T) {
	rng := tensor.NewRNG(70)
	b := NewTransformerBlock("blk", 8, 2, 71)
	x := tensor.Randn(rng, 2, 3, 8)
	r := tensor.Randn(rng, 2, 3, 8)
	loss := func() float64 { return dotAll(b.Forward(x), r) }
	loss()
	ZeroGrads(b.Params())
	dx := b.Backward(r)
	checkGrad(t, "block/x", x, dx, loss, 1e-4)
}

func TestPatchEmbedGradients(t *testing.T) {
	rng := tensor.NewRNG(80)
	p := NewPatchEmbed("tok", 3, 4, 4, 2, 5, 81)
	x := tensor.Randn(rng, 2, 3, 4, 4)
	r := tensor.Randn(rng, 2, 3, 4, 5) // T = (4/2)*(4/2) = 4 tokens
	loss := func() float64 { return dotAll(p.Forward(x), r) }
	loss()
	ZeroGrads(p.Params())
	dx := p.Backward(r)
	checkGrad(t, "patchembed/x", x, dx, loss, 1e-6)
	checkGrad(t, "patchembed/W", p.Weight.W, p.Weight.Grad, loss, 1e-6)
	checkGrad(t, "patchembed/b", p.Bias.W, p.Bias.Grad, loss, 1e-6)
}

func TestPosEmbedGradients(t *testing.T) {
	rng := tensor.NewRNG(90)
	p := NewPosEmbed("pos", 4, 3, 91)
	x := tensor.Randn(rng, 2, 4, 3)
	r := tensor.Randn(rng, 2, 4, 3)
	loss := func() float64 { return dotAll(p.Forward(x), r) }
	loss()
	ZeroGrads(p.Params())
	dx := p.Backward(r)
	checkGrad(t, "posembed/x", x, dx, loss, 1e-6)
	checkGrad(t, "posembed/table", p.Table.W, p.Table.Grad, loss, 1e-6)
}

func TestChannelEmbedGradients(t *testing.T) {
	rng := tensor.NewRNG(100)
	c := NewChannelEmbed("ch", 3, 4, 101)
	x := tensor.Randn(rng, 2, 3, 2, 4)
	r := tensor.Randn(rng, 2, 3, 2, 4)
	loss := func() float64 { return dotAll(c.Forward(x), r) }
	loss()
	ZeroGrads(c.Params())
	dx := c.Backward(r)
	checkGrad(t, "chembed/x", x, dx, loss, 1e-6)
	checkGrad(t, "chembed/table", c.Table.W, c.Table.Grad, loss, 1e-6)
}

func TestMetaTokenGradients(t *testing.T) {
	rng := tensor.NewRNG(110)
	m := NewMetaToken("meta", 2, 3, 111)
	x := tensor.Randn(rng, 2, 4, 3)
	r := tensor.Randn(rng, 2, 6, 3)
	loss := func() float64 { return dotAll(m.Forward(x), r) }
	loss()
	ZeroGrads(m.Params())
	dx := m.Backward(r)
	checkGrad(t, "metatoken/x", x, dx, loss, 1e-6)
	checkGrad(t, "metatoken/table", m.Table.W, m.Table.Grad, loss, 1e-6)
}

func TestMSELossGradients(t *testing.T) {
	rng := tensor.NewRNG(120)
	l := NewMSELoss()
	pred := tensor.Randn(rng, 2, 3)
	target := tensor.Randn(rng, 2, 3)
	loss := func() float64 { return l.Forward(pred, target) }
	loss()
	g := l.Backward()
	checkGrad(t, "mse/pred", pred, g, loss, 1e-6)
}

func TestMaskedMSELossGradients(t *testing.T) {
	rng := tensor.NewRNG(130)
	l := NewMaskedMSELoss()
	pred := tensor.Randn(rng, 2, 4, 3)
	target := tensor.Randn(rng, 2, 4, 3)
	mask := tensor.FromSlice([]float64{1, 0, 1, 1, 0, 1, 0, 0}, 2, 4)
	loss := func() float64 { return l.Forward(pred, target, mask) }
	loss()
	g := l.Backward()
	checkGrad(t, "maskedmse/pred", pred, g, loss, 1e-6)
}
