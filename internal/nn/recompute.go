package nn

import "repro/internal/tensor"

// Recompute wraps a Layer with activation recomputation (gradient
// checkpointing): the forward pass stores only the layer *input*, and the
// backward pass first re-runs the forward to rebuild the layer's internal
// caches before back-propagating. This trades one extra forward pass for
// dropping the layer's activation memory between the passes — the standard
// technique the performance model's ViT activation coefficient assumes for
// large models.
//
// The wrapped layer must be deterministic (every layer in this repository
// is), otherwise the recomputed activations would diverge from the ones the
// loss saw.
type Recompute struct {
	Inner Layer

	input *tensor.Tensor
}

// NewRecompute wraps inner with recomputation.
func NewRecompute(inner Layer) *Recompute { return &Recompute{Inner: inner} }

// Forward runs the inner layer and keeps only the input. The inner layer's
// caches from this call are considered discarded (a real system would free
// them; here the recomputation in Backward overwrites them, which the
// equivalence test exploits to prove the recomputed path is used).
func (r *Recompute) Forward(x *tensor.Tensor) *tensor.Tensor {
	r.input = tensor.EnsureShape(r.input, x.Shape...)
	copy(r.input.Data, x.Data)
	return r.Inner.Forward(x)
}

// Infer forwards to the inner layer's no-grad fast path; recomputation is a
// training-only concern.
func (r *Recompute) Infer(x *tensor.Tensor) *tensor.Tensor {
	return Infer(r.Inner, x)
}

// SetInferDType forwards the inference dtype to the inner layer.
func (r *Recompute) SetInferDType(dt tensor.DType) {
	SetInferDType(r.Inner, dt)
}

// Backward re-runs the forward pass on the stored input to rebuild caches,
// then back-propagates through the inner layer.
func (r *Recompute) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.input == nil {
		panic("nn: Recompute.Backward before Forward")
	}
	r.Inner.Forward(r.input)
	return r.Inner.Backward(grad)
}

// Params returns the inner layer's parameters.
func (r *Recompute) Params() []*Param { return r.Inner.Params() }
