package nn

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// checkpointEntry is the serialized form of one parameter.
type checkpointEntry struct {
	Name  string
	Shape []int
	Data  []float64
}

// SaveParams serializes the parameters (values only, not gradients or
// optimizer state) to w. In distributed runs every rank checkpoints its own
// shard; replicated parameters are bit-identical across ranks by
// construction, so any rank's copy is authoritative.
func SaveParams(w io.Writer, params []*Param) error {
	entries := make([]checkpointEntry, len(params))
	for i, p := range params {
		entries[i] = checkpointEntry{
			Name:  p.Name,
			Shape: append([]int(nil), p.W.Shape...),
			Data:  append([]float64(nil), p.W.Data...),
		}
	}
	if err := gob.NewEncoder(w).Encode(entries); err != nil {
		return fmt.Errorf("nn: encoding checkpoint: %w", err)
	}
	return nil
}

// LoadParams restores parameter values from r into params, matching by
// name. Every parameter in params must be present in the checkpoint with an
// identical shape; extra checkpoint entries are an error too, so silent
// architecture drift cannot pass unnoticed. All missing, unknown, and
// shape-mismatched parameters are reported in one joined error, so a single
// run diagnoses the full drift between checkpoint and model; values are only
// written when the whole checkpoint matches.
func LoadParams(r io.Reader, params []*Param) error {
	var entries []checkpointEntry
	if err := gob.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("nn: decoding checkpoint: %w", err)
	}
	var errs []error
	byName := make(map[string]checkpointEntry, len(entries))
	for _, e := range entries {
		if _, dup := byName[e.Name]; dup {
			errs = append(errs, fmt.Errorf("nn: checkpoint has duplicate parameter %q", e.Name))
			continue
		}
		byName[e.Name] = e
	}
	matched := make(map[string]checkpointEntry, len(params))
	for _, p := range params {
		e, ok := byName[p.Name]
		if !ok {
			errs = append(errs, fmt.Errorf("nn: checkpoint missing parameter %q", p.Name))
			continue
		}
		delete(byName, p.Name)
		if !sameIntSlice(e.Shape, p.W.Shape) {
			errs = append(errs, fmt.Errorf("nn: parameter %q shape %v does not match checkpoint %v", p.Name, p.W.Shape, e.Shape))
			continue
		}
		matched[p.Name] = e
	}
	for name := range byName {
		errs = append(errs, fmt.Errorf("nn: checkpoint contains unknown parameter %q", name))
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	for _, p := range params {
		copy(p.W.Data, matched[p.Name].Data)
	}
	return nil
}

// ParamsEqual reports whether two parameter lists hold identical values in
// the same order (names and tensors), within tol.
func ParamsEqual(a, b []*Param, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || !tensor.EqualApprox(a[i].W, b[i].W, tol) {
			return false
		}
	}
	return true
}

func sameIntSlice(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
