package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// PatchEmbed is the tokenization stage of the paper's architecture (Fig. 1):
// every channel of a multi-channel 2D image is divided into PxP patches and
// each patch is projected to the embedding dimension by a convolution that
// is *independent per channel* (equivalent to a per-channel linear layer
// over flattened patches, which is how it is implemented here).
//
// A PatchEmbed may own only a contiguous shard [ChLo, ChHi) of the global
// channel range: this is exactly the "distributed tokenization" of paper
// Sec. 3.1. Per-channel weights are seeded by the *global* channel index, so
// any sharding reproduces the serial layer's parameters bit-for-bit.
type PatchEmbed struct {
	ImgH, ImgW int
	Patch      int
	Embed      int
	ChLo, ChHi int // global channel range owned by this instance

	Weight *Param // [localC, P*P, E]
	Bias   *Param // [localC, E]

	cols []*tensor.Tensor // cached im2col matrices per local channel
	b    int              // cached batch size

	out  *tensor.Tensor // Forward output scratch
	iout *tensor.Tensor // Infer output scratch
	icol *tensor.Tensor // Infer im2col scratch (not cached for backward)
	y    *tensor.Tensor // per-channel projection scratch
	dy   *tensor.Tensor // per-channel gathered gradient scratch
	dcol *tensor.Tensor // per-channel patch-gradient scratch
	dimg *tensor.Tensor // Backward image-gradient scratch

	inferDType tensor.DType
	pb32       []*tensor.PackedB32 // per-channel prepacked f32 weights
	wviews     []*tensor.Tensor    // cached per-channel views of Weight.W
	gviews     []*tensor.Tensor    // cached per-channel views of Weight.Grad
}

// weightView returns the [P*P, E] view of local channel c's projection
// weights, cached so hot paths do not rebuild tensor headers per call. The
// cache is invalidated when Weight.W's backing array changes (e.g. after a
// checkpoint load swaps the tensor).
func (p *PatchEmbed) weightView(c int) *tensor.Tensor {
	pp := p.Patch * p.Patch
	stale := len(p.wviews) != p.LocalChannels()
	if !stale && p.wviews[c] != nil && &p.wviews[c].Data[0] != &p.Weight.W.Data[c*pp*p.Embed] {
		stale = true
	}
	if stale {
		p.wviews = make([]*tensor.Tensor, p.LocalChannels())
	}
	if p.wviews[c] == nil {
		p.wviews[c] = tensor.FromSlice(p.Weight.W.Data[c*pp*p.Embed:(c+1)*pp*p.Embed], pp, p.Embed)
	}
	return p.wviews[c]
}

// SetInferDType selects the arithmetic of the no-grad Infer path. F32
// prepacks every channel's projection weights; call again after the weights
// change.
func (p *PatchEmbed) SetInferDType(dt tensor.DType) {
	p.inferDType = dt
	p.pb32 = nil
	if dt == tensor.F32 {
		localC := p.LocalChannels()
		pp := p.Patch * p.Patch
		p.pb32 = make([]*tensor.PackedB32, localC)
		for c := 0; c < localC; c++ {
			wc := tensor.FromSlice(p.Weight.W.Data[c*pp*p.Embed:(c+1)*pp*p.Embed], pp, p.Embed)
			p.pb32[c] = tensor.PackB32(wc)
		}
	}
}

// NewPatchEmbed constructs a tokenizer over all channels [0, channels).
func NewPatchEmbed(name string, channels, imgH, imgW, patch, embed int, seed int64) *PatchEmbed {
	return NewPatchEmbedShard(name, 0, channels, imgH, imgW, patch, embed, seed)
}

// NewPatchEmbedShard constructs a tokenizer owning global channels
// [chLo, chHi). Weights for channel c are drawn from SubSeed(seed, c), so a
// shard matches the corresponding slice of the full layer.
func NewPatchEmbedShard(name string, chLo, chHi, imgH, imgW, patch, embed int, seed int64) *PatchEmbed {
	if imgH%patch != 0 || imgW%patch != 0 {
		panic(fmt.Sprintf("nn: image %dx%d not divisible by patch %d", imgH, imgW, patch))
	}
	if chLo < 0 || chHi <= chLo {
		panic(fmt.Sprintf("nn: invalid channel shard [%d,%d)", chLo, chHi))
	}
	localC := chHi - chLo
	pp := patch * patch
	w := tensor.New(localC, pp, embed)
	for c := 0; c < localC; c++ {
		rng := tensor.NewRNG(SubSeed(seed, chLo+c))
		cw := tensor.XavierUniform(rng, pp, embed)
		copy(w.Data[c*pp*embed:(c+1)*pp*embed], cw.Data)
	}
	return &PatchEmbed{
		ImgH: imgH, ImgW: imgW, Patch: patch, Embed: embed,
		ChLo: chLo, ChHi: chHi,
		Weight: NewParam(name+".weight", w),
		Bias:   NewParam(name+".bias", tensor.New(localC, embed)),
	}
}

// LocalChannels returns the number of channels this shard owns.
func (p *PatchEmbed) LocalChannels() int { return p.ChHi - p.ChLo }

// Tokens returns the number of spatial tokens per channel.
func (p *PatchEmbed) Tokens() int { return (p.ImgH / p.Patch) * (p.ImgW / p.Patch) }

// Forward tokenizes x of shape [B, localC, H, W] into [B, localC, T, E].
// The channel dimension of x must already be this shard's local slice.
func (p *PatchEmbed) Forward(x *tensor.Tensor) *tensor.Tensor {
	localC := p.LocalChannels()
	if len(x.Shape) != 4 || x.Shape[1] != localC || x.Shape[2] != p.ImgH || x.Shape[3] != p.ImgW {
		panic(fmt.Sprintf("nn: PatchEmbed.Forward want [B,%d,%d,%d], got %v", localC, p.ImgH, p.ImgW, x.Shape))
	}
	b := x.Shape[0]
	p.b = b
	if len(p.cols) != localC {
		p.cols = make([]*tensor.Tensor, localC)
	}
	p.out = tensor.EnsureShape(p.out, b, localC, p.Tokens(), p.Embed)
	for c := 0; c < localC; c++ {
		// The per-channel im2col caches are layer-owned and rebuilt in
		// place each step.
		p.cols[c] = tensor.EnsureShape(p.cols[c], b*p.Tokens(), p.Patch*p.Patch)
		p.im2col(p.cols[c], x, c)
		p.project(p.cols[c], c, p.out, false)
	}
	return p.out
}

// Infer tokenizes without caching the im2col matrices for backward — the
// dominant activation cost of the tokenizer.
func (p *PatchEmbed) Infer(x *tensor.Tensor) *tensor.Tensor {
	localC := p.LocalChannels()
	if len(x.Shape) != 4 || x.Shape[1] != localC || x.Shape[2] != p.ImgH || x.Shape[3] != p.ImgW {
		panic(fmt.Sprintf("nn: PatchEmbed.Infer want [B,%d,%d,%d], got %v", localC, p.ImgH, p.ImgW, x.Shape))
	}
	b := x.Shape[0]
	p.iout = tensor.EnsureShape(p.iout, b, localC, p.Tokens(), p.Embed)
	p.icol = tensor.EnsureShape(p.icol, b*p.Tokens(), p.Patch*p.Patch)
	for c := 0; c < localC; c++ {
		p.im2col(p.icol, x, c)
		p.project(p.icol, c, p.iout, true)
	}
	return p.iout
}

// project tokenizes local channel c's im2col matrix col into out
// [B, localC, T, E]. With infer it dispatches on the inference dtype.
//
// dchag:hotpath — the per-channel projection of the tokenizer; scratch is
// layer-owned.
func (p *PatchEmbed) project(col *tensor.Tensor, c int, out *tensor.Tensor, infer bool) {
	localC := p.LocalChannels()
	t := p.Tokens()
	b := out.Shape[0]
	p.y = tensor.EnsureShape(p.y, b*t, p.Embed)
	if infer && p.inferDType == tensor.F32 && p.pb32 != nil {
		tensor.MatMulPackedF32Into(p.y, col, p.pb32[c])
	} else {
		tensor.MatMulInto(p.y, col, p.weightView(c))
	}
	bias := p.Bias.W.Data[c*p.Embed : (c+1)*p.Embed]
	for r := 0; r < b*t; r++ {
		row := p.y.Data[r*p.Embed : (r+1)*p.Embed]
		for j, bv := range bias {
			row[j] += bv
		}
	}
	// Scatter rows into [B, c, T, E].
	for bi := 0; bi < b; bi++ {
		src := p.y.Data[bi*t*p.Embed : (bi+1)*t*p.Embed]
		dst := out.Data[((bi*localC+c)*t)*p.Embed : ((bi*localC+c)*t+t)*p.Embed]
		copy(dst, src)
	}
}

// Backward consumes dOut of shape [B, localC, T, E], accumulates weight and
// bias gradients, and returns the gradient with respect to the input image
// shard [B, localC, H, W].
func (p *PatchEmbed) Backward(grad *tensor.Tensor) *tensor.Tensor {
	localC := p.LocalChannels()
	t := p.Tokens()
	if p.cols == nil {
		panic("nn: PatchEmbed.Backward before Forward")
	}
	if len(grad.Shape) != 4 || grad.Shape[0] != p.b || grad.Shape[1] != localC || grad.Shape[2] != t || grad.Shape[3] != p.Embed {
		panic(fmt.Sprintf("nn: PatchEmbed.Backward want [%d,%d,%d,%d], got %v", p.b, localC, t, p.Embed, grad.Shape))
	}
	b := p.b
	pp := p.Patch * p.Patch
	p.dimg = tensor.EnsureShape(p.dimg, b, localC, p.ImgH, p.ImgW)
	p.dy = tensor.EnsureShape(p.dy, b*t, p.Embed)
	p.dcol = tensor.EnsureShape(p.dcol, b*t, pp)
	for c := 0; c < localC; c++ {
		p.backwardChannel(grad, c)
	}
	return p.dimg
}

// backwardChannel accumulates channel c's weight and bias gradients and
// scatters its patch gradient into the image-gradient scratch.
//
// dchag:hotpath — per-channel tokenizer backward; dW accumulates directly
// into the sliced gradient with no intermediate product tensor.
func (p *PatchEmbed) backwardChannel(grad *tensor.Tensor, c int) {
	localC := p.LocalChannels()
	t := p.Tokens()
	b := p.b
	// Gather dY_c: [B*T, E].
	for bi := 0; bi < b; bi++ {
		src := grad.Data[((bi*localC+c)*t)*p.Embed : ((bi*localC+c)*t+t)*p.Embed]
		copy(p.dy.Data[bi*t*p.Embed:(bi+1)*t*p.Embed], src)
	}
	// dW_c += col^T @ dY, accumulated straight into the gradient slice.
	gview := p.gradView(c)
	tensor.TMatMulAccInto(gview, p.cols[c], p.dy)
	// dBias_c += column sums of dY.
	bg := p.Bias.Grad.Data[c*p.Embed : (c+1)*p.Embed]
	for r := 0; r < b*t; r++ {
		row := p.dy.Data[r*p.Embed : (r+1)*p.Embed]
		for j, v := range row {
			bg[j] += v
		}
	}
	// dCol = dY @ W_c^T, then col2im back onto the image gradient.
	tensor.MatMulTInto(p.dcol, p.dy, p.weightView(c)) // [B*T, P*P]
	p.col2im(p.dcol, p.dimg, c)
}

// gradView returns the [P*P, E] view of local channel c's weight-gradient
// slice, cached alongside the weight views.
func (p *PatchEmbed) gradView(c int) *tensor.Tensor {
	pp := p.Patch * p.Patch
	stale := len(p.gviews) != p.LocalChannels()
	if !stale && p.gviews[c] != nil && &p.gviews[c].Data[0] != &p.Weight.Grad.Data[c*pp*p.Embed] {
		stale = true
	}
	if stale {
		p.gviews = make([]*tensor.Tensor, p.LocalChannels())
	}
	if p.gviews[c] == nil {
		p.gviews[c] = tensor.FromSlice(p.Weight.Grad.Data[c*pp*p.Embed:(c+1)*pp*p.Embed], pp, p.Embed)
	}
	return p.gviews[c]
}

// im2col extracts the [B*T, P*P] patch matrix for local channel c into col.
//
// dchag:hotpath — per-channel patch gather; col is layer-owned scratch.
func (p *PatchEmbed) im2col(col, x *tensor.Tensor, c int) {
	b := x.Shape[0]
	localC := p.LocalChannels()
	ph, pw := p.ImgH/p.Patch, p.ImgW/p.Patch
	t := ph * pw
	pp := p.Patch * p.Patch
	for bi := 0; bi < b; bi++ {
		base := (bi*localC + c) * p.ImgH * p.ImgW
		for py := 0; py < ph; py++ {
			for px := 0; px < pw; px++ {
				ti := py*pw + px
				dst := col.Data[(bi*t+ti)*pp : (bi*t+ti+1)*pp]
				for dy := 0; dy < p.Patch; dy++ {
					srcOff := base + (py*p.Patch+dy)*p.ImgW + px*p.Patch
					copy(dst[dy*p.Patch:(dy+1)*p.Patch], x.Data[srcOff:srcOff+p.Patch])
				}
			}
		}
	}
}

// col2im scatters a [B*T, P*P] patch-gradient matrix back into the image
// gradient for local channel c. Patches do not overlap, so this is a pure
// scatter.
func (p *PatchEmbed) col2im(dcol, dimg *tensor.Tensor, c int) {
	b := dimg.Shape[0]
	localC := p.LocalChannels()
	ph, pw := p.ImgH/p.Patch, p.ImgW/p.Patch
	t := ph * pw
	pp := p.Patch * p.Patch
	for bi := 0; bi < b; bi++ {
		base := (bi*localC + c) * p.ImgH * p.ImgW
		for py := 0; py < ph; py++ {
			for px := 0; px < pw; px++ {
				ti := py*pw + px
				src := dcol.Data[(bi*t+ti)*pp : (bi*t+ti+1)*pp]
				for dy := 0; dy < p.Patch; dy++ {
					dstOff := base + (py*p.Patch+dy)*p.ImgW + px*p.Patch
					copy(dimg.Data[dstOff:dstOff+p.Patch], src[dy*p.Patch:(dy+1)*p.Patch])
				}
			}
		}
	}
}

// Params returns the tokenizer's parameters.
func (p *PatchEmbed) Params() []*Param { return []*Param{p.Weight, p.Bias} }
