package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// PatchEmbed is the tokenization stage of the paper's architecture (Fig. 1):
// every channel of a multi-channel 2D image is divided into PxP patches and
// each patch is projected to the embedding dimension by a convolution that
// is *independent per channel* (equivalent to a per-channel linear layer
// over flattened patches, which is how it is implemented here).
//
// A PatchEmbed may own only a contiguous shard [ChLo, ChHi) of the global
// channel range: this is exactly the "distributed tokenization" of paper
// Sec. 3.1. Per-channel weights are seeded by the *global* channel index, so
// any sharding reproduces the serial layer's parameters bit-for-bit.
type PatchEmbed struct {
	ImgH, ImgW int
	Patch      int
	Embed      int
	ChLo, ChHi int // global channel range owned by this instance

	Weight *Param // [localC, P*P, E]
	Bias   *Param // [localC, E]

	cols []*tensor.Tensor // cached im2col matrices per local channel
	b    int              // cached batch size
}

// NewPatchEmbed constructs a tokenizer over all channels [0, channels).
func NewPatchEmbed(name string, channels, imgH, imgW, patch, embed int, seed int64) *PatchEmbed {
	return NewPatchEmbedShard(name, 0, channels, imgH, imgW, patch, embed, seed)
}

// NewPatchEmbedShard constructs a tokenizer owning global channels
// [chLo, chHi). Weights for channel c are drawn from SubSeed(seed, c), so a
// shard matches the corresponding slice of the full layer.
func NewPatchEmbedShard(name string, chLo, chHi, imgH, imgW, patch, embed int, seed int64) *PatchEmbed {
	if imgH%patch != 0 || imgW%patch != 0 {
		panic(fmt.Sprintf("nn: image %dx%d not divisible by patch %d", imgH, imgW, patch))
	}
	if chLo < 0 || chHi <= chLo {
		panic(fmt.Sprintf("nn: invalid channel shard [%d,%d)", chLo, chHi))
	}
	localC := chHi - chLo
	pp := patch * patch
	w := tensor.New(localC, pp, embed)
	for c := 0; c < localC; c++ {
		rng := tensor.NewRNG(SubSeed(seed, chLo+c))
		cw := tensor.XavierUniform(rng, pp, embed)
		copy(w.Data[c*pp*embed:(c+1)*pp*embed], cw.Data)
	}
	return &PatchEmbed{
		ImgH: imgH, ImgW: imgW, Patch: patch, Embed: embed,
		ChLo: chLo, ChHi: chHi,
		Weight: NewParam(name+".weight", w),
		Bias:   NewParam(name+".bias", tensor.New(localC, embed)),
	}
}

// LocalChannels returns the number of channels this shard owns.
func (p *PatchEmbed) LocalChannels() int { return p.ChHi - p.ChLo }

// Tokens returns the number of spatial tokens per channel.
func (p *PatchEmbed) Tokens() int { return (p.ImgH / p.Patch) * (p.ImgW / p.Patch) }

// Forward tokenizes x of shape [B, localC, H, W] into [B, localC, T, E].
// The channel dimension of x must already be this shard's local slice.
func (p *PatchEmbed) Forward(x *tensor.Tensor) *tensor.Tensor {
	localC := p.LocalChannels()
	if len(x.Shape) != 4 || x.Shape[1] != localC || x.Shape[2] != p.ImgH || x.Shape[3] != p.ImgW {
		panic(fmt.Sprintf("nn: PatchEmbed.Forward want [B,%d,%d,%d], got %v", localC, p.ImgH, p.ImgW, x.Shape))
	}
	b := x.Shape[0]
	p.b = b
	p.cols = make([]*tensor.Tensor, localC)
	out := tensor.New(b, localC, p.Tokens(), p.Embed)
	for c := 0; c < localC; c++ {
		p.cols[c] = p.project(x, c, out)
	}
	return out
}

// Infer tokenizes without caching the im2col matrices for backward — the
// dominant activation cost of the tokenizer.
func (p *PatchEmbed) Infer(x *tensor.Tensor) *tensor.Tensor {
	localC := p.LocalChannels()
	if len(x.Shape) != 4 || x.Shape[1] != localC || x.Shape[2] != p.ImgH || x.Shape[3] != p.ImgW {
		panic(fmt.Sprintf("nn: PatchEmbed.Infer want [B,%d,%d,%d], got %v", localC, p.ImgH, p.ImgW, x.Shape))
	}
	out := tensor.New(x.Shape[0], localC, p.Tokens(), p.Embed)
	for c := 0; c < localC; c++ {
		p.project(x, c, out)
	}
	return out
}

// project tokenizes local channel c of x into out [B, localC, T, E],
// returning the channel's im2col matrix for Forward to cache (Infer drops
// it).
func (p *PatchEmbed) project(x *tensor.Tensor, c int, out *tensor.Tensor) *tensor.Tensor {
	localC := p.LocalChannels()
	b := x.Shape[0]
	t := p.Tokens()
	pp := p.Patch * p.Patch
	col := p.im2col(x, c) // [B*T, P*P]
	wc := tensor.FromSlice(p.Weight.W.Data[c*pp*p.Embed:(c+1)*pp*p.Embed], pp, p.Embed)
	y := tensor.MatMul(col, wc) // [B*T, E]
	bias := p.Bias.W.Data[c*p.Embed : (c+1)*p.Embed]
	for r := 0; r < b*t; r++ {
		row := y.Data[r*p.Embed : (r+1)*p.Embed]
		for j, bv := range bias {
			row[j] += bv
		}
	}
	// Scatter rows into [B, c, T, E].
	for bi := 0; bi < b; bi++ {
		src := y.Data[bi*t*p.Embed : (bi+1)*t*p.Embed]
		dst := out.Data[((bi*localC+c)*t)*p.Embed : ((bi*localC+c)*t+t)*p.Embed]
		copy(dst, src)
	}
	return col
}

// Backward consumes dOut of shape [B, localC, T, E], accumulates weight and
// bias gradients, and returns the gradient with respect to the input image
// shard [B, localC, H, W].
func (p *PatchEmbed) Backward(grad *tensor.Tensor) *tensor.Tensor {
	localC := p.LocalChannels()
	t := p.Tokens()
	if p.cols == nil {
		panic("nn: PatchEmbed.Backward before Forward")
	}
	if len(grad.Shape) != 4 || grad.Shape[0] != p.b || grad.Shape[1] != localC || grad.Shape[2] != t || grad.Shape[3] != p.Embed {
		panic(fmt.Sprintf("nn: PatchEmbed.Backward want [%d,%d,%d,%d], got %v", p.b, localC, t, p.Embed, grad.Shape))
	}
	b := p.b
	pp := p.Patch * p.Patch
	dimg := tensor.New(b, localC, p.ImgH, p.ImgW)
	for c := 0; c < localC; c++ {
		// Gather dY_c: [B*T, E].
		dy := tensor.New(b*t, p.Embed)
		for bi := 0; bi < b; bi++ {
			src := grad.Data[((bi*localC+c)*t)*p.Embed : ((bi*localC+c)*t+t)*p.Embed]
			copy(dy.Data[bi*t*p.Embed:(bi+1)*t*p.Embed], src)
		}
		// dW_c += col^T @ dY.
		dw := tensor.TMatMul(p.cols[c], dy)
		dst := p.Weight.Grad.Data[c*pp*p.Embed : (c+1)*pp*p.Embed]
		for i, v := range dw.Data {
			dst[i] += v
		}
		// dBias_c += column sums of dY.
		bg := p.Bias.Grad.Data[c*p.Embed : (c+1)*p.Embed]
		for r := 0; r < b*t; r++ {
			row := dy.Data[r*p.Embed : (r+1)*p.Embed]
			for j, v := range row {
				bg[j] += v
			}
		}
		// dCol = dY @ W_c^T, then col2im back onto the image gradient.
		wc := tensor.FromSlice(p.Weight.W.Data[c*pp*p.Embed:(c+1)*pp*p.Embed], pp, p.Embed)
		dcol := tensor.MatMulT(dy, wc) // [B*T, P*P]
		p.col2im(dcol, dimg, c)
	}
	return dimg
}

// im2col extracts the [B*T, P*P] patch matrix for local channel c.
func (p *PatchEmbed) im2col(x *tensor.Tensor, c int) *tensor.Tensor {
	b := x.Shape[0]
	localC := p.LocalChannels()
	ph, pw := p.ImgH/p.Patch, p.ImgW/p.Patch
	t := ph * pw
	pp := p.Patch * p.Patch
	col := tensor.New(b*t, pp)
	for bi := 0; bi < b; bi++ {
		base := (bi*localC + c) * p.ImgH * p.ImgW
		for py := 0; py < ph; py++ {
			for px := 0; px < pw; px++ {
				ti := py*pw + px
				dst := col.Data[(bi*t+ti)*pp : (bi*t+ti+1)*pp]
				for dy := 0; dy < p.Patch; dy++ {
					srcOff := base + (py*p.Patch+dy)*p.ImgW + px*p.Patch
					copy(dst[dy*p.Patch:(dy+1)*p.Patch], x.Data[srcOff:srcOff+p.Patch])
				}
			}
		}
	}
	return col
}

// col2im scatters a [B*T, P*P] patch-gradient matrix back into the image
// gradient for local channel c. Patches do not overlap, so this is a pure
// scatter.
func (p *PatchEmbed) col2im(dcol, dimg *tensor.Tensor, c int) {
	b := dimg.Shape[0]
	localC := p.LocalChannels()
	ph, pw := p.ImgH/p.Patch, p.ImgW/p.Patch
	t := ph * pw
	pp := p.Patch * p.Patch
	for bi := 0; bi < b; bi++ {
		base := (bi*localC + c) * p.ImgH * p.ImgW
		for py := 0; py < ph; py++ {
			for px := 0; px < pw; px++ {
				ti := py*pw + px
				src := dcol.Data[(bi*t+ti)*pp : (bi*t+ti+1)*pp]
				for dy := 0; dy < p.Patch; dy++ {
					dstOff := base + (py*p.Patch+dy)*p.ImgW + px*p.Patch
					copy(dimg.Data[dstOff:dstOff+p.Patch], src[dy*p.Patch:(dy+1)*p.Patch])
				}
			}
		}
	}
}

// Params returns the tokenizer's parameters.
func (p *PatchEmbed) Params() []*Param { return []*Param{p.Weight, p.Bias} }
