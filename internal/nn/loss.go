package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MSELoss computes the mean squared error over all elements.
type MSELoss struct {
	diff *tensor.Tensor
}

// NewMSELoss returns an MSE loss.
func NewMSELoss() *MSELoss { return &MSELoss{} }

// Forward returns mean((pred-target)^2).
func (l *MSELoss) Forward(pred, target *tensor.Tensor) float64 {
	if !tensor.SameShape(pred, target) {
		panic(fmt.Sprintf("nn: MSELoss shape mismatch %v vs %v", pred.Shape, target.Shape))
	}
	l.diff = tensor.Sub(pred, target)
	s := 0.0
	for _, v := range l.diff.Data {
		s += v * v
	}
	return s / float64(l.diff.Numel())
}

// Backward returns dLoss/dPred = 2*(pred-target)/N.
func (l *MSELoss) Backward() *tensor.Tensor {
	if l.diff == nil {
		panic("nn: MSELoss.Backward before Forward")
	}
	return tensor.Scale(l.diff, 2/float64(l.diff.Numel()))
}

// MaskedMSELoss computes MSE only over positions selected by a mask, the
// objective of masked-autoencoder pretraining (paper Sec. 5.1): the loss is
// evaluated on reconstructed *masked* patches only.
type MaskedMSELoss struct {
	diff  *tensor.Tensor
	mask  *tensor.Tensor
	count float64
	inner int
}

// NewMaskedMSELoss returns a masked MSE loss.
func NewMaskedMSELoss() *MaskedMSELoss { return &MaskedMSELoss{} }

// Forward computes the mean of (pred-target)^2 over positions where
// mask[b,t] == 1. pred and target have shape [B,T,D]; mask has shape [B,T].
func (l *MaskedMSELoss) Forward(pred, target, mask *tensor.Tensor) float64 {
	if !tensor.SameShape(pred, target) {
		panic(fmt.Sprintf("nn: MaskedMSELoss shape mismatch %v vs %v", pred.Shape, target.Shape))
	}
	if len(pred.Shape) != 3 || len(mask.Shape) != 2 || mask.Shape[0] != pred.Shape[0] || mask.Shape[1] != pred.Shape[1] {
		panic(fmt.Sprintf("nn: MaskedMSELoss want pred [B,T,D] and mask [B,T], got %v and %v", pred.Shape, mask.Shape))
	}
	l.diff = tensor.Sub(pred, target)
	l.mask = mask
	l.inner = pred.Shape[2]
	masked := 0.0
	s := 0.0
	for r, mv := range mask.Data {
		if mv == 0 {
			continue
		}
		masked++
		row := l.diff.Data[r*l.inner : (r+1)*l.inner]
		for _, v := range row {
			s += v * v
		}
	}
	if masked == 0 {
		l.count = 0
		return 0
	}
	l.count = masked * float64(l.inner)
	return s / l.count
}

// Backward returns dLoss/dPred, zero at unmasked positions.
func (l *MaskedMSELoss) Backward() *tensor.Tensor {
	if l.diff == nil {
		panic("nn: MaskedMSELoss.Backward before Forward")
	}
	out := tensor.New(l.diff.Shape...)
	if l.count == 0 {
		return out
	}
	scale := 2 / l.count
	for r, mv := range l.mask.Data {
		if mv == 0 {
			continue
		}
		src := l.diff.Data[r*l.inner : (r+1)*l.inner]
		dst := out.Data[r*l.inner : (r+1)*l.inner]
		for i, v := range src {
			dst[i] = v * scale
		}
	}
	return out
}

// LatWeightedRMSE computes the latitude-weighted root-mean-square error used
// to evaluate weather forecasts (Z500/T850/U10 in the paper's Fig. 12). The
// field has shape [B, H, W]; rows are weighted by cos(latitude) normalized
// to mean 1, matching the ERA5 evaluation convention.
func LatWeightedRMSE(pred, target *tensor.Tensor) float64 {
	if !tensor.SameShape(pred, target) {
		panic(fmt.Sprintf("nn: LatWeightedRMSE shape mismatch %v vs %v", pred.Shape, target.Shape))
	}
	if len(pred.Shape) != 3 {
		panic(fmt.Sprintf("nn: LatWeightedRMSE wants [B,H,W], got %v", pred.Shape))
	}
	b, h, w := pred.Shape[0], pred.Shape[1], pred.Shape[2]
	weights := make([]float64, h)
	sumW := 0.0
	for i := 0; i < h; i++ {
		// Latitude of row centre, from +90 to -90 degrees.
		lat := (0.5 - (float64(i)+0.5)/float64(h)) * math.Pi
		weights[i] = math.Cos(lat)
		sumW += weights[i]
	}
	for i := range weights {
		weights[i] *= float64(h) / sumW
	}
	s := 0.0
	for bi := 0; bi < b; bi++ {
		for i := 0; i < h; i++ {
			for j := 0; j < w; j++ {
				d := pred.At(bi, i, j) - target.At(bi, i, j)
				s += weights[i] * d * d
			}
		}
	}
	return math.Sqrt(s / float64(b*h*w))
}
