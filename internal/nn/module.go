// Package nn implements neural-network layers with explicit forward and
// backward passes: linear, layer normalization, GELU, multi-head self- and
// cross-attention, per-channel patch embedding (the tokenizer of the paper's
// Fig. 1 architecture), learned embeddings, transformer blocks, and losses.
//
// There is deliberately no autograd tape. Every layer caches what its
// backward pass needs during Forward and exposes Backward explicitly. This
// mirrors how tensor-parallel, FSDP and D-CHAG implementations reason about
// gradients (and lets tests assert the paper's "no communication in the
// backward pass" claim by construction). Layers are not safe for concurrent
// use; in the distributed simulation every rank owns its own replica.
//
// Buffer ownership: layers return layer-owned scratch from Forward, Infer
// and Backward (grown once, reused every step — see tensor.EnsureShape), so
// steady-state training and serving steps are allocation-free. The returned
// tensor stays valid until the same method on the same layer runs again.
// Layers are single-stream: Forward then Backward strictly alternate on one
// goroutine, and Infer may interleave only outside a Forward/Backward pair
// (between optimizer steps). Recomputation (see Recompute) re-runs Forward
// deterministically, which rebuilds identical caches and is therefore safe.
//
// Determinism: every constructor takes an explicit seed. Layers that own a
// logically-sharded parameter (attention heads, channel shards) generate the
// full logical parameter from that seed and slice it, so distributed shards
// are bit-identical to the serial layer's parameters.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is a learnable parameter together with its accumulated gradient.
type Param struct {
	// Name identifies the parameter for debugging and optimizer state.
	Name string
	// W holds the parameter values.
	W *tensor.Tensor
	// Grad accumulates the gradient; it always has W's shape.
	Grad *tensor.Tensor
	// Shard annotates W as a contiguous slice of a larger logical tensor;
	// nil means the parameter is whole (replicated or unsharded).
	Shard *ShardInfo
}

// ShardInfo describes a parameter's place in a logical (unsharded) tensor.
// Layers that slice a full logical tensor deterministically (attention-head
// shards, D-CHAG channel shards — see the SubSeed contract) attach one so
// checkpointing can reassemble the logical tensor from any saved topology
// and re-slice it for the loading one.
type ShardInfo struct {
	// Logical is the logical tensor's name, shared by every shard of it and
	// equal to the serial layer's parameter name.
	Logical string
	// Axis is the sharded axis of the logical tensor.
	Axis int
	// FullShape is the logical tensor's full shape.
	FullShape []int
	// Lo, Hi bound this shard's slice [Lo, Hi) along Axis.
	Lo, Hi int
}

// NewParam allocates a parameter wrapping w with a zeroed gradient.
func NewParam(name string, w *tensor.Tensor) *Param {
	return &Param{Name: name, W: w, Grad: tensor.New(w.Shape...)}
}

// MarkShard annotates the parameter as the [lo, hi) slice along axis of the
// logical tensor named logical with the given full shape. It validates that
// the parameter's actual shape is exactly that slice and returns the
// parameter for chaining.
func (p *Param) MarkShard(logical string, axis int, fullShape []int, lo, hi int) *Param {
	if axis < 0 || axis >= len(fullShape) {
		panic(fmt.Sprintf("nn: MarkShard axis %d out of range for %v", axis, fullShape))
	}
	if lo < 0 || hi <= lo || hi > fullShape[axis] {
		panic(fmt.Sprintf("nn: MarkShard bounds [%d,%d) invalid for extent %d", lo, hi, fullShape[axis]))
	}
	if len(p.W.Shape) != len(fullShape) {
		panic(fmt.Sprintf("nn: MarkShard rank mismatch: param %v vs logical %v", p.W.Shape, fullShape))
	}
	for i, d := range fullShape {
		want := d
		if i == axis {
			want = hi - lo
		}
		if p.W.Shape[i] != want {
			panic(fmt.Sprintf("nn: MarkShard param %q shape %v is not the [%d,%d) slice of %v along axis %d",
				p.Name, p.W.Shape, lo, hi, fullShape, axis))
		}
	}
	p.Shard = &ShardInfo{
		Logical: logical, Axis: axis,
		FullShape: append([]int(nil), fullShape...),
		Lo:        lo, Hi: hi,
	}
	return p
}

// LogicalKey returns the name of the logical tensor this parameter belongs
// to: the shard's logical name when sharded, the parameter name otherwise.
func (p *Param) LogicalKey() string {
	if p.Shard != nil {
		return p.Shard.Logical
	}
	return p.Name
}

// FullShape returns the logical tensor's shape: the shard's full shape when
// sharded, W's shape otherwise.
func (p *Param) FullShape() []int {
	if p.Shard != nil {
		return p.Shard.FullShape
	}
	return p.W.Shape
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Numel returns the number of scalar values in the parameter.
func (p *Param) Numel() int { return p.W.Numel() }

// Layer is the single-input module contract. Forward must be called before
// Backward; Backward returns the gradient with respect to the forward input
// and accumulates parameter gradients.
type Layer interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Inferencer is the optional no-grad fast path of a Layer: Infer computes
// exactly Forward's output — bit for bit — without caching the activations
// Backward would need. Serving and evaluation call it through nn.Infer so
// layers without a fast path still work (their Forward caches are simply
// overwritten and never consumed).
type Inferencer interface {
	Infer(x *tensor.Tensor) *tensor.Tensor
}

// Infer runs l's inference fast path when it has one, falling back to
// Forward. Under the default F64 inference dtype the output is bitwise
// identical either way; only the activation caching differs. Under
// SetInferDType(F32) the matrix products run in float32 and the output
// differs from Forward by the tolerance contract documented in DESIGN.md.
func Infer(l Layer, x *tensor.Tensor) *tensor.Tensor {
	if in, ok := l.(Inferencer); ok {
		return in.Infer(x)
	}
	return l.Forward(x)
}

// DTyper is implemented by layers whose no-grad Infer path has a selectable
// arithmetic (see tensor.DType). SetInferDType(F32) additionally prepacks
// weights for the float32 kernels; it must be called again after the
// weights change.
type DTyper interface {
	SetInferDType(tensor.DType)
}

// SetInferDType applies dt to l when it implements DTyper; layers without a
// dtype switch (layer norms, activations) are left on float64.
func SetInferDType(l Layer, dt tensor.DType) {
	if d, ok := l.(DTyper); ok {
		d.SetInferDType(dt)
	}
}

// ZeroGrads clears the gradients of every parameter in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// NumParams sums the scalar count over ps.
func NumParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.Numel()
	}
	return n
}

// Sequential chains single-input layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward applies the layers in order.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward applies the layers' backward passes in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// SetInferDType applies dt to every layer that implements DTyper.
func (s *Sequential) SetInferDType(dt tensor.DType) {
	for _, l := range s.Layers {
		SetInferDType(l, dt)
	}
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// SubSeed derives a deterministic per-component seed from a base seed and a
// component index, so sharded layers reproduce the serial layer's exact
// initialization regardless of how the shards are constructed.
func SubSeed(seed int64, idx int) int64 {
	// SplitMix64-style mixing keeps nearby (seed, idx) pairs uncorrelated.
	z := uint64(seed) + uint64(idx+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// foldLeading reshapes an N-D tensor to 2-D by folding all leading
// dimensions, returning the folded view and the original shape for
// restoration.
func foldLeading(x *tensor.Tensor) (*tensor.Tensor, []int) {
	shape := append([]int(nil), x.Shape...)
	last := shape[len(shape)-1]
	return x.Reshape(-1, last), shape
}

func mustLastDim(op string, x *tensor.Tensor, want int) {
	if got := x.Shape[len(x.Shape)-1]; got != want {
		panic(fmt.Sprintf("nn: %s expected last dim %d, got shape %v", op, want, x.Shape))
	}
}
