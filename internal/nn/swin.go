package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// SwinBlock is a windowed-attention transformer block in the style of the
// Swin Transformer, which the paper's Sec. 3.5 names as the ViT replacement
// in Aurora ("the Swin Transformer applies a hierarchical approach to
// self-attention, enabling it to handle longer sequence-length tokens").
// D-CHAG is agnostic to the ViT architecture, so swapping these blocks in
// for TransformerBlock changes nothing about the channel stage — which the
// model tests assert.
//
// Tokens are interpreted as a GridH x GridW spatial grid and partitioned
// into non-overlapping Window x Window windows; self-attention runs within
// each window. Blocks with Shift set cyclically shift the grid by half a
// window first (and unshift after), so stacked alternating blocks connect
// neighboring windows. Like the original, shifted windows wrap around the
// grid; the boundary attention mask of the original is omitted — a
// documented simplification appropriate for the periodic scientific fields
// this repository trains on.
type SwinBlock struct {
	Embed, Heads int
	GridH, GridW int
	Window       int
	Shift        bool
	Norm1, Norm2 *LayerNorm
	Attn         *SelfAttention
	FFN          *MLP

	b int

	// Per-pass data-movement scratch. Forward, Infer and Backward each own a
	// set: the attention sublayer caches views of the partitioned windows for
	// its backward pass, so Backward's (and Infer's) data movement must not
	// reuse Forward's buffers.
	fsc, isc, bsc swinScratch
	h, out        *tensor.Tensor // residual scratch (forward)
	ih, iout      *tensor.Tensor // residual scratch (infer)
	dh, dx        *tensor.Tensor // residual scratch (backward)
}

// swinScratch holds the shift/partition buffers of one pass direction.
type swinScratch struct {
	shifted *tensor.Tensor // cyclically shifted grid
	part    *tensor.Tensor // windows, [B*numWindows, Window*Window, E]
	merged  *tensor.Tensor // unpartitioned grid
	unshift *tensor.Tensor // unshifted grid
}

// NewSwinBlock constructs a windowed block. The grid must tile exactly into
// Window x Window patches.
func NewSwinBlock(name string, embed, heads, gridH, gridW, window int, shift bool, seed int64) *SwinBlock {
	if gridH%window != 0 || gridW%window != 0 {
		panic(fmt.Sprintf("nn: grid %dx%d not divisible by window %d", gridH, gridW, window))
	}
	return &SwinBlock{
		Embed: embed, Heads: heads,
		GridH: gridH, GridW: gridW, Window: window, Shift: shift,
		Norm1: NewLayerNorm(name+".norm1", embed),
		Norm2: NewLayerNorm(name+".norm2", embed),
		Attn:  NewSelfAttention(name+".attn", embed, heads, SubSeed(seed, 0)),
		FFN:   NewMLP(name+".mlp", embed, 4*embed, SubSeed(seed, 1)),
	}
}

// Tokens returns the sequence length the block expects.
func (s *SwinBlock) Tokens() int { return s.GridH * s.GridW }

// SetInferDType selects the arithmetic of the no-grad Infer path for the
// attention and MLP sublayers; the layer norms always run float64.
func (s *SwinBlock) SetInferDType(dt tensor.DType) {
	s.Attn.SetInferDType(dt)
	s.FFN.SetInferDType(dt)
}

// shiftGrid cyclically shifts the token grid by (dy, dx), writing into out.
//
// dchag:hotpath — per-block data movement; out is pass-owned scratch.
func (s *SwinBlock) shiftGrid(out, x *tensor.Tensor, dy, dx int) *tensor.Tensor {
	b, e := x.Shape[0], s.Embed
	for bi := 0; bi < b; bi++ {
		for y := 0; y < s.GridH; y++ {
			for xx := 0; xx < s.GridW; xx++ {
				sy := ((y+dy)%s.GridH + s.GridH) % s.GridH
				sx := ((xx+dx)%s.GridW + s.GridW) % s.GridW
				src := x.Data[(bi*s.Tokens()+sy*s.GridW+sx)*e : (bi*s.Tokens()+sy*s.GridW+sx+1)*e]
				dst := out.Data[(bi*s.Tokens()+y*s.GridW+xx)*e : (bi*s.Tokens()+y*s.GridW+xx+1)*e]
				copy(dst, src)
			}
		}
	}
	return out
}

// partition rearranges [B, T, E] into [B*numWindows, Window*Window, E],
// writing into out.
//
// dchag:hotpath — per-block data movement; out is pass-owned scratch.
func (s *SwinBlock) partition(out, x *tensor.Tensor) *tensor.Tensor {
	b, e := x.Shape[0], s.Embed
	wh, ww := s.GridH/s.Window, s.GridW/s.Window
	for bi := 0; bi < b; bi++ {
		for wy := 0; wy < wh; wy++ {
			for wx := 0; wx < ww; wx++ {
				win := (bi*wh+wy)*ww + wx
				for iy := 0; iy < s.Window; iy++ {
					for ix := 0; ix < s.Window; ix++ {
						tok := (wy*s.Window+iy)*s.GridW + wx*s.Window + ix
						src := x.Data[(bi*s.Tokens()+tok)*e : (bi*s.Tokens()+tok+1)*e]
						dst := out.Data[(win*s.Window*s.Window+iy*s.Window+ix)*e : (win*s.Window*s.Window+iy*s.Window+ix+1)*e]
						copy(dst, src)
					}
				}
			}
		}
	}
	return out
}

// unpartition inverts partition, writing into out.
//
// dchag:hotpath — per-block data movement; out is pass-owned scratch.
func (s *SwinBlock) unpartition(out, x *tensor.Tensor, b int) *tensor.Tensor {
	e := s.Embed
	wh, ww := s.GridH/s.Window, s.GridW/s.Window
	for bi := 0; bi < b; bi++ {
		for wy := 0; wy < wh; wy++ {
			for wx := 0; wx < ww; wx++ {
				win := (bi*wh+wy)*ww + wx
				for iy := 0; iy < s.Window; iy++ {
					for ix := 0; ix < s.Window; ix++ {
						tok := (wy*s.Window+iy)*s.GridW + wx*s.Window + ix
						src := x.Data[(win*s.Window*s.Window+iy*s.Window+ix)*e : (win*s.Window*s.Window+iy*s.Window+ix+1)*e]
						dst := out.Data[(bi*s.Tokens()+tok)*e : (bi*s.Tokens()+tok+1)*e]
						copy(dst, src)
					}
				}
			}
		}
	}
	return out
}

// Attention pass directions for windowed.
const (
	swinForward = iota
	swinInfer
	swinBackward
)

// windowed runs the shift -> partition -> attention -> unpartition ->
// unshift data movement in the given direction, using the pass-owned
// scratch set sc.
//
// dchag:hotpath — one call per block per step/micro-batch.
func (s *SwinBlock) windowed(x *tensor.Tensor, sc *swinScratch, mode int) *tensor.Tensor {
	b := x.Shape[0]
	half := s.Window / 2
	if s.Shift {
		sc.shifted = tensor.EnsureShape(sc.shifted, x.Shape...)
		x = s.shiftGrid(sc.shifted, x, half, half)
	}
	wh, ww := s.GridH/s.Window, s.GridW/s.Window
	sc.part = tensor.EnsureShape(sc.part, b*wh*ww, s.Window*s.Window, s.Embed)
	s.partition(sc.part, x)
	var y *tensor.Tensor
	switch mode {
	case swinForward:
		y = s.Attn.Forward(sc.part)
	case swinInfer:
		y = s.Attn.Infer(sc.part)
	default:
		y = s.Attn.Backward(sc.part)
	}
	sc.merged = tensor.EnsureShape(sc.merged, b, s.Tokens(), s.Embed)
	y = s.unpartition(sc.merged, y, b)
	if s.Shift {
		sc.unshift = tensor.EnsureShape(sc.unshift, y.Shape...)
		y = s.shiftGrid(sc.unshift, y, -half, -half)
	}
	return y
}

// windowAttention applies self-attention within windows (with optional
// shift) to normed input [B, T, E].
func (s *SwinBlock) windowAttention(x *tensor.Tensor) *tensor.Tensor {
	return s.windowed(x, &s.fsc, swinForward)
}

// windowAttentionInfer is windowAttention through the attention layer's
// no-grad fast path.
func (s *SwinBlock) windowAttentionInfer(x *tensor.Tensor) *tensor.Tensor {
	return s.windowed(x, &s.isc, swinInfer)
}

// windowAttentionBackward inverts windowAttention's data movement.
func (s *SwinBlock) windowAttentionBackward(grad *tensor.Tensor) *tensor.Tensor {
	return s.windowed(grad, &s.bsc, swinBackward)
}

// Forward applies the block to x [B, T, E] with T = GridH*GridW.
func (s *SwinBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[1] != s.Tokens() || x.Shape[2] != s.Embed {
		panic(fmt.Sprintf("nn: SwinBlock.Forward want [B,%d,%d], got %v", s.Tokens(), s.Embed, x.Shape))
	}
	s.b = x.Shape[0]
	s.h = tensor.EnsureShape(s.h, x.Shape...)
	tensor.AddInto(s.h, x, s.windowAttention(s.Norm1.Forward(x)))
	s.out = tensor.EnsureShape(s.out, x.Shape...)
	return tensor.AddInto(s.out, s.h, s.FFN.Forward(s.Norm2.Forward(s.h)))
}

// Infer applies the block through the sublayers' no-grad fast paths.
func (s *SwinBlock) Infer(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[1] != s.Tokens() || x.Shape[2] != s.Embed {
		panic(fmt.Sprintf("nn: SwinBlock.Infer want [B,%d,%d], got %v", s.Tokens(), s.Embed, x.Shape))
	}
	s.ih = tensor.EnsureShape(s.ih, x.Shape...)
	tensor.AddInto(s.ih, x, s.windowAttentionInfer(s.Norm1.Infer(x)))
	s.iout = tensor.EnsureShape(s.iout, x.Shape...)
	return tensor.AddInto(s.iout, s.ih, s.FFN.Infer(s.Norm2.Infer(s.ih)))
}

// Backward back-propagates through both residual branches.
func (s *SwinBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	s.dh = tensor.EnsureShape(s.dh, grad.Shape...)
	tensor.AddInto(s.dh, grad, s.Norm2.Backward(s.FFN.Backward(grad)))
	s.dx = tensor.EnsureShape(s.dx, grad.Shape...)
	return tensor.AddInto(s.dx, s.dh, s.Norm1.Backward(s.windowAttentionBackward(s.dh)))
}

// Params returns the block's parameters.
func (s *SwinBlock) Params() []*Param {
	var ps []*Param
	ps = append(ps, s.Norm1.Params()...)
	ps = append(ps, s.Attn.Params()...)
	ps = append(ps, s.Norm2.Params()...)
	ps = append(ps, s.FFN.Params()...)
	return ps
}
