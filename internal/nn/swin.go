package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// SwinBlock is a windowed-attention transformer block in the style of the
// Swin Transformer, which the paper's Sec. 3.5 names as the ViT replacement
// in Aurora ("the Swin Transformer applies a hierarchical approach to
// self-attention, enabling it to handle longer sequence-length tokens").
// D-CHAG is agnostic to the ViT architecture, so swapping these blocks in
// for TransformerBlock changes nothing about the channel stage — which the
// model tests assert.
//
// Tokens are interpreted as a GridH x GridW spatial grid and partitioned
// into non-overlapping Window x Window windows; self-attention runs within
// each window. Blocks with Shift set cyclically shift the grid by half a
// window first (and unshift after), so stacked alternating blocks connect
// neighboring windows. Like the original, shifted windows wrap around the
// grid; the boundary attention mask of the original is omitted — a
// documented simplification appropriate for the periodic scientific fields
// this repository trains on.
type SwinBlock struct {
	Embed, Heads int
	GridH, GridW int
	Window       int
	Shift        bool
	Norm1, Norm2 *LayerNorm
	Attn         *SelfAttention
	FFN          *MLP

	b int
}

// NewSwinBlock constructs a windowed block. The grid must tile exactly into
// Window x Window patches.
func NewSwinBlock(name string, embed, heads, gridH, gridW, window int, shift bool, seed int64) *SwinBlock {
	if gridH%window != 0 || gridW%window != 0 {
		panic(fmt.Sprintf("nn: grid %dx%d not divisible by window %d", gridH, gridW, window))
	}
	return &SwinBlock{
		Embed: embed, Heads: heads,
		GridH: gridH, GridW: gridW, Window: window, Shift: shift,
		Norm1: NewLayerNorm(name+".norm1", embed),
		Norm2: NewLayerNorm(name+".norm2", embed),
		Attn:  NewSelfAttention(name+".attn", embed, heads, SubSeed(seed, 0)),
		FFN:   NewMLP(name+".mlp", embed, 4*embed, SubSeed(seed, 1)),
	}
}

// Tokens returns the sequence length the block expects.
func (s *SwinBlock) Tokens() int { return s.GridH * s.GridW }

// shiftGrid cyclically shifts the token grid by (dy, dx).
func (s *SwinBlock) shiftGrid(x *tensor.Tensor, dy, dx int) *tensor.Tensor {
	b, e := x.Shape[0], s.Embed
	out := tensor.New(x.Shape...)
	for bi := 0; bi < b; bi++ {
		for y := 0; y < s.GridH; y++ {
			for xx := 0; xx < s.GridW; xx++ {
				sy := ((y+dy)%s.GridH + s.GridH) % s.GridH
				sx := ((xx+dx)%s.GridW + s.GridW) % s.GridW
				src := x.Data[(bi*s.Tokens()+sy*s.GridW+sx)*e : (bi*s.Tokens()+sy*s.GridW+sx+1)*e]
				dst := out.Data[(bi*s.Tokens()+y*s.GridW+xx)*e : (bi*s.Tokens()+y*s.GridW+xx+1)*e]
				copy(dst, src)
			}
		}
	}
	return out
}

// partition rearranges [B, T, E] into [B*numWindows, Window*Window, E].
func (s *SwinBlock) partition(x *tensor.Tensor) *tensor.Tensor {
	b, e := x.Shape[0], s.Embed
	wh, ww := s.GridH/s.Window, s.GridW/s.Window
	out := tensor.New(b*wh*ww, s.Window*s.Window, e)
	for bi := 0; bi < b; bi++ {
		for wy := 0; wy < wh; wy++ {
			for wx := 0; wx < ww; wx++ {
				win := (bi*wh+wy)*ww + wx
				for iy := 0; iy < s.Window; iy++ {
					for ix := 0; ix < s.Window; ix++ {
						tok := (wy*s.Window+iy)*s.GridW + wx*s.Window + ix
						src := x.Data[(bi*s.Tokens()+tok)*e : (bi*s.Tokens()+tok+1)*e]
						dst := out.Data[(win*s.Window*s.Window+iy*s.Window+ix)*e : (win*s.Window*s.Window+iy*s.Window+ix+1)*e]
						copy(dst, src)
					}
				}
			}
		}
	}
	return out
}

// unpartition inverts partition.
func (s *SwinBlock) unpartition(x *tensor.Tensor, b int) *tensor.Tensor {
	e := s.Embed
	wh, ww := s.GridH/s.Window, s.GridW/s.Window
	out := tensor.New(b, s.Tokens(), e)
	for bi := 0; bi < b; bi++ {
		for wy := 0; wy < wh; wy++ {
			for wx := 0; wx < ww; wx++ {
				win := (bi*wh+wy)*ww + wx
				for iy := 0; iy < s.Window; iy++ {
					for ix := 0; ix < s.Window; ix++ {
						tok := (wy*s.Window+iy)*s.GridW + wx*s.Window + ix
						src := x.Data[(win*s.Window*s.Window+iy*s.Window+ix)*e : (win*s.Window*s.Window+iy*s.Window+ix+1)*e]
						dst := out.Data[(bi*s.Tokens()+tok)*e : (bi*s.Tokens()+tok+1)*e]
						copy(dst, src)
					}
				}
			}
		}
	}
	return out
}

// windowAttention applies self-attention within windows (with optional
// shift) to normed input [B, T, E].
func (s *SwinBlock) windowAttention(x *tensor.Tensor) *tensor.Tensor {
	b := x.Shape[0]
	half := s.Window / 2
	if s.Shift {
		x = s.shiftGrid(x, half, half)
	}
	y := s.unpartition(s.Attn.Forward(s.partition(x)), b)
	if s.Shift {
		y = s.shiftGrid(y, -half, -half)
	}
	return y
}

// windowAttentionInfer is windowAttention through the attention layer's
// no-grad fast path.
func (s *SwinBlock) windowAttentionInfer(x *tensor.Tensor) *tensor.Tensor {
	b := x.Shape[0]
	half := s.Window / 2
	if s.Shift {
		x = s.shiftGrid(x, half, half)
	}
	y := s.unpartition(s.Attn.Infer(s.partition(x)), b)
	if s.Shift {
		y = s.shiftGrid(y, -half, -half)
	}
	return y
}

// windowAttentionBackward inverts windowAttention's data movement.
func (s *SwinBlock) windowAttentionBackward(grad *tensor.Tensor) *tensor.Tensor {
	b := grad.Shape[0]
	half := s.Window / 2
	if s.Shift {
		grad = s.shiftGrid(grad, half, half)
	}
	d := s.unpartition(s.Attn.Backward(s.partition(grad)), b)
	if s.Shift {
		d = s.shiftGrid(d, -half, -half)
	}
	return d
}

// Forward applies the block to x [B, T, E] with T = GridH*GridW.
func (s *SwinBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[1] != s.Tokens() || x.Shape[2] != s.Embed {
		panic(fmt.Sprintf("nn: SwinBlock.Forward want [B,%d,%d], got %v", s.Tokens(), s.Embed, x.Shape))
	}
	s.b = x.Shape[0]
	h := tensor.Add(x, s.windowAttention(s.Norm1.Forward(x)))
	return tensor.Add(h, s.FFN.Forward(s.Norm2.Forward(h)))
}

// Infer applies the block through the sublayers' no-grad fast paths.
func (s *SwinBlock) Infer(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[1] != s.Tokens() || x.Shape[2] != s.Embed {
		panic(fmt.Sprintf("nn: SwinBlock.Infer want [B,%d,%d], got %v", s.Tokens(), s.Embed, x.Shape))
	}
	h := tensor.Add(x, s.windowAttentionInfer(s.Norm1.Infer(x)))
	return tensor.Add(h, s.FFN.Infer(s.Norm2.Infer(h)))
}

// Backward back-propagates through both residual branches.
func (s *SwinBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dh := tensor.Add(grad, s.Norm2.Backward(s.FFN.Backward(grad)))
	return tensor.Add(dh, s.Norm1.Backward(s.windowAttentionBackward(dh)))
}

// Params returns the block's parameters.
func (s *SwinBlock) Params() []*Param {
	var ps []*Param
	ps = append(ps, s.Norm1.Params()...)
	ps = append(ps, s.Attn.Params()...)
	ps = append(ps, s.Norm2.Params()...)
	ps = append(ps, s.FFN.Params()...)
	return ps
}
