package nn

import (
	"testing"

	"repro/internal/tensor"
)

func TestSwinShiftGridRoundTrip(t *testing.T) {
	s := NewSwinBlock("sw", 4, 2, 4, 6, 2, false, 1)
	x := tensor.Randn(tensor.NewRNG(1), 2, 24, 4)
	back := s.shiftGrid(tensor.New(x.Shape...), s.shiftGrid(tensor.New(x.Shape...), x, 1, 2), -1, -2)
	if tensor.MaxAbsDiff(back, x) != 0 {
		t.Fatal("shift then unshift must be the identity")
	}
	// Full wrap is also the identity.
	if tensor.MaxAbsDiff(s.shiftGrid(tensor.New(x.Shape...), x, 4, 6), x) != 0 {
		t.Fatal("shifting by the grid size must be the identity")
	}
}

func TestSwinPartitionRoundTrip(t *testing.T) {
	s := NewSwinBlock("sw", 4, 2, 4, 4, 2, false, 2)
	x := tensor.Randn(tensor.NewRNG(2), 3, 16, 4)
	part := s.partition(tensor.New(3*4, 4, 4), x)
	back := s.unpartition(tensor.New(x.Shape...), part, 3)
	if tensor.MaxAbsDiff(back, x) != 0 {
		t.Fatal("partition/unpartition must round trip")
	}
}

func TestSwinPartitionGroupsWindows(t *testing.T) {
	// 4x4 grid, window 2: token (0,0),(0,1),(1,0),(1,1) form window 0.
	s := NewSwinBlock("sw", 1, 1, 4, 4, 2, false, 3)
	x := tensor.New(1, 16, 1)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	p := s.partition(tensor.New(16, 4, 1), x)
	want := []float64{0, 1, 4, 5} // first window's tokens
	for i, w := range want {
		if p.At(0, i, 0) != w {
			t.Fatalf("window 0 = %v, want %v", p.Data[:4], want)
		}
	}
}

func TestSwinBlockGradients(t *testing.T) {
	for _, shift := range []bool{false, true} {
		s := NewSwinBlock("sw", 8, 2, 4, 4, 2, shift, 4)
		rng := tensor.NewRNG(5)
		x := tensor.Randn(rng, 1, 16, 8)
		r := tensor.Randn(rng, 1, 16, 8)
		loss := func() float64 {
			y := s.Forward(x)
			sum := 0.0
			for i := range y.Data {
				sum += y.Data[i] * r.Data[i]
			}
			return sum
		}
		loss()
		ZeroGrads(s.Params())
		dx := s.Backward(r)
		checkGrad(t, "swin/x", x, dx, loss, 1e-4)
	}
}

func TestSwinWindowLocality(t *testing.T) {
	// Without shift, perturbing a token must not change outputs in other
	// windows (attention is window-local; norms and MLP are token-local).
	s := NewSwinBlock("sw", 8, 2, 4, 4, 2, false, 6)
	rng := tensor.NewRNG(7)
	x := tensor.Randn(rng, 1, 16, 8)
	y1 := s.Forward(x).Clone()
	x2 := x.Clone()
	x2.Set(x2.At(0, 0, 0)+1, 0, 0, 0) // perturb token 0 (window 0)
	y2 := s.Forward(x2)
	// Token 10 = grid (2,2), a different window: unchanged.
	for e := 0; e < 8; e++ {
		if y1.At(0, 10, e) != y2.At(0, 10, e) {
			t.Fatal("perturbation leaked across windows without shift")
		}
	}
	// Token 1 (same window) must change.
	changed := false
	for e := 0; e < 8; e++ {
		if y1.At(0, 1, e) != y2.At(0, 1, e) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("perturbation must affect its own window")
	}
}

func TestSwinShiftConnectsWindows(t *testing.T) {
	// With shift, windows straddle the unshifted boundaries, so a
	// perturbation can cross them.
	s := NewSwinBlock("sw", 8, 2, 4, 4, 2, true, 8)
	rng := tensor.NewRNG(9)
	x := tensor.Randn(rng, 1, 16, 8)
	y1 := s.Forward(x).Clone()
	x2 := x.Clone()
	x2.Set(x2.At(0, 5, 0)+1, 0, 5, 0) // grid (1,1): inside a shifted window spanning old windows
	y2 := s.Forward(x2)
	crossed := false
	for tok := 0; tok < 16; tok++ {
		// Tokens outside the unshifted window of token 5 (tokens 0,1,4,5).
		if tok == 0 || tok == 1 || tok == 4 || tok == 5 {
			continue
		}
		for e := 0; e < 8; e++ {
			if y1.At(0, tok, e) != y2.At(0, tok, e) {
				crossed = true
			}
		}
	}
	if !crossed {
		t.Fatal("shifted windows must connect across unshifted boundaries")
	}
}

func TestSwinValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for indivisible grid")
		}
	}()
	NewSwinBlock("sw", 4, 2, 5, 4, 2, false, 1)
}
