package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// PosEmbed adds a learned positional embedding [T,E] to token sequences
// [B,T,E]. It encodes the spatial location of each patch in the original
// image (the "positional token" of the paper's Fig. 1).
type PosEmbed struct {
	Tokens, Embed int
	Table         *Param // [T, E]

	b int

	out  *tensor.Tensor // Forward output scratch
	iout *tensor.Tensor // Infer output scratch
}

// NewPosEmbed constructs a learned positional embedding initialized with
// small normal noise.
func NewPosEmbed(name string, tokens, embed int, seed int64) *PosEmbed {
	rng := tensor.NewRNG(seed)
	return &PosEmbed{
		Tokens: tokens,
		Embed:  embed,
		Table:  NewParam(name+".pos", tensor.RandnScaled(rng, 0.02, tokens, embed)),
	}
}

// Forward adds the table to every batch element of x [B,T,E].
func (p *PosEmbed) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[1] != p.Tokens || x.Shape[2] != p.Embed {
		panic(fmt.Sprintf("nn: PosEmbed.Forward want [B,%d,%d], got %v", p.Tokens, p.Embed, x.Shape))
	}
	p.b = x.Shape[0]
	p.out = tensor.EnsureShape(p.out, x.Shape...)
	return p.add(p.out, x)
}

// Infer adds the table without recording the batch extent a pending
// Backward depends on.
func (p *PosEmbed) Infer(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[1] != p.Tokens || x.Shape[2] != p.Embed {
		panic(fmt.Sprintf("nn: PosEmbed.Infer want [B,%d,%d], got %v", p.Tokens, p.Embed, x.Shape))
	}
	p.iout = tensor.EnsureShape(p.iout, x.Shape...)
	return p.add(p.iout, x)
}

// add writes x plus the broadcast table into out.
//
// dchag:hotpath — per-step embedding add; out is layer-owned scratch.
func (p *PosEmbed) add(out, x *tensor.Tensor) *tensor.Tensor {
	copy(out.Data, x.Data)
	n := p.Tokens * p.Embed
	for bi := 0; bi < x.Shape[0]; bi++ {
		dst := out.Data[bi*n : (bi+1)*n]
		for i, v := range p.Table.W.Data {
			dst[i] += v
		}
	}
	return out
}

// Backward accumulates the table gradient (summed over batch) and passes the
// gradient through unchanged.
func (p *PosEmbed) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := p.Tokens * p.Embed
	for bi := 0; bi < p.b; bi++ {
		src := grad.Data[bi*n : (bi+1)*n]
		for i, v := range src {
			p.Table.Grad.Data[i] += v
		}
	}
	return grad
}

// Params returns the embedding table.
func (p *PosEmbed) Params() []*Param { return []*Param{p.Table} }

// ChannelEmbed adds a learned per-channel ID embedding [C,E] to channel
// token stacks [B,C,T,E], broadcast over batch and spatial tokens. It is the
// "channel ID token" of the paper's Fig. 1, and like PatchEmbed it may own
// only a shard [ChLo,ChHi) of the global channel range with globally-seeded
// rows.
type ChannelEmbed struct {
	ChLo, ChHi int
	Embed      int
	Table      *Param // [localC, E]

	b, t int

	out  *tensor.Tensor // Forward output scratch
	iout *tensor.Tensor // Infer output scratch
}

// NewChannelEmbed constructs an embedding over all channels [0, channels).
func NewChannelEmbed(name string, channels, embed int, seed int64) *ChannelEmbed {
	return NewChannelEmbedShard(name, 0, channels, embed, seed)
}

// NewChannelEmbedShard constructs an embedding owning global channels
// [chLo, chHi); row c is drawn from SubSeed(seed, chLo+c).
func NewChannelEmbedShard(name string, chLo, chHi, embed int, seed int64) *ChannelEmbed {
	localC := chHi - chLo
	if localC <= 0 {
		panic(fmt.Sprintf("nn: invalid channel shard [%d,%d)", chLo, chHi))
	}
	tab := tensor.New(localC, embed)
	for c := 0; c < localC; c++ {
		rng := tensor.NewRNG(SubSeed(seed, chLo+c))
		row := tensor.RandnScaled(rng, 0.02, embed)
		copy(tab.Data[c*embed:(c+1)*embed], row.Data)
	}
	return &ChannelEmbed{
		ChLo: chLo, ChHi: chHi, Embed: embed,
		Table: NewParam(name+".chan", tab),
	}
}

// LocalChannels returns the number of channels this shard owns.
func (c *ChannelEmbed) LocalChannels() int { return c.ChHi - c.ChLo }

// Forward adds the channel rows to x of shape [B, localC, T, E].
func (c *ChannelEmbed) Forward(x *tensor.Tensor) *tensor.Tensor {
	localC := c.LocalChannels()
	if len(x.Shape) != 4 || x.Shape[1] != localC || x.Shape[3] != c.Embed {
		panic(fmt.Sprintf("nn: ChannelEmbed.Forward want [B,%d,T,%d], got %v", localC, c.Embed, x.Shape))
	}
	c.b, c.t = x.Shape[0], x.Shape[2]
	c.out = tensor.EnsureShape(c.out, x.Shape...)
	return c.add(c.out, x)
}

// Infer adds the channel rows without recording the batch/token extents a
// pending Backward depends on.
func (c *ChannelEmbed) Infer(x *tensor.Tensor) *tensor.Tensor {
	localC := c.LocalChannels()
	if len(x.Shape) != 4 || x.Shape[1] != localC || x.Shape[3] != c.Embed {
		panic(fmt.Sprintf("nn: ChannelEmbed.Infer want [B,%d,T,%d], got %v", localC, c.Embed, x.Shape))
	}
	c.iout = tensor.EnsureShape(c.iout, x.Shape...)
	return c.add(c.iout, x)
}

// add writes x plus the broadcast channel rows into out.
//
// dchag:hotpath — per-step embedding add; out is layer-owned scratch.
func (c *ChannelEmbed) add(out, x *tensor.Tensor) *tensor.Tensor {
	localC := c.LocalChannels()
	b, t := x.Shape[0], x.Shape[2]
	copy(out.Data, x.Data)
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < localC; ci++ {
			row := c.Table.W.Data[ci*c.Embed : (ci+1)*c.Embed]
			for ti := 0; ti < t; ti++ {
				dst := out.Data[((bi*localC+ci)*t+ti)*c.Embed : ((bi*localC+ci)*t+ti+1)*c.Embed]
				for i, v := range row {
					dst[i] += v
				}
			}
		}
	}
	return out
}

// Backward accumulates per-channel row gradients (summed over batch and
// tokens) and passes the gradient through unchanged.
func (c *ChannelEmbed) Backward(grad *tensor.Tensor) *tensor.Tensor {
	localC := c.LocalChannels()
	for bi := 0; bi < c.b; bi++ {
		for ci := 0; ci < localC; ci++ {
			dst := c.Table.Grad.Data[ci*c.Embed : (ci+1)*c.Embed]
			for ti := 0; ti < c.t; ti++ {
				src := grad.Data[((bi*localC+ci)*c.t+ti)*c.Embed : ((bi*localC+ci)*c.t+ti+1)*c.Embed]
				for i, v := range src {
					dst[i] += v
				}
			}
		}
	}
	return grad
}

// Params returns the embedding table.
func (c *ChannelEmbed) Params() []*Param { return []*Param{c.Table} }

// MetaToken prepends M learned metadata tokens to a sequence, modeling the
// paper's metadata token (time / geolocation context in weather FMs).
type MetaToken struct {
	Count, Embed int
	Table        *Param // [M, E]

	b, t int

	out  *tensor.Tensor // Forward output scratch
	iout *tensor.Tensor // Infer output scratch
	dx   *tensor.Tensor // Backward scratch
}

// NewMetaToken constructs M learned tokens.
func NewMetaToken(name string, count, embed int, seed int64) *MetaToken {
	rng := tensor.NewRNG(seed)
	return &MetaToken{
		Count: count,
		Embed: embed,
		Table: NewParam(name+".meta", tensor.RandnScaled(rng, 0.02, count, embed)),
	}
}

// Forward prepends the tokens: [B,T,E] -> [B,M+T,E].
func (m *MetaToken) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[2] != m.Embed {
		panic(fmt.Sprintf("nn: MetaToken.Forward want [B,T,%d], got %v", m.Embed, x.Shape))
	}
	m.b, m.t = x.Shape[0], x.Shape[1]
	m.out = tensor.EnsureShape(m.out, x.Shape[0], m.Count+x.Shape[1], m.Embed)
	return m.prepend(m.out, x)
}

// Infer prepends the tokens without recording the extents a pending
// Backward depends on.
func (m *MetaToken) Infer(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[2] != m.Embed {
		panic(fmt.Sprintf("nn: MetaToken.Infer want [B,T,%d], got %v", m.Embed, x.Shape))
	}
	m.iout = tensor.EnsureShape(m.iout, x.Shape[0], m.Count+x.Shape[1], m.Embed)
	return m.prepend(m.iout, x)
}

// prepend writes the learned tokens followed by x into out.
//
// dchag:hotpath — per-step token prepend; out is layer-owned scratch.
func (m *MetaToken) prepend(out, x *tensor.Tensor) *tensor.Tensor {
	b, t := x.Shape[0], x.Shape[1]
	for bi := 0; bi < b; bi++ {
		copy(out.Data[bi*(m.Count+t)*m.Embed:], m.Table.W.Data)
		copy(out.Data[(bi*(m.Count+t)+m.Count)*m.Embed:], x.Data[bi*t*m.Embed:(bi+1)*t*m.Embed])
	}
	return out
}

// Backward splits the gradient: token rows accumulate into the table, the
// rest is returned as the input gradient.
func (m *MetaToken) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(grad.Shape) != 3 || grad.Shape[1] != m.Count+m.t {
		panic(fmt.Sprintf("nn: MetaToken.Backward want [B,%d,%d], got %v", m.Count+m.t, m.Embed, grad.Shape))
	}
	m.dx = tensor.EnsureShape(m.dx, m.b, m.t, m.Embed)
	for bi := 0; bi < m.b; bi++ {
		src := grad.Data[bi*(m.Count+m.t)*m.Embed : (bi+1)*(m.Count+m.t)*m.Embed]
		for i := 0; i < m.Count*m.Embed; i++ {
			m.Table.Grad.Data[i] += src[i]
		}
		copy(m.dx.Data[bi*m.t*m.Embed:(bi+1)*m.t*m.Embed], src[m.Count*m.Embed:])
	}
	return m.dx
}

// Params returns the token table.
func (m *MetaToken) Params() []*Param { return []*Param{m.Table} }
