package nn

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestSplitMergeHeadsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		b := 1 + int(rng.Int31n(3))
		tt := 1 + int(rng.Int31n(5))
		h := []int{1, 2, 4}[rng.Intn(3)]
		dh := 1 + int(rng.Int31n(4))
		x := tensor.Randn(rng, b, tt, h*dh)
		return tensor.MaxAbsDiff(MergeHeads(SplitHeads(x, h)), x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitHeadsLayout(t *testing.T) {
	// [1, 2 tokens, 4 embed] with 2 heads: head h should see dims [2h, 2h+1].
	x := tensor.FromSlice([]float64{0, 1, 2, 3, 10, 11, 12, 13}, 1, 2, 4)
	s := SplitHeads(x, 2)
	if s.At(0, 0, 0, 0) != 0 || s.At(0, 0, 1, 1) != 11 || s.At(0, 1, 0, 0) != 2 || s.At(0, 1, 1, 1) != 13 {
		t.Fatalf("SplitHeads layout wrong: %v", s.Data)
	}
}

func TestSequentialChains(t *testing.T) {
	l1 := NewLinear("l1", 4, 8, 1)
	g := NewGELU()
	l2 := NewLinear("l2", 8, 2, 2)
	seq := NewSequential(l1, g, l2)
	if len(seq.Params()) != 4 {
		t.Fatalf("Params = %d, want 4", len(seq.Params()))
	}
	x := tensor.Randn(tensor.NewRNG(3), 5, 4)
	y := seq.Forward(x)
	want := l2.Forward(g.Forward(l1.Forward(x)))
	if tensor.MaxAbsDiff(y, want) > 1e-12 {
		t.Fatal("Sequential forward mismatch")
	}
	r := tensor.Randn(tensor.NewRNG(4), 5, 2)
	seq.Forward(x)
	dx := seq.Backward(r)
	if dx.Shape[0] != 5 || dx.Shape[1] != 4 {
		t.Fatalf("Backward shape = %v", dx.Shape)
	}
}

func TestPatchEmbedShardMatchesFullSlice(t *testing.T) {
	const (
		channels = 6
		imgH     = 4
		imgW     = 8
		patch    = 2
		embed    = 5
		seed     = 77
	)
	full := NewPatchEmbed("tok", channels, imgH, imgW, patch, embed, seed)
	rng := tensor.NewRNG(5)
	x := tensor.Randn(rng, 2, channels, imgH, imgW)
	yFull := full.Forward(x)

	// Shards [0,2), [2,5), [5,6) must reproduce the matching channel slices.
	bounds := [][2]int{{0, 2}, {2, 5}, {5, 6}}
	for _, bd := range bounds {
		shard := NewPatchEmbedShard("tok", bd[0], bd[1], imgH, imgW, patch, embed, seed)
		xs := tensor.SliceAxis(x, 1, bd[0], bd[1])
		ys := shard.Forward(xs)
		want := tensor.SliceAxis(yFull, 1, bd[0], bd[1])
		if tensor.MaxAbsDiff(ys, want) > 1e-12 {
			t.Fatalf("shard [%d,%d) output differs from full slice", bd[0], bd[1])
		}
	}
}

func TestChannelEmbedShardMatchesFullSlice(t *testing.T) {
	const (
		channels = 5
		embed    = 4
		seed     = 88
	)
	full := NewChannelEmbed("ch", channels, embed, seed)
	rng := tensor.NewRNG(6)
	x := tensor.Randn(rng, 2, channels, 3, embed)
	yFull := full.Forward(x)
	shard := NewChannelEmbedShard("ch", 2, 4, embed, seed)
	xs := tensor.SliceAxis(x, 1, 2, 4)
	ys := shard.Forward(xs)
	want := tensor.SliceAxis(yFull, 1, 2, 4)
	if tensor.MaxAbsDiff(ys, want) > 1e-12 {
		t.Fatal("channel-embed shard differs from full slice")
	}
}

func TestPatchEmbedTokenValues(t *testing.T) {
	// One channel, 2x2 image, patch 2 -> a single token equal to
	// patchvec @ W + b.
	p := NewPatchEmbed("tok", 1, 2, 2, 2, 3, 9)
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	y := p.Forward(x)
	if y.Shape[0] != 1 || y.Shape[1] != 1 || y.Shape[2] != 1 || y.Shape[3] != 3 {
		t.Fatalf("shape = %v", y.Shape)
	}
	for j := 0; j < 3; j++ {
		want := 0.0
		for i := 0; i < 4; i++ {
			want += x.Data[i] * p.Weight.W.At(0, i, j)
		}
		want += p.Bias.W.At(0, j)
		if math.Abs(y.Data[j]-want) > 1e-12 {
			t.Fatalf("token[%d] = %v, want %v", j, y.Data[j], want)
		}
	}
}

func TestMetaTokenPrepends(t *testing.T) {
	m := NewMetaToken("meta", 1, 2, 10)
	x := tensor.FromSlice([]float64{5, 6, 7, 8}, 1, 2, 2)
	y := m.Forward(x)
	if y.Shape[1] != 3 {
		t.Fatalf("shape = %v", y.Shape)
	}
	if y.At(0, 0, 0) != m.Table.W.At(0, 0) {
		t.Fatal("first token must be the meta token")
	}
	if y.At(0, 1, 0) != 5 || y.At(0, 2, 1) != 8 {
		t.Fatal("sequence tokens shifted incorrectly")
	}
}

func TestMaskedMSEEdgeCases(t *testing.T) {
	l := NewMaskedMSELoss()
	pred := tensor.Ones(1, 2, 3)
	target := tensor.Zeros(1, 2, 3)
	// All-zero mask: loss 0, zero grad.
	mask := tensor.Zeros(1, 2)
	if got := l.Forward(pred, target, mask); got != 0 {
		t.Fatalf("empty-mask loss = %v, want 0", got)
	}
	if g := l.Backward(); g.Norm2() != 0 {
		t.Fatal("empty-mask grad must be zero")
	}
	// Full mask equals plain MSE.
	mask = tensor.Ones(1, 2)
	plain := NewMSELoss()
	if math.Abs(l.Forward(pred, target, mask)-plain.Forward(pred, target)) > 1e-12 {
		t.Fatal("full-mask masked MSE must equal MSE")
	}
}

func TestLatWeightedRMSE(t *testing.T) {
	// Identical fields -> zero error.
	a := tensor.Ones(2, 4, 8)
	if LatWeightedRMSE(a, a) != 0 {
		t.Fatal("identical fields must give zero RMSE")
	}
	// Constant offset of d -> RMSE exactly d (weights normalized to mean 1).
	b := tensor.Full(3, 2, 4, 8)
	got := LatWeightedRMSE(a, b)
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("constant-offset RMSE = %v, want 2", got)
	}
}

func TestNumParams(t *testing.T) {
	l := NewLinear("l", 3, 4, 1)
	if NumParams(l.Params()) != 3*4+4 {
		t.Fatalf("NumParams = %d", NumParams(l.Params()))
	}
}

func TestSubSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := SubSeed(42, i)
		if seen[s] {
			t.Fatalf("subSeed collision at %d", i)
		}
		seen[s] = true
	}
	if SubSeed(1, 0) == SubSeed(2, 0) {
		t.Fatal("different base seeds must differ")
	}
}

func TestAttentionDeterministicInit(t *testing.T) {
	a1 := NewSelfAttention("a", 8, 2, 123)
	a2 := NewSelfAttention("a", 8, 2, 123)
	if tensor.MaxAbsDiff(a1.Wq.Weight.W, a2.Wq.Weight.W) != 0 {
		t.Fatal("same seed must give same init")
	}
	a3 := NewSelfAttention("a", 8, 2, 124)
	if tensor.MaxAbsDiff(a1.Wq.Weight.W, a3.Wq.Weight.W) == 0 {
		t.Fatal("different seeds must differ")
	}
}

func TestBackwardBeforeForwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLinear("l", 2, 2, 1).Backward(tensor.New(1, 2))
}

func TestRecomputeMatchesDirectBackward(t *testing.T) {
	// A recomputed block must produce identical outputs and gradients to the
	// plain block — even when its caches are clobbered between forward and
	// backward, which is exactly the situation recomputation exists for.
	rng := tensor.NewRNG(200)
	x := tensor.Randn(rng, 2, 3, 8)
	up := tensor.Randn(rng, 2, 3, 8)

	plain := NewTransformerBlock("blk", 8, 2, 201)
	wantY := plain.Forward(x)
	ZeroGrads(plain.Params())
	wantDx := plain.Backward(up)
	wantG := plain.Attn.Wq.Weight.Grad.Clone()

	wrapped := NewRecompute(NewTransformerBlock("blk", 8, 2, 201))
	y := wrapped.Forward(x)
	if tensor.MaxAbsDiff(y, wantY) != 0 {
		t.Fatal("recompute forward must match")
	}
	// Clobber the inner caches with an unrelated forward pass, as a real
	// activation-freeing implementation effectively would.
	wrapped.Inner.Forward(tensor.Randn(rng, 2, 3, 8))
	ZeroGrads(wrapped.Params())
	dx := wrapped.Backward(up)
	if diff := tensor.MaxAbsDiff(dx, wantDx); diff > 1e-12 {
		t.Fatalf("recompute dx differs by %g", diff)
	}
	inner := wrapped.Inner.(*TransformerBlock)
	if diff := tensor.MaxAbsDiff(inner.Attn.Wq.Weight.Grad, wantG); diff > 1e-12 {
		t.Fatalf("recompute param grad differs by %g", diff)
	}
}

func TestRecomputeBackwardBeforeForwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRecompute(NewGELU()).Backward(tensor.New(1))
}

func TestRecomputeInSequential(t *testing.T) {
	// Recompute satisfies Layer, so it slots into Sequential transparently.
	seq := NewSequential(
		NewRecompute(NewLinear("l1", 4, 8, 1)),
		NewGELU(),
		NewRecompute(NewLinear("l2", 8, 2, 2)),
	)
	x := tensor.Randn(tensor.NewRNG(3), 5, 4)
	y := seq.Forward(x)
	dx := seq.Backward(tensor.Ones(y.Shape...))
	if dx.Shape[0] != 5 || dx.Shape[1] != 4 {
		t.Fatalf("shape = %v", dx.Shape)
	}
}
