package nn

import (
	"math"

	"repro/internal/tensor"
)

// LayerNorm normalizes the last dimension of its input to zero mean and unit
// variance, then applies a learned affine transform (gamma, beta).
// Normalization statistics always run in float64, also under an F32
// inference dtype (the reductions are cheap and precision-critical).
type LayerNorm struct {
	Dim   int
	Eps   float64
	Gamma *Param // [Dim]
	Beta  *Param // [Dim]

	xhat   *tensor.Tensor // normalized input, cached for backward
	invStd []float64      // 1/sqrt(var+eps) per row
	shape  []int

	out  *tensor.Tensor // Forward output scratch
	iout *tensor.Tensor // Infer output scratch (separate so eval passes
	// never clobber a pending Backward's upstream activations)
	dx *tensor.Tensor // Backward scratch
}

// NewLayerNorm constructs a LayerNorm over the given dimension with
// gamma = 1 and beta = 0.
func NewLayerNorm(name string, dim int) *LayerNorm {
	return &LayerNorm{
		Dim:   dim,
		Eps:   1e-5,
		Gamma: NewParam(name+".gamma", tensor.Ones(dim)),
		Beta:  NewParam(name+".beta", tensor.New(dim)),
	}
}

// Forward normalizes over the last dimension.
func (l *LayerNorm) Forward(x *tensor.Tensor) *tensor.Tensor {
	mustLastDim("LayerNorm.Forward", x, l.Dim)
	x2, shape := foldLeading(x)
	l.shape = shape
	rows := x2.Shape[0]
	l.xhat = tensor.EnsureShape(l.xhat, rows, l.Dim)
	l.invStd = ensureFloats(l.invStd, rows)
	l.out = tensor.EnsureShape(l.out, rows, l.Dim)
	l.normalize(l.out, x2, true)
	return l.out.Reshape(shape...)
}

// Infer computes Forward's output without caching the normalized input or
// inverse standard deviations for backward.
func (l *LayerNorm) Infer(x *tensor.Tensor) *tensor.Tensor {
	mustLastDim("LayerNorm.Infer", x, l.Dim)
	x2, shape := foldLeading(x)
	l.iout = tensor.EnsureShape(l.iout, x2.Shape[0], l.Dim)
	l.normalize(l.iout, x2, false)
	return l.iout.Reshape(shape...)
}

// normalize writes the normalized, affine-transformed rows of x2 into out;
// with cache it also records xhat and invStd for backward.
//
// dchag:hotpath — per-token normalization loop, run twice per block per
// step.
func (l *LayerNorm) normalize(out, x2 *tensor.Tensor, cache bool) {
	rows := x2.Shape[0]
	n := l.Dim
	for r := 0; r < rows; r++ {
		row := x2.Data[r*n : (r+1)*n]
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(n)
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(n)
		inv := 1 / math.Sqrt(variance+l.Eps)
		o := out.Data[r*n : (r+1)*n]
		if cache {
			l.invStd[r] = inv
			xh := l.xhat.Data[r*n : (r+1)*n]
			for i, v := range row {
				h := (v - mean) * inv
				xh[i] = h
				o[i] = h*l.Gamma.W.Data[i] + l.Beta.W.Data[i]
			}
		} else {
			for i, v := range row {
				h := (v - mean) * inv
				o[i] = h*l.Gamma.W.Data[i] + l.Beta.W.Data[i]
			}
		}
	}
}

// Backward implements the standard layer-norm gradient:
//
//	dx = (1/n) * invStd * gamma ⊙ (n*dy' - sum(dy') - xhat * sum(dy' ⊙ xhat))
//
// where dy' = dy (per-element, before gamma scaling is folded in).
func (l *LayerNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	mustLastDim("LayerNorm.Backward", grad, l.Dim)
	if l.xhat == nil {
		panic("nn: LayerNorm.Backward before Forward")
	}
	g2, _ := foldLeading(grad)
	l.dx = tensor.EnsureShape(l.dx, g2.Shape[0], l.Dim)
	l.backward(l.dx, g2)
	return l.dx.Reshape(l.shape...)
}

// backward accumulates the gamma/beta gradients and writes dx.
//
// dchag:hotpath — per-token normalization backward loop.
func (l *LayerNorm) backward(dx, g2 *tensor.Tensor) {
	rows := g2.Shape[0]
	n := l.Dim
	for r := 0; r < rows; r++ {
		gy := g2.Data[r*n : (r+1)*n]
		xh := l.xhat.Data[r*n : (r+1)*n]
		// Parameter gradients.
		for i := 0; i < n; i++ {
			l.Gamma.Grad.Data[i] += gy[i] * xh[i]
			l.Beta.Grad.Data[i] += gy[i]
		}
		// dyg = dy * gamma.
		sum1, sum2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			dyg := gy[i] * l.Gamma.W.Data[i]
			sum1 += dyg
			sum2 += dyg * xh[i]
		}
		inv := l.invStd[r]
		d := dx.Data[r*n : (r+1)*n]
		for i := 0; i < n; i++ {
			dyg := gy[i] * l.Gamma.W.Data[i]
			d[i] = inv / float64(n) * (float64(n)*dyg - sum1 - xh[i]*sum2)
		}
	}
}

// Params returns gamma and beta.
func (l *LayerNorm) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

// ensureFloats returns a float64 slice of length n, reusing s's backing
// array when it is large enough.
func ensureFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}
