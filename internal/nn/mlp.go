package nn

import "repro/internal/tensor"

// MLP is the transformer feed-forward block: Linear -> GELU -> Linear with a
// hidden dimension typically 4x the embedding dimension.
type MLP struct {
	Fc1, Fc2 *Linear
	Act      *GELU
}

// NewMLP constructs a two-layer feed-forward network.
func NewMLP(name string, embed, hidden int, seed int64) *MLP {
	return &MLP{
		Fc1: NewLinear(name+".fc1", embed, hidden, SubSeed(seed, 0)),
		Fc2: NewLinear(name+".fc2", hidden, embed, SubSeed(seed, 1)),
		Act: NewGELU(),
	}
}

// SetInferDType selects the arithmetic of the no-grad Infer path for both
// linears.
func (m *MLP) SetInferDType(dt tensor.DType) {
	m.Fc1.SetInferDType(dt)
	m.Fc2.SetInferDType(dt)
}

// Forward applies fc2(gelu(fc1(x))).
func (m *MLP) Forward(x *tensor.Tensor) *tensor.Tensor {
	return m.Fc2.Forward(m.Act.Forward(m.Fc1.Forward(x)))
}

// Infer applies fc2(gelu(fc1(x))) through the no-grad fast paths.
func (m *MLP) Infer(x *tensor.Tensor) *tensor.Tensor {
	return m.Fc2.Infer(m.Act.Infer(m.Fc1.Infer(x)))
}

// Backward back-propagates through both linears and the activation.
func (m *MLP) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return m.Fc1.Backward(m.Act.Backward(m.Fc2.Backward(grad)))
}

// Params returns both linear layers' parameters.
func (m *MLP) Params() []*Param {
	return append(m.Fc1.Params(), m.Fc2.Params()...)
}
