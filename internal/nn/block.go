package nn

import "repro/internal/tensor"

// TransformerBlock is a pre-norm ViT block:
//
//	x = x + Attn(LN1(x))
//	x = x + MLP(LN2(x))
type TransformerBlock struct {
	Embed, Heads int
	Norm1, Norm2 *LayerNorm
	Attn         *SelfAttention
	FFN          *MLP
}

// NewTransformerBlock constructs a pre-norm transformer block with an MLP
// hidden dimension of 4x embed.
func NewTransformerBlock(name string, embed, heads int, seed int64) *TransformerBlock {
	return &TransformerBlock{
		Embed: embed,
		Heads: heads,
		Norm1: NewLayerNorm(name+".norm1", embed),
		Norm2: NewLayerNorm(name+".norm2", embed),
		Attn:  NewSelfAttention(name+".attn", embed, heads, SubSeed(seed, 0)),
		FFN:   NewMLP(name+".mlp", embed, 4*embed, SubSeed(seed, 1)),
	}
}

// Forward applies the block to x of shape [B,T,E].
func (b *TransformerBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := tensor.Add(x, b.Attn.Forward(b.Norm1.Forward(x)))
	return tensor.Add(h, b.FFN.Forward(b.Norm2.Forward(h)))
}

// Infer applies the block through the sublayers' no-grad fast paths.
func (b *TransformerBlock) Infer(x *tensor.Tensor) *tensor.Tensor {
	h := tensor.Add(x, b.Attn.Infer(b.Norm1.Infer(x)))
	return tensor.Add(h, b.FFN.Infer(b.Norm2.Infer(h)))
}

// Backward back-propagates through both residual branches.
func (b *TransformerBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// Second residual: dh = grad + dLN2->MLP path.
	dh := tensor.Add(grad, b.Norm2.Backward(b.FFN.Backward(grad)))
	// First residual: dx = dh + dLN1->Attn path.
	return tensor.Add(dh, b.Norm1.Backward(b.Attn.Backward(dh)))
}

// Params returns the block's parameters.
func (b *TransformerBlock) Params() []*Param {
	var ps []*Param
	ps = append(ps, b.Norm1.Params()...)
	ps = append(ps, b.Attn.Params()...)
	ps = append(ps, b.Norm2.Params()...)
	ps = append(ps, b.FFN.Params()...)
	return ps
}
