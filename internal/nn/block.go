package nn

import "repro/internal/tensor"

// TransformerBlock is a pre-norm ViT block:
//
//	x = x + Attn(LN1(x))
//	x = x + MLP(LN2(x))
type TransformerBlock struct {
	Embed, Heads int
	Norm1, Norm2 *LayerNorm
	Attn         *SelfAttention
	FFN          *MLP

	h, out *tensor.Tensor // residual scratch (forward)
	dh, dx *tensor.Tensor // residual scratch (backward)
}

// NewTransformerBlock constructs a pre-norm transformer block with an MLP
// hidden dimension of 4x embed.
func NewTransformerBlock(name string, embed, heads int, seed int64) *TransformerBlock {
	return &TransformerBlock{
		Embed: embed,
		Heads: heads,
		Norm1: NewLayerNorm(name+".norm1", embed),
		Norm2: NewLayerNorm(name+".norm2", embed),
		Attn:  NewSelfAttention(name+".attn", embed, heads, SubSeed(seed, 0)),
		FFN:   NewMLP(name+".mlp", embed, 4*embed, SubSeed(seed, 1)),
	}
}

// SetInferDType selects the arithmetic of the no-grad Infer path for the
// attention and MLP sublayers; the layer norms always run float64.
func (b *TransformerBlock) SetInferDType(dt tensor.DType) {
	b.Attn.SetInferDType(dt)
	b.FFN.SetInferDType(dt)
}

// Forward applies the block to x of shape [B,T,E].
//
// dchag:hotpath — residual adds run destination-passing into block-owned
// scratch.
func (b *TransformerBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	b.h = tensor.EnsureShape(b.h, x.Shape...)
	tensor.AddInto(b.h, x, b.Attn.Forward(b.Norm1.Forward(x)))
	b.out = tensor.EnsureShape(b.out, x.Shape...)
	return tensor.AddInto(b.out, b.h, b.FFN.Forward(b.Norm2.Forward(b.h)))
}

// Infer applies the block through the sublayers' no-grad fast paths.
//
// dchag:hotpath — the serve dispatch loop runs this once per block per
// micro-batch.
func (b *TransformerBlock) Infer(x *tensor.Tensor) *tensor.Tensor {
	b.h = tensor.EnsureShape(b.h, x.Shape...)
	tensor.AddInto(b.h, x, b.Attn.Infer(b.Norm1.Infer(x)))
	b.out = tensor.EnsureShape(b.out, x.Shape...)
	return tensor.AddInto(b.out, b.h, b.FFN.Infer(b.Norm2.Infer(b.h)))
}

// Backward back-propagates through both residual branches.
//
// dchag:hotpath — per-step residual gradient adds.
func (b *TransformerBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// Second residual: dh = grad + dLN2->MLP path.
	b.dh = tensor.EnsureShape(b.dh, grad.Shape...)
	tensor.AddInto(b.dh, grad, b.Norm2.Backward(b.FFN.Backward(grad)))
	// First residual: dx = dh + dLN1->Attn path.
	b.dx = tensor.EnsureShape(b.dx, grad.Shape...)
	return tensor.AddInto(b.dx, b.dh, b.Norm1.Backward(b.Attn.Backward(b.dh)))
}

// Params returns the block's parameters.
func (b *TransformerBlock) Params() []*Param {
	var ps []*Param
	ps = append(ps, b.Norm1.Params()...)
	ps = append(ps, b.Attn.Params()...)
	ps = append(ps, b.Norm2.Params()...)
	ps = append(ps, b.FFN.Params()...)
	return ps
}
