package nn

import (
	"math"

	"repro/internal/tensor"
)

// GELU applies the Gaussian Error Linear Unit using the tanh approximation
// used by most transformer implementations.
type GELU struct {
	x *tensor.Tensor
}

// NewGELU returns a GELU activation layer.
func NewGELU() *GELU { return &GELU{} }

const geluC = 0.7978845608028654 // sqrt(2/pi)

// Forward applies GELU elementwise.
func (g *GELU) Forward(x *tensor.Tensor) *tensor.Tensor {
	g.x = x
	return tensor.Apply(x, geluScalar)
}

func geluScalar(v float64) float64 {
	return 0.5 * v * (1 + math.Tanh(geluC*(v+0.044715*v*v*v)))
}

func geluGradScalar(v float64) float64 {
	u := geluC * (v + 0.044715*v*v*v)
	t := math.Tanh(u)
	du := geluC * (1 + 3*0.044715*v*v)
	return 0.5*(1+t) + 0.5*v*(1-t*t)*du
}

// Infer applies GELU without caching the input for backward.
func (g *GELU) Infer(x *tensor.Tensor) *tensor.Tensor {
	return tensor.Apply(x, geluScalar)
}

// Backward multiplies the upstream gradient by GELU'(x).
func (g *GELU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if g.x == nil {
		panic("nn: GELU.Backward before Forward")
	}
	out := tensor.New(grad.Shape...)
	for i := range grad.Data {
		out.Data[i] = grad.Data[i] * geluGradScalar(g.x.Data[i])
	}
	return out
}

// Params returns nil; GELU has no parameters.
func (g *GELU) Params() []*Param { return nil }

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies ReLU elementwise.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	r.mask = make([]bool, len(x.Data))
	out := tensor.New(x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		}
	}
	return out
}

// Backward zeroes the gradient where the forward input was non-positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	out := tensor.New(grad.Shape...)
	for i, v := range grad.Data {
		if r.mask[i] {
			out.Data[i] = v
		}
	}
	return out
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }
