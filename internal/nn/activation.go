package nn

import (
	"math"

	"repro/internal/tensor"
)

// GELU applies the Gaussian Error Linear Unit using the tanh approximation
// used by most transformer implementations.
type GELU struct {
	x *tensor.Tensor

	out  *tensor.Tensor // Forward output scratch
	iout *tensor.Tensor // Infer output scratch
	dx   *tensor.Tensor // Backward scratch
}

// NewGELU returns a GELU activation layer.
func NewGELU() *GELU { return &GELU{} }

const geluC = 0.7978845608028654 // sqrt(2/pi)

// Forward applies GELU elementwise.
//
// dchag:hotpath — elementwise activation inside every MLP, every step.
func (g *GELU) Forward(x *tensor.Tensor) *tensor.Tensor {
	g.x = x
	g.out = tensor.EnsureShape(g.out, x.Shape...)
	return tensor.ApplyInto(g.out, x, geluScalar)
}

func geluScalar(v float64) float64 {
	return 0.5 * v * (1 + math.Tanh(geluC*(v+0.044715*v*v*v)))
}

func geluGradScalar(v float64) float64 {
	u := geluC * (v + 0.044715*v*v*v)
	t := math.Tanh(u)
	du := geluC * (1 + 3*0.044715*v*v)
	return 0.5*(1+t) + 0.5*v*(1-t*t)*du
}

// Infer applies GELU without caching the input for backward.
//
// dchag:hotpath — the serve dispatch loop runs this once per MLP per
// micro-batch.
func (g *GELU) Infer(x *tensor.Tensor) *tensor.Tensor {
	g.iout = tensor.EnsureShape(g.iout, x.Shape...)
	return tensor.ApplyInto(g.iout, x, geluScalar)
}

// Backward multiplies the upstream gradient by GELU'(x).
//
// dchag:hotpath — elementwise activation gradient, every step.
func (g *GELU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if g.x == nil {
		panic("nn: GELU.Backward before Forward")
	}
	g.dx = tensor.EnsureShape(g.dx, grad.Shape...)
	for i := range grad.Data {
		g.dx.Data[i] = grad.Data[i] * geluGradScalar(g.x.Data[i])
	}
	return g.dx
}

// Params returns nil; GELU has no parameters.
func (g *GELU) Params() []*Param { return nil }

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	mask []bool

	out *tensor.Tensor
	dx  *tensor.Tensor
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies ReLU elementwise.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	if cap(r.mask) >= len(x.Data) {
		r.mask = r.mask[:len(x.Data)]
	} else {
		r.mask = make([]bool, len(x.Data))
	}
	r.out = tensor.EnsureShape(r.out, x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			r.out.Data[i] = v
			r.mask[i] = true
		} else {
			r.out.Data[i] = 0
			r.mask[i] = false
		}
	}
	return r.out
}

// Backward zeroes the gradient where the forward input was non-positive.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward before Forward")
	}
	r.dx = tensor.EnsureShape(r.dx, grad.Shape...)
	for i, v := range grad.Data {
		if r.mask[i] {
			r.dx.Data[i] = v
		} else {
			r.dx.Data[i] = 0
		}
	}
	return r.dx
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }
