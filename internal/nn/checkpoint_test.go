package nn

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	src := NewTransformerBlock("blk", 8, 2, 1)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	// A differently-seeded twin must converge to the source after loading.
	dst := NewTransformerBlock("blk", 8, 2, 99)
	if ParamsEqual(src.Params(), dst.Params(), 0) {
		t.Fatal("differently seeded blocks should differ before loading")
	}
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	if !ParamsEqual(src.Params(), dst.Params(), 0) {
		t.Fatal("loaded parameters must match saved ones exactly")
	}
	// And produce identical outputs.
	x := tensor.Randn(tensor.NewRNG(2), 1, 3, 8)
	if tensor.MaxAbsDiff(src.Forward(x), dst.Forward(x)) != 0 {
		t.Fatal("forward passes must agree after checkpoint restore")
	}
}

func TestCheckpointMissingParam(t *testing.T) {
	a := NewLinear("a", 2, 2, 1)
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	b := NewLinear("b", 2, 2, 1) // different names
	err := LoadParams(&buf, b.Params())
	if err == nil || !strings.Contains(err.Error(), "missing parameter") {
		t.Fatalf("want missing-parameter error, got %v", err)
	}
}

func TestCheckpointShapeMismatch(t *testing.T) {
	a := NewLinear("l", 2, 2, 1)
	var buf bytes.Buffer
	if err := SaveParams(&buf, a.Params()); err != nil {
		t.Fatal(err)
	}
	b := NewLinear("l", 2, 3, 1)
	err := LoadParams(&buf, b.Params())
	if err == nil || !strings.Contains(err.Error(), "shape") {
		t.Fatalf("want shape error, got %v", err)
	}
}

func TestCheckpointUnknownExtraParam(t *testing.T) {
	a := NewLinear("l", 2, 2, 1)
	extra := NewParam("ghost", tensor.New(1))
	var buf bytes.Buffer
	if err := SaveParams(&buf, append(a.Params(), extra)); err != nil {
		t.Fatal(err)
	}
	err := LoadParams(&buf, a.Params())
	if err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Fatalf("want unknown-parameter error, got %v", err)
	}
}

func TestCheckpointCorruptStream(t *testing.T) {
	a := NewLinear("l", 2, 2, 1)
	err := LoadParams(strings.NewReader("not a checkpoint"), a.Params())
	if err == nil {
		t.Fatal("want decode error")
	}
}

func TestParamsEqualTolerance(t *testing.T) {
	a := NewLinear("l", 2, 2, 1)
	b := NewLinear("l", 2, 2, 1)
	b.Weight.W.Data[0] += 1e-6
	if ParamsEqual(a.Params(), b.Params(), 0) {
		t.Fatal("exact comparison should fail")
	}
	if !ParamsEqual(a.Params(), b.Params(), 1e-3) {
		t.Fatal("tolerant comparison should pass")
	}
	if ParamsEqual(a.Params(), b.Params()[:1], 1) {
		t.Fatal("length mismatch should fail")
	}
}

func TestLoadParamsReportsAllErrors(t *testing.T) {
	// One load must surface the full checkpoint/model drift: every missing,
	// unknown, and shape-mismatched parameter in a single joined error.
	saved := []*Param{
		NewParam("shared.ok", tensor.Full(1, 2)),
		NewParam("shared.shape", tensor.New(2, 3)),
		NewParam("only.in.checkpoint", tensor.New(1)),
	}
	var buf bytes.Buffer
	if err := SaveParams(&buf, saved); err != nil {
		t.Fatal(err)
	}
	target := []*Param{
		NewParam("shared.ok", tensor.Full(7, 2)),
		NewParam("shared.shape", tensor.New(3, 2)),
		NewParam("only.in.model", tensor.New(1)),
	}
	err := LoadParams(&buf, target)
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{
		`parameter "shared.shape" shape`,
		`missing parameter "only.in.model"`,
		`unknown parameter "only.in.checkpoint"`,
	} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	// No partial restore: even the matching parameter stays untouched when
	// the checkpoint as a whole does not match.
	if target[0].W.Data[0] != 7 {
		t.Fatal("partial restore on error")
	}
}

func TestMarkShardValidatesSlice(t *testing.T) {
	p := NewParam("w", tensor.New(2, 3))
	p.MarkShard("w.logical", 0, []int{6, 3}, 2, 4)
	if p.LogicalKey() != "w.logical" {
		t.Fatalf("LogicalKey = %q", p.LogicalKey())
	}
	if got := p.FullShape(); got[0] != 6 || got[1] != 3 {
		t.Fatalf("FullShape = %v", got)
	}
	whole := NewParam("u", tensor.New(4))
	if whole.LogicalKey() != "u" || whole.FullShape()[0] != 4 {
		t.Fatal("whole params report their own name and shape")
	}
	for _, bad := range []func(){
		func() { NewParam("w", tensor.New(2, 3)).MarkShard("l", 2, []int{6, 3}, 0, 2) }, // axis range
		func() { NewParam("w", tensor.New(2, 3)).MarkShard("l", 0, []int{6, 3}, 4, 8) }, // bounds
		func() { NewParam("w", tensor.New(2, 3)).MarkShard("l", 0, []int{6, 3}, 0, 3) }, // wrong width
		func() { NewParam("w", tensor.New(2, 3)).MarkShard("l", 0, []int{6, 4}, 0, 2) }, // wrong trailing dim
		func() { NewParam("w", tensor.New(2, 3)).MarkShard("l", 0, []int{6}, 0, 2) },    // rank mismatch
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid MarkShard must panic")
				}
			}()
			bad()
		}()
	}
}
