package train

import (
	"repro/internal/dist"
	"repro/internal/hw"
)

// SimulatedCommSeconds prices the communication a finished mesh run (e.g.
// Hybrid) actually recorded against the hw machine model: each axis's
// traffic moves through its groups' placement-determined links — intra-node
// Infinity Fabric for node-local groups, the per-GCD Slingshot share once a
// group's ring crosses nodes. It returns the per-axis times (indexed by
// dist.Axis) and their sum.
//
// This is the measured-side counterpart of the analytic simulator in
// internal/perfmodel: the perfmodel prices the collectives a strategy
// *should* issue, while this prices the bytes a functional run *did* put on
// the wire, so tests can hold the two against each other.
func SimulatedCommSeconds(m *dist.Mesh, machine hw.Machine) (perAxis [dist.NumAxes]float64, total float64) {
	for _, a := range dist.Axes {
		perAxis[a] = m.AxisWireSeconds(machine, a)
		total += perAxis[a]
	}
	return perAxis, total
}
