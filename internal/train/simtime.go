package train

import (
	"repro/internal/dist"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

// SimulatedCommSeconds prices the communication a finished mesh run (e.g.
// Hybrid) actually recorded against the hw machine model: each axis's
// traffic moves through its groups' placement-determined links — intra-node
// Infinity Fabric for node-local groups, the per-GCD Slingshot share once a
// group's ring crosses nodes. It returns the per-axis times (indexed by
// dist.Axis) and their sum.
//
// This is the measured-side counterpart of the analytic simulator in
// internal/perfmodel: the perfmodel prices the collectives a strategy
// *should* issue, while this prices the bytes a functional run *did* put on
// the wire, so tests can hold the two against each other.
func SimulatedCommSeconds(m *dist.Mesh, machine hw.Machine) (perAxis [dist.NumAxes]float64, total float64) {
	for _, a := range dist.Axes {
		perAxis[a] = m.AxisWireSeconds(machine, a)
		total += perAxis[a]
	}
	return perAxis, total
}

// SimulatedStepSeconds composes a measured run's per-axis wire times with a
// compute-time estimate under the overlap model: each axis's discipline
// (perfmodel.Overlap — FSDP prefetch, DP gradient buckets, TP on the
// critical path) hides what it can behind the compute budget, and the step
// time is compute plus the exposed remainder. With the zero Overlap this
// degenerates to computeSeconds + SimulatedCommSeconds' total. It returns
// the per-axis exposed times (indexed by dist.Axis) and the step time.
func SimulatedStepSeconds(m *dist.Mesh, machine hw.Machine, computeSeconds float64, ov perfmodel.Overlap) (exposed [dist.NumAxes]float64, step float64) {
	perAxis, _ := SimulatedCommSeconds(m, machine)
	exposed = ov.Expose(computeSeconds, perAxis)
	step = computeSeconds
	for _, t := range exposed {
		step += t
	}
	return exposed, step
}
