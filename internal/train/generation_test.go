package train

import (
	"testing"

	"repro/internal/ckpt"
	"repro/internal/leakcheck"
)

// TestRunGenerationMatchesDistributed: a full-range generation at DP=1 must
// reproduce the Distributed trajectory bitwise — the generation loop is the
// same arithmetic (DP-size-1 gradient sync and loss reduction are exact
// identities), so the elastic path inherits every trajectory guarantee the
// plain path has.
func TestRunGenerationMatchesDistributed(t *testing.T) {
	leakcheck.Check(t)
	const q = 2
	a := tinyArch(4)
	opts := Options{Steps: 5, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 7, ClipNorm: 1}
	batch := fixedBatches(t, 4, opts.Steps, opts.Batch)

	distHist, _, err := Distributed(a, q, false, opts, batch)
	if err != nil {
		t.Fatal(err)
	}
	res := RunGeneration(a, opts, GenSpec{TP: q, DP: 1, Start: 0, End: opts.Steps}, batch)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	sameLoss(t, "generation vs distributed", distHist.Loss, res.Hist.Loss)
	for r, b := range res.Boundary {
		if b != opts.Steps {
			t.Fatalf("rank %d final boundary = %d, want %d", r, b, opts.Steps)
		}
	}
}

// TestGenerationBoundaryHandoffBitwise: splitting a run into two
// generations joined by an in-memory boundary assembly must be bitwise
// invisible — the core property behind zero-rollback elastic resizing.
func TestGenerationBoundaryHandoffBitwise(t *testing.T) {
	leakcheck.Check(t)
	const q = 2
	a := tinyArch(4)
	a.Partitions = q
	opts := Options{Steps: 6, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 11, ClipNorm: 1}
	batch := fixedBatches(t, 4, opts.Steps, opts.Batch)

	whole := RunGeneration(a, opts, GenSpec{TP: q, DP: 1, Start: 0, End: opts.Steps}, batch)
	if whole.Err != nil {
		t.Fatal(whole.Err)
	}

	first := RunGeneration(a, opts, GenSpec{TP: q, DP: 1, Start: 0, End: 3}, batch)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	ck, err := AssembleBoundary(a, q, 3, first.Trees)
	if err != nil {
		t.Fatal(err)
	}
	second := RunGeneration(a, opts, GenSpec{TP: q, DP: 1, Start: 3, End: opts.Steps, From: ck}, batch)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	joined := append(append([]float64(nil), first.Hist.Loss...), second.Hist.Loss...)
	sameLoss(t, "split vs whole", whole.Hist.Loss, joined)
	if second.Hist.Start != 3 {
		t.Fatalf("second generation start = %d", second.Hist.Start)
	}
}

// TestGenerationCheckpointRestartBitwise: a generation restored from a
// committed on-disk checkpoint continues exactly like the uninterrupted
// run — Resume semantics through the GenSpec.From path.
func TestGenerationCheckpointRestartBitwise(t *testing.T) {
	leakcheck.Check(t)
	const q = 2
	a := tinyArch(4)
	a.Partitions = q
	opts := Options{Steps: 6, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 3, ClipNorm: 1}
	batch := fixedBatches(t, 4, opts.Steps, opts.Batch)

	whole := RunGeneration(a, opts, GenSpec{TP: q, DP: 1, Start: 0, End: opts.Steps}, batch)
	if whole.Err != nil {
		t.Fatal(whole.Err)
	}

	saveOpts := opts
	saveOpts.CheckpointDir = t.TempDir()
	saveOpts.CheckpointEvery = 3
	saveOpts.CheckpointKeep = 4
	first := RunGeneration(a, saveOpts, GenSpec{TP: q, DP: 1, Start: 0, End: 3}, batch)
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	ck, err := ckpt.OpenLatest(saveOpts.CheckpointDir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Manifest.Step != 3 {
		t.Fatalf("latest checkpoint at step %d, want 3", ck.Manifest.Step)
	}
	second := RunGeneration(a, opts, GenSpec{TP: q, DP: 1, Start: 3, End: opts.Steps, From: ck}, batch)
	if second.Err != nil {
		t.Fatal(second.Err)
	}
	joined := append(append([]float64(nil), first.Hist.Loss...), second.Hist.Loss...)
	sameLoss(t, "checkpoint restart vs whole", whole.Hist.Loss, joined)
}

func TestRunGenerationValidation(t *testing.T) {
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 2, 2)
	opts := Options{Steps: 2, Batch: 2, LR: 1e-2}
	if res := RunGeneration(a, opts, GenSpec{TP: 0, DP: 1, Start: 0, End: 2}, batch); res.Err == nil {
		t.Fatal("want error for tp=0")
	}
	if res := RunGeneration(a, opts, GenSpec{TP: 2, DP: 1, Start: 1, End: 2}, batch); res.Err == nil {
		t.Fatal("want error for nonzero start without restore source")
	}
	if res := RunGeneration(a, opts, GenSpec{TP: 2, DP: 1, Start: 0, End: 3}, batch); res.Err == nil {
		t.Fatal("want error for end beyond Steps")
	}
	if res := RunGeneration(a, opts, GenSpec{TP: 2, DP: 3, Start: 0, End: 2}, batch); res.Err == nil {
		t.Fatal("want error for batch not divisible by dp")
	}
}
