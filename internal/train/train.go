// Package train provides the training loops of the paper's evaluation
// section: serial baselines on one (simulated) GPU and D-CHAG runs over a
// group of simulated ranks, with identical hyperparameters, shared masks and
// batches, and loss/RMSE tracking. It is the machinery behind the Fig. 11
// (hyperspectral MAE) and Fig. 12 (weather forecasting) reproductions.
package train

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// Options configures a training run.
type Options struct {
	// Steps is the number of optimizer steps.
	Steps int
	// Batch is the global batch size.
	Batch int
	// LR is the AdamW learning rate; WeightDecay its decoupled decay.
	LR, WeightDecay float64
	// ClipNorm caps the global gradient norm (0 disables).
	ClipNorm float64
	// MaskRatio enables the MAE objective when > 0; otherwise the run is an
	// image-to-image forecast.
	MaskRatio float64
	// AccumSteps accumulates gradients over this many micro-batches per
	// optimizer step (values < 2 disable accumulation). Batch index passed
	// to BatchFn is step*AccumSteps + microStep.
	AccumSteps int
	// Warmup enables a linear-warmup + cosine-decay LR schedule over Steps
	// when positive (Warmup = warmup step count); LR is then the peak rate.
	Warmup int
	// Seed drives masking; data order is the caller's responsibility.
	Seed int64
	// CheckpointDir, when set, enables shard-aware checkpointing to that
	// directory (internal/ckpt format): a checkpoint is written after the
	// final step, and additionally every CheckpointEvery steps.
	CheckpointDir string
	// CheckpointEvery writes a checkpoint every N optimizer steps when
	// positive (in addition to the final-step checkpoint).
	CheckpointEvery int
	// CheckpointKeep retains the newest K complete checkpoints when >= 2:
	// each save commits into a step-numbered subdirectory of CheckpointDir
	// (internal/ckpt retention layout) and older committed checkpoints
	// beyond K are pruned after the commit. 0 and 1 keep the historical
	// single-slot behavior — CheckpointDir itself is overwritten in place.
	// Resume finds the newest complete checkpoint under CheckpointDir in
	// either layout, so a crash mid-save resumes from the previous
	// committed one.
	CheckpointKeep int
	// Resume restores parameters, optimizer state, and the step count from
	// CheckpointDir before training, then continues with exact-resume
	// semantics: the mask RNG stream and LR schedule are fast-forwarded to
	// the restored step so the resumed run is step-for-step identical to an
	// uninterrupted one. Exactness requires BatchFn to be a pure function of
	// the step index returning Options.Batch rows (the repository's batch
	// functions are), since the fast-forward replays the mask stream at that
	// batch size.
	Resume bool
	// InitFrom restores parameter values only (no optimizer state, step 0)
	// from the given checkpoint directory — a warm start rather than a
	// resume. Mutually exclusive with Resume.
	InitFrom string
	// Trace, when non-nil, records per-rank step-phase spans (forward,
	// backward, grad-sync, optim, checkpoint) into the tracer: row = world
	// rank for the distributed loops, row 0 for the serial ones. The loops
	// additionally install comm observers so every collective of the run
	// appears as its own span. nil disables tracing at zero cost.
	Trace *obs.Tracer
}

// validateCheckpoint rejects inconsistent checkpoint options.
func (o Options) validateCheckpoint() error {
	if o.Resume && o.CheckpointDir == "" {
		return fmt.Errorf("train: Resume requires CheckpointDir")
	}
	if o.Resume && o.InitFrom != "" {
		return fmt.Errorf("train: Resume and InitFrom are mutually exclusive")
	}
	if o.CheckpointEvery > 0 && o.CheckpointDir == "" {
		return fmt.Errorf("train: CheckpointEvery requires CheckpointDir")
	}
	if o.CheckpointKeep < 0 {
		return fmt.Errorf("train: negative CheckpointKeep %d", o.CheckpointKeep)
	}
	if o.CheckpointKeep > 1 && o.CheckpointDir == "" {
		return fmt.Errorf("train: CheckpointKeep requires CheckpointDir")
	}
	return nil
}

// checkpointDue reports whether a checkpoint must be written after
// (0-indexed) step s.
func (o Options) checkpointDue(s int) bool {
	if o.CheckpointDir == "" {
		return false
	}
	return s == o.Steps-1 || (o.CheckpointEvery > 0 && (s+1)%o.CheckpointEvery == 0)
}

// accum normalizes AccumSteps.
func (o Options) accum() int {
	if o.AccumSteps < 1 {
		return 1
	}
	return o.AccumSteps
}

// schedule returns the run's LR schedule, or nil when Warmup is disabled.
func (o Options) schedule() *optim.CosineSchedule {
	if o.Warmup <= 0 {
		return nil
	}
	return &optim.CosineSchedule{
		BaseLR: o.LR, MinLR: o.LR / 10,
		WarmupSteps: o.Warmup, TotalSteps: o.Steps,
	}
}

// BatchFn materializes the global (input, target) batch for a step. For MAE
// target may equal input; for forecasting it is the future snapshot.
type BatchFn func(step int) (x, y *tensor.Tensor)

// History records per-step training metrics. Loss[i] is the loss of global
// step Start+i; Start is nonzero when the run resumed from a checkpoint.
type History struct {
	Start int
	Loss  []float64
}

// Last returns the final loss.
func (h History) Last() float64 {
	if len(h.Loss) == 0 {
		return 0
	}
	return h.Loss[len(h.Loss)-1]
}

// Serial trains a single-process model, returning the loss history. The
// same mask stream (Options.Seed) is used by Distributed so the two runs are
// comparable step for step, the comparison both Figs. 11 and 12 make. It
// panics on checkpoint I/O errors; callers using the checkpoint options
// should prefer SerialCheckpointed.
func Serial(m *model.FoundationModel, opts Options, batch BatchFn) History {
	hist, err := SerialCheckpointed(m, opts, batch)
	if err != nil {
		panic(fmt.Sprintf("train: %v", err))
	}
	return hist
}

// SerialCheckpointed is Serial with error reporting for the checkpoint
// options: Resume/InitFrom restore state before the first step, and
// CheckpointDir/CheckpointEvery write shard-aware checkpoints during the
// run. On resume the returned history covers only the steps this invocation
// ran (the saved step onward).
func SerialCheckpointed(m *model.FoundationModel, opts Options, batch BatchFn) (History, error) {
	var hist History
	if err := opts.validateCheckpoint(); err != nil {
		return hist, err
	}
	opt := optim.NewAdamW(m.Params(), opts.LR, opts.WeightDecay)
	maskRNG := tensor.NewRNG(opts.Seed)
	mse := nn.NewMSELoss()
	masked := nn.NewMaskedMSELoss()
	t := m.Arch.Tokens()
	accum := opts.accum()
	sched := opts.schedule()
	ck, err := openRestore(opts)
	if err != nil {
		return hist, err
	}
	start, err := restoreStart(ck, opts, m.Params(), opt, modelPartitions(m), stageKind(m))
	if err != nil {
		return hist, err
	}
	fastForwardMasks(maskRNG, start, opts, t)
	hist.Start = start
	row := opts.Trace.Rank(0)
	for s := start; s < opts.Steps; s++ {
		if sched != nil {
			sched.Apply(opt, s)
		}
		nn.ZeroGrads(m.Params())
		stepLoss := 0.0
		for a := 0; a < accum; a++ {
			x, y := batch(s*accum + a)
			target := model.Patchify(y, m.Arch.Patch)
			var grad *tensor.Tensor
			fwd := row.Begin("forward", "train")
			if opts.MaskRatio > 0 {
				mask := data.RandomMask(maskRNG, x.Shape[0], t, opts.MaskRatio)
				pred := m.Forward(x, mask)
				stepLoss += masked.Forward(pred, target, mask)
				grad = masked.Backward()
			} else {
				pred := m.Forward(x, nil)
				stepLoss += mse.Forward(pred, target)
				grad = mse.Backward()
			}
			fwd.End()
			bwd := row.Begin("backward", "train")
			m.Backward(grad)
			bwd.End()
		}
		if accum > 1 {
			for _, p := range m.Params() {
				tensor.ScaleInPlace(p.Grad, 1/float64(accum))
			}
		}
		optSpan := row.Begin("optim", "train")
		if opts.ClipNorm > 0 {
			optim.ClipGradNorm(m.Params(), opts.ClipNorm)
		}
		opt.Step()
		optSpan.End()
		hist.Loss = append(hist.Loss, stepLoss/float64(accum))
		if opts.checkpointDue(s) {
			ckSpan := row.Begin("ckpt", "train")
			dir := opts.checkpointTarget(s + 1)
			if err := writeShard(dir, 0, m.Params(), opt); err != nil {
				return hist, err
			}
			if err := writeManifest(dir, 1, modelPartitions(m), s+1, stageKind(m), m.Arch); err != nil {
				return hist, err
			}
			if err := opts.pruneCheckpoints(); err != nil {
				return hist, err
			}
			ckSpan.End()
		}
	}
	return hist, nil
}

// Distributed trains a D-CHAG model over p simulated ranks and returns rank
// 0's loss history plus the comm group (for traffic inspection). Every rank
// sees the full spatial batch but only its channel shard, exactly the
// paper's D-CHAG data layout; masks are drawn from the same stream as
// Serial.
func Distributed(arch model.Arch, p int, tpViT bool, opts Options, batch BatchFn) (History, *comm.Group, error) {
	var hist History
	if err := opts.validateCheckpoint(); err != nil {
		return hist, nil, err
	}
	// One read-only Checkpoint shared by all rank goroutines.
	ck, err := openRestore(opts)
	if err != nil {
		return hist, nil, err
	}
	g, err := comm.Run(p, func(c *comm.Communicator) error {
		row := opts.Trace.Rank(c.Rank())
		if row != nil {
			c.SetObserver(obs.NewCommObserver(row, "comm/dchag"))
		}
		m := model.NewDistributed(arch, c, tpViT)
		stage := m.Stage.(*model.DCHAGStage)
		lo, hi := stage.ChannelBounds()
		opt := optim.NewAdamW(m.Params(), opts.LR, opts.WeightDecay)
		maskRNG := tensor.NewRNG(opts.Seed)
		mse := nn.NewMSELoss()
		masked := nn.NewMaskedMSELoss()
		t := arch.Tokens()
		accum := opts.accum()
		sched := opts.schedule()
		start, err := restoreStart(ck, opts, m.Params(), opt, stage.D.Partitions, stageDCHAG)
		if err != nil {
			return err
		}
		fastForwardMasks(maskRNG, start, opts, t)
		if c.Rank() == 0 {
			hist.Start = start
		}
		for s := start; s < opts.Steps; s++ {
			if sched != nil {
				sched.Apply(opt, s)
			}
			nn.ZeroGrads(m.Params())
			stepLoss := 0.0
			for a := 0; a < accum; a++ {
				x, y := batch(s*accum + a)
				xShard := tensor.SliceAxis(x, 1, lo, hi)
				target := model.Patchify(y, arch.Patch)
				var grad *tensor.Tensor
				c.SetPhase("forward")
				fwd := row.Begin("forward", "train")
				if opts.MaskRatio > 0 {
					mask := data.RandomMask(maskRNG, x.Shape[0], t, opts.MaskRatio)
					pred := m.Forward(xShard, mask)
					stepLoss += masked.Forward(pred, target, mask)
					grad = masked.Backward()
				} else {
					pred := m.Forward(xShard, nil)
					stepLoss += mse.Forward(pred, target)
					grad = mse.Backward()
				}
				fwd.End()
				c.SetPhase("backward")
				bwd := row.Begin("backward", "train")
				m.Backward(grad)
				bwd.End()
			}
			if accum > 1 {
				for _, p := range m.Params() {
					tensor.ScaleInPlace(p.Grad, 1/float64(accum))
				}
			}
			optSpan := row.Begin("optim", "train")
			if opts.ClipNorm > 0 {
				c.SetPhase("optim")
				local, repl := m.PartitionParams()
				DistributedClipGradNorm(c, local, repl, opts.ClipNorm)
			}
			opt.Step()
			optSpan.End()
			if c.Rank() == 0 {
				hist.Loss = append(hist.Loss, stepLoss/float64(accum))
			}
			if opts.checkpointDue(s) {
				c.SetPhase("ckpt")
				ckSpan := row.Begin("ckpt", "train")
				dir := opts.checkpointTarget(s + 1)
				if err := writeShard(dir, c.Rank(), m.Params(), opt); err != nil {
					return err
				}
				c.Barrier() // every shard durable before the manifest commits
				if c.Rank() == 0 {
					if err := writeManifest(dir, c.Size(), stage.D.Partitions, s+1, stageDCHAG, m.Arch); err != nil {
						return err
					}
					if err := opts.pruneCheckpoints(); err != nil {
						return err
					}
				}
				c.Barrier() // checkpoint complete before training continues
				ckSpan.End()
			}
		}
		return nil
	})
	if err != nil {
		return History{}, g, fmt.Errorf("train: distributed run failed: %w", err)
	}
	return hist, g, nil
}

// DistributedClipGradNorm clips gradients to a global L2 norm computed over
// the whole logical model: local parameter shards are summed across the
// group (one scalar AllReduce) and replicated parameters — whose gradients
// are identical on every rank — are counted once. With the same maxNorm this
// reproduces the serial optim.ClipGradNorm trajectory. Returns the pre-clip
// global norm.
func DistributedClipGradNorm(c *comm.Communicator, local, replicated []*nn.Param, maxNorm float64) float64 {
	sumSq := func(ps []*nn.Param) float64 {
		s := 0.0
		for _, p := range ps {
			for _, g := range p.Grad.Data {
				s += g * g
			}
		}
		return s
	}
	total := c.AllReduceScalarSum(sumSq(local)) + sumSq(replicated)
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, ps := range [][]*nn.Param{local, replicated} {
			for _, p := range ps {
				for j := range p.Grad.Data {
					p.Grad.Data[j] *= scale
				}
			}
		}
	}
	return norm
}

// EvalForecastRMSE evaluates a forecast model on held-out (x, y) pairs and
// returns the latitude-weighted RMSE per requested channel index (Z500,
// T850, U10 in the paper's Fig. 12). The model must see the channel shard
// matching its stage; pass the full batch for a serial model.
func EvalForecastRMSE(m *model.FoundationModel, xs, ys []*tensor.Tensor, channels []int) map[int]float64 {
	sums := make(map[int]float64, len(channels))
	for i := range xs {
		pred := m.PredictImage(xs[i])
		for _, ch := range channels {
			p := tensor.SliceAxis(pred, 1, ch, ch+1)
			y := tensor.SliceAxis(ys[i], 1, ch, ch+1)
			b, h, w := p.Shape[0], p.Shape[2], p.Shape[3]
			sums[ch] += nn.LatWeightedRMSE(p.Reshape(b, h, w), y.Reshape(b, h, w))
		}
	}
	out := make(map[int]float64, len(channels))
	for _, ch := range channels {
		out[ch] = sums[ch] / float64(len(xs))
	}
	return out
}
