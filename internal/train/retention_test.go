package train

import (
	"os"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/model"
)

// Tests for keep-last-k checkpoint retention (Options.CheckpointKeep):
// the step-directory layout, pruning order, resume-from-latest (including
// after a partial save), and single-slot compatibility.

func retentionSteps(t *testing.T, root string) []int {
	t.Helper()
	steps, err := ckpt.ListSteps(root)
	if err != nil {
		t.Fatal(err)
	}
	return steps
}

func TestSerialRetentionKeepsLastK(t *testing.T) {
	const n = 5
	a := tinyArch(4)
	batch := fixedBatches(t, 4, n, 2)
	dir := t.TempDir()
	opts := Options{
		Steps: n, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 3,
		CheckpointDir: dir, CheckpointEvery: 1, CheckpointKeep: 2,
	}
	if _, err := SerialCheckpointed(model.NewSerialDCHAGEquivalent(a, 2), opts, batch); err != nil {
		t.Fatal(err)
	}
	steps := retentionSteps(t, dir)
	if len(steps) != 2 || steps[0] != n-1 || steps[1] != n {
		t.Fatalf("retained steps %v, want the last two [%d %d]", steps, n-1, n)
	}
	// The root itself must not look like a single-slot checkpoint.
	if ckpt.Committed(dir) {
		t.Fatal("retention root must not carry a manifest of its own")
	}
}

func TestSerialRetentionResumeFromLatest(t *testing.T) {
	// Continuous 2N steps vs. N steps + resume under keep-last-k: the
	// resumed run restores from the newest retained directory and the loss
	// histories match bitwise.
	const n = 3
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 2*n, 2)
	opts := Options{Steps: 2 * n, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 3, ClipNorm: 1}
	full := Serial(model.NewSerialDCHAGEquivalent(a, 2), opts, batch)

	dir := t.TempDir()
	firstOpts := opts
	firstOpts.Steps = n
	firstOpts.CheckpointDir = dir
	firstOpts.CheckpointEvery = 1
	firstOpts.CheckpointKeep = 2
	if _, err := SerialCheckpointed(model.NewSerialDCHAGEquivalent(a, 2), firstOpts, batch); err != nil {
		t.Fatal(err)
	}
	if got := retentionSteps(t, dir); len(got) != 2 {
		t.Fatalf("retained %v, want 2 checkpoints", got)
	}

	resumeOpts := opts
	resumeOpts.CheckpointDir = dir
	resumeOpts.CheckpointKeep = 2
	resumeOpts.Resume = true
	resumed, err := SerialCheckpointed(model.NewSerialDCHAGEquivalent(a, 2), resumeOpts, batch)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Start != n {
		t.Fatalf("resume started at %d, want %d (the newest retained step)", resumed.Start, n)
	}
	sameLoss(t, "keep-last-k resume", full.Loss[n:], resumed.Loss)
}

func TestRetentionResumeSkipsPartialSave(t *testing.T) {
	// A crash mid-save leaves a newer manifest-less directory; resume must
	// restore from the last committed step, and the debris must survive
	// every later prune untouched (it is never "the directory being
	// written" from the pruner's point of view either).
	const n = 3
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 2*n, 2)
	dir := t.TempDir()
	opts := Options{
		Steps: n, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 3,
		CheckpointDir: dir, CheckpointEvery: 1, CheckpointKeep: 2,
	}
	if _, err := SerialCheckpointed(model.NewSerialDCHAGEquivalent(a, 2), opts, batch); err != nil {
		t.Fatal(err)
	}
	// Fake the crash: a partial (uncommitted) save newer than everything.
	m := model.NewSerialDCHAGEquivalent(a, 2)
	partial := ckpt.StepDir(dir, n+1)
	if err := ckpt.WriteShard(partial, 0, ckpt.BuildTree(m.Params(), nil)); err != nil {
		t.Fatal(err)
	}

	resumeOpts := opts
	resumeOpts.Steps = 2 * n
	resumeOpts.Resume = true
	resumed, err := SerialCheckpointed(model.NewSerialDCHAGEquivalent(a, 2), resumeOpts, batch)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Start != n {
		t.Fatalf("resume started at %d, want the committed step %d (not the partial %d)", resumed.Start, n, n+1)
	}
	// The resumed run checkpointed steps n+1..2n and pruned beyond keep=2;
	// the partial shard file must still exist... as part of the now-real
	// step-(n+1) directory or as debris — either way never deleted while
	// uncommitted. Here the resumed run committed its own step-(n+1), so
	// the directory gained a manifest; what must hold is that no error
	// occurred and the newest two steps are retained.
	steps := retentionSteps(t, dir)
	if len(steps) != 2 || steps[1] != 2*n {
		t.Fatalf("retained %v, want the newest two ending at %d", steps, 2*n)
	}
	if _, err := os.Stat(partial); err != nil {
		// step n+1 may legitimately have been pruned *after* being
		// committed by the resumed run; only an uncommitted directory is
		// protected. Nothing to assert then.
		if !os.IsNotExist(err) {
			t.Fatal(err)
		}
	}
}

func TestDistributedRetentionKeepsLastK(t *testing.T) {
	const n, p = 4, 2
	a := tinyArch(4)
	batch := fixedBatches(t, 4, n, 2)
	dir := t.TempDir()
	opts := Options{
		Steps: n, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 3,
		CheckpointDir: dir, CheckpointEvery: 1, CheckpointKeep: 3,
	}
	if _, _, err := Distributed(a, p, false, opts, batch); err != nil {
		t.Fatal(err)
	}
	steps := retentionSteps(t, dir)
	if len(steps) != 3 || steps[0] != n-2 || steps[2] != n {
		t.Fatalf("retained %v, want [%d %d %d]", steps, n-2, n-1, n)
	}
	// Every retained checkpoint is complete: world-p shards + manifest.
	for _, s := range steps {
		ck, err := ckpt.Open(ckpt.StepDir(dir, s))
		if err != nil {
			t.Fatalf("step %d: %v", s, err)
		}
		if ck.Manifest.World != p || ck.Manifest.Step != s {
			t.Fatalf("step %d manifest: %+v", s, ck.Manifest)
		}
	}
}

func TestHybridRetentionAndResume(t *testing.T) {
	const n, tp, dp = 3, 2, 2
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 2*n, 4)
	opts := Options{Steps: 2 * n, Batch: 4, LR: 1e-2, MaskRatio: 0.5, Seed: 5}
	full, _, err := Hybrid(a, tp, dp, false, opts, batch)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	firstOpts := opts
	firstOpts.Steps = n
	firstOpts.CheckpointDir = dir
	firstOpts.CheckpointEvery = 1
	firstOpts.CheckpointKeep = 2
	if _, _, err := Hybrid(a, tp, dp, false, firstOpts, batch); err != nil {
		t.Fatal(err)
	}
	steps := retentionSteps(t, dir)
	if len(steps) != 2 || steps[1] != n {
		t.Fatalf("retained %v, want the last two ending at %d", steps, n)
	}

	resumeOpts := opts
	resumeOpts.CheckpointDir = dir
	resumeOpts.CheckpointKeep = 2
	resumeOpts.Resume = true
	resumed, _, err := Hybrid(a, tp, dp, false, resumeOpts, batch)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Start != n {
		t.Fatalf("hybrid resume started at %d, want %d", resumed.Start, n)
	}
	sameLoss(t, "hybrid keep-last-k resume", full.Loss[n:], resumed.Loss)
}

func TestCheckpointKeepValidation(t *testing.T) {
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 1, 2)
	m := model.NewSerialDCHAGEquivalent(a, 2)
	if _, err := SerialCheckpointed(m, Options{Steps: 1, Batch: 2, CheckpointKeep: 2}, batch); err == nil {
		t.Fatal("CheckpointKeep > 1 without CheckpointDir must be rejected")
	}
	if _, err := SerialCheckpointed(m, Options{Steps: 1, Batch: 2, CheckpointKeep: -1}, batch); err == nil {
		t.Fatal("negative CheckpointKeep must be rejected")
	}
}

func TestCheckpointKeepDefaultSingleSlot(t *testing.T) {
	// Keep 0/1 is today's behavior: CheckpointDir itself is the
	// checkpoint, no step subdirectories appear.
	const n = 3
	a := tinyArch(4)
	batch := fixedBatches(t, 4, n, 2)
	for _, keep := range []int{0, 1} {
		dir := t.TempDir()
		opts := Options{
			Steps: n, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 3,
			CheckpointDir: dir, CheckpointEvery: 1, CheckpointKeep: keep,
		}
		if _, err := SerialCheckpointed(model.NewSerialDCHAGEquivalent(a, 2), opts, batch); err != nil {
			t.Fatal(err)
		}
		if !ckpt.Committed(dir) {
			t.Fatalf("keep=%d: single-slot dir must hold the manifest", keep)
		}
		if steps := retentionSteps(t, dir); steps != nil {
			t.Fatalf("keep=%d: unexpected step directories %v", keep, steps)
		}
	}
}
