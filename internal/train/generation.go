package train

import (
	"encoding/json"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/faultinject"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// GenSpec describes one elastic generation: a contiguous [Start, End) slice
// of the global step range run at a fixed TP×DP shape, optionally restored
// from a checkpoint (in-memory reshard or disk restore — both arrive here
// as a *ckpt.Checkpoint).
type GenSpec struct {
	TP, DP int
	// Start and End bound the generation's global steps: [Start, End).
	// End may stop short of Options.Steps (an explicit resize boundary).
	Start, End int
	// From is the restore source. It must be nil exactly when Start is 0,
	// and its manifest step must equal Start otherwise.
	From *ckpt.Checkpoint
	// Fault, when non-nil, is installed on every mesh communicator and
	// consulted at the step-top and checkpoint hooks.
	Fault *faultinject.Plan
	TPViT bool
}

// GenResult is one generation's outcome. Err carries the mesh run error
// (a *dist.MeshError on rank failure); Hist holds world-rank-0's per-step
// DP-mean losses for the steps the generation completed. Trees[r] is rank
// r's last step-boundary state snapshot and Boundary[r] the global step it
// was taken at (-1 if rank r never snapshotted) — the raw material for
// in-memory resharding: because the collectives are rendezvous-synchronous,
// every surviving rank's last boundary snapshot is from the same step.
type GenResult struct {
	Hist     History
	Mesh     *dist.Mesh
	Err      error
	Trees    []ckpt.Tree
	Boundary []int
}

// AssembleBoundary builds an in-memory restore source from per-rank state
// trees snapshotted at the same global step boundary — the elastic
// supervisor's zero-I/O reshard path. The trees must jointly cover every
// logical tensor (which rank deaths can break); incomplete coverage is an
// error, and the caller falls back to the last committed checkpoint.
func AssembleBoundary(arch model.Arch, partitions, step int, trees []ckpt.Tree) (*ckpt.Checkpoint, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("train: assemble boundary with no trees")
	}
	archJSON, err := json.Marshal(arch)
	if err != nil {
		return nil, fmt.Errorf("train: encode arch: %w", err)
	}
	man := ckpt.Manifest{
		Format:     ckpt.Format,
		World:      len(trees),
		Partitions: partitions,
		Step:       step,
		OptAlgo:    trees[0].OptAlgo,
		Meta:       map[string]string{ckpt.MetaStage: stageDCHAG, ckpt.MetaArch: string(archJSON)},
	}
	return ckpt.Assemble(man, trees)
}

// RunGeneration runs one elastic generation of hybrid (TP×DP) training.
// The step body is arithmetically identical to Hybrid/Distributed — same
// batch sharding, mask stream, gradient sync, clipping, and LR schedule
// keyed by the global step — so a generation restored from a checkpoint
// continues bitwise exactly like an uninterrupted run at the same shape.
// Unlike Hybrid it snapshots every rank's state tree at each step boundary
// (for in-memory resharding) and threads the fault plan through the mesh.
func RunGeneration(arch model.Arch, opts Options, g GenSpec, batch BatchFn) GenResult {
	res := GenResult{}
	fail := func(err error) GenResult {
		res.Err = err
		return res
	}
	if g.TP < 1 || g.DP < 1 {
		return fail(fmt.Errorf("train: invalid generation shape tp=%d dp=%d", g.TP, g.DP))
	}
	if opts.Batch%g.DP != 0 {
		return fail(fmt.Errorf("train: batch %d not divisible by dp %d", opts.Batch, g.DP))
	}
	if g.Start < 0 || g.Start >= g.End || g.End > opts.Steps {
		return fail(fmt.Errorf("train: generation step range [%d,%d) outside [0,%d)", g.Start, g.End, opts.Steps))
	}
	// Start > 0 needs a restore source; Start == 0 admits one too — an
	// in-memory reshard at the step-0 boundary after a very early failure.
	if g.Start > 0 && g.From == nil {
		return fail(fmt.Errorf("train: generation start %d without a restore source", g.Start))
	}
	if g.From != nil && g.From.Manifest.Step != g.Start {
		return fail(fmt.Errorf("train: restore source at step %d, generation starts at %d", g.From.Manifest.Step, g.Start))
	}
	if err := opts.validateCheckpoint(); err != nil {
		return fail(err)
	}
	spec := dist.MeshSpec{TP: g.TP, FSDP: 1, DP: g.DP}
	topo := dist.Topology{Nodes: 1, GPUsPerNode: spec.World()}
	if spec.World() > 8 && spec.World()%8 == 0 {
		topo = dist.Frontier(spec.World() / 8)
	}
	m, err := dist.NewMesh(spec, topo)
	if err != nil {
		return fail(err)
	}
	if g.Fault != nil {
		m.SetFaultInjector(g.Fault)
	}
	setMeshObserver(m, opts.Trace)
	world := spec.World()
	res.Mesh = m
	res.Trees = make([]ckpt.Tree, world)
	res.Boundary = make([]int, world)
	for r := range res.Boundary {
		res.Boundary[r] = -1
	}
	var hist History
	hist.Start = g.Start
	res.Err = m.Run(func(rank int, m *dist.Mesh) error {
		row := opts.Trace.Rank(rank)
		tpc := m.TPComm(rank)
		dpc := m.DPComm(rank)
		coord := m.Spec.CoordOf(rank)

		mdl := model.NewDistributed(arch, tpc, g.TPViT)
		stage := mdl.Stage.(*model.DCHAGStage)
		lo, hi := stage.ChannelBounds()
		ddp := parallel.NewDDP(dpc, mdl.Params())
		opt := optim.NewAdamW(mdl.Params(), opts.LR, opts.WeightDecay)
		maskRNG := tensor.NewRNG(opts.Seed)
		mse := nn.NewMSELoss()
		masked := nn.NewMaskedMSELoss()
		t := arch.Tokens()
		accum := opts.accum()
		sched := opts.schedule()
		shard := opts.Batch / g.DP
		if g.From != nil {
			if err := checkStage(g.From.Manifest, stageDCHAG); err != nil {
				return err
			}
			if g.From.Manifest.Partitions != stage.D.Partitions {
				return fmt.Errorf("train: restore source has %d logical partitions, model has %d",
					g.From.Manifest.Partitions, stage.D.Partitions)
			}
			if err := g.From.RestoreParams(mdl.Params()); err != nil {
				return err
			}
			if err := g.From.RestoreOptimizer(opt, mdl.Params()); err != nil {
				return err
			}
		}
		fastForwardMasks(maskRNG, g.Start, opts, t)
		// Each rank writes only its own slot; the Run WaitGroup publishes
		// them to the supervisor. A fresh AdamW exports complete (zeroed)
		// moments, so the Start-boundary snapshot is always restorable.
		snapshot := func(step int) {
			res.Trees[rank] = ckpt.BuildTree(mdl.Params(), opt)
			res.Boundary[rank] = step
		}
		snapshot(g.Start)

		for s := g.Start; s < g.End; s++ {
			if g.Fault != nil {
				g.Fault.Step(rank, s)
			}
			if sched != nil {
				sched.Apply(opt, s)
			}
			nn.ZeroGrads(mdl.Params())
			stepLoss := 0.0
			for a := 0; a < accum; a++ {
				x, y := batch(s*accum + a)
				// This replica's batch rows, then this rank's channels.
				xDP := tensor.SliceAxis(x, 0, coord.DP*shard, (coord.DP+1)*shard)
				yDP := tensor.SliceAxis(y, 0, coord.DP*shard, (coord.DP+1)*shard)
				xShard := tensor.SliceAxis(xDP, 1, lo, hi)
				target := model.Patchify(yDP, arch.Patch)
				var grad *tensor.Tensor
				tpc.SetPhase("forward")
				fwd := row.Begin("forward", "train")
				if opts.MaskRatio > 0 {
					// Full-batch mask so every replica consumes the same
					// stream as the serial run, then this replica's rows.
					full := data.RandomMask(maskRNG, x.Shape[0], t, opts.MaskRatio)
					mask := tensor.SliceAxis(full, 0, coord.DP*shard, (coord.DP+1)*shard)
					pred := mdl.Forward(xShard, mask)
					stepLoss += masked.Forward(pred, target, mask)
					grad = masked.Backward()
				} else {
					pred := mdl.Forward(xShard, nil)
					stepLoss += mse.Forward(pred, target)
					grad = mse.Backward()
				}
				fwd.End()
				tpc.SetPhase("backward")
				bwd := row.Begin("backward", "train")
				mdl.Backward(grad)
				bwd.End()
			}
			if accum > 1 {
				for _, p := range mdl.Params() {
					tensor.ScaleInPlace(p.Grad, 1/float64(accum))
				}
			}
			dpc.SetPhase("dp-sync")
			sync := row.Begin("dp-sync", "train")
			ddp.SyncGradients()
			sync.End()
			optSpan := row.Begin("optim", "train")
			if opts.ClipNorm > 0 {
				tpc.SetPhase("optim")
				local, repl := mdl.PartitionParams()
				DistributedClipGradNorm(tpc, local, repl, opts.ClipNorm)
			}
			opt.Step()
			optSpan.End()
			// Every rank reduces; only world rank 0 records (collectivesym:
			// the collective stays outside the rank conditional).
			dpc.SetPhase("metrics")
			meanLoss := dpc.AllReduceScalarSum(stepLoss/float64(accum)) / float64(g.DP)
			if rank == 0 {
				hist.Loss = append(hist.Loss, meanLoss)
			}
			if opts.checkpointDue(s) {
				// DP replicas hold identical state after SyncGradients, so
				// replica 0's TP group alone writes shards; world rank 0
				// commits the manifest once they are durable. checkpointDue
				// is rank-independent, so every TP group runs the same two
				// barriers — symmetric with no rank conditional around them.
				tpc.SetPhase("ckpt")
				ckSpan := row.Begin("ckpt", "train")
				dir := opts.checkpointTarget(s + 1)
				if coord.DP == 0 {
					if err := writeShard(dir, coord.TP, mdl.Params(), opt); err != nil {
						return err
					}
					if g.Fault != nil {
						g.Fault.Checkpoint(rank, s+1)
					}
				}
				tpc.Barrier()
				if rank == 0 {
					if err := writeManifest(dir, g.TP, stage.D.Partitions, s+1, stageDCHAG, mdl.Arch); err != nil {
						return err
					}
					if err := opts.pruneCheckpoints(); err != nil {
						return err
					}
				}
				tpc.Barrier()
				ckSpan.End()
			}
			snapshot(s + 1)
		}
		return nil
	})
	res.Hist = hist
	return res
}
