package train

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"repro/internal/ckpt"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/optim"
)

// Stage fingerprints recorded in checkpoint manifests so a load into the
// wrong architecture family fails with a clear message instead of a wall of
// name mismatches. "dchag" covers both the distributed stage and its serial
// Reference equivalent — they are the same logical model.
const (
	stageDCHAG  = "dchag"
	stageSerial = "serial"
)

// stageKind fingerprints a model's channel stage for the manifest.
func stageKind(m *model.FoundationModel) string {
	switch m.Stage.(type) {
	case *model.DCHAGStage, *model.ReferenceStage:
		return stageDCHAG
	default:
		return stageSerial
	}
}

// modelPartitions returns the logical D-CHAG partition count of a model: the
// stage's partition count for partitioned stages, 1 otherwise.
func modelPartitions(m *model.FoundationModel) int {
	switch s := m.Stage.(type) {
	case *model.DCHAGStage:
		return s.D.Partitions
	case *model.ReferenceStage:
		return s.R.P
	default:
		return 1
	}
}

// writeShard snapshots one rank's parameters and optimizer state into the
// checkpoint directory.
func writeShard(dir string, rank int, params []*nn.Param, opt optim.Stateful) error {
	return ckpt.WriteShard(dir, rank, ckpt.BuildTree(params, opt))
}

// keep normalizes CheckpointKeep: 0 and 1 are the single-slot layout.
func (o Options) keep() int {
	if o.CheckpointKeep < 1 {
		return 1
	}
	return o.CheckpointKeep
}

// checkpointTarget returns the directory the checkpoint committed after
// `step` completed optimizer steps writes into: CheckpointDir itself under
// the single-slot layout, its step-numbered retention subdirectory under
// keep-last-k.
func (o Options) checkpointTarget(step int) string {
	if o.keep() == 1 {
		return o.CheckpointDir
	}
	return ckpt.StepDir(o.CheckpointDir, step)
}

// pruneCheckpoints applies the keep-last-k retention policy after a
// successful commit. It is a no-op under the single-slot layout, and only
// ever deletes committed step directories — never the one a concurrent
// save is still writing (its manifest lands last), never foreign entries.
func (o Options) pruneCheckpoints() error {
	if o.keep() == 1 {
		return nil
	}
	_, err := ckpt.Prune(o.CheckpointDir, o.keep())
	return err
}

// writeManifest commits a checkpoint: call only after every rank's shard is
// written. The manifest records the stage fingerprint and the full
// architecture (JSON under ckpt.MetaArch), so inference tooling can rebuild
// the model from the checkpoint alone.
func writeManifest(dir string, world, partitions, step int, stage string, arch model.Arch) error {
	meta := map[string]string{ckpt.MetaStage: stage}
	if blob, err := json.Marshal(arch); err == nil {
		meta[ckpt.MetaArch] = string(blob)
	}
	return ckpt.WriteManifest(dir, ckpt.Manifest{
		World:      world,
		Partitions: partitions,
		Step:       step,
		OptAlgo:    "adamw",
		Meta:       meta,
	})
}

// checkStage rejects checkpoints saved from a different architecture
// family.
func checkStage(m ckpt.Manifest, stage string) error {
	if saved, ok := m.Meta[ckpt.MetaStage]; ok && saved != stage {
		return fmt.Errorf("train: checkpoint was saved from a %q stage, this model is %q", saved, stage)
	}
	return nil
}

// openRestore opens the checkpoint the Resume/InitFrom options name, or
// returns nil when no restore was requested. It runs once per training run
// — before the rank fan-out in distributed runs — so every rank shares one
// read-only *ckpt.Checkpoint instead of re-reading and re-assembling all
// shards per goroutine. Both paths resolve through the retention layout:
// a single-slot directory opens as itself, a keep-last-k root opens its
// newest complete checkpoint (partial saves are skipped).
func openRestore(opts Options) (*ckpt.Checkpoint, error) {
	switch {
	case opts.InitFrom != "":
		return ckpt.OpenLatest(opts.InitFrom)
	case opts.Resume:
		return ckpt.OpenLatest(opts.CheckpointDir)
	default:
		return nil, nil
	}
}

// restoreStart applies an opened checkpoint (nil: fresh run) to params and
// opt per the Resume/InitFrom options, returning the step index training
// starts from (0 unless resuming). All validation — stage fingerprint,
// partition count, step bound — happens before anything is written, so a
// failed restore leaves model and optimizer untouched. The caller's logical
// partition count must match a resumed checkpoint's: the partition count is
// a model property, so a mismatch means a genuinely different model, not a
// resharding.
func restoreStart(ck *ckpt.Checkpoint, opts Options, params []*nn.Param, opt optim.Stateful, partitions int, stage string) (int, error) {
	if ck == nil {
		return 0, nil
	}
	if err := checkStage(ck.Manifest, stage); err != nil {
		return 0, err
	}
	if opts.InitFrom != "" {
		return 0, ck.RestoreParams(params)
	}
	if ck.Manifest.Partitions != partitions {
		return 0, fmt.Errorf("train: checkpoint has %d logical partitions, model has %d (set the model's partition count from the manifest)",
			ck.Manifest.Partitions, partitions)
	}
	if ck.Manifest.Step > opts.Steps {
		return 0, fmt.Errorf("train: checkpoint is at step %d, beyond Steps=%d", ck.Manifest.Step, opts.Steps)
	}
	if err := ck.RestoreParams(params); err != nil {
		return 0, err
	}
	if err := ck.RestoreOptimizer(opt, params); err != nil {
		return 0, err
	}
	return ck.Manifest.Step, nil
}

// fastForwardMasks replays the mask stream consumed by `steps` completed
// optimizer steps, so a resumed run draws exactly the masks the
// uninterrupted run would have drawn. Each accumulation micro-step consumes
// one full-batch mask; forecast runs (MaskRatio == 0) consume nothing.
func fastForwardMasks(rng *rand.Rand, steps int, opts Options, tokens int) {
	if opts.MaskRatio <= 0 || steps <= 0 {
		return
	}
	for i := 0; i < steps*opts.accum(); i++ {
		data.RandomMask(rng, opts.Batch, tokens, opts.MaskRatio)
	}
}
