package train

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/parallel"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

func tinyArch(channels int) model.Arch {
	return model.Arch{
		Config: core.Config{
			Channels: channels, ImgH: 4, ImgW: 4, Patch: 2,
			Embed: 8, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 99,
		},
		Depth:      1,
		MetaTokens: 1,
	}
}

// fixedBatches precomputes deterministic batches so serial and distributed
// runs consume byte-identical data.
func fixedBatches(t *testing.T, channels, steps, batch int) BatchFn {
	t.Helper()
	g := data.NewHyperspectral(data.HyperspectralConfig{
		Images: steps * batch, Channels: channels, ImgH: 4, ImgW: 4,
		Endmembers: 2, Noise: 0.01, Seed: 42,
	})
	xs := make([]*tensor.Tensor, steps)
	for s := 0; s < steps; s++ {
		xs[s] = g.Batch(s*batch, batch)
	}
	return func(step int) (*tensor.Tensor, *tensor.Tensor) {
		return xs[step], xs[step]
	}
}

func TestSerialMAELossDecreases(t *testing.T) {
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 8, 2)
	hist := Serial(model.NewSerial(a), Options{
		Steps: 8, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 1, ClipNorm: 1,
	}, batch)
	if len(hist.Loss) != 8 {
		t.Fatalf("history length = %d", len(hist.Loss))
	}
	if hist.Last() >= hist.Loss[0] {
		t.Fatalf("MAE loss did not decrease: first %v last %v", hist.Loss[0], hist.Last())
	}
}

func TestDistributedMatchesSerialEquivalentTrajectory(t *testing.T) {
	// The core Fig. 11/12 integrity check, strengthened from "curves agree"
	// to exact equality: D-CHAG over 2 ranks follows the serial
	// reference-stage model step for step.
	const p = 2
	a := tinyArch(4)
	opts := Options{Steps: 5, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 7, ClipNorm: 1}
	batch := fixedBatches(t, 4, opts.Steps, opts.Batch)

	serialHist := Serial(model.NewSerialDCHAGEquivalent(a, p), opts, batch)
	distHist, _, err := Distributed(a, p, false, opts, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(serialHist.Loss) != len(distHist.Loss) {
		t.Fatalf("history lengths differ: %d vs %d", len(serialHist.Loss), len(distHist.Loss))
	}
	for s := range serialHist.Loss {
		if math.Abs(serialHist.Loss[s]-distHist.Loss[s]) > 1e-9 {
			t.Fatalf("step %d: serial %v distributed %v", s, serialHist.Loss[s], distHist.Loss[s])
		}
	}
}

func TestDistributedBackwardPhaseSilent(t *testing.T) {
	// The whole D-CHAG training backward pass (replicated ViT) moves zero
	// bytes — the paper's "no communication in the backward pass".
	const p = 2
	a := tinyArch(4)
	opts := Options{Steps: 2, Batch: 1, LR: 1e-2, MaskRatio: 0.5, Seed: 7}
	batch := fixedBatches(t, 4, opts.Steps, opts.Batch)
	_, g, err := Distributed(a, p, false, opts, batch)
	if err != nil {
		t.Fatal(err)
	}
	if bytes := g.Traffic().BytesInPhase("backward"); bytes != 0 {
		t.Fatalf("backward moved %d bytes, want 0\n%s", bytes, g.Traffic())
	}
	if calls := g.Traffic().CallsInPhase("forward"); calls != p*opts.Steps {
		t.Fatalf("forward collective calls = %d, want %d (one AllGather per rank per step)", calls, p*opts.Steps)
	}
}

func TestForecastTrainingAndRMSE(t *testing.T) {
	// Weather forecasting path: loss decreases and per-channel RMSE beats a
	// persistence-free untrained model.
	w := data.NewWeather(data.WeatherConfig{NativeH: 16, NativeW: 32, Steps: 32, DtHours: 6, Seed: 5})
	a := tinyArch(w.Channels())
	a.Channels = w.Channels()
	const steps, batchN = 6, 2
	xs := make([]*tensor.Tensor, steps)
	ys := make([]*tensor.Tensor, steps)
	for s := 0; s < steps; s++ {
		xs[s], ys[s] = w.PairBatch(s*batchN, batchN, 1, 4, 4)
	}
	batch := func(s int) (*tensor.Tensor, *tensor.Tensor) { return xs[s], ys[s] }

	m := model.NewSerial(a)
	// Pre-training RMSE.
	chans := []int{w.ChannelIndex("z500"), w.ChannelIndex("t850"), w.ChannelIndex("u10")}
	evalX := []*tensor.Tensor{xs[0]}
	evalY := []*tensor.Tensor{ys[0]}
	before := EvalForecastRMSE(m, evalX, evalY, chans)

	hist := Serial(m, Options{Steps: steps, Batch: batchN, LR: 5e-3, Seed: 2, ClipNorm: 1}, batch)
	if hist.Last() >= hist.Loss[0] {
		t.Fatalf("forecast loss did not decrease: %v -> %v", hist.Loss[0], hist.Last())
	}
	after := EvalForecastRMSE(m, evalX, evalY, chans)
	for _, ch := range chans {
		if !(after[ch] < before[ch]) {
			t.Fatalf("channel %d RMSE did not improve: %v -> %v", ch, before[ch], after[ch])
		}
		if math.IsNaN(after[ch]) {
			t.Fatalf("channel %d RMSE is NaN", ch)
		}
	}
}

func TestHistoryLast(t *testing.T) {
	if (History{}).Last() != 0 {
		t.Fatal("empty history Last should be 0")
	}
	h := History{Loss: []float64{3, 2, 1}}
	if h.Last() != 1 {
		t.Fatal("Last wrong")
	}
}

func TestGradientAccumulationMatchesFullBatch(t *testing.T) {
	// Two half-batches with AccumSteps=2 must follow the exact trajectory of
	// the corresponding full batches (forecast objective: no mask stream to
	// desynchronize).
	a := tinyArch(4)
	const steps = 4
	g := data.NewHyperspectral(data.HyperspectralConfig{
		Images: 64, Channels: 4, ImgH: 4, ImgW: 4, Endmembers: 2, Noise: 0.01, Seed: 21,
	})
	full := make([]*tensor.Tensor, steps)
	for s := range full {
		full[s] = g.Batch(s*4, 4)
	}
	fullBatch := func(s int) (*tensor.Tensor, *tensor.Tensor) { return full[s], full[s] }
	halfBatch := func(i int) (*tensor.Tensor, *tensor.Tensor) {
		s, h := i/2, i%2
		half := tensor.SliceAxis(full[s], 0, h*2, (h+1)*2)
		return half, half
	}

	optsFull := Options{Steps: steps, Batch: 4, LR: 1e-2, ClipNorm: 1, Seed: 3}
	optsAccum := optsFull
	optsAccum.AccumSteps = 2

	histFull := Serial(model.NewSerial(a), optsFull, fullBatch)
	histAccum := Serial(model.NewSerial(a), optsAccum, halfBatch)
	for s := 0; s < steps; s++ {
		if math.Abs(histFull.Loss[s]-histAccum.Loss[s]) > 1e-9 {
			t.Fatalf("step %d: full %v accum %v", s, histFull.Loss[s], histAccum.Loss[s])
		}
	}
}

func TestGradientAccumulationDistributedMatchesSerial(t *testing.T) {
	// Accumulation and D-CHAG distribution compose: the distributed
	// accumulated run equals the serial-equivalent accumulated run.
	const p = 2
	a := tinyArch(4)
	opts := Options{Steps: 3, Batch: 2, LR: 1e-2, ClipNorm: 1, Seed: 5, AccumSteps: 2}
	batch := fixedBatches(t, 4, opts.Steps*2, opts.Batch)

	serialHist := Serial(model.NewSerialDCHAGEquivalent(a, p), opts, batch)
	distHist, _, err := Distributed(a, p, false, opts, batch)
	if err != nil {
		t.Fatal(err)
	}
	for s := range serialHist.Loss {
		if math.Abs(serialHist.Loss[s]-distHist.Loss[s]) > 1e-9 {
			t.Fatalf("step %d: serial %v distributed %v", s, serialHist.Loss[s], distHist.Loss[s])
		}
	}
}

func TestWarmupScheduleMatchesBetweenSerialAndDistributed(t *testing.T) {
	const p = 2
	a := tinyArch(4)
	opts := Options{Steps: 6, Batch: 2, LR: 1e-2, Seed: 9, Warmup: 2}
	batch := fixedBatches(t, 4, opts.Steps, opts.Batch)
	serialHist := Serial(model.NewSerialDCHAGEquivalent(a, p), opts, batch)
	distHist, _, err := Distributed(a, p, false, opts, batch)
	if err != nil {
		t.Fatal(err)
	}
	for s := range serialHist.Loss {
		if math.Abs(serialHist.Loss[s]-distHist.Loss[s]) > 1e-9 {
			t.Fatalf("step %d: serial %v distributed %v", s, serialHist.Loss[s], distHist.Loss[s])
		}
	}
}

func TestWarmupChangesTrajectory(t *testing.T) {
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 6, 2)
	flat := Serial(model.NewSerial(a), Options{Steps: 6, Batch: 2, LR: 1e-2, Seed: 9}, batch)
	warm := Serial(model.NewSerial(a), Options{Steps: 6, Batch: 2, LR: 1e-2, Seed: 9, Warmup: 3}, batch)
	if math.Abs(flat.Last()-warm.Last()) < 1e-12 {
		t.Fatal("warmup schedule should alter the trajectory")
	}
}

func TestHybridMatchesSerialEquivalentTrajectory(t *testing.T) {
	// The paper's Sec. 3.4 composition, functionally: D-CHAG(TP=2) x DP=2
	// follows the serial full-batch reference-stage model exactly, with the
	// only cross-replica traffic being the gradient AllReduce.
	const tp, dp = 2, 2
	a := tinyArch(4)
	opts := Options{Steps: 4, Batch: 4, LR: 1e-2, ClipNorm: 1, MaskRatio: 0.5, Seed: 31}
	batch := fixedBatches(t, 4, opts.Steps, opts.Batch)

	serialHist := Serial(model.NewSerialDCHAGEquivalent(a, tp), opts, batch)
	hybridHist, mesh, err := Hybrid(a, tp, dp, false, opts, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(hybridHist.Loss) != len(serialHist.Loss) {
		t.Fatalf("history lengths differ: %d vs %d", len(hybridHist.Loss), len(serialHist.Loss))
	}
	for s := range serialHist.Loss {
		if math.Abs(serialHist.Loss[s]-hybridHist.Loss[s]) > 1e-9 {
			t.Fatalf("step %d: serial %v hybrid %v", s, serialHist.Loss[s], hybridHist.Loss[s])
		}
	}
	_ = mesh
}

func TestHybridBackwardPhaseSilentWithinReplicas(t *testing.T) {
	// Within a step's backward pass, D-CHAG itself stays silent; the only
	// synchronization is the labeled dp-sync gradient AllReduce.
	const tp, dp = 2, 2
	a := tinyArch(4)
	opts := Options{Steps: 2, Batch: 4, LR: 1e-2, Seed: 32}
	batch := fixedBatches(t, 4, opts.Steps, opts.Batch)
	_, mesh, err := Hybrid(a, tp, dp, false, opts, batch)
	if err != nil {
		t.Fatal(err)
	}
	// Check every TP group's ledger: no backward-phase traffic anywhere.
	for r := 0; r < tp*dp; r++ {
		tr := mesh.TPComm(r).Group().Traffic()
		if b := tr.BytesInPhase("backward"); b != 0 {
			t.Fatalf("rank %d TP group backward moved %d bytes", r, b)
		}
		dtr := mesh.DPComm(r).Group().Traffic()
		if dtr.CallsInPhase("dp-sync") == 0 {
			t.Fatalf("rank %d DP group missing gradient sync traffic", r)
		}
	}
}

func TestHybridValidation(t *testing.T) {
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 1, 2)
	if _, _, err := Hybrid(a, 0, 2, false, Options{Steps: 1, Batch: 2}, batch); err == nil {
		t.Fatal("want error for tp=0")
	}
	if _, _, err := Hybrid(a, 2, 3, false, Options{Steps: 1, Batch: 2}, batch); err == nil {
		t.Fatal("want error for batch not divisible by dp")
	}
}

func TestHybridFrontierPlacementTraffic(t *testing.T) {
	// The paper's placement claim end to end: on a 16-GCD world (2 Frontier
	// nodes) the D-CHAG/TP collectives stay inside a node, and the only
	// inter-node traffic is the DP axis — the per-step gradient AllReduce
	// (plus the loss-metric scalar), never forward or backward activations.
	const tp, dp = 2, 8
	a := tinyArch(4)
	opts := Options{Steps: 2, Batch: 8, LR: 1e-2, Seed: 61}
	batch := fixedBatches(t, 4, opts.Steps, opts.Batch)
	_, mesh, err := Hybrid(a, tp, dp, false, opts, batch)
	if err != nil {
		t.Fatal(err)
	}
	if mesh.Topo != dist.Frontier(2) {
		t.Fatalf("topology = %+v, want Frontier(2)", mesh.Topo)
	}
	if b := mesh.InterNodeBytes(dist.AxisTP); b != 0 {
		t.Fatalf("TP moved %d inter-node bytes, want 0", b)
	}
	if b := mesh.AxisBytes(dist.AxisTP); b == 0 {
		t.Fatal("TP moved no bytes at all; test is vacuous")
	}
	if b := mesh.InterNodeBytes(dist.AxisDP); b == 0 {
		t.Fatal("DP gradient sync moved no inter-node bytes")
	}
	for gid := 0; gid < mesh.GroupCount(dist.AxisDP); gid++ {
		tr := mesh.GroupTraffic(dist.AxisDP, gid)
		for _, phase := range []string{"forward", "backward"} {
			if b := tr.BytesInPhase(phase); b != 0 {
				t.Fatalf("DP group %d moved %d bytes in %s phase", gid, b, phase)
			}
		}
		if tr.CallsInPhase("dp-sync") == 0 {
			t.Fatalf("DP group %d recorded no gradient sync", gid)
		}
	}
}

func TestHybridSimulatedCommSeconds(t *testing.T) {
	// Pricing a real hybrid run's recorded traffic on the Frontier machine
	// model: the node-local TP axis must be charged at the Infinity Fabric
	// rate, the node-striding DP axis at the Slingshot share, and the unused
	// FSDP axis must be free.
	const tp, dp = 2, 8
	machine := hw.Frontier()
	a := tinyArch(4)
	opts := Options{Steps: 2, Batch: 8, LR: 1e-2, Seed: 67}
	batch := fixedBatches(t, 4, opts.Steps, opts.Batch)
	_, mesh, err := Hybrid(a, tp, dp, false, opts, batch)
	if err != nil {
		t.Fatal(err)
	}
	perAxis, total := SimulatedCommSeconds(mesh, machine)
	if perAxis[dist.AxisTP] <= 0 || perAxis[dist.AxisDP] <= 0 {
		t.Fatalf("active axes must price to positive time: %v", perAxis)
	}
	if perAxis[dist.AxisFSDP] != 0 {
		t.Fatalf("FSDP=1 axis must price to zero, got %v", perAxis[dist.AxisFSDP])
	}
	if sum := perAxis[dist.AxisTP] + perAxis[dist.AxisFSDP] + perAxis[dist.AxisDP]; sum != total {
		t.Fatalf("per-axis times must sum to total: %v vs %v", sum, total)
	}
	// Exact link selection: the busiest TP group's per-rank bytes at the
	// intra-node rate, the busiest DP group's at the inter-node share.
	worstPerRank := func(a dist.Axis, extent int) int64 {
		var worst int64
		for gid := 0; gid < mesh.GroupCount(a); gid++ {
			if b := mesh.GroupTraffic(a, gid).TotalBytes() / int64(extent); b > worst {
				worst = b
			}
		}
		return worst
	}
	if want := float64(worstPerRank(dist.AxisTP, tp)) / machine.IntraBW; perAxis[dist.AxisTP] != want {
		t.Fatalf("TP axis priced %v, want intra-node %v", perAxis[dist.AxisTP], want)
	}
	if want := float64(worstPerRank(dist.AxisDP, dp)) / machine.InterBWPerGPU; perAxis[dist.AxisDP] != want {
		t.Fatalf("DP axis priced %v, want inter-node %v", perAxis[dist.AxisDP], want)
	}

	// The overlap-aware composition of the same measured run: with zero
	// factors the step is compute + total comm bit-for-bit; with the
	// calibrated factors the DP gradient traffic is partly hidden behind
	// the compute estimate while the TP time stays fully exposed, and the
	// step never beats max(compute, comm).
	compute := 2 * total // comm-bound-ish compute estimate
	serialExposed, serialStep := SimulatedStepSeconds(mesh, machine, compute, perfmodel.Overlap{})
	if serialExposed != perAxis || serialStep != compute+total {
		t.Fatalf("zero overlap must reproduce the serial composition: %v/%v vs %v/%v",
			serialExposed, serialStep, perAxis, compute+total)
	}
	exposed, step := SimulatedStepSeconds(mesh, machine, compute, perfmodel.DefaultOverlap())
	if exposed[dist.AxisTP] != perAxis[dist.AxisTP] {
		t.Fatalf("TP wire time must stay on the critical path: %v vs %v", exposed[dist.AxisTP], perAxis[dist.AxisTP])
	}
	if !(exposed[dist.AxisDP] < perAxis[dist.AxisDP]) {
		t.Fatalf("DP bucket overlap must hide some gradient traffic: %v vs %v", exposed[dist.AxisDP], perAxis[dist.AxisDP])
	}
	if !(step < serialStep) || step < compute || step < total {
		t.Fatalf("overlapped step %v must be in [max(compute %v, comm %v), serial %v)", step, compute, total, serialStep)
	}
}

func TestHybridRankFailureSurfacesError(t *testing.T) {
	// A batch too short for the high replica's shard makes only the DP=1
	// ranks panic mid-step while DP=0's ranks run ahead into their
	// collectives; the mesh abort must release them and Hybrid must return
	// the root-cause error instead of deadlocking.
	const tp, dp = 2, 2
	a := tinyArch(4)
	opts := Options{Steps: 2, Batch: 4, LR: 1e-2, Seed: 62}
	good := fixedBatches(t, 4, opts.Steps, opts.Batch)
	short := func(s int) (*tensor.Tensor, *tensor.Tensor) {
		x, y := good(s)
		return tensor.SliceAxis(x, 0, 0, 2), tensor.SliceAxis(y, 0, 0, 2)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := Hybrid(a, tp, dp, false, opts, short)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "SliceAxis") {
			t.Fatalf("err = %v, want the slicing panic as root cause", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Hybrid deadlocked after partial rank failure")
	}
}

func TestDCHAGComposesWithFSDP(t *testing.T) {
	// The remaining Sec. 3.4 axis: D-CHAG(TP=2) x FSDP=2. Every FSDP replica
	// processes a batch shard with sharded parameter state; the trajectory
	// must match the serial full-batch reference exactly (FSDP == DDP ==
	// serial is proven at the parallel-package level; this test proves the
	// composition with the D-CHAG channel stage).
	const tp, fsdp = 2, 2
	a := tinyArch(4)
	const steps, batchN = 3, 4
	batch := fixedBatches(t, 4, steps, batchN)

	opts := Options{Steps: steps, Batch: batchN, LR: 1e-2, Seed: 41}
	serialHist := Serial(model.NewSerialDCHAGEquivalent(a, tp), opts, batch)

	spec := dist.MeshSpec{TP: tp, FSDP: fsdp, DP: 1}
	losses := make([]float64, steps)
	_, err := dist.RunMesh(spec, dist.Topology{Nodes: 1, GPUsPerNode: spec.World()}, func(rank int, m *dist.Mesh) error {
		tpc := m.TPComm(rank)
		fc := m.FSDPComm(rank)
		coord := m.Spec.CoordOf(rank)
		mdl := model.NewDistributed(a, tpc, false)
		stage := mdl.Stage.(*model.DCHAGStage)
		lo, hi := stage.ChannelBounds()
		f := parallel.NewFSDP(fc, mdl.Params())
		opt := optim.NewAdamW(f.ShardParams(), opts.LR, 0)
		mse := nn.NewMSELoss()
		shard := batchN / fsdp
		for s := 0; s < steps; s++ {
			f.GatherParams()
			x, y := batch(s)
			xF := tensor.SliceAxis(x, 0, coord.FSDP*shard, (coord.FSDP+1)*shard)
			yF := tensor.SliceAxis(y, 0, coord.FSDP*shard, (coord.FSDP+1)*shard)
			pred := mdl.Forward(tensor.SliceAxis(xF, 1, lo, hi), nil)
			loss := mse.Forward(pred, model.Patchify(yF, a.Patch))
			f.ZeroGrads()
			mdl.Backward(mse.Backward())
			f.ReduceScatterGrads()
			opt.Step()
			mean := fc.AllReduceScalarSum(loss) / float64(fsdp)
			if rank == 0 {
				losses[s] = mean
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		if math.Abs(serialHist.Loss[s]-losses[s]) > 1e-9 {
			t.Fatalf("step %d: serial %v dchag+fsdp %v", s, serialHist.Loss[s], losses[s])
		}
	}
}
