package train

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tensor"
)

// sameLoss asserts two loss histories agree step for step, bitwise.
func sameLoss(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: history lengths differ: %d vs %d", label, len(want), len(got))
	}
	for s := range want {
		if want[s] != got[s] {
			t.Fatalf("%s: step %d: want %v, got %v (diff %g)", label, s, want[s], got[s], math.Abs(want[s]-got[s]))
		}
	}
}

// nearLoss asserts two loss histories agree step for step to float64
// round-off. Cross-topology comparisons use it instead of sameLoss: the
// distributed clip-norm reduction associates partial sums differently than
// the serial loop, which can move a step's loss by an ulp.
func nearLoss(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: history lengths differ: %d vs %d", label, len(want), len(got))
	}
	for s := range want {
		if math.Abs(want[s]-got[s]) > 1e-12*math.Abs(want[s]) {
			t.Fatalf("%s: step %d: want %v, got %v", label, s, want[s], got[s])
		}
	}
}

// copyCheckpoint clones a checkpoint directory so a resume (which writes its
// own checkpoints) cannot disturb the original.
func copyCheckpoint(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestExactResumeSerial(t *testing.T) {
	// Train 2N continuously vs. train N, checkpoint, resume N: the loss
	// histories must match bitwise. This pins the exact-resume contract —
	// optimizer moments, AdamW step count, and the mask-RNG stream are all
	// fast-forwarded to the restored step.
	const n = 4
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 2*n, 2)
	opts := Options{Steps: 2 * n, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 3, ClipNorm: 1}
	full := Serial(model.NewSerialDCHAGEquivalent(a, 2), opts, batch)

	dir := t.TempDir()
	firstOpts := opts
	firstOpts.Steps = n
	firstOpts.CheckpointDir = dir
	firstHalf, err := SerialCheckpointed(model.NewSerialDCHAGEquivalent(a, 2), firstOpts, batch)
	if err != nil {
		t.Fatal(err)
	}
	sameLoss(t, "interrupted prefix", full.Loss[:n], firstHalf.Loss)

	resumeOpts := opts
	resumeOpts.CheckpointDir = dir
	resumeOpts.Resume = true
	second, err := SerialCheckpointed(model.NewSerialDCHAGEquivalent(a, 2), resumeOpts, batch)
	if err != nil {
		t.Fatal(err)
	}
	if second.Start != n {
		t.Fatalf("resumed Start = %d, want %d", second.Start, n)
	}
	sameLoss(t, "resumed tail", full.Loss[n:], second.Loss)
}

func TestExactResumeAfterCrashWithWarmupSchedule(t *testing.T) {
	// Simulate a real mid-training failure: the run is launched with the
	// full horizon (so the warmup+cosine schedule is the final one), dies
	// after the step-n checkpoint, and is relaunched with -resume. The
	// resumed tail must match the uninterrupted run bitwise — pinning the
	// LR-schedule fast-forward (schedule state is the global step index).
	const n = 3
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 2*n, 2)
	opts := Options{Steps: 2 * n, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 5, Warmup: 2}
	full := Serial(model.NewSerialDCHAGEquivalent(a, 2), opts, batch)

	dir := t.TempDir()
	crashOpts := opts
	crashOpts.CheckpointDir = dir
	crashOpts.CheckpointEvery = n
	crashing := func(step int) (*tensor.Tensor, *tensor.Tensor) {
		if step >= n {
			panic("simulated crash after the step-n checkpoint")
		}
		return batch(step)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("crashing batch function did not fire")
			}
		}()
		_, _ = SerialCheckpointed(model.NewSerialDCHAGEquivalent(a, 2), crashOpts, crashing)
	}()
	man, err := ckpt.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Step != n {
		t.Fatalf("crash left checkpoint at step %d, want %d", man.Step, n)
	}

	resumeOpts := opts
	resumeOpts.CheckpointDir = dir
	resumeOpts.Resume = true
	second, err := SerialCheckpointed(model.NewSerialDCHAGEquivalent(a, 2), resumeOpts, batch)
	if err != nil {
		t.Fatal(err)
	}
	sameLoss(t, "post-crash resumed tail", full.Loss[n:], second.Loss)
}

func TestExactResumeDistributed(t *testing.T) {
	const n, p = 3, 2
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 2*n, 2)
	opts := Options{Steps: 2 * n, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 11, ClipNorm: 1}
	full, _, err := Distributed(a, p, false, opts, batch)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	firstOpts := opts
	firstOpts.Steps = n
	firstOpts.CheckpointDir = dir
	if _, _, err := Distributed(a, p, false, firstOpts, batch); err != nil {
		t.Fatal(err)
	}
	resumeOpts := opts
	resumeOpts.CheckpointDir = dir
	resumeOpts.Resume = true
	second, _, err := Distributed(a, p, false, resumeOpts, batch)
	if err != nil {
		t.Fatal(err)
	}
	if second.Start != n {
		t.Fatalf("resumed Start = %d, want %d", second.Start, n)
	}
	sameLoss(t, "distributed resumed tail", full.Loss[n:], second.Loss)
}

func TestExactResumeHybrid(t *testing.T) {
	const n, tp, dp = 2, 2, 2
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 2*n, 4)
	opts := Options{Steps: 2 * n, Batch: 4, LR: 1e-2, MaskRatio: 0.5, Seed: 13, ClipNorm: 1}
	full, _, err := Hybrid(a, tp, dp, false, opts, batch)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	firstOpts := opts
	firstOpts.Steps = n
	firstOpts.CheckpointDir = dir
	if _, _, err := Hybrid(a, tp, dp, false, firstOpts, batch); err != nil {
		t.Fatal(err)
	}
	man, err := ckpt.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.World != tp {
		t.Fatalf("hybrid checkpoint world = %d, want tp = %d (one shard per TP rank of replica 0)", man.World, tp)
	}
	resumeOpts := opts
	resumeOpts.CheckpointDir = dir
	resumeOpts.Resume = true
	second, _, err := Hybrid(a, tp, dp, false, resumeOpts, batch)
	if err != nil {
		t.Fatal(err)
	}
	sameLoss(t, "hybrid resumed tail", full.Loss[n:], second.Loss)
}

// TestReshardRoundTrips is the resharding property test: a model with P=8
// logical partitions trained and checkpointed at q=4 ranks is restored at
// q' in {1 (serial), 2, 8}. Logical parameters must be bit-identical and the
// subsequent loss trajectories must continue the q=4 run's exactly — the
// checkpoint is a topology-free snapshot of one logical model.
func TestReshardRoundTrips(t *testing.T) {
	const n, partitions, saveRanks = 3, 8, 4
	a := tinyArch(8)
	a.Partitions = partitions
	batch := fixedBatches(t, 8, 2*n, 2)
	opts := Options{Steps: 2 * n, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 21, ClipNorm: 1}

	full, _, err := Distributed(a, saveRanks, false, opts, batch)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	firstOpts := opts
	firstOpts.Steps = n
	firstOpts.CheckpointDir = dir
	if _, _, err := Distributed(a, saveRanks, false, firstOpts, batch); err != nil {
		t.Fatal(err)
	}

	// Bit-identical logical parameters at every restoring topology.
	ck, err := ckpt.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Manifest.Partitions != partitions {
		t.Fatalf("manifest partitions = %d, want %d", ck.Manifest.Partitions, partitions)
	}
	for _, q := range []int{1, 2, 4, 8} {
		_, err := comm.Run(q, func(c *comm.Communicator) error {
			d := core.NewDCHAGPartitioned(a.Config, c, partitions)
			if err := ck.RestoreParams(d.Params()); err != nil {
				return err
			}
			for _, pr := range d.Params() {
				logical, ok := ck.LogicalTensor(pr.LogicalKey())
				if !ok {
					return fmt.Errorf("q=%d: logical tensor %q missing", q, pr.LogicalKey())
				}
				want := logical
				if pr.Shard != nil {
					want = tensor.SliceAxis(logical, pr.Shard.Axis, pr.Shard.Lo, pr.Shard.Hi)
				}
				if tensor.MaxAbsDiff(pr.W, want) != 0 {
					return fmt.Errorf("q=%d: param %q not bit-identical to its logical slice", q, pr.Name)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Identical subsequent trajectories at every restoring topology. Each
	// resume runs on its own copy of the checkpoint, since resumed runs
	// write their own checkpoints into the directory they resume from.
	for _, q := range []int{1, 2, 4, 8} {
		resumeOpts := opts
		resumeOpts.CheckpointDir = copyCheckpoint(t, dir)
		resumeOpts.Resume = true
		var second History
		if q == 1 {
			second, err = SerialCheckpointed(model.NewSerialDCHAGEquivalent(a, partitions), resumeOpts, batch)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			second, _, err = Distributed(a, q, false, resumeOpts, batch)
			if err != nil {
				t.Fatal(err)
			}
		}
		if q == saveRanks {
			sameLoss(t, fmt.Sprintf("reshard q=%d tail", q), full.Loss[n:], second.Loss)
		} else {
			nearLoss(t, fmt.Sprintf("reshard q=%d tail", q), full.Loss[n:], second.Loss)
		}
	}
}

func TestResumeRejectsPartitionMismatch(t *testing.T) {
	const n = 2
	a := tinyArch(4) // partitions default to ranks = 2
	batch := fixedBatches(t, 4, 2*n, 2)
	opts := Options{Steps: n, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 1, CheckpointDir: t.TempDir()}
	if _, _, err := Distributed(a, 2, false, opts, batch); err != nil {
		t.Fatal(err)
	}
	bad := a
	bad.Partitions = 4
	opts.Resume = true
	opts.Steps = 2 * n
	_, _, err := Distributed(bad, 4, false, opts, batch)
	if err == nil || !strings.Contains(err.Error(), "partitions") {
		t.Fatalf("want partition-mismatch error, got %v", err)
	}
}

func TestCheckpointOptionValidation(t *testing.T) {
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 1, 2)
	for _, opts := range []Options{
		{Steps: 1, Batch: 2, Resume: true},
		{Steps: 1, Batch: 2, CheckpointEvery: 1},
		{Steps: 1, Batch: 2, Resume: true, CheckpointDir: "x", InitFrom: "y"},
	} {
		if _, err := SerialCheckpointed(model.NewSerial(a), opts, batch); err == nil {
			t.Fatalf("options %+v: want validation error", opts)
		}
	}
}

func TestSerialStageCheckpointRejectsDCHAGModel(t *testing.T) {
	// A plain-serial-stage checkpoint must not silently restore into the
	// partitioned architecture: the state trees are different models.
	const n = 1
	a := tinyArch(4)
	batch := fixedBatches(t, 4, n, 2)
	dir := t.TempDir()
	opts := Options{Steps: n, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 1, CheckpointDir: dir}
	if _, err := SerialCheckpointed(model.NewSerial(a), opts, batch); err != nil {
		t.Fatal(err)
	}
	opts.Resume = true
	_, err := SerialCheckpointed(model.NewSerialDCHAGEquivalent(a, 2), opts, batch)
	if err == nil || !strings.Contains(err.Error(), "stage") {
		t.Fatalf("want stage-mismatch error, got %v", err)
	}
}

func TestInitFromWarmStartsWithoutStep(t *testing.T) {
	// InitFrom restores weights but starts a fresh optimization: step 0,
	// full history length, optimizer state untouched.
	const n = 2
	a := tinyArch(4)
	batch := fixedBatches(t, 4, 2*n, 2)
	dir := t.TempDir()
	opts := Options{Steps: n, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 9, CheckpointDir: dir}
	if _, _, err := Distributed(a, 2, false, opts, batch); err != nil {
		t.Fatal(err)
	}
	warm := Options{Steps: n, Batch: 2, LR: 1e-2, MaskRatio: 0.5, Seed: 9, InitFrom: dir}
	hist, err := SerialCheckpointed(model.NewSerialDCHAGEquivalent(a, 2), warm, batch)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Start != 0 || len(hist.Loss) != n {
		t.Fatalf("warm start ran [%d, %d), want [0, %d)", hist.Start, hist.Start+len(hist.Loss), n)
	}
}
