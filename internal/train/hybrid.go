package train

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/optim"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// setMeshObserver installs per-axis comm observers for the tracer's rows
// (one row per world rank). A nil tracer installs nothing, keeping the
// disabled path free of observer calls entirely.
func setMeshObserver(m *dist.Mesh, tr *obs.Tracer) {
	if tr == nil {
		return
	}
	m.SetObserver(func(a dist.Axis, rank int) comm.Observer {
		return obs.NewCommObserver(tr.Rank(rank), obs.CommCat(a.String()))
	})
}

// Hybrid trains with the paper's Sec. 3.4 composition on the device mesh:
// every data-parallel replica is a D-CHAG (= TP) group of tp ranks holding a
// channel shard of its replica's batch shard; gradients are averaged across
// the DP groups at the end of each backward pass (the single inter-node
// AllReduce the paper's Sec. 6.3 describes).
//
// The returned history holds world-rank-0's view: the DP-mean loss per step,
// which equals the serial full-batch loss exactly when batch shards are
// equal — the hybrid trajectory is bit-compatible with
// model.NewSerialDCHAGEquivalent(arch, tp) trained on the full batch, which
// the tests assert.
func Hybrid(arch model.Arch, tp, dp int, tpViT bool, opts Options, batch BatchFn) (History, *dist.Mesh, error) {
	if tp < 1 || dp < 1 {
		return History{}, nil, fmt.Errorf("train: invalid hybrid sizes tp=%d dp=%d", tp, dp)
	}
	if opts.Batch%dp != 0 {
		return History{}, nil, fmt.Errorf("train: batch %d not divisible by dp %d", opts.Batch, dp)
	}
	if err := opts.validateCheckpoint(); err != nil {
		return History{}, nil, err
	}
	// One read-only Checkpoint shared by all rank goroutines.
	ck, err := openRestore(opts)
	if err != nil {
		return History{}, nil, err
	}
	spec := dist.MeshSpec{TP: tp, FSDP: 1, DP: dp}
	// Frontier-shaped placement when the world fills nodes evenly; otherwise
	// a single "node" wide enough for the whole group (the functional layer
	// only uses the topology for placement metadata).
	topo := dist.Topology{Nodes: 1, GPUsPerNode: spec.World()}
	if spec.World() > 8 && spec.World()%8 == 0 {
		topo = dist.Frontier(spec.World() / 8)
	}
	var hist History
	mesh, err := dist.NewMesh(spec, topo)
	if err != nil {
		return History{}, nil, err
	}
	setMeshObserver(mesh, opts.Trace)
	err = mesh.Run(func(rank int, m *dist.Mesh) error {
		row := opts.Trace.Rank(rank)
		tpc := m.TPComm(rank)
		dpc := m.DPComm(rank)
		coord := m.Spec.CoordOf(rank)

		mdl := model.NewDistributed(arch, tpc, tpViT)
		stage := mdl.Stage.(*model.DCHAGStage)
		lo, hi := stage.ChannelBounds()
		ddp := parallel.NewDDP(dpc, mdl.Params())
		opt := optim.NewAdamW(mdl.Params(), opts.LR, opts.WeightDecay)
		maskRNG := tensor.NewRNG(opts.Seed)
		mse := nn.NewMSELoss()
		masked := nn.NewMaskedMSELoss()
		t := arch.Tokens()
		accum := opts.accum()
		sched := opts.schedule()
		shard := opts.Batch / dp
		start, err := restoreStart(ck, opts, mdl.Params(), opt, stage.D.Partitions, stageDCHAG)
		if err != nil {
			return err
		}
		fastForwardMasks(maskRNG, start, opts, t)
		if rank == 0 {
			hist.Start = start
		}

		for s := start; s < opts.Steps; s++ {
			if sched != nil {
				sched.Apply(opt, s)
			}
			nn.ZeroGrads(mdl.Params())
			stepLoss := 0.0
			for a := 0; a < accum; a++ {
				x, y := batch(s*accum + a)
				// This replica's batch rows, then this rank's channels.
				xDP := tensor.SliceAxis(x, 0, coord.DP*shard, (coord.DP+1)*shard)
				yDP := tensor.SliceAxis(y, 0, coord.DP*shard, (coord.DP+1)*shard)
				xShard := tensor.SliceAxis(xDP, 1, lo, hi)
				target := model.Patchify(yDP, arch.Patch)
				var grad *tensor.Tensor
				tpc.SetPhase("forward")
				fwd := row.Begin("forward", "train")
				if opts.MaskRatio > 0 {
					// Draw the full-batch mask so every replica consumes the
					// same stream as the serial run, then keep this
					// replica's rows.
					full := data.RandomMask(maskRNG, x.Shape[0], t, opts.MaskRatio)
					mask := tensor.SliceAxis(full, 0, coord.DP*shard, (coord.DP+1)*shard)
					pred := mdl.Forward(xShard, mask)
					stepLoss += masked.Forward(pred, target, mask)
					grad = masked.Backward()
				} else {
					pred := mdl.Forward(xShard, nil)
					stepLoss += mse.Forward(pred, target)
					grad = mse.Backward()
				}
				fwd.End()
				tpc.SetPhase("backward")
				bwd := row.Begin("backward", "train")
				mdl.Backward(grad)
				bwd.End()
			}
			if accum > 1 {
				for _, p := range mdl.Params() {
					tensor.ScaleInPlace(p.Grad, 1/float64(accum))
				}
			}
			// The one cross-replica synchronization point (paper Sec. 6.3).
			dpc.SetPhase("dp-sync")
			sync := row.Begin("dp-sync", "train")
			ddp.SyncGradients()
			sync.End()
			optSpan := row.Begin("optim", "train")
			if opts.ClipNorm > 0 {
				tpc.SetPhase("optim")
				local, repl := mdl.PartitionParams()
				DistributedClipGradNorm(tpc, local, repl, opts.ClipNorm)
			}
			opt.Step()
			optSpan.End()
			// Every rank reduces; only world rank 0 records. Keeping the
			// collective outside the rank conditional keeps the DP groups'
			// collective sequences identical (dchag-vet: collectivesym).
			dpc.SetPhase("metrics")
			meanLoss := dpc.AllReduceScalarSum(stepLoss/float64(accum)) / float64(dp)
			if rank == 0 {
				hist.Loss = append(hist.Loss, meanLoss)
			}
			if opts.checkpointDue(s) && coord.DP == 0 {
				// DP replicas hold identical state after SyncGradients, so
				// replica 0's TP group alone writes the checkpoint; world
				// rank 0 commits the manifest once its group's shards are
				// durable. The coord.DP == 0 condition selects whole TP
				// groups — it is uniform across every member of tpc's group,
				// so the barriers below stay symmetric within the group.
				tpc.SetPhase("ckpt")
				ckSpan := row.Begin("ckpt", "train")
				dir := opts.checkpointTarget(s + 1)
				if err := writeShard(dir, coord.TP, mdl.Params(), opt); err != nil {
					return err
				}
				//lint:ignore collectivesym coord.DP==0 admits whole TP groups; uniform within tpc's group
				tpc.Barrier()
				if rank == 0 {
					if err := writeManifest(dir, tp, stage.D.Partitions, s+1, stageDCHAG, mdl.Arch); err != nil {
						return err
					}
					if err := opts.pruneCheckpoints(); err != nil {
						return err
					}
				}
				//lint:ignore collectivesym coord.DP==0 admits whole TP groups; uniform within tpc's group
				tpc.Barrier()
				ckSpan.End()
			}
		}
		return nil
	})
	if err != nil {
		return History{}, mesh, fmt.Errorf("train: hybrid run failed: %w", err)
	}
	return hist, mesh, nil
}
