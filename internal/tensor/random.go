package tensor

import (
	"math"
	"math/rand"
)

// NewRNG returns a deterministic pseudo-random source for the given seed.
// Every stochastic component in this repository threads one of these
// explicitly so that distributed and serial runs can be made bit-identical.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Randn returns a tensor of standard normal samples drawn from rng.
func Randn(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

// RandnScaled returns a tensor of normal samples with the given standard
// deviation.
func RandnScaled(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// Uniform returns a tensor of samples uniform in [lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*rng.Float64()
	}
	return t
}

// XavierUniform returns a tensor initialized with the Glorot/Xavier uniform
// scheme for a weight of shape [fanIn, fanOut].
func XavierUniform(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return Uniform(rng, -limit, limit, fanIn, fanOut)
}

// KaimingNormal returns a tensor initialized with He-normal scaling for a
// weight of shape [fanIn, fanOut].
func KaimingNormal(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	std := math.Sqrt(2.0 / float64(fanIn))
	return RandnScaled(rng, std, fanIn, fanOut)
}
