//go:build amd64

package tensor

// SIMD micro-kernel bindings for amd64. The blocked driver in gemm.go
// dispatches to these AVX2+FMA kernels when the CPU supports them (and the
// OS has enabled YMM state), and to the pure-Go kernels in gemm.go
// otherwise. Kernel availability is probed once at init via CPUID/XGETBV so
// no external cpu-feature dependency is needed.

//go:noescape
func kern4x8F64(k int, a, b, c *float64)

//go:noescape
func kern4x16F32(k int, a, b, c *float32)

func cpuidRaw(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbvRaw() (eax, edx uint32)

// simdGEMM reports whether the AVX2+FMA micro-kernels are usable on this
// machine. Tests may flip it to force the generic path.
var simdGEMM = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidRaw(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuidRaw(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	// XCR0 must have XMM (bit 1) and YMM (bit 2) state enabled by the OS.
	xcr0, _ := xgetbvRaw()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuidRaw(7, 0)
	const avx2Bit = 1 << 5
	return b7&avx2Bit != 0
}
