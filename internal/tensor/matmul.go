package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which matrix
// products run serially; spawning goroutines for tiny products costs more
// than it saves.
const parallelThreshold = 1 << 16

// This file is the destination-passing ("Into") matrix-product API. Every
// XInto(dst, ...) accepts dst == nil (allocate a fresh result) or a tensor of
// exactly the result shape (reuse it; prior contents are overwritten, and dst
// must not alias an operand). The classic allocating functions remain as thin
// XInto(nil, ...) wrappers so call sites migrate incrementally. All variants
// funnel into the blocked, packed, register-tiled driver in gemm.go.

// ensureDst validates or allocates the destination of an Into kernel.
func ensureDst(op string, dst *Tensor, shape ...int) *Tensor {
	if dst == nil {
		return New(shape...)
	}
	if len(dst.Shape) != len(shape) {
		// Copy shape into the panic message: boxing the parameter itself
		// would make every happy-path call heap-allocate the variadic slice.
		panic(fmt.Sprintf("tensor: %s dst rank %v, want %v", op, dst.Shape, append([]int(nil), shape...)))
	}
	for i, d := range shape {
		if dst.Shape[i] != d {
			panic(fmt.Sprintf("tensor: %s dst shape %v, want %v", op, dst.Shape, append([]int(nil), shape...)))
		}
	}
	return dst
}

// ensureDstBatched is ensureDst for batched products whose result shape is
// lead... + [m, n]; it avoids materializing the combined shape slice unless
// dst must actually be allocated.
func ensureDstBatched(op string, dst *Tensor, lead []int, m, n int) *Tensor {
	if dst == nil {
		shape := append(append(make([]int, 0, len(lead)+2), lead...), m, n)
		return New(shape...)
	}
	ok := len(dst.Shape) == len(lead)+2 &&
		dst.Shape[len(lead)] == m && dst.Shape[len(lead)+1] == n
	if ok {
		for i, d := range lead {
			if dst.Shape[i] != d {
				ok = false
				break
			}
		}
	}
	if !ok {
		panic(fmt.Sprintf("tensor: %s dst shape %v, want %v x [%d %d]", op, dst.Shape, append([]int(nil), lead...), m, n))
	}
	return dst
}

// mustNotAlias panics when dst shares a backing array with an operand that
// the kernel reads while writing dst.
func mustNotAlias(op string, dst *Tensor, srcs ...*Tensor) {
	if dst == nil || len(dst.Data) == 0 {
		return
	}
	for _, s := range srcs {
		if s != nil && len(s.Data) > 0 && &dst.Data[0] == &s.Data[0] {
			panic("tensor: " + op + " dst aliases an operand")
		}
	}
}

// MatMulInto computes dst = a@b for rank-2 tensors: a is [M,K], b is [K,N],
// dst is [M,N] (allocated when nil). It returns dst.
//
// dchag:hotpath — the busiest op in the repository; with a non-nil dst it
// performs no heap allocation.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	dst = ensureDst("MatMulInto", dst, m, n)
	mustNotAlias("MatMulInto", dst, a, b)
	gemm2D(dst.Data, a.Data, b.Data, m, k, n, false, false, false)
	return dst
}

// MatMul returns the matrix product a@b for rank-2 tensors. It is the
// allocating convenience wrapper over MatMulInto.
func MatMul(a, b *Tensor) *Tensor { return MatMulInto(nil, a, b) }

// MatMulTInto computes dst = a @ b^T: a is [M,K], b is [N,K], dst is [M,N].
// This avoids materializing the transpose. It returns dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func MatMulTInto(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulT requires rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dimension mismatch %v x %v^T", a.Shape, b.Shape))
	}
	dst = ensureDst("MatMulTInto", dst, m, n)
	mustNotAlias("MatMulTInto", dst, a, b)
	gemm2D(dst.Data, a.Data, b.Data, m, k, n, false, true, false)
	return dst
}

// MatMulT returns a @ b^T; the allocating wrapper over MatMulTInto.
func MatMulT(a, b *Tensor) *Tensor { return MatMulTInto(nil, a, b) }

// TMatMulInto computes dst = a^T @ b: a is [K,M], b is [K,N], dst is [M,N].
// Used for weight gradients (x^T @ dy) without an explicit transpose. It
// returns dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func TMatMulInto(dst, a, b *Tensor) *Tensor {
	dst = tmatmulDst("TMatMulInto", dst, a, b)
	gemm2D(dst.Data, a.Data, b.Data, dst.Shape[0], a.Shape[0], dst.Shape[1], true, false, false)
	return dst
}

// TMatMul returns a^T @ b; the allocating wrapper over TMatMulInto.
func TMatMul(a, b *Tensor) *Tensor { return TMatMulInto(nil, a, b) }

// TMatMulAccInto accumulates dst += a^T @ b with a non-nil dst — the shape
// of a weight-gradient update, writing straight into the gradient buffer.
//
// dchag:hotpath — it performs no heap allocation.
func TMatMulAccInto(dst, a, b *Tensor) {
	if dst == nil {
		panic("tensor: TMatMulAccInto requires a non-nil dst")
	}
	dst = tmatmulDst("TMatMulAccInto", dst, a, b)
	gemm2D(dst.Data, a.Data, b.Data, dst.Shape[0], a.Shape[0], dst.Shape[1], true, false, true)
}

func tmatmulDst(op string, dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires rank-2 operands, got %v x %v", op, a.Shape, b.Shape))
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: %s inner dimension mismatch %v^T x %v", op, a.Shape, b.Shape))
	}
	dst = ensureDst(op, dst, m, n)
	mustNotAlias(op, dst, a, b)
	return dst
}

// serialDispatch reports whether a row-parallel op should run on the calling
// goroutine. Callers branch on it BEFORE building the dispatch closure, so
// the serial path allocates nothing at all.
//
// dchag:hotpath — it must not allocate.
func serialDispatch(m, work int) bool {
	return work < parallelThreshold || m == 1 || runtime.GOMAXPROCS(0) == 1
}

// parallelOverRows splits [0,m) into GOMAXPROCS contiguous blocks and runs
// fn on each concurrently when the work estimate is large enough.
//
// dchag:hotpath — dispatch overhead only; allocation belongs to callers.
func parallelOverRows(m, work int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if work < parallelThreshold || m == 1 || workers == 1 {
		fn(0, m)
		return
	}
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMulNaiveInto is the pre-blocking reference kernel (parallel ikj with no
// packing or tiling). It is kept as the baseline the compute benchmark and
// the kernel-equivalence tests measure the blocked driver against.
func MatMulNaiveInto(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulNaiveInto requires rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulNaiveInto inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	dst = ensureDst("MatMulNaiveInto", dst, m, n)
	mustNotAlias("MatMulNaiveInto", dst, a, b)
	parallelOverRows(m, m*k*n, func(lo, hi int) {
		matmulRows(dst.Data, a.Data, b.Data, lo, hi, k, n)
	})
	return dst
}

// matmulRows computes rows [lo,hi) of dst = A@B with the naive ikj loop.
//
// dchag:hotpath — the baseline inner kernel; it must not allocate.
func matmulRows(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		drow := dst[i*n : (i+1)*n]
		for x := range drow {
			drow[x] = 0
		}
		arow := a[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Transpose2DInto computes dst = t^T for a rank-2 tensor; dst is [N,M]
// (allocated when nil). It returns dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func Transpose2DInto(dst, t *Tensor) *Tensor {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires rank 2, got %v", t.Shape))
	}
	m, n := t.Shape[0], t.Shape[1]
	dst = ensureDst("Transpose2DInto", dst, n, m)
	mustNotAlias("Transpose2DInto", dst, t)
	for i := 0; i < m; i++ {
		row := t.Data[i*n : (i+1)*n]
		for j, v := range row {
			dst.Data[j*m+i] = v
		}
	}
	return dst
}

// Transpose2D returns the transpose of a rank-2 tensor; the allocating
// wrapper over Transpose2DInto.
func Transpose2D(t *Tensor) *Tensor { return Transpose2DInto(nil, t) }

// batchedShapes validates the leading dims of a batched product and returns
// (batch, leading shape).
func batchedShapes(op string, a, b *Tensor) (int, []int) {
	ra, rb := len(a.Shape), len(b.Shape)
	if ra < 2 || rb < 2 || ra != rb {
		panic(fmt.Sprintf("tensor: %s rank mismatch %v x %v", op, a.Shape, b.Shape))
	}
	batch := 1
	for i := 0; i < ra-2; i++ {
		if a.Shape[i] != b.Shape[i] {
			panic(fmt.Sprintf("tensor: %s batch mismatch %v x %v", op, a.Shape, b.Shape))
		}
		batch *= a.Shape[i]
	}
	return batch, a.Shape[:ra-2]
}

// BatchedMatMulInto computes dst = a@b per batch: a is [B...,M,K], b is
// [B...,K,N] with identical leading dims, dst is [B...,M,N]. It returns dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func BatchedMatMulInto(dst, a, b *Tensor) *Tensor {
	batch, lead := batchedShapes("BatchedMatMul", a, b)
	ra := len(a.Shape)
	m, k := a.Shape[ra-2], a.Shape[ra-1]
	k2, n := b.Shape[ra-2], b.Shape[ra-1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: BatchedMatMul inner mismatch %v x %v", a.Shape, b.Shape))
	}
	dst = ensureDstBatched("BatchedMatMulInto", dst, lead, m, n)
	mustNotAlias("BatchedMatMulInto", dst, a, b)
	if serialDispatch(batch, batch*m*k*n) {
		for bi := 0; bi < batch; bi++ {
			gemm2DSerial(dst.Data[bi*m*n:(bi+1)*m*n], a.Data[bi*m*k:(bi+1)*m*k], b.Data[bi*k*n:(bi+1)*k*n], m, k, n, false, false, false)
		}
		return dst
	}
	parallelOverRows(batch, batch*m*k*n, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			gemm2DSerial(dst.Data[bi*m*n:(bi+1)*m*n], a.Data[bi*m*k:(bi+1)*m*k], b.Data[bi*k*n:(bi+1)*k*n], m, k, n, false, false, false)
		}
	})
	return dst
}

// BatchedMatMul multiplies matching leading-batch matrices; the allocating
// wrapper over BatchedMatMulInto.
func BatchedMatMul(a, b *Tensor) *Tensor { return BatchedMatMulInto(nil, a, b) }

// BatchedMatMulTInto computes dst = a @ b^T per batch: a is [B...,M,K], b is
// [B...,N,K], dst is [B...,M,N]. This is the attention score product Q @ K^T.
// It returns dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func BatchedMatMulTInto(dst, a, b *Tensor) *Tensor {
	batch, lead := batchedShapes("BatchedMatMulT", a, b)
	ra := len(a.Shape)
	m, k := a.Shape[ra-2], a.Shape[ra-1]
	n, k2 := b.Shape[ra-2], b.Shape[ra-1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: BatchedMatMulT inner mismatch %v x %v^T", a.Shape, b.Shape))
	}
	dst = ensureDstBatched("BatchedMatMulTInto", dst, lead, m, n)
	mustNotAlias("BatchedMatMulTInto", dst, a, b)
	if serialDispatch(batch, batch*m*k*n) {
		for bi := 0; bi < batch; bi++ {
			gemm2DSerial(dst.Data[bi*m*n:(bi+1)*m*n], a.Data[bi*m*k:(bi+1)*m*k], b.Data[bi*n*k:(bi+1)*n*k], m, k, n, false, true, false)
		}
		return dst
	}
	parallelOverRows(batch, batch*m*k*n, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			gemm2DSerial(dst.Data[bi*m*n:(bi+1)*m*n], a.Data[bi*m*k:(bi+1)*m*k], b.Data[bi*n*k:(bi+1)*n*k], m, k, n, false, true, false)
		}
	})
	return dst
}

// BatchedMatMulT multiplies a by the transpose of b per batch; the
// allocating wrapper over BatchedMatMulTInto.
func BatchedMatMulT(a, b *Tensor) *Tensor { return BatchedMatMulTInto(nil, a, b) }

// BatchedTMatMulInto computes dst = a^T @ b per batch: a is [B...,K,M], b is
// [B...,K,N], dst is [B...,M,N]. This is the gradient product scores^T @
// dOut used in attention backward passes. It returns dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func BatchedTMatMulInto(dst, a, b *Tensor) *Tensor {
	batch, lead := batchedShapes("BatchedTMatMul", a, b)
	ra := len(a.Shape)
	k, m := a.Shape[ra-2], a.Shape[ra-1]
	k2, n := b.Shape[ra-2], b.Shape[ra-1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: BatchedTMatMul inner mismatch %v^T x %v", a.Shape, b.Shape))
	}
	dst = ensureDstBatched("BatchedTMatMulInto", dst, lead, m, n)
	mustNotAlias("BatchedTMatMulInto", dst, a, b)
	if serialDispatch(batch, batch*m*k*n) {
		for bi := 0; bi < batch; bi++ {
			gemm2DSerial(dst.Data[bi*m*n:(bi+1)*m*n], a.Data[bi*k*m:(bi+1)*k*m], b.Data[bi*k*n:(bi+1)*k*n], m, k, n, true, false, false)
		}
		return dst
	}
	parallelOverRows(batch, batch*m*k*n, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			gemm2DSerial(dst.Data[bi*m*n:(bi+1)*m*n], a.Data[bi*k*m:(bi+1)*k*m], b.Data[bi*k*n:(bi+1)*k*n], m, k, n, true, false, false)
		}
	})
	return dst
}

// BatchedTMatMul multiplies the transpose of a by b per batch; the
// allocating wrapper over BatchedTMatMulInto.
func BatchedTMatMul(a, b *Tensor) *Tensor { return BatchedTMatMulInto(nil, a, b) }
