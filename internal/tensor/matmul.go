package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-adds below which MatMul runs
// serially; spawning goroutines for tiny products costs more than it saves.
const parallelThreshold = 1 << 16

// MatMul returns the matrix product a@b for rank-2 tensors, parallelized
// across row blocks with goroutines. a is [M,K], b is [K,N], the result is
// [M,N].
//
// dchag:hotpath — the busiest op in the repository. The result allocation
// below is the published buffer-reuse worklist for ROADMAP item 1.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul requires rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	//lint:ignore hotalloc the API returns a fresh tensor; arena/buffer reuse is ROADMAP item 1
	out := New(m, n)
	matmulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// matmulInto computes dst += 0 then dst = A@B with dst of size m*n. The ikj
// loop order keeps the inner loop contiguous over both B and dst rows.
//
// dchag:hotpath — every Forward/Backward in training and serving funnels
// through here; it must not allocate.
func matmulInto(dst, a, b []float64, m, k, n int) {
	work := m * k * n
	if work < parallelThreshold || m == 1 {
		matmulRows(dst, a, b, 0, m, k, n)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matmulRows(dst, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matmulRows computes rows [lo,hi) of dst = A@B.
//
// dchag:hotpath — the innermost kernel; it must not allocate.
func matmulRows(dst, a, b []float64, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		drow := dst[i*n : (i+1)*n]
		for x := range drow {
			drow[x] = 0
		}
		arow := a[i*k : (i+1)*k]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : (p+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulT returns a @ b^T for rank-2 tensors: a is [M,K], b is [N,K], the
// result is [M,N]. This avoids materializing the transpose.
func MatMulT(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulT requires rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulT inner dimension mismatch %v x %v^T", a.Shape, b.Shape))
	}
	out := New(m, n)
	run := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			drow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*k : (j+1)*k]
				s := 0.0
				for p := range arow {
					s += arow[p] * brow[p]
				}
				drow[j] = s
			}
		}
	}
	parallelOverRows(m, m*k*n, run)
	return out
}

// TMatMul returns a^T @ b for rank-2 tensors: a is [K,M], b is [K,N], the
// result is [M,N]. Used for weight gradients (x^T @ dy) without an explicit
// transpose.
func TMatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: TMatMul requires rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: TMatMul inner dimension mismatch %v^T x %v", a.Shape, b.Shape))
	}
	out := New(m, n)
	// Parallelize over output rows (columns of a). Each worker reads all of
	// a and b but writes a disjoint row block of out.
	run := func(lo, hi int) {
		for p := 0; p < k; p++ {
			arow := a.Data[p*m : (p+1)*m]
			brow := b.Data[p*n : (p+1)*n]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				drow := out.Data[i*n : (i+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
	parallelOverRows(m, m*k*n, run)
	return out
}

// parallelOverRows splits [0,m) into GOMAXPROCS contiguous blocks and runs
// fn on each concurrently when the work estimate is large enough.
//
// dchag:hotpath — dispatch overhead only; allocation belongs to callers.
func parallelOverRows(m, work int, fn func(lo, hi int)) {
	if work < parallelThreshold || m == 1 {
		fn(0, m)
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Transpose2D returns the transpose of a rank-2 tensor.
func Transpose2D(t *Tensor) *Tensor {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose2D requires rank 2, got %v", t.Shape))
	}
	m, n := t.Shape[0], t.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}

// BatchedMatMul multiplies matching leading-batch matrices: a is [B...,M,K],
// b is [B...,K,N] with identical leading dims, producing [B...,M,N].
func BatchedMatMul(a, b *Tensor) *Tensor {
	ra, rb := len(a.Shape), len(b.Shape)
	if ra < 2 || rb < 2 || ra != rb {
		panic(fmt.Sprintf("tensor: BatchedMatMul rank mismatch %v x %v", a.Shape, b.Shape))
	}
	batch := 1
	for i := 0; i < ra-2; i++ {
		if a.Shape[i] != b.Shape[i] {
			panic(fmt.Sprintf("tensor: BatchedMatMul batch mismatch %v x %v", a.Shape, b.Shape))
		}
		batch *= a.Shape[i]
	}
	m, k := a.Shape[ra-2], a.Shape[ra-1]
	k2, n := b.Shape[rb-2], b.Shape[rb-1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: BatchedMatMul inner mismatch %v x %v", a.Shape, b.Shape))
	}
	outShape := append(append([]int(nil), a.Shape[:ra-2]...), m, n)
	out := New(outShape...)
	run := func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			matmulRows(out.Data[bi*m*n:(bi+1)*m*n], a.Data[bi*m*k:(bi+1)*m*k], b.Data[bi*k*n:(bi+1)*k*n], 0, m, k, n)
		}
	}
	parallelOverRows(batch, batch*m*k*n, run)
	return out
}

// BatchedMatMulT multiplies a by the transpose of b per batch: a is
// [B...,M,K], b is [B...,N,K], producing [B...,M,N]. This is the attention
// score product Q @ K^T.
func BatchedMatMulT(a, b *Tensor) *Tensor {
	ra, rb := len(a.Shape), len(b.Shape)
	if ra < 2 || rb < 2 || ra != rb {
		panic(fmt.Sprintf("tensor: BatchedMatMulT rank mismatch %v x %v", a.Shape, b.Shape))
	}
	batch := 1
	for i := 0; i < ra-2; i++ {
		if a.Shape[i] != b.Shape[i] {
			panic(fmt.Sprintf("tensor: BatchedMatMulT batch mismatch %v x %v", a.Shape, b.Shape))
		}
		batch *= a.Shape[i]
	}
	m, k := a.Shape[ra-2], a.Shape[ra-1]
	n, k2 := b.Shape[rb-2], b.Shape[rb-1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: BatchedMatMulT inner mismatch %v x %v^T", a.Shape, b.Shape))
	}
	outShape := append(append([]int(nil), a.Shape[:ra-2]...), m, n)
	out := New(outShape...)
	run := func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			ab := a.Data[bi*m*k : (bi+1)*m*k]
			bb := b.Data[bi*n*k : (bi+1)*n*k]
			ob := out.Data[bi*m*n : (bi+1)*m*n]
			for i := 0; i < m; i++ {
				arow := ab[i*k : (i+1)*k]
				drow := ob[i*n : (i+1)*n]
				for j := 0; j < n; j++ {
					brow := bb[j*k : (j+1)*k]
					s := 0.0
					for p := range arow {
						s += arow[p] * brow[p]
					}
					drow[j] = s
				}
			}
		}
	}
	parallelOverRows(batch, batch*m*k*n, run)
	return out
}

// BatchedTMatMul multiplies the transpose of a by b per batch: a is
// [B...,K,M], b is [B...,K,N], producing [B...,M,N]. This is the gradient
// product scores^T @ dOut used in attention backward passes.
func BatchedTMatMul(a, b *Tensor) *Tensor {
	ra, rb := len(a.Shape), len(b.Shape)
	if ra < 2 || rb < 2 || ra != rb {
		panic(fmt.Sprintf("tensor: BatchedTMatMul rank mismatch %v x %v", a.Shape, b.Shape))
	}
	batch := 1
	for i := 0; i < ra-2; i++ {
		if a.Shape[i] != b.Shape[i] {
			panic(fmt.Sprintf("tensor: BatchedTMatMul batch mismatch %v x %v", a.Shape, b.Shape))
		}
		batch *= a.Shape[i]
	}
	k, m := a.Shape[ra-2], a.Shape[ra-1]
	k2, n := b.Shape[rb-2], b.Shape[rb-1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: BatchedTMatMul inner mismatch %v^T x %v", a.Shape, b.Shape))
	}
	outShape := append(append([]int(nil), a.Shape[:ra-2]...), m, n)
	out := New(outShape...)
	run := func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			ab := a.Data[bi*k*m : (bi+1)*k*m]
			bb := b.Data[bi*k*n : (bi+1)*k*n]
			ob := out.Data[bi*m*n : (bi+1)*m*n]
			for p := 0; p < k; p++ {
				arow := ab[p*m : (p+1)*m]
				brow := bb[p*n : (p+1)*n]
				for i := 0; i < m; i++ {
					av := arow[i]
					if av == 0 {
						continue
					}
					drow := ob[i*n : (i+1)*n]
					for j, bv := range brow {
						drow[j] += av * bv
					}
				}
			}
		}
	}
	parallelOverRows(batch, batch*m*k*n, run)
	return out
}
