package tensor

import (
	"fmt"
	"math"
)

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	mustSameShape("Add", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b elementwise. Shapes must match.
func Sub(a, b *Tensor) *Tensor {
	mustSameShape("Sub", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a * b. Shapes must match.
func Mul(a, b *Tensor) *Tensor {
	mustSameShape("Mul", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Div returns a / b elementwise. Shapes must match.
func Div(a, b *Tensor) *Tensor {
	mustSameShape("Div", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] / b.Data[i]
	}
	return out
}

// Scale returns a * s for scalar s.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// AddScalar returns a + s for scalar s.
func AddScalar(a *Tensor, s float64) *Tensor {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + s
	}
	return out
}

// AddInPlace accumulates b into a (a += b). Shapes must match.
//
// dchag:hotpath — gradient accumulation runs this every step; it must not
// allocate.
func AddInPlace(a, b *Tensor) {
	mustSameShape("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// ScaleInPlace multiplies a by scalar s in place.
//
// dchag:hotpath — it must not allocate.
func ScaleInPlace(a *Tensor, s float64) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// AXPY performs a += alpha*b in place. Shapes must match.
//
// dchag:hotpath — the optimizer update runs this per parameter per step; it
// must not allocate.
func AXPY(alpha float64, b, a *Tensor) {
	mustSameShape("AXPY", a, b)
	for i := range a.Data {
		a.Data[i] += alpha * b.Data[i]
	}
}

// Apply returns a new tensor with f applied to every element.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = f(a.Data[i])
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements. It panics on an empty
// tensor.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Mean of empty tensor")
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the largest element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Norm2 returns the Euclidean (Frobenius) norm of the tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// SumAxis reduces over one axis, returning a tensor whose rank is one less.
// axis may be negative (counted from the end).
func SumAxis(t *Tensor, axis int) *Tensor {
	if axis < 0 {
		axis += len(t.Shape)
	}
	if axis < 0 || axis >= len(t.Shape) {
		panic(fmt.Sprintf("tensor: SumAxis axis out of range for shape %v", t.Shape))
	}
	outer := 1
	for _, d := range t.Shape[:axis] {
		outer *= d
	}
	n := t.Shape[axis]
	inner := 1
	for _, d := range t.Shape[axis+1:] {
		inner *= d
	}
	outShape := make([]int, 0, len(t.Shape)-1)
	outShape = append(outShape, t.Shape[:axis]...)
	outShape = append(outShape, t.Shape[axis+1:]...)
	if len(outShape) == 0 {
		outShape = []int{1}
	}
	out := New(outShape...)
	for o := 0; o < outer; o++ {
		for k := 0; k < n; k++ {
			src := (o*n + k) * inner
			dst := o * inner
			for i := 0; i < inner; i++ {
				out.Data[dst+i] += t.Data[src+i]
			}
		}
	}
	return out
}

// MeanAxis reduces over one axis by averaging.
func MeanAxis(t *Tensor, axis int) *Tensor {
	if axis < 0 {
		axis += len(t.Shape)
	}
	out := SumAxis(t, axis)
	ScaleInPlace(out, 1/float64(t.Shape[axis]))
	return out
}

// SoftmaxLastDim returns softmax applied along the final dimension, computed
// with the usual max-subtraction for numerical stability.
func SoftmaxLastDim(t *Tensor) *Tensor {
	n := t.Shape[len(t.Shape)-1]
	rows := t.Numel() / n
	out := New(t.Shape...)
	for r := 0; r < rows; r++ {
		row := t.Data[r*n : (r+1)*n]
		dst := out.Data[r*n : (r+1)*n]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		s := 0.0
		for i, v := range row {
			e := math.Exp(v - m)
			dst[i] = e
			s += e
		}
		inv := 1 / s
		for i := range dst {
			dst[i] *= inv
		}
	}
	return out
}

// SoftmaxBackwardLastDim computes the gradient of a softmax (applied along
// the last dimension) given the softmax output y and upstream gradient gy:
// dx_i = y_i * (gy_i - sum_j gy_j y_j).
func SoftmaxBackwardLastDim(y, gy *Tensor) *Tensor {
	mustSameShape("SoftmaxBackwardLastDim", y, gy)
	n := y.Shape[len(y.Shape)-1]
	rows := y.Numel() / n
	out := New(y.Shape...)
	for r := 0; r < rows; r++ {
		yr := y.Data[r*n : (r+1)*n]
		gr := gy.Data[r*n : (r+1)*n]
		dst := out.Data[r*n : (r+1)*n]
		dot := 0.0
		for i := range yr {
			dot += yr[i] * gr[i]
		}
		for i := range yr {
			dst[i] = yr[i] * (gr[i] - dot)
		}
	}
	return out
}

// Concat joins tensors along the given axis. All inputs must agree on every
// other dimension.
func Concat(axis int, ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Concat of zero tensors")
	}
	first := ts[0]
	if axis < 0 {
		axis += len(first.Shape)
	}
	if axis < 0 || axis >= len(first.Shape) {
		panic(fmt.Sprintf("tensor: Concat axis out of range for shape %v", first.Shape))
	}
	total := 0
	for _, t := range ts {
		if len(t.Shape) != len(first.Shape) {
			panic("tensor: Concat rank mismatch")
		}
		for i := range t.Shape {
			if i != axis && t.Shape[i] != first.Shape[i] {
				panic(fmt.Sprintf("tensor: Concat shape mismatch %v vs %v on axis %d", t.Shape, first.Shape, i))
			}
		}
		total += t.Shape[axis]
	}
	outShape := append([]int(nil), first.Shape...)
	outShape[axis] = total
	out := New(outShape...)

	outer := 1
	for _, d := range first.Shape[:axis] {
		outer *= d
	}
	inner := 1
	for _, d := range first.Shape[axis+1:] {
		inner *= d
	}
	outRow := total * inner
	off := 0
	for _, t := range ts {
		rows := t.Shape[axis] * inner
		for o := 0; o < outer; o++ {
			copy(out.Data[o*outRow+off:o*outRow+off+rows], t.Data[o*rows:(o+1)*rows])
		}
		off += rows
	}
	return out
}

// Split partitions t into parts of the given sizes along axis. The sizes
// must sum to the axis extent. Each part is a fresh copy.
func Split(t *Tensor, axis int, sizes []int) []*Tensor {
	if axis < 0 {
		axis += len(t.Shape)
	}
	if axis < 0 || axis >= len(t.Shape) {
		panic(fmt.Sprintf("tensor: Split axis out of range for shape %v", t.Shape))
	}
	sum := 0
	for _, s := range sizes {
		if s < 0 {
			panic("tensor: Split negative size")
		}
		sum += s
	}
	if sum != t.Shape[axis] {
		panic(fmt.Sprintf("tensor: Split sizes %v do not sum to axis extent %d", sizes, t.Shape[axis]))
	}
	outer := 1
	for _, d := range t.Shape[:axis] {
		outer *= d
	}
	inner := 1
	for _, d := range t.Shape[axis+1:] {
		inner *= d
	}
	srcRow := t.Shape[axis] * inner
	parts := make([]*Tensor, len(sizes))
	off := 0
	for p, s := range sizes {
		shape := append([]int(nil), t.Shape...)
		shape[axis] = s
		part := New(shape...)
		rows := s * inner
		for o := 0; o < outer; o++ {
			copy(part.Data[o*rows:(o+1)*rows], t.Data[o*srcRow+off:o*srcRow+off+rows])
		}
		parts[p] = part
		off += rows
	}
	return parts
}

// SplitEqual partitions t into n equal chunks along axis. The axis extent
// must be divisible by n.
func SplitEqual(t *Tensor, axis, n int) []*Tensor {
	if axis < 0 {
		axis += len(t.Shape)
	}
	if t.Shape[axis]%n != 0 {
		panic(fmt.Sprintf("tensor: SplitEqual axis extent %d not divisible by %d", t.Shape[axis], n))
	}
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = t.Shape[axis] / n
	}
	return Split(t, axis, sizes)
}

// Stack joins rank-k tensors of identical shape into one rank-(k+1) tensor
// along a new leading axis.
func Stack(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Stack of zero tensors")
	}
	for _, t := range ts[1:] {
		if !SameShape(ts[0], t) {
			panic("tensor: Stack shape mismatch")
		}
	}
	shape := append([]int{len(ts)}, ts[0].Shape...)
	out := New(shape...)
	n := ts[0].Numel()
	for i, t := range ts {
		copy(out.Data[i*n:(i+1)*n], t.Data)
	}
	return out
}

// SliceAxis returns a copy of the [from, to) range of t along the given
// axis.
func SliceAxis(t *Tensor, axis, from, to int) *Tensor {
	if axis < 0 {
		axis += len(t.Shape)
	}
	if axis < 0 || axis >= len(t.Shape) {
		panic(fmt.Sprintf("tensor: SliceAxis axis out of range for shape %v", t.Shape))
	}
	if from < 0 || to > t.Shape[axis] || from > to {
		panic(fmt.Sprintf("tensor: SliceAxis bounds [%d,%d) invalid for extent %d", from, to, t.Shape[axis]))
	}
	outer := 1
	for _, d := range t.Shape[:axis] {
		outer *= d
	}
	inner := 1
	for _, d := range t.Shape[axis+1:] {
		inner *= d
	}
	shape := append([]int(nil), t.Shape...)
	shape[axis] = to - from
	out := New(shape...)
	srcRow := t.Shape[axis] * inner
	rows := (to - from) * inner
	for o := 0; o < outer; o++ {
		copy(out.Data[o*rows:(o+1)*rows], t.Data[o*srcRow+from*inner:o*srcRow+from*inner+rows])
	}
	return out
}

// SetSliceAxis writes src into the [from, from+src.Shape[axis]) range of dst
// along the given axis; the inverse of SliceAxis. All other dimensions of src
// must match dst.
func SetSliceAxis(dst *Tensor, axis, from int, src *Tensor) {
	if axis < 0 {
		axis += len(dst.Shape)
	}
	if axis < 0 || axis >= len(dst.Shape) {
		panic(fmt.Sprintf("tensor: SetSliceAxis axis out of range for shape %v", dst.Shape))
	}
	if len(src.Shape) != len(dst.Shape) {
		panic(fmt.Sprintf("tensor: SetSliceAxis rank mismatch %v vs %v", src.Shape, dst.Shape))
	}
	for i := range dst.Shape {
		if i != axis && src.Shape[i] != dst.Shape[i] {
			panic(fmt.Sprintf("tensor: SetSliceAxis shape mismatch %v vs %v on axis %d", src.Shape, dst.Shape, i))
		}
	}
	to := from + src.Shape[axis]
	if from < 0 || to > dst.Shape[axis] {
		panic(fmt.Sprintf("tensor: SetSliceAxis bounds [%d,%d) invalid for extent %d", from, to, dst.Shape[axis]))
	}
	outer := 1
	for _, d := range dst.Shape[:axis] {
		outer *= d
	}
	inner := 1
	for _, d := range dst.Shape[axis+1:] {
		inner *= d
	}
	dstRow := dst.Shape[axis] * inner
	rows := src.Shape[axis] * inner
	for o := 0; o < outer; o++ {
		copy(dst.Data[o*dstRow+from*inner:o*dstRow+from*inner+rows], src.Data[o*rows:(o+1)*rows])
	}
}

func mustSameShape(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}
