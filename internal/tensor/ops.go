package tensor

import (
	"fmt"
	"math"
)

// Elementwise and reduction ops in destination-passing form. Every
// XInto(dst, ...) accepts dst == nil (allocate) or a tensor of the result
// shape (reuse; prior contents overwritten). Unlike the matrix products,
// elementwise Into kernels MAY alias dst with an operand — they process
// strictly element by element — so AddInto(a, a, b) is a valid in-place add.
// The allocating forms remain as thin wrappers.

// AddInto computes dst = a + b elementwise and returns dst.
//
// dchag:hotpath — residual adds run per block per step; with a non-nil dst
// it performs no heap allocation.
func AddInto(dst, a, b *Tensor) *Tensor {
	mustSameShape("Add", a, b)
	dst = ensureDst("AddInto", dst, a.Shape...)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// Add returns a + b elementwise; the allocating wrapper over AddInto.
func Add(a, b *Tensor) *Tensor { return AddInto(nil, a, b) }

// SubInto computes dst = a - b elementwise and returns dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func SubInto(dst, a, b *Tensor) *Tensor {
	mustSameShape("Sub", a, b)
	dst = ensureDst("SubInto", dst, a.Shape...)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// Sub returns a - b elementwise; the allocating wrapper over SubInto.
func Sub(a, b *Tensor) *Tensor { return SubInto(nil, a, b) }

// MulInto computes the elementwise (Hadamard) product dst = a * b and
// returns dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func MulInto(dst, a, b *Tensor) *Tensor {
	mustSameShape("Mul", a, b)
	dst = ensureDst("MulInto", dst, a.Shape...)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
	return dst
}

// Mul returns the elementwise product a * b; the allocating wrapper over
// MulInto.
func Mul(a, b *Tensor) *Tensor { return MulInto(nil, a, b) }

// DivInto computes dst = a / b elementwise and returns dst.
func DivInto(dst, a, b *Tensor) *Tensor {
	mustSameShape("Div", a, b)
	dst = ensureDst("DivInto", dst, a.Shape...)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] / b.Data[i]
	}
	return dst
}

// Div returns a / b elementwise; the allocating wrapper over DivInto.
func Div(a, b *Tensor) *Tensor { return DivInto(nil, a, b) }

// ScaleInto computes dst = a * s for scalar s and returns dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func ScaleInto(dst, a *Tensor, s float64) *Tensor {
	dst = ensureDst("ScaleInto", dst, a.Shape...)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] * s
	}
	return dst
}

// Scale returns a * s for scalar s; the allocating wrapper over ScaleInto.
func Scale(a *Tensor, s float64) *Tensor { return ScaleInto(nil, a, s) }

// AddScalarInto computes dst = a + s for scalar s and returns dst.
func AddScalarInto(dst, a *Tensor, s float64) *Tensor {
	dst = ensureDst("AddScalarInto", dst, a.Shape...)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + s
	}
	return dst
}

// AddScalar returns a + s for scalar s; the allocating wrapper over
// AddScalarInto.
func AddScalar(a *Tensor, s float64) *Tensor { return AddScalarInto(nil, a, s) }

// AddInPlace accumulates b into a (a += b). Shapes must match.
//
// dchag:hotpath — gradient accumulation runs this every step; it must not
// allocate.
func AddInPlace(a, b *Tensor) {
	mustSameShape("AddInPlace", a, b)
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
}

// ScaleInPlace multiplies a by scalar s in place.
//
// dchag:hotpath — it must not allocate.
func ScaleInPlace(a *Tensor, s float64) {
	for i := range a.Data {
		a.Data[i] *= s
	}
}

// AXPY performs a += alpha*b in place. Shapes must match.
//
// dchag:hotpath — the optimizer update runs this per parameter per step; it
// must not allocate.
func AXPY(alpha float64, b, a *Tensor) {
	mustSameShape("AXPY", a, b)
	for i := range a.Data {
		a.Data[i] += alpha * b.Data[i]
	}
}

// ApplyInto computes dst[i] = f(a[i]) for every element and returns dst.
//
// dchag:hotpath — activations run this per layer per step; with a non-nil
// dst it performs no heap allocation (f itself must not allocate).
func ApplyInto(dst, a *Tensor, f func(float64) float64) *Tensor {
	dst = ensureDst("ApplyInto", dst, a.Shape...)
	for i := range a.Data {
		dst.Data[i] = f(a.Data[i])
	}
	return dst
}

// Apply returns a new tensor with f applied to every element; the allocating
// wrapper over ApplyInto.
func Apply(a *Tensor, f func(float64) float64) *Tensor { return ApplyInto(nil, a, f) }

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements. It panics on an empty
// tensor.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Mean of empty tensor")
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the largest element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Norm2 returns the Euclidean (Frobenius) norm of the tensor.
func (t *Tensor) Norm2() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// sumAxisShape computes the result shape of a one-axis reduction.
func sumAxisShape(op string, t *Tensor, axis int) (int, []int) {
	if axis < 0 {
		axis += len(t.Shape)
	}
	if axis < 0 || axis >= len(t.Shape) {
		panic(fmt.Sprintf("tensor: %s axis out of range for shape %v", op, t.Shape))
	}
	outShape := make([]int, 0, len(t.Shape)-1)
	outShape = append(outShape, t.Shape[:axis]...)
	outShape = append(outShape, t.Shape[axis+1:]...)
	if len(outShape) == 0 {
		outShape = []int{1}
	}
	return axis, outShape
}

// SumAxisInto reduces over one axis (negative axes count from the end) into
// dst, whose rank is one less, and returns dst. dst must not alias t.
//
// dchag:hotpath — with a non-nil dst it allocates only the result-shape
// header on first use.
func SumAxisInto(dst, t *Tensor, axis int) *Tensor {
	axis, outShape := sumAxisShape("SumAxis", t, axis)
	dst = ensureDst("SumAxisInto", dst, outShape...)
	mustNotAlias("SumAxisInto", dst, t)
	dst.Zero()
	outer := 1
	for _, d := range t.Shape[:axis] {
		outer *= d
	}
	n := t.Shape[axis]
	inner := 1
	for _, d := range t.Shape[axis+1:] {
		inner *= d
	}
	for o := 0; o < outer; o++ {
		for k := 0; k < n; k++ {
			src := (o*n + k) * inner
			d := o * inner
			for i := 0; i < inner; i++ {
				dst.Data[d+i] += t.Data[src+i]
			}
		}
	}
	return dst
}

// SumAxis reduces over one axis, returning a tensor whose rank is one less;
// the allocating wrapper over SumAxisInto.
func SumAxis(t *Tensor, axis int) *Tensor { return SumAxisInto(nil, t, axis) }

// MeanAxisInto reduces over one axis by averaging into dst and returns dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func MeanAxisInto(dst, t *Tensor, axis int) *Tensor {
	if axis < 0 {
		axis += len(t.Shape)
	}
	dst = SumAxisInto(dst, t, axis)
	ScaleInPlace(dst, 1/float64(t.Shape[axis]))
	return dst
}

// MeanAxis reduces over one axis by averaging; the allocating wrapper over
// MeanAxisInto.
func MeanAxis(t *Tensor, axis int) *Tensor { return MeanAxisInto(nil, t, axis) }

// SoftmaxLastDimInto computes softmax along the final dimension into dst
// (with the usual max-subtraction for numerical stability) and returns dst.
// dst may alias t for an in-place softmax.
//
// dchag:hotpath — attention runs this per head per step; with a non-nil dst
// it performs no heap allocation.
func SoftmaxLastDimInto(dst, t *Tensor) *Tensor {
	dst = ensureDst("SoftmaxLastDimInto", dst, t.Shape...)
	n := t.Shape[len(t.Shape)-1]
	rows := t.Numel() / n
	for r := 0; r < rows; r++ {
		row := t.Data[r*n : (r+1)*n]
		d := dst.Data[r*n : (r+1)*n]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		s := 0.0
		for i, v := range row {
			e := math.Exp(v - m)
			d[i] = e
			s += e
		}
		inv := 1 / s
		for i := range d {
			d[i] *= inv
		}
	}
	return dst
}

// SoftmaxLastDim returns softmax applied along the final dimension; the
// allocating wrapper over SoftmaxLastDimInto.
func SoftmaxLastDim(t *Tensor) *Tensor { return SoftmaxLastDimInto(nil, t) }

// SoftmaxBackwardLastDimInto computes the gradient of a softmax (applied
// along the last dimension) given the softmax output y and upstream gradient
// gy: dx_i = y_i * (gy_i - sum_j gy_j y_j). dst may alias y or gy. It
// returns dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func SoftmaxBackwardLastDimInto(dst, y, gy *Tensor) *Tensor {
	mustSameShape("SoftmaxBackwardLastDim", y, gy)
	dst = ensureDst("SoftmaxBackwardLastDimInto", dst, y.Shape...)
	n := y.Shape[len(y.Shape)-1]
	rows := y.Numel() / n
	for r := 0; r < rows; r++ {
		yr := y.Data[r*n : (r+1)*n]
		gr := gy.Data[r*n : (r+1)*n]
		d := dst.Data[r*n : (r+1)*n]
		dot := 0.0
		for i := range yr {
			dot += yr[i] * gr[i]
		}
		for i := range yr {
			d[i] = yr[i] * (gr[i] - dot)
		}
	}
	return dst
}

// SoftmaxBackwardLastDim computes the softmax gradient; the allocating
// wrapper over SoftmaxBackwardLastDimInto.
func SoftmaxBackwardLastDim(y, gy *Tensor) *Tensor {
	return SoftmaxBackwardLastDimInto(nil, y, gy)
}

// concatShape validates Concat operands and returns (axis, result shape).
func concatShape(axis int, ts []*Tensor) (int, []int) {
	if len(ts) == 0 {
		panic("tensor: Concat of zero tensors")
	}
	first := ts[0]
	if axis < 0 {
		axis += len(first.Shape)
	}
	if axis < 0 || axis >= len(first.Shape) {
		panic(fmt.Sprintf("tensor: Concat axis out of range for shape %v", first.Shape))
	}
	total := 0
	for _, t := range ts {
		if len(t.Shape) != len(first.Shape) {
			panic("tensor: Concat rank mismatch")
		}
		for i := range t.Shape {
			if i != axis && t.Shape[i] != first.Shape[i] {
				panic(fmt.Sprintf("tensor: Concat shape mismatch %v vs %v on axis %d", t.Shape, first.Shape, i))
			}
		}
		total += t.Shape[axis]
	}
	outShape := append([]int(nil), first.Shape...)
	outShape[axis] = total
	return axis, outShape
}

// ConcatInto joins tensors along the given axis into dst and returns dst.
// All inputs must agree on every other dimension; dst must not alias any
// input. Reshard and micro-batch assembly paths pass pooled destinations so
// steady-state assembly stops allocating.
//
// dchag:hotpath — with a non-nil dst it allocates only the shape header.
func ConcatInto(dst *Tensor, axis int, ts ...*Tensor) *Tensor {
	axis, outShape := concatShape(axis, ts)
	dst = ensureDst("ConcatInto", dst, outShape...)
	mustNotAlias("ConcatInto", dst, ts...)
	first := ts[0]
	outer := 1
	for _, d := range first.Shape[:axis] {
		outer *= d
	}
	inner := 1
	for _, d := range first.Shape[axis+1:] {
		inner *= d
	}
	outRow := outShape[axis] * inner
	off := 0
	for _, t := range ts {
		rows := t.Shape[axis] * inner
		for o := 0; o < outer; o++ {
			copy(dst.Data[o*outRow+off:o*outRow+off+rows], t.Data[o*rows:(o+1)*rows])
		}
		off += rows
	}
	return dst
}

// Concat joins tensors along the given axis; the allocating wrapper over
// ConcatInto.
func Concat(axis int, ts ...*Tensor) *Tensor { return ConcatInto(nil, axis, ts...) }

// Split partitions t into parts of the given sizes along axis. The sizes
// must sum to the axis extent. Each part is a fresh copy.
func Split(t *Tensor, axis int, sizes []int) []*Tensor {
	if axis < 0 {
		axis += len(t.Shape)
	}
	if axis < 0 || axis >= len(t.Shape) {
		panic(fmt.Sprintf("tensor: Split axis out of range for shape %v", t.Shape))
	}
	sum := 0
	for _, s := range sizes {
		if s < 0 {
			panic("tensor: Split negative size")
		}
		sum += s
	}
	if sum != t.Shape[axis] {
		panic(fmt.Sprintf("tensor: Split sizes %v do not sum to axis extent %d", sizes, t.Shape[axis]))
	}
	parts := make([]*Tensor, len(sizes))
	off := 0
	for p, s := range sizes {
		parts[p] = SliceAxisInto(nil, t, axis, off, off+s)
		off += s
	}
	return parts
}

// SplitEqual partitions t into n equal chunks along axis. The axis extent
// must be divisible by n.
func SplitEqual(t *Tensor, axis, n int) []*Tensor {
	if axis < 0 {
		axis += len(t.Shape)
	}
	if t.Shape[axis]%n != 0 {
		panic(fmt.Sprintf("tensor: SplitEqual axis extent %d not divisible by %d", t.Shape[axis], n))
	}
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = t.Shape[axis] / n
	}
	return Split(t, axis, sizes)
}

// StackInto joins rank-k tensors of identical shape into dst, a rank-(k+1)
// tensor with a new leading axis, and returns dst. dst must not alias any
// input.
//
// dchag:hotpath — with a non-nil dst it allocates only the shape header.
func StackInto(dst *Tensor, ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("tensor: Stack of zero tensors")
	}
	for _, t := range ts[1:] {
		if !SameShape(ts[0], t) {
			panic("tensor: Stack shape mismatch")
		}
	}
	shape := append([]int{len(ts)}, ts[0].Shape...)
	dst = ensureDst("StackInto", dst, shape...)
	mustNotAlias("StackInto", dst, ts...)
	n := ts[0].Numel()
	for i, t := range ts {
		copy(dst.Data[i*n:(i+1)*n], t.Data)
	}
	return dst
}

// Stack joins rank-k tensors of identical shape into one rank-(k+1) tensor
// along a new leading axis; the allocating wrapper over StackInto.
func Stack(ts ...*Tensor) *Tensor { return StackInto(nil, ts...) }

// SliceAxisInto copies the [from, to) range of t along the given axis into
// dst and returns dst. dst must not alias t.
//
// dchag:hotpath — with a non-nil dst it allocates only the shape header.
func SliceAxisInto(dst, t *Tensor, axis, from, to int) *Tensor {
	if axis < 0 {
		axis += len(t.Shape)
	}
	if axis < 0 || axis >= len(t.Shape) {
		panic(fmt.Sprintf("tensor: SliceAxis axis out of range for shape %v", t.Shape))
	}
	if from < 0 || to > t.Shape[axis] || from > to {
		panic(fmt.Sprintf("tensor: SliceAxis bounds [%d,%d) invalid for extent %d", from, to, t.Shape[axis]))
	}
	outer := 1
	for _, d := range t.Shape[:axis] {
		outer *= d
	}
	inner := 1
	for _, d := range t.Shape[axis+1:] {
		inner *= d
	}
	shape := append([]int(nil), t.Shape...)
	shape[axis] = to - from
	dst = ensureDst("SliceAxisInto", dst, shape...)
	mustNotAlias("SliceAxisInto", dst, t)
	srcRow := t.Shape[axis] * inner
	rows := (to - from) * inner
	for o := 0; o < outer; o++ {
		copy(dst.Data[o*rows:(o+1)*rows], t.Data[o*srcRow+from*inner:o*srcRow+from*inner+rows])
	}
	return dst
}

// SliceAxis returns a copy of the [from, to) range of t along the given
// axis; the allocating wrapper over SliceAxisInto.
func SliceAxis(t *Tensor, axis, from, to int) *Tensor {
	return SliceAxisInto(nil, t, axis, from, to)
}

// SetSliceAxis writes src into the [from, from+src.Shape[axis]) range of dst
// along the given axis; the inverse of SliceAxis. All other dimensions of src
// must match dst.
//
// dchag:hotpath — scatter into a caller-owned buffer; it must not allocate.
func SetSliceAxis(dst *Tensor, axis, from int, src *Tensor) {
	if axis < 0 {
		axis += len(dst.Shape)
	}
	if axis < 0 || axis >= len(dst.Shape) {
		panic(fmt.Sprintf("tensor: SetSliceAxis axis out of range for shape %v", dst.Shape))
	}
	if len(src.Shape) != len(dst.Shape) {
		panic(fmt.Sprintf("tensor: SetSliceAxis rank mismatch %v vs %v", src.Shape, dst.Shape))
	}
	for i := range dst.Shape {
		if i != axis && src.Shape[i] != dst.Shape[i] {
			panic(fmt.Sprintf("tensor: SetSliceAxis shape mismatch %v vs %v on axis %d", src.Shape, dst.Shape, i))
		}
	}
	to := from + src.Shape[axis]
	if from < 0 || to > dst.Shape[axis] {
		panic(fmt.Sprintf("tensor: SetSliceAxis bounds [%d,%d) invalid for extent %d", from, to, dst.Shape[axis]))
	}
	outer := 1
	for _, d := range dst.Shape[:axis] {
		outer *= d
	}
	inner := 1
	for _, d := range dst.Shape[axis+1:] {
		inner *= d
	}
	dstRow := dst.Shape[axis] * inner
	rows := src.Shape[axis] * inner
	for o := 0; o < outer; o++ {
		copy(dst.Data[o*dstRow+from*inner:o*dstRow+from*inner+rows], src.Data[o*rows:(o+1)*rows])
	}
}

func mustSameShape(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}
