package tensor

import (
	"math"
	"testing"
)

func TestDTypeString(t *testing.T) {
	if F64.String() != "f64" || F32.String() != "f32" {
		t.Fatalf("DType strings: %q %q", F64, F32)
	}
}

// TestMatMulF32Tolerance pins the f32 compute path against f64 at the
// documented tolerance: relative error on the order of f32 epsilon scaled by
// sqrt(K) accumulation growth.
func TestMatMulF32Tolerance(t *testing.T) {
	for _, sh := range [][3]int{{5, 9, 11}, {33, 257, 70}, {64, 512, 96}, {130, 300, 513}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k)
		b := New(k, n)
		fill(a, 0.7)
		fill(b, 1.9)
		f64 := MatMul(a, b)
		f32got := MatMulF32Into(dirty(m, n), a, b)
		scale := 0.0
		for _, v := range f64.Data {
			if math.Abs(v) > scale {
				scale = math.Abs(v)
			}
		}
		tol := 1e-6 * math.Sqrt(float64(k)) * math.Max(scale, 1)
		if d := MaxAbsDiff(f64, f32got); d > tol {
			t.Fatalf("f32 [%d,%d,%d] differs from f64 by %g (tol %g)", m, k, n, d, tol)
		}
	}
}

// TestPackedF32MatchesUnpacked pins the prepacked-weights path bitwise
// against on-the-fly packing — they must run the identical kernel.
func TestPackedF32MatchesUnpacked(t *testing.T) {
	for _, sh := range [][3]int{{4, 8, 16}, {9, 33, 17}, {70, 300, 130}, {33, 513, 65}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := New(m, k)
		b := New(k, n)
		fill(a, 2.1)
		fill(b, 0.4)
		pb := PackB32(b)
		got := MatMulPackedF32Into(dirty(m, n), a, pb)
		want := MatMulF32Into(nil, a, b)
		assertBitwise(t, "MatMulPackedF32Into", got, want)
	}
}

// TestBatchedF32Tolerance covers the attention-shaped f32 products.
func TestBatchedF32Tolerance(t *testing.T) {
	const B, H, T, D = 2, 3, 16, 8
	q := New(B, H, T, D)
	kk := New(B, H, T, D)
	v := New(B, H, T, D)
	fill(q, 0.3)
	fill(kk, 1.3)
	fill(v, 2.3)
	scores64 := BatchedMatMulT(q, kk)
	scores32 := BatchedMatMulTF32Into(dirty(B, H, T, T), q, kk)
	if d := MaxAbsDiff(scores64, scores32); d > 1e-4 {
		t.Fatalf("BatchedMatMulTF32 differs by %g", d)
	}
	ctx64 := BatchedMatMul(scores64, v)
	ctx32 := BatchedMatMulF32Into(dirty(B, H, T, D), scores64, v)
	if d := MaxAbsDiff(ctx64, ctx32); d > 1e-4 {
		t.Fatalf("BatchedMatMulF32 differs by %g", d)
	}
}

// TestPackB32Stale documents the repack contract: a pack snapshots the
// weights, so mutating them afterwards must not change the packed product.
func TestPackB32Stale(t *testing.T) {
	b := New(40, 24)
	fill(b, 5.0)
	a := New(8, 40)
	fill(a, 6.0)
	pb := PackB32(b)
	before := MatMulPackedF32Into(nil, a, pb)
	b.Fill(0)
	after := MatMulPackedF32Into(nil, a, pb)
	assertBitwise(t, "PackB32 snapshot", after, before)
}
