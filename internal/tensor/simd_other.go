//go:build !amd64

package tensor

// Non-amd64 builds always use the pure-Go micro-kernels in gemm.go.
var simdGEMM = false

func kern4x8F64(k int, a, b, c *float64)  { panic("tensor: SIMD kernel unavailable") }
func kern4x16F32(k int, a, b, c *float32) { panic("tensor: SIMD kernel unavailable") }
