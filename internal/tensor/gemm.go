package tensor

// Cache-blocked, register-tiled GEMM (GEBP / BLIS structure). The driver
// splits C = A@B into mc x kc x nc cache blocks, packs the current A and B
// blocks into contiguous micro-panels drawn from the DefaultPool, and walks
// mr x nr register tiles with a micro-kernel (AVX2+FMA assembly when the CPU
// has it, pure Go otherwise). The kernel writes each tile to a contiguous
// scratch array; the driver adds the valid region into the strided
// destination, which gives uniform edge handling and free accumulate
// variants (dst += A^T@B for weight gradients).
//
// Summation order per output element is p ascending within each kc block,
// kc blocks ascending — independent of worker count and of the m/n blocking,
// so results are bitwise reproducible across GOMAXPROCS settings.

const (
	gemmMC   = 128 // rows of A packed per block
	gemmKC   = 256 // depth of one packed block
	gemmNC   = 512 // columns of B packed per block
	gemmMR   = 4   // micro-tile rows
	gemmNR   = 8   // micro-tile columns (f64); f32 uses 2x
	gemmNR32 = 16
)

// directMaxWork is the m*k*n product below which the unpacked direct loops
// beat the pack-and-tile driver.
const directMaxWork = 1 << 15

// gemm2D computes dst = A@B (rank-2, row-major, contiguous) with optional
// transposed operands: at means a holds A^T ([k,m] storage), bt means b
// holds B^T ([n,k] storage). With accum, dst is accumulated into instead of
// overwritten.
//
// dchag:hotpath — the funnel for every matrix product in the repository; it
// must not allocate (panel scratch comes from the pool).
func gemm2D(dst, a, b []float64, m, k, n int, at, bt, accum bool) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !accum {
			for i := range dst[:m*n] {
				dst[i] = 0
			}
		}
		return
	}
	lda, ldb := k, n
	if at {
		lda = m
	}
	if bt {
		ldb = k
	}
	work := m * k * n
	useBlocked := work >= directMaxWork || (at && bt)
	if serialDispatch(m, work) {
		if useBlocked {
			gemmRowsF64(dst, a, b, 0, m, k, n, lda, ldb, at, bt, accum)
		} else {
			directRowsF64(dst, a, b, 0, m, k, n, lda, ldb, at, bt, accum)
		}
		return
	}
	parallelOverRows(m, work, func(lo, hi int) {
		if useBlocked {
			gemmRowsF64(dst, a, b, lo, hi, k, n, lda, ldb, at, bt, accum)
		} else {
			directRowsF64(dst, a, b, lo, hi, k, n, lda, ldb, at, bt, accum)
		}
	})
}

// gemm2DSerial is gemm2D without the goroutine dispatch, for callers that
// already parallelize over batches.
//
// dchag:hotpath — per-batch kernel; it must not allocate.
func gemm2DSerial(dst, a, b []float64, m, k, n int, at, bt, accum bool) {
	if m == 0 || n == 0 {
		return
	}
	if k == 0 {
		if !accum {
			for i := range dst[:m*n] {
				dst[i] = 0
			}
		}
		return
	}
	lda, ldb := k, n
	if at {
		lda = m
	}
	if bt {
		ldb = k
	}
	if m*k*n >= directMaxWork || (at && bt) {
		gemmRowsF64(dst, a, b, 0, m, k, n, lda, ldb, at, bt, accum)
	} else {
		directRowsF64(dst, a, b, 0, m, k, n, lda, ldb, at, bt, accum)
	}
}

// gemmRowsF64 runs the blocked driver for destination rows [lo,hi).
//
// dchag:hotpath — panel scratch comes from the pool, the tile lives on the
// stack; steady state performs no heap allocation.
func gemmRowsF64(dst, a, b []float64, lo, hi, k, n, lda, ldb int, at, bt, accum bool) {
	if !accum {
		for i := lo; i < hi; i++ {
			drow := dst[i*n : (i+1)*n]
			for x := range drow {
				drow[x] = 0
			}
		}
	}
	apanel := DefaultPool.GetTensor((gemmMC + gemmMR) * gemmKC)
	bpanel := DefaultPool.GetTensor((gemmNC + gemmNR) * gemmKC)
	ap, bp := apanel.Data, bpanel.Data
	var tile [gemmMR * gemmNR]float64
	for p0 := 0; p0 < k; p0 += gemmKC {
		kb := min(gemmKC, k-p0)
		for j0 := 0; j0 < n; j0 += gemmNC {
			nb := min(gemmNC, n-j0)
			packBF64(bp, b, ldb, p0, j0, kb, nb, bt)
			for i0 := lo; i0 < hi; i0 += gemmMC {
				mb := min(gemmMC, hi-i0)
				packAF64(ap, a, lda, i0, p0, mb, kb, at)
				for jr := 0; jr < nb; jr += gemmNR {
					jb := min(gemmNR, nb-jr)
					bpp := bp[(jr/gemmNR)*kb*gemmNR:]
					for ir := 0; ir < mb; ir += gemmMR {
						ib := min(gemmMR, mb-ir)
						app := ap[(ir/gemmMR)*kb*gemmMR:]
						if simdGEMM {
							kern4x8F64(kb, &app[0], &bpp[0], &tile[0])
						} else {
							kern4x8F64Generic(kb, app, bpp, &tile)
						}
						for r := 0; r < ib; r++ {
							drow := dst[(i0+ir+r)*n+j0+jr:]
							trow := tile[r*gemmNR:]
							for c := 0; c < jb; c++ {
								drow[c] += trow[c]
							}
						}
					}
				}
			}
		}
	}
	DefaultPool.PutTensor(apanel)
	DefaultPool.PutTensor(bpanel)
}

// packAF64 packs A[i0:i0+mb, p0:p0+kb] into mr-row micro-panels: panel r of
// ceil(mb/mr), laid out as kb groups of mr values with zero-padded edge
// rows. With trans, A is stored transposed (A[i,p] = src[p*lda+i]).
func packAF64(dst, src []float64, lda, i0, p0, mb, kb int, trans bool) {
	idx := 0
	for i := 0; i < mb; i += gemmMR {
		ib := min(gemmMR, mb-i)
		if trans {
			for p := 0; p < kb; p++ {
				srow := src[(p0+p)*lda+i0+i:]
				for r := 0; r < gemmMR; r++ {
					if r < ib {
						dst[idx+r] = srow[r]
					} else {
						dst[idx+r] = 0
					}
				}
				idx += gemmMR
			}
		} else {
			for p := 0; p < kb; p++ {
				for r := 0; r < gemmMR; r++ {
					if r < ib {
						dst[idx+r] = src[(i0+i+r)*lda+p0+p]
					} else {
						dst[idx+r] = 0
					}
				}
				idx += gemmMR
			}
		}
	}
}

// packBF64 packs B[p0:p0+kb, j0:j0+nb] into nr-column micro-panels laid out
// as kb groups of nr values with zero-padded edge columns. With trans, B is
// stored transposed (B[p,j] = src[j*ldb+p]).
func packBF64(dst, src []float64, ldb, p0, j0, kb, nb int, trans bool) {
	idx := 0
	for j := 0; j < nb; j += gemmNR {
		jb := min(gemmNR, nb-j)
		if trans {
			for p := 0; p < kb; p++ {
				for c := 0; c < gemmNR; c++ {
					if c < jb {
						dst[idx+c] = src[(j0+j+c)*ldb+p0+p]
					} else {
						dst[idx+c] = 0
					}
				}
				idx += gemmNR
			}
		} else {
			for p := 0; p < kb; p++ {
				base := (p0+p)*ldb + j0 + j
				if jb == gemmNR {
					copy(dst[idx:idx+gemmNR], src[base:base+gemmNR])
				} else {
					for c := 0; c < gemmNR; c++ {
						if c < jb {
							dst[idx+c] = src[base+c]
						} else {
							dst[idx+c] = 0
						}
					}
				}
				idx += gemmNR
			}
		}
	}
}

// kern4x8F64Generic is the pure-Go twin of the AVX2 micro-kernel; it keeps
// non-amd64 builds (and CPUs without AVX2) on the same packed-panel driver.
func kern4x8F64Generic(kb int, a, b []float64, c *[gemmMR * gemmNR]float64) {
	for i := range c {
		c[i] = 0
	}
	for p := 0; p < kb; p++ {
		bp := b[p*gemmNR : p*gemmNR+gemmNR]
		ap := a[p*gemmMR : p*gemmMR+gemmMR]
		for r := 0; r < gemmMR; r++ {
			av := ap[r]
			cr := c[r*gemmNR : r*gemmNR+gemmNR]
			for j, bv := range bp {
				cr[j] += av * bv
			}
		}
	}
}

// directRowsF64 computes destination rows [lo,hi) with unpacked loops — the
// small-product path where packing overhead would dominate.
//
// dchag:hotpath — the small-matrix kernel; it must not allocate.
func directRowsF64(dst, a, b []float64, lo, hi, k, n, lda, ldb int, at, bt, accum bool) {
	switch {
	case !at && !bt:
		for i := lo; i < hi; i++ {
			drow := dst[i*n : (i+1)*n]
			if !accum {
				for x := range drow {
					drow[x] = 0
				}
			}
			arow := a[i*lda : i*lda+k]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[p*ldb : p*ldb+n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	case !at && bt:
		for i := lo; i < hi; i++ {
			arow := a[i*lda : i*lda+k]
			drow := dst[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b[j*ldb : j*ldb+k]
				s := 0.0
				for p := range arow {
					s += arow[p] * brow[p]
				}
				if accum {
					drow[j] += s
				} else {
					drow[j] = s
				}
			}
		}
	default: // at && !bt
		if !accum {
			for i := lo; i < hi; i++ {
				drow := dst[i*n : (i+1)*n]
				for x := range drow {
					drow[x] = 0
				}
			}
		}
		for p := 0; p < k; p++ {
			arow := a[p*lda : p*lda+lda]
			brow := b[p*ldb : p*ldb+n]
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				drow := dst[i*n : (i+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	}
}

// --- float32 compute path ---------------------------------------------------

// gemmRowsF32 is the float32-compute twin of gemmRowsF64: float64 operands
// and destination, with the f64->f32 conversion fused into panel packing and
// the f32->f64 conversion fused into the tile accumulate. When pb is
// non-nil, B comes from prepacked panels (weights packed once at
// SetInferDType time) and the b slice is ignored.
//
// dchag:hotpath — panel scratch comes from the pool; it must not allocate.
func gemmRowsF32(dst, a, b []float64, pb *PackedB32, lo, hi, k, n, lda, ldb int, at, bt, accum bool) {
	if !accum {
		for i := lo; i < hi; i++ {
			drow := dst[i*n : (i+1)*n]
			for x := range drow {
				drow[x] = 0
			}
		}
	}
	ap := DefaultPool.Get32((gemmMC + gemmMR) * gemmKC)
	var bp []float32
	if pb == nil {
		bp = DefaultPool.Get32((gemmNC + gemmNR32) * gemmKC)
	}
	var tile [gemmMR * gemmNR32]float32
	for p0 := 0; p0 < k; p0 += gemmKC {
		kb := min(gemmKC, k-p0)
		for j0 := 0; j0 < n; j0 += gemmNC {
			nb := min(gemmNC, n-j0)
			if pb == nil {
				packBF32(bp, b, ldb, p0, j0, kb, nb, bt)
			}
			for i0 := lo; i0 < hi; i0 += gemmMC {
				mb := min(gemmMC, hi-i0)
				packAF32(ap, a, lda, i0, p0, mb, kb, at)
				for jr := 0; jr < nb; jr += gemmNR32 {
					jb := min(gemmNR32, nb-jr)
					var bpp []float32
					if pb != nil {
						bpp = pb.panels[pb.blockOff[p0/gemmKC]+((j0+jr)/gemmNR32)*kb*gemmNR32:]
					} else {
						bpp = bp[(jr/gemmNR32)*kb*gemmNR32:]
					}
					for ir := 0; ir < mb; ir += gemmMR {
						ib := min(gemmMR, mb-ir)
						app := ap[(ir/gemmMR)*kb*gemmMR:]
						if simdGEMM {
							kern4x16F32(kb, &app[0], &bpp[0], &tile[0])
						} else {
							kern4x16F32Generic(kb, app, bpp, &tile)
						}
						for r := 0; r < ib; r++ {
							drow := dst[(i0+ir+r)*n+j0+jr:]
							trow := tile[r*gemmNR32:]
							for c := 0; c < jb; c++ {
								drow[c] += float64(trow[c])
							}
						}
					}
				}
			}
		}
	}
	DefaultPool.Put32(ap)
	if pb == nil {
		DefaultPool.Put32(bp)
	}
}

// packAF32 is packAF64 with the f64->f32 conversion fused in.
func packAF32(dst []float32, src []float64, lda, i0, p0, mb, kb int, trans bool) {
	idx := 0
	for i := 0; i < mb; i += gemmMR {
		ib := min(gemmMR, mb-i)
		if trans {
			for p := 0; p < kb; p++ {
				srow := src[(p0+p)*lda+i0+i:]
				for r := 0; r < gemmMR; r++ {
					if r < ib {
						dst[idx+r] = float32(srow[r])
					} else {
						dst[idx+r] = 0
					}
				}
				idx += gemmMR
			}
		} else {
			for p := 0; p < kb; p++ {
				for r := 0; r < gemmMR; r++ {
					if r < ib {
						dst[idx+r] = float32(src[(i0+i+r)*lda+p0+p])
					} else {
						dst[idx+r] = 0
					}
				}
				idx += gemmMR
			}
		}
	}
}

// packBF32 is packBF64 with the f64->f32 conversion fused in and nr=16.
func packBF32(dst []float32, src []float64, ldb, p0, j0, kb, nb int, trans bool) {
	idx := 0
	for j := 0; j < nb; j += gemmNR32 {
		jb := min(gemmNR32, nb-j)
		if trans {
			for p := 0; p < kb; p++ {
				for c := 0; c < gemmNR32; c++ {
					if c < jb {
						dst[idx+c] = float32(src[(j0+j+c)*ldb+p0+p])
					} else {
						dst[idx+c] = 0
					}
				}
				idx += gemmNR32
			}
		} else {
			for p := 0; p < kb; p++ {
				base := (p0+p)*ldb + j0 + j
				for c := 0; c < gemmNR32; c++ {
					if c < jb {
						dst[idx+c] = float32(src[base+c])
					} else {
						dst[idx+c] = 0
					}
				}
				idx += gemmNR32
			}
		}
	}
}

// kern4x16F32Generic is the pure-Go twin of the AVX2 f32 micro-kernel.
func kern4x16F32Generic(kb int, a, b []float32, c *[gemmMR * gemmNR32]float32) {
	for i := range c {
		c[i] = 0
	}
	for p := 0; p < kb; p++ {
		bp := b[p*gemmNR32 : p*gemmNR32+gemmNR32]
		ap := a[p*gemmMR : p*gemmMR+gemmMR]
		for r := 0; r < gemmMR; r++ {
			av := ap[r]
			cr := c[r*gemmNR32 : r*gemmNR32+gemmNR32]
			for j, bv := range bp {
				cr[j] += av * bv
			}
		}
	}
}

// SIMDEnabled reports whether the AVX2+FMA micro-kernels are active on this
// machine. The compute benchmark records it so artifact gates can tell a
// kernel regression from a machine without the vector units.
func SIMDEnabled() bool { return simdGEMM }
