// Package tensor implements dense, row-major, float64 tensors together with
// the linear-algebra primitives the rest of the repository is built on:
// goroutine-parallel matrix multiplication, batched products, elementwise
// arithmetic, reductions, and shape manipulation.
//
// The package is deliberately small and deterministic. All state lives in
// exported Shape/Data fields so that the communication layer can ship raw
// buffers between simulated ranks without reflection, and so tests can
// construct exact fixtures. Float64 is used throughout: the functional layer
// of this repository validates distributed-equals-serial equivalence to
// 1e-9, which float32 cannot support.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major array of float64 values. The zero value is not
// usable; construct tensors with New, Zeros, FromSlice, or the random
// initializers in random.go.
type Tensor struct {
	// Shape holds the extent of each dimension, outermost first.
	Shape []int
	// Data holds the elements in row-major order. len(Data) equals the
	// product of Shape.
	Data []float64
}

// New returns a zero-filled tensor with the given shape. It panics if any
// dimension is negative or if the shape is empty.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// Zeros is an alias for New, provided for readability at call sites that
// contrast zero and non-zero initialization.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones returns a tensor with every element set to one.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Full returns a tensor with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); the caller must not alias it unless that sharing is
// intended. It panics if len(data) does not match the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (want %d)", len(data), append([]int(nil), shape...), n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// checkShape validates a shape and returns its element count.
func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			// Copy shape into the panic message so the parameter does not
			// escape (which would heap-allocate callers' variadic slices).
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", append([]int(nil), shape...)))
		}
		n *= d
	}
	return n
}

// Numel returns the number of elements in the tensor.
func (t *Tensor) Numel() int { return len(t.Data) }

// Dim returns the extent of dimension i, supporting negative indices in the
// Python style (-1 is the last dimension).
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.Shape)
	}
	if i < 0 || i >= len(t.Shape) {
		panic(fmt.Sprintf("tensor: Dim(%d) out of range for rank-%d tensor", i, len(t.Shape)))
	}
	return t.Shape[i]
}

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// offset computes the flat offset of a multi-index.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies src's elements into t. Shapes must match exactly.
func (t *Tensor) CopyFrom(src *Tensor) {
	if !SameShape(t, src) {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %v vs %v", t.Shape, src.Shape))
	}
	copy(t.Data, src.Data)
}

// Reshape returns a tensor that shares t's data with a new shape. One
// dimension may be -1, in which case it is inferred. It panics if the
// element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	shape = append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range shape {
		if d == -1 {
			if infer >= 0 {
				panic("tensor: Reshape with more than one -1 dimension")
			}
			infer = i
			continue
		}
		if d < 0 {
			panic(fmt.Sprintf("tensor: Reshape negative dimension in %v", shape))
		}
		known *= d
	}
	if infer >= 0 {
		if known == 0 || t.Numel()%known != 0 {
			panic(fmt.Sprintf("tensor: cannot infer -1 in Reshape %v from %d elements", shape, t.Numel()))
		}
		shape[infer] = t.Numel() / known
		known *= shape[infer]
	}
	if known != t.Numel() {
		panic(fmt.Sprintf("tensor: Reshape %v incompatible with %d elements", shape, t.Numel()))
	}
	return &Tensor{Shape: shape, Data: t.Data}
}

// Zero sets every element to zero in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether a and b have the same shape and all elements
// within tol of each other (absolute difference).
func EqualApprox(a, b *Tensor, tol float64) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute elementwise difference between a
// and b. It panics on shape mismatch.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !SameShape(a, b) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	m := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > m {
			m = d
		}
	}
	return m
}

// String renders a compact description (shape plus leading elements), not
// the full contents, so accidental prints of large tensors stay readable.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.Shape)
	n := len(t.Data)
	show := n
	if show > 8 {
		show = 8
	}
	for i := 0; i < show; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4g", t.Data[i])
	}
	if n > show {
		fmt.Fprintf(&b, ", ... (%d elems)", n)
	}
	b.WriteString("]")
	return b.String()
}
