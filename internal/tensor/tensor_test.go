package tensor

import (
	"math"
	"runtime"
	"testing"
	"testing/quick"
)

func TestNewShapeAndNumel(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Numel() != 24 {
		t.Fatalf("Numel = %d, want 24", tt.Numel())
	}
	if tt.Rank() != 3 {
		t.Fatalf("Rank = %d, want 3", tt.Rank())
	}
	for _, v := range tt.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	assertPanics(t, func() { New() })
	assertPanics(t, func() { New(2, -1) })
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(2, 3)
	tt.Set(7.5, 1, 2)
	if got := tt.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := tt.Data[1*3+2]; got != 7.5 {
		t.Fatalf("row-major layout violated: Data[5] = %v", got)
	}
	assertPanics(t, func() { tt.At(2, 0) })
	assertPanics(t, func() { tt.At(0) })
}

func TestDimNegativeIndex(t *testing.T) {
	tt := New(2, 3, 5)
	if tt.Dim(-1) != 5 || tt.Dim(-3) != 2 || tt.Dim(1) != 3 {
		t.Fatalf("Dim indexing wrong: %d %d %d", tt.Dim(-1), tt.Dim(-3), tt.Dim(1))
	}
	assertPanics(t, func() { tt.Dim(3) })
}

func TestFromSliceValidation(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	tt := FromSlice(d, 2, 3)
	if tt.At(1, 0) != 4 {
		t.Fatalf("At(1,0) = %v, want 4", tt.At(1, 0))
	}
	assertPanics(t, func() { FromSlice(d, 2, 2) })
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set(42, 0, 1)
	if a.At(0, 1) != 42 {
		t.Fatal("Reshape must share storage")
	}
	c := a.Reshape(-1, 2)
	if c.Shape[0] != 3 {
		t.Fatalf("inferred dim = %d, want 3", c.Shape[0])
	}
	assertPanics(t, func() { a.Reshape(4, 2) })
	assertPanics(t, func() { a.Reshape(-1, -1) })
	assertPanics(t, func() { a.Reshape(-1, 4) })
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b).Data[3]; got != 44 {
		t.Fatalf("Add = %v, want 44", got)
	}
	if got := Sub(b, a).Data[0]; got != 9 {
		t.Fatalf("Sub = %v, want 9", got)
	}
	if got := Mul(a, b).Data[1]; got != 40 {
		t.Fatalf("Mul = %v, want 40", got)
	}
	if got := Div(b, a).Data[2]; got != 10 {
		t.Fatalf("Div = %v, want 10", got)
	}
	if got := Scale(a, 2).Data[3]; got != 8 {
		t.Fatalf("Scale = %v, want 8", got)
	}
	if got := AddScalar(a, 1).Data[0]; got != 2 {
		t.Fatalf("AddScalar = %v, want 2", got)
	}
	assertPanics(t, func() { Add(a, New(3, 3)) })
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 5}, 2)
	AddInPlace(a, b)
	if a.Data[1] != 7 {
		t.Fatalf("AddInPlace = %v, want 7", a.Data[1])
	}
	ScaleInPlace(a, 0.5)
	if a.Data[0] != 2 {
		t.Fatalf("ScaleInPlace = %v, want 2", a.Data[0])
	}
	AXPY(2, b, a)
	if a.Data[1] != 13.5 {
		t.Fatalf("AXPY = %v, want 13.5", a.Data[1])
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{1, -2, 3, -4}, 4)
	if a.Sum() != -2 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != -0.5 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Max() != 3 || a.Min() != -4 {
		t.Fatalf("Max/Min = %v/%v", a.Max(), a.Min())
	}
	if math.Abs(a.Norm2()-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("Norm2 = %v", a.Norm2())
	}
}

func TestSumAxis(t *testing.T) {
	// [[1,2,3],[4,5,6]]
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	s0 := SumAxis(a, 0)
	want0 := []float64{5, 7, 9}
	for i, w := range want0 {
		if s0.Data[i] != w {
			t.Fatalf("SumAxis(0)[%d] = %v, want %v", i, s0.Data[i], w)
		}
	}
	s1 := SumAxis(a, 1)
	if s1.Data[0] != 6 || s1.Data[1] != 15 {
		t.Fatalf("SumAxis(1) = %v", s1.Data)
	}
	sneg := SumAxis(a, -1)
	if !EqualApprox(s1, sneg, 0) {
		t.Fatal("negative axis mismatch")
	}
	m := MeanAxis(a, 1)
	if m.Data[0] != 2 || m.Data[1] != 5 {
		t.Fatalf("MeanAxis(1) = %v", m.Data)
	}
}

func TestSumAxisMiddle(t *testing.T) {
	a := New(2, 3, 4)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	s := SumAxis(a, 1)
	if len(s.Shape) != 2 || s.Shape[0] != 2 || s.Shape[1] != 4 {
		t.Fatalf("shape = %v", s.Shape)
	}
	// element [0,0] = a[0,0,0]+a[0,1,0]+a[0,2,0] = 0+4+8
	if s.At(0, 0) != 12 {
		t.Fatalf("SumAxis middle = %v, want 12", s.At(0, 0))
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
	assertPanics(t, func() { MatMul(a, a) })
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := NewRNG(1)
	// Large enough to trigger the parallel path.
	a := Randn(rng, 128, 96)
	b := Randn(rng, 96, 64)
	got := MatMul(a, b)
	// The blocked kernel's per-element summation order is independent of the
	// worker split, so the product must be bitwise stable across GOMAXPROCS.
	prev := runtime.GOMAXPROCS(1)
	serial := MatMul(a, b)
	runtime.GOMAXPROCS(prev)
	if MaxAbsDiff(got, serial) != 0 {
		t.Fatal("parallel MatMul differs from serial")
	}
	// And it must agree with the naive reference kernel to rounding error
	// (bitwise equality is NOT expected: the blocked kernel uses FMA).
	naive := MatMulNaiveInto(nil, a, b)
	if MaxAbsDiff(got, naive) > 1e-9 {
		t.Fatalf("blocked MatMul differs from naive reference by %g", MaxAbsDiff(got, naive))
	}
}

func TestMatMulTAndTMatMul(t *testing.T) {
	rng := NewRNG(2)
	a := Randn(rng, 17, 9)
	b := Randn(rng, 13, 9)
	got := MatMulT(a, b)
	want := MatMul(a, Transpose2D(b))
	if MaxAbsDiff(got, want) > 1e-12 {
		t.Fatal("MatMulT differs from explicit transpose")
	}
	c := Randn(rng, 9, 17)
	d := Randn(rng, 9, 13)
	got2 := TMatMul(c, d)
	want2 := MatMul(Transpose2D(c), d)
	if MaxAbsDiff(got2, want2) > 1e-12 {
		t.Fatal("TMatMul differs from explicit transpose")
	}
}

func TestBatchedMatMul(t *testing.T) {
	rng := NewRNG(3)
	a := Randn(rng, 2, 3, 4, 5)
	b := Randn(rng, 2, 3, 5, 6)
	c := BatchedMatMul(a, b)
	if c.Shape[0] != 2 || c.Shape[1] != 3 || c.Shape[2] != 4 || c.Shape[3] != 6 {
		t.Fatalf("shape = %v", c.Shape)
	}
	// Check one batch against 2D MatMul.
	a0 := FromSlice(a.Data[0:20], 4, 5)
	b0 := FromSlice(b.Data[0:30], 5, 6)
	w := MatMul(a0, b0)
	for i := 0; i < 24; i++ {
		if math.Abs(c.Data[i]-w.Data[i]) > 1e-12 {
			t.Fatalf("batch 0 elem %d mismatch", i)
		}
	}
}

func TestBatchedMatMulTAndTMatMul(t *testing.T) {
	rng := NewRNG(4)
	a := Randn(rng, 3, 4, 5)
	b := Randn(rng, 3, 6, 5)
	got := BatchedMatMulT(a, b)
	// manual: per batch a@b^T
	for bi := 0; bi < 3; bi++ {
		am := FromSlice(a.Data[bi*20:(bi+1)*20], 4, 5)
		bm := FromSlice(b.Data[bi*30:(bi+1)*30], 6, 5)
		w := MatMul(am, Transpose2D(bm))
		for i := 0; i < 24; i++ {
			if math.Abs(got.Data[bi*24+i]-w.Data[i]) > 1e-12 {
				t.Fatalf("BatchedMatMulT batch %d mismatch", bi)
			}
		}
	}
	c := Randn(rng, 3, 5, 4)
	d := Randn(rng, 3, 5, 6)
	got2 := BatchedTMatMul(c, d)
	for bi := 0; bi < 3; bi++ {
		cm := FromSlice(c.Data[bi*20:(bi+1)*20], 5, 4)
		dm := FromSlice(d.Data[bi*30:(bi+1)*30], 5, 6)
		w := MatMul(Transpose2D(cm), dm)
		for i := 0; i < 24; i++ {
			if math.Abs(got2.Data[bi*24+i]-w.Data[i]) > 1e-12 {
				t.Fatalf("BatchedTMatMul batch %d mismatch", bi)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		m := 1 + int(rng.Int31n(8))
		n := 1 + int(rng.Int31n(8))
		a := Randn(rng, m, n)
		return MaxAbsDiff(Transpose2D(Transpose2D(a)), a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		m := 1 + int(rng.Int31n(6))
		n := 1 + int(rng.Int31n(6))
		a := Randn(rng, m, n)
		id := New(n, n)
		for i := 0; i < n; i++ {
			id.Set(1, i, i)
		}
		return MaxAbsDiff(MatMul(a, id), a) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		r := 1 + int(rng.Int31n(5))
		c := 1 + int(rng.Int31n(7))
		a := RandnScaled(rng, 10, r, c) // large magnitudes stress stability
		s := SoftmaxLastDim(a)
		for i := 0; i < r; i++ {
			sum := 0.0
			for j := 0; j < c; j++ {
				v := s.At(i, j)
				if v < 0 || math.IsNaN(v) {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxBackwardFiniteDifference(t *testing.T) {
	rng := NewRNG(7)
	x := Randn(rng, 3, 5)
	gy := Randn(rng, 3, 5)
	y := SoftmaxLastDim(x)
	gx := SoftmaxBackwardLastDim(y, gy)
	const eps = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := dot(SoftmaxLastDim(x), gy)
		x.Data[i] = orig - eps
		lm := dot(SoftmaxLastDim(x), gy)
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-gx.Data[i]) > 1e-6 {
			t.Fatalf("softmax grad mismatch at %d: numeric %v analytic %v", i, numeric, gx.Data[i])
		}
	}
}

func dot(a, b *Tensor) float64 {
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

func TestConcatSplitRoundTrip(t *testing.T) {
	rng := NewRNG(8)
	a := Randn(rng, 2, 3, 4)
	b := Randn(rng, 2, 5, 4)
	c := Randn(rng, 2, 1, 4)
	joined := Concat(1, a, b, c)
	if joined.Shape[1] != 9 {
		t.Fatalf("Concat shape = %v", joined.Shape)
	}
	parts := Split(joined, 1, []int{3, 5, 1})
	if MaxAbsDiff(parts[0], a) != 0 || MaxAbsDiff(parts[1], b) != 0 || MaxAbsDiff(parts[2], c) != 0 {
		t.Fatal("Split does not invert Concat")
	}
}

func TestConcatAxis0AndLast(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 1, 2)
	b := FromSlice([]float64{3, 4}, 1, 2)
	c0 := Concat(0, a, b)
	if c0.Shape[0] != 2 || c0.Data[2] != 3 {
		t.Fatalf("Concat axis 0 = %v %v", c0.Shape, c0.Data)
	}
	c1 := Concat(-1, a, b)
	want := []float64{1, 2, 3, 4}
	for i, w := range want {
		if c1.Data[i] != w {
			t.Fatalf("Concat axis -1 = %v", c1.Data)
		}
	}
}

func TestSplitEqual(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 6)
	parts := SplitEqual(a, 0, 3)
	if len(parts) != 3 || parts[1].Data[0] != 3 {
		t.Fatalf("SplitEqual = %v", parts)
	}
	assertPanics(t, func() { SplitEqual(a, 0, 4) })
}

func TestStack(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{3, 4}, 2)
	s := Stack(a, b)
	if s.Shape[0] != 2 || s.Shape[1] != 2 || s.At(1, 0) != 3 {
		t.Fatalf("Stack = %v %v", s.Shape, s.Data)
	}
	assertPanics(t, func() { Stack(a, FromSlice([]float64{1, 2, 3}, 3)) })
}

func TestSliceAxis(t *testing.T) {
	a := New(2, 4, 3)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	s := SliceAxis(a, 1, 1, 3)
	if s.Shape[1] != 2 {
		t.Fatalf("shape = %v", s.Shape)
	}
	if s.At(0, 0, 0) != a.At(0, 1, 0) || s.At(1, 1, 2) != a.At(1, 2, 2) {
		t.Fatal("SliceAxis content wrong")
	}
	assertPanics(t, func() { SliceAxis(a, 1, 3, 5) })
}

func TestSliceConcatRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		n := 2 + int(rng.Int31n(6))
		a := Randn(rng, 3, n, 2)
		cut := 1 + int(rng.Int31n(int32(n-1)))
		left := SliceAxis(a, 1, 0, cut)
		right := SliceAxis(a, 1, cut, n)
		return MaxAbsDiff(Concat(1, left, right), a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestApply(t *testing.T) {
	a := FromSlice([]float64{1, 4, 9}, 3)
	b := Apply(a, math.Sqrt)
	if b.Data[2] != 3 {
		t.Fatalf("Apply = %v", b.Data)
	}
}

func TestEqualApproxAndMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1, 2.0001}, 2)
	if !EqualApprox(a, b, 1e-3) {
		t.Fatal("EqualApprox should accept within tol")
	}
	if EqualApprox(a, b, 1e-6) {
		t.Fatal("EqualApprox should reject beyond tol")
	}
	if EqualApprox(a, New(3), 1) {
		t.Fatal("EqualApprox should reject shape mismatch")
	}
	if d := MaxAbsDiff(a, b); math.Abs(d-0.0001) > 1e-12 {
		t.Fatalf("MaxAbsDiff = %v", d)
	}
}

func TestRandomDeterminism(t *testing.T) {
	a := Randn(NewRNG(42), 4, 4)
	b := Randn(NewRNG(42), 4, 4)
	if MaxAbsDiff(a, b) != 0 {
		t.Fatal("same seed must produce same tensor")
	}
	c := Randn(NewRNG(43), 4, 4)
	if MaxAbsDiff(a, c) == 0 {
		t.Fatal("different seeds should differ")
	}
}

func TestXavierBounds(t *testing.T) {
	w := XavierUniform(NewRNG(1), 100, 100)
	limit := math.Sqrt(6.0 / 200.0)
	for _, v := range w.Data {
		if v < -limit || v >= limit {
			t.Fatalf("Xavier sample %v outside [-%v, %v)", v, limit, limit)
		}
	}
}

func TestStringTruncates(t *testing.T) {
	a := New(100)
	s := a.String()
	if len(s) > 200 {
		t.Fatalf("String too long: %q", s)
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(2, 2)
	b := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	a.CopyFrom(b)
	if a.At(1, 1) != 4 {
		t.Fatal("CopyFrom failed")
	}
	assertPanics(t, func() { a.CopyFrom(New(3)) })
}

func TestZeroAndFill(t *testing.T) {
	a := Full(5, 3)
	a.Zero()
	if a.Sum() != 0 {
		t.Fatal("Zero failed")
	}
	a.Fill(2)
	if a.Sum() != 6 {
		t.Fatal("Fill failed")
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestZerosOnesKaiming(t *testing.T) {
	z := Zeros(2, 2)
	if z.Sum() != 0 {
		t.Fatal("Zeros must be zero")
	}
	o := Ones(2, 3)
	if o.Sum() != 6 {
		t.Fatal("Ones must be one")
	}
	k := KaimingNormal(NewRNG(1), 64, 32)
	if k.Shape[0] != 64 || k.Shape[1] != 32 {
		t.Fatalf("Kaiming shape = %v", k.Shape)
	}
	// He-normal std ~ sqrt(2/fanIn); sample std should be in the ballpark.
	mean := k.Mean()
	varr := 0.0
	for _, v := range k.Data {
		varr += (v - mean) * (v - mean)
	}
	varr /= float64(k.Numel())
	want := 2.0 / 64
	if varr < want/2 || varr > want*2 {
		t.Fatalf("Kaiming variance %v, want about %v", varr, want)
	}
}

func TestMeanPanicsOnEmpty(t *testing.T) {
	empty := New(0)
	assertPanics(t, func() { empty.Mean() })
	assertPanics(t, func() { empty.Max() })
	assertPanics(t, func() { empty.Min() })
}

func TestBatchedMatMulParallelPath(t *testing.T) {
	// Large enough batch*work to exercise the goroutine-parallel path; the
	// result must match per-batch serial 2D multiplication exactly.
	rng := NewRNG(99)
	a := Randn(rng, 32, 24, 24)
	b := Randn(rng, 32, 24, 24)
	c := BatchedMatMul(a, b)
	for bi := 0; bi < 32; bi += 7 {
		am := FromSlice(a.Data[bi*24*24:(bi+1)*24*24], 24, 24)
		bm := FromSlice(b.Data[bi*24*24:(bi+1)*24*24], 24, 24)
		w := MatMul(am, bm)
		cm := FromSlice(c.Data[bi*24*24:(bi+1)*24*24], 24, 24)
		if MaxAbsDiff(cm, w) > 1e-12 {
			t.Fatalf("batch %d mismatch in parallel path", bi)
		}
	}
}

func TestSetSliceAxisInvertsSliceAxis(t *testing.T) {
	rng := NewRNG(9)
	src := Randn(rng, 3, 6, 2)
	dst := New(3, 6, 2)
	for _, bounds := range [][2]int{{0, 2}, {2, 5}, {5, 6}} {
		part := SliceAxis(src, 1, bounds[0], bounds[1])
		SetSliceAxis(dst, 1, bounds[0], part)
	}
	if MaxAbsDiff(src, dst) != 0 {
		t.Fatal("tiling SetSliceAxis with SliceAxis pieces must reproduce the source")
	}
}

func TestSetSliceAxisValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { SetSliceAxis(New(2, 2), 0, 1, New(2, 2)) }, // out of bounds
		func() { SetSliceAxis(New(2, 2), 0, 0, New(1, 3)) }, // off-axis mismatch
		func() { SetSliceAxis(New(2, 2), 2, 0, New(2, 2)) }, // axis range
		func() { SetSliceAxis(New(2, 2), 0, 0, New(2)) },    // rank mismatch
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid SetSliceAxis must panic")
				}
			}()
			bad()
		}()
	}
}
