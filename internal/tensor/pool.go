package tensor

import "sync"

// Pool is a size-classed free list of tensor buffers. Hot paths draw
// destination and scratch buffers from a Pool instead of allocating, so
// steady-state training and serving steps stop churning the garbage
// collector. Buffers are bucketed by the power-of-two capacity class that
// fits them; a Get is served by any retained buffer whose class is at least
// as large as the request.
//
// Ownership rules (the "dst/pool contract" documented in DESIGN.md):
//
//   - GetTensor returns a tensor with DIRTY contents. Callers that need
//     zeros must call Zero themselves; the kernels in this package always
//     overwrite their destination, so they never need to.
//   - PutTensor hands the buffer back; the caller must not retain any
//     reference to it (or to slices of its Data) afterwards.
//   - A Pool is safe for concurrent use by multiple goroutines.
//
// The zero Pool value is ready to use.
type Pool struct {
	mu  sync.Mutex
	t64 map[int][]*Tensor
	f32 map[int][][]float32
}

// poolMaxPerClass bounds how many free buffers one size class retains;
// beyond that, Put drops the buffer for the GC to reclaim.
const poolMaxPerClass = 32

// DefaultPool is the process-wide pool used by the blocked kernels for their
// packing panels and by hot-path callers that do not carry their own pool.
var DefaultPool = &Pool{}

// sizeClass returns the smallest power of two >= n (minimum 64).
func sizeClass(n int) int {
	c := 64
	for c < n {
		c <<= 1
	}
	return c
}

// GetTensor returns a tensor of the given shape backed by a pooled buffer
// (or a fresh one on a pool miss). Contents are unspecified.
func (p *Pool) GetTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	class := sizeClass(n)
	p.mu.Lock()
	free := p.t64[class]
	if len(free) > 0 {
		t := free[len(free)-1]
		p.t64[class] = free[:len(free)-1]
		p.mu.Unlock()
		t.Shape = append(t.Shape[:0], shape...)
		t.Data = t.Data[:n]
		return t
	}
	p.mu.Unlock()
	t := &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n, class)}
	return t
}

// PutTensor returns t's buffer to the pool. t must not be used afterwards.
// Tensors whose backing capacity is not a pool class (e.g. produced by New)
// are still accepted: they are filed under the largest class they can serve.
func (p *Pool) PutTensor(t *Tensor) {
	if t == nil || cap(t.Data) == 0 {
		return
	}
	class := sizeClass(cap(t.Data))
	if class > cap(t.Data) {
		class >>= 1 // not a full class: file under the class it can serve
	}
	if class < 64 {
		return
	}
	t.Data = t.Data[:0:cap(t.Data)]
	p.mu.Lock()
	if p.t64 == nil {
		p.t64 = make(map[int][]*Tensor)
	}
	if len(p.t64[class]) < poolMaxPerClass {
		p.t64[class] = append(p.t64[class], t)
	}
	p.mu.Unlock()
}

// Get32 returns a float32 scratch slice of length n with unspecified
// contents. The float32 lists back the packed panels of the f32 kernel path.
func (p *Pool) Get32(n int) []float32 {
	class := sizeClass(n)
	p.mu.Lock()
	free := p.f32[class]
	if len(free) > 0 {
		buf := free[len(free)-1]
		p.f32[class] = free[:len(free)-1]
		p.mu.Unlock()
		return buf[:n]
	}
	p.mu.Unlock()
	return make([]float32, n, class)
}

// Put32 returns a float32 scratch slice to the pool.
func (p *Pool) Put32(buf []float32) {
	if cap(buf) == 0 {
		return
	}
	class := sizeClass(cap(buf))
	if class > cap(buf) {
		class >>= 1
	}
	if class < 64 {
		return
	}
	buf = buf[:0:cap(buf)]
	p.mu.Lock()
	if p.f32 == nil {
		p.f32 = make(map[int][][]float32)
	}
	if len(p.f32[class]) < poolMaxPerClass {
		p.f32[class] = append(p.f32[class], buf)
	}
	p.mu.Unlock()
}

// EnsureShape returns a tensor of exactly the given shape, reusing t's
// backing array when it is large enough. It is the idiom for layer-owned
// scratch: the first call allocates, steady-state calls are allocation-free.
// Contents are unspecified after a reuse (the caller overwrites them).
func EnsureShape(t *Tensor, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if t != nil && cap(t.Data) >= n {
		t.Shape = append(t.Shape[:0], shape...)
		t.Data = t.Data[:n]
		return t
	}
	return New(shape...)
}
