package tensor

import "fmt"

// DType selects the arithmetic used by the no-grad inference fast path.
// Tensors always STORE float64 (the package contract that distributed
// results stay bitwise comparable to the serial reference at 1e-9); F32
// selects float32 COMPUTE inside the matrix-product kernels, with the
// f64->f32 conversion fused into panel packing and the f32->f64 conversion
// fused into the tile accumulate. The tolerance contract for F32 serving
// outputs is documented in DESIGN.md ("Compute substrate").
type DType int

const (
	// F64 is full float64 arithmetic — training and the default for serving.
	F64 DType = iota
	// F32 is the float32-compute inference path.
	F32
)

// String returns the conventional dtype name.
func (d DType) String() string {
	if d == F32 {
		return "f32"
	}
	return "f64"
}

// PackedB32 holds a weight matrix prepacked into the f32 kernel's B panels.
// Packing the K x N operand once at SetInferDType time hoists both the
// f64->f32 conversion and the panel shuffle out of the per-request hot loop.
type PackedB32 struct {
	K, N     int
	panels   []float32
	blockOff []int // panel offset of each kc-deep block
}

// PackB32 packs a rank-2 [K,N] tensor for use as the B operand of
// MatMulPackedF32Into. The returned pack is immutable and safe for
// concurrent use; it snapshots b, so repack after mutating the weights.
func PackB32(b *Tensor) *PackedB32 {
	if len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: PackB32 requires rank 2, got %v", b.Shape))
	}
	k, n := b.Shape[0], b.Shape[1]
	nPanels := (n + gemmNR32 - 1) / gemmNR32
	pb := &PackedB32{K: k, N: n}
	for p0 := 0; p0 < k; p0 += gemmKC {
		pb.blockOff = append(pb.blockOff, len(pb.panels))
		kb := min(gemmKC, k-p0)
		block := make([]float32, nPanels*kb*gemmNR32)
		packBF32(block, b.Data, n, p0, 0, kb, n, false)
		pb.panels = append(pb.panels, block...)
	}
	if k == 0 {
		pb.blockOff = []int{0}
	}
	return pb
}

// MatMulPackedF32Into computes dst = a@b in float32 arithmetic against a
// prepacked B (see PackB32): a is [M,K] float64, dst is [M,N] float64. It
// returns dst.
//
// dchag:hotpath — the f32 serving fast path; with a non-nil dst it performs
// no heap allocation.
func MatMulPackedF32Into(dst, a *Tensor, pb *PackedB32) *Tensor {
	if len(a.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulPackedF32Into requires rank-2 a, got %v", a.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	if k != pb.K {
		panic(fmt.Sprintf("tensor: MatMulPackedF32Into inner dimension mismatch %v x [%d,%d]", a.Shape, pb.K, pb.N))
	}
	n := pb.N
	dst = ensureDst("MatMulPackedF32Into", dst, m, n)
	mustNotAlias("MatMulPackedF32Into", dst, a)
	if k == 0 {
		dst.Zero()
		return dst
	}
	if serialDispatch(m, m*k*n) {
		gemmRowsF32(dst.Data, a.Data, nil, pb, 0, m, k, n, k, n, false, false, false)
		return dst
	}
	parallelOverRows(m, m*k*n, func(lo, hi int) {
		gemmRowsF32(dst.Data, a.Data, nil, pb, lo, hi, k, n, k, n, false, false, false)
	})
	return dst
}

// MatMulF32Into computes dst = a@b in float32 arithmetic with float64
// operands and destination, packing b on the fly: a is [M,K], b is [K,N],
// dst is [M,N]. It returns dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func MatMulF32Into(dst, a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulF32Into requires rank-2 operands, got %v x %v", a.Shape, b.Shape))
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulF32Into inner dimension mismatch %v x %v", a.Shape, b.Shape))
	}
	dst = ensureDst("MatMulF32Into", dst, m, n)
	mustNotAlias("MatMulF32Into", dst, a, b)
	if k == 0 {
		dst.Zero()
		return dst
	}
	if serialDispatch(m, m*k*n) {
		gemmRowsF32(dst.Data, a.Data, b.Data, nil, 0, m, k, n, k, n, false, false, false)
		return dst
	}
	parallelOverRows(m, m*k*n, func(lo, hi int) {
		gemmRowsF32(dst.Data, a.Data, b.Data, nil, lo, hi, k, n, k, n, false, false, false)
	})
	return dst
}

// BatchedMatMulTF32Into is BatchedMatMulTInto in float32 arithmetic — the
// attention score product Q @ K^T on the f32 inference path. It returns dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func BatchedMatMulTF32Into(dst, a, b *Tensor) *Tensor {
	batch, lead := batchedShapes("BatchedMatMulTF32", a, b)
	ra := len(a.Shape)
	m, k := a.Shape[ra-2], a.Shape[ra-1]
	n, k2 := b.Shape[ra-2], b.Shape[ra-1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: BatchedMatMulTF32 inner mismatch %v x %v^T", a.Shape, b.Shape))
	}
	dst = ensureDstBatched("BatchedMatMulTF32Into", dst, lead, m, n)
	mustNotAlias("BatchedMatMulTF32Into", dst, a, b)
	if k == 0 {
		dst.Zero()
		return dst
	}
	if serialDispatch(batch, batch*m*k*n) {
		for bi := 0; bi < batch; bi++ {
			gemmRowsF32(dst.Data[bi*m*n:(bi+1)*m*n], a.Data[bi*m*k:(bi+1)*m*k], b.Data[bi*n*k:(bi+1)*n*k], nil, 0, m, k, n, k, k, false, true, false)
		}
		return dst
	}
	parallelOverRows(batch, batch*m*k*n, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			gemmRowsF32(dst.Data[bi*m*n:(bi+1)*m*n], a.Data[bi*m*k:(bi+1)*m*k], b.Data[bi*n*k:(bi+1)*n*k], nil, 0, m, k, n, k, k, false, true, false)
		}
	})
	return dst
}

// BatchedMatMulF32Into is BatchedMatMulInto in float32 arithmetic — the
// attention context product scores @ V on the f32 inference path. It returns
// dst.
//
// dchag:hotpath — with a non-nil dst it performs no heap allocation.
func BatchedMatMulF32Into(dst, a, b *Tensor) *Tensor {
	batch, lead := batchedShapes("BatchedMatMulF32", a, b)
	ra := len(a.Shape)
	m, k := a.Shape[ra-2], a.Shape[ra-1]
	k2, n := b.Shape[ra-2], b.Shape[ra-1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: BatchedMatMulF32 inner mismatch %v x %v", a.Shape, b.Shape))
	}
	dst = ensureDstBatched("BatchedMatMulF32Into", dst, lead, m, n)
	mustNotAlias("BatchedMatMulF32Into", dst, a, b)
	if k == 0 {
		dst.Zero()
		return dst
	}
	if serialDispatch(batch, batch*m*k*n) {
		for bi := 0; bi < batch; bi++ {
			gemmRowsF32(dst.Data[bi*m*n:(bi+1)*m*n], a.Data[bi*m*k:(bi+1)*m*k], b.Data[bi*k*n:(bi+1)*k*n], nil, 0, m, k, n, k, n, false, false, false)
		}
		return dst
	}
	parallelOverRows(batch, batch*m*k*n, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			gemmRowsF32(dst.Data[bi*m*n:(bi+1)*m*n], a.Data[bi*m*k:(bi+1)*m*k], b.Data[bi*k*n:(bi+1)*k*n], nil, 0, m, k, n, k, n, false, false, false)
		}
	})
	return dst
}
