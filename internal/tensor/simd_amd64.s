#include "textflag.h"

// GEBP micro-kernels for the blocked matmul driver in gemm.go. Each computes
// one register tile C = A_panel @ B_panel over a full kb-deep strip of packed
// panels and stores the tile CONTIGUOUSLY to c; the Go driver adds the valid
// region of the tile into the (strided, possibly edge-clipped) destination.
//
// Panel layouts (produced by packA*/packB* in gemm.go):
//   a: kb groups of mr=4 values, a[p*4+i]  = A[i0+i, p0+p]
//   b: kb groups of nr   values, b[p*nr+j] = B[p0+p, j0+j]

// func kern4x8F64(k int, a, b, c *float64)
// c[0:32] = sum_p a[p*4+i] * b[p*8+j], c row-major 4x8.
TEXT ·kern4x8F64(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), AX
	MOVQ b+16(FP), BX
	MOVQ c+24(FP), DX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
loop64:
	VMOVUPD (BX), Y12
	VMOVUPD 32(BX), Y13
	VBROADCASTSD (AX), Y14
	VBROADCASTSD 8(AX), Y15
	VFMADD231PD Y12, Y14, Y0
	VFMADD231PD Y13, Y14, Y1
	VFMADD231PD Y12, Y15, Y2
	VFMADD231PD Y13, Y15, Y3
	VBROADCASTSD 16(AX), Y14
	VBROADCASTSD 24(AX), Y15
	VFMADD231PD Y12, Y14, Y4
	VFMADD231PD Y13, Y14, Y5
	VFMADD231PD Y12, Y15, Y6
	VFMADD231PD Y13, Y15, Y7
	ADDQ $32, AX
	ADDQ $64, BX
	DECQ CX
	JNZ  loop64
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET

// func kern4x16F32(k int, a, b, c *float32)
// c[0:64] = sum_p a[p*4+i] * b[p*16+j], c row-major 4x16.
TEXT ·kern4x16F32(SB), NOSPLIT, $0-32
	MOVQ k+0(FP), CX
	MOVQ a+8(FP), AX
	MOVQ b+16(FP), BX
	MOVQ c+24(FP), DX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
loop32:
	VMOVUPS (BX), Y12
	VMOVUPS 32(BX), Y13
	VBROADCASTSS (AX), Y14
	VBROADCASTSS 4(AX), Y15
	VFMADD231PS Y12, Y14, Y0
	VFMADD231PS Y13, Y14, Y1
	VFMADD231PS Y12, Y15, Y2
	VFMADD231PS Y13, Y15, Y3
	VBROADCASTSS 8(AX), Y14
	VBROADCASTSS 12(AX), Y15
	VFMADD231PS Y12, Y14, Y4
	VFMADD231PS Y13, Y14, Y5
	VFMADD231PS Y12, Y15, Y6
	VFMADD231PS Y13, Y15, Y7
	ADDQ $16, AX
	ADDQ $64, BX
	DECQ CX
	JNZ  loop32
	VMOVUPS Y0, (DX)
	VMOVUPS Y1, 32(DX)
	VMOVUPS Y2, 64(DX)
	VMOVUPS Y3, 96(DX)
	VMOVUPS Y4, 128(DX)
	VMOVUPS Y5, 160(DX)
	VMOVUPS Y6, 192(DX)
	VMOVUPS Y7, 224(DX)
	VZEROUPPER
	RET

// func cpuidRaw(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidRaw(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvRaw() (eax, edx uint32)
TEXT ·xgetbvRaw(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
