package tensor

import (
	"fmt"
	"testing"
)

// Kernel benchmarks: `go test -bench GEMM ./internal/tensor` is the smoke
// run wired into the bench CI job; `make bench-compute` writes the committed
// BENCH_compute.json from the same kernels via internal/experiments.

func benchSizes() []int { return []int{64, 128, 256, 512} }

func BenchmarkGEMM(b *testing.B) {
	for _, s := range benchSizes() {
		a := New(s, s)
		bb := New(s, s)
		fill(a, 1.0)
		fill(bb, 2.0)
		dst := New(s, s)
		flops := 2 * int64(s) * int64(s) * int64(s)
		b.Run(fmt.Sprintf("naive/%d", s), func(b *testing.B) {
			b.SetBytes(flops) // report "MB/s" as 2mnk bytes == FLOP/s*2e-6
			for i := 0; i < b.N; i++ {
				MatMulNaiveInto(dst, a, bb)
			}
		})
		b.Run(fmt.Sprintf("blocked-f64/%d", s), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				MatMulInto(dst, a, bb)
			}
		})
		b.Run(fmt.Sprintf("blocked-f32/%d", s), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				MatMulF32Into(dst, a, bb)
			}
		})
		pb := PackB32(bb)
		b.Run(fmt.Sprintf("packed-f32/%d", s), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				MatMulPackedF32Into(dst, a, pb)
			}
		})
	}
}

func BenchmarkGEMMTransposed(b *testing.B) {
	const s = 256
	a := New(s, s)
	bb := New(s, s)
	fill(a, 1.0)
	fill(bb, 2.0)
	dst := New(s, s)
	flops := 2 * int64(s) * int64(s) * int64(s)
	b.Run("MatMulTInto", func(b *testing.B) {
		b.SetBytes(flops)
		for i := 0; i < b.N; i++ {
			MatMulTInto(dst, a, bb)
		}
	})
	b.Run("TMatMulInto", func(b *testing.B) {
		b.SetBytes(flops)
		for i := 0; i < b.N; i++ {
			TMatMulInto(dst, a, bb)
		}
	})
	b.Run("TMatMulAccInto", func(b *testing.B) {
		b.SetBytes(flops)
		for i := 0; i < b.N; i++ {
			TMatMulAccInto(dst, a, bb)
		}
	})
}

func BenchmarkAttentionShapedBatched(b *testing.B) {
	// [B,H,T,D] shapes from the serving model.
	const B, H, T, D = 4, 4, 64, 32
	q := New(B, H, T, D)
	k := New(B, H, T, D)
	fill(q, 1.0)
	fill(k, 2.0)
	scores := New(B, H, T, T)
	b.Run("BatchedMatMulTInto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BatchedMatMulTInto(scores, q, k)
		}
	})
	b.Run("BatchedMatMulTF32Into", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BatchedMatMulTF32Into(scores, q, k)
		}
	})
}
