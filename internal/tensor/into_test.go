package tensor

import (
	"math"
	"testing"
)

// fuzzShapes are matrix extents chosen to cross every tiling boundary: the
// micro-tile (4/8/16), the cache blocks (128/256/512), the direct-vs-blocked
// threshold, and ragged edges of each.
var fuzzShapes = []int{1, 2, 3, 5, 7, 8, 9, 16, 17, 31, 33, 64, 65, 70, 129}

// fill populates t with a deterministic non-uniform pattern.
func fill(t *Tensor, seed float64) {
	for i := range t.Data {
		t.Data[i] = math.Sin(seed + float64(i)*0.7)
	}
}

// dirty returns a dst tensor pre-filled with garbage, to prove Into kernels
// fully overwrite their destination.
func dirty(shape ...int) *Tensor {
	d := New(shape...)
	for i := range d.Data {
		d.Data[i] = math.NaN()
	}
	return d
}

func assertBitwise(t *testing.T, op string, got, want *Tensor) {
	t.Helper()
	if !SameShape(got, want) {
		t.Fatalf("%s: shape %v, want %v", op, got.Shape, want.Shape)
	}
	for i := range got.Data {
		if got.Data[i] != want.Data[i] && !(math.IsNaN(got.Data[i]) && math.IsNaN(want.Data[i])) {
			t.Fatalf("%s: element %d = %v, want %v (bitwise)", op, i, got.Data[i], want.Data[i])
		}
	}
}

// TestIntoBitwiseEqualsAllocating pins XInto(dst, ...) bitwise-equal to the
// allocating X(...) for every matrix-product kernel across shapes that cross
// the tile and block edges, with a reused dirty destination.
func TestIntoBitwiseEqualsAllocating(t *testing.T) {
	for _, m := range fuzzShapes {
		for _, k := range fuzzShapes {
			for _, n := range fuzzShapes {
				if m*k*n > 1<<18 { // keep the cube affordable
					continue
				}
				a := New(m, k)
				b := New(k, n)
				fill(a, float64(m))
				fill(b, float64(n)+0.3)
				assertBitwise(t, "MatMulInto", MatMulInto(dirty(m, n), a, b), MatMul(a, b))

				bt := New(n, k)
				fill(bt, float64(n)+0.3)
				assertBitwise(t, "MatMulTInto", MatMulTInto(dirty(m, n), a, bt), MatMulT(a, bt))

				at := New(k, m)
				fill(at, float64(m))
				assertBitwise(t, "TMatMulInto", TMatMulInto(dirty(m, n), at, b), TMatMul(at, b))
			}
		}
	}
}

// TestIntoBitwiseBatched does the same for the batched products.
func TestIntoBitwiseBatched(t *testing.T) {
	for _, sh := range [][3]int{{3, 5, 7}, {16, 16, 8}, {9, 33, 17}, {2, 65, 12}} {
		m, k, n := sh[0], sh[1], sh[2]
		batchShape := []int{2, 3}
		a := New(append(append([]int{}, batchShape...), m, k)...)
		b := New(append(append([]int{}, batchShape...), k, n)...)
		bt := New(append(append([]int{}, batchShape...), n, k)...)
		at := New(append(append([]int{}, batchShape...), k, m)...)
		fill(a, 1.1)
		fill(b, 2.2)
		fill(bt, 3.3)
		fill(at, 4.4)
		dshape := append(append([]int{}, batchShape...), m, n)
		assertBitwise(t, "BatchedMatMulInto", BatchedMatMulInto(dirty(dshape...), a, b), BatchedMatMul(a, b))
		assertBitwise(t, "BatchedMatMulTInto", BatchedMatMulTInto(dirty(dshape...), a, bt), BatchedMatMulT(a, bt))
		assertBitwise(t, "BatchedTMatMulInto", BatchedTMatMulInto(dirty(dshape...), at, b), BatchedTMatMul(at, b))
	}
}

// TestIntoBitwiseElementwise pins the elementwise/reduction/shape Into
// kernels bitwise-equal to their allocating forms.
func TestIntoBitwiseElementwise(t *testing.T) {
	a := New(7, 33)
	b := New(7, 33)
	fill(a, 0.1)
	fill(b, 0.9)
	assertBitwise(t, "AddInto", AddInto(dirty(7, 33), a, b), Add(a, b))
	assertBitwise(t, "SubInto", SubInto(dirty(7, 33), a, b), Sub(a, b))
	assertBitwise(t, "MulInto", MulInto(dirty(7, 33), a, b), Mul(a, b))
	assertBitwise(t, "DivInto", DivInto(dirty(7, 33), a, b), Div(a, b))
	assertBitwise(t, "ScaleInto", ScaleInto(dirty(7, 33), a, 1.7), Scale(a, 1.7))
	assertBitwise(t, "AddScalarInto", AddScalarInto(dirty(7, 33), a, -0.4), AddScalar(a, -0.4))
	sq := func(v float64) float64 { return v * v }
	assertBitwise(t, "ApplyInto", ApplyInto(dirty(7, 33), a, sq), Apply(a, sq))
	assertBitwise(t, "SoftmaxLastDimInto", SoftmaxLastDimInto(dirty(7, 33), a), SoftmaxLastDim(a))
	y := SoftmaxLastDim(a)
	assertBitwise(t, "SoftmaxBackwardLastDimInto", SoftmaxBackwardLastDimInto(dirty(7, 33), y, b), SoftmaxBackwardLastDim(y, b))
	assertBitwise(t, "SumAxisInto", SumAxisInto(dirty(33), a, 0), SumAxis(a, 0))
	assertBitwise(t, "MeanAxisInto", MeanAxisInto(dirty(7), a, 1), MeanAxis(a, 1))
	assertBitwise(t, "Transpose2DInto", Transpose2DInto(dirty(33, 7), a), Transpose2D(a))
	assertBitwise(t, "ConcatInto", ConcatInto(dirty(14, 33), 0, a, b), Concat(0, a, b))
	assertBitwise(t, "StackInto", StackInto(dirty(2, 7, 33), a, b), Stack(a, b))
	assertBitwise(t, "SliceAxisInto", SliceAxisInto(dirty(7, 10), a, 1, 3, 13), SliceAxis(a, 1, 3, 13))
}

// TestIntoInPlaceAliasing checks that elementwise Into kernels accept
// dst aliasing an operand while matrix products reject it.
func TestIntoInPlaceAliasing(t *testing.T) {
	a := New(5, 5)
	b := New(5, 5)
	fill(a, 0.2)
	fill(b, 0.8)
	want := Add(a, b)
	got := a.Clone()
	AddInto(got, got, b)
	assertBitwise(t, "AddInto in place", got, want)

	sm := SoftmaxLastDim(a)
	inplace := a.Clone()
	SoftmaxLastDimInto(inplace, inplace)
	assertBitwise(t, "SoftmaxLastDimInto in place", inplace, sm)

	assertPanics(t, func() { MatMulInto(a, a, b) })
	assertPanics(t, func() { MatMulTInto(b, a, b) })
	assertPanics(t, func() { TMatMulInto(a, a, b) })
}

// TestIntoShapeValidation checks that a wrongly-shaped dst panics rather
// than silently writing out of place.
func TestIntoShapeValidation(t *testing.T) {
	a := New(4, 6)
	b := New(6, 5)
	assertPanics(t, func() { MatMulInto(New(4, 4), a, b) })
	assertPanics(t, func() { AddInto(New(4, 5), a, a) })
	assertPanics(t, func() { TMatMulAccInto(nil, a, a) })
}

// TestTMatMulAccInto pins the accumulate variant: dst += a^T@b.
func TestTMatMulAccInto(t *testing.T) {
	for _, sh := range [][3]int{{6, 9, 5}, {33, 70, 17}, {64, 129, 64}} {
		k, m, n := sh[0], sh[1], sh[2]
		a := New(k, m)
		b := New(k, n)
		fill(a, 0.5)
		fill(b, 1.5)
		base := New(m, n)
		fill(base, 2.5)
		got := base.Clone()
		TMatMulAccInto(got, a, b)
		prod := TMatMul(a, b)
		// Accumulating into a non-zero base folds the additions in a
		// different order than base + product, so compare to rounding.
		for i := range got.Data {
			want := base.Data[i] + prod.Data[i]
			if d := math.Abs(got.Data[i] - want); d > 1e-12*math.Sqrt(float64(k)) {
				t.Fatalf("TMatMulAccInto[%d] = %v, want %v (diff %g)", i, got.Data[i], want, d)
			}
		}
	}
}

// TestBlockedMatchesNaive verifies the blocked/packed driver against the
// naive reference kernel across ragged shapes, on both the SIMD and the
// generic micro-kernels.
func TestBlockedMatchesNaive(t *testing.T) {
	run := func(t *testing.T) {
		for _, sh := range [][3]int{{1, 1, 1}, {4, 8, 8}, {5, 9, 11}, {33, 257, 70}, {130, 300, 513}, {64, 512, 96}} {
			m, k, n := sh[0], sh[1], sh[2]
			a := New(m, k)
			b := New(k, n)
			fill(a, 0.7)
			fill(b, 1.3)
			got := MatMul(a, b)
			want := MatMulNaiveInto(nil, a, b)
			// FMA + blocked accumulation differ from naive by rounding only.
			tol := 1e-12 * math.Sqrt(float64(k))
			if d := MaxAbsDiff(got, want); d > tol {
				t.Fatalf("blocked [%d,%d,%d] differs from naive by %g (tol %g)", m, k, n, d, tol)
			}
		}
	}
	t.Run("default", run)
	prev := simdGEMM
	simdGEMM = false
	defer func() { simdGEMM = prev }()
	t.Run("generic", run)
}

// TestSIMDMatchesGeneric pins the assembly micro-kernels against their
// pure-Go twins on the packed driver (skipped where AVX2 is unavailable).
func TestSIMDMatchesGeneric(t *testing.T) {
	if !simdGEMM {
		t.Skip("SIMD kernels unavailable on this host")
	}
	a := New(70, 300)
	b := New(300, 130)
	fill(a, 3.1)
	fill(b, 4.1)
	simd := MatMul(a, b)
	f32simd := MatMulF32Into(nil, a, b)
	simdGEMM = false
	generic := MatMul(a, b)
	f32generic := MatMulF32Into(nil, a, b)
	simdGEMM = true
	// Same blocking, same summation order; FMA contraction is the only
	// difference, so agreement must be at rounding level.
	if d := MaxAbsDiff(simd, generic); d > 1e-11 {
		t.Fatalf("f64 SIMD kernel differs from generic by %g", d)
	}
	if d := MaxAbsDiff(f32simd, f32generic); d > 1e-2 {
		t.Fatalf("f32 SIMD kernel differs from generic by %g", d)
	}
}
