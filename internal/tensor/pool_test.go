package tensor

import (
	"sync"
	"testing"
)

func TestPoolReuse(t *testing.T) {
	p := &Pool{}
	a := p.GetTensor(8, 16)
	if len(a.Data) != 128 {
		t.Fatalf("GetTensor len = %d, want 128", len(a.Data))
	}
	a.Fill(3)
	ptr := &a.Data[0]
	p.PutTensor(a)
	b := p.GetTensor(128)
	if &b.Data[0] != ptr {
		t.Fatal("pool did not reuse the buffer")
	}
	if len(b.Shape) != 1 || b.Shape[0] != 128 {
		t.Fatalf("reused tensor shape = %v", b.Shape)
	}
	// A larger request must not be served by the small buffer.
	c := p.GetTensor(4096)
	if &c.Data[0] == ptr {
		t.Fatal("pool served an undersized buffer")
	}
}

func TestPoolSizeClasses(t *testing.T) {
	p := &Pool{}
	small := p.GetTensor(65) // class 128
	p.PutTensor(small)
	got := p.GetTensor(100) // also class 128
	if cap(got.Data) < 100 {
		t.Fatalf("cap = %d, want >= 100", cap(got.Data))
	}
	// Externally-allocated tensors are accepted and filed under the class
	// their capacity can serve.
	ext := New(100)
	p.PutTensor(ext)
	reused := p.GetTensor(60)
	if cap(reused.Data) < 60 {
		t.Fatalf("cap = %d, want >= 60", cap(reused.Data))
	}
}

func TestPoolF32(t *testing.T) {
	p := &Pool{}
	buf := p.Get32(1000)
	if len(buf) != 1000 {
		t.Fatalf("Get32 len = %d", len(buf))
	}
	p.Put32(buf)
	again := p.Get32(900)
	if cap(again) < 900 {
		t.Fatalf("Get32 cap = %d", cap(again))
	}
}

// TestPoolConcurrent exercises Get/Put from many goroutines; run with -race
// this pins the pool's thread safety (the blocked kernels draw panels from
// DefaultPool concurrently in every parallel matmul).
func TestPoolConcurrent(t *testing.T) {
	p := &Pool{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tt := p.GetTensor(64 + (g+i)%512)
				tt.Fill(float64(g))
				for _, v := range tt.Data {
					if v != float64(g) {
						t.Error("pool handed the same buffer to two goroutines")
						return
					}
				}
				p.PutTensor(tt)
				b := p.Get32(128)
				p.Put32(b)
			}
		}(g)
	}
	wg.Wait()
}

func TestEnsureShape(t *testing.T) {
	a := EnsureShape(nil, 4, 5)
	if len(a.Data) != 20 {
		t.Fatalf("EnsureShape alloc len = %d", len(a.Data))
	}
	ptr := &a.Data[0]
	b := EnsureShape(a, 2, 7) // smaller: reuse
	if &b.Data[0] != ptr || b.Shape[0] != 2 || b.Shape[1] != 7 {
		t.Fatal("EnsureShape did not reuse backing for a smaller shape")
	}
	c := EnsureShape(b, 100, 100) // larger: fresh
	if len(c.Data) != 10000 {
		t.Fatalf("EnsureShape grow len = %d", len(c.Data))
	}
}

// TestMatMulIntoSteadyStateAllocs pins allocs/op ~ 0 for the hot kernels
// once scratch is warm (single-worker path: goroutine dispatch on the
// parallel path transiently allocates closures, which is measured and
// reported separately in BENCH_compute.json).
func TestMatMulIntoSteadyStateAllocs(t *testing.T) {
	a := New(64, 96)
	b := New(96, 64)
	bt := New(64, 96)
	at := New(96, 64)
	fill(a, 1)
	fill(b, 2)
	dst := New(64, 64)
	acc := New(64, 64)
	MatMulInto(dst, a, b) // warm the pool
	cases := []struct {
		name string
		fn   func()
	}{
		{"MatMulInto", func() { MatMulInto(dst, a, b) }},
		{"MatMulTInto", func() { MatMulTInto(dst, a, bt) }},
		{"TMatMulInto", func() { TMatMulInto(dst, at, b) }},
		{"TMatMulAccInto", func() { TMatMulAccInto(acc, at, b) }},
		{"MatMulF32Into", func() { MatMulF32Into(dst, a, b) }},
		{"AddInto", func() { AddInto(dst, dst, dst) }},
		{"SoftmaxLastDimInto", func() { SoftmaxLastDimInto(dst, dst) }},
	}
	for _, c := range cases {
		c.fn() // warm
		if n := testing.AllocsPerRun(10, c.fn); n > 0.5 {
			t.Errorf("%s allocates %.1f times per op in steady state", c.name, n)
		}
	}
}
