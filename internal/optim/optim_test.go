package optim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// quadratic builds a single-parameter problem minimizing |w - target|^2 and
// returns the param plus a function that computes loss and fills the grad.
func quadratic(target []float64) (*nn.Param, func() float64) {
	p := nn.NewParam("w", tensor.New(len(target)))
	step := func() float64 {
		loss := 0.0
		for i := range target {
			d := p.W.Data[i] - target[i]
			loss += d * d
			p.Grad.Data[i] = 2 * d
		}
		return loss
	}
	return p, step
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p, step := quadratic([]float64{3, -1, 0.5})
	opt := NewSGD([]*nn.Param{p}, 0.1, 0)
	for i := 0; i < 200; i++ {
		step()
		opt.Step()
	}
	if loss := step(); loss > 1e-10 {
		t.Fatalf("SGD did not converge: loss %v", loss)
	}
}

func TestSGDMomentumFasterThanPlain(t *testing.T) {
	run := func(momentum float64) float64 {
		p, step := quadratic([]float64{5})
		opt := NewSGD([]*nn.Param{p}, 0.02, momentum)
		for i := 0; i < 50; i++ {
			step()
			opt.Step()
		}
		return step()
	}
	if run(0.9) >= run(0) {
		t.Fatal("momentum should accelerate convergence on a well-conditioned quadratic")
	}
}

func TestAdamWConvergesOnQuadratic(t *testing.T) {
	p, step := quadratic([]float64{2, -4})
	opt := NewAdamW([]*nn.Param{p}, 0.1, 0)
	for i := 0; i < 500; i++ {
		step()
		opt.Step()
	}
	if loss := step(); loss > 1e-6 {
		t.Fatalf("AdamW did not converge: loss %v", loss)
	}
	if opt.StepCount() != 500 {
		t.Fatalf("StepCount = %d", opt.StepCount())
	}
}

func TestAdamWFirstStepMagnitude(t *testing.T) {
	// With bias correction, the first Adam step is ~lr regardless of
	// gradient scale.
	p := nn.NewParam("w", tensor.New(1))
	p.Grad.Data[0] = 1e-3
	opt := NewAdamW([]*nn.Param{p}, 0.5, 0)
	opt.Step()
	if math.Abs(math.Abs(p.W.Data[0])-0.5) > 1e-3 {
		t.Fatalf("first step = %v, want ~lr=0.5", p.W.Data[0])
	}
}

func TestAdamWWeightDecayShrinksWeights(t *testing.T) {
	p := nn.NewParam("w", tensor.Full(10, 1))
	// Zero gradient: only decay acts.
	opt := NewAdamW([]*nn.Param{p}, 0.1, 0.1)
	opt.Step()
	if p.W.Data[0] >= 10 {
		t.Fatal("weight decay must shrink weights with zero gradient")
	}
}

func TestClipGradNorm(t *testing.T) {
	p := nn.NewParam("w", tensor.New(2))
	p.Grad.Data[0] = 3
	p.Grad.Data[1] = 4
	norm := ClipGradNorm([]*nn.Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	after := math.Hypot(p.Grad.Data[0], p.Grad.Data[1])
	if math.Abs(after-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v, want 1", after)
	}
	// Below the threshold: untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 0.3, 0.4
	ClipGradNorm([]*nn.Param{p}, 1)
	if p.Grad.Data[0] != 0.3 {
		t.Fatal("clip must not rescale small gradients")
	}
}

func TestCosineScheduleShape(t *testing.T) {
	s := CosineSchedule{BaseLR: 1, MinLR: 0.1, WarmupSteps: 10, TotalSteps: 110}
	if got := s.At(0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("warmup start = %v, want 0.1", got)
	}
	if got := s.At(9); math.Abs(got-1) > 1e-12 {
		t.Fatalf("warmup end = %v, want 1", got)
	}
	mid := s.At(60)
	if mid >= 1 || mid <= 0.1 {
		t.Fatalf("mid-decay = %v, want strictly between min and base", mid)
	}
	if got := s.At(110); got != 0.1 {
		t.Fatalf("post-total = %v, want MinLR", got)
	}
	// Monotone decay after warmup.
	prev := s.At(10)
	for i := 11; i < 110; i++ {
		cur := s.At(i)
		if cur > prev+1e-12 {
			t.Fatalf("cosine decay not monotone at %d", i)
		}
		prev = cur
	}
}

func TestScheduleApplySetsLR(t *testing.T) {
	p, _ := quadratic([]float64{1})
	opt := NewSGD([]*nn.Param{p}, 1, 0)
	s := CosineSchedule{BaseLR: 0.5, MinLR: 0, WarmupSteps: 0, TotalSteps: 100}
	lr := s.Apply(opt, 0)
	if opt.LR() != lr || math.Abs(lr-0.5) > 1e-12 {
		t.Fatalf("Apply lr = %v opt.LR = %v", lr, opt.LR())
	}
}

func TestOptimizerTrainsLinearRegression(t *testing.T) {
	// End-to-end sanity: fit y = xW with Linear + AdamW.
	rng := tensor.NewRNG(7)
	trueW := tensor.Randn(rng, 3, 2)
	l := nn.NewLinear("l", 3, 2, 8)
	opt := NewAdamW(l.Params(), 0.05, 0)
	loss := nn.NewMSELoss()
	var last float64
	for i := 0; i < 300; i++ {
		x := tensor.Randn(rng, 16, 3)
		y := tensor.MatMul(x, trueW)
		pred := l.Forward(x)
		last = loss.Forward(pred, y)
		nn.ZeroGrads(l.Params())
		l.Backward(loss.Backward())
		opt.Step()
	}
	if last > 1e-3 {
		t.Fatalf("linear regression did not fit: loss %v", last)
	}
}

func TestAdamWStateRoundTripContinuesTrajectory(t *testing.T) {
	// Export after k steps, import into a fresh optimizer over a copied
	// parameter, continue both: the trajectories must be bitwise identical
	// (moments and bias-correction step count both restored).
	target := []float64{3, -1, 0.5}
	p1, step1 := quadratic(target)
	o1 := NewAdamW([]*nn.Param{p1}, 0.05, 0.01)
	for i := 0; i < 5; i++ {
		step1()
		o1.Step()
	}

	p2, step2 := quadratic(target)
	copy(p2.W.Data, p1.W.Data)
	o2 := NewAdamW([]*nn.Param{p2}, 0.05, 0.01)
	if err := o2.ImportState(o1.ExportState()); err != nil {
		t.Fatal(err)
	}
	if o2.StepCount() != 5 {
		t.Fatalf("imported step count %d, want 5", o2.StepCount())
	}
	for i := 0; i < 5; i++ {
		step1()
		o1.Step()
		step2()
		o2.Step()
		for j := range p1.W.Data {
			if p1.W.Data[j] != p2.W.Data[j] {
				t.Fatalf("trajectories diverge at continued step %d index %d", i, j)
			}
		}
	}
}

func TestSGDStateRoundTrip(t *testing.T) {
	p1, step1 := quadratic([]float64{2})
	o1 := NewSGD([]*nn.Param{p1}, 0.1, 0.9)
	for i := 0; i < 3; i++ {
		step1()
		o1.Step()
	}
	p2, step2 := quadratic([]float64{2})
	copy(p2.W.Data, p1.W.Data)
	o2 := NewSGD([]*nn.Param{p2}, 0.1, 0.9)
	if err := o2.ImportState(o1.ExportState()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		step1()
		o1.Step()
		step2()
		o2.Step()
	}
	if p1.W.Data[0] != p2.W.Data[0] {
		t.Fatal("SGD velocity not restored exactly")
	}
}

func TestImportStateReportsAllMismatches(t *testing.T) {
	params := []*nn.Param{
		nn.NewParam("a", tensor.New(2)),
		nn.NewParam("b", tensor.New(3)),
	}
	o := NewAdamW(params, 0.1, 0)
	st := State{
		Algo: "sgd", // wrong algo
		Moments: map[string]Moment{
			"a":     {"m": []float64{1}, "v": []float64{1, 2}}, // short "m"
			"ghost": {"m": []float64{0}, "v": []float64{0}},    // unknown param
		},
		// "b" missing entirely
	}
	err := o.ImportState(st)
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{`algo "sgd"`, `"a"`, `missing moments for parameter "b"`, `unknown parameter "ghost"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	// Failed import must not have touched the optimizer's state.
	if s := o.ExportState(); s.Step != 0 || len(s.Moments["a"]["m"]) != 2 {
		t.Fatal("failed import mutated optimizer state")
	}
}

func TestMomentumFreeSGDImport(t *testing.T) {
	p, _ := quadratic([]float64{1})
	o := NewSGD([]*nn.Param{p}, 0.1, 0)
	if err := o.ImportState(State{Algo: "sgd"}); err != nil {
		t.Fatal(err)
	}
	if err := o.ImportState(State{Algo: "adamw"}); err == nil {
		t.Fatal("want algo error")
	}
}

func TestDuplicateParamNamesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate names must panic")
		}
	}()
	NewAdamW([]*nn.Param{
		nn.NewParam("w", tensor.New(1)),
		nn.NewParam("w", tensor.New(1)),
	}, 0.1, 0)
}
