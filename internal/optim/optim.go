// Package optim implements the optimizers and learning-rate schedules used
// to train the repository's models: SGD with momentum, Adam, AdamW with
// decoupled weight decay, cosine schedules with linear warmup, and global
// gradient-norm clipping.
//
// Optimizers key their per-parameter state (moments, velocities) by the
// parameter's name, so state survives checkpointing: ExportState snapshots
// the moments and step count into a name-keyed State and ImportState
// restores them, preserving the exact optimization trajectory across
// save/resume — including across reshardings, since a moment buffer shares
// its parameter's shard layout. Parameter names must therefore be unique
// within one optimizer instance. All updates are deterministic.
package optim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/nn"
)

// Optimizer applies one update step to a fixed set of parameters.
type Optimizer interface {
	// Step applies one update using the gradients currently accumulated in
	// the parameters. It does not zero gradients; callers do that explicitly
	// so gradient-accumulation schedules are possible.
	Step()
	// SetLR overrides the learning rate (used by schedules).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// Moment holds one parameter's optimizer buffers keyed by buffer name
// ("m"/"v" for AdamW, "velocity" for SGD). Every buffer has the same length
// as the parameter's data and shares its shard layout, which is what lets
// checkpoints reshard optimizer state alongside the weights.
type Moment map[string][]float64

// State is a topology-agnostic snapshot of an optimizer: the algorithm, the
// update count, and every parameter's moment buffers keyed by parameter
// name. It is the optimizer half of the checkpoint state tree.
type State struct {
	// Algo identifies the optimizer family ("adamw" or "sgd").
	Algo string
	// Step is the number of updates applied (drives AdamW bias correction).
	Step int
	// Moments maps parameter name to that parameter's buffers. Parameters
	// without state (e.g. SGD with zero momentum) are absent.
	Moments map[string]Moment
}

// Stateful is an Optimizer whose full state can be exported and restored,
// the contract checkpointing relies on.
type Stateful interface {
	Optimizer
	// ExportState returns a deep copy of the optimizer's state.
	ExportState() State
	// ImportState restores a previously exported state. Every moment buffer
	// must match a current parameter's name and length; all mismatches are
	// reported in one joined error and nothing is restored on error.
	ImportState(State) error
}

// uniqueNames panics when two parameters share a name: name-keyed state
// would silently alias them.
func uniqueNames(params []*nn.Param) {
	seen := make(map[string]struct{}, len(params))
	for _, p := range params {
		if _, dup := seen[p.Name]; dup {
			panic(fmt.Sprintf("optim: duplicate parameter name %q", p.Name))
		}
		seen[p.Name] = struct{}{}
	}
}

// importMoments validates that state provides exactly one buffer of the
// right length per expected key for every parameter in have (a name ->
// length map), reporting all mismatches at once. On success it returns the
// validated buffers (deep-copied) keyed by parameter name.
func importMoments(algo string, state State, params []*nn.Param, keys []string) (map[string]Moment, error) {
	var errs []error
	if state.Algo != algo {
		errs = append(errs, fmt.Errorf("optim: state algo %q does not match optimizer %q", state.Algo, algo))
	}
	known := make(map[string]struct{}, len(params))
	out := make(map[string]Moment, len(params))
	for _, p := range params {
		known[p.Name] = struct{}{}
		m, ok := state.Moments[p.Name]
		if !ok {
			errs = append(errs, fmt.Errorf("optim: state missing moments for parameter %q", p.Name))
			continue
		}
		cp := make(Moment, len(keys))
		for _, k := range keys {
			buf, ok := m[k]
			if !ok {
				errs = append(errs, fmt.Errorf("optim: state for %q missing buffer %q", p.Name, k))
				continue
			}
			if len(buf) != p.Numel() {
				errs = append(errs, fmt.Errorf("optim: state buffer %q/%q has %d values, parameter has %d",
					p.Name, k, len(buf), p.Numel()))
				continue
			}
			cp[k] = append([]float64(nil), buf...)
		}
		if len(cp) == len(keys) {
			out[p.Name] = cp
		}
	}
	for name := range state.Moments {
		if _, ok := known[name]; !ok {
			errs = append(errs, fmt.Errorf("optim: state has moments for unknown parameter %q", name))
		}
	}
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	Params   []*nn.Param
	lr       float64
	Momentum float64

	velocity map[string][]float64 // nil when Momentum == 0
}

// NewSGD constructs an SGD optimizer over params.
func NewSGD(params []*nn.Param, lr, momentum float64) *SGD {
	uniqueNames(params)
	s := &SGD{Params: params, lr: lr, Momentum: momentum}
	if momentum != 0 {
		s.velocity = make(map[string][]float64, len(params))
		for _, p := range params {
			s.velocity[p.Name] = make([]float64, p.Numel())
		}
	}
	return s
}

// Step applies w -= lr * (v or g).
func (s *SGD) Step() {
	for _, p := range s.Params {
		if s.velocity == nil {
			for j := range p.W.Data {
				p.W.Data[j] -= s.lr * p.Grad.Data[j]
			}
			continue
		}
		v := s.velocity[p.Name]
		for j := range p.W.Data {
			v[j] = s.Momentum*v[j] + p.Grad.Data[j]
			p.W.Data[j] -= s.lr * v[j]
		}
	}
}

// ExportState snapshots the velocity buffers keyed by parameter name.
func (s *SGD) ExportState() State {
	st := State{Algo: "sgd", Moments: make(map[string]Moment, len(s.velocity))}
	for name, v := range s.velocity {
		st.Moments[name] = Moment{"velocity": append([]float64(nil), v...)}
	}
	return st
}

// ImportState restores previously exported velocities. With zero momentum
// the state must carry no moments.
func (s *SGD) ImportState(st State) error {
	if s.velocity == nil {
		if st.Algo != "sgd" || len(st.Moments) != 0 {
			return fmt.Errorf("optim: momentum-free SGD cannot import state (algo %q, %d moments)", st.Algo, len(st.Moments))
		}
		return nil
	}
	moments, err := importMoments("sgd", st, s.Params, []string{"velocity"})
	if err != nil {
		return err
	}
	for name, m := range moments {
		s.velocity[name] = m["velocity"]
	}
	return nil
}

// SetLR overrides the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR returns the current learning rate.
func (s *SGD) LR() float64 { return s.lr }

// AdamW is Adam with decoupled weight decay (Loshchilov & Hutter), the
// optimizer used for the paper's training runs.
type AdamW struct {
	Params      []*nn.Param
	lr          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	step int
	m    map[string][]float64
	v    map[string][]float64
}

// NewAdamW constructs an AdamW optimizer with the standard defaults
// beta1=0.9, beta2=0.999, eps=1e-8.
func NewAdamW(params []*nn.Param, lr, weightDecay float64) *AdamW {
	uniqueNames(params)
	a := &AdamW{
		Params: params, lr: lr,
		Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		WeightDecay: weightDecay,
		m:           make(map[string][]float64, len(params)),
		v:           make(map[string][]float64, len(params)),
	}
	for _, p := range params {
		a.m[p.Name] = make([]float64, p.Numel())
		a.v[p.Name] = make([]float64, p.Numel())
	}
	return a
}

// NewAdam constructs plain Adam (zero weight decay).
func NewAdam(params []*nn.Param, lr float64) *AdamW { return NewAdamW(params, lr, 0) }

// Step applies one AdamW update with bias correction.
func (a *AdamW) Step() {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range a.Params {
		m, v := a.m[p.Name], a.v[p.Name]
		for j := range p.W.Data {
			g := p.Grad.Data[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / c1
			vh := v[j] / c2
			p.W.Data[j] -= a.lr * (mh/(math.Sqrt(vh)+a.Eps) + a.WeightDecay*p.W.Data[j])
		}
	}
}

// ExportState snapshots the first and second moments and the step count,
// keyed by parameter name.
func (a *AdamW) ExportState() State {
	st := State{Algo: "adamw", Step: a.step, Moments: make(map[string]Moment, len(a.m))}
	for name, m := range a.m {
		st.Moments[name] = Moment{
			"m": append([]float64(nil), m...),
			"v": append([]float64(nil), a.v[name]...),
		}
	}
	return st
}

// ImportState restores previously exported moments and the step count, so a
// resumed run continues the exact Adam trajectory (bias correction
// included).
func (a *AdamW) ImportState(st State) error {
	moments, err := importMoments("adamw", st, a.Params, []string{"m", "v"})
	if err != nil {
		return err
	}
	if st.Step < 0 {
		return fmt.Errorf("optim: negative step count %d", st.Step)
	}
	a.step = st.Step
	for name, m := range moments {
		a.m[name] = m["m"]
		a.v[name] = m["v"]
	}
	return nil
}

// SetLR overrides the learning rate.
func (a *AdamW) SetLR(lr float64) { a.lr = lr }

// LR returns the current learning rate.
func (a *AdamW) LR() float64 { return a.lr }

// StepCount returns the number of updates applied so far.
func (a *AdamW) StepCount() int { return a.step }

// ClipGradNorm scales all gradients so their global L2 norm does not exceed
// maxNorm, returning the pre-clip norm.
func ClipGradNorm(params []*nn.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for j := range p.Grad.Data {
				p.Grad.Data[j] *= scale
			}
		}
	}
	return norm
}

// CosineSchedule produces a linear warmup to baseLR over warmupSteps
// followed by cosine decay to minLR at totalSteps.
type CosineSchedule struct {
	BaseLR, MinLR           float64
	WarmupSteps, TotalSteps int
}

// At returns the learning rate for 0-indexed step t.
func (c CosineSchedule) At(t int) float64 {
	if c.WarmupSteps > 0 && t < c.WarmupSteps {
		return c.BaseLR * float64(t+1) / float64(c.WarmupSteps)
	}
	if t >= c.TotalSteps {
		return c.MinLR
	}
	progress := float64(t-c.WarmupSteps) / float64(c.TotalSteps-c.WarmupSteps)
	return c.MinLR + 0.5*(c.BaseLR-c.MinLR)*(1+math.Cos(math.Pi*progress))
}

// Apply sets the optimizer's LR for step t and returns it.
func (c CosineSchedule) Apply(o Optimizer, t int) float64 {
	lr := c.At(t)
	o.SetLR(lr)
	return lr
}
