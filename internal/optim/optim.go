// Package optim implements the optimizers and learning-rate schedules used
// to train the repository's models: SGD with momentum, Adam, AdamW with
// decoupled weight decay, cosine schedules with linear warmup, and global
// gradient-norm clipping.
//
// Optimizers key their state by parameter identity, so the same optimizer
// instance must be reused across steps. All updates are deterministic.
package optim

import (
	"math"

	"repro/internal/nn"
)

// Optimizer applies one update step to a fixed set of parameters.
type Optimizer interface {
	// Step applies one update using the gradients currently accumulated in
	// the parameters. It does not zero gradients; callers do that explicitly
	// so gradient-accumulation schedules are possible.
	Step()
	// SetLR overrides the learning rate (used by schedules).
	SetLR(lr float64)
	// LR returns the current learning rate.
	LR() float64
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	Params   []*nn.Param
	lr       float64
	Momentum float64

	velocity [][]float64
}

// NewSGD constructs an SGD optimizer over params.
func NewSGD(params []*nn.Param, lr, momentum float64) *SGD {
	s := &SGD{Params: params, lr: lr, Momentum: momentum}
	if momentum != 0 {
		s.velocity = make([][]float64, len(params))
		for i, p := range params {
			s.velocity[i] = make([]float64, p.Numel())
		}
	}
	return s
}

// Step applies w -= lr * (v or g).
func (s *SGD) Step() {
	for i, p := range s.Params {
		if s.velocity == nil {
			for j := range p.W.Data {
				p.W.Data[j] -= s.lr * p.Grad.Data[j]
			}
			continue
		}
		v := s.velocity[i]
		for j := range p.W.Data {
			v[j] = s.Momentum*v[j] + p.Grad.Data[j]
			p.W.Data[j] -= s.lr * v[j]
		}
	}
}

// SetLR overrides the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR returns the current learning rate.
func (s *SGD) LR() float64 { return s.lr }

// AdamW is Adam with decoupled weight decay (Loshchilov & Hutter), the
// optimizer used for the paper's training runs.
type AdamW struct {
	Params      []*nn.Param
	lr          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	step int
	m    [][]float64
	v    [][]float64
}

// NewAdamW constructs an AdamW optimizer with the standard defaults
// beta1=0.9, beta2=0.999, eps=1e-8.
func NewAdamW(params []*nn.Param, lr, weightDecay float64) *AdamW {
	a := &AdamW{
		Params: params, lr: lr,
		Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		WeightDecay: weightDecay,
		m:           make([][]float64, len(params)),
		v:           make([][]float64, len(params)),
	}
	for i, p := range params {
		a.m[i] = make([]float64, p.Numel())
		a.v[i] = make([]float64, p.Numel())
	}
	return a
}

// NewAdam constructs plain Adam (zero weight decay).
func NewAdam(params []*nn.Param, lr float64) *AdamW { return NewAdamW(params, lr, 0) }

// Step applies one AdamW update with bias correction.
func (a *AdamW) Step() {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for i, p := range a.Params {
		m, v := a.m[i], a.v[i]
		for j := range p.W.Data {
			g := p.Grad.Data[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mh := m[j] / c1
			vh := v[j] / c2
			p.W.Data[j] -= a.lr * (mh/(math.Sqrt(vh)+a.Eps) + a.WeightDecay*p.W.Data[j])
		}
	}
}

// SetLR overrides the learning rate.
func (a *AdamW) SetLR(lr float64) { a.lr = lr }

// LR returns the current learning rate.
func (a *AdamW) LR() float64 { return a.lr }

// StepCount returns the number of updates applied so far.
func (a *AdamW) StepCount() int { return a.step }

// ClipGradNorm scales all gradients so their global L2 norm does not exceed
// maxNorm, returning the pre-clip norm.
func ClipGradNorm(params []*nn.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for j := range p.Grad.Data {
				p.Grad.Data[j] *= scale
			}
		}
	}
	return norm
}

// CosineSchedule produces a linear warmup to baseLR over warmupSteps
// followed by cosine decay to minLR at totalSteps.
type CosineSchedule struct {
	BaseLR, MinLR           float64
	WarmupSteps, TotalSteps int
}

// At returns the learning rate for 0-indexed step t.
func (c CosineSchedule) At(t int) float64 {
	if c.WarmupSteps > 0 && t < c.WarmupSteps {
		return c.BaseLR * float64(t+1) / float64(c.WarmupSteps)
	}
	if t >= c.TotalSteps {
		return c.MinLR
	}
	progress := float64(t-c.WarmupSteps) / float64(c.TotalSteps-c.WarmupSteps)
	return c.MinLR + 0.5*(c.BaseLR-c.MinLR)*(1+math.Cos(math.Pi*progress))
}

// Apply sets the optimizer's LR for step t and returns it.
func (c CosineSchedule) Apply(o Optimizer, t int) float64 {
	lr := c.At(t)
	o.SetLR(lr)
	return lr
}
