package model

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Arch describes a foundation model: the channel-stage configuration plus
// the ViT depth, metadata tokens, and the regression head. The head predicts
// every channel's patch pixels per spatial token (dimension C*P*P), which
// serves both the MAE reconstruction objective (Fig. 10) and the
// image-to-image forecast objective (Sec. 5.2).
type Arch struct {
	core.Config
	// Depth is the number of transformer blocks in the ViT component.
	Depth int
	// MetaTokens is the number of learned metadata tokens prepended to the
	// spatial sequence (time / geolocation context in the paper's weather
	// models). Zero disables them.
	MetaTokens int
	// SwinWindow selects Swin-style windowed-attention ViT blocks with the
	// given window size when positive (paper Sec. 3.5: D-CHAG is agnostic to
	// the ViT architecture). Requires MetaTokens == 0, since windowed
	// attention operates on the intact spatial grid. Blocks alternate
	// unshifted and shifted windows.
	SwinWindow int
	// Partitions is the logical D-CHAG channel-partition count P; 0 means
	// one partition per rank (the historical layout). P is a property of the
	// model, not the topology: any rank count dividing P realizes the same
	// logical model, which is what lets checkpoints reshard across rank
	// counts (including to serial via NewSerialDCHAGEquivalent(a, P)).
	Partitions int
}

// HeadDim returns the per-token regression width C*P*P.
func (a Arch) HeadDim() int { return a.Channels * a.Patch * a.Patch }

// ParamCount returns the exact number of learnable scalars of the serial
// model (used in reports; the distributed model's per-rank count differs by
// construction).
func (a Arch) ParamCount() int {
	m := NewSerial(a)
	return nn.NumParams(m.Params())
}

// FoundationModel is the generic architecture of the paper's Fig. 1:
//
//	channel stage (tokenize + aggregate)  ->  [B, T, E]
//	(optional masking with a learned mask token, for MAE)
//	positional embedding -> metadata tokens -> Depth transformer blocks
//	final LayerNorm -> linear head -> [B, T, C*P*P]
//
// The channel stage is pluggable (serial or D-CHAG); everything downstream
// is identical in both cases.
type FoundationModel struct {
	Arch  Arch
	Stage ChannelStage

	MaskTok *nn.Param
	Pos     *nn.PosEmbed
	Meta    *nn.MetaToken
	Blocks  []nn.Layer
	Norm    *nn.LayerNorm
	Head    *nn.Linear

	b    int
	mask *tensor.Tensor
	eval bool

	masked, imasked *tensor.Tensor // mask-token substitution scratch
	dFull           *tensor.Tensor // meta-token gradient scatter scratch
	dMasked         *tensor.Tensor // mask gradient-routing scratch
}

// NewSerial builds the single-process baseline model.
func NewSerial(a Arch) *FoundationModel {
	return build(a, NewSerialStage(a.Config), nil, false)
}

// NewDistributed builds rank c.Rank()'s model with a D-CHAG channel stage.
// When tpViT is true the transformer blocks are tensor-parallel over the
// same group (the paper's D-CHAG + TP combination); otherwise the ViT is
// replicated, which is functionally identical.
func NewDistributed(a Arch, c *comm.Communicator, tpViT bool) *FoundationModel {
	return build(a, NewDCHAGStage(a.Config, c, a.Partitions), c, tpViT)
}

func build(a Arch, stage ChannelStage, c *comm.Communicator, tpViT bool) *FoundationModel {
	if a.Depth < 1 {
		panic(fmt.Sprintf("model: depth %d must be positive", a.Depth))
	}
	t := a.Tokens()
	m := &FoundationModel{
		Arch:  a,
		Stage: stage,
		Pos:   nn.NewPosEmbed("fm.pos", t, a.Embed, nn.SubSeed(a.Seed, 20)),
		Norm:  nn.NewLayerNorm("fm.norm", a.Embed),
		Head:  nn.NewLinear("fm.head", a.Embed, a.HeadDim(), nn.SubSeed(a.Seed, 21)),
	}
	rng := tensor.NewRNG(nn.SubSeed(a.Seed, 22))
	m.MaskTok = nn.NewParam("fm.masktok", tensor.RandnScaled(rng, 0.02, a.Embed))
	if a.MetaTokens > 0 {
		m.Meta = nn.NewMetaToken("fm.meta", a.MetaTokens, a.Embed, nn.SubSeed(a.Seed, 23))
	}
	if a.SwinWindow > 0 && a.MetaTokens > 0 {
		panic("model: SwinWindow requires MetaTokens == 0 (windowed attention needs the intact spatial grid)")
	}
	for i := 0; i < a.Depth; i++ {
		name := fmt.Sprintf("fm.block%d", i)
		seed := nn.SubSeed(a.Seed, 24+i)
		switch {
		case a.SwinWindow > 0:
			gridH, gridW := a.ImgH/a.Patch, a.ImgW/a.Patch
			m.Blocks = append(m.Blocks, nn.NewSwinBlock(name, a.Embed, a.Heads, gridH, gridW, a.SwinWindow, i%2 == 1, seed))
		case tpViT && c != nil && c.Size() > 1:
			m.Blocks = append(m.Blocks, parallel.NewParallelTransformerBlock(name, a.Embed, a.Heads, seed, c))
		default:
			m.Blocks = append(m.Blocks, nn.NewTransformerBlock(name, a.Embed, a.Heads, seed))
		}
	}
	return m
}

// SetInferDType selects the arithmetic of the no-grad Infer path for every
// matrix product in the model: the channel stage, the transformer blocks,
// and the head. Layer norms, softmaxes and embedding adds stay float64.
// With tensor.F32 the weights are prepacked into float32 panels, so call it
// again after every optimizer step that mutates the weights; with tensor.F64
// (the default) Infer is bitwise identical to Forward.
func (m *FoundationModel) SetInferDType(dt tensor.DType) {
	if d, ok := m.Stage.(nn.DTyper); ok {
		d.SetInferDType(dt)
	}
	for _, blk := range m.Blocks {
		nn.SetInferDType(blk, dt)
	}
	m.Head.SetInferDType(dt)
}

// SetEval switches the model between training mode (the default) and
// inference mode. In eval mode Forward routes through Infer — the no-grad
// fast path that skips all activation caching — and Backward panics, so an
// accidental training step on a serving model fails loudly instead of
// corrupting state. Outputs are bitwise identical in both modes.
func (m *FoundationModel) SetEval(on bool) { m.eval = on }

// Infer is the no-grad fast path of Forward: the same computation, bit for
// bit, with no activations cached for backward (the tokenizer's im2col
// matrices, the attention weights, and the layer-norm statistics are the
// dominant savings). For architectures whose layers all implement the fast
// path — every stage and block this repository builds except the Perceiver
// partial aggregator, which falls back to its cache-writing Forward — Infer
// does not disturb a pending Forward/Backward pair, so it can evaluate
// mid-training (pinned by TestInferLeavesTrainingStateUsable). Serving
// engines sidestep the question entirely: each worker owns its own
// eval-mode replica.
func (m *FoundationModel) Infer(x, mask *tensor.Tensor) *tensor.Tensor {
	b := x.Shape[0]
	t, e := m.Arch.Tokens(), m.Arch.Embed
	// Every ChannelStage is an nn.Layer; nn.Infer takes the stage's no-grad
	// fast path when it has one.
	feat := nn.Infer(m.Stage, x)
	if mask != nil {
		if len(mask.Shape) != 2 || mask.Shape[0] != b || mask.Shape[1] != t {
			panic(fmt.Sprintf("model: mask want [%d,%d], got %v", b, t, mask.Shape))
		}
		m.imasked = tensor.EnsureShape(m.imasked, feat.Shape...)
		copy(m.imasked.Data, feat.Data)
		feat = m.imasked
		for bi := 0; bi < b; bi++ {
			for ti := 0; ti < t; ti++ {
				if mask.At(bi, ti) != 0 {
					copy(feat.Data[(bi*t+ti)*e:(bi*t+ti+1)*e], m.MaskTok.W.Data)
				}
			}
		}
	}
	feat = m.Pos.Infer(feat)
	if m.Meta != nil {
		feat = m.Meta.Infer(feat)
	}
	for _, blk := range m.Blocks {
		feat = nn.Infer(blk, feat)
	}
	feat = m.Norm.Infer(feat)
	if m.Meta != nil {
		feat = tensor.SliceAxis(feat, 1, m.Arch.MetaTokens, m.Arch.MetaTokens+t)
	}
	return m.Head.Infer(feat)
}

// Forward runs the model on this rank's image shard x [B, Cl, H, W]. If
// mask [B, T] is non-nil, spatial tokens with mask value 1 are replaced by
// the learned mask token before the ViT (the MAE objective of Fig. 10);
// pass nil for the forecast objective. Returns predictions [B, T, C*P*P].
// In eval mode (SetEval) it delegates to Infer.
func (m *FoundationModel) Forward(x, mask *tensor.Tensor) *tensor.Tensor {
	if m.eval {
		return m.Infer(x, mask)
	}
	m.b = x.Shape[0]
	t, e := m.Arch.Tokens(), m.Arch.Embed
	feat := m.Stage.Forward(x)
	m.mask = mask
	if mask != nil {
		if len(mask.Shape) != 2 || mask.Shape[0] != m.b || mask.Shape[1] != t {
			panic(fmt.Sprintf("model: mask want [%d,%d], got %v", m.b, t, mask.Shape))
		}
		m.masked = tensor.EnsureShape(m.masked, feat.Shape...)
		copy(m.masked.Data, feat.Data)
		feat = m.masked
		for bi := 0; bi < m.b; bi++ {
			for ti := 0; ti < t; ti++ {
				if mask.At(bi, ti) != 0 {
					copy(feat.Data[(bi*t+ti)*e:(bi*t+ti+1)*e], m.MaskTok.W.Data)
				}
			}
		}
	}
	feat = m.Pos.Forward(feat)
	if m.Meta != nil {
		feat = m.Meta.Forward(feat)
	}
	for _, blk := range m.Blocks {
		feat = blk.Forward(feat)
	}
	feat = m.Norm.Forward(feat)
	if m.Meta != nil {
		feat = tensor.SliceAxis(feat, 1, m.Arch.MetaTokens, m.Arch.MetaTokens+t)
	}
	return m.Head.Forward(feat)
}

// Backward consumes the prediction gradient [B, T, C*P*P] and returns the
// gradient of this rank's image shard. It panics in eval mode: an
// inference-mode model has no cached activations to differentiate.
func (m *FoundationModel) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.eval {
		panic("model: Backward on a model in eval mode (SetEval(false) to train)")
	}
	t, e := m.Arch.Tokens(), m.Arch.Embed
	d := m.Head.Backward(grad) // [B, T, E]
	if m.Meta != nil {
		// Scatter back into the full sequence; meta rows receive no head
		// gradient.
		m.dFull = tensor.EnsureShape(m.dFull, m.b, m.Arch.MetaTokens+t, e)
		m.dFull.Zero()
		for bi := 0; bi < m.b; bi++ {
			src := d.Data[bi*t*e : (bi+1)*t*e]
			dst := m.dFull.Data[(bi*(m.Arch.MetaTokens+t)+m.Arch.MetaTokens)*e:]
			copy(dst[:t*e], src)
		}
		d = m.dFull
	}
	d = m.Norm.Backward(d)
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		d = m.Blocks[i].Backward(d)
	}
	if m.Meta != nil {
		d = m.Meta.Backward(d)
	}
	d = m.Pos.Backward(d)
	if m.mask != nil {
		// Masked positions fed the mask token, not the stage: route their
		// gradient to the mask token and zero it toward the stage.
		m.dMasked = tensor.EnsureShape(m.dMasked, d.Shape...)
		copy(m.dMasked.Data, d.Data)
		d = m.dMasked
		for bi := 0; bi < m.b; bi++ {
			for ti := 0; ti < t; ti++ {
				if m.mask.At(bi, ti) != 0 {
					row := d.Data[(bi*t+ti)*e : (bi*t+ti+1)*e]
					for j, v := range row {
						m.MaskTok.Grad.Data[j] += v
						row[j] = 0
					}
				}
			}
		}
	}
	return m.Stage.Backward(d)
}

// Params returns all model parameters (stage + ViT + head).
func (m *FoundationModel) Params() []*nn.Param {
	ps := append([]*nn.Param(nil), m.Stage.Params()...)
	ps = append(ps, m.MaskTok)
	ps = append(ps, m.Pos.Params()...)
	if m.Meta != nil {
		ps = append(ps, m.Meta.Params()...)
	}
	for _, blk := range m.Blocks {
		ps = append(ps, blk.Params()...)
	}
	ps = append(ps, m.Norm.Params()...)
	ps = append(ps, m.Head.Params()...)
	return ps
}

// PartitionParams splits the model's parameters into rank-local shards and
// group-replicated parameters. Distributed global-gradient-norm computations
// (clipping) sum local shards across the group and count replicated
// parameters once, reproducing the serial model's norm exactly. For serial
// models every parameter is replicated (counted once).
func (m *FoundationModel) PartitionParams() (local, replicated []*nn.Param) {
	if stage, ok := m.Stage.(*DCHAGStage); ok {
		local = append(local, stage.D.LocalParams()...)
		replicated = append(replicated, stage.D.ReplicatedParams()...)
	} else {
		replicated = append(replicated, m.Stage.Params()...)
	}
	replicated = append(replicated, m.MaskTok)
	replicated = append(replicated, m.Pos.Params()...)
	if m.Meta != nil {
		replicated = append(replicated, m.Meta.Params()...)
	}
	for _, blk := range m.Blocks {
		if pb, ok := blk.(*parallel.ParallelTransformerBlock); ok {
			l, r := pb.Partition()
			local = append(local, l...)
			replicated = append(replicated, r...)
		} else {
			replicated = append(replicated, blk.Params()...)
		}
	}
	replicated = append(replicated, m.Norm.Params()...)
	replicated = append(replicated, m.Head.Params()...)
	return local, replicated
}

// PredictImage runs a forecast forward pass and unpatchifies the prediction
// into image space [B, C, H, W]. It uses the no-grad fast path — prediction
// never feeds a Backward.
func (m *FoundationModel) PredictImage(x *tensor.Tensor) *tensor.Tensor {
	pred := m.Infer(x, nil)
	return Unpatchify(pred, m.Arch.Channels, m.Arch.ImgH, m.Arch.ImgW, m.Arch.Patch)
}
