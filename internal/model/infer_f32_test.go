package model

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
)

// TestInferF32Tolerance pins the model-level float32 inference contract
// (DESIGN.md "Compute substrate"): under SetInferDType(F32) the matrix
// products run in float32, so Infer's output differs from the float64
// Forward, but only within a tolerance consistent with float32 rounding —
// and nowhere near the scale of the predictions themselves.
func TestInferF32Tolerance(t *testing.T) {
	serial := smallArch()
	cross := smallArch()
	cross.Config.Kind = core.KindCross
	swin := smallArch()
	swin.MetaTokens = 0
	swin.SwinWindow = 2
	for name, a := range map[string]Arch{"serial": serial, "cross": cross, "swin": swin} {
		t.Run(name, func(t *testing.T) {
			rng := tensor.NewRNG(61)
			x := tensor.Randn(rng, 2, a.Channels, a.ImgH, a.ImgW)

			m := NewSerial(a)
			want := m.Infer(x, nil).Clone()

			m.SetInferDType(tensor.F32)
			got := m.Infer(x, nil)
			if !tensor.SameShape(want, got) {
				t.Fatalf("shape mismatch: %v vs %v", want.Shape, got.Shape)
			}
			scale := math.Max(want.Max(), -want.Min())
			tol := 1e-4 * math.Max(scale, 1)
			if d := tensor.MaxAbsDiff(want, got); d > tol {
				t.Fatalf("f32 Infer differs from f64 by %g (tol %g, output scale %g)", d, tol, scale)
			} else if d == 0 {
				t.Fatal("f32 Infer is bitwise identical to f64 — the f32 kernels are not engaged")
			}

			// Switching back to F64 restores bitwise equality with Forward.
			m.SetInferDType(tensor.F64)
			back := m.Infer(x, nil)
			if d := tensor.MaxAbsDiff(want, back); d != 0 {
				t.Fatalf("returning to F64 left a residual difference of %g", d)
			}
		})
	}
}

// TestInferF32RepackAfterMutation pins the prepacked-panel staleness
// contract: SetInferDType(F32) snapshots the weights, so a weight mutation
// must be followed by another SetInferDType(F32) before the packed panels
// reflect it.
func TestInferF32RepackAfterMutation(t *testing.T) {
	a := smallArch()
	rng := tensor.NewRNG(71)
	x := tensor.Randn(rng, 1, a.Channels, a.ImgH, a.ImgW)

	m := NewSerial(a)
	m.SetInferDType(tensor.F32)
	before := m.Infer(x, nil).Clone()

	// Mutate every weight; the stale packed panels keep answering with the
	// old parameters.
	for _, p := range m.Params() {
		for i := range p.W.Data {
			p.W.Data[i] *= 1.5
		}
	}
	stale := m.Infer(x, nil)
	// The non-packed parts (norms, softmax, biases, embeddings) see the new
	// weights immediately, so outputs move; the point of the repack is
	// reproducibility, pinned below.
	_ = stale

	m.SetInferDType(tensor.F32)
	fresh := m.Infer(x, nil).Clone()
	m2 := NewSerial(a)
	for i, p := range m2.Params() {
		copy(p.W.Data, m.Params()[i].W.Data)
	}
	m2.SetInferDType(tensor.F32)
	want := m2.Infer(x, nil)
	if d := tensor.MaxAbsDiff(fresh, want); d != 0 {
		t.Fatalf("repacked model differs from freshly packed equivalent by %g", d)
	}
	if d := tensor.MaxAbsDiff(before, fresh); d == 0 {
		t.Fatal("weight mutation plus repack did not change the output")
	}
}
