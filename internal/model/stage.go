// Package model assembles the paper's foundation-model architectures from
// the repository's substrates: the generic multi-channel ViT of Fig. 1
// (per-channel tokenization -> channel aggregation -> transformer blocks ->
// task head), the masked-autoencoder variant of Fig. 10 used for
// hyperspectral plant images, and the ClimaX-like image-to-image forecaster
// used for weather (Sec. 5.2).
//
// Every model is built around a ChannelStage — the part of the network
// D-CHAG distributes. Swapping the serial stage for the D-CHAG stage changes
// nothing else in the model, which is the paper's compatibility claim
// ("compatible with any model-parallel strategy and any type of vision
// transformer architecture").
package model

import (
	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// ChannelStage maps a rank's image shard [B, Cl, H, W] to the aggregated
// spatial tokens [B, T, E] and back. Serial models use SerialStage over the
// full channel range; distributed models use DCHAGStage.
type ChannelStage interface {
	// Forward consumes this rank's channel shard and returns [B, T, E].
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward maps d[B, T, E] to the image-shard gradient.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the stage's parameters.
	Params() []*nn.Param
	// LocalChannels returns the width of the stage's channel shard.
	LocalChannels() int
}

// SerialStage is the single-process channel stage of the baseline
// architecture: full tokenizer, channel-ID embedding, and a (possibly
// hierarchical) channel-aggregation module. The default Tree=0/KindCross
// configuration is exactly the paper's Fig. 1 module: one cross-attention
// layer over all channels.
type SerialStage struct {
	Cfg   core.Config
	Tok   *nn.PatchEmbed
	ChEmb *nn.ChannelEmbed
	Agg   *core.HierarchicalAggregator
}

// NewSerialStage builds the serial channel stage from cfg (Tree and Kind
// select the aggregation layout as in core.BuildTreePlan).
func NewSerialStage(cfg core.Config) *SerialStage {
	return &SerialStage{
		Cfg:   cfg,
		Tok:   nn.NewPatchEmbed("stage.tok", cfg.Channels, cfg.ImgH, cfg.ImgW, cfg.Patch, cfg.Embed, nn.SubSeed(cfg.Seed, 1)),
		ChEmb: nn.NewChannelEmbed("stage.chemb", cfg.Channels, cfg.Embed, nn.SubSeed(cfg.Seed, 2)),
		Agg: core.NewHierarchicalAggregator("stage.agg",
			core.BuildTreePlan(cfg.Channels, cfg.Tree), cfg.Kind, cfg.Embed, cfg.Heads, nn.SubSeed(cfg.Seed, 3)),
	}
}

// Forward maps [B, C, H, W] to [B, T, E].
func (s *SerialStage) Forward(x *tensor.Tensor) *tensor.Tensor {
	return s.Agg.Forward(s.ChEmb.Forward(s.Tok.Forward(x)))
}

// Infer maps [B, C, H, W] to [B, T, E] without caching activations for
// backward.
func (s *SerialStage) Infer(x *tensor.Tensor) *tensor.Tensor {
	return s.Agg.Infer(s.ChEmb.Infer(s.Tok.Infer(x)))
}

// Backward maps d[B, T, E] to the image gradient [B, C, H, W].
func (s *SerialStage) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return s.Tok.Backward(s.ChEmb.Backward(s.Agg.Backward(grad)))
}

// SetInferDType selects the arithmetic of the stage's no-grad Infer path.
func (s *SerialStage) SetInferDType(dt tensor.DType) {
	s.Tok.SetInferDType(dt)
	s.Agg.SetInferDType(dt)
}

// Params returns the stage parameters.
func (s *SerialStage) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, s.Tok.Params()...)
	ps = append(ps, s.ChEmb.Params()...)
	ps = append(ps, s.Agg.Params()...)
	return ps
}

// LocalChannels returns the full channel count (serial owns everything).
func (s *SerialStage) LocalChannels() int { return s.Cfg.Channels }

// ReferenceStage wraps core.Reference: the serial stage that is
// mathematically identical to the D-CHAG stage distributed over P ranks.
// A model built on ReferenceStage(P) and trained on full images follows the
// exact same trajectory as the distributed model trained on channel shards,
// which the training tests assert.
type ReferenceStage struct {
	R *core.Reference
}

// NewReferenceStage builds the serial equivalent of a P-rank D-CHAG stage.
func NewReferenceStage(cfg core.Config, p int) *ReferenceStage {
	return &ReferenceStage{R: core.NewReference(cfg, p)}
}

// Forward maps the full image [B, C, H, W] to [B, T, E].
func (s *ReferenceStage) Forward(x *tensor.Tensor) *tensor.Tensor { return s.R.Forward(x) }

// Infer is the no-grad fast path of Forward.
func (s *ReferenceStage) Infer(x *tensor.Tensor) *tensor.Tensor { return s.R.Infer(x) }

// Backward maps d[B, T, E] to the full image gradient.
func (s *ReferenceStage) Backward(grad *tensor.Tensor) *tensor.Tensor { return s.R.Backward(grad) }

// SetInferDType selects the arithmetic of the stage's no-grad Infer path.
func (s *ReferenceStage) SetInferDType(dt tensor.DType) { s.R.SetInferDType(dt) }

// Params returns the stage parameters.
func (s *ReferenceStage) Params() []*nn.Param { return s.R.Params() }

// LocalChannels returns the full channel count.
func (s *ReferenceStage) LocalChannels() int { return s.R.Cfg.Channels }

// NewSerialDCHAGEquivalent builds a serial model whose channel stage is the
// P-group D-CHAG reference; used as the correctness oracle for distributed
// training runs.
func NewSerialDCHAGEquivalent(a Arch, p int) *FoundationModel {
	return build(a, NewReferenceStage(a.Config, p), nil, false)
}

// DCHAGStage adapts core.DCHAG to the ChannelStage interface.
type DCHAGStage struct {
	D *core.DCHAG
}

// NewDCHAGStage builds rank c.Rank()'s D-CHAG channel stage with the given
// logical partition count; 0 defaults to one partition per rank.
func NewDCHAGStage(cfg core.Config, c *comm.Communicator, partitions int) *DCHAGStage {
	if partitions == 0 {
		partitions = c.Size()
	}
	return &DCHAGStage{D: core.NewDCHAGPartitioned(cfg, c, partitions)}
}

// Forward maps the rank's shard [B, Cl, H, W] to [B, T, E].
func (s *DCHAGStage) Forward(x *tensor.Tensor) *tensor.Tensor { return s.D.Forward(x) }

// Infer is the no-grad fast path of Forward; the AllGather still runs.
func (s *DCHAGStage) Infer(x *tensor.Tensor) *tensor.Tensor { return s.D.Infer(x) }

// Backward maps d[B, T, E] to the shard gradient [B, Cl, H, W].
func (s *DCHAGStage) Backward(grad *tensor.Tensor) *tensor.Tensor { return s.D.Backward(grad) }

// SetInferDType selects the arithmetic of the stage's no-grad Infer path.
func (s *DCHAGStage) SetInferDType(dt tensor.DType) { s.D.SetInferDType(dt) }

// Params returns the rank's stage parameters.
func (s *DCHAGStage) Params() []*nn.Param { return s.D.Params() }

// LocalChannels returns the rank's shard width.
func (s *DCHAGStage) LocalChannels() int { return s.D.LocalChannels() }

// ChannelBounds returns the global channel range of the rank's shard.
func (s *DCHAGStage) ChannelBounds() (lo, hi int) { return s.D.ChLo, s.D.ChHi }
