package model

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func smallArch() Arch {
	return Arch{
		Config: core.Config{
			Channels: 6, ImgH: 4, ImgW: 4, Patch: 2,
			Embed: 8, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 7,
		},
		Depth:      2,
		MetaTokens: 1,
	}
}

func TestPatchifyUnpatchifyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		b := 1 + int(rng.Int31n(2))
		c := 1 + int(rng.Int31n(4))
		p := []int{1, 2}[rng.Intn(2)]
		ph := 1 + int(rng.Int31n(3))
		pw := 1 + int(rng.Int31n(3))
		x := tensor.Randn(rng, b, c, p*ph, p*pw)
		back := Unpatchify(Patchify(x, p), c, p*ph, p*pw, p)
		return tensor.MaxAbsDiff(back, x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPatchifyTokenLayout(t *testing.T) {
	// 1 channel, 2x4 image, patch 2: token 0 = left patch, token 1 = right.
	x := tensor.FromSlice([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 1, 1, 2, 4)
	p := Patchify(x, 2)
	if p.Shape[1] != 2 || p.Shape[2] != 4 {
		t.Fatalf("shape = %v", p.Shape)
	}
	want0 := []float64{0, 1, 4, 5}
	want1 := []float64{2, 3, 6, 7}
	for i := range want0 {
		if p.At(0, 0, i) != want0[i] || p.At(0, 1, i) != want1[i] {
			t.Fatalf("token layout wrong: %v", p.Data)
		}
	}
}

func TestSerialForwardShapesAndDeterminism(t *testing.T) {
	a := smallArch()
	m1 := NewSerial(a)
	m2 := NewSerial(a)
	rng := tensor.NewRNG(1)
	x := tensor.Randn(rng, 2, a.Channels, a.ImgH, a.ImgW)
	y1 := m1.Forward(x, nil)
	y2 := m2.Forward(x, nil)
	if y1.Shape[0] != 2 || y1.Shape[1] != a.Tokens() || y1.Shape[2] != a.HeadDim() {
		t.Fatalf("pred shape = %v", y1.Shape)
	}
	if tensor.MaxAbsDiff(y1, y2) != 0 {
		t.Fatal("same-seed models must agree")
	}
}

func TestFoundationModelGradients(t *testing.T) {
	a := Arch{
		Config: core.Config{
			Channels: 2, ImgH: 2, ImgW: 2, Patch: 2,
			Embed: 4, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 3,
		},
		Depth:      1,
		MetaTokens: 1,
	}
	m := NewSerial(a)
	rng := tensor.NewRNG(2)
	x := tensor.Randn(rng, 1, a.Channels, a.ImgH, a.ImgW)
	r := tensor.Randn(rng, 1, a.Tokens(), a.HeadDim())

	loss := func() float64 {
		pred := m.Forward(x, nil)
		s := 0.0
		for i := range pred.Data {
			s += pred.Data[i] * r.Data[i]
		}
		return s
	}
	loss()
	nn.ZeroGrads(m.Params())
	dx := m.Backward(r)
	const eps = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss()
		x.Data[i] = orig - eps
		lm := loss()
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-dx.Data[i]) > 1e-4 {
			t.Fatalf("input grad mismatch at %d: numeric %v analytic %v", i, numeric, dx.Data[i])
		}
	}
}

func TestMaskRoutesGradientsToMaskToken(t *testing.T) {
	a := smallArch()
	m := NewSerial(a)
	rng := tensor.NewRNG(3)
	x := tensor.Randn(rng, 1, a.Channels, a.ImgH, a.ImgW)
	mask := tensor.New(1, a.Tokens())
	mask.Set(1, 0, 0) // mask first token
	pred := m.Forward(x, mask)
	nn.ZeroGrads(m.Params())
	up := tensor.Ones(pred.Shape...)
	dimg := m.Backward(up)
	if m.MaskTok.Grad.Norm2() == 0 {
		t.Fatal("mask token must receive gradient when masking is active")
	}
	if dimg.Norm2() == 0 {
		t.Fatal("unmasked tokens must still propagate to the image")
	}
	// Without mask, the mask token gets no gradient.
	m2 := NewSerial(a)
	p2 := m2.Forward(x, nil)
	nn.ZeroGrads(m2.Params())
	m2.Backward(tensor.Ones(p2.Shape...))
	if m2.MaskTok.Grad.Norm2() != 0 {
		t.Fatal("mask token must be inert without masking")
	}
}

func TestDistributedMatchesSerialEquivalent(t *testing.T) {
	a := smallArch()
	const p = 2
	rng := tensor.NewRNG(4)
	x := tensor.Randn(rng, 2, a.Channels, a.ImgH, a.ImgW)
	up := tensor.Randn(rng, 2, a.Tokens(), a.HeadDim())

	ref := NewSerialDCHAGEquivalent(a, p)
	wantPred := ref.Forward(x, nil)
	nn.ZeroGrads(ref.Params())
	wantDimg := ref.Backward(up)

	_, err := comm.Run(p, func(c *comm.Communicator) error {
		m := NewDistributed(a, c, false)
		stage := m.Stage.(*DCHAGStage)
		lo, hi := stage.ChannelBounds()
		pred := m.Forward(tensor.SliceAxis(x, 1, lo, hi), nil)
		if diff := tensor.MaxAbsDiff(pred, wantPred); diff > 1e-9 {
			return fmt.Errorf("rank %d pred differs by %g", c.Rank(), diff)
		}
		nn.ZeroGrads(m.Params())
		dimg := m.Backward(up)
		want := tensor.SliceAxis(wantDimg, 1, lo, hi)
		if diff := tensor.MaxAbsDiff(dimg, want); diff > 1e-9 {
			return fmt.Errorf("rank %d dimg differs by %g", c.Rank(), diff)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistributedTPViTMatchesReplicatedViT(t *testing.T) {
	a := smallArch()
	const p = 2
	rng := tensor.NewRNG(5)
	x := tensor.Randn(rng, 1, a.Channels, a.ImgH, a.ImgW)

	preds := make([]*tensor.Tensor, 2) // [replicated, tp]
	for i, tp := range []bool{false, true} {
		var captured *tensor.Tensor
		_, err := comm.Run(p, func(c *comm.Communicator) error {
			m := NewDistributed(a, c, tp)
			stage := m.Stage.(*DCHAGStage)
			lo, hi := stage.ChannelBounds()
			pred := m.Forward(tensor.SliceAxis(x, 1, lo, hi), nil)
			if c.Rank() == 0 {
				captured = pred
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = captured
	}
	if diff := tensor.MaxAbsDiff(preds[0], preds[1]); diff > 1e-9 {
		t.Fatalf("TP ViT and replicated ViT disagree by %g", diff)
	}
}

func TestSerialStageBaselineUsesSingleCrossAttention(t *testing.T) {
	a := smallArch()
	a.Kind = core.KindCross
	a.Tree = 0
	s := NewSerialStage(a.Config)
	if s.Agg.Plan.NumLayers() != 1 {
		t.Fatalf("baseline stage should be one aggregation layer, plan %v", s.Agg.Plan)
	}
}

func TestParamCountPositiveAndGrowsWithDepth(t *testing.T) {
	a := smallArch()
	n1 := a.ParamCount()
	a2 := a
	a2.Depth = 4
	n2 := a2.ParamCount()
	if n1 <= 0 || n2 <= n1 {
		t.Fatalf("param counts: depth2=%d depth4=%d", n1, n2)
	}
}

func TestPredictImageShape(t *testing.T) {
	a := smallArch()
	m := NewSerial(a)
	x := tensor.Randn(tensor.NewRNG(6), 2, a.Channels, a.ImgH, a.ImgW)
	img := m.PredictImage(x)
	if img.Shape[0] != 2 || img.Shape[1] != a.Channels || img.Shape[2] != a.ImgH || img.Shape[3] != a.ImgW {
		t.Fatalf("PredictImage shape = %v", img.Shape)
	}
}

func TestPartitionParamsSerialAllReplicated(t *testing.T) {
	m := NewSerial(smallArch())
	local, repl := m.PartitionParams()
	if len(local) != 0 {
		t.Fatalf("serial model must have no local shards, got %d", len(local))
	}
	if len(repl) != len(m.Params()) {
		t.Fatalf("replicated count %d != total %d", len(repl), len(m.Params()))
	}
}

func TestPartitionParamsDistributedCoversEverything(t *testing.T) {
	a := smallArch()
	for _, tpViT := range []bool{false, true} {
		_, err := comm.Run(2, func(c *comm.Communicator) error {
			m := NewDistributed(a, c, tpViT)
			local, repl := m.PartitionParams()
			if len(local) == 0 {
				return fmt.Errorf("distributed model must have local shards")
			}
			if len(local)+len(repl) != len(m.Params()) {
				return fmt.Errorf("partition %d+%d != total %d (tpViT=%v)",
					len(local), len(repl), len(m.Params()), tpViT)
			}
			seen := map[*nn.Param]bool{}
			for _, p := range append(append([]*nn.Param{}, local...), repl...) {
				if seen[p] {
					return fmt.Errorf("param %q appears twice in partition", p.Name)
				}
				seen[p] = true
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestStageLocalChannels(t *testing.T) {
	a := smallArch()
	if NewSerialStage(a.Config).LocalChannels() != a.Channels {
		t.Fatal("serial stage owns all channels")
	}
	if NewReferenceStage(a.Config, 2).LocalChannels() != a.Channels {
		t.Fatal("reference stage owns all channels")
	}
	_, err := comm.Run(2, func(c *comm.Communicator) error {
		s := NewDCHAGStage(a.Config, c, 0)
		if s.LocalChannels() != a.Channels/2 {
			return fmt.Errorf("dchag stage owns %d channels, want %d", s.LocalChannels(), a.Channels/2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSwinModelDistributedMatchesSerialEquivalent(t *testing.T) {
	// Paper Sec. 3.5: D-CHAG is agnostic to the ViT architecture. Swap the
	// standard blocks for Swin windowed-attention blocks and the
	// distributed-equals-serial property must be untouched.
	a := smallArch()
	a.MetaTokens = 0
	a.ImgH, a.ImgW = 8, 8 // 4x4 token grid
	a.SwinWindow = 2
	const p = 2
	rng := tensor.NewRNG(44)
	x := tensor.Randn(rng, 2, a.Channels, a.ImgH, a.ImgW)
	up := tensor.Randn(rng, 2, a.Tokens(), a.HeadDim())

	ref := NewSerialDCHAGEquivalent(a, p)
	if _, ok := ref.Blocks[0].(*nn.SwinBlock); !ok {
		t.Fatal("SwinWindow must select Swin blocks")
	}
	wantPred := ref.Forward(x, nil)
	nn.ZeroGrads(ref.Params())
	wantDimg := ref.Backward(up)

	_, err := comm.Run(p, func(c *comm.Communicator) error {
		m := NewDistributed(a, c, false)
		stage := m.Stage.(*DCHAGStage)
		lo, hi := stage.ChannelBounds()
		pred := m.Forward(tensor.SliceAxis(x, 1, lo, hi), nil)
		if diff := tensor.MaxAbsDiff(pred, wantPred); diff > 1e-9 {
			return fmt.Errorf("rank %d swin pred differs by %g", c.Rank(), diff)
		}
		nn.ZeroGrads(m.Params())
		dimg := m.Backward(up)
		if diff := tensor.MaxAbsDiff(dimg, tensor.SliceAxis(wantDimg, 1, lo, hi)); diff > 1e-9 {
			return fmt.Errorf("rank %d swin dimg differs by %g", c.Rank(), diff)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSwinRequiresNoMetaTokens(t *testing.T) {
	a := smallArch()
	a.ImgH, a.ImgW = 8, 8
	a.SwinWindow = 2 // MetaTokens is 1 in smallArch
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Swin with meta tokens")
		}
	}()
	NewSerial(a)
}
