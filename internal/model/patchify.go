package model

import (
	"fmt"

	"repro/internal/tensor"
)

// Patchify converts an image batch [B, C, H, W] into per-token regression
// targets [B, T, C*P*P]: token t holds every channel's PxP patch pixels, the
// quantity the MAE decoder and the forecast head regress.
func Patchify(x *tensor.Tensor, patch int) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("model: Patchify wants [B,C,H,W], got %v", x.Shape))
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if h%patch != 0 || w%patch != 0 {
		panic(fmt.Sprintf("model: image %dx%d not divisible by patch %d", h, w, patch))
	}
	ph, pw := h/patch, w/patch
	t := ph * pw
	d := c * patch * patch
	out := tensor.New(b, t, d)
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			for py := 0; py < ph; py++ {
				for px := 0; px < pw; px++ {
					ti := py*pw + px
					for dy := 0; dy < patch; dy++ {
						srcOff := ((bi*c+ci)*h+(py*patch+dy))*w + px*patch
						dstOff := (bi*t+ti)*d + ci*patch*patch + dy*patch
						copy(out.Data[dstOff:dstOff+patch], x.Data[srcOff:srcOff+patch])
					}
				}
			}
		}
	}
	return out
}

// Unpatchify inverts Patchify: tokens [B, T, C*P*P] back to images
// [B, C, H, W].
func Unpatchify(tok *tensor.Tensor, channels, imgH, imgW, patch int) *tensor.Tensor {
	if len(tok.Shape) != 3 {
		panic(fmt.Sprintf("model: Unpatchify wants [B,T,D], got %v", tok.Shape))
	}
	b := tok.Shape[0]
	ph, pw := imgH/patch, imgW/patch
	t := ph * pw
	d := channels * patch * patch
	if tok.Shape[1] != t || tok.Shape[2] != d {
		panic(fmt.Sprintf("model: Unpatchify shape %v does not match C=%d %dx%d P=%d", tok.Shape, channels, imgH, imgW, patch))
	}
	out := tensor.New(b, channels, imgH, imgW)
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < channels; ci++ {
			for py := 0; py < ph; py++ {
				for px := 0; px < pw; px++ {
					ti := py*pw + px
					for dy := 0; dy < patch; dy++ {
						srcOff := (bi*t+ti)*d + ci*patch*patch + dy*patch
						dstOff := ((bi*channels+ci)*imgH+(py*patch+dy))*imgW + px*patch
						copy(out.Data[dstOff:dstOff+patch], tok.Data[srcOff:srcOff+patch])
					}
				}
			}
		}
	}
	return out
}
