package model

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/tensor"
)

// TestInferBitwiseIdenticalToForward pins the no-grad switch's core
// contract: Infer computes exactly Forward's output on every stage variant,
// with and without masking.
func TestInferBitwiseIdenticalToForward(t *testing.T) {
	a := smallArch()
	rng := tensor.NewRNG(11)
	x := tensor.Randn(rng, 3, a.Channels, a.ImgH, a.ImgW)
	mask := data.RandomMask(tensor.NewRNG(12), 3, a.Tokens(), 0.5)

	cases := []struct {
		name  string
		build func() *FoundationModel
	}{
		{"serial", func() *FoundationModel { return NewSerial(a) }},
		{"reference-p3", func() *FoundationModel { return NewSerialDCHAGEquivalent(a, 3) }},
		{"swin", func() *FoundationModel {
			sa := a
			sa.MetaTokens = 0
			sa.SwinWindow = 2
			return NewSerial(sa)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			masks := []*tensor.Tensor{nil, mask}
			if tc.name == "swin" {
				masks = masks[:1]
			}
			for _, mk := range masks {
				// Fresh replicas so one path's caches cannot leak into the
				// other's computation.
				want := tc.build().Forward(x, mk)
				got := tc.build().Infer(x, mk)
				if !tensor.SameShape(want, got) {
					t.Fatalf("shape mismatch: %v vs %v", want.Shape, got.Shape)
				}
				if d := tensor.MaxAbsDiff(want, got); d != 0 {
					t.Fatalf("Infer differs from Forward by %g (mask=%v)", d, mk != nil)
				}
			}
		})
	}
}

// TestDistributedInferMatchesForward runs the distributed stage under both
// paths: every rank's Infer output must equal its Forward output bit for
// bit, and both must equal the serial reference.
func TestDistributedInferMatchesForward(t *testing.T) {
	a := smallArch()
	a.Partitions = 3
	rng := tensor.NewRNG(21)
	x := tensor.Randn(rng, 2, a.Channels, a.ImgH, a.ImgW)
	ref := NewSerialDCHAGEquivalent(a, a.Partitions).Infer(x, nil)

	if _, err := comm.Run(3, func(c *comm.Communicator) error {
		fwd := NewDistributed(a, c, false)
		stage := fwd.Stage.(*DCHAGStage)
		lo, hi := stage.ChannelBounds()
		xs := tensor.SliceAxis(x, 1, lo, hi)
		want := fwd.Forward(xs, nil)
		got := NewDistributed(a, c, false).Infer(xs, nil)
		if d := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Errorf("rank %d: Infer differs from Forward by %g", c.Rank(), d)
		}
		if d := tensor.MaxAbsDiff(ref, got); d != 0 {
			t.Errorf("rank %d: distributed Infer differs from serial reference by %g", c.Rank(), d)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestEvalModeSwitch pins SetEval's semantics: Forward in eval mode equals
// Infer, and Backward refuses to run.
func TestEvalModeSwitch(t *testing.T) {
	a := smallArch()
	rng := tensor.NewRNG(31)
	x := tensor.Randn(rng, 2, a.Channels, a.ImgH, a.ImgW)

	m := NewSerial(a)
	want := m.Infer(x, nil)
	m.SetEval(true)
	got := m.Forward(x, nil)
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("eval-mode Forward differs from Infer by %g", d)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Backward in eval mode must panic")
		}
	}()
	m.Backward(tensor.New(2, a.Tokens(), a.HeadDim()))
}

// TestInferLeavesTrainingStateUsable proves Infer on a training model does
// not disturb a pending Forward/Backward pair: interleaving an Infer — at a
// *different* batch size, which would corrupt any cached batch extents —
// leaves the gradients identical to an undisturbed run, input gradient and
// every parameter gradient alike.
func TestInferLeavesTrainingStateUsable(t *testing.T) {
	serial := smallArch()
	swin := smallArch()
	swin.MetaTokens = 0
	swin.SwinWindow = 2
	for name, a := range map[string]Arch{"serial": serial, "swin": swin} {
		t.Run(name, func(t *testing.T) {
			rng := tensor.NewRNG(41)
			x := tensor.Randn(rng, 2, a.Channels, a.ImgH, a.ImgW)
			other := tensor.Randn(rng, 5, a.Channels, a.ImgH, a.ImgW)
			up := tensor.Randn(rng, 2, a.Tokens(), a.HeadDim())

			run := func(interleave bool) (*tensor.Tensor, *FoundationModel) {
				m := NewSerial(a)
				m.Forward(x, nil)
				if interleave {
					m.Infer(other, nil) // batch 5 against the pending batch-2 Forward
				}
				return m.Backward(up), m
			}
			gradA, mA := run(false)
			gradB, mB := run(true)
			if d := tensor.MaxAbsDiff(gradA, gradB); d != 0 {
				t.Fatalf("Infer disturbed cached training state: input gradient moved by %g", d)
			}
			pa, pb := mA.Params(), mB.Params()
			for i := range pa {
				if d := tensor.MaxAbsDiff(pa[i].Grad, pb[i].Grad); d != 0 {
					t.Fatalf("Infer disturbed cached training state: %s gradient moved by %g", pa[i].Name, d)
				}
			}
		})
	}
}
