package core

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// EvenSplit partitions n items into k near-equal contiguous group sizes
// (the first n%k groups get one extra item). It panics unless 0 < k <= n.
func EvenSplit(n, k int) []int {
	if k <= 0 || k > n {
		panic(fmt.Sprintf("core: cannot split %d channels into %d groups", n, k))
	}
	sizes := make([]int, k)
	base, rem := n/k, n%k
	for i := range sizes {
		sizes[i] = base
		if i < rem {
			sizes[i]++
		}
	}
	return sizes
}

// ChannelRange returns the contiguous global channel range [lo, hi) owned by
// rank r of p when c channels are EvenSplit across ranks.
func ChannelRange(c, p, r int) (lo, hi int) {
	sizes := EvenSplit(c, p)
	for i := 0; i < r; i++ {
		lo += sizes[i]
	}
	return lo, lo + sizes[r]
}

// TreePlan is the per-level group layout of a hierarchical aggregation
// module: Plan[level] lists the input-group sizes at that level. The output
// of each level has one token per group; the last level has a single group,
// producing one token.
type TreePlan [][]int

// BuildTreePlan realizes the paper's TreeN naming (Fig. 9) for a module over
// `channels` inputs: Tree0 is a single aggregation layer over all channels;
// TreeN (N >= 2) splits the channels into N near-equal first-level groups
// and adds one second-level layer that reduces the N group tokens to one.
// N is clamped to the channel count.
func BuildTreePlan(channels, tree int) TreePlan {
	if channels < 1 {
		panic(fmt.Sprintf("core: BuildTreePlan with %d channels", channels))
	}
	if tree <= 1 || channels == 1 {
		return TreePlan{[]int{channels}}
	}
	if tree > channels {
		tree = channels
	}
	plan := TreePlan{EvenSplit(channels, tree)}
	if tree > 1 {
		plan = append(plan, []int{tree})
	}
	return plan
}

// Channels returns the input channel count of the plan.
func (p TreePlan) Channels() int {
	n := 0
	for _, g := range p[0] {
		n += g
	}
	return n
}

// MaxGroup returns the largest group size anywhere in the plan — the paper's
// "maximum number of input channels per layer", the quantity the hierarchy
// exists to shrink.
func (p TreePlan) MaxGroup() int {
	m := 0
	for _, level := range p {
		for _, g := range level {
			if g > m {
				m = g
			}
		}
	}
	return m
}

// NumLayers returns the total number of aggregation layers (group modules).
func (p TreePlan) NumLayers() int {
	n := 0
	for _, level := range p {
		n += len(level)
	}
	return n
}

// validate checks internal consistency: each level's group count must equal
// the next level's input count.
func (p TreePlan) validate() {
	for l := 0; l < len(p)-1; l++ {
		next := 0
		for _, g := range p[l+1] {
			next += g
		}
		if len(p[l]) != next {
			panic(fmt.Sprintf("core: TreePlan level %d emits %d tokens but level %d consumes %d", l, len(p[l]), l+1, next))
		}
	}
	if len(p[len(p)-1]) != 1 {
		panic("core: TreePlan must end in a single group")
	}
}

// HierarchicalAggregator is the (serial) hierarchical cross-channel
// aggregation module of paper Sec. 3.2: a tree of group aggregators that
// reduces [B, C, T, E] channel tokens to a single [B, T, E] representation.
// With KindCross layers it is the paper's Fig. 3 configuration; with
// KindLinear layers it is the lightweight variant.
//
// In D-CHAG each rank owns one of these over its channel shard (the
// "partial-channel aggregation module"); serially it also serves as the
// reference aggregation module of the baseline architecture (a Tree0
// KindCross instance is exactly one cross-attention layer over all
// channels).
type HierarchicalAggregator struct {
	Plan   TreePlan
	Levels [][]GroupAggregator

	b, t, e int
	ran     bool // Forward has run (Backward precondition)

	// Scratch, grown once and reused every step (see tensor.EnsureShape).
	// Forward and Infer own separate sets so eval passes never clobber the
	// group inputs an aggregator cached for a pending Backward.
	folded, ifolded   *tensor.Tensor     // FoldChannels output
	inputs, iinputs   [][]*tensor.Tensor // per-level per-group input slices
	levelOut, ilevOut []*tensor.Tensor   // per-level gathered group tokens
	dg                *tensor.Tensor     // backward per-group token gradient
	dCat              []*tensor.Tensor   // per-level concatenated input grads
	dx                *tensor.Tensor     // unfolded channel-token gradient
}

// ensureScratch sizes the per-level scratch slices (the tensors themselves
// are grown lazily by EnsureShape).
func (h *HierarchicalAggregator) ensureScratch() {
	if h.inputs != nil {
		return
	}
	h.inputs = make([][]*tensor.Tensor, len(h.Levels))
	h.iinputs = make([][]*tensor.Tensor, len(h.Levels))
	for l, level := range h.Levels {
		h.inputs[l] = make([]*tensor.Tensor, len(level))
		h.iinputs[l] = make([]*tensor.Tensor, len(level))
	}
	h.levelOut = make([]*tensor.Tensor, len(h.Levels))
	h.ilevOut = make([]*tensor.Tensor, len(h.Levels))
	h.dCat = make([]*tensor.Tensor, len(h.Levels))
}

// NewHierarchicalAggregator builds the module for the given plan. Layer
// (level, group) draws its parameters from SubSeed(seed, level*4096+group),
// so any regrouping of the same plan reproduces identical parameters.
func NewHierarchicalAggregator(name string, plan TreePlan, kind LayerKind, embed, heads int, seed int64) *HierarchicalAggregator {
	plan.validate()
	h := &HierarchicalAggregator{Plan: plan}
	for l, level := range plan {
		var aggs []GroupAggregator
		for gi, g := range level {
			layerName := fmt.Sprintf("%s.l%d.g%d", name, l, gi)
			aggs = append(aggs, newGroupAggregator(layerName, kind, g, embed, heads, nn.SubSeed(seed, l*4096+gi)))
		}
		h.Levels = append(h.Levels, aggs)
	}
	return h
}

// NewBaselineAggregator is the architecture's default channel-aggregation
// module: a single cross-attention layer over all channels (paper Fig. 1).
func NewBaselineAggregator(name string, channels, embed, heads int, seed int64) *HierarchicalAggregator {
	return NewHierarchicalAggregator(name, BuildTreePlan(channels, 0), KindCross, embed, heads, seed)
}

// Channels returns the module's input channel count.
func (h *HierarchicalAggregator) Channels() int { return h.Plan.Channels() }

// Forward reduces x [B, C, T, E] to [B, T, E].
func (h *HierarchicalAggregator) Forward(x *tensor.Tensor) *tensor.Tensor {
	c := h.Channels()
	if len(x.Shape) != 4 || x.Shape[1] != c {
		panic(fmt.Sprintf("core: HierarchicalAggregator.Forward want [B,%d,T,E], got %v", c, x.Shape))
	}
	h.b, h.t, h.e = x.Shape[0], x.Shape[2], x.Shape[3]
	h.ensureScratch()
	h.ran = true
	h.folded = tensor.EnsureShape(h.folded, h.b*h.t, c, h.e)
	cur := FoldChannelsInto(h.folded, x) // [N, C, E]
	return h.run(cur, h.inputs, h.levelOut, false).Reshape(h.b, h.t, h.e)
}

// run walks the tree over cur [N, C, E] using the given scratch set,
// returning the final [N, 1, E] token. With infer set, aggregators take
// their no-grad fast path.
//
// dchag:hotpath — the per-step aggregation tree; all group slices and level
// outputs live in pass-owned scratch.
func (h *HierarchicalAggregator) run(cur *tensor.Tensor, inputs [][]*tensor.Tensor, levelOut []*tensor.Tensor, infer bool) *tensor.Tensor {
	n, e := cur.Shape[0], cur.Shape[2]
	for l, level := range h.Levels {
		off := 0
		for gi, g := range h.Plan[l] {
			inputs[l][gi] = tensor.EnsureShape(inputs[l][gi], n, g, e)
			tensor.SliceAxisInto(inputs[l][gi], cur, 1, off, off+g)
			off += g
		}
		levelOut[l] = tensor.EnsureShape(levelOut[l], n, len(level), e)
		for gi, agg := range level {
			var y *tensor.Tensor // [N, E]
			if infer {
				y = nn.Infer(agg, inputs[l][gi])
			} else {
				y = agg.Forward(inputs[l][gi])
			}
			writeGroupToken(levelOut[l], y, gi)
		}
		cur = levelOut[l]
	}
	// cur is [N, 1, E].
	return cur
}

// Infer reduces x [B, C, T, E] to [B, T, E] without caching the per-level
// inputs for backward.
func (h *HierarchicalAggregator) Infer(x *tensor.Tensor) *tensor.Tensor {
	c := h.Channels()
	if len(x.Shape) != 4 || x.Shape[1] != c {
		panic(fmt.Sprintf("core: HierarchicalAggregator.Infer want [B,%d,T,E], got %v", c, x.Shape))
	}
	b, t, e := x.Shape[0], x.Shape[2], x.Shape[3]
	h.ensureScratch()
	h.ifolded = tensor.EnsureShape(h.ifolded, b*t, c, e)
	cur := FoldChannelsInto(h.ifolded, x) // [N, C, E]
	return h.run(cur, h.iinputs, h.ilevOut, true).Reshape(b, t, e)
}

// SetInferDType selects the arithmetic of every aggregator's no-grad Infer
// path.
func (h *HierarchicalAggregator) SetInferDType(dt tensor.DType) {
	for _, level := range h.Levels {
		for _, agg := range level {
			if d, ok := agg.(interface{ SetInferDType(tensor.DType) }); ok {
				d.SetInferDType(dt)
			}
		}
	}
}

// Backward maps d [B, T, E] back to the channel-token gradient [B, C, T, E].
//
// dchag:hotpath — the per-step aggregation-tree backward; the group token
// gradient and per-level concatenations live in layer-owned scratch.
func (h *HierarchicalAggregator) Backward(d *tensor.Tensor) *tensor.Tensor {
	if !h.ran {
		panic("core: HierarchicalAggregator.Backward before Forward")
	}
	n := h.b * h.t
	h.dg = tensor.EnsureShape(h.dg, n, h.e)
	cur := d.Reshape(n, 1, h.e)
	for l := len(h.Levels) - 1; l >= 0; l-- {
		level := h.Levels[l]
		width := 0
		for _, g := range h.Plan[l] {
			width += g
		}
		h.dCat[l] = tensor.EnsureShape(h.dCat[l], n, width, h.e)
		off := 0
		for gi, agg := range level {
			// Each aggregator consumes dg fully during Backward, so one
			// shared buffer serves every group in turn.
			readGroupToken(h.dg, cur, gi)
			part := agg.Backward(h.dg) // [N, g, E]
			tensor.SetSliceAxis(h.dCat[l], 1, off, part)
			off += part.Shape[1]
		}
		cur = h.dCat[l]
	}
	h.dx = tensor.EnsureShape(h.dx, h.b, h.Channels(), h.t, h.e)
	return UnfoldChannelsInto(h.dx, cur, h.b, h.t)
}

// writeGroupToken writes y [N, E] into column gi of out [N, G, E].
//
// dchag:hotpath — per-group token scatter.
func writeGroupToken(out, y *tensor.Tensor, gi int) {
	nG, e := out.Shape[1], out.Shape[2]
	for n := 0; n < y.Shape[0]; n++ {
		copy(out.Data[(n*nG+gi)*e:(n*nG+gi+1)*e], y.Data[n*e:(n+1)*e])
	}
}

// readGroupToken gathers column gi of x [N, G, E] into dst [N, E].
//
// dchag:hotpath — per-group token gather.
func readGroupToken(dst, x *tensor.Tensor, gi int) {
	nG, e := x.Shape[1], x.Shape[2]
	for n := 0; n < dst.Shape[0]; n++ {
		copy(dst.Data[n*e:(n+1)*e], x.Data[(n*nG+gi)*e:(n*nG+gi+1)*e])
	}
}

// Params returns all layers' parameters, level by level.
func (h *HierarchicalAggregator) Params() []*nn.Param {
	var ps []*nn.Param
	for _, level := range h.Levels {
		for _, agg := range level {
			ps = append(ps, agg.Params()...)
		}
	}
	return ps
}

// FoldChannels permutes channel tokens [B, C, T, E] into per-location
// channel sequences [B*T, C, E], the layout aggregators consume.
func FoldChannels(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("core: FoldChannels wants rank 4, got %v", x.Shape))
	}
	b, c, t, e := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	return FoldChannelsInto(tensor.New(b*t, c, e), x)
}

// FoldChannelsInto is FoldChannels writing into out, which must have shape
// [B*T, C, E].
//
// dchag:hotpath — per-step channel-token permutation.
func FoldChannelsInto(out, x *tensor.Tensor) *tensor.Tensor {
	b, c, t, e := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			for ti := 0; ti < t; ti++ {
				src := x.Data[((bi*c+ci)*t+ti)*e : ((bi*c+ci)*t+ti+1)*e]
				dst := out.Data[((bi*t+ti)*c+ci)*e : ((bi*t+ti)*c+ci+1)*e]
				copy(dst, src)
			}
		}
	}
	return out
}

// UnfoldChannels inverts FoldChannels: [B*T, C, E] back to [B, C, T, E].
func UnfoldChannels(x *tensor.Tensor, b, t int) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[0] != b*t {
		panic(fmt.Sprintf("core: UnfoldChannels wants [%d,C,E], got %v", b*t, x.Shape))
	}
	c, e := x.Shape[1], x.Shape[2]
	return UnfoldChannelsInto(tensor.New(b, c, t, e), x, b, t)
}

// UnfoldChannelsInto is UnfoldChannels writing into out, which must have
// shape [B, C, T, E].
//
// dchag:hotpath — per-step channel-token permutation.
func UnfoldChannelsInto(out, x *tensor.Tensor, b, t int) *tensor.Tensor {
	c, e := x.Shape[1], x.Shape[2]
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			for ti := 0; ti < t; ti++ {
				src := x.Data[((bi*t+ti)*c+ci)*e : ((bi*t+ti)*c+ci+1)*e]
				dst := out.Data[((bi*c+ci)*t+ti)*e : ((bi*c+ci)*t+ti+1)*e]
				copy(dst, src)
			}
		}
	}
	return out
}
