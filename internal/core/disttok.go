package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// DistTokenizer is distributed tokenization *alone* (paper Sec. 3.1, bottom
// of Fig. 2): each rank tokenizes its channel shard and the full channel
// token tensor [B, C, T, E] is AllGathered so a conventional (replicated)
// channel-aggregation module can run on it.
//
// This is the strawman D-CHAG improves on: the AllGather moves C/P tokens of
// every spatial location per rank — versus D-CHAG's single token per rank —
// and the quadratic-in-C aggregation memory is untouched (the paper's Fig. 8
// shows the net effect can be a regression). The traffic ledger makes the
// volume difference measurable in tests and benchmarks.
type DistTokenizer struct {
	Comm       *comm.Communicator
	Channels   int
	ChLo, ChHi int
	Tok        *nn.PatchEmbed

	dTok *tensor.Tensor // Backward channel-slice scratch
}

// SetInferDType selects the arithmetic of the tokenizer's no-grad Infer
// path.
func (d *DistTokenizer) SetInferDType(dt tensor.DType) { d.Tok.SetInferDType(dt) }

// NewDistTokenizer builds rank c.Rank()'s tokenizer shard with the same
// per-channel seeding as the serial tokenizer and the DCHAG module.
func NewDistTokenizer(cfg Config, c *comm.Communicator) *DistTokenizer {
	cfg.validate()
	p := c.Size()
	if cfg.Channels < p {
		panic(fmt.Sprintf("core: %d channels cannot be split across %d ranks", cfg.Channels, p))
	}
	lo, hi := ChannelRange(cfg.Channels, p, c.Rank())
	return &DistTokenizer{
		Comm:     c,
		Channels: cfg.Channels,
		ChLo:     lo, ChHi: hi,
		Tok: nn.NewPatchEmbedShard("disttok", lo, hi, cfg.ImgH, cfg.ImgW, cfg.Patch, cfg.Embed, nn.SubSeed(cfg.Seed, seedTok)),
	}
}

// LocalChannels returns the size of this rank's channel shard.
func (d *DistTokenizer) LocalChannels() int { return d.ChHi - d.ChLo }

// Forward tokenizes the local image shard [B, Cl, H, W] and AllGathers the
// full token tensor [B, C, T, E] (the expensive channel+spatial AllGather of
// Sec. 3.1).
func (d *DistTokenizer) Forward(x *tensor.Tensor) *tensor.Tensor {
	local := d.Tok.Forward(x) // [B, Cl, T, E]
	return d.Comm.AllGatherConcat(local, 1)
}

// Backward consumes the gradient of the full token tensor [B, C, T, E]
// (identical on every rank, because the downstream module is replicated),
// extracts this rank's channel slice, and back-propagates through the local
// tokenizer. No communication.
func (d *DistTokenizer) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if len(grad.Shape) != 4 || grad.Shape[1] != d.Channels {
		panic(fmt.Sprintf("core: DistTokenizer.Backward want [B,%d,T,E], got %v", d.Channels, grad.Shape))
	}
	d.dTok = tensor.EnsureShape(d.dTok, grad.Shape[0], d.ChHi-d.ChLo, grad.Shape[2], grad.Shape[3])
	tensor.SliceAxisInto(d.dTok, grad, 1, d.ChLo, d.ChHi)
	return d.Tok.Backward(d.dTok)
}

// Params returns the local tokenizer shard's parameters.
func (d *DistTokenizer) Params() []*nn.Param { return d.Tok.Params() }
