// Package core implements the paper's primary contribution: Distributed
// Cross-Channel Hierarchical Aggregation (D-CHAG, Sec. 3).
//
// The package provides, bottom-up:
//
//   - group aggregators (cross-attention and lightweight linear) that reduce
//     a group of channel tokens to a single token (Sec. 3.2, Fig. 3);
//   - the serial HierarchicalAggregator, a tree of group aggregators that
//     turns the quadratic-in-channels memory of single-layer cross-attention
//     into linear (Sec. 3.2);
//   - DistTokenizer, distributed tokenization alone (Sec. 3.1), which
//     AllGathers every channel's tokens and is the strawman the paper shows
//     does not pay off (Fig. 8);
//   - DCHAG, the full method (Sec. 3.3, Fig. 4): per-rank tokenization of a
//     channel shard, a per-rank partial-channel aggregation module, an
//     AllGather of exactly one token per rank, and a final cross-attention
//     layer whose parameters are replicated so the backward pass needs no
//     communication at all;
//   - Reference, the mathematically identical single-process model used by
//     the tests to prove distributed == serial to float64 round-off.
package core

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// LayerKind selects the layer type used inside the partial-channel
// aggregation module: the paper's D-CHAG-C uses cross-attention layers,
// D-CHAG-L replaces them with lightweight linear layers (Sec. 3.3). The
// final, shared aggregation layer is always cross-attention.
type LayerKind int

// Partial-layer kinds.
const (
	// KindCross uses cross-attention group aggregators (D-CHAG-C).
	KindCross LayerKind = iota
	// KindLinear uses learned linear channel mixing (D-CHAG-L).
	KindLinear
	// KindPerceiver uses Perceiver-style latent-query fusion, the module the
	// paper's Sec. 3.5 discusses via Aurora. An extension beyond the paper's
	// -C/-L variants; DefaultPerceiverLatents latent tokens per group.
	KindPerceiver
)

// DefaultPerceiverLatents is the latent-token count of KindPerceiver
// partial layers.
const DefaultPerceiverLatents = 4

// String returns the paper's suffix for the kind ("-C" / "-L").
func (k LayerKind) String() string {
	switch k {
	case KindCross:
		return "C"
	case KindLinear:
		return "L"
	case KindPerceiver:
		return "P"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// GroupAggregator reduces a group of g channel tokens [N, g, E] to one token
// [N, E]. N is the folded batch*spatial dimension: aggregation is
// independent per spatial location, exactly like the paper's channel
// aggregation module.
type GroupAggregator interface {
	// GroupSize returns g, the number of channel tokens consumed.
	GroupSize() int
	// Forward reduces x [N, g, E] to [N, E].
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Backward maps d [N, E] back to [N, g, E], accumulating parameter
	// gradients.
	Backward(d *tensor.Tensor) *tensor.Tensor
	// Params returns the aggregator's learnable parameters.
	Params() []*nn.Param
}

// CrossAttnAggregator reduces a channel group with one cross-attention layer
// in which the channel tokens attend to each other (queries = keys = values
// = the group's tokens, a g x g attention map — the quadratic memory the
// paper attributes to the channel aggregation module) followed by a mean
// over the group.
type CrossAttnAggregator struct {
	Group int
	Attn  *nn.CrossAttention

	n int // folded rows cached for backward

	out, iout *tensor.Tensor // Forward / Infer output scratch
	dy, dx    *tensor.Tensor // Backward scratch
}

// NewCrossAttnAggregator builds a cross-attention aggregator over a group of
// the given size.
func NewCrossAttnAggregator(name string, group, embed, heads int, seed int64) *CrossAttnAggregator {
	return &CrossAttnAggregator{
		Group: group,
		Attn:  nn.NewCrossAttention(name, embed, heads, seed),
	}
}

// GroupSize returns the group size.
func (a *CrossAttnAggregator) GroupSize() int { return a.Group }

// Forward reduces x [N, g, E] to [N, E].
func (a *CrossAttnAggregator) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[1] != a.Group {
		panic(fmt.Sprintf("core: CrossAttnAggregator.Forward want [N,%d,E], got %v", a.Group, x.Shape))
	}
	a.n = x.Shape[0]
	y := a.Attn.Forward(x, x) // [N, g, E]
	a.out = tensor.EnsureShape(a.out, a.n, x.Shape[2])
	return tensor.MeanAxisInto(a.out, y, 1) // [N, E]
}

// Backward maps d [N, E] to the group input gradient [N, g, E].
//
// dchag:hotpath — per-step mean broadcast and residual add into layer-owned
// scratch.
func (a *CrossAttnAggregator) Backward(d *tensor.Tensor) *tensor.Tensor {
	e := d.Shape[len(d.Shape)-1]
	a.dy = tensor.EnsureShape(a.dy, a.n, a.Group, e)
	inv := 1 / float64(a.Group)
	for n := 0; n < a.n; n++ {
		src := d.Data[n*e : (n+1)*e]
		for g := 0; g < a.Group; g++ {
			dst := a.dy.Data[(n*a.Group+g)*e : (n*a.Group+g+1)*e]
			for i, v := range src {
				dst[i] = v * inv
			}
		}
	}
	dq, dkv := a.Attn.Backward(a.dy)
	a.dx = tensor.EnsureShape(a.dx, a.n, a.Group, e)
	return tensor.AddInto(a.dx, dq, dkv)
}

// Infer reduces x [N, g, E] to [N, E] without caching activations for
// backward.
func (a *CrossAttnAggregator) Infer(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[1] != a.Group {
		panic(fmt.Sprintf("core: CrossAttnAggregator.Infer want [N,%d,E], got %v", a.Group, x.Shape))
	}
	y := a.Attn.Infer(x, x) // [N, g, E]
	a.iout = tensor.EnsureShape(a.iout, x.Shape[0], x.Shape[2])
	return tensor.MeanAxisInto(a.iout, y, 1) // [N, E]
}

// SetInferDType selects the arithmetic of the no-grad Infer path for the
// cross-attention layer.
func (a *CrossAttnAggregator) SetInferDType(dt tensor.DType) { a.Attn.SetInferDType(dt) }

// Params returns the attention parameters.
func (a *CrossAttnAggregator) Params() []*nn.Param { return a.Attn.Params() }

// LinearAggregator reduces a channel group with a learned linear combination
// across the channel axis: out[n,e] = sum_g w[g] * x[n,g,e] + b[e]. This is
// the "lightweight linear layer" of D-CHAG-L: g+E parameters instead of the
// 4E^2 of a cross-attention layer, and O(g) instead of O(g^2) activation
// memory.
type LinearAggregator struct {
	Group  int
	Weight *nn.Param // [g]
	Bias   *nn.Param // [E]

	x *tensor.Tensor

	out, iout *tensor.Tensor // Forward / Infer output scratch
	dx        *tensor.Tensor // Backward scratch
}

// NewLinearAggregator builds a linear aggregator initialized near the mean
// (w = 1/g plus small seeded noise) with zero bias.
func NewLinearAggregator(name string, group, embed int, seed int64) *LinearAggregator {
	rng := tensor.NewRNG(seed)
	w := tensor.New(group)
	for i := range w.Data {
		w.Data[i] = 1/float64(group) + 0.01*rng.NormFloat64()
	}
	return &LinearAggregator{
		Group:  group,
		Weight: nn.NewParam(name+".weight", w),
		Bias:   nn.NewParam(name+".bias", tensor.New(embed)),
	}
}

// GroupSize returns the group size.
func (a *LinearAggregator) GroupSize() int { return a.Group }

// Forward reduces x [N, g, E] to [N, E].
func (a *LinearAggregator) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[1] != a.Group {
		panic(fmt.Sprintf("core: LinearAggregator.Forward want [N,%d,E], got %v", a.Group, x.Shape))
	}
	a.x = x
	a.out = tensor.EnsureShape(a.out, x.Shape[0], x.Shape[2])
	return a.reduce(a.out, x)
}

// Infer reduces x [N, g, E] to [N, E] without caching the input for
// backward.
func (a *LinearAggregator) Infer(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[1] != a.Group {
		panic(fmt.Sprintf("core: LinearAggregator.Infer want [N,%d,E], got %v", a.Group, x.Shape))
	}
	a.iout = tensor.EnsureShape(a.iout, x.Shape[0], x.Shape[2])
	return a.reduce(a.iout, x)
}

// reduce applies the learned linear combination across the channel axis,
// writing into out.
//
// dchag:hotpath — per-step channel mixing; out is layer-owned scratch.
func (a *LinearAggregator) reduce(out, x *tensor.Tensor) *tensor.Tensor {
	n, e := x.Shape[0], x.Shape[2]
	for ni := 0; ni < n; ni++ {
		dst := out.Data[ni*e : (ni+1)*e]
		copy(dst, a.Bias.W.Data)
		for g := 0; g < a.Group; g++ {
			w := a.Weight.W.Data[g]
			src := x.Data[(ni*a.Group+g)*e : (ni*a.Group+g+1)*e]
			for i, v := range src {
				dst[i] += w * v
			}
		}
	}
	return out
}

// Backward maps d [N, E] to [N, g, E] and accumulates dWeight and dBias.
//
// dchag:hotpath — per-step channel-mixing backward; dx is layer-owned
// scratch.
func (a *LinearAggregator) Backward(d *tensor.Tensor) *tensor.Tensor {
	if a.x == nil {
		panic("core: LinearAggregator.Backward before Forward")
	}
	n, e := a.x.Shape[0], a.x.Shape[2]
	a.dx = tensor.EnsureShape(a.dx, n, a.Group, e)
	dx := a.dx
	for ni := 0; ni < n; ni++ {
		src := d.Data[ni*e : (ni+1)*e]
		for i, v := range src {
			a.Bias.Grad.Data[i] += v
		}
		for g := 0; g < a.Group; g++ {
			w := a.Weight.W.Data[g]
			xrow := a.x.Data[(ni*a.Group+g)*e : (ni*a.Group+g+1)*e]
			drow := dx.Data[(ni*a.Group+g)*e : (ni*a.Group+g+1)*e]
			s := 0.0
			for i, v := range src {
				drow[i] = w * v
				s += v * xrow[i]
			}
			a.Weight.Grad.Data[g] += s
		}
	}
	return dx
}

// Params returns the weight and bias.
func (a *LinearAggregator) Params() []*nn.Param { return []*nn.Param{a.Weight, a.Bias} }

// newGroupAggregator dispatches on kind.
func newGroupAggregator(name string, kind LayerKind, group, embed, heads int, seed int64) GroupAggregator {
	switch kind {
	case KindCross:
		return NewCrossAttnAggregator(name, group, embed, heads, seed)
	case KindLinear:
		return NewLinearAggregator(name, group, embed, seed)
	case KindPerceiver:
		return NewPerceiverAggregator(name, group, DefaultPerceiverLatents, embed, heads, seed)
	default:
		panic(fmt.Sprintf("core: unknown LayerKind %d", kind))
	}
}
