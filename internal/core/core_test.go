package core

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func dotAll(a, b *tensor.Tensor) float64 {
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

func checkGrad(t *testing.T, name string, x, analytic *tensor.Tensor, loss func() float64, tol float64) {
	t.Helper()
	const eps = 1e-6
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss()
		x.Data[i] = orig - eps
		lm := loss()
		x.Data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-analytic.Data[i]) > tol {
			t.Fatalf("%s: grad mismatch at %d: numeric %.10f analytic %.10f", name, i, numeric, analytic.Data[i])
		}
	}
}

func TestEvenSplit(t *testing.T) {
	got := EvenSplit(10, 3)
	want := []int{4, 3, 3}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("EvenSplit(10,3) = %v", got)
		}
	}
	if s := EvenSplit(6, 6); s[0] != 1 {
		t.Fatalf("EvenSplit(6,6) = %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	EvenSplit(2, 3)
}

func TestChannelRangeCoversAll(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		c := 1 + int(rng.Int31n(64))
		p := 1 + int(rng.Int31n(8))
		if p > c {
			p = c
		}
		prev := 0
		for r := 0; r < p; r++ {
			lo, hi := ChannelRange(c, p, r)
			if lo != prev || hi <= lo {
				return false
			}
			prev = hi
		}
		return prev == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTreePlanShapes(t *testing.T) {
	// Paper Fig. 9 semantics: 256 channels, Tree2 -> 2 groups of 128 plus a
	// reducer; Tree8 -> 8 groups of 32 plus a reducer; Tree0 -> one layer.
	p0 := BuildTreePlan(256, 0)
	if len(p0) != 1 || p0.MaxGroup() != 256 || p0.NumLayers() != 1 {
		t.Fatalf("Tree0 plan = %v", p0)
	}
	p2 := BuildTreePlan(256, 2)
	if len(p2) != 2 || p2.MaxGroup() != 128 || p2.NumLayers() != 3 {
		t.Fatalf("Tree2 plan = %v", p2)
	}
	p8 := BuildTreePlan(256, 8)
	if p8.MaxGroup() != 32 || len(p8[0]) != 8 {
		t.Fatalf("Tree8 plan = %v", p8)
	}
	// Clamping: more groups than channels.
	pBig := BuildTreePlan(3, 8)
	if pBig.Channels() != 3 || pBig.MaxGroup() != 3 {
		t.Fatalf("clamped plan = %v", pBig)
	}
}

func TestTreePlanReducesQuadraticToLinear(t *testing.T) {
	// The point of Sec. 3.2: sum of squared group sizes (attention memory)
	// shrinks as the tree deepens.
	cost := func(p TreePlan) int {
		s := 0
		for _, level := range p {
			for _, g := range level {
				s += g * g
			}
		}
		return s
	}
	c0 := cost(BuildTreePlan(256, 0))
	c4 := cost(BuildTreePlan(256, 4))
	c16 := cost(BuildTreePlan(256, 16))
	if !(c16 < c4 && c4 < c0) {
		t.Fatalf("attention cost must shrink with tree depth: %d, %d, %d", c0, c4, c16)
	}
}

func TestCrossAttnAggregatorGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	a := NewCrossAttnAggregator("agg", 3, 8, 2, 11)
	x := tensor.Randn(rng, 4, 3, 8)
	r := tensor.Randn(rng, 4, 8)
	loss := func() float64 { return dotAll(a.Forward(x), r) }
	loss()
	nn.ZeroGrads(a.Params())
	dx := a.Backward(r)
	checkGrad(t, "crossagg/x", x, dx, loss, 1e-5)
}

func TestLinearAggregatorGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	a := NewLinearAggregator("lin", 4, 6, 22)
	x := tensor.Randn(rng, 3, 4, 6)
	r := tensor.Randn(rng, 3, 6)
	loss := func() float64 { return dotAll(a.Forward(x), r) }
	loss()
	nn.ZeroGrads(a.Params())
	dx := a.Backward(r)
	checkGrad(t, "linagg/x", x, dx, loss, 1e-6)
	checkGrad(t, "linagg/w", a.Weight.W, a.Weight.Grad, loss, 1e-6)
	checkGrad(t, "linagg/b", a.Bias.W, a.Bias.Grad, loss, 1e-6)
}

func TestFoldUnfoldChannelsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		b := 1 + int(rng.Int31n(3))
		c := 1 + int(rng.Int31n(5))
		tt := 1 + int(rng.Int31n(4))
		e := 1 + int(rng.Int31n(4))
		x := tensor.Randn(rng, b, c, tt, e)
		return tensor.MaxAbsDiff(UnfoldChannels(FoldChannels(x), b, tt), x) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchicalAggregatorGradients(t *testing.T) {
	for _, kind := range []LayerKind{KindCross, KindLinear} {
		rng := tensor.NewRNG(3)
		h := NewHierarchicalAggregator("h", BuildTreePlan(6, 3), kind, 4, 2, 33)
		x := tensor.Randn(rng, 2, 6, 2, 4)
		r := tensor.Randn(rng, 2, 2, 4)
		loss := func() float64 { return dotAll(h.Forward(x), r) }
		loss()
		nn.ZeroGrads(h.Params())
		dx := h.Backward(r)
		checkGrad(t, "hier-"+kind.String()+"/x", x, dx, loss, 1e-5)
	}
}

func TestBaselineAggregatorIsSingleCrossAttention(t *testing.T) {
	h := NewBaselineAggregator("base", 5, 4, 2, 44)
	if len(h.Levels) != 1 || len(h.Levels[0]) != 1 {
		t.Fatalf("baseline should have one layer, got %v", h.Plan)
	}
	if _, ok := h.Levels[0][0].(*CrossAttnAggregator); !ok {
		t.Fatal("baseline layer must be cross-attention")
	}
}

// runDCHAG runs the distributed module over p goroutine ranks on the full
// image x and upstream gradient up, returning per-rank outputs, image-shard
// gradients, and the traffic group.
func runDCHAG(t *testing.T, cfg Config, p int, x, up *tensor.Tensor) (outs, dimgs []*tensor.Tensor, g *comm.Group) {
	t.Helper()
	outs = make([]*tensor.Tensor, p)
	dimgs = make([]*tensor.Tensor, p)
	g, err := comm.Run(p, func(c *comm.Communicator) error {
		d := NewDCHAG(cfg, c)
		xs := tensor.SliceAxis(x, 1, d.ChLo, d.ChHi)
		c.SetPhase("forward")
		outs[c.Rank()] = d.Forward(xs)
		c.SetPhase("backward")
		dimgs[c.Rank()] = d.Backward(up)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return outs, dimgs, g
}

func TestDCHAGMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		p, tree int
		kind    LayerKind
	}{
		{2, 0, KindCross},
		{2, 0, KindLinear},
		{3, 2, KindCross},
		{4, 2, KindLinear},
		{1, 0, KindCross}, // degenerate single rank
	} {
		name := fmt.Sprintf("p=%d tree=%d kind=%s", tc.p, tc.tree, tc.kind)
		cfg := Config{
			Channels: 8, ImgH: 4, ImgW: 4, Patch: 2,
			Embed: 8, Heads: 2, Tree: tc.tree, Kind: tc.kind, Seed: 777,
		}
		rng := tensor.NewRNG(55)
		x := tensor.Randn(rng, 2, cfg.Channels, cfg.ImgH, cfg.ImgW)
		up := tensor.Randn(rng, 2, cfg.Tokens(), cfg.Embed)

		ref := NewReference(cfg, tc.p)
		wantOut := ref.Forward(x)
		nn.ZeroGrads(ref.Params())
		wantDimg := ref.Backward(up)

		outs, dimgs, _ := runDCHAG(t, cfg, tc.p, x, up)
		for r := 0; r < tc.p; r++ {
			if diff := tensor.MaxAbsDiff(outs[r], wantOut); diff > 1e-9 {
				t.Fatalf("%s: rank %d forward differs by %g", name, r, diff)
			}
			lo, hi := ChannelRange(cfg.Channels, tc.p, r)
			wantShard := tensor.SliceAxis(wantDimg, 1, lo, hi)
			if diff := tensor.MaxAbsDiff(dimgs[r], wantShard); diff > 1e-9 {
				t.Fatalf("%s: rank %d image grad differs by %g", name, r, diff)
			}
		}
	}
}

func TestDCHAGPartitionedMatchesReference(t *testing.T) {
	// The partition count P is a model property decoupled from the rank
	// count q: every q dividing P must realize the exact logical model
	// Reference(P) — forward outputs, image gradients, and parameter
	// gradients — including with uneven channel partitions.
	for _, tc := range []struct {
		channels, partitions int
		kind                 LayerKind
	}{
		{8, 4, KindLinear},
		{10, 4, KindCross}, // uneven: partition sizes 3,3,2,2
		{8, 8, KindLinear},
	} {
		cfg := Config{
			Channels: tc.channels, ImgH: 4, ImgW: 4, Patch: 2,
			Embed: 8, Heads: 2, Tree: 0, Kind: tc.kind, Seed: 99,
		}
		rng := tensor.NewRNG(17)
		x := tensor.Randn(rng, 2, cfg.Channels, cfg.ImgH, cfg.ImgW)
		up := tensor.Randn(rng, 2, cfg.Tokens(), cfg.Embed)

		ref := NewReference(cfg, tc.partitions)
		wantOut := ref.Forward(x)
		nn.ZeroGrads(ref.Params())
		wantDimg := ref.Backward(up)
		refGrads := map[string]*tensor.Tensor{}
		for _, pr := range ref.Params() {
			refGrads[pr.Name] = pr.Grad
		}

		for q := 1; q <= tc.partitions; q++ {
			if tc.partitions%q != 0 {
				continue
			}
			name := fmt.Sprintf("channels=%d P=%d q=%d kind=%s", tc.channels, tc.partitions, q, tc.kind)
			_, err := comm.Run(q, func(c *comm.Communicator) error {
				d := NewDCHAGPartitioned(cfg, c, tc.partitions)
				xs := tensor.SliceAxis(x, 1, d.ChLo, d.ChHi)
				out := d.Forward(xs)
				if diff := tensor.MaxAbsDiff(out, wantOut); diff > 1e-9 {
					return fmt.Errorf("rank %d forward differs by %g", c.Rank(), diff)
				}
				nn.ZeroGrads(d.Params())
				dimg := d.Backward(up)
				wantShard := tensor.SliceAxis(wantDimg, 1, d.ChLo, d.ChHi)
				if diff := tensor.MaxAbsDiff(dimg, wantShard); diff > 1e-9 {
					return fmt.Errorf("rank %d image grad differs by %g", c.Rank(), diff)
				}
				// Partial-module parameter gradients match the reference's
				// same-named partials exactly.
				for _, partial := range d.Partials {
					for _, pr := range partial.Params() {
						want, ok := refGrads[pr.Name]
						if !ok {
							return fmt.Errorf("rank %d param %q missing from reference", c.Rank(), pr.Name)
						}
						if diff := tensor.MaxAbsDiff(pr.Grad, want); diff > 1e-9 {
							return fmt.Errorf("rank %d param %q grad differs by %g", c.Rank(), pr.Name, diff)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
}

func TestDCHAGShardAnnotations(t *testing.T) {
	// Channel-sharded parameters carry the shard metadata checkpointing
	// reshards by; together the ranks tile the full logical extent.
	cfg := Config{
		Channels: 10, ImgH: 4, ImgW: 4, Patch: 2,
		Embed: 4, Heads: 1, Tree: 0, Kind: KindLinear, Seed: 3,
	}
	const p = 4
	covered := make([]int, cfg.Channels)
	var mu sync.Mutex
	_, err := comm.Run(p, func(c *comm.Communicator) error {
		d := NewDCHAG(cfg, c)
		for _, pr := range []*nn.Param{d.Tok.Weight, d.Tok.Bias, d.ChEmb.Table} {
			if pr.Shard == nil {
				return fmt.Errorf("param %q lacks shard metadata", pr.Name)
			}
			if pr.Shard.Lo != d.ChLo || pr.Shard.Hi != d.ChHi || pr.Shard.Axis != 0 {
				return fmt.Errorf("param %q shard %+v does not match channel range [%d,%d)", pr.Name, pr.Shard, d.ChLo, d.ChHi)
			}
			if pr.Shard.FullShape[0] != cfg.Channels {
				return fmt.Errorf("param %q full shape %v does not lead with %d channels", pr.Name, pr.Shard.FullShape, cfg.Channels)
			}
		}
		for _, pr := range d.Final.Params() {
			if pr.Shard != nil {
				return fmt.Errorf("replicated param %q unexpectedly sharded", pr.Name)
			}
		}
		mu.Lock()
		for ch := d.ChLo; ch < d.ChHi; ch++ {
			covered[ch]++
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for ch, n := range covered {
		if n != 1 {
			t.Fatalf("channel %d covered %d times", ch, n)
		}
	}
}

func TestDCHAGBackwardHasZeroCommunication(t *testing.T) {
	// The paper's headline implementation claim (Sec. 3.3): the backward
	// pass of the D-CHAG stage needs no communication at all, and the
	// forward pass needs exactly one AllGather of one token per rank.
	cfg := Config{
		Channels: 6, ImgH: 4, ImgW: 4, Patch: 2,
		Embed: 4, Heads: 2, Tree: 0, Kind: KindLinear, Seed: 9,
	}
	rng := tensor.NewRNG(66)
	x := tensor.Randn(rng, 1, cfg.Channels, cfg.ImgH, cfg.ImgW)
	up := tensor.Randn(rng, 1, cfg.Tokens(), cfg.Embed)
	const p = 3
	_, _, g := runDCHAG(t, cfg, p, x, up)

	if got := g.Traffic().BytesInPhase("backward"); got != 0 {
		t.Fatalf("backward communicated %d bytes, want 0\n%s", got, g.Traffic())
	}
	for r := 0; r < p; r++ {
		if calls := g.Traffic().CallsFor(r, "forward", comm.OpAllGather); calls != 1 {
			t.Fatalf("rank %d forward allgathers = %d, want exactly 1", r, calls)
		}
	}
	// The gathered payload per rank is (p-1) tokens of T*E floats.
	wantBytes := int64((p-1)*cfg.Tokens()*cfg.Embed) * 8
	if got := g.Traffic().BytesFor(0, "forward", comm.OpAllGather); got != wantBytes {
		t.Fatalf("forward allgather bytes = %d, want %d", got, wantBytes)
	}
}

func TestDCHAGParamGradsMatchReference(t *testing.T) {
	cfg := Config{
		Channels: 4, ImgH: 4, ImgW: 4, Patch: 2,
		Embed: 4, Heads: 2, Tree: 0, Kind: KindCross, Seed: 321,
	}
	const p = 2
	rng := tensor.NewRNG(77)
	x := tensor.Randn(rng, 2, cfg.Channels, cfg.ImgH, cfg.ImgW)
	up := tensor.Randn(rng, 2, cfg.Tokens(), cfg.Embed)

	ref := NewReference(cfg, p)
	ref.Forward(x)
	nn.ZeroGrads(ref.Params())
	ref.Backward(up)

	// Collect distributed gradients by name per rank.
	type nameGrad struct {
		name string
		grad *tensor.Tensor
	}
	grads := make([][]nameGrad, p)
	_, err := comm.Run(p, func(c *comm.Communicator) error {
		d := NewDCHAG(cfg, c)
		xs := tensor.SliceAxis(x, 1, d.ChLo, d.ChHi)
		d.Forward(xs)
		nn.ZeroGrads(d.Params())
		d.Backward(up)
		for _, partial := range d.Partials {
			for _, pr := range partial.Params() {
				grads[c.Rank()] = append(grads[c.Rank()], nameGrad{pr.Name, pr.Grad.Clone()})
			}
		}
		for _, pr := range d.Final.Params() {
			grads[c.Rank()] = append(grads[c.Rank()], nameGrad{pr.Name, pr.Grad.Clone()})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	refGrads := map[string]*tensor.Tensor{}
	for _, pr := range ref.Params() {
		refGrads[pr.Name] = pr.Grad
	}
	for r := 0; r < p; r++ {
		for _, ng := range grads[r] {
			want, ok := refGrads[ng.name]
			if !ok {
				t.Fatalf("rank %d param %q missing from reference", r, ng.name)
			}
			if diff := tensor.MaxAbsDiff(ng.grad, want); diff > 1e-9 {
				t.Fatalf("rank %d param %q grad differs by %g", r, ng.name, diff)
			}
		}
	}
}

func TestDCHAGFinalGradsIdenticalAcrossRanks(t *testing.T) {
	// Replicated final layer: gradients must agree bit-for-bit across ranks
	// without synchronization (the reason no backward comm is needed).
	cfg := Config{
		Channels: 6, ImgH: 2, ImgW: 2, Patch: 2,
		Embed: 4, Heads: 1, Tree: 2, Kind: KindLinear, Seed: 5,
	}
	const p = 3
	rng := tensor.NewRNG(88)
	x := tensor.Randn(rng, 2, cfg.Channels, cfg.ImgH, cfg.ImgW)
	up := tensor.Randn(rng, 2, cfg.Tokens(), cfg.Embed)
	finals := make([][]*tensor.Tensor, p)
	_, err := comm.Run(p, func(c *comm.Communicator) error {
		d := NewDCHAG(cfg, c)
		xs := tensor.SliceAxis(x, 1, d.ChLo, d.ChHi)
		d.Forward(xs)
		nn.ZeroGrads(d.Params())
		d.Backward(up)
		for _, pr := range d.Final.Params() {
			finals[c.Rank()] = append(finals[c.Rank()], pr.Grad.Clone())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < p; r++ {
		for i := range finals[0] {
			if tensor.MaxAbsDiff(finals[0][i], finals[r][i]) != 0 {
				t.Fatalf("final-layer grad %d differs between rank 0 and %d", i, r)
			}
		}
	}
}

func TestDistTokenizerMatchesSerial(t *testing.T) {
	cfg := Config{
		Channels: 6, ImgH: 4, ImgW: 4, Patch: 2,
		Embed: 5, Heads: 1, Seed: 13,
	}
	rng := tensor.NewRNG(99)
	x := tensor.Randn(rng, 2, cfg.Channels, cfg.ImgH, cfg.ImgW)
	serial := nn.NewPatchEmbed("disttok", cfg.Channels, cfg.ImgH, cfg.ImgW, cfg.Patch, cfg.Embed, nn.SubSeed(cfg.Seed, seedTok))
	want := serial.Forward(x)
	up := tensor.Randn(rng, 2, cfg.Channels, cfg.Tokens(), cfg.Embed)
	nn.ZeroGrads(serial.Params())
	wantDimg := serial.Backward(up)

	const p = 3
	_, err := comm.Run(p, func(c *comm.Communicator) error {
		d := NewDistTokenizer(cfg, c)
		xs := tensor.SliceAxis(x, 1, d.ChLo, d.ChHi)
		full := d.Forward(xs)
		if diff := tensor.MaxAbsDiff(full, want); diff > 1e-12 {
			return fmt.Errorf("rank %d tokens differ by %g", c.Rank(), diff)
		}
		dimg := d.Backward(up)
		wantShard := tensor.SliceAxis(wantDimg, 1, d.ChLo, d.ChHi)
		if diff := tensor.MaxAbsDiff(dimg, wantShard); diff > 1e-12 {
			return fmt.Errorf("rank %d image grad differs by %g", c.Rank(), diff)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistTokGatherVolumeExceedsDCHAG(t *testing.T) {
	// Sec. 3.1 vs 3.3: distributed tokenization AllGathers C/P channels of
	// tokens per rank while D-CHAG gathers one token per rank. The ledger
	// must show the volume ratio.
	cfg := Config{
		Channels: 8, ImgH: 4, ImgW: 4, Patch: 2,
		Embed: 4, Heads: 2, Tree: 0, Kind: KindLinear, Seed: 3,
	}
	const p = 2
	rng := tensor.NewRNG(111)
	x := tensor.Randn(rng, 1, cfg.Channels, cfg.ImgH, cfg.ImgW)

	gTok, err := comm.Run(p, func(c *comm.Communicator) error {
		d := NewDistTokenizer(cfg, c)
		c.SetPhase("forward")
		d.Forward(tensor.SliceAxis(x, 1, d.ChLo, d.ChHi))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	up := tensor.Randn(rng, 1, cfg.Tokens(), cfg.Embed)
	_, _, gDchag := runDCHAG(t, cfg, p, x, up)

	tokBytes := gTok.Traffic().BytesInPhase("forward")
	dchagBytes := gDchag.Traffic().BytesInPhase("forward")
	if tokBytes <= dchagBytes {
		t.Fatalf("dist-tok bytes %d should exceed D-CHAG bytes %d", tokBytes, dchagBytes)
	}
	// The ratio should be exactly channels/ranks (tokens per rank gathered).
	if tokBytes != dchagBytes*int64(cfg.Channels)/int64(p) {
		t.Fatalf("volume ratio: disttok %d, dchag %d, want factor %d", tokBytes, dchagBytes, cfg.Channels/p)
	}
}

func TestDCHAGUnevenChannels(t *testing.T) {
	// 7 channels over 3 ranks: shards of 3, 2, 2. Equivalence must hold.
	cfg := Config{
		Channels: 7, ImgH: 2, ImgW: 2, Patch: 2,
		Embed: 4, Heads: 2, Tree: 0, Kind: KindCross, Seed: 2024,
	}
	const p = 3
	rng := tensor.NewRNG(123)
	x := tensor.Randn(rng, 2, cfg.Channels, cfg.ImgH, cfg.ImgW)
	up := tensor.Randn(rng, 2, cfg.Tokens(), cfg.Embed)

	ref := NewReference(cfg, p)
	want := ref.Forward(x)
	nn.ZeroGrads(ref.Params())
	wantDimg := ref.Backward(up)

	outs, dimgs, _ := runDCHAG(t, cfg, p, x, up)
	for r := 0; r < p; r++ {
		if diff := tensor.MaxAbsDiff(outs[r], want); diff > 1e-9 {
			t.Fatalf("uneven rank %d forward differs by %g", r, diff)
		}
		lo, hi := ChannelRange(cfg.Channels, p, r)
		if diff := tensor.MaxAbsDiff(dimgs[r], tensor.SliceAxis(wantDimg, 1, lo, hi)); diff > 1e-9 {
			t.Fatalf("uneven rank %d grad differs by %g", r, diff)
		}
	}
}

func TestLayerKindString(t *testing.T) {
	if KindCross.String() != "C" || KindLinear.String() != "L" {
		t.Fatal("LayerKind strings wrong")
	}
}

func TestDCHAGParamsPartition(t *testing.T) {
	_, err := comm.Run(2, func(c *comm.Communicator) error {
		d := NewDCHAG(Config{
			Channels: 4, ImgH: 2, ImgW: 2, Patch: 2,
			Embed: 4, Heads: 2, Tree: 0, Kind: KindLinear, Seed: 1,
		}, c)
		if len(d.Params()) != len(d.LocalParams())+len(d.ReplicatedParams()) {
			return fmt.Errorf("Params must partition into local + replicated")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
