package core

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Reference is the single-process model that is mathematically identical to
// the D-CHAG stage distributed over p ranks: the full tokenizer, the full
// channel embedding, p partial-channel aggregation modules (one per virtual
// rank, drawing the same seeds the distributed ranks draw), and the shared
// final cross-attention layer.
//
// It exists for two reasons. First, it is the correctness oracle: the tests
// prove DCHAG-over-p-goroutine-ranks == Reference(p) to float64 round-off,
// for forward, backward, and parameter gradients. Second, with p = 1 and
// KindCross it degenerates to the baseline architecture's channel stage
// (one cross-attention layer over all channels), which is how the paper's
// single-GPU baselines are built.
type Reference struct {
	Cfg Config
	P   int

	Tok      *nn.PatchEmbed
	ChEmb    *nn.ChannelEmbed
	Partials []*HierarchicalAggregator
	Final    *CrossAttnAggregator

	bounds [][2]int
	b      int

	// Scratch, grown once and reused every step; Forward and Infer own
	// separate sets (the partials cache views of their inputs for backward).
	partIn, ipartIn []*tensor.Tensor // per-virtual-rank channel-slice inputs
	outs, iouts     []*tensor.Tensor // per-virtual-rank aggregated tokens
	seq, iseq       *tensor.Tensor   // final layer input [B*T, P, E]
	dLocal          *tensor.Tensor   // per-virtual-rank token gradient
	dEmb            *tensor.Tensor   // concatenated channel-token gradient
}

// ensureScratch sizes the per-virtual-rank scratch slices.
func (r *Reference) ensureScratch() {
	if r.partIn != nil {
		return
	}
	r.partIn = make([]*tensor.Tensor, r.P)
	r.ipartIn = make([]*tensor.Tensor, r.P)
	r.outs = make([]*tensor.Tensor, r.P)
	r.iouts = make([]*tensor.Tensor, r.P)
}

// SetInferDType selects the arithmetic of the no-grad Infer path, matching
// DCHAG.SetInferDType.
func (r *Reference) SetInferDType(dt tensor.DType) {
	r.Tok.SetInferDType(dt)
	for _, partial := range r.Partials {
		partial.SetInferDType(dt)
	}
	r.Final.SetInferDType(dt)
}

// NewReference builds the serial equivalent of NewDCHAG over p virtual
// ranks.
func NewReference(cfg Config, p int) *Reference {
	cfg.validate()
	if p < 1 || cfg.Channels < p {
		panic(fmt.Sprintf("core: invalid virtual rank count %d for %d channels", p, cfg.Channels))
	}
	r := &Reference{
		Cfg:   cfg,
		P:     p,
		Tok:   nn.NewPatchEmbed("dchag.tok", cfg.Channels, cfg.ImgH, cfg.ImgW, cfg.Patch, cfg.Embed, nn.SubSeed(cfg.Seed, seedTok)),
		ChEmb: nn.NewChannelEmbed("dchag.chemb", cfg.Channels, cfg.Embed, nn.SubSeed(cfg.Seed, seedChEmb)),
		Final: NewCrossAttnAggregator("dchag.final", p, cfg.Embed, cfg.Heads, nn.SubSeed(cfg.Seed, seedFinal)),
	}
	for vr := 0; vr < p; vr++ {
		lo, hi := ChannelRange(cfg.Channels, p, vr)
		r.bounds = append(r.bounds, [2]int{lo, hi})
		r.Partials = append(r.Partials, NewHierarchicalAggregator(
			fmt.Sprintf("dchag.partial%d", vr),
			BuildTreePlan(hi-lo, cfg.Tree), cfg.Kind, cfg.Embed, cfg.Heads,
			nn.SubSeed(cfg.Seed, seedPartial+vr)))
	}
	return r
}

// Bounds returns virtual rank vr's channel range [lo, hi).
func (r *Reference) Bounds(vr int) (lo, hi int) {
	return r.bounds[vr][0], r.bounds[vr][1]
}

// Forward consumes the full image [B, C, H, W] and returns the aggregated
// representation [B, T, E].
func (r *Reference) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != r.Cfg.Channels {
		panic(fmt.Sprintf("core: Reference.Forward want [B,%d,H,W], got %v", r.Cfg.Channels, x.Shape))
	}
	r.b = x.Shape[0]
	r.ensureScratch()
	t, e := r.Cfg.Tokens(), r.Cfg.Embed
	tok := r.Tok.Forward(x)
	emb := r.ChEmb.Forward(tok)
	for vr := 0; vr < r.P; vr++ {
		lo, hi := r.Bounds(vr)
		r.partIn[vr] = tensor.EnsureShape(r.partIn[vr], r.b, hi-lo, t, e)
		tensor.SliceAxisInto(r.partIn[vr], emb, 1, lo, hi)
		r.outs[vr] = r.Partials[vr].Forward(r.partIn[vr])
	}
	r.seq = tensor.EnsureShape(r.seq, r.b*t, r.P, e)
	RanksToSeqInto(r.seq, r.outs)
	out := r.Final.Forward(r.seq)
	return out.Reshape(r.b, t, e)
}

// Infer runs Forward's computation without caching activations for
// backward; bitwise identical to Forward (and therefore to the distributed
// DCHAG.Infer over any rank count realizing the same logical model).
func (r *Reference) Infer(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != r.Cfg.Channels {
		panic(fmt.Sprintf("core: Reference.Infer want [B,%d,H,W], got %v", r.Cfg.Channels, x.Shape))
	}
	b := x.Shape[0]
	r.ensureScratch()
	t, e := r.Cfg.Tokens(), r.Cfg.Embed
	tok := r.Tok.Infer(x)
	emb := r.ChEmb.Infer(tok)
	for vr := 0; vr < r.P; vr++ {
		lo, hi := r.Bounds(vr)
		r.ipartIn[vr] = tensor.EnsureShape(r.ipartIn[vr], b, hi-lo, t, e)
		tensor.SliceAxisInto(r.ipartIn[vr], emb, 1, lo, hi)
		r.iouts[vr] = r.Partials[vr].Infer(r.ipartIn[vr])
	}
	r.iseq = tensor.EnsureShape(r.iseq, b*t, r.P, e)
	RanksToSeqInto(r.iseq, r.iouts)
	out := r.Final.Infer(r.iseq)
	return out.Reshape(b, t, e)
}

// Backward consumes the output gradient [B, T, E] and returns the full image
// gradient [B, C, H, W].
func (r *Reference) Backward(grad *tensor.Tensor) *tensor.Tensor {
	t, e := r.Cfg.Tokens(), r.Cfg.Embed
	dSeq := r.Final.Backward(grad.Reshape(r.b*t, e))
	r.dLocal = tensor.EnsureShape(r.dLocal, r.b, t, e)
	r.dEmb = tensor.EnsureShape(r.dEmb, r.b, r.Cfg.Channels, t, e)
	off := 0
	for vr := 0; vr < r.P; vr++ {
		// Each partial consumes dLocal fully during Backward, so one shared
		// buffer serves every virtual rank in turn.
		SeqSliceInto(r.dLocal, dSeq, vr, r.b, t)
		part := r.Partials[vr].Backward(r.dLocal)
		tensor.SetSliceAxis(r.dEmb, 1, off, part)
		off += part.Shape[1]
	}
	dTok := r.ChEmb.Backward(r.dEmb)
	return r.Tok.Backward(dTok)
}

// Params returns all parameters of the serial model.
func (r *Reference) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, r.Tok.Params()...)
	ps = append(ps, r.ChEmb.Params()...)
	for _, pt := range r.Partials {
		ps = append(ps, pt.Params()...)
	}
	ps = append(ps, r.Final.Params()...)
	return ps
}
