package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config describes a D-CHAG channel stage: the tokenizer geometry, the
// embedding width, and the partial-channel aggregation module layout.
type Config struct {
	// Channels is the global channel count (spectral bands, atmospheric
	// variables, ...).
	Channels int
	// ImgH, ImgW, Patch define the tokenizer geometry.
	ImgH, ImgW, Patch int
	// Embed and Heads size the attention layers.
	Embed, Heads int
	// Tree selects the partial-module layout (paper Fig. 9): 0 = one
	// aggregation layer over the whole local shard, N >= 2 = N first-level
	// groups plus a local reducer.
	Tree int
	// Kind selects D-CHAG-C (cross-attention) or D-CHAG-L (linear) partial
	// layers. The final shared layer is always cross-attention.
	Kind LayerKind
	// Seed determines every parameter deterministically.
	Seed int64
}

// Tokens returns the spatial token count per channel.
func (c Config) Tokens() int { return (c.ImgH / c.Patch) * (c.ImgW / c.Patch) }

func (c Config) validate() {
	if c.Channels < 1 || c.Embed < 1 || c.Heads < 1 {
		panic(fmt.Sprintf("core: invalid config %+v", c))
	}
	if c.ImgH%c.Patch != 0 || c.ImgW%c.Patch != 0 {
		panic(fmt.Sprintf("core: image %dx%d not divisible by patch %d", c.ImgH, c.ImgW, c.Patch))
	}
	if c.Embed%c.Heads != 0 {
		panic(fmt.Sprintf("core: embed %d not divisible by heads %d", c.Embed, c.Heads))
	}
}

// Seed indices for the stage's components; shared with Reference so the
// distributed and serial constructions draw identical parameters.
const (
	seedTok     = 1
	seedChEmb   = 2
	seedFinal   = 3
	seedPartial = 100 // + rank
)

// DCHAG is one rank's slice of the Distributed Cross-Channel Hierarchical
// Aggregation stage (paper Sec. 3.3, Fig. 4):
//
//	local channel shard --PatchEmbed--> [B, Cl, T, E]
//	                    --ChannelEmbed--> (+ channel ID tokens)
//	                    --partial aggregation--> [B, T, E]   (1 token/partition)
//	  --AllGather (the ONLY communication)--> [B*T, P, E]
//	  --final shared cross-attention--> [B, T, E]
//
// The final layer's parameters are replicated and its input is identical on
// every rank after the AllGather, so the backward pass recomputes the final
// layer gradient locally, slices out the rank's own token gradient, and
// back-propagates through the local partial module and tokenizer with zero
// communication — the property the paper's Sec. 3.3 claims and the tests
// assert via the traffic ledger.
//
// The channel-partition count P is a property of the *model*, decoupled from
// the rank count q: each rank owns a contiguous block of P/q partitions
// (one partial module per partition). The logical model — its parameters and
// its training trajectory — depends only on (Config, P), so a checkpoint
// saved at q ranks can be restored at any q' dividing P (including q' = 1,
// which is exactly Reference). The default constructor keeps the historical
// one-partition-per-rank layout.
type DCHAG struct {
	Cfg        Config
	Comm       *comm.Communicator
	ChLo, ChHi int
	// Partitions is the logical channel-partition count P; PartLo, PartHi
	// bound this rank's owned partition block [PartLo, PartHi).
	Partitions     int
	PartLo, PartHi int

	Tok      *nn.PatchEmbed
	ChEmb    *nn.ChannelEmbed
	Partials []*HierarchicalAggregator // one per owned partition
	Final    *CrossAttnAggregator

	b int

	// Scratch, grown once and reused every step; Forward and Infer own
	// separate sets (the partials cache views of their inputs for backward).
	partIn, ipartIn []*tensor.Tensor // per-partition channel-slice inputs
	outs, iouts     []*tensor.Tensor // per-partition aggregated tokens
	local, ilocal   *tensor.Tensor   // stacked owned-partition tokens
	seq, iseq       *tensor.Tensor   // final layer input [B*T, P, E]
	dLocal          *tensor.Tensor   // per-partition token gradient
	dEmb            *tensor.Tensor   // concatenated channel-token gradient
}

// ensureScratch sizes the per-partition scratch slices.
func (d *DCHAG) ensureScratch() {
	if d.partIn != nil {
		return
	}
	k := len(d.Partials)
	d.partIn = make([]*tensor.Tensor, k)
	d.ipartIn = make([]*tensor.Tensor, k)
	d.outs = make([]*tensor.Tensor, k)
	d.iouts = make([]*tensor.Tensor, k)
}

// SetInferDType selects the arithmetic of the stage's no-grad Infer path:
// the tokenizer projection, every partial module, and the final shared
// layer. Channel embeddings and softmaxes stay float64.
func (d *DCHAG) SetInferDType(dt tensor.DType) {
	d.Tok.SetInferDType(dt)
	for _, partial := range d.Partials {
		partial.SetInferDType(dt)
	}
	d.Final.SetInferDType(dt)
}

// NewDCHAG constructs rank c.Rank()'s module with one partition per rank.
// Channels are EvenSplit across the group; the partial module of rank r
// draws its parameters from SubSeed(seed, seedPartial+r) and the final layer
// from SubSeed(seed, seedFinal) on every rank (replicated).
func NewDCHAG(cfg Config, c *comm.Communicator) *DCHAG {
	return NewDCHAGPartitioned(cfg, c, c.Size())
}

// NewDCHAGPartitioned constructs rank c.Rank()'s slice of the P-partition
// D-CHAG stage. The group size q must divide partitions; rank r owns
// partitions [r*P/q, (r+1)*P/q) and the channel range they cover. Partition
// k's partial module draws its parameters from SubSeed(seed, seedPartial+k)
// regardless of q, so every q realizes the identical logical model.
func NewDCHAGPartitioned(cfg Config, c *comm.Communicator, partitions int) *DCHAG {
	cfg.validate()
	q := c.Size()
	if partitions < 1 || cfg.Channels < partitions {
		panic(fmt.Sprintf("core: %d channels cannot form %d partitions", cfg.Channels, partitions))
	}
	if partitions%q != 0 {
		panic(fmt.Sprintf("core: partition count %d not divisible by %d ranks", partitions, q))
	}
	perRank := partitions / q
	partLo, partHi := c.Rank()*perRank, (c.Rank()+1)*perRank
	lo, _ := ChannelRange(cfg.Channels, partitions, partLo)
	_, hi := ChannelRange(cfg.Channels, partitions, partHi-1)
	d := &DCHAG{
		Cfg:        cfg,
		Comm:       c,
		ChLo:       lo,
		ChHi:       hi,
		Partitions: partitions,
		PartLo:     partLo,
		PartHi:     partHi,
		Tok:        nn.NewPatchEmbedShard("dchag.tok", lo, hi, cfg.ImgH, cfg.ImgW, cfg.Patch, cfg.Embed, nn.SubSeed(cfg.Seed, seedTok)),
		ChEmb:      nn.NewChannelEmbedShard("dchag.chemb", lo, hi, cfg.Embed, nn.SubSeed(cfg.Seed, seedChEmb)),
		Final:      NewCrossAttnAggregator("dchag.final", partitions, cfg.Embed, cfg.Heads, nn.SubSeed(cfg.Seed, seedFinal)),
	}
	for k := partLo; k < partHi; k++ {
		klo, khi := ChannelRange(cfg.Channels, partitions, k)
		d.Partials = append(d.Partials, NewHierarchicalAggregator(
			fmt.Sprintf("dchag.partial%d", k),
			BuildTreePlan(khi-klo, cfg.Tree), cfg.Kind, cfg.Embed, cfg.Heads,
			nn.SubSeed(cfg.Seed, seedPartial+k)))
	}
	pp := cfg.Patch * cfg.Patch
	d.Tok.Weight.MarkShard("dchag.tok.weight", 0, []int{cfg.Channels, pp, cfg.Embed}, lo, hi)
	d.Tok.Bias.MarkShard("dchag.tok.bias", 0, []int{cfg.Channels, cfg.Embed}, lo, hi)
	d.ChEmb.Table.MarkShard("dchag.chemb.chan", 0, []int{cfg.Channels, cfg.Embed}, lo, hi)
	return d
}

// LocalChannels returns the size of this rank's channel shard.
func (d *DCHAG) LocalChannels() int { return d.ChHi - d.ChLo }

// partChannels returns owned partition j's channel bounds relative to this
// rank's shard.
func (d *DCHAG) partChannels(j int) (lo, hi int) {
	glo, ghi := ChannelRange(d.Cfg.Channels, d.Partitions, d.PartLo+j)
	return glo - d.ChLo, ghi - d.ChLo
}

// Forward consumes this rank's image shard [B, Cl, H, W] and returns the
// aggregated representation [B, T, E], identical on every rank.
func (d *DCHAG) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != d.LocalChannels() {
		panic(fmt.Sprintf("core: DCHAG.Forward want [B,%d,%d,%d], got %v", d.LocalChannels(), d.Cfg.ImgH, d.Cfg.ImgW, x.Shape))
	}
	d.b = x.Shape[0]
	d.ensureScratch()
	t, e := d.Cfg.Tokens(), d.Cfg.Embed
	tok := d.Tok.Forward(x)
	emb := d.ChEmb.Forward(tok)
	for j, partial := range d.Partials {
		lo, hi := d.partChannels(j)
		d.partIn[j] = tensor.EnsureShape(d.partIn[j], d.b, hi-lo, t, e)
		tensor.SliceAxisInto(d.partIn[j], emb, 1, lo, hi)
		d.outs[j] = partial.Forward(d.partIn[j]) // [B, T, E]
	}
	// [k, B, T, E]: one token per owned partition.
	d.local = tensor.EnsureShape(d.local, len(d.Partials), d.b, t, e)
	tensor.StackInto(d.local, d.outs...)
	parts := d.Comm.AllGather(d.local)
	d.seq = tensor.EnsureShape(d.seq, d.b*t, d.Partitions, e)
	StackedToSeqInto(d.seq, parts) // [B*T, P, E]
	out := d.Final.Forward(d.seq)
	return out.Reshape(d.b, t, e)
}

// Infer runs Forward's computation without caching activations for
// backward — the serving fast path. The AllGather still runs: inference
// keeps exactly the forward communication pattern, one token per owned
// partition across the group.
func (d *DCHAG) Infer(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != d.LocalChannels() {
		panic(fmt.Sprintf("core: DCHAG.Infer want [B,%d,%d,%d], got %v", d.LocalChannels(), d.Cfg.ImgH, d.Cfg.ImgW, x.Shape))
	}
	b := x.Shape[0]
	d.ensureScratch()
	t, e := d.Cfg.Tokens(), d.Cfg.Embed
	tok := d.Tok.Infer(x)
	emb := d.ChEmb.Infer(tok)
	for j, partial := range d.Partials {
		lo, hi := d.partChannels(j)
		d.ipartIn[j] = tensor.EnsureShape(d.ipartIn[j], b, hi-lo, t, e)
		tensor.SliceAxisInto(d.ipartIn[j], emb, 1, lo, hi)
		d.iouts[j] = partial.Infer(d.ipartIn[j]) // [B, T, E]
	}
	d.ilocal = tensor.EnsureShape(d.ilocal, len(d.Partials), b, t, e)
	tensor.StackInto(d.ilocal, d.iouts...)
	parts := d.Comm.AllGather(d.ilocal)
	d.iseq = tensor.EnsureShape(d.iseq, b*t, d.Partitions, e)
	StackedToSeqInto(d.iseq, parts) // [B*T, P, E]
	out := d.Final.Infer(d.iseq)
	return out.Reshape(b, t, e)
}

// Backward consumes the gradient of the aggregated representation [B, T, E]
// (identical on every rank) and returns the gradient of this rank's image
// shard [B, Cl, H, W]. It performs no communication.
func (d *DCHAG) Backward(grad *tensor.Tensor) *tensor.Tensor {
	t, e := d.Cfg.Tokens(), d.Cfg.Embed
	if len(grad.Shape) != 3 || grad.Shape[0] != d.b || grad.Shape[1] != t || grad.Shape[2] != e {
		panic(fmt.Sprintf("core: DCHAG.Backward want [%d,%d,%d], got %v", d.b, t, e, grad.Shape))
	}
	dSeq := d.Final.Backward(grad.Reshape(d.b*t, e)) // [N, P, E]
	d.dLocal = tensor.EnsureShape(d.dLocal, d.b, t, e)
	d.dEmb = tensor.EnsureShape(d.dEmb, d.b, d.LocalChannels(), t, e)
	off := 0
	for j, partial := range d.Partials {
		// Each partial consumes dLocal fully during Backward, so one shared
		// buffer serves every partition in turn.
		SeqSliceInto(d.dLocal, dSeq, d.PartLo+j, d.b, t)
		part := partial.Backward(d.dLocal) // [B, ck, T, E]
		tensor.SetSliceAxis(d.dEmb, 1, off, part)
		off += part.Shape[1]
	}
	dTok := d.ChEmb.Backward(d.dEmb)
	return d.Tok.Backward(dTok)
}

// Params returns this rank's parameters: the tokenizer and channel-embedding
// shards, the rank-local partial modules, and the replicated final layer.
func (d *DCHAG) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, d.Tok.Params()...)
	ps = append(ps, d.ChEmb.Params()...)
	for _, partial := range d.Partials {
		ps = append(ps, partial.Params()...)
	}
	ps = append(ps, d.Final.Params()...)
	return ps
}

// LocalParams returns only the rank-local (non-replicated) parameters; the
// complement of ReplicatedParams.
func (d *DCHAG) LocalParams() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, d.Tok.Params()...)
	ps = append(ps, d.ChEmb.Params()...)
	for _, partial := range d.Partials {
		ps = append(ps, partial.Params()...)
	}
	return ps
}

// ReplicatedParams returns the parameters replicated across the D-CHAG group
// (the final shared cross-attention layer).
func (d *DCHAG) ReplicatedParams() []*nn.Param { return d.Final.Params() }

// RanksToSeq assembles per-rank tokens (P tensors of [B, T, E]) into the
// final layer's input layout [B*T, P, E].
func RanksToSeq(parts []*tensor.Tensor) *tensor.Tensor {
	b, t, e := parts[0].Shape[0], parts[0].Shape[1], parts[0].Shape[2]
	return RanksToSeqInto(tensor.New(b*t, len(parts), e), parts)
}

// RanksToSeqInto is RanksToSeq writing into out [B*T, P, E].
//
// dchag:hotpath — per-step token assembly after the AllGather.
func RanksToSeqInto(out *tensor.Tensor, parts []*tensor.Tensor) *tensor.Tensor {
	p := len(parts)
	b, t, e := parts[0].Shape[0], parts[0].Shape[1], parts[0].Shape[2]
	for pi, part := range parts {
		if len(part.Shape) != 3 || part.Shape[0] != b || part.Shape[1] != t || part.Shape[2] != e {
			panic(fmt.Sprintf("core: RanksToSeq inconsistent part shape %v", part.Shape))
		}
		for bi := 0; bi < b; bi++ {
			for ti := 0; ti < t; ti++ {
				src := part.Data[(bi*t+ti)*e : (bi*t+ti+1)*e]
				dst := out.Data[((bi*t+ti)*p+pi)*e : ((bi*t+ti)*p+pi+1)*e]
				copy(dst, src)
			}
		}
	}
	return out
}

// StackedToSeq assembles per-rank partition-token stacks (q tensors of
// [k, B, T, E], rank r holding partitions [r*k, (r+1)*k)) into the final
// layer's input layout [B*T, P, E] with P = q*k. With k = 1 it reduces to
// RanksToSeq on the unstacked parts.
func StackedToSeq(parts []*tensor.Tensor) *tensor.Tensor {
	if len(parts) == 0 {
		panic("core: StackedToSeq of zero parts")
	}
	k := parts[0].Shape[0]
	b, t, e := parts[0].Shape[1], parts[0].Shape[2], parts[0].Shape[3]
	return StackedToSeqInto(tensor.New(b*t, len(parts)*k, e), parts)
}

// StackedToSeqInto is StackedToSeq writing into out [B*T, P, E].
//
// dchag:hotpath — per-step token assembly after the AllGather.
func StackedToSeqInto(out *tensor.Tensor, parts []*tensor.Tensor) *tensor.Tensor {
	k := parts[0].Shape[0]
	p := len(parts) * k
	b, t, e := parts[0].Shape[1], parts[0].Shape[2], parts[0].Shape[3]
	for ri, part := range parts {
		if len(part.Shape) != 4 || part.Shape[0] != k || part.Shape[1] != b || part.Shape[2] != t || part.Shape[3] != e {
			panic(fmt.Sprintf("core: StackedToSeq inconsistent part shape %v", part.Shape))
		}
		for ki := 0; ki < k; ki++ {
			pi := ri*k + ki
			for bi := 0; bi < b; bi++ {
				for ti := 0; ti < t; ti++ {
					src := part.Data[((ki*b+bi)*t+ti)*e : ((ki*b+bi)*t+ti+1)*e]
					dst := out.Data[((bi*t+ti)*p+pi)*e : ((bi*t+ti)*p+pi+1)*e]
					copy(dst, src)
				}
			}
		}
	}
	return out
}

// SeqSlice extracts rank p's token gradient [B, T, E] from the final-layer
// input gradient [B*T, P, E]; the inverse of one rank's RanksToSeq slot.
func SeqSlice(seq *tensor.Tensor, p, b, t int) *tensor.Tensor {
	return SeqSliceInto(tensor.New(b, t, seq.Shape[2]), seq, p, b, t)
}

// SeqSliceInto is SeqSlice writing into out [B, T, E].
//
// dchag:hotpath — per-step token-gradient extraction.
func SeqSliceInto(out, seq *tensor.Tensor, p, b, t int) *tensor.Tensor {
	np, e := seq.Shape[1], seq.Shape[2]
	if seq.Shape[0] != b*t || p < 0 || p >= np {
		panic(fmt.Sprintf("core: SeqSlice(%d) invalid for shape %v", p, seq.Shape))
	}
	for bi := 0; bi < b; bi++ {
		for ti := 0; ti < t; ti++ {
			src := seq.Data[((bi*t+ti)*np+p)*e : ((bi*t+ti)*np+p+1)*e]
			dst := out.Data[(bi*t+ti)*e : (bi*t+ti+1)*e]
			copy(dst, src)
		}
	}
	return out
}
