package core

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestPerceiverAggregatorGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	a := NewPerceiverAggregator("p", 5, 3, 8, 2, 11)
	x := tensor.Randn(rng, 4, 5, 8)
	r := tensor.Randn(rng, 4, 8)
	loss := func() float64 { return dotAll(a.Forward(x), r) }
	loss()
	nn.ZeroGrads(a.Params())
	dx := a.Backward(r)
	checkGrad(t, "perceiver/x", x, dx, loss, 1e-5)
	checkGrad(t, "perceiver/latents", a.Latents.W, a.Latents.Grad, loss, 1e-5)
}

func TestPerceiverAggregatorShapesAndDeterminism(t *testing.T) {
	a1 := NewPerceiverAggregator("p", 6, 2, 4, 2, 7)
	a2 := NewPerceiverAggregator("p", 6, 2, 4, 2, 7)
	if tensor.MaxAbsDiff(a1.Latents.W, a2.Latents.W) != 0 {
		t.Fatal("same seed must give same latents")
	}
	x := tensor.Randn(tensor.NewRNG(2), 3, 6, 4)
	y := a1.Forward(x)
	if y.Shape[0] != 3 || y.Shape[1] != 4 {
		t.Fatalf("output shape = %v, want [3,4]", y.Shape)
	}
	if a1.GroupSize() != 6 {
		t.Fatal("GroupSize wrong")
	}
}

func TestPerceiverKindRegistered(t *testing.T) {
	if KindPerceiver.String() != "P" {
		t.Fatalf("KindPerceiver string = %q", KindPerceiver)
	}
	h := NewHierarchicalAggregator("h", BuildTreePlan(8, 2), KindPerceiver, 8, 2, 5)
	if _, ok := h.Levels[0][0].(*PerceiverAggregator); !ok {
		t.Fatal("hierarchical module must build perceiver layers for KindPerceiver")
	}
	// Forward/backward round trip through a perceiver hierarchy.
	rng := tensor.NewRNG(3)
	x := tensor.Randn(rng, 2, 8, 2, 8)
	y := h.Forward(x)
	nn.ZeroGrads(h.Params())
	dx := h.Backward(tensor.Ones(y.Shape...))
	if !tensor.SameShape(dx, x) {
		t.Fatalf("backward shape %v != input %v", dx.Shape, x.Shape)
	}
}

func TestDCHAGWithPerceiverPartialsMatchesReference(t *testing.T) {
	// The distributed-equals-serial property must hold for the Perceiver
	// extension exactly as for the paper's -C and -L variants.
	cfg := Config{
		Channels: 6, ImgH: 4, ImgW: 4, Patch: 2,
		Embed: 8, Heads: 2, Tree: 0, Kind: KindPerceiver, Seed: 909,
	}
	const p = 3
	rng := tensor.NewRNG(4)
	x := tensor.Randn(rng, 2, cfg.Channels, cfg.ImgH, cfg.ImgW)
	up := tensor.Randn(rng, 2, cfg.Tokens(), cfg.Embed)

	ref := NewReference(cfg, p)
	want := ref.Forward(x)
	nn.ZeroGrads(ref.Params())
	wantDimg := ref.Backward(up)

	outs, dimgs, g := runDCHAG(t, cfg, p, x, up)
	for r := 0; r < p; r++ {
		if diff := tensor.MaxAbsDiff(outs[r], want); diff > 1e-9 {
			t.Fatalf("rank %d forward differs by %g", r, diff)
		}
		lo, hi := ChannelRange(cfg.Channels, p, r)
		if diff := tensor.MaxAbsDiff(dimgs[r], tensor.SliceAxis(wantDimg, 1, lo, hi)); diff > 1e-9 {
			t.Fatalf("rank %d image grad differs by %g", r, diff)
		}
	}
	if b := g.Traffic().BytesInPhase("backward"); b != 0 {
		t.Fatalf("perceiver D-CHAG backward moved %d bytes, want 0", b)
	}
}

func TestPerceiverAttentionCostBetweenLinearAndCross(t *testing.T) {
	// The design-space position: parameter count of perceiver partials sits
	// between linear and cross-attention partials.
	const group, embed, heads = 16, 8, 2
	lin := nn.NumParams(NewLinearAggregator("l", group, embed, 1).Params())
	per := nn.NumParams(NewPerceiverAggregator("p", group, DefaultPerceiverLatents, embed, heads, 1).Params())
	cross := nn.NumParams(NewCrossAttnAggregator("c", group, embed, heads, 1).Params())
	if !(lin < per && per <= cross+DefaultPerceiverLatents*embed) {
		t.Fatalf("param ordering violated: linear %d, perceiver %d, cross %d", lin, per, cross)
	}
}

func TestPerceiverBackwardBeforeForwardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPerceiverAggregator("p", 2, 2, 4, 2, 1).Backward(tensor.New(1, 4))
}

func TestDCHAGPerceiverRunsUnderRace(t *testing.T) {
	// Smoke test across more ranks to exercise the rendezvous under load.
	cfg := Config{
		Channels: 8, ImgH: 2, ImgW: 2, Patch: 2,
		Embed: 4, Heads: 2, Tree: 2, Kind: KindPerceiver, Seed: 3,
	}
	x := tensor.Randn(tensor.NewRNG(5), 1, cfg.Channels, cfg.ImgH, cfg.ImgW)
	_, err := comm.Run(4, func(c *comm.Communicator) error {
		d := NewDCHAG(cfg, c)
		xs := tensor.SliceAxis(x, 1, d.ChLo, d.ChHi)
		y := d.Forward(xs)
		d.Backward(tensor.Ones(y.Shape...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
