package core

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// PerceiverAggregator reduces a channel group with a Perceiver-style fusion
// layer (paper Sec. 3.5: Aurora uses the Perceiver as its fusion module): M
// learned latent tokens cross-attend to the group's channel tokens and the
// latents' mean is the aggregated representation.
//
// Its attention map is M x g — between the linear cost of LinearAggregator
// and the quadratic cost of CrossAttnAggregator — making it the natural
// middle point of the design space the paper sketches. It satisfies
// GroupAggregator, so it can serve as the partial-channel layer of D-CHAG
// (KindPerceiver) with all distribution properties intact.
type PerceiverAggregator struct {
	Group   int
	Latents *nn.Param // [M, E] learned queries
	Attn    *nn.CrossAttention

	n, m int

	q, iq     *tensor.Tensor // broadcast latent queries (forward / infer)
	out, iout *tensor.Tensor // Forward / Infer output scratch
	dy        *tensor.Tensor // Backward scratch
}

// NewPerceiverAggregator builds a Perceiver fusion layer with m latent
// tokens over groups of the given size.
func NewPerceiverAggregator(name string, group, latents, embed, heads int, seed int64) *PerceiverAggregator {
	if latents < 1 {
		panic(fmt.Sprintf("core: perceiver needs at least one latent, got %d", latents))
	}
	rng := tensor.NewRNG(nn.SubSeed(seed, 1))
	return &PerceiverAggregator{
		Group:   group,
		Latents: nn.NewParam(name+".latents", tensor.RandnScaled(rng, 0.02, latents, embed)),
		Attn:    nn.NewCrossAttention(name+".xattn", embed, heads, nn.SubSeed(seed, 0)),
	}
}

// GroupSize returns the group size.
func (a *PerceiverAggregator) GroupSize() int { return a.Group }

// Forward reduces x [N, g, E] to [N, E]: the latents (broadcast over N)
// attend to the group tokens, and the latent outputs are averaged.
func (a *PerceiverAggregator) Forward(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[1] != a.Group {
		panic(fmt.Sprintf("core: PerceiverAggregator.Forward want [N,%d,E], got %v", a.Group, x.Shape))
	}
	a.n = x.Shape[0]
	a.m = a.Latents.W.Shape[0]
	e := x.Shape[2]
	a.q = tensor.EnsureShape(a.q, a.n, a.m, e)
	broadcastRows(a.q, a.Latents.W.Data, a.n)
	y := a.Attn.Forward(a.q, x) // [N, M, E]
	a.out = tensor.EnsureShape(a.out, a.n, e)
	return tensor.MeanAxisInto(a.out, y, 1) // [N, E]
}

// Infer reduces x [N, g, E] to [N, E] without caching activations for
// backward.
func (a *PerceiverAggregator) Infer(x *tensor.Tensor) *tensor.Tensor {
	if len(x.Shape) != 3 || x.Shape[1] != a.Group {
		panic(fmt.Sprintf("core: PerceiverAggregator.Infer want [N,%d,E], got %v", a.Group, x.Shape))
	}
	n, e := x.Shape[0], x.Shape[2]
	m := a.Latents.W.Shape[0]
	a.iq = tensor.EnsureShape(a.iq, n, m, e)
	broadcastRows(a.iq, a.Latents.W.Data, n)
	y := a.Attn.Infer(a.iq, x) // [N, M, E]
	a.iout = tensor.EnsureShape(a.iout, n, e)
	return tensor.MeanAxisInto(a.iout, y, 1) // [N, E]
}

// SetInferDType selects the arithmetic of the no-grad Infer path for the
// cross-attention layer.
func (a *PerceiverAggregator) SetInferDType(dt tensor.DType) { a.Attn.SetInferDType(dt) }

// broadcastRows tiles row (one latent block) n times into dst.
//
// dchag:hotpath — per-step latent broadcast.
func broadcastRows(dst *tensor.Tensor, row []float64, n int) {
	for i := 0; i < n; i++ {
		copy(dst.Data[i*len(row):(i+1)*len(row)], row)
	}
}

// Backward maps d [N, E] to the group input gradient [N, g, E], accumulating
// latent and attention gradients.
//
// dchag:hotpath — per-step latent-mean broadcast into layer-owned scratch.
func (a *PerceiverAggregator) Backward(d *tensor.Tensor) *tensor.Tensor {
	if a.n == 0 {
		panic("core: PerceiverAggregator.Backward before Forward")
	}
	e := d.Shape[len(d.Shape)-1]
	a.dy = tensor.EnsureShape(a.dy, a.n, a.m, e)
	inv := 1 / float64(a.m)
	for n := 0; n < a.n; n++ {
		src := d.Data[n*e : (n+1)*e]
		for m := 0; m < a.m; m++ {
			dst := a.dy.Data[(n*a.m+m)*e : (n*a.m+m+1)*e]
			for i, v := range src {
				dst[i] = v * inv
			}
		}
	}
	dq, dkv := a.Attn.Backward(a.dy)
	// The latents were broadcast over N rows; their gradient sums over rows.
	for n := 0; n < a.n; n++ {
		src := dq.Data[n*a.m*e : (n+1)*a.m*e]
		for i, v := range src {
			a.Latents.Grad.Data[i] += v
		}
	}
	return dkv
}

// Params returns the latents and the attention parameters.
func (a *PerceiverAggregator) Params() []*nn.Param {
	return append([]*nn.Param{a.Latents}, a.Attn.Params()...)
}
