package faultinject

import (
	"errors"
	"testing"

	"repro/internal/comm"
	"repro/internal/leakcheck"
)

// recoverKilled runs fn and returns the *Killed it panics with (nil if it
// returns normally).
func recoverKilled(fn func()) (k *Killed) {
	defer func() {
		if rec := recover(); rec != nil {
			var ok bool
			if k, ok = rec.(*Killed); !ok {
				panic(rec)
			}
		}
	}()
	fn()
	return nil
}

func TestStepFaultFiresOnceAtExactStep(t *testing.T) {
	p := NewPlan().KillAtStep(2, 5)
	if k := recoverKilled(func() { p.Step(2, 4) }); k != nil {
		t.Fatalf("fired at wrong step: %v", k)
	}
	if k := recoverKilled(func() { p.Step(1, 5) }); k != nil {
		t.Fatalf("fired on wrong rank: %v", k)
	}
	k := recoverKilled(func() { p.Step(2, 5) })
	if k == nil {
		t.Fatal("fault did not fire")
	}
	if k.Fault.Rank != 2 || k.Fault.Step != 5 || k.Fault.When != AtStep {
		t.Fatalf("wrong fault: %+v", k.Fault)
	}
	// Replays of the same step (post-rollback) must not re-kill.
	if k := recoverKilled(func() { p.Step(2, 5) }); k != nil {
		t.Fatalf("fault fired twice: %v", k)
	}
	if got := p.Fired(); len(got) != 1 {
		t.Fatalf("Fired() = %v", got)
	}
}

func TestPointSequencePreAndPost(t *testing.T) {
	// Rank 0 dies before its op 2; rank 1 dies after its op 1. The (pre,
	// post) pair around one op shares a sequence number.
	p := NewPlan().KillBeforeOp(0, 2).KillAfterOp(1, 1)
	step := func(id int) *Killed {
		return recoverKilled(func() { p.Point(id, comm.OpBarrier, true); p.Point(id, comm.OpBarrier, false) })
	}
	if k := step(0); k != nil {
		t.Fatalf("rank 0 op 0: %v", k)
	}
	if k := step(0); k != nil {
		t.Fatalf("rank 0 op 1: %v", k)
	}
	k := step(0)
	if k == nil || k.Fault.When != BeforeOp || k.Fault.Seq != 2 {
		t.Fatalf("rank 0 op 2: %v", k)
	}
	if k := step(1); k != nil {
		t.Fatalf("rank 1 op 0: %v", k)
	}
	k = step(1)
	if k == nil || k.Fault.When != AfterOp || k.Fault.Seq != 1 {
		t.Fatalf("rank 1 op 1: %v", k)
	}
}

func TestAdvanceScopesGenerationsAndResetsCounters(t *testing.T) {
	p := NewPlan().Kill(Fault{Gen: 1, Rank: 0, Seq: 0, When: BeforeOp})
	// Generation 0: the gen-1 fault is dormant even at a matching seq.
	if k := recoverKilled(func() { p.Point(0, comm.OpBarrier, true) }); k != nil {
		t.Fatalf("gen-1 fault fired in gen 0: %v", k)
	}
	p.Advance(1)
	if got := p.Generation(); got != 1 {
		t.Fatalf("Generation() = %d", got)
	}
	// Counters reset: this is op seq 0 of generation 1 again.
	k := recoverKilled(func() { p.Point(0, comm.OpBarrier, true) })
	if k == nil || k.Fault.Gen != 1 {
		t.Fatalf("gen-1 fault did not fire after Advance: %v", k)
	}
}

// TestKilledPropagatesThroughCommRun wires a plan into a real rendezvous
// group: the victim's panic must abort the group, release the peers, and
// surface as a typed *Killed through the run error chain.
func TestKilledPropagatesThroughCommRun(t *testing.T) {
	leakcheck.Check(t)
	plan := NewPlan().KillBeforeOp(1, 1)
	_, err := comm.Run(3, func(c *comm.Communicator) error {
		c.SetFaultInjector(plan, c.Rank())
		c.Barrier()
		c.Barrier() // rank 1 dies entering this one; others are released
		return nil
	})
	if err == nil {
		t.Fatal("run succeeded despite injected kill")
	}
	var k *Killed
	if !errors.As(err, &k) {
		t.Fatalf("err = %v, want *Killed in chain", err)
	}
	if k.Fault.Rank != 1 || k.Fault.Seq != 1 || k.Fault.When != BeforeOp {
		t.Fatalf("wrong fault surfaced: %+v", k.Fault)
	}
	if errors.Is(err, comm.ErrAborted) {
		t.Fatalf("err = %v reports the cascade, not the injected kill", err)
	}
}
