// Package faultinject provides a deterministic fault plan for the in-process
// distributed simulation: kill rank r at the top of step s, immediately
// before or after that rank's k-th communication operation, or in the middle
// of a checkpoint save — all expressed as data, so every chaos scenario in
// the elastic-training tests is a reproducible unit test rather than a
// sleep-and-kill race.
//
// A Plan implements comm.FaultInjector. Install it on a mesh with
// dist.Mesh.SetFaultInjector (which names each communicator by its world
// rank) and thread the same Plan through the training loop's Step and
// Checkpoint hooks. A fault fires by panicking with *Killed from the victim
// rank's own goroutine; the panic propagates through the normal
// abort-and-cascade machinery, so survivors observe exactly what they would
// on a real rank loss. Faults are scoped to an elastic generation
// (Fault.Gen, default 0); Advance moves the plan to the next generation and
// resets the per-rank operation counters.
package faultinject

import (
	"fmt"
	"sync"

	"repro/internal/comm"
)

// When identifies the trigger point of a Fault.
type When int

const (
	// AtStep kills the rank at the top of optimizer step Fault.Step, before
	// the step issues any collective.
	AtStep When = iota
	// BeforeOp kills the rank immediately before its Fault.Seq-th
	// communication operation of the generation (collectives and p2p,
	// counted per rank from zero).
	BeforeOp
	// AfterOp kills the rank immediately after its Fault.Seq-th
	// communication operation completes.
	AfterOp
	// InCheckpoint kills the rank during the checkpoint save that commits
	// step Fault.Step — after the rank's own shard is written, before the
	// manifest commit — leaving a partial, uncommitted step directory.
	InCheckpoint
)

func (w When) String() string {
	switch w {
	case AtStep:
		return "at-step"
	case BeforeOp:
		return "before-op"
	case AfterOp:
		return "after-op"
	case InCheckpoint:
		return "in-checkpoint"
	}
	return fmt.Sprintf("when(%d)", int(w))
}

// Fault is one planned rank kill. Gen scopes it to an elastic generation
// (0 for the initial mesh); Step is the global training step for AtStep and
// InCheckpoint faults; Seq is the per-rank operation index for BeforeOp and
// AfterOp faults.
type Fault struct {
	Gen  int
	Rank int
	Step int
	Seq  int
	When When
}

func (f Fault) String() string {
	switch f.When {
	case BeforeOp, AfterOp:
		return fmt.Sprintf("rank %d %s %d (gen %d)", f.Rank, f.When, f.Seq, f.Gen)
	default:
		return fmt.Sprintf("rank %d %s %d (gen %d)", f.Rank, f.When, f.Step, f.Gen)
	}
}

// Killed is the panic value (and resulting error cause) of an injected rank
// kill. dist surfaces it through the failed rank's error chain, so
// errors.As(err, new(*Killed)) distinguishes injected deaths from organic
// failures.
type Killed struct {
	Fault Fault
}

func (k *Killed) Error() string {
	return fmt.Sprintf("faultinject: killed %s", k.Fault)
}

// Plan is a deterministic set of Faults plus the runtime counters that
// decide when each fires. One Plan is shared by every rank goroutine of a
// run; all methods are safe for concurrent use.
type Plan struct {
	mu     sync.Mutex
	faults []Fault     // guarded by mu
	fired  []bool      // guarded by mu; parallel to faults
	gen    int         // guarded by mu; active generation
	ops    map[int]int // guarded by mu; injector id -> next operation seq
}

// NewPlan returns an empty fault plan (a valid injector that never fires).
func NewPlan() *Plan {
	return &Plan{ops: make(map[int]int)}
}

// Kill adds a fault to the plan and returns the plan for chaining.
func (p *Plan) Kill(f Fault) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = append(p.faults, f)
	p.fired = append(p.fired, false)
	return p
}

// KillAtStep plans a generation-0 kill of rank at the top of step.
func (p *Plan) KillAtStep(rank, step int) *Plan {
	return p.Kill(Fault{Rank: rank, Step: step, When: AtStep})
}

// KillBeforeOp plans a generation-0 kill of rank immediately before its
// seq-th communication operation.
func (p *Plan) KillBeforeOp(rank, seq int) *Plan {
	return p.Kill(Fault{Rank: rank, Seq: seq, When: BeforeOp})
}

// KillAfterOp plans a generation-0 kill of rank immediately after its
// seq-th communication operation.
func (p *Plan) KillAfterOp(rank, seq int) *Plan {
	return p.Kill(Fault{Rank: rank, Seq: seq, When: AfterOp})
}

// KillInCheckpoint plans a generation-0 kill of rank during the checkpoint
// save committing step (after its shard is written, before the manifest).
func (p *Plan) KillInCheckpoint(rank, step int) *Plan {
	return p.Kill(Fault{Rank: rank, Step: step, When: InCheckpoint})
}

// Advance scopes the plan to generation gen and resets the per-rank
// operation counters. The elastic supervisor calls it before launching each
// generation; no rank goroutines run concurrently with it.
func (p *Plan) Advance(gen int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gen = gen
	p.ops = make(map[int]int)
}

// Generation returns the active generation.
func (p *Plan) Generation() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gen
}

// Fired returns the faults that have fired so far, in plan order.
func (p *Plan) Fired() []Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []Fault
	for i, f := range p.faults {
		if p.fired[i] {
			out = append(out, f)
		}
	}
	return out
}

// takeLocked marks and returns the first unfired fault of the active generation
// matching the predicate. It must be called with p.mu held.
func (p *Plan) takeLocked(match func(Fault) bool) (Fault, bool) {
	for i, f := range p.faults {
		if !p.fired[i] && f.Gen == p.gen && match(f) {
			p.fired[i] = true
			return f, true
		}
	}
	return Fault{}, false
}

// Step is the training-loop hook at the top of global step s on rank. It
// fires AtStep faults.
func (p *Plan) Step(rank, step int) {
	p.mu.Lock()
	f, ok := p.takeLocked(func(f Fault) bool {
		return f.When == AtStep && f.Rank == rank && f.Step == step
	})
	p.mu.Unlock()
	if ok {
		panic(&Killed{Fault: f})
	}
}

// Checkpoint is the training-loop hook after rank writes its shard of the
// checkpoint committing step. It fires InCheckpoint faults.
func (p *Plan) Checkpoint(rank, step int) {
	p.mu.Lock()
	f, ok := p.takeLocked(func(f Fault) bool {
		return f.When == InCheckpoint && f.Rank == rank && f.Step == step
	})
	p.mu.Unlock()
	if ok {
		panic(&Killed{Fault: f})
	}
}

// Point implements comm.FaultInjector: id is the world rank (wired by
// dist.Mesh.SetFaultInjector), and each (pre, post) pair around one
// communication operation shares a sequence number; the counter advances
// after the post callback.
func (p *Plan) Point(id int, op comm.Op, pre bool) {
	p.mu.Lock()
	seq := p.ops[id]
	if !pre {
		p.ops[id] = seq + 1
	}
	want := BeforeOp
	if !pre {
		want = AfterOp
	}
	f, ok := p.takeLocked(func(f Fault) bool {
		return f.When == want && f.Rank == id && f.Seq == seq
	})
	p.mu.Unlock()
	if ok {
		panic(&Killed{Fault: f})
	}
}
