package dist

import (
	"fmt"
	"sync"

	"repro/internal/comm"
)

// axisGroups holds one axis's comm groups and the per-world-rank wiring
// into them. All fields are immutable after NewMesh.
type axisGroups struct {
	groups  []*comm.Group        // indexed by group id
	members [][]int              // group id -> world ranks, in axis-coordinate order
	groupOf []int                // world rank -> group id
	comms   []*comm.Communicator // world rank -> this rank's communicator in its group
}

// Mesh is the constructed device mesh: the logical spec, the physical
// topology, and one comm.Group per (axis, slice) with every world rank's
// communicator wired in. A single Mesh is shared read-only by all rank
// goroutines; each rank addresses its own communicators via the *Comm
// accessors.
type Mesh struct {
	Spec MeshSpec
	Topo Topology
	axes [numAxes]axisGroups
}

// NewMesh validates the spec against the topology and builds the per-axis
// groups. Most callers use RunMesh, which also drives the rank goroutines.
func NewMesh(spec MeshSpec, topo Topology) (*Mesh, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if spec.World() > topo.GCDs() {
		return nil, fmt.Errorf("dist: world size %d exceeds topology capacity %d (%d nodes x %d GCDs)",
			spec.World(), topo.GCDs(), topo.Nodes, topo.GPUsPerNode)
	}
	m := &Mesh{Spec: spec, Topo: topo}
	world := spec.World()
	for a := Axis(0); a < numAxes; a++ {
		extent := spec.extent(a)
		nGroups := world / extent
		ag := axisGroups{
			groups:  make([]*comm.Group, nGroups),
			members: make([][]int, nGroups),
			groupOf: make([]int, world),
			comms:   make([]*comm.Communicator, world),
		}
		for gid := range ag.groups {
			ag.groups[gid] = comm.NewGroup(extent)
			ag.members[gid] = make([]int, extent)
		}
		for r := 0; r < world; r++ {
			c := spec.CoordOf(r)
			gid := spec.groupKeyOf(a, c)
			pos := c.axisOf(a)
			ag.groupOf[r] = gid
			ag.members[gid][pos] = r
			ag.comms[r] = ag.groups[gid].Comm(pos)
		}
		m.axes[a] = ag
	}
	return m, nil
}

// World returns the mesh's total rank count.
func (m *Mesh) World() int { return m.Spec.World() }

// Comm returns the world rank's communicator within its group along the
// given axis. The communicator's Rank() is the rank's coordinate along that
// axis, not the world rank.
func (m *Mesh) Comm(a Axis, rank int) *comm.Communicator {
	if rank < 0 || rank >= m.World() {
		panic(fmt.Sprintf("dist: rank %d out of range [0,%d)", rank, m.World()))
	}
	return m.axes[a].comms[rank]
}

// TPComm returns the world rank's tensor-parallel (D-CHAG) communicator.
func (m *Mesh) TPComm(rank int) *comm.Communicator { return m.Comm(AxisTP, rank) }

// FSDPComm returns the world rank's FSDP communicator.
func (m *Mesh) FSDPComm(rank int) *comm.Communicator { return m.Comm(AxisFSDP, rank) }

// DPComm returns the world rank's data-parallel communicator.
func (m *Mesh) DPComm(rank int) *comm.Communicator { return m.Comm(AxisDP, rank) }

// abortAll releases every rank blocked in any collective of any group of
// the mesh, so one rank's failure cannot deadlock survivors that are
// rendezvousing on a different axis.
func (m *Mesh) abortAll() {
	for a := range m.axes {
		for _, g := range m.axes[a].groups {
			g.Abort()
		}
	}
}

// RunMesh builds the mesh and runs fn once per world rank, each on its own
// goroutine, then waits for all of them. When any rank's fn returns an
// error or panics, every group of the mesh is aborted so ranks blocked in
// collectives are released (they observe comm.ErrAborted) instead of
// hanging at the rendezvous. The returned error is the root cause — a
// rank's own error or panic — in preference to the ErrAborted cascades it
// triggers in other ranks. The mesh is returned even on error so callers
// can inspect traffic ledgers.
func RunMesh(spec MeshSpec, topo Topology, fn func(rank int, m *Mesh) error) (*Mesh, error) {
	m, err := NewMesh(spec, topo)
	if err != nil {
		return nil, err
	}
	world := spec.World()
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = comm.RankPanicError("dist", rank, rec)
					m.abortAll()
				}
			}()
			if err := fn(rank, m); err != nil {
				errs[rank] = fmt.Errorf("dist: rank %d: %w", rank, err)
				m.abortAll()
			}
		}(r)
	}
	wg.Wait()
	return m, comm.RootCause(errs)
}
