package dist

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/comm"
)

// RankError is one rank's own failure (error return or panic) inside a mesh
// run — a root cause, as opposed to the ErrAborted cascades it triggers in
// other ranks.
type RankError struct {
	Rank int
	Err  error
}

// MeshError reports every rank that failed on its own during a mesh run,
// separately from the ranks merely released from aborted collectives. The
// elastic supervisor uses the failed set to decide who died; errors.Is and
// errors.As see through to each failed rank's cause (and never to the
// cascades, so errors.Is(err, comm.ErrAborted) stays false whenever a root
// cause exists).
type MeshError struct {
	Failed   []RankError // at least one entry, in rank order
	Released []int       // ranks released from aborted collectives, in rank order
}

func (e *MeshError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dist: %d rank(s) failed: ", len(e.Failed))
	for i, re := range e.Failed {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(re.Err.Error())
	}
	if len(e.Released) > 0 {
		fmt.Fprintf(&b, " (%d rank(s) released from aborted collectives)", len(e.Released))
	}
	return b.String()
}

// Unwrap exposes the failed ranks' errors — root causes only — to
// errors.Is/errors.As.
func (e *MeshError) Unwrap() []error {
	out := make([]error, len(e.Failed))
	for i, re := range e.Failed {
		out[i] = re.Err
	}
	return out
}

// FailedRanks returns the set of ranks that failed on their own, in rank
// order.
func (e *MeshError) FailedRanks() []int {
	out := make([]int, len(e.Failed))
	for i, re := range e.Failed {
		out[i] = re.Rank
	}
	return out
}

// FailedRanks extracts the set of root-cause failed ranks from a mesh run
// error (possibly wrapped). It returns nil when err carries no MeshError —
// e.g. a pure cascade or a pre-run validation failure.
func FailedRanks(err error) []int {
	var me *MeshError
	if errors.As(err, &me) {
		return me.FailedRanks()
	}
	return nil
}

// meshError classifies per-rank errors into root causes and cascades: a
// MeshError when any rank failed on its own, the first cascade error when
// the run only observed releases (surfacing the abort), nil when every rank
// succeeded.
func meshError(errs []error) error {
	var failed []RankError
	var released []int
	var cascade error
	for rank, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, comm.ErrAborted):
			released = append(released, rank)
			if cascade == nil {
				cascade = err
			}
		default:
			failed = append(failed, RankError{Rank: rank, Err: err})
		}
	}
	if len(failed) == 0 {
		return cascade
	}
	return &MeshError{Failed: failed, Released: released}
}

// axisGroups holds one axis's comm groups and the per-world-rank wiring
// into them. All fields are immutable after NewMesh.
type axisGroups struct {
	groups  []*comm.Group        // indexed by group id
	members [][]int              // group id -> world ranks, in axis-coordinate order
	groupOf []int                // world rank -> group id
	comms   []*comm.Communicator // world rank -> this rank's communicator in its group
}

// Mesh is the constructed device mesh: the logical spec, the physical
// topology, and one comm.Group per (axis, slice) with every world rank's
// communicator wired in. A single Mesh is shared read-only by all rank
// goroutines; each rank addresses its own communicators via the *Comm
// accessors.
type Mesh struct {
	Spec MeshSpec
	Topo Topology
	axes [numAxes]axisGroups
}

// NewMesh validates the spec against the topology and builds the per-axis
// groups. Most callers use RunMesh, which also drives the rank goroutines.
func NewMesh(spec MeshSpec, topo Topology) (*Mesh, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if spec.World() > topo.GCDs() {
		return nil, fmt.Errorf("dist: world size %d exceeds topology capacity %d (%d nodes x %d GCDs)",
			spec.World(), topo.GCDs(), topo.Nodes, topo.GPUsPerNode)
	}
	m := &Mesh{Spec: spec, Topo: topo}
	world := spec.World()
	for a := Axis(0); a < numAxes; a++ {
		extent := spec.extent(a)
		nGroups := world / extent
		ag := axisGroups{
			groups:  make([]*comm.Group, nGroups),
			members: make([][]int, nGroups),
			groupOf: make([]int, world),
			comms:   make([]*comm.Communicator, world),
		}
		for gid := range ag.groups {
			ag.groups[gid] = comm.NewGroup(extent)
			ag.members[gid] = make([]int, extent)
		}
		for r := 0; r < world; r++ {
			c := spec.CoordOf(r)
			gid := spec.groupKeyOf(a, c)
			pos := c.axisOf(a)
			ag.groupOf[r] = gid
			ag.members[gid][pos] = r
			ag.comms[r] = ag.groups[gid].Comm(pos)
		}
		m.axes[a] = ag
	}
	return m, nil
}

// World returns the mesh's total rank count.
func (m *Mesh) World() int { return m.Spec.World() }

// Comm returns the world rank's communicator within its group along the
// given axis. The communicator's Rank() is the rank's coordinate along that
// axis, not the world rank.
func (m *Mesh) Comm(a Axis, rank int) *comm.Communicator {
	if rank < 0 || rank >= m.World() {
		panic(fmt.Sprintf("dist: rank %d out of range [0,%d)", rank, m.World()))
	}
	return m.axes[a].comms[rank]
}

// TPComm returns the world rank's tensor-parallel (D-CHAG) communicator.
func (m *Mesh) TPComm(rank int) *comm.Communicator { return m.Comm(AxisTP, rank) }

// FSDPComm returns the world rank's FSDP communicator.
func (m *Mesh) FSDPComm(rank int) *comm.Communicator { return m.Comm(AxisFSDP, rank) }

// DPComm returns the world rank's data-parallel communicator.
func (m *Mesh) DPComm(rank int) *comm.Communicator { return m.Comm(AxisDP, rank) }

// SetFaultInjector installs f on every communicator of the mesh, naming
// each by its world rank. Call it after NewMesh and before Run: the
// injector then observes one global per-rank operation sequence across all
// axis groups, which is what makes faultinject plans deterministic.
func (m *Mesh) SetFaultInjector(f comm.FaultInjector) {
	for a := range m.axes {
		for r, c := range m.axes[a].comms {
			c.SetFaultInjector(f, r)
		}
	}
}

// SetObserver installs per-communicator observers built by factory, which
// is called once per (axis, world rank) and may return nil to leave that
// communicator unobserved. Call it after NewMesh and before Run, mirroring
// SetFaultInjector. Each communicator gets its own observer instance
// because observers are not required to be goroutine-safe and carry
// per-communicator open-span state (see comm.Observer).
func (m *Mesh) SetObserver(factory func(a Axis, rank int) comm.Observer) {
	for a := range m.axes {
		for r, c := range m.axes[a].comms {
			if o := factory(Axis(a), r); o != nil {
				c.SetObserver(o)
			}
		}
	}
}

// abortGroupsOf releases the groups a departed rank belongs to, one per
// axis. Aborting only those — not the whole mesh — keeps failure handling
// deterministic: a group of pure survivors completes its in-flight
// collective regardless of goroutine scheduling, and is torn down only when
// one of its own members departs (directly, or released from another
// group). The cascade reaches exactly the ranks whose collective graph
// depends on a dead rank.
func (m *Mesh) abortGroupsOf(rank int) {
	for a := range m.axes {
		m.axes[a].groups[m.axes[a].groupOf[rank]].Abort()
	}
}

// Run drives fn once per world rank of an already-built mesh, each on its
// own goroutine, and waits for all of them. When a rank's fn returns an
// error or panics, the groups that rank belongs to are aborted so peers
// blocked in its collectives are released (they observe comm.ErrAborted)
// instead of hanging at the rendezvous; releases propagate group-by-group
// as the released ranks depart in turn. The returned error is a *MeshError
// carrying the full set of root-cause failed ranks (never the cascades),
// or the first cascade error when no rank failed on its own.
func (m *Mesh) Run(fn func(rank int, m *Mesh) error) error {
	world := m.World()
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = comm.RankPanicError("dist", rank, rec)
					m.abortGroupsOf(rank)
				}
			}()
			if err := fn(rank, m); err != nil {
				errs[rank] = fmt.Errorf("dist: rank %d: %w", rank, err)
				m.abortGroupsOf(rank)
			}
		}(r)
	}
	wg.Wait()
	return meshError(errs)
}

// RunMesh builds the mesh and runs fn on it; see Mesh.Run for the failure
// semantics. The mesh is returned even on error so callers can inspect
// traffic ledgers.
func RunMesh(spec MeshSpec, topo Topology, fn func(rank int, m *Mesh) error) (*Mesh, error) {
	m, err := NewMesh(spec, topo)
	if err != nil {
		return nil, err
	}
	return m, m.Run(fn)
}
