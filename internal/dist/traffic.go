package dist

import "repro/internal/comm"

// Per-axis traffic accessors. Every group of an axis keeps its own
// comm.Traffic ledger; these roll the ledgers up and classify each group as
// intra-node (all member ranks placed on one node of the Topology) or
// inter-node (the group's ring crosses a node boundary). They exist so
// tests can assert the paper's communication claims quantitatively: under
// Frontier placement TP traffic stays intra-node and the per-step DP
// gradient AllReduce is the only inter-node collective.

// GroupCount returns the number of groups along the axis
// (world / axis extent).
func (m *Mesh) GroupCount(a Axis) int { return len(m.axes[a].groups) }

// GroupRanks returns the world ranks of the axis group, in axis-coordinate
// order. The returned slice is a copy.
func (m *Mesh) GroupRanks(a Axis, group int) []int {
	return append([]int(nil), m.axes[a].members[group]...)
}

// GroupOf returns the index of the axis group the world rank belongs to.
func (m *Mesh) GroupOf(a Axis, rank int) int { return m.axes[a].groupOf[rank] }

// GroupTraffic returns the traffic ledger of the axis group.
func (m *Mesh) GroupTraffic(a Axis, group int) *comm.Traffic {
	return m.axes[a].groups[group].Traffic()
}

// GroupIntraNode reports whether every member of the axis group is placed
// on the same node, i.e. none of the group's collective traffic crosses a
// node boundary.
func (m *Mesh) GroupIntraNode(a Axis, group int) bool {
	members := m.axes[a].members[group]
	node := m.Topo.NodeOf(members[0])
	for _, r := range members[1:] {
		if m.Topo.NodeOf(r) != node {
			return false
		}
	}
	return true
}

// AxisBytes returns the total bytes recorded across all groups of the axis.
func (m *Mesh) AxisBytes(a Axis) int64 {
	var total int64
	for _, g := range m.axes[a].groups {
		total += g.Traffic().TotalBytes()
	}
	return total
}

// IntraNodeBytes returns the axis bytes carried by groups contained within
// a single node.
func (m *Mesh) IntraNodeBytes(a Axis) int64 {
	return m.nodeBytes(a, true)
}

// InterNodeBytes returns the axis bytes carried by groups whose members
// span more than one node.
func (m *Mesh) InterNodeBytes(a Axis) int64 {
	return m.nodeBytes(a, false)
}

func (m *Mesh) nodeBytes(a Axis, intra bool) int64 {
	var total int64
	for gid, g := range m.axes[a].groups {
		if m.GroupIntraNode(a, gid) == intra {
			total += g.Traffic().TotalBytes()
		}
	}
	return total
}

// AxisCallsInPhase returns the total collective calls (excluding barriers)
// recorded under the phase label across all groups of the axis. Each
// participating rank records one call per collective, so a single
// group-wide collective contributes the group size.
func (m *Mesh) AxisCallsInPhase(a Axis, phase string) int {
	total := 0
	for _, g := range m.axes[a].groups {
		total += g.Traffic().CallsInPhase(phase)
	}
	return total
}

// InterNodeCallsInPhase is AxisCallsInPhase restricted to groups spanning
// more than one node.
func (m *Mesh) InterNodeCallsInPhase(a Axis, phase string) int {
	total := 0
	for gid, g := range m.axes[a].groups {
		if !m.GroupIntraNode(a, gid) {
			total += g.Traffic().CallsInPhase(phase)
		}
	}
	return total
}
