package dist

import (
	"fmt"

	"repro/internal/hw"
)

// The dist→hw bridge: every axis group of a mesh spec, placed on a
// Topology, induces an hw.Placement (the node of each group member, in ring
// order). The hw cost functions price ring collectives from these
// placements, which is how the step-time simulator in internal/perfmodel
// knows that a TP group on one node rides Infinity Fabric while a DP group
// striding across nodes pays the Slingshot share. Everything here is pure
// arithmetic on (MeshSpec, Topology) — no Mesh (and no comm groups) needed,
// so sweeps can price thousands of shapes cheaply.

// AxisGroupCount returns the number of groups along the axis
// (world / axis extent), computed from the spec alone.
func (s MeshSpec) AxisGroupCount(a Axis) int { return s.World() / s.extent(a) }

// AxisGroupRanks returns the world ranks of axis group gid in
// axis-coordinate order, computed from the spec alone. It matches
// Mesh.GroupRanks for the same spec. It panics when gid is out of range.
func (s MeshSpec) AxisGroupRanks(a Axis, gid int) []int {
	if gid < 0 || gid >= s.AxisGroupCount(a) {
		panic(fmt.Sprintf("dist: axis %s group %d out of range [0,%d)", a, gid, s.AxisGroupCount(a)))
	}
	// Invert groupKeyOf: gid linearizes the two non-axis coordinates.
	var base Coord
	switch a {
	case AxisTP:
		base = Coord{FSDP: gid % s.FSDP, DP: gid / s.FSDP}
	case AxisFSDP:
		base = Coord{TP: gid % s.TP, DP: gid / s.TP}
	case AxisDP:
		base = Coord{TP: gid % s.TP, FSDP: gid / s.TP}
	default:
		panic(fmt.Sprintf("dist: unknown axis %d", int(a)))
	}
	ranks := make([]int, s.extent(a))
	for i := range ranks {
		c := base
		switch a {
		case AxisTP:
			c.TP = i
		case AxisFSDP:
			c.FSDP = i
		case AxisDP:
			c.DP = i
		}
		ranks[i] = s.RankOf(c)
	}
	return ranks
}

// GroupPlacement converts one axis group of the spec into the hw ring
// placement induced by the topology: element i is the node hosting the
// group's rank of axis coordinate i. It panics when the spec does not fit
// the topology.
func GroupPlacement(s MeshSpec, t Topology, a Axis, gid int) hw.Placement {
	ranks := s.AxisGroupRanks(a, gid)
	p := make(hw.Placement, len(ranks))
	for i, r := range ranks {
		p[i] = t.NodeOf(r)
	}
	return p
}

// AxisPlacements returns the placements of every group along the axis,
// indexed by group id.
func AxisPlacements(s MeshSpec, t Topology, a Axis) []hw.Placement {
	out := make([]hw.Placement, s.AxisGroupCount(a))
	for gid := range out {
		out[gid] = GroupPlacement(s, t, a, gid)
	}
	return out
}

// WorstAxisPlacement returns the placement of the axis group with the
// slowest ring link — an inter-node group when any group of the axis
// crosses a node boundary, otherwise the first group. Since all groups of
// an axis have equal size and step in lockstep with their peers, the worst
// group's collective time is the axis's collective time.
func WorstAxisPlacement(s MeshSpec, t Topology, a Axis) hw.Placement {
	placements := AxisPlacements(s, t, a)
	for _, p := range placements {
		if !p.IntraNode() {
			return p
		}
	}
	return placements[0]
}

// GroupPlacement returns the hw ring placement of a built mesh's axis group
// under the mesh's own topology.
func (m *Mesh) GroupPlacement(a Axis, gid int) hw.Placement {
	return GroupPlacement(m.Spec, m.Topo, a, gid)
}

// AxisWireSeconds prices the traffic the axis's groups actually recorded on
// the machine model: each group's mean per-rank wire bytes move through the
// group's slowest link, and the axis time is the slowest group's (groups of
// one axis run concurrently). Latency is not modeled here — this is the
// bandwidth-bound replay of a measured run, complementing the analytic
// per-collective times in internal/perfmodel.
func (m *Mesh) AxisWireSeconds(machine hw.Machine, a Axis) float64 {
	extent := m.Spec.extent(a)
	worst := 0.0
	for gid, g := range m.axes[a].groups {
		perRank := g.Traffic().TotalBytes() / int64(extent)
		if t := machine.WireTime(m.GroupPlacement(a, gid), perRank); t > worst {
			worst = t
		}
	}
	return worst
}
