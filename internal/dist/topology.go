package dist

import "fmt"

// Topology is the physical placement model: a cluster of identical nodes,
// each hosting GPUsPerNode GCDs. World rank r occupies GCD r in dense
// order, so node boundaries fall every GPUsPerNode ranks.
type Topology struct {
	Nodes       int
	GPUsPerNode int
}

// Frontier returns the placement of the paper's evaluation machine: the
// given number of nodes with 8 GCDs each (4 MI250X, 2 GCDs per module).
func Frontier(nodes int) Topology {
	return Topology{Nodes: nodes, GPUsPerNode: 8}
}

// Validate reports whether the topology has at least one node and one GCD
// per node.
func (t Topology) Validate() error {
	if t.Nodes < 1 || t.GPUsPerNode < 1 {
		return fmt.Errorf("dist: invalid topology Nodes=%d GPUsPerNode=%d", t.Nodes, t.GPUsPerNode)
	}
	return nil
}

// GCDs returns the total device count of the topology.
func (t Topology) GCDs() int { return t.Nodes * t.GPUsPerNode }

// NodeOf returns the node hosting the given world rank. It panics when the
// rank does not fit the topology.
func (t Topology) NodeOf(rank int) int {
	if rank < 0 || rank >= t.GCDs() {
		panic(fmt.Sprintf("dist: rank %d outside topology of %d GCDs", rank, t.GCDs()))
	}
	return rank / t.GPUsPerNode
}
