package dist

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/leakcheck"
	"repro/internal/tensor"
)

// TestRunMeshCommunicatorsWired runs a real mesh program: summing a
// constant over each axis group must yield the axis extent, and summing the
// off-axis coordinates must agree across the group (they are what members
// share).
func TestRunMeshCommunicatorsWired(t *testing.T) {
	leakcheck.Check(t)
	spec := MeshSpec{TP: 2, FSDP: 3, DP: 2}
	m, err := RunMesh(spec, Topology{Nodes: 1, GPUsPerNode: spec.World()}, func(rank int, m *Mesh) error {
		c := m.Spec.CoordOf(rank)
		if got := m.TPComm(rank).AllReduceScalarSum(1); got != float64(spec.TP) {
			return fmt.Errorf("rank %d: TP group size %v", rank, got)
		}
		if got := m.FSDPComm(rank).AllReduceScalarSum(1); got != float64(spec.FSDP) {
			return fmt.Errorf("rank %d: FSDP group size %v", rank, got)
		}
		if got := m.DPComm(rank).AllReduceScalarSum(1); got != float64(spec.DP) {
			return fmt.Errorf("rank %d: DP group size %v", rank, got)
		}
		// Every member of my TP group shares my (FSDP, DP) coordinate, so the
		// group mean of that linearized value must equal my own.
		key := float64(c.FSDP + spec.FSDP*c.DP)
		if got := m.TPComm(rank).AllReduceScalarSum(key) / float64(spec.TP); got != key {
			return fmt.Errorf("rank %d: TP group mixes replicas (mean %v, want %v)", rank, got, key)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.World() != spec.World() {
		t.Fatalf("World() = %d", m.World())
	}
}

// TestRunMeshTrafficClaims drives the paper's hybrid communication pattern
// on 2 Frontier nodes and asserts its placement claims quantitatively:
// TP and FSDP collectives stay inside a node, and the per-step DP
// AllReduce is the only inter-node collective.
func TestRunMeshTrafficClaims(t *testing.T) {
	spec := MeshSpec{TP: 2, FSDP: 4, DP: 2} // TP x FSDP fills one node; DP spans the two
	const steps = 3
	m, err := RunMesh(spec, Frontier(spec.World()/8), func(rank int, m *Mesh) error {
		tpc, fc, dpc := m.TPComm(rank), m.FSDPComm(rank), m.DPComm(rank)
		for s := 0; s < steps; s++ {
			tpc.SetPhase("forward")
			tpc.AllGather(tensor.Full(float64(rank), 4))
			fc.SetPhase("forward")
			fc.AllGatherConcat(tensor.Full(1, 4), 0)
			dpc.SetPhase("dp-sync")
			dpc.AllReduceMean(tensor.Full(float64(rank), 8))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.AxisBytes(AxisTP) == 0 || m.AxisBytes(AxisFSDP) == 0 {
		t.Fatal("intra-node axes moved no bytes; test is vacuous")
	}
	if b := m.InterNodeBytes(AxisTP); b != 0 {
		t.Fatalf("TP moved %d inter-node bytes, want 0", b)
	}
	if b := m.InterNodeBytes(AxisFSDP); b != 0 {
		t.Fatalf("FSDP moved %d inter-node bytes, want 0", b)
	}
	if b := m.IntraNodeBytes(AxisDP); b != 0 {
		t.Fatalf("DP recorded %d intra-node bytes; its groups must span nodes", b)
	}
	if b := m.InterNodeBytes(AxisDP); b == 0 {
		t.Fatal("DP moved no inter-node bytes")
	}
	// One DP AllReduce per rank per step, all of it inter-node, none of it
	// outside the dp-sync phase.
	if got, want := m.InterNodeCallsInPhase(AxisDP, "dp-sync"), steps*spec.World(); got != want {
		t.Fatalf("inter-node dp-sync calls = %d, want %d", got, want)
	}
	if got := m.AxisCallsInPhase(AxisDP, "forward"); got != 0 {
		t.Fatalf("DP axis recorded %d forward-phase calls, want 0", got)
	}
}

// TestRunMeshRankErrorAbortsCollectives is the deadlock-regression test:
// one rank fails while the others are blocked in collectives — including
// collectives on a *different* axis than any group the failing rank shares
// with them — and RunMesh must surface the root-cause error within the
// timeout instead of hanging the survivors at the rendezvous.
func TestRunMeshRankErrorAbortsCollectives(t *testing.T) {
	leakcheck.Check(t)
	spec := MeshSpec{TP: 2, FSDP: 1, DP: 2}
	boom := errors.New("boom: simulated rank failure")
	type result struct {
		m   *Mesh
		err error
	}
	done := make(chan result, 1)
	go func() {
		m, err := RunMesh(spec, Topology{Nodes: 1, GPUsPerNode: spec.World()}, func(rank int, m *Mesh) error {
			if rank == 0 {
				return boom
			}
			// Rank 2 blocks in rank 0's DP group {0,2}; ranks 1 and 3 form
			// a healthy DP group, complete both AllReduces together, then
			// strand at the TP Barrier waiting on ranks 0 and 2 — a group
			// the failed rank belongs to only transitively. All must be
			// released: the abort cascades group-by-group as each released
			// rank's panic propagates (swallowing it would strand peers).
			m.DPComm(rank).AllReduceScalarSum(1)
			m.DPComm(rank).AllReduceScalarSum(1)
			m.TPComm(rank).Barrier()
			return nil
		})
		done <- result{m, err}
	}()
	select {
	case res := <-done:
		if res.err == nil {
			t.Fatal("RunMesh returned nil error")
		}
		if !errors.Is(res.err, boom) {
			t.Fatalf("err = %v, want root cause %v", res.err, boom)
		}
		if errors.Is(res.err, comm.ErrAborted) {
			t.Fatalf("err = %v reports the abort cascade, not the root cause", res.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunMesh deadlocked after a rank error")
	}
}

// TestRunMeshRankPanicRecovered: a panicking rank must abort the mesh and
// be reported, not crash the process or hang the others.
func TestRunMeshRankPanicRecovered(t *testing.T) {
	leakcheck.Check(t)
	spec := MeshSpec{TP: 3, FSDP: 1, DP: 1}
	_, err := RunMesh(spec, Topology{Nodes: 1, GPUsPerNode: spec.World()}, func(rank int, m *Mesh) error {
		if rank == 1 {
			panic("rank one exploded")
		}
		defer func() { recover() }()
		m.TPComm(rank).Barrier()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "exploded") {
		t.Fatalf("err = %v, want panic text", err)
	}
}

// TestRunMeshAllAborted: when every surviving rank is released by the
// abort (none swallows the panic), the cascade error is still reported
// rather than a nil error — but the root cause wins when present.
func TestRunMeshAllAborted(t *testing.T) {
	leakcheck.Check(t)
	spec := MeshSpec{TP: 2, FSDP: 1, DP: 1}
	boom := errors.New("root cause")
	_, err := RunMesh(spec, Topology{Nodes: 1, GPUsPerNode: spec.World()}, func(rank int, m *Mesh) error {
		if rank == 0 {
			return boom
		}
		m.TPComm(rank).Barrier() // released by abort; panic propagates to RunMesh's recover
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestRunMeshValidation(t *testing.T) {
	if _, err := RunMesh(MeshSpec{TP: 0, FSDP: 1, DP: 1}, Frontier(1), nil); err == nil {
		t.Fatal("want error for invalid spec")
	}
	if _, err := RunMesh(MeshSpec{TP: 4, FSDP: 4, DP: 1}, Frontier(1), nil); err == nil {
		t.Fatal("want error for world 16 on 8 GCDs")
	}
	if _, err := RunMesh(MeshSpec{TP: 2, FSDP: 1, DP: 1}, Topology{Nodes: 1, GPUsPerNode: 0}, nil); err == nil {
		t.Fatal("want error for invalid topology")
	}
}

// TestRunMeshUnderfilledTopology: a world smaller than the topology is
// allowed (partial allocation of a cluster) and placement still follows
// dense rank order.
func TestRunMeshUnderfilledTopology(t *testing.T) {
	spec := MeshSpec{TP: 2, FSDP: 1, DP: 1}
	m, err := RunMesh(spec, Frontier(2), func(rank int, m *Mesh) error {
		m.TPComm(rank).Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.GroupIntraNode(AxisTP, 0) {
		t.Fatal("2 ranks on 16 GCDs must share node 0")
	}
}
