package dist

import (
	"testing"
)

// specGrid is the mesh-shape grid the property tests sweep: degenerate
// single-axis shapes, the paper's hybrid configurations, and uneven mixes.
var specGrid = []MeshSpec{
	{TP: 1, FSDP: 1, DP: 1},
	{TP: 2, FSDP: 1, DP: 1},
	{TP: 1, FSDP: 3, DP: 1},
	{TP: 1, FSDP: 1, DP: 4},
	{TP: 2, FSDP: 1, DP: 2},
	{TP: 2, FSDP: 2, DP: 2},
	{TP: 2, FSDP: 4, DP: 2},
	{TP: 4, FSDP: 2, DP: 3},
	{TP: 8, FSDP: 1, DP: 2},
	{TP: 2, FSDP: 3, DP: 5},
}

func TestRankCoordBijection(t *testing.T) {
	for _, spec := range specGrid {
		seen := make(map[Coord]bool, spec.World())
		for r := 0; r < spec.World(); r++ {
			c := spec.CoordOf(r)
			if c.TP < 0 || c.TP >= spec.TP || c.FSDP < 0 || c.FSDP >= spec.FSDP || c.DP < 0 || c.DP >= spec.DP {
				t.Fatalf("%+v: CoordOf(%d) = %+v out of range", spec, r, c)
			}
			if seen[c] {
				t.Fatalf("%+v: coord %+v produced twice", spec, c)
			}
			seen[c] = true
			if back := spec.RankOf(c); back != r {
				t.Fatalf("%+v: RankOf(CoordOf(%d)) = %d", spec, r, back)
			}
		}
		if len(seen) != spec.World() {
			t.Fatalf("%+v: %d distinct coords for world %d", spec, len(seen), spec.World())
		}
	}
}

func TestRankOfCoversAllRanks(t *testing.T) {
	for _, spec := range specGrid {
		seen := make(map[int]bool, spec.World())
		for tp := 0; tp < spec.TP; tp++ {
			for f := 0; f < spec.FSDP; f++ {
				for dp := 0; dp < spec.DP; dp++ {
					r := spec.RankOf(Coord{TP: tp, FSDP: f, DP: dp})
					if r < 0 || r >= spec.World() || seen[r] {
						t.Fatalf("%+v: RankOf(%d,%d,%d) = %d invalid or duplicate", spec, tp, f, dp, r)
					}
					seen[r] = true
				}
			}
		}
	}
}

func TestSpecValidation(t *testing.T) {
	for _, bad := range []MeshSpec{{}, {TP: 0, FSDP: 1, DP: 1}, {TP: 2, FSDP: -1, DP: 1}, {TP: 1, FSDP: 1, DP: 0}} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("spec %+v should not validate", bad)
		}
	}
	if err := (MeshSpec{TP: 2, FSDP: 2, DP: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCoordAndRankRangePanics(t *testing.T) {
	spec := MeshSpec{TP: 2, FSDP: 2, DP: 2}
	for _, bad := range []int{-1, spec.World()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("CoordOf(%d) should panic", bad)
				}
			}()
			spec.CoordOf(bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("RankOf out-of-range coord should panic")
			}
		}()
		spec.RankOf(Coord{TP: 2, FSDP: 0, DP: 0})
	}()
}

// TestGroupDisjointnessAndCoverage checks that along every axis the groups
// partition the world: each rank appears in exactly one group, group sizes
// equal the axis extent, and a rank's communicator rank equals its
// coordinate along the axis.
func TestGroupDisjointnessAndCoverage(t *testing.T) {
	for _, spec := range specGrid {
		topo := Topology{Nodes: 1, GPUsPerNode: spec.World()}
		m, err := NewMesh(spec, topo)
		if err != nil {
			t.Fatal(err)
		}
		for a := Axis(0); a < numAxes; a++ {
			seen := make(map[int]bool, spec.World())
			for gid := 0; gid < m.GroupCount(a); gid++ {
				ranks := m.GroupRanks(a, gid)
				if len(ranks) != spec.extent(a) {
					t.Fatalf("%+v axis %s: group %d size %d, want %d", spec, a, gid, len(ranks), spec.extent(a))
				}
				for pos, r := range ranks {
					if seen[r] {
						t.Fatalf("%+v axis %s: rank %d in two groups", spec, a, r)
					}
					seen[r] = true
					if m.GroupOf(a, r) != gid {
						t.Fatalf("%+v axis %s: GroupOf(%d) = %d, want %d", spec, a, r, m.GroupOf(a, r), gid)
					}
					c := m.Comm(a, r)
					if c.Rank() != pos || c.Rank() != spec.CoordOf(r).axisOf(a) {
						t.Fatalf("%+v axis %s: rank %d comm rank %d, want coord %d",
							spec, a, r, c.Rank(), spec.CoordOf(r).axisOf(a))
					}
				}
			}
			if len(seen) != spec.World() {
				t.Fatalf("%+v axis %s: groups cover %d of %d ranks", spec, a, len(seen), spec.World())
			}
		}
	}
}

// TestGroupMembersAgreeOnOtherAxes checks group semantics directly: two
// ranks share an axis group exactly when they agree on both other
// coordinates.
func TestGroupMembersAgreeOnOtherAxes(t *testing.T) {
	spec := MeshSpec{TP: 2, FSDP: 3, DP: 2}
	m, err := NewMesh(spec, Topology{Nodes: 1, GPUsPerNode: spec.World()})
	if err != nil {
		t.Fatal(err)
	}
	for gid := 0; gid < m.GroupCount(AxisDP); gid++ {
		ranks := m.GroupRanks(AxisDP, gid)
		first := spec.CoordOf(ranks[0])
		for _, r := range ranks[1:] {
			c := spec.CoordOf(r)
			if c.TP != first.TP || c.FSDP != first.FSDP {
				t.Fatalf("DP group %d mixes coords %+v and %+v", gid, first, c)
			}
		}
	}
}

// TestFrontierPlacementTPIntraNode asserts the placement claim of the
// paper's hybrid composition: under Frontier packing (8 GCDs/node, TP
// fastest-varying) TP groups never cross a node boundary when TP divides
// the node size, while DP groups span nodes whenever the replica footprint
// fills a node.
func TestFrontierPlacementTPIntraNode(t *testing.T) {
	for _, spec := range []MeshSpec{
		{TP: 2, FSDP: 4, DP: 2},
		{TP: 4, FSDP: 2, DP: 2},
		{TP: 8, FSDP: 1, DP: 3},
		{TP: 2, FSDP: 1, DP: 8},
		{TP: 1, FSDP: 8, DP: 2},
	} {
		if spec.World()%8 != 0 || 8%spec.TP != 0 {
			t.Fatalf("bad test spec %+v", spec)
		}
		topo := Frontier(spec.World() / 8)
		m, err := NewMesh(spec, topo)
		if err != nil {
			t.Fatal(err)
		}
		for gid := 0; gid < m.GroupCount(AxisTP); gid++ {
			if !m.GroupIntraNode(AxisTP, gid) {
				t.Fatalf("%+v on %d nodes: TP group %d (ranks %v) crosses nodes",
					spec, topo.Nodes, gid, m.GroupRanks(AxisTP, gid))
			}
		}
		if spec.TP*spec.FSDP == topo.GPUsPerNode && spec.DP > 1 {
			for gid := 0; gid < m.GroupCount(AxisDP); gid++ {
				if m.GroupIntraNode(AxisDP, gid) {
					t.Fatalf("%+v: DP group %d should span nodes", spec, gid)
				}
			}
		}
	}
}

func TestTopology(t *testing.T) {
	topo := Frontier(3)
	if topo.Nodes != 3 || topo.GPUsPerNode != 8 || topo.GCDs() != 24 {
		t.Fatalf("Frontier(3) = %+v", topo)
	}
	if topo.NodeOf(0) != 0 || topo.NodeOf(7) != 0 || topo.NodeOf(8) != 1 || topo.NodeOf(23) != 2 {
		t.Fatal("NodeOf boundaries wrong")
	}
	if err := (Topology{Nodes: 0, GPUsPerNode: 8}).Validate(); err == nil {
		t.Fatal("zero-node topology should not validate")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NodeOf beyond capacity should panic")
			}
		}()
		topo.NodeOf(24)
	}()
}

func TestAxisString(t *testing.T) {
	if AxisTP.String() != "tp" || AxisFSDP.String() != "fsdp" || AxisDP.String() != "dp" {
		t.Fatal("axis names wrong")
	}
}
