package dist

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/tensor"
)

// largeWorldEnv opts the big world sizes into benchmark runs; without it
// only the 64-rank baseline executes, so `make bench` (benchtime=1x over
// everything) stays fast.
const largeWorldEnv = "DCHAG_BENCH_LARGE_WORLD"

// BenchmarkRendezvousWorldScale measures goroutine scalability of the
// functional mesh substrate past 64 world ranks: one goroutine per rank,
// each driving a small TP AllReduce, an FSDP AllGather, and a DP AllReduce
// per iteration — the rendezvous pattern of a real hybrid training step.
// World sizes above 64 are skipped unless DCHAG_BENCH_LARGE_WORLD is set.
func BenchmarkRendezvousWorldScale(b *testing.B) {
	for _, world := range []int{64, 128, 256, 512} {
		world := world
		b.Run(fmt.Sprintf("world=%d", world), func(b *testing.B) {
			if world > 64 && os.Getenv(largeWorldEnv) == "" {
				b.Skipf("set %s=1 to benchmark %d-rank rendezvous", largeWorldEnv, world)
			}
			spec := MeshSpec{TP: 8, FSDP: 4, DP: world / 32}
			topo := Frontier(world / 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := RunMesh(spec, topo, func(rank int, m *Mesh) error {
					x := tensor.Full(float64(rank), 64)
					m.TPComm(rank).AllReduceSum(x)
					m.FSDPComm(rank).AllGather(x)
					m.DPComm(rank).AllReduceSum(x)
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
