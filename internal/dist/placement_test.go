package dist

import (
	"reflect"
	"testing"

	"repro/internal/hw"
)

func TestAxisGroupRanksMatchMesh(t *testing.T) {
	for _, spec := range specGrid {
		topo := Topology{Nodes: (spec.World() + 3) / 4, GPUsPerNode: 4}
		m, err := NewMesh(spec, topo)
		if err != nil {
			t.Fatalf("%+v: %v", spec, err)
		}
		for _, a := range Axes {
			if got, want := spec.AxisGroupCount(a), m.GroupCount(a); got != want {
				t.Fatalf("%+v axis %s: group count %d, want %d", spec, a, got, want)
			}
			for gid := 0; gid < m.GroupCount(a); gid++ {
				if got, want := spec.AxisGroupRanks(a, gid), m.GroupRanks(a, gid); !reflect.DeepEqual(got, want) {
					t.Fatalf("%+v axis %s group %d: ranks %v, want %v", spec, a, gid, got, want)
				}
			}
		}
	}
}

func TestGroupPlacementAgreesWithMeshClassification(t *testing.T) {
	for _, spec := range specGrid {
		for _, gpusPerNode := range []int{2, 4, 8} {
			topo := Topology{Nodes: (spec.World() + gpusPerNode - 1) / gpusPerNode, GPUsPerNode: gpusPerNode}
			m, err := NewMesh(spec, topo)
			if err != nil {
				t.Fatalf("%+v: %v", spec, err)
			}
			for _, a := range Axes {
				for gid := 0; gid < m.GroupCount(a); gid++ {
					p := GroupPlacement(spec, topo, a, gid)
					if p.IntraNode() != m.GroupIntraNode(a, gid) {
						t.Fatalf("%+v on %d-wide nodes, axis %s group %d: placement intra=%v, mesh says %v",
							spec, gpusPerNode, a, gid, p.IntraNode(), m.GroupIntraNode(a, gid))
					}
					if len(p) != spec.extent(a) {
						t.Fatalf("placement length %d, want extent %d", len(p), spec.extent(a))
					}
				}
			}
		}
	}
}

func TestWorstAxisPlacementPicksInterNodeGroup(t *testing.T) {
	// TP=3 on 4-wide nodes: TP group 0 = {0,1,2} (intra), group 1 = {3,4,5}
	// (straddles the boundary). The worst placement must be the straddler.
	spec := MeshSpec{TP: 3, FSDP: 2, DP: 1}
	topo := Topology{Nodes: 2, GPUsPerNode: 4}
	p := WorstAxisPlacement(spec, topo, AxisTP)
	if p.IntraNode() {
		t.Fatalf("worst TP placement should cross nodes, got %v", p)
	}
	if GroupPlacement(spec, topo, AxisTP, 0).IntraNode() != true {
		t.Fatal("group 0 should be intra-node")
	}
	// All-intra axis: worst is simply a representative group.
	spec = MeshSpec{TP: 2, FSDP: 2, DP: 2}
	topo = Frontier(1)
	if !WorstAxisPlacement(spec, topo, AxisTP).IntraNode() {
		t.Fatal("node-local mesh must report intra-node worst placement")
	}
}

func TestFrontierPackingPlacements(t *testing.T) {
	// The paper's packing: TP*FSDP fills a node, DP strides across nodes.
	spec := MeshSpec{TP: 2, FSDP: 4, DP: 8}
	topo := Frontier(8)
	for _, a := range []Axis{AxisTP, AxisFSDP} {
		for gid := 0; gid < spec.AxisGroupCount(a); gid++ {
			if !GroupPlacement(spec, topo, a, gid).IntraNode() {
				t.Fatalf("axis %s group %d must be node-local under Frontier packing", a, gid)
			}
		}
	}
	for gid := 0; gid < spec.AxisGroupCount(AxisDP); gid++ {
		p := GroupPlacement(spec, topo, AxisDP, gid)
		if p.IntraNode() || p.NodeSpan() != 8 {
			t.Fatalf("DP group %d must touch every node, got %v", gid, p)
		}
	}
}

func TestAxisWireSecondsPricesPlacement(t *testing.T) {
	machine := hw.Frontier()
	spec := MeshSpec{TP: 8, FSDP: 1, DP: 2}
	topo := Frontier(2)
	mesh, err := RunMesh(spec, topo, func(rank int, m *Mesh) error {
		// One all-reduce on each axis' communicator records identical bytes
		// on the (intra-node) TP axis and the (inter-node) DP axis.
		m.TPComm(rank).AllReduceScalarSum(1)
		m.DPComm(rank).AllReduceScalarSum(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tp := mesh.AxisWireSeconds(machine, AxisTP)
	dp := mesh.AxisWireSeconds(machine, AxisDP)
	if tp <= 0 || dp <= 0 {
		t.Fatalf("recorded traffic must price to positive time: tp=%v dp=%v", tp, dp)
	}
	if mesh.AxisWireSeconds(machine, AxisFSDP) != 0 {
		t.Fatal("silent axis must price to zero")
	}
	// The node-local TP axis is priced at the Infinity Fabric rate and the
	// node-striding DP axis at the Slingshot share, exactly.
	tpPerRank := mesh.GroupTraffic(AxisTP, 0).TotalBytes() / int64(spec.TP)
	dpPerRank := mesh.GroupTraffic(AxisDP, 0).TotalBytes() / int64(spec.DP)
	if want := float64(tpPerRank) / machine.IntraBW; tp != want {
		t.Fatalf("TP axis wire time = %v, want intra-priced %v", tp, want)
	}
	if want := float64(dpPerRank) / machine.InterBWPerGPU; dp != want {
		t.Fatalf("DP axis wire time = %v, want inter-priced %v", dp, want)
	}
}
