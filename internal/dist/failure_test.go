package dist

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/faultinject"
	"repro/internal/leakcheck"
)

// TestRunMeshSurfacesFailedRankSet: when several ranks fail on their own,
// the error must carry exactly that set — not just the first root cause —
// so the elastic supervisor can decide who died.
func TestRunMeshSurfacesFailedRankSet(t *testing.T) {
	leakcheck.Check(t)
	spec := MeshSpec{TP: 2, FSDP: 1, DP: 2}
	errOne := errors.New("rank one failure")
	errThree := errors.New("rank three failure")
	_, err := RunMesh(spec, Topology{Nodes: 1, GPUsPerNode: spec.World()}, func(rank int, m *Mesh) error {
		switch rank {
		case 1:
			return errOne
		case 3:
			return errThree
		}
		// Survivors strand at the barrier; the abort releases them and the
		// ErrAborted panic propagates into Run's classifier.
		m.TPComm(rank).Barrier()
		return nil
	})
	got := FailedRanks(err)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("FailedRanks = %v, want [1 3] (err: %v)", got, err)
	}
	if !errors.Is(err, errOne) || !errors.Is(err, errThree) {
		t.Fatalf("err = %v must wrap both rank causes", err)
	}
	if errors.Is(err, comm.ErrAborted) {
		t.Fatalf("err = %v exposes the abort cascade as a cause", err)
	}
	var me *MeshError
	if !errors.As(err, &me) {
		t.Fatalf("err = %v, want *MeshError", err)
	}
	if len(me.Released) != 2 {
		t.Fatalf("Released = %v, want the two surviving ranks", me.Released)
	}
}

// TestFailedRanksNonMeshErrors: helpers must degrade to nil on plain errors
// and on nil.
func TestFailedRanksNonMeshErrors(t *testing.T) {
	if got := FailedRanks(nil); got != nil {
		t.Fatalf("FailedRanks(nil) = %v", got)
	}
	if got := FailedRanks(errors.New("plain")); got != nil {
		t.Fatalf("FailedRanks(plain) = %v", got)
	}
}

// TestMeshFaultInjectorKillsWorldRank: SetFaultInjector must name each
// communicator by its world rank — not its axis coordinate — so a plan
// targeting world rank 2 kills exactly that rank, and the typed *Killed
// survives the panic/recover/wrap pipeline for the supervisor to inspect.
func TestMeshFaultInjectorKillsWorldRank(t *testing.T) {
	leakcheck.Check(t)
	spec := MeshSpec{TP: 2, FSDP: 1, DP: 2}
	plan := faultinject.NewPlan().KillBeforeOp(2, 0)
	m, err := NewMesh(spec, Topology{Nodes: 1, GPUsPerNode: spec.World()})
	if err != nil {
		t.Fatal(err)
	}
	m.SetFaultInjector(plan)
	err = m.Run(func(rank int, m *Mesh) error {
		// Every rank's first operation: a TP barrier. World rank 2 has TP
		// coordinate 0 — if the injector id were the axis coordinate, rank
		// 0 would die instead.
		m.TPComm(rank).Barrier()
		m.DPComm(rank).Barrier()
		return nil
	})
	if got := FailedRanks(err); len(got) != 1 || got[0] != 2 {
		t.Fatalf("FailedRanks = %v, want [2] (err: %v)", got, err)
	}
	var k *faultinject.Killed
	if !errors.As(err, &k) {
		t.Fatalf("err = %v, want *faultinject.Killed in chain", err)
	}
	if k.Fault.Rank != 2 {
		t.Fatalf("killed rank %d, want 2", k.Fault.Rank)
	}
}

// TestMeshErrorMessageListsRanks pins the operator-facing shape of the
// multi-failure message.
func TestMeshErrorMessageListsRanks(t *testing.T) {
	e := &MeshError{
		Failed: []RankError{
			{Rank: 0, Err: fmt.Errorf("dist: rank 0: boom")},
			{Rank: 2, Err: fmt.Errorf("dist: rank 2: bust")},
		},
		Released: []int{1, 3},
	}
	msg := e.Error()
	for _, want := range []string{"2 rank(s) failed", "rank 0: boom", "rank 2: bust", "2 rank(s) released"} {
		if !contains(msg, want) {
			t.Fatalf("Error() = %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
