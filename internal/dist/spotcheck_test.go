package dist

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/tensor"
)

// The RunMesh-backed spot-check (ROADMAP item / ISSUE 4 satellite): run
// real per-axis collectives at small scale and hold the measured pricing —
// Mesh.AxisWireSeconds over the traffic the ledgers actually recorded —
// against the analytic per-collective predictions priced on
// MeshSpec.WorstAxisPlacement. The two paths share the machine model but
// nothing else: one replays measured per-rank ring bytes through the
// placement's slowest link, the other applies the textbook ring step
// counts to the intended buffer sizes. Their per-axis *ratios* must agree
// within a tolerance band (latency terms and ring accounting differ
// slightly), which is what validates the simulator's axis pricing against
// a functional run.

func TestRunMeshAxisWireSecondsTrackAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("RunMesh spot-check skipped under -short")
	}
	machine := hw.Frontier()
	spec := MeshSpec{TP: 2, FSDP: 2, DP: 2}
	// Two 4-GCD nodes: TP groups ({r, r+1}) and FSDP groups ({r, r+2})
	// stay intra-node, DP groups ({r, r+4}) stride across the node
	// boundary — all three link classifications are exercised.
	topo := Topology{Nodes: 2, GPUsPerNode: 4}

	// Distinct per-axis buffer sizes so the ratios are nontrivial. Large
	// enough (4-16 MB) that the analytic latency terms are small against
	// the transfer terms (the tolerance band absorbs the rest).
	const (
		tpElems = 1 << 18
		fsElems = 1 << 19
		dpElems = 1 << 20
	)
	mesh, err := RunMesh(spec, topo, func(rank int, m *Mesh) error {
		// One TP AllReduce (activation sync), one FSDP AllGather + one
		// FSDP ReduceScatter (parameter gather + gradient shard), one DP
		// AllReduce (gradient sync) — a miniature training step.
		m.Comm(AxisTP, rank).AllReduceSum(tensor.Ones(tpElems))
		m.Comm(AxisFSDP, rank).AllGatherConcat(tensor.Ones(fsElems), 0)
		m.Comm(AxisFSDP, rank).ReduceScatterSum(tensor.Ones(2, fsElems), 0)
		m.Comm(AxisDP, rank).AllReduceSum(tensor.Ones(dpElems))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: the placements split exactly as Frontier packing predicts.
	if !WorstAxisPlacement(spec, topo, AxisTP).IntraNode() {
		t.Fatal("TP groups must be intra-node on 4-GCD nodes")
	}
	if !WorstAxisPlacement(spec, topo, AxisFSDP).IntraNode() {
		t.Fatal("FSDP groups must be intra-node on 4-GCD nodes")
	}
	if WorstAxisPlacement(spec, topo, AxisDP).IntraNode() {
		t.Fatal("DP groups must cross the node boundary")
	}

	// Measured side: the wire seconds of the traffic each axis recorded.
	var measured [NumAxes]float64
	for _, a := range Axes {
		measured[a] = mesh.AxisWireSeconds(machine, a)
		if measured[a] <= 0 {
			t.Fatalf("axis %s recorded no wire time", a)
		}
	}

	// Analytic side: the same collectives priced by the hw ring cost
	// functions on each axis's worst placement (8 bytes per float64
	// element on the simulated wire).
	const b = 8
	analytic := [NumAxes]float64{
		AxisTP:   machine.AllReduceTimeOn(WorstAxisPlacement(spec, topo, AxisTP), tpElems*b),
		AxisFSDP: machine.AllGatherTimeOn(WorstAxisPlacement(spec, topo, AxisFSDP), fsElems*b) + machine.ReduceScatterTimeOn(WorstAxisPlacement(spec, topo, AxisFSDP), 2*fsElems*b),
		AxisDP:   machine.AllReduceTimeOn(WorstAxisPlacement(spec, topo, AxisDP), dpElems*b),
	}

	// The measured/analytic *ratios* across every axis pair must agree
	// within the tolerance band.
	const tol = 0.25
	for _, pair := range [][2]Axis{{AxisDP, AxisTP}, {AxisDP, AxisFSDP}, {AxisFSDP, AxisTP}} {
		m := measured[pair[0]] / measured[pair[1]]
		a := analytic[pair[0]] / analytic[pair[1]]
		if rel := math.Abs(m/a - 1); rel > tol {
			t.Fatalf("%s/%s ratio: measured %.3f vs analytic %.3f (off by %.0f%%, tolerance %.0f%%)",
				pair[0], pair[1], m, a, 100*rel, 100*tol)
		}
	}

	// The inter-node DP axis must be charged the bandwidth disadvantage:
	// per-byte it runs IntraBW/InterBWPerGPU times slower than TP.
	bwRatio := machine.IntraBW / machine.InterBWPerGPU
	perRank := func(a Axis) float64 {
		return float64(mesh.AxisBytes(a)) / float64(spec.World())
	}
	perByteDP := measured[AxisDP] / perRank(AxisDP)
	perByteTP := measured[AxisTP] / perRank(AxisTP)
	if rel := math.Abs(perByteDP/perByteTP/bwRatio - 1); rel > tol {
		t.Fatalf("DP/TP per-byte slowdown %.2f, want the %.2fx link ratio (off by %.0f%%)",
			perByteDP/perByteTP, bwRatio, 100*rel)
	}
}

// TestRunMeshSpotCheckScalesWithBytes pins that the measured axis pricing
// is linear in traffic volume: doubling every collective's payload doubles
// each axis's wire seconds (the ledgers are volume-true, not call-counted).
func TestRunMeshSpotCheckScalesWithBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("RunMesh spot-check skipped under -short")
	}
	machine := hw.Frontier()
	spec := MeshSpec{TP: 2, FSDP: 2, DP: 2}
	topo := Topology{Nodes: 2, GPUsPerNode: 4}
	run := func(elems int) [NumAxes]float64 {
		mesh, err := RunMesh(spec, topo, func(rank int, m *Mesh) error {
			for _, a := range Axes {
				m.Comm(a, rank).AllReduceSum(tensor.Ones(elems))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var out [NumAxes]float64
		for _, a := range Axes {
			out[a] = mesh.AxisWireSeconds(machine, a)
		}
		return out
	}
	one, two := run(1<<12), run(1<<13)
	for _, a := range Axes {
		if got, want := two[a], 2*one[a]; math.Abs(got/want-1) > 1e-9 {
			t.Fatalf("axis %s: doubling payload scaled wire time by %.4f, want 2.0", a, got/one[a])
		}
	}
}
