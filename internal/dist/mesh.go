// Package dist implements the 3-axis device mesh the paper's Sec. 3.4
// hybrid composition runs on: every world rank has a coordinate along the
// TP (D-CHAG channel-sharding), FSDP and DP axes, and belongs to exactly one
// comm.Group per axis. RunMesh spawns one goroutine per world rank, wires
// the per-axis groups, and hands each rank its Mesh handle.
//
// Rank numbering follows Frontier packing (see DESIGN.md): TP is the
// fastest-varying axis, then FSDP, then DP. Under the Frontier topology
// (8 GCDs per node) this places each TP group — and, when TP*FSDP divides
// the node size, each FSDP group — inside a single node, while DP groups
// stride across nodes; the per-step gradient AllReduce is then the only
// inter-node collective, which the tests assert via the per-axis traffic
// accessors.
package dist

import "fmt"

// MeshSpec is the logical shape of the device mesh: the group size along
// each parallelism axis. World size is the product of the three extents.
type MeshSpec struct {
	// TP is the tensor-parallel (D-CHAG channel group) extent.
	TP int
	// FSDP is the fully-sharded data-parallel extent.
	FSDP int
	// DP is the replicated data-parallel extent.
	DP int
}

// Validate reports whether every axis extent is positive.
func (s MeshSpec) Validate() error {
	if s.TP < 1 || s.FSDP < 1 || s.DP < 1 {
		return fmt.Errorf("dist: invalid mesh spec TP=%d FSDP=%d DP=%d (all extents must be >= 1)", s.TP, s.FSDP, s.DP)
	}
	return nil
}

// World returns the total number of ranks in the mesh.
func (s MeshSpec) World() int { return s.TP * s.FSDP * s.DP }

// Coord is a rank's position along each mesh axis.
type Coord struct {
	TP, FSDP, DP int
}

// CoordOf maps a world rank to its mesh coordinate. TP varies fastest,
// then FSDP, then DP:
//
//	rank = tp + TP*(fsdp + FSDP*dp)
//
// It panics when rank is outside [0, World()).
func (s MeshSpec) CoordOf(rank int) Coord {
	if rank < 0 || rank >= s.World() {
		panic(fmt.Sprintf("dist: rank %d out of range [0,%d)", rank, s.World()))
	}
	return Coord{
		TP:   rank % s.TP,
		FSDP: (rank / s.TP) % s.FSDP,
		DP:   rank / (s.TP * s.FSDP),
	}
}

// RankOf is the inverse of CoordOf. It panics when any coordinate is
// outside its axis extent.
func (s MeshSpec) RankOf(c Coord) int {
	if c.TP < 0 || c.TP >= s.TP || c.FSDP < 0 || c.FSDP >= s.FSDP || c.DP < 0 || c.DP >= s.DP {
		panic(fmt.Sprintf("dist: coord %+v out of range for spec %+v", c, s))
	}
	return c.TP + s.TP*(c.FSDP+s.FSDP*c.DP)
}

// Axis identifies one of the three mesh axes.
type Axis int

// The mesh axes, in rank-layout order (TP fastest-varying).
const (
	AxisTP Axis = iota
	AxisFSDP
	AxisDP
	numAxes
)

// NumAxes is the number of mesh axes, for callers that index per-axis
// arrays by Axis.
const NumAxes = int(numAxes)

// Axes lists the mesh axes in rank-layout order.
var Axes = [NumAxes]Axis{AxisTP, AxisFSDP, AxisDP}

// String returns the axis name.
func (a Axis) String() string {
	switch a {
	case AxisTP:
		return "tp"
	case AxisFSDP:
		return "fsdp"
	case AxisDP:
		return "dp"
	}
	return fmt.Sprintf("axis(%d)", int(a))
}

// extent returns the spec's group size along the axis.
func (s MeshSpec) extent(a Axis) int {
	switch a {
	case AxisTP:
		return s.TP
	case AxisFSDP:
		return s.FSDP
	case AxisDP:
		return s.DP
	}
	panic(fmt.Sprintf("dist: unknown axis %d", int(a)))
}

// axisOf returns the coordinate's position along the axis.
func (c Coord) axisOf(a Axis) int {
	switch a {
	case AxisTP:
		return c.TP
	case AxisFSDP:
		return c.FSDP
	case AxisDP:
		return c.DP
	}
	panic(fmt.Sprintf("dist: unknown axis %d", int(a)))
}

// groupKeyOf returns the index of the axis group the coordinate belongs to:
// the linearization of the two non-axis coordinates. Ranks share an axis
// group exactly when they agree on every other coordinate.
func (s MeshSpec) groupKeyOf(a Axis, c Coord) int {
	switch a {
	case AxisTP:
		return c.FSDP + s.FSDP*c.DP
	case AxisFSDP:
		return c.TP + s.TP*c.DP
	case AxisDP:
		return c.TP + s.TP*c.FSDP
	}
	panic(fmt.Sprintf("dist: unknown axis %d", int(a)))
}
