package buildinfo

import (
	"strings"
	"testing"
)

func TestGetIsPopulated(t *testing.T) {
	info := Get()
	if info.Main == "" || info.Version == "" || info.GoVersion == "" {
		t.Fatalf("Get() left identity fields empty: %+v", info)
	}
	if !strings.HasPrefix(info.GoVersion, "go") {
		t.Fatalf("GoVersion = %q, want a go toolchain version", info.GoVersion)
	}
}

func TestStringAndMetaAgree(t *testing.T) {
	info := Get()
	s := info.String()
	for _, part := range []string{info.Main, info.Version, info.GoVersion} {
		if !strings.Contains(s, part) {
			t.Fatalf("String() %q missing %q", s, part)
		}
	}
	meta := info.Meta()
	if meta["module"] != info.Main || meta["version"] != info.Version || meta["go_version"] != info.GoVersion {
		t.Fatalf("Meta() disagrees with Info: %v vs %+v", meta, info)
	}
	if info.Revision == "" {
		if _, ok := meta["vcs_revision"]; ok {
			t.Fatal("Meta() carries vcs_revision with no revision known")
		}
	} else if meta["vcs_revision"] != info.Revision {
		t.Fatalf("vcs_revision %q != %q", meta["vcs_revision"], info.Revision)
	}
}
