// Package buildinfo reads the binary's embedded build metadata
// (debug.ReadBuildInfo) once and exposes it in the three places the
// observability surfaces need it: the -version flag every cmd binary
// grows, the trace metadata block of exported Chrome traces, and the
// dchag_build_info gauge on /metrics. Hand-rolled from the runtime's
// own stamp — no external dependency, and it works identically for
// `go build`, `go run`, and `go test` binaries.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info describes the running binary.
type Info struct {
	// Main is the main module path ("repro" here); Version its module
	// version — "(devel)" for a plain working-tree build.
	Main, Version string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
	// Revision is the VCS revision when the build was stamped (go build
	// from a clean checkout); empty otherwise. Modified marks a dirty
	// working tree at stamp time.
	Revision string
	Modified bool
}

// Get reads the build info embedded in the running binary. It degrades
// gracefully: a binary without a stamp (some test harnesses) still gets
// the toolchain version and placeholder fields rather than zeros.
func Get() Info {
	info := Info{Main: "unknown", Version: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Path != "" {
		info.Main = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	if bi.GoVersion != "" {
		info.GoVersion = bi.GoVersion
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the one-line -version output, e.g.
// "repro (devel) go1.24.0" or "repro v1.2.3 go1.24.0 rev abc123 (modified)".
func (i Info) String() string {
	s := fmt.Sprintf("%s %s %s", i.Main, i.Version, i.GoVersion)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if i.Modified {
			s += " (modified)"
		}
	}
	return s
}

// Meta returns the trace-metadata key/value pairs exported alongside a
// Chrome trace, so a trace file is self-describing about the binary
// that produced it.
func (i Info) Meta() map[string]string {
	m := map[string]string{
		"module":     i.Main,
		"version":    i.Version,
		"go_version": i.GoVersion,
	}
	if i.Revision != "" {
		m["vcs_revision"] = i.Revision
		if i.Modified {
			m["vcs_modified"] = "true"
		}
	}
	return m
}
