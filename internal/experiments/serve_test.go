package experiments

import (
	"encoding/json"
	"testing"
)

// TestServeBenchStructure runs a minimal serving sweep end to end and pins
// the report's structural invariants. Throughput magnitudes are measured
// wall-clock, so nothing here asserts relative performance — that claim
// lives with the committed BENCH_serve.json artifact.
func TestServeBenchStructure(t *testing.T) {
	cfg := QuickServeBench()
	cfg.Requests = 64
	cfg.Concurrency = 8
	rep, err := RunServeBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ServeSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, ServeSchema)
	}
	if len(rep.Points) != len(cfg.Batches)*len(cfg.DeadlinesMs) {
		t.Fatalf("%d points for %d batches x %d deadlines", len(rep.Points), len(cfg.Batches), len(cfg.DeadlinesMs))
	}
	for _, p := range rep.Points {
		if p.Errors != 0 {
			t.Fatalf("point batch=%d deadline=%v saw %d errors", p.MaxBatch, p.DeadlineMs, p.Errors)
		}
		if p.Requests != cfg.Requests || p.ThroughputRPS <= 0 || p.WallSeconds <= 0 {
			t.Fatalf("implausible point %+v", p)
		}
		if p.MaxBatch == 1 && p.MeanBatch != 1 {
			t.Fatalf("batching-off point served mean batch %v", p.MeanBatch)
		}
		if p.MeanBatch > float64(p.MaxBatch) {
			t.Fatalf("mean batch %v exceeds max %d", p.MeanBatch, p.MaxBatch)
		}
	}
	if _, ok := rep.Best(); !ok {
		t.Fatal("no point marked best")
	}
	if _, ok := rep.PointAt(1, cfg.DeadlinesMs[0]); !ok {
		t.Fatal("batching-off baseline point missing")
	}

	// The report must round-trip as JSON with its schema key visible to
	// generic tooling.
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(blob, &generic); err != nil {
		t.Fatal(err)
	}
	if generic["schema"] != ServeSchema {
		t.Fatalf("generic schema key %v", generic["schema"])
	}
}
