package experiments

import (
	"encoding/json"
	"testing"
)

// TestRunComputeBenchQuick sanity-checks the compute benchmark runner on the
// reduced configuration: every size yields plausible positive rates, the
// derived claim fields match the largest point, and the report round-trips
// through JSON under the schema string the artifact test gates on.
func TestRunComputeBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock benchmark")
	}
	cfg := QuickComputeBench()
	rep := RunComputeBench(cfg)
	if rep.Schema != ComputeSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, ComputeSchema)
	}
	if len(rep.Points) != len(cfg.Sizes) {
		t.Fatalf("got %d points for %d sizes", len(rep.Points), len(cfg.Sizes))
	}
	for _, p := range rep.Points {
		if p.NaiveGFLOPS <= 0 || p.BlockedGFLOPS <= 0 || p.F32GFLOPS <= 0 {
			t.Fatalf("non-positive rate in point %+v", p)
		}
		if p.BlockedAllocsPerOp < 0 || p.F32AllocsPerOp < 0 {
			t.Fatalf("negative allocs/op in point %+v", p)
		}
	}
	last := rep.Points[len(rep.Points)-1]
	if rep.Claims.BlockedSpeedupAtMax != last.BlockedSpeedup ||
		rep.Claims.F32SpeedupAtMax != last.F32Speedup {
		t.Fatalf("claims %+v do not match the largest point %+v", rep.Claims, last)
	}

	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("encoding report: %v", err)
	}
	var back ComputeReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("decoding report: %v", err)
	}
	if back.Schema != ComputeSchema || len(back.Points) != len(rep.Points) {
		t.Fatalf("report did not round-trip: %+v", back)
	}
	if _, ok := back.PointAt(cfg.Sizes[0]); !ok {
		t.Fatalf("PointAt(%d) missing after round-trip", cfg.Sizes[0])
	}
}
