package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

func init() {
	register(Experiment{
		ID:    "sweep",
		Title: "Topology-aware hybrid-shape sweep with overlap, 8-512 GCDs (paper Fig. 15 at scale)",
		Run:   runSweep,
	})
}

// SweepSchema identifies the JSON layout of SweepReport. Bump the suffix on
// any breaking change so perf-trajectory tooling can refuse mixed inputs.
//
// v2 prices step times under the overlap composition model (FSDP prefetch,
// DP bucket overlap, TP on the critical path): step_seconds is the
// overlapped step time, serial_step_seconds the v1 compute+total-comm
// composition, and exposed_seconds the per-axis comm left on the critical
// path. DiffSweep still understands v1 reports (SweepSchemaV1) and compares
// the fields the schemas share.
const SweepSchema = "dchag-bench/sweep/v2"

// SweepSchemaV1 is the pre-overlap schema: step_seconds was the serial
// composition and no overlap fields existed.
const SweepSchemaV1 = "dchag-bench/sweep/v1"

// SweepModel and SweepChannels fix the workload of the sweep: the paper's
// Fig. 15 point (7B model, 500-channel images).
const (
	SweepModel    = "7B"
	SweepChannels = 500
)

// CommBreakdown is a per-axis simulated communication time of one
// configuration, in seconds per step — used both for the full collective
// times and for the exposed (post-overlap) times.
type CommBreakdown struct {
	TP    float64 `json:"tp_seconds"`
	FSDP  float64 `json:"fsdp_seconds"`
	DP    float64 `json:"dp_seconds"`
	Total float64 `json:"total_seconds"`
}

func breakdown(axis [dist.NumAxes]float64, total float64) CommBreakdown {
	return CommBreakdown{
		TP:    axis[dist.AxisTP],
		FSDP:  axis[dist.AxisFSDP],
		DP:    axis[dist.AxisDP],
		Total: total,
	}
}

// SweepPoint is one simulated configuration of the sweep grid.
type SweepPoint struct {
	GCDs        int    `json:"gcds"`
	Nodes       int    `json:"nodes"`
	Method      string `json:"method"`
	TP          int    `json:"tp"`
	FSDP        int    `json:"fsdp"`
	DP          int    `json:"dp"`
	TPIntraNode bool   `json:"tp_intra_node"`
	// MicroBatch is the largest per-replica batch that fits memory;
	// 0 means the shape OOMs even at batch 1 (Fits false, times zero).
	MicroBatch     int     `json:"micro_batch"`
	Fits           bool    `json:"fits"`
	MemBytesPerGPU float64 `json:"mem_bytes_per_gpu"`
	// StepSeconds is the overlapped step time (compute + exposed comm);
	// SerialStepSeconds is the v1 compute + total-comm composition.
	StepSeconds       float64       `json:"step_seconds"`
	SerialStepSeconds float64       `json:"serial_step_seconds"`
	ComputeSeconds    float64       `json:"compute_seconds"`
	Comm              CommBreakdown `json:"comm_seconds"`
	// Exposed is the per-axis comm left on the critical path after each
	// axis's overlap discipline hides what it can behind compute.
	Exposed CommBreakdown `json:"exposed_seconds"`
	// Throughputs are computed from the overlapped step time.
	TFLOPsPerSec        float64 `json:"tflops_per_sec"`
	TFLOPsPerSecPerNode float64 `json:"tflops_per_sec_per_node"`
	// Best marks the highest-throughput fitting shape of its scale.
	Best bool `json:"best"`
}

// CliffPoint is one entry of the TP node-boundary series: micro-batch and
// FSDP held fixed while TP doubles, exposing the step-time cliff the moment
// TP rings leave the node. Overlap does not soften it: TP collectives sit
// on the critical path, so the repriced AllReduces land on the step in
// full.
type CliffPoint struct {
	TP                int           `json:"tp"`
	FSDP              int           `json:"fsdp"`
	DP                int           `json:"dp"`
	MicroBatch        int           `json:"micro_batch"`
	TPIntraNode       bool          `json:"tp_intra_node"`
	StepSeconds       float64       `json:"step_seconds"`
	SerialStepSeconds float64       `json:"serial_step_seconds"`
	ComputeSeconds    float64       `json:"compute_seconds"`
	Comm              CommBreakdown `json:"comm_seconds"`
	Exposed           CommBreakdown `json:"exposed_seconds"`
}

// SweepReport is the machine-readable result of the topology-aware sweep —
// the payload behind `dchag-bench -json` and the BENCH_*.json trajectory.
type SweepReport struct {
	Schema      string `json:"schema"`
	Model       string `json:"model"`
	Channels    int    `json:"channels"`
	GPUsPerNode int    `json:"gpus_per_node"`
	// Overlap records whether step times were priced under the overlap
	// model (false: the -no-overlap escape hatch, where StepSeconds equals
	// SerialStepSeconds).
	Overlap   bool         `json:"overlap"`
	Scales    []int        `json:"scales"`
	CliffGCDs int          `json:"cliff_gcds"`
	Points    []SweepPoint `json:"points"`
	Cliff     []CliffPoint `json:"cliff"`
}

// DefaultSweepScales returns the GCD counts of the full sweep: 8 (one
// Frontier node) through 512 (64 nodes).
func DefaultSweepScales() []int { return []int{8, 16, 32, 64, 128, 256, 512} }

// cliffMicroBatch is the fixed per-replica batch of the cliff series, small
// enough that every TP degree fits it.
const cliffMicroBatch = 4

// BestAt returns the best-marked point of the given scale.
func (r SweepReport) BestAt(gcds int) (SweepPoint, bool) {
	for _, p := range r.Points {
		if p.GCDs == gcds && p.Best {
			return p, true
		}
	}
	return SweepPoint{}, false
}

// sweepTPDegrees are the channel-group widths swept at every scale; 16 and
// 32 deliberately cross the 8-GCD node boundary.
var sweepTPDegrees = []int{1, 2, 4, 8, 16, 32}

// sweepStrategies enumerates the hybrid grid at one scale: every
// TP×FSDP×DP factorization of gcds with TP in sweepTPDegrees and
// power-of-two FSDP, all D-CHAG-L, plus the pure-FSDP baseline (no channel
// sharding, parameters fully sharded across all GCDs).
func sweepStrategies(gcds int) []perfmodel.Strategy {
	out := []perfmodel.Strategy{
		{Method: perfmodel.MethodBaseline, TP: 1, FSDP: gcds, DP: 1},
	}
	for _, tp := range sweepTPDegrees {
		if tp > gcds || gcds%tp != 0 {
			continue
		}
		for fsdp := 1; fsdp <= gcds/tp; fsdp *= 2 {
			if (gcds/tp)%fsdp != 0 {
				continue
			}
			out = append(out, perfmodel.Strategy{
				Method: perfmodel.MethodDCHAG, TP: tp, FSDP: fsdp, DP: gcds / (tp * fsdp),
				Tree: 0, Kind: core.KindLinear,
			})
		}
	}
	return out
}

// simulate prices one strategy at its largest fitting micro-batch.
func simulate(shape perfmodel.ModelShape, strat perfmodel.Strategy, machine hw.Machine, cal perfmodel.Calibration) SweepPoint {
	gcds := strat.World()
	topo := perfmodel.DefaultTopology(machine, gcds)
	pt := SweepPoint{
		GCDs:        gcds,
		Nodes:       topo.Nodes,
		Method:      strat.Method.String(),
		TP:          strat.Mesh().TP,
		FSDP:        strat.Mesh().FSDP,
		DP:          strat.Mesh().DP,
		TPIntraNode: dist.WorstAxisPlacement(strat.Mesh(), topo, dist.AxisTP).IntraNode(),
	}
	wl := perfmodel.ReferenceWorkload(SweepChannels)
	b := perfmodel.MaxMicroBatch(shape, wl, strat, machine, cal)
	pt.MicroBatch = b
	if b == 0 {
		return pt
	}
	wl.MicroBatch = b
	r := perfmodel.Analyze(shape, wl, strat, machine, cal)
	pt.Fits = true
	pt.MemBytesPerGPU = r.TotalMemBytes()
	pt.StepSeconds = r.StepSeconds()
	pt.SerialStepSeconds = r.SerialStepSeconds()
	pt.ComputeSeconds = r.ComputeSeconds
	pt.Comm = breakdown(r.AxisCommSeconds, r.CommSeconds)
	pt.Exposed = breakdown(r.AxisExposedSeconds, r.ExposedCommSeconds)
	pt.TFLOPsPerSec = r.TFLOPsPerSec()
	pt.TFLOPsPerSecPerNode = r.TFLOPsPerSecPerNode()
	return pt
}

// cliffSeries fixes micro-batch and FSDP while TP doubles across the node
// boundary at the given scale — the discrete repricing of the per-layer TP
// AllReduces from Infinity Fabric to Slingshot is the paper's "keep TP in
// the node" argument made quantitative.
func cliffSeries(shape perfmodel.ModelShape, gcds int, machine hw.Machine, cal perfmodel.Calibration) []CliffPoint {
	fsdp := 8
	if gcds%fsdp != 0 || gcds < fsdp {
		fsdp = 1
	}
	var out []CliffPoint
	for _, tp := range sweepTPDegrees {
		if tp*fsdp > gcds || gcds%(tp*fsdp) != 0 {
			continue
		}
		strat := perfmodel.Strategy{
			Method: perfmodel.MethodDCHAG, TP: tp, FSDP: fsdp, DP: gcds / (tp * fsdp),
			Tree: 0, Kind: core.KindLinear,
		}
		wl := perfmodel.ReferenceWorkload(SweepChannels)
		wl.MicroBatch = cliffMicroBatch
		r := perfmodel.Analyze(shape, wl, strat, machine, cal)
		topo := perfmodel.DefaultTopology(machine, gcds)
		out = append(out, CliffPoint{
			TP: tp, FSDP: fsdp, DP: strat.Mesh().DP, MicroBatch: cliffMicroBatch,
			TPIntraNode:       dist.WorstAxisPlacement(strat.Mesh(), topo, dist.AxisTP).IntraNode(),
			StepSeconds:       r.StepSeconds(),
			SerialStepSeconds: r.SerialStepSeconds(),
			ComputeSeconds:    r.ComputeSeconds,
			Comm:              breakdown(r.AxisCommSeconds, r.CommSeconds),
			Exposed:           breakdown(r.AxisExposedSeconds, r.ExposedCommSeconds),
		})
	}
	return out
}

// RunSweep simulates the hybrid grid at every requested scale under the
// calibrated overlap model and returns the machine-readable report. The
// cliff series is computed at the largest scale.
func RunSweep(scales []int) SweepReport {
	return runSweepCal(scales, perfmodel.DefaultCalibration())
}

// RunSweepSerial is the -no-overlap escape hatch: the same sweep with
// overlap factors zeroed, so every step time is the serial compute +
// total-comm composition (StepSeconds == SerialStepSeconds, exposed ==
// comm) and best shapes are chosen under the v1 pricing.
func RunSweepSerial(scales []int) SweepReport {
	return runSweepCal(scales, perfmodel.SerialCalibration())
}

func runSweepCal(scales []int, cal perfmodel.Calibration) SweepReport {
	machine := hw.Frontier()
	shape := perfmodel.Shapes[SweepModel]
	rep := SweepReport{
		Schema:      SweepSchema,
		Model:       SweepModel,
		Channels:    SweepChannels,
		GPUsPerNode: machine.GPUsPerNode,
		Overlap:     cal.Overlap != (perfmodel.Overlap{}),
		Scales:      append([]int(nil), scales...),
	}
	for _, gcds := range scales {
		first := len(rep.Points)
		best := -1
		for _, strat := range sweepStrategies(gcds) {
			pt := simulate(shape, strat, machine, cal)
			rep.Points = append(rep.Points, pt)
			if pt.Fits && (best < 0 || pt.TFLOPsPerSecPerNode > rep.Points[best].TFLOPsPerSecPerNode) {
				best = len(rep.Points) - 1
			}
		}
		if best >= first {
			rep.Points[best].Best = true
		}
		if gcds > rep.CliffGCDs {
			rep.CliffGCDs = gcds
		}
	}
	if rep.CliffGCDs > 0 {
		rep.Cliff = cliffSeries(shape, rep.CliffGCDs, machine, cal)
	}
	return rep
}

// runSweep renders the sweep as the registered experiment: the best shape
// per scale against the pure-FSDP reference, and the TP cliff series.
func runSweep() Result {
	rep := RunSweep(DefaultSweepScales())

	best := &Table{
		Title: fmt.Sprintf("Best hybrid shape per scale (%s model, %d channels, max fitting micro-batch, overlap on)",
			rep.Model, rep.Channels),
		Headers: []string{"GCDs", "nodes", "best shape", "micro-batch", "step ms", "serial ms",
			"tp exp ms", "fsdp exp ms", "dp exp ms", "TFLOPs/s/node", "pure-FSDP TFLOPs/s/node"},
	}
	for _, gcds := range rep.Scales {
		bp, ok := rep.BestAt(gcds)
		if !ok {
			best.Add(fmt.Sprint(gcds), "-", "no fitting shape", "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		pure := "-"
		for _, p := range rep.Points {
			if p.GCDs == gcds && p.Method == perfmodel.MethodBaseline.String() && p.TP == 1 {
				if p.Fits {
					pure = fmt.Sprintf("%.1f", p.TFLOPsPerSecPerNode)
				} else {
					pure = "OOM"
				}
			}
		}
		best.Add(fmt.Sprint(gcds), fmt.Sprint(bp.Nodes),
			fmt.Sprintf("D-CHAG-L TP=%d FSDP=%d DP=%d", bp.TP, bp.FSDP, bp.DP),
			fmt.Sprint(bp.MicroBatch), ms(bp.StepSeconds), ms(bp.SerialStepSeconds),
			ms(bp.Exposed.TP), ms(bp.Exposed.FSDP), ms(bp.Exposed.DP),
			fmt.Sprintf("%.1f", bp.TFLOPsPerSecPerNode), pure)
	}
	best.Note("paper Fig. 15: the winning shapes keep TP (= D-CHAG groups) at or below the 8-GCD node width; overlap hides FSDP/DP traffic but TP stays on the critical path")

	cliff := &Table{
		Title: fmt.Sprintf("TP node-boundary cliff @ %d GCDs (micro-batch %d, FSDP fixed)",
			rep.CliffGCDs, cliffMicroBatch),
		Headers: []string{"TP", "FSDP", "DP", "TP placement", "step ms", "tp comm ms", "fsdp exp ms", "dp exp ms"},
	}
	for _, c := range rep.Cliff {
		placement := "intra-node"
		if !c.TPIntraNode {
			placement = "inter-node"
		}
		cliff.Add(fmt.Sprint(c.TP), fmt.Sprint(c.FSDP), fmt.Sprint(c.DP), placement,
			ms(c.StepSeconds), ms(c.Comm.TP), ms(c.Exposed.FSDP), ms(c.Exposed.DP))
	}
	cliff.Note("crossing TP=8 -> 16 reprices every per-layer AllReduce from Infinity Fabric to the Slingshot share — and no overlap discipline can hide it")

	return Result{ID: "sweep", Title: "Topology-aware step-time sweep", Tables: []*Table{best, cliff}}
}

// ms renders seconds as milliseconds with one decimal.
func ms(s float64) string { return fmt.Sprintf("%.1f", s*1e3) }
