package experiments

import (
	"fmt"
	"sort"
)

// shapeKey identifies one swept configuration across reports.
type shapeKey struct {
	GCDs   int
	Method string
	TP     int
	FSDP   int
	DP     int
}

func (k shapeKey) String() string {
	return fmt.Sprintf("%d GCDs %s TP=%d FSDP=%d DP=%d", k.GCDs, k.Method, k.TP, k.FSDP, k.DP)
}

func pointKey(p SweepPoint) shapeKey {
	return shapeKey{GCDs: p.GCDs, Method: p.Method, TP: p.TP, FSDP: p.FSDP, DP: p.DP}
}

// SweepDiff is the result of comparing two sweep reports: Regressions fail
// the perf gate (dchag-bench -diff exits 1), Notes are informational — the
// explicit record of what a cross-schema comparison could and could not
// check.
type SweepDiff struct {
	Notes       []string
	Regressions []string
}

// Clean reports whether the comparison found no regressions.
func (d SweepDiff) Clean() bool { return len(d.Regressions) == 0 }

// knownSchema reports whether the diff machinery understands the schema.
func knownSchema(schema string) bool {
	return schema == SweepSchema || schema == SweepSchemaV1
}

// serialStepOf returns a point's serial (compute + total comm) step time
// under its report's schema: v1 reports carried it as step_seconds, v2
// reports carry it as serial_step_seconds. The serial composition is the
// one quantity priced identically by both schema generations, so it is the
// step-time field cross-schema comparisons use.
func serialStepOf(p SweepPoint, schema string) float64 {
	if schema == SweepSchemaV1 {
		return p.StepSeconds
	}
	return p.SerialStepSeconds
}

// serialCliffOf is serialStepOf for cliff points.
func serialCliffOf(c CliffPoint, schema string) float64 {
	if schema == SweepSchemaV1 {
		return c.StepSeconds
	}
	return c.SerialStepSeconds
}

// DiffSweep mechanically compares two sweep reports and returns the
// regressions between them, for the perf-trajectory gate behind
// `dchag-bench -diff`:
//
//   - the best (highest-throughput) shape at any scale changed;
//   - a configuration present in both reports regressed in simulated step
//     time by more than tolFrac (e.g. 0.05 = 5%);
//   - a configuration flipped between fitting and OOM;
//   - a scale or configuration covered by the old report disappeared.
//
// Reports of different schema versions (v1 vs v2) are comparable: the
// version change is reported as an explicit note and only the fields both
// schemas share are compared — serial step times, fit/OOM status, and
// coverage. Overlapped step times and best-shape marks exist only under
// v2 semantics (v2 chooses best shapes by overlapped throughput), so
// cross-schema runs skip them and say so, instead of failing opaquely or
// flagging false regressions. The same shared-fields-plus-note treatment
// applies to two v2 reports priced under different overlap settings (one
// written with -no-overlap).
//
// Improvements and newly added configurations are not regressions. An
// error (as opposed to regressions) means the reports cannot be compared
// at all.
func DiffSweep(oldRep, newRep SweepReport, tolFrac float64) (SweepDiff, error) {
	var d SweepDiff
	if !knownSchema(oldRep.Schema) {
		return d, fmt.Errorf("experiments: old report schema %q is not %q or %q", oldRep.Schema, SweepSchema, SweepSchemaV1)
	}
	if !knownSchema(newRep.Schema) {
		return d, fmt.Errorf("experiments: new report schema %q is not %q or %q", newRep.Schema, SweepSchema, SweepSchemaV1)
	}
	if tolFrac < 0 {
		return d, fmt.Errorf("experiments: negative tolerance %v", tolFrac)
	}
	sameSchema := oldRep.Schema == newRep.Schema
	if !sameSchema {
		d.Notes = append(d.Notes,
			fmt.Sprintf("schema changed: %s -> %s; comparing shared fields only (serial step times, fits, coverage)", oldRep.Schema, newRep.Schema),
			"best-shape marks and overlapped step times are not comparable across schema versions and were skipped")
	}
	// Two v2 reports priced under different overlap settings (one written
	// with -no-overlap) also disagree on what step_seconds and the best
	// marks mean; gate only the shared serial fields there too.
	overlapComparable := sameSchema && oldRep.Schema == SweepSchema && oldRep.Overlap == newRep.Overlap
	if sameSchema && oldRep.Schema == SweepSchema && oldRep.Overlap != newRep.Overlap {
		d.Notes = append(d.Notes,
			fmt.Sprintf("overlap pricing changed: %v -> %v; comparing shared fields only (serial step times, fits, coverage)", oldRep.Overlap, newRep.Overlap),
			"best-shape marks and overlapped step times are not comparable across overlap settings and were skipped")
	}
	bestComparable := sameSchema && (oldRep.Schema == SweepSchemaV1 || overlapComparable)
	regress := func(format string, args ...any) {
		d.Regressions = append(d.Regressions, fmt.Sprintf(format, args...))
	}

	newScales := make(map[int]bool, len(newRep.Scales))
	for _, s := range newRep.Scales {
		newScales[s] = true
	}
	for _, s := range oldRep.Scales {
		if !newScales[s] {
			regress("scale %d GCDs dropped from the sweep", s)
		}
	}

	// Best-shape changes per scale covered by both reports — only when the
	// reports agree on what "best" means (same schema, same overlap
	// pricing).
	if bestComparable {
		for _, s := range oldRep.Scales {
			if !newScales[s] {
				continue
			}
			oldBest, oldOK := oldRep.BestAt(s)
			newBest, newOK := newRep.BestAt(s)
			switch {
			case oldOK && !newOK:
				regress("%d GCDs: no best shape anymore (was %s)", s, pointKey(oldBest))
			case oldOK && newOK && pointKey(oldBest) != pointKey(newBest):
				regress("%d GCDs: best shape changed: %s -> %s", s, pointKey(oldBest), pointKey(newBest))
			}
		}
	}

	// Per-configuration step-time and fit regressions.
	newPoints := make(map[shapeKey]SweepPoint, len(newRep.Points))
	for _, p := range newRep.Points {
		newPoints[pointKey(p)] = p
	}
	for _, op := range oldRep.Points {
		key := pointKey(op)
		np, ok := newPoints[key]
		if !ok {
			if newScales[op.GCDs] {
				regress("%s: configuration dropped from the sweep", key)
			}
			continue
		}
		if op.Fits && !np.Fits {
			regress("%s: previously fit, now OOM", key)
			continue
		}
		if !op.Fits || !np.Fits {
			continue
		}
		oldSerial, newSerial := serialStepOf(op, oldRep.Schema), serialStepOf(np, newRep.Schema)
		if newSerial > oldSerial*(1+tolFrac) {
			regress("%s: serial step time %.4fs -> %.4fs (+%.1f%%, tolerance %.1f%%)",
				key, oldSerial, newSerial, 100*(newSerial/oldSerial-1), 100*tolFrac)
		}
		if overlapComparable && np.StepSeconds > op.StepSeconds*(1+tolFrac) {
			regress("%s: overlapped step time %.4fs -> %.4fs (+%.1f%%, tolerance %.1f%%)",
				key, op.StepSeconds, np.StepSeconds, 100*(np.StepSeconds/op.StepSeconds-1), 100*tolFrac)
		}
	}

	// Cliff series: scale changes, dropped points, and step-time
	// regressions are all coverage signal — the cliff is the sweep's
	// headline claim, so it cannot silently disappear.
	if oldRep.CliffGCDs != newRep.CliffGCDs {
		regress("cliff scale changed: %d -> %d GCDs", oldRep.CliffGCDs, newRep.CliffGCDs)
	} else {
		newCliff := make(map[shapeKey]CliffPoint, len(newRep.Cliff))
		for _, c := range newRep.Cliff {
			newCliff[shapeKey{GCDs: newRep.CliffGCDs, Method: "cliff", TP: c.TP, FSDP: c.FSDP, DP: c.DP}] = c
		}
		for _, oc := range oldRep.Cliff {
			key := shapeKey{GCDs: oldRep.CliffGCDs, Method: "cliff", TP: oc.TP, FSDP: oc.FSDP, DP: oc.DP}
			nc, ok := newCliff[key]
			if !ok {
				regress("cliff TP=%d: point dropped from the series", oc.TP)
				continue
			}
			oldSerial, newSerial := serialCliffOf(oc, oldRep.Schema), serialCliffOf(nc, newRep.Schema)
			if newSerial > oldSerial*(1+tolFrac) {
				regress("cliff TP=%d: serial step time %.4fs -> %.4fs (+%.1f%%, tolerance %.1f%%)",
					oc.TP, oldSerial, newSerial, 100*(newSerial/oldSerial-1), 100*tolFrac)
			}
			if overlapComparable && nc.StepSeconds > oc.StepSeconds*(1+tolFrac) {
				regress("cliff TP=%d: overlapped step time %.4fs -> %.4fs (+%.1f%%, tolerance %.1f%%)",
					oc.TP, oc.StepSeconds, nc.StepSeconds, 100*(nc.StepSeconds/oc.StepSeconds-1), 100*tolFrac)
			}
		}
	}

	sort.Strings(d.Regressions)
	return d, nil
}
