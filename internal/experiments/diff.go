package experiments

import (
	"fmt"
	"sort"
)

// shapeKey identifies one swept configuration across reports.
type shapeKey struct {
	GCDs   int
	Method string
	TP     int
	FSDP   int
	DP     int
}

func (k shapeKey) String() string {
	return fmt.Sprintf("%d GCDs %s TP=%d FSDP=%d DP=%d", k.GCDs, k.Method, k.TP, k.FSDP, k.DP)
}

func pointKey(p SweepPoint) shapeKey {
	return shapeKey{GCDs: p.GCDs, Method: p.Method, TP: p.TP, FSDP: p.FSDP, DP: p.DP}
}

// DiffSweep mechanically compares two sweep reports (schema
// dchag-bench/sweep/v1) and returns the regressions between them, for the
// perf-trajectory gate behind `dchag-bench -diff`:
//
//   - the best (highest-throughput) shape at any scale changed;
//   - a configuration present in both reports regressed in simulated step
//     time by more than tolFrac (e.g. 0.05 = 5%);
//   - a configuration flipped between fitting and OOM;
//   - a scale or configuration covered by the old report disappeared.
//
// Improvements and newly added configurations are not regressions. An error
// (as opposed to diffs) means the reports cannot be compared at all.
func DiffSweep(oldRep, newRep SweepReport, tolFrac float64) ([]string, error) {
	if oldRep.Schema != SweepSchema {
		return nil, fmt.Errorf("experiments: old report schema %q is not %q", oldRep.Schema, SweepSchema)
	}
	if newRep.Schema != SweepSchema {
		return nil, fmt.Errorf("experiments: new report schema %q is not %q", newRep.Schema, SweepSchema)
	}
	if tolFrac < 0 {
		return nil, fmt.Errorf("experiments: negative tolerance %v", tolFrac)
	}
	var diffs []string

	newScales := make(map[int]bool, len(newRep.Scales))
	for _, s := range newRep.Scales {
		newScales[s] = true
	}
	for _, s := range oldRep.Scales {
		if !newScales[s] {
			diffs = append(diffs, fmt.Sprintf("scale %d GCDs dropped from the sweep", s))
		}
	}

	// Best-shape changes per scale covered by both reports.
	for _, s := range oldRep.Scales {
		if !newScales[s] {
			continue
		}
		oldBest, oldOK := oldRep.BestAt(s)
		newBest, newOK := newRep.BestAt(s)
		switch {
		case oldOK && !newOK:
			diffs = append(diffs, fmt.Sprintf("%d GCDs: no best shape anymore (was %s)", s, pointKey(oldBest)))
		case oldOK && newOK && pointKey(oldBest) != pointKey(newBest):
			diffs = append(diffs, fmt.Sprintf("%d GCDs: best shape changed: %s -> %s", s, pointKey(oldBest), pointKey(newBest)))
		}
	}

	// Per-configuration step-time and fit regressions.
	newPoints := make(map[shapeKey]SweepPoint, len(newRep.Points))
	for _, p := range newRep.Points {
		newPoints[pointKey(p)] = p
	}
	for _, op := range oldRep.Points {
		key := pointKey(op)
		np, ok := newPoints[key]
		if !ok {
			if newScales[op.GCDs] {
				diffs = append(diffs, fmt.Sprintf("%s: configuration dropped from the sweep", key))
			}
			continue
		}
		switch {
		case op.Fits && !np.Fits:
			diffs = append(diffs, fmt.Sprintf("%s: previously fit, now OOM", key))
		case op.Fits && np.Fits && np.StepSeconds > op.StepSeconds*(1+tolFrac):
			diffs = append(diffs, fmt.Sprintf("%s: step time %.4fs -> %.4fs (+%.1f%%, tolerance %.1f%%)",
				key, op.StepSeconds, np.StepSeconds,
				100*(np.StepSeconds/op.StepSeconds-1), 100*tolFrac))
		}
	}

	// Cliff series: scale changes, dropped points, and step-time
	// regressions are all coverage signal — the cliff is the sweep's
	// headline claim, so it cannot silently disappear.
	if oldRep.CliffGCDs != newRep.CliffGCDs {
		diffs = append(diffs, fmt.Sprintf("cliff scale changed: %d -> %d GCDs", oldRep.CliffGCDs, newRep.CliffGCDs))
	} else {
		newCliff := make(map[shapeKey]CliffPoint, len(newRep.Cliff))
		for _, c := range newRep.Cliff {
			newCliff[shapeKey{GCDs: newRep.CliffGCDs, Method: "cliff", TP: c.TP, FSDP: c.FSDP, DP: c.DP}] = c
		}
		for _, oc := range oldRep.Cliff {
			key := shapeKey{GCDs: oldRep.CliffGCDs, Method: "cliff", TP: oc.TP, FSDP: oc.FSDP, DP: oc.DP}
			nc, ok := newCliff[key]
			switch {
			case !ok:
				diffs = append(diffs, fmt.Sprintf("cliff TP=%d: point dropped from the series", oc.TP))
			case nc.StepSeconds > oc.StepSeconds*(1+tolFrac):
				diffs = append(diffs, fmt.Sprintf("cliff TP=%d: step time %.4fs -> %.4fs (+%.1f%%, tolerance %.1f%%)",
					oc.TP, oc.StepSeconds, nc.StepSeconds, 100*(nc.StepSeconds/oc.StepSeconds-1), 100*tolFrac))
			}
		}
	}

	sort.Strings(diffs)
	return diffs, nil
}
