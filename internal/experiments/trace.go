package experiments

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/dist"
	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

func init() {
	register(Experiment{
		ID:    "trace",
		Title: "Step attribution: measured per-axis exposed comm from a traced 2x2x2 mesh vs the analytic model",
		Run:   runTraceExperiment,
	})
}

// TraceSchema identifies the JSON layout of TraceReport — the
// measured-vs-modeled step-attribution artifact (BENCH_trace.json,
// written by `dchag-trace -json`). The measured side is priced from
// traced wire volumes with the same hw formulas the analytic model
// uses, so the artifact is byte-deterministic and CI gates it by
// content, not by tolerance bands around wall clock.
const TraceSchema = "dchag-bench/trace/v1"

// TraceAxis is one mesh axis's measured-vs-modeled attribution.
type TraceAxis struct {
	// Axis names the mesh axis (tp, fsdp, dp).
	Axis string `json:"axis"`
	// Spans counts the traced collective spans on the axis; WireBytes
	// sums their recorded wire traffic across all ranks.
	Spans     int   `json:"spans"`
	WireBytes int64 `json:"wire_bytes"`
	// MeasuredSeconds prices the traced wire volumes on the axis's group
	// placements (worst group gates, as in the model); ModeledSeconds is
	// perfmodel's pre-overlap per-axis time for the same configuration.
	MeasuredSeconds float64 `json:"measured_seconds"`
	ModeledSeconds  float64 `json:"modeled_seconds"`
	// MeasuredExposedSeconds and ModeledExposedSeconds apply the shared
	// overlap discipline to both sides; Ratio is their quotient (0 when
	// the modeled side is 0).
	MeasuredExposedSeconds float64 `json:"measured_exposed_seconds"`
	ModeledExposedSeconds  float64 `json:"modeled_exposed_seconds"`
	Ratio                  float64 `json:"ratio"`
}

// TraceReport is the machine-readable attribution artifact — the payload
// behind `dchag-trace -json`.
type TraceReport struct {
	Schema string `json:"schema"`
	// Strategy, World, and Topology pin the traced configuration.
	Strategy string `json:"strategy"`
	World    int    `json:"world"`
	Topology string `json:"topology"`
	// Events counts every traced event across all rank rows.
	Events int `json:"events"`
	// ComputeSeconds is the modeled per-step compute both exposure
	// computations share.
	ComputeSeconds float64     `json:"compute_seconds"`
	Axes           []TraceAxis `json:"axes"`
	// MaxRatioErr is the largest |Ratio - 1| over axes with a nonzero
	// modeled time; Agrees is the artifact gate: MaxRatioErr <= 0.30.
	MaxRatioErr float64 `json:"max_ratio_err"`
	Agrees      bool    `json:"agrees"`
}

// traceBenchConfig is the fixed attribution workload: a small D-CHAG
// model on a real 2(TP) x 2(FSDP) x 2(DP) mesh spread over two 4-GPU
// nodes, so every axis has both a schedule and a placement to price.
func traceBenchConfig() (perfmodel.ModelShape, perfmodel.Workload, perfmodel.Strategy, hw.Machine, dist.Topology, perfmodel.Calibration) {
	shape := perfmodel.ModelShape{Name: "trace", Embed: 512, Layers: 2, Heads: 8}
	wl := perfmodel.Workload{Channels: 32, ImgH: 128, ImgW: 128, Patch: 8, MicroBatch: 4}
	strat := perfmodel.Strategy{Method: perfmodel.MethodDCHAG, TP: 2, FSDP: 2, DP: 2}
	machine := hw.Frontier()
	topo := dist.Topology{Nodes: 2, GPUsPerNode: 4}
	return shape, wl, strat, machine, topo, perfmodel.DefaultCalibration()
}

// RunTraceBench replays the analytic model's per-axis collective
// schedule on a real traced mesh and diffs the measured attribution
// against perfmodel.AnalyzeOn. Every rank goroutine issues exactly the
// collectives axisCommSeconds prices — (4L+2) activation AllReduces and
// one activation AllGather on TP, two parameter-shard AllGathers and a
// gradient ReduceScatter on FSDP, one gradient AllReduce on DP — with
// tensors sized from the same formulas; the comm observers record the
// actual wire volumes, which are then inverted to logical sizes and
// priced on each group's placement with the same hw formulas the model
// uses. What the diff validates is the whole attribution pipeline:
// observer hook coverage, wire-volume accounting, the inversion, and
// the shared overlap discipline.
//
// The returned tracer holds the raw trace (for -chrome export); the
// report is byte-deterministic — no wall clock enters the pricing.
func RunTraceBench() (TraceReport, *obs.Tracer, error) {
	shape, wl, strat, machine, topo, cal := traceBenchConfig()
	rep := TraceReport{
		Schema:   TraceSchema,
		Strategy: strat.Label(),
		World:    strat.World(),
		Topology: fmt.Sprintf("%dx%d", topo.Nodes, topo.GPUsPerNode),
	}
	modeled, err := perfmodel.AnalyzeOn(shape, wl, strat, machine, topo, cal)
	if err != nil {
		return rep, nil, err
	}
	rep.ComputeSeconds = modeled.ComputeSeconds

	// Logical tensor sizes, element-denominated (the in-process comm layer
	// moves f64 elements; comm.BytesPerElem converts). actElems is the
	// [B,T,E] activation at the modeled dtype; paramElems the per-GPU
	// parameter block, rounded to keep every collective's wire arithmetic
	// exact (divisible by the axis group sizes).
	d := cal.DtypeBytes
	actBytes := d * float64(wl.MicroBatch) * float64(wl.Tokens()) * float64(shape.Embed)
	actElems := int(actBytes) / comm.BytesPerElem
	var params float64
	for _, p := range modeled.ParamsPerGPU {
		params += p
	}
	paramElems := int(params*d) / comm.BytesPerElem
	fsdp, dp := 2, 2 // strat is fixed above
	if r := paramElems % (2 * fsdp * dp); r != 0 {
		paramElems += 2*fsdp*dp - r
	}

	mesh, err := dist.NewMesh(strat.Mesh(), topo)
	if err != nil {
		return rep, nil, err
	}
	tr := obs.NewTracer(mesh.World(), 64)
	tr.SetMeta("workload", "trace-bench "+strat.Label())
	mesh.SetObserver(func(a dist.Axis, rank int) comm.Observer {
		return obs.NewCommObserver(tr.Rank(rank), obs.CommCat(a.String()))
	})
	err = mesh.Run(func(rank int, m *dist.Mesh) error {
		rng := tensor.NewRNG(7 + int64(rank))
		act := tensor.Randn(rng, actElems)
		tpc := m.Comm(dist.AxisTP, rank)
		for i := 0; i < 4*shape.Layers+2; i++ {
			tpc.AllReduceSum(act)
		}
		tpc.AllGather(act)

		fc := m.Comm(dist.AxisFSDP, rank)
		shard := tensor.Randn(rng, paramElems/fc.Size())
		full := tensor.Randn(rng, paramElems)
		for i := 0; i < 2; i++ {
			fc.AllGather(shard)
		}
		fc.ReduceScatterSum(full, 0)

		dc := m.Comm(dist.AxisDP, rank)
		dc.AllReduceSum(full)
		return nil
	})
	if err != nil {
		return rep, tr, err
	}

	// Price the trace: per rank, invert each span's wire volume back to
	// the collective's logical size and price it on the rank's group
	// placement; per axis, the worst group's mean per-rank time gates —
	// the same "groups run in lockstep" composition the model uses.
	var perRank [dist.NumAxes][]float64
	for a := range perRank {
		perRank[a] = make([]float64, mesh.World())
	}
	axisOf := map[string]dist.Axis{}
	var spans [dist.NumAxes]int
	var wire [dist.NumAxes]int64
	for _, a := range dist.Axes {
		axisOf[obs.CommCat(a.String())] = a
	}
	for r := 0; r < mesh.World(); r++ {
		for _, ev := range tr.Events(r) {
			a, ok := axisOf[ev.Cat]
			if !ok || ev.Ph != 'X' {
				continue
			}
			g := mesh.GroupOf(a, r)
			n := int64(len(mesh.GroupRanks(a, g)))
			p := mesh.GroupPlacement(a, g)
			var t float64
			switch comm.Op(ev.Name) {
			case comm.OpAllReduce:
				t = machine.AllReduceTimeOn(p, ev.Bytes*n/(2*(n-1)))
			case comm.OpAllGather:
				t = machine.AllGatherTimeOn(p, ev.Bytes/(n-1))
			case comm.OpReduceScatter:
				t = machine.ReduceScatterTimeOn(p, ev.Bytes*n/(n-1))
			default:
				continue // barriers and p2p carry no modeled schedule here
			}
			perRank[a][r] += t
			spans[a]++
			wire[a] += ev.Bytes
			rep.Events++
		}
	}
	var measured [dist.NumAxes]float64
	for _, a := range dist.Axes {
		for g := 0; g < mesh.GroupCount(a); g++ {
			ranks := mesh.GroupRanks(a, g)
			sum := 0.0
			for _, r := range ranks {
				sum += perRank[a][r]
			}
			if mean := sum / float64(len(ranks)); mean > measured[a] {
				measured[a] = mean
			}
		}
	}
	exposed := cal.Overlap.Expose(modeled.ComputeSeconds, measured)

	rep.MaxRatioErr = 0
	rep.Agrees = true
	for _, a := range dist.Axes {
		ta := TraceAxis{
			Axis:                   a.String(),
			Spans:                  spans[a],
			WireBytes:              wire[a],
			MeasuredSeconds:        measured[a],
			ModeledSeconds:         modeled.AxisCommSeconds[a],
			MeasuredExposedSeconds: exposed[a],
			ModeledExposedSeconds:  modeled.AxisExposedSeconds[a],
		}
		if ta.ModeledExposedSeconds > 0 {
			ta.Ratio = ta.MeasuredExposedSeconds / ta.ModeledExposedSeconds
			if err := abs(ta.Ratio - 1); err > rep.MaxRatioErr {
				rep.MaxRatioErr = err
			}
		}
		rep.Axes = append(rep.Axes, ta)
	}
	rep.Agrees = rep.MaxRatioErr <= 0.30
	return rep, tr, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// runTraceExperiment renders the attribution as a figure-style table.
func runTraceExperiment() Result {
	t := &Table{
		Title:   "Measured vs modeled per-axis exposed comm (traced 2x2x2 mesh)",
		Headers: []string{"axis", "spans", "wire", "measured ms", "modeled ms", "exposed meas ms", "exposed model ms", "ratio"},
	}
	rep, _, err := RunTraceBench()
	if err != nil {
		t.Note("trace bench failed: %v", err)
		return Result{ID: "trace", Title: t.Title, Tables: []*Table{t}}
	}
	for _, a := range rep.Axes {
		t.Add(a.Axis,
			fmt.Sprintf("%d", a.Spans),
			hw.FormatBytes(a.WireBytes),
			fmt.Sprintf("%.3f", a.MeasuredSeconds*1e3),
			fmt.Sprintf("%.3f", a.ModeledSeconds*1e3),
			fmt.Sprintf("%.3f", a.MeasuredExposedSeconds*1e3),
			fmt.Sprintf("%.3f", a.ModeledExposedSeconds*1e3),
			fmt.Sprintf("%.3f", a.Ratio),
		)
	}
	t.Note("strategy %s on %s; %d traced events; max ratio error %.1f%% (gate: 30%%)",
		rep.Strategy, rep.Topology, rep.Events, rep.MaxRatioErr*100)
	return Result{ID: "trace", Title: t.Title, Tables: []*Table{t}}
}
