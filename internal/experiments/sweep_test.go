package experiments

import (
	"testing"

	"repro/internal/perfmodel"
)

// The acceptance invariants of the topology-aware sweep at 512 GCDs: the
// simulator must reproduce the paper's qualitative shape — a hybrid with
// node-local TP wins, and TP crossing the node boundary is a cliff.

func sweep512(t *testing.T) SweepReport {
	t.Helper()
	rep := RunSweep([]int{512})
	if rep.Schema != SweepSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, SweepSchema)
	}
	if rep.CliffGCDs != 512 {
		t.Fatalf("cliff scale = %d, want 512", rep.CliffGCDs)
	}
	return rep
}

func TestSweepBestIsNodeLocalHybrid(t *testing.T) {
	rep := sweep512(t)
	best, ok := rep.BestAt(512)
	if !ok {
		t.Fatal("no best point at 512 GCDs")
	}
	if !best.Fits || best.MicroBatch < 1 {
		t.Fatalf("best shape must fit: %+v", best)
	}
	if best.TP < 2 || best.TP > 8 {
		t.Fatalf("best TP = %d, want a node-local channel group (2..8)", best.TP)
	}
	if !best.TPIntraNode {
		t.Fatal("best shape's TP rings must stay inside a node")
	}
	if best.FSDP*best.DP <= 1 {
		t.Fatalf("best shape must be a hybrid (FSDP*DP > 1), got FSDP=%d DP=%d", best.FSDP, best.DP)
	}
	if best.Method != perfmodel.MethodDCHAG.String() {
		t.Fatalf("best method = %s, want D-CHAG", best.Method)
	}

	for _, p := range rep.Points {
		if p.GCDs != 512 || !p.Fits || p.Best {
			continue
		}
		// Every TP > 8 shape pays inter-node TP collectives and loses — by a
		// wide margin, not a rounding error.
		if p.TP > 8 {
			if p.TPIntraNode {
				t.Fatalf("TP=%d cannot be intra-node on 8-GCD nodes", p.TP)
			}
			if !(best.TFLOPsPerSecPerNode > 2*p.TFLOPsPerSecPerNode) {
				t.Fatalf("best (%.1f TF/s/node) must clearly beat TP=%d (%.1f)",
					best.TFLOPsPerSecPerNode, p.TP, p.TFLOPsPerSecPerNode)
			}
		}
		// Pure FSDP — all 512 GCDs on the FSDP axis, with or without
		// D-CHAG channel sharding — also loses.
		if p.TP == 1 && p.FSDP == 512 {
			if !(best.TFLOPsPerSecPerNode > p.TFLOPsPerSecPerNode) {
				t.Fatalf("best (%.1f) must beat pure-FSDP %s (%.1f)",
					best.TFLOPsPerSecPerNode, p.Method, p.TFLOPsPerSecPerNode)
			}
		}
	}
}

func TestSweepTPNodeBoundaryCliff(t *testing.T) {
	rep := sweep512(t)
	at := func(tp int) CliffPoint {
		for _, c := range rep.Cliff {
			if c.TP == tp {
				return c
			}
		}
		t.Fatalf("cliff series missing TP=%d: %+v", tp, rep.Cliff)
		return CliffPoint{}
	}
	c8, c16 := at(8), at(16)
	if !c8.TPIntraNode || c16.TPIntraNode {
		t.Fatal("TP=8 must be intra-node and TP=16 inter-node on Frontier")
	}
	// The cliff: doubling TP halves per-GPU compute, yet the step gets
	// slower, because every TP collective repriced to the Slingshot share.
	if !(c16.ComputeSeconds < c8.ComputeSeconds) {
		t.Fatalf("TP=16 must compute less per GPU than TP=8: %v vs %v", c16.ComputeSeconds, c8.ComputeSeconds)
	}
	if !(c16.StepSeconds > c8.StepSeconds) {
		t.Fatalf("step time must rise across the node boundary: TP=8 %.3fs -> TP=16 %.3fs",
			c8.StepSeconds, c16.StepSeconds)
	}
	if !(c16.Comm.TP > 3*c8.Comm.TP) {
		t.Fatalf("inter-node TP comm must jump discretely: %.3fs -> %.3fs", c8.Comm.TP, c16.Comm.TP)
	}
	// The rise is attributable to TP traffic: the TP-axis delta exceeds the
	// whole step's delta (every other term shrinks or holds).
	if !(c16.Comm.TP-c8.Comm.TP > c16.StepSeconds-c8.StepSeconds) {
		t.Fatal("the step-time cliff must be carried by the TP axis")
	}
	// Below the boundary the TP term grows gently — no cliff inside a node.
	c4 := at(4)
	if !(c16.Comm.TP/c8.Comm.TP > 2*(c8.Comm.TP/c4.Comm.TP)) {
		t.Fatalf("TP comm growth at the boundary (%.2fx) must dwarf intra-node growth (%.2fx)",
			c16.Comm.TP/c8.Comm.TP, c8.Comm.TP/c4.Comm.TP)
	}
}

func TestSweepPointAccounting(t *testing.T) {
	rep := sweep512(t)
	for _, p := range rep.Points {
		if p.TP*p.FSDP*p.DP != p.GCDs {
			t.Fatalf("shape %dx%dx%d does not factor %d GCDs", p.TP, p.FSDP, p.DP, p.GCDs)
		}
		if !p.Fits {
			if p.StepSeconds != 0 || p.MicroBatch != 0 {
				t.Fatalf("OOM point must carry zero times: %+v", p)
			}
			continue
		}
		if p.StepSeconds <= 0 || p.ComputeSeconds <= 0 {
			t.Fatalf("fitting point must have positive times: %+v", p)
		}
		sum := p.Comm.TP + p.Comm.FSDP + p.Comm.DP
		if diff := sum - p.Comm.Total; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("per-axis comm must sum to total: %v vs %v", sum, p.Comm.Total)
		}
		if diff := p.ComputeSeconds + p.Comm.Total - p.StepSeconds; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("compute + comm must equal step time: %+v", p)
		}
	}
}

func TestSweepTableRendering(t *testing.T) {
	res := runSweep()
	if len(res.Tables) != 2 {
		t.Fatalf("sweep must render best-shape and cliff tables, got %d", len(res.Tables))
	}
	if len(res.Tables[0].Rows) != len(DefaultSweepScales()) {
		t.Fatalf("best-shape table has %d rows, want one per scale", len(res.Tables[0].Rows))
	}
	if len(res.Tables[1].Rows) < 4 {
		t.Fatalf("cliff table too short: %d rows", len(res.Tables[1].Rows))
	}
}
