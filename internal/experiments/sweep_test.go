package experiments

import (
	"testing"

	"repro/internal/perfmodel"
)

// The acceptance invariants of the topology-aware sweep at 512 GCDs: the
// simulator must reproduce the paper's qualitative shape — a hybrid with
// node-local TP wins, and TP crossing the node boundary is a cliff.

func sweep512(t *testing.T) SweepReport {
	t.Helper()
	rep := RunSweep([]int{512})
	if rep.Schema != SweepSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, SweepSchema)
	}
	if !rep.Overlap {
		t.Fatal("RunSweep must price with overlap on")
	}
	if rep.CliffGCDs != 512 {
		t.Fatalf("cliff scale = %d, want 512", rep.CliffGCDs)
	}
	return rep
}

func TestSweepBestIsNodeLocalHybrid(t *testing.T) {
	rep := sweep512(t)
	best, ok := rep.BestAt(512)
	if !ok {
		t.Fatal("no best point at 512 GCDs")
	}
	if !best.Fits || best.MicroBatch < 1 {
		t.Fatalf("best shape must fit: %+v", best)
	}
	if best.TP < 2 || best.TP > 8 {
		t.Fatalf("best TP = %d, want a node-local channel group (2..8)", best.TP)
	}
	if !best.TPIntraNode {
		t.Fatal("best shape's TP rings must stay inside a node")
	}
	if best.FSDP*best.DP <= 1 {
		t.Fatalf("best shape must be a hybrid (FSDP*DP > 1), got FSDP=%d DP=%d", best.FSDP, best.DP)
	}
	if best.Method != perfmodel.MethodDCHAG.String() {
		t.Fatalf("best method = %s, want D-CHAG", best.Method)
	}

	for _, p := range rep.Points {
		if p.GCDs != 512 || !p.Fits || p.Best {
			continue
		}
		// Every TP > 8 shape pays inter-node TP collectives and loses — by a
		// wide margin, not a rounding error.
		if p.TP > 8 {
			if p.TPIntraNode {
				t.Fatalf("TP=%d cannot be intra-node on 8-GCD nodes", p.TP)
			}
			if !(best.TFLOPsPerSecPerNode > 2*p.TFLOPsPerSecPerNode) {
				t.Fatalf("best (%.1f TF/s/node) must clearly beat TP=%d (%.1f)",
					best.TFLOPsPerSecPerNode, p.TP, p.TFLOPsPerSecPerNode)
			}
		}
		// Pure FSDP — all 512 GCDs on the FSDP axis, with or without
		// D-CHAG channel sharding — also loses.
		if p.TP == 1 && p.FSDP == 512 {
			if !(best.TFLOPsPerSecPerNode > p.TFLOPsPerSecPerNode) {
				t.Fatalf("best (%.1f) must beat pure-FSDP %s (%.1f)",
					best.TFLOPsPerSecPerNode, p.Method, p.TFLOPsPerSecPerNode)
			}
		}
	}
}

func TestSweepTPNodeBoundaryCliff(t *testing.T) {
	rep := sweep512(t)
	at := func(tp int) CliffPoint {
		for _, c := range rep.Cliff {
			if c.TP == tp {
				return c
			}
		}
		t.Fatalf("cliff series missing TP=%d: %+v", tp, rep.Cliff)
		return CliffPoint{}
	}
	c8, c16 := at(8), at(16)
	if !c8.TPIntraNode || c16.TPIntraNode {
		t.Fatal("TP=8 must be intra-node and TP=16 inter-node on Frontier")
	}
	// The cliff: doubling TP halves per-GPU compute, yet the step gets
	// slower, because every TP collective repriced to the Slingshot share.
	if !(c16.ComputeSeconds < c8.ComputeSeconds) {
		t.Fatalf("TP=16 must compute less per GPU than TP=8: %v vs %v", c16.ComputeSeconds, c8.ComputeSeconds)
	}
	if !(c16.StepSeconds > c8.StepSeconds) {
		t.Fatalf("step time must rise across the node boundary: TP=8 %.3fs -> TP=16 %.3fs",
			c8.StepSeconds, c16.StepSeconds)
	}
	if !(c16.Comm.TP > 3*c8.Comm.TP) {
		t.Fatalf("inter-node TP comm must jump discretely: %.3fs -> %.3fs", c8.Comm.TP, c16.Comm.TP)
	}
	// The rise is attributable to TP traffic: the TP-axis delta exceeds the
	// whole step's delta (every other term shrinks or holds).
	if !(c16.Comm.TP-c8.Comm.TP > c16.StepSeconds-c8.StepSeconds) {
		t.Fatal("the step-time cliff must be carried by the TP axis")
	}
	// Below the boundary the TP term grows gently — no cliff inside a node.
	c4 := at(4)
	if !(c16.Comm.TP/c8.Comm.TP > 2*(c8.Comm.TP/c4.Comm.TP)) {
		t.Fatalf("TP comm growth at the boundary (%.2fx) must dwarf intra-node growth (%.2fx)",
			c16.Comm.TP/c8.Comm.TP, c8.Comm.TP/c4.Comm.TP)
	}
}

func TestSweepPointAccounting(t *testing.T) {
	rep := sweep512(t)
	for _, p := range rep.Points {
		if p.TP*p.FSDP*p.DP != p.GCDs {
			t.Fatalf("shape %dx%dx%d does not factor %d GCDs", p.TP, p.FSDP, p.DP, p.GCDs)
		}
		if !p.Fits {
			if p.StepSeconds != 0 || p.MicroBatch != 0 {
				t.Fatalf("OOM point must carry zero times: %+v", p)
			}
			continue
		}
		if p.StepSeconds <= 0 || p.ComputeSeconds <= 0 {
			t.Fatalf("fitting point must have positive times: %+v", p)
		}
		for _, bd := range []CommBreakdown{p.Comm, p.Exposed} {
			sum := bd.TP + bd.FSDP + bd.DP
			if diff := sum - bd.Total; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("per-axis breakdown must sum to total: %v vs %v", sum, bd.Total)
			}
		}
		if diff := p.ComputeSeconds + p.Exposed.Total - p.StepSeconds; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("compute + exposed comm must equal step time: %+v", p)
		}
		if diff := p.ComputeSeconds + p.Comm.Total - p.SerialStepSeconds; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("compute + total comm must equal serial step time: %+v", p)
		}
		// Overlap bounds: never faster than the compute/comm max, never
		// slower than the serial composition.
		if p.StepSeconds > p.SerialStepSeconds+1e-12 {
			t.Fatalf("overlapped step must not exceed serial: %+v", p)
		}
		lower := p.ComputeSeconds
		if p.Comm.Total > lower {
			lower = p.Comm.Total
		}
		if p.StepSeconds < lower-1e-12 {
			t.Fatalf("overlapped step below max(compute, comm): %+v", p)
		}
		// TP is on the critical path: its comm is exposed in full.
		if p.Exposed.TP != p.Comm.TP {
			t.Fatalf("TP comm must stay fully exposed: %+v", p)
		}
	}
}

func TestSweepSerialEscapeHatch(t *testing.T) {
	// -no-overlap: the report stays v2-shaped but every step time is the
	// serial composition and the overlap flag records it.
	rep := RunSweepSerial([]int{512})
	if rep.Schema != SweepSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, SweepSchema)
	}
	if rep.Overlap {
		t.Fatal("RunSweepSerial must record overlap off")
	}
	for _, p := range rep.Points {
		if !p.Fits {
			continue
		}
		if p.StepSeconds != p.SerialStepSeconds {
			t.Fatalf("serial sweep must have step == serial step: %+v", p)
		}
		if p.Exposed != p.Comm {
			t.Fatalf("serial sweep must expose all comm: %+v", p)
		}
	}
	// The serial best-shape pricing is exactly the v1 pricing: at 512 GCDs
	// the v1 trajectory's best shape was TP=4 FSDP=2 DP=64.
	best, ok := rep.BestAt(512)
	if !ok {
		t.Fatal("no best at 512")
	}
	if best.TP != 4 || best.FSDP != 2 || best.DP != 64 {
		t.Fatalf("serial best = TP=%d FSDP=%d DP=%d, want the v1 best TP=4 FSDP=2 DP=64", best.TP, best.FSDP, best.DP)
	}
}

func TestSweepOverlapMovesGainsTowardPaper(t *testing.T) {
	// The calibration target (ISSUE/ROADMAP): with overlap on, the
	// hybrid-vs-pure-FSDP throughput gain comes down from the serial
	// composition's exaggerated value toward the "more than 2x"
	// improvement the paper reports, without giving up the win.
	over := RunSweep([]int{512})
	serial := RunSweepSerial([]int{512})
	gain := func(rep SweepReport) float64 {
		best, ok := rep.BestAt(512)
		if !ok {
			t.Fatal("no best at 512")
		}
		for _, p := range rep.Points {
			if p.GCDs == 512 && p.Method == perfmodel.MethodBaseline.String() && p.TP == 1 && p.Fits {
				return best.TFLOPsPerSecPerNode/p.TFLOPsPerSecPerNode - 1
			}
		}
		t.Fatal("no pure-FSDP reference at 512")
		return 0
	}
	gOver, gSerial := gain(over), gain(serial)
	if !(gOver < gSerial) {
		t.Fatalf("overlap must shrink the hybrid-vs-pure-FSDP gain: overlap %+.1f%% vs serial %+.1f%%",
			100*gOver, 100*gSerial)
	}
	if gOver < 1.0 {
		t.Fatalf("hybrid must keep a >2x (gain > +100%%) win over pure-FSDP with overlap on, got %+.1f%%", 100*gOver)
	}
	if gOver > 2.2 {
		t.Fatalf("overlapped gain %+.1f%% still exaggerated (want at most ~+220%%, tracking the paper's reported band)", 100*gOver)
	}
}

func TestSweepTableRendering(t *testing.T) {
	res := runSweep()
	if len(res.Tables) != 2 {
		t.Fatalf("sweep must render best-shape and cliff tables, got %d", len(res.Tables))
	}
	if len(res.Tables[0].Rows) != len(DefaultSweepScales()) {
		t.Fatalf("best-shape table has %d rows, want one per scale", len(res.Tables[0].Rows))
	}
	if len(res.Tables[1].Rows) < 4 {
		t.Fatalf("cliff table too short: %d rows", len(res.Tables[1].Rows))
	}
}
