package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func init() {
	register(Experiment{
		ID:    "serve",
		Title: "Async batched serving: measured throughput/latency over batch size x deadline",
		Run:   runServe,
	})
}

// ServeSchema identifies the JSON layout of ServeReport — the first
// *serving* point of the perf trajectory (BENCH_serve.json), next to the
// training-side sweep schema. Unlike the step-time sweep this artifact is
// measured wall-clock, so trajectory tooling should compare its points
// qualitatively (batching on vs off), not gate on exact numbers.
const ServeSchema = "dchag-bench/serve/v1"

// ServePoint is one measured (max batch, deadline) configuration.
type ServePoint struct {
	// MaxBatch and DeadlineMs are the micro-batcher knobs under test;
	// MaxBatch 1 is the batching-off baseline.
	MaxBatch   int     `json:"max_batch"`
	DeadlineMs float64 `json:"deadline_ms"`
	// Requests/Errors/Retries are the loadgen outcome (retries are
	// queue-full backoffs — admission control working as intended).
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	Retries  int `json:"retries"`
	// WallSeconds is the run's duration; ThroughputRPS the measured
	// request throughput over it.
	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// MeanBatch is the mean requests per dispatched micro-batch.
	MeanBatch float64 `json:"mean_batch"`
	// Server-side latency quantiles (ms): Queued is micro-batch formation
	// wait, Total is enqueue-to-response.
	QueuedP50Ms   float64 `json:"queued_p50_ms"`
	QueuedP99Ms   float64 `json:"queued_p99_ms"`
	TotalP50Ms    float64 `json:"total_p50_ms"`
	TotalP99Ms    float64 `json:"total_p99_ms"`
	MaxQueueDepth int     `json:"max_queue_depth"`
	// Best marks the highest-throughput point of the report.
	Best bool `json:"best"`
}

// ServeReport is the machine-readable serving benchmark — the payload
// behind `dchag-serve -bench -json`.
type ServeReport struct {
	Schema string `json:"schema"`
	// DType is the inference arithmetic the engines served under ("f64" or
	// "f32" — see tensor.DType); additive within v1, so artifacts written
	// before the field exists decode to "" and mean f64. Note carries a
	// free-text version annotation for trajectory readers.
	DType string `json:"dtype,omitempty"`
	Note  string `json:"note,omitempty"`
	// Ranks/Replicas/Partitions/Channels describe the serving topology and
	// workload; Concurrency and Requests the offered load per point.
	Ranks       int          `json:"ranks"`
	Replicas    int          `json:"replicas"`
	Partitions  int          `json:"partitions"`
	Channels    int          `json:"channels"`
	Concurrency int          `json:"concurrency"`
	Requests    int          `json:"requests_per_point"`
	Points      []ServePoint `json:"points"`
}

// PointAt returns the point measured at (maxBatch, deadlineMs).
func (r ServeReport) PointAt(maxBatch int, deadlineMs float64) (ServePoint, bool) {
	for _, p := range r.Points {
		if p.MaxBatch == maxBatch && p.DeadlineMs == deadlineMs {
			return p, true
		}
	}
	return ServePoint{}, false
}

// Best returns the best-marked point.
func (r ServeReport) Best() (ServePoint, bool) {
	for _, p := range r.Points {
		if p.Best {
			return p, true
		}
	}
	return ServePoint{}, false
}

// ServeBenchConfig parameterizes the serving sweep.
type ServeBenchConfig struct {
	Arch            model.Arch
	Ranks, Replicas int
	// DType selects the engines' inference arithmetic (zero value F64 is
	// the bitwise training-equivalent path; F32 the prepacked-panel fast
	// path the committed artifact measures).
	DType tensor.DType
	// Batches are the MaxBatch values swept (include 1 for the batching-off
	// baseline); DeadlinesMs the MaxWait deadlines.
	Batches     []int
	DeadlinesMs []float64
	// Requests per point at the given client Concurrency.
	Requests    int
	Concurrency int
}

// serveBenchArch is the sweep workload: a deliberately small D-CHAG model
// (16 channels in 4 logical partitions) in the high-request-rate regime the
// north star cares about, where per-request compute is modest and the
// per-batch fixed costs — dispatch handoffs and the replica group's
// rendezvous collectives — are what micro-batching amortizes. At large
// per-request compute on this CPU-bound substrate, batching converges to
// parity (total FLOPs are batch-invariant without accelerator-style data
// parallel hardware); the small shape is where the serving tier's own
// overheads are measurable.
func serveBenchArch() model.Arch {
	return model.Arch{
		Config: core.Config{
			Channels: 16, ImgH: 4, ImgW: 4, Patch: 2,
			Embed: 8, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 515,
		},
		Depth: 1, MetaTokens: 1, Partitions: 4,
	}
}

// DefaultServeBench is the full sweep behind the committed BENCH_serve.json.
func DefaultServeBench() ServeBenchConfig {
	return ServeBenchConfig{
		Arch:  serveBenchArch(),
		Ranks: 2, Replicas: 2,
		DType:       tensor.F32,
		Batches:     []int{1, 2, 4, 8, 16},
		DeadlinesMs: []float64{2, 10},
		Requests:    4000, Concurrency: 24,
	}
}

// QuickServeBench is the reduced configuration the registered experiment
// (and the root benchmark) runs: one deadline, batching off vs on.
func QuickServeBench() ServeBenchConfig {
	cfg := DefaultServeBench()
	cfg.Batches = []int{1, 8}
	cfg.DeadlinesMs = []float64{2}
	cfg.Requests = 300
	cfg.Concurrency = 16
	return cfg
}

// RunServeBench measures every (batch, deadline) point with a fresh engine
// and the same deterministic request stream, marking the highest-throughput
// point Best.
func RunServeBench(cfg ServeBenchConfig) (ServeReport, error) {
	rep := ServeReport{
		Schema:      ServeSchema,
		DType:       cfg.DType.String(),
		Ranks:       cfg.Ranks,
		Replicas:    cfg.Replicas,
		Partitions:  cfg.Arch.Partitions,
		Channels:    cfg.Arch.Channels,
		Concurrency: cfg.Concurrency,
		Requests:    cfg.Requests,
	}
	if cfg.DType == tensor.F32 {
		rep.Note = "measured on the f32 no-grad inference path (prepacked weight panels); earlier serve/v1 artifacts without a dtype field were f64"
	}
	// A fixed pool of inputs keeps request materialization off the measured
	// path's critical section.
	const pool = 64
	inputs := make([]*tensor.Tensor, pool)
	for i := range inputs {
		inputs[i] = tensor.Randn(tensor.NewRNG(int64(1000+i)), cfg.Arch.Channels, cfg.Arch.ImgH, cfg.Arch.ImgW)
	}
	// One queue depth for every point — sized for the largest batch cap —
	// so the batching-off baseline is not additionally throttled by a
	// smaller admission window than the batched configurations.
	maxBatch := 1
	for _, b := range cfg.Batches {
		if b > maxBatch {
			maxBatch = b
		}
	}
	queueDepth := 4 * maxBatch * cfg.Replicas
	best := -1
	for _, deadlineMs := range cfg.DeadlinesMs {
		for _, b := range cfg.Batches {
			e, err := serve.Start(serve.Config{
				Ranks:      cfg.Ranks,
				Replicas:   cfg.Replicas,
				MaxBatch:   b,
				MaxWait:    time.Duration(deadlineMs * float64(time.Millisecond)),
				QueueDepth: queueDepth,
				DType:      cfg.DType,
			}, serve.FromArch(cfg.Arch))
			if err != nil {
				return rep, fmt.Errorf("experiments: starting serve engine (batch %d): %w", b, err)
			}
			res := serve.RunLoadgen(e, serve.LoadgenOptions{
				Requests:    cfg.Requests,
				Concurrency: cfg.Concurrency,
				NewRequest: func(i int) *serve.Request {
					return &serve.Request{ID: fmt.Sprint(i), Input: inputs[i%pool]}
				},
			})
			if err := e.Close(); err != nil {
				return rep, fmt.Errorf("experiments: closing serve engine (batch %d): %w", b, err)
			}
			s := res.Snapshot
			rep.Points = append(rep.Points, ServePoint{
				MaxBatch:      b,
				DeadlineMs:    deadlineMs,
				Requests:      res.Requests,
				Errors:        res.Errors,
				Retries:       res.Retries,
				WallSeconds:   res.Wall.Seconds(),
				ThroughputRPS: res.ThroughputRPS(),
				MeanBatch:     s.MeanBatch,
				QueuedP50Ms:   s.QueuedP50Ms,
				QueuedP99Ms:   s.QueuedP99Ms,
				TotalP50Ms:    s.TotalP50Ms,
				TotalP99Ms:    s.TotalP99Ms,
				MaxQueueDepth: s.MaxQueueDepth,
			})
			if p := len(rep.Points) - 1; best < 0 || rep.Points[p].ThroughputRPS > rep.Points[best].ThroughputRPS {
				best = p
			}
		}
	}
	if best >= 0 {
		rep.Points[best].Best = true
	}
	return rep, nil
}

// runServe renders the quick serving sweep as the registered experiment.
func runServe() Result {
	rep, err := RunServeBench(QuickServeBench())
	tab := &Table{
		Title: fmt.Sprintf("Measured serving throughput (%d ch, %d partitions, %d ranks x %d replicas, %d reqs @ %d clients, %s inference)",
			rep.Channels, rep.Partitions, rep.Ranks, rep.Replicas, rep.Requests, rep.Concurrency, rep.DType),
		Headers: []string{"max batch", "deadline ms", "throughput req/s", "mean batch", "total p50 ms", "total p99 ms", "retries"},
	}
	if err != nil {
		tab.Note("serving bench failed: %v", err)
		return Result{ID: "serve", Title: "Async batched serving", Tables: []*Table{tab}}
	}
	for _, p := range rep.Points {
		tab.Add(fmt.Sprint(p.MaxBatch), fmt.Sprintf("%.0f", p.DeadlineMs),
			fmt.Sprintf("%.0f", p.ThroughputRPS), fmt.Sprintf("%.1f", p.MeanBatch),
			fmt.Sprintf("%.2f", p.TotalP50Ms), fmt.Sprintf("%.2f", p.TotalP99Ms),
			fmt.Sprint(p.Retries))
	}
	tab.Note("wall-clock measurement (not simulated): micro-batching amortizes per-batch dispatch and the replica group's rendezvous collectives across requests")
	return Result{ID: "serve", Title: "Async batched serving", Tables: []*Table{tab}}
}
