package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func init() {
	register(Experiment{
		ID:    "serve",
		Title: "Async batched serving: measured throughput/latency over batch size x deadline",
		Run:   runServe,
	})
}

// ServeSchema identifies the JSON layout of ServeReport — the first
// *serving* point of the perf trajectory (BENCH_serve.json), next to the
// training-side sweep schema. Unlike the step-time sweep this artifact is
// measured wall-clock, so trajectory tooling should compare its points
// qualitatively (batching on vs off), not gate on exact numbers.
const ServeSchema = "dchag-bench/serve/v1"

// ServePoint is one measured (max batch, deadline) configuration.
type ServePoint struct {
	// MaxBatch and DeadlineMs are the micro-batcher knobs under test;
	// MaxBatch 1 is the batching-off baseline.
	MaxBatch   int     `json:"max_batch"`
	DeadlineMs float64 `json:"deadline_ms"`
	// Requests/Errors/Retries are the loadgen outcome (retries are
	// queue-full backoffs — admission control working as intended).
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	Retries  int `json:"retries"`
	// WallSeconds is the run's duration; ThroughputRPS the measured
	// request throughput over it.
	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// MeanBatch is the mean requests per dispatched micro-batch.
	MeanBatch float64 `json:"mean_batch"`
	// Server-side latency quantiles (ms): Queued is micro-batch formation
	// wait, Total is enqueue-to-response.
	QueuedP50Ms   float64 `json:"queued_p50_ms"`
	QueuedP99Ms   float64 `json:"queued_p99_ms"`
	TotalP50Ms    float64 `json:"total_p50_ms"`
	TotalP99Ms    float64 `json:"total_p99_ms"`
	MaxQueueDepth int     `json:"max_queue_depth"`
	// Best marks the highest-throughput point of the report.
	Best bool `json:"best"`
}

// CachePoint is one measured cache hit-ratio configuration: the same
// engine shape under a request stream whose repetition rate targets
// HitRatio, with the content-addressable response cache on.
type CachePoint struct {
	// HitRatio is the targeted fraction of repeated requests in the stream
	// (0 = every request unique, the cache-cold baseline).
	HitRatio float64 `json:"hit_ratio"`
	// Requests/Errors/Retries are the loadgen outcome.
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	Retries  int `json:"retries"`
	// WallSeconds and ThroughputRPS are client-side wall-clock measures
	// over the whole stream, hits and forwards together.
	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	// CacheHits/CacheMisses/Coalesced are the engine's cache counters:
	// answered from cache, owned a forward, joined an in-flight forward.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Coalesced   uint64 `json:"coalesced"`
	// HitP50Ms/HitP99Ms are cache-hit latencies (no queue, no forward);
	// TotalP50Ms/TotalP99Ms the forward-served latencies of the same run.
	HitP50Ms   float64 `json:"hit_p50_ms"`
	HitP99Ms   float64 `json:"hit_p99_ms"`
	TotalP50Ms float64 `json:"total_p50_ms"`
	TotalP99Ms float64 `json:"total_p99_ms"`
}

// SwapBench is the swap-under-load measurement: a loadgen stream across
// one hot checkpoint swap.
type SwapBench struct {
	// Requests/Errors/Retries are the loadgen outcome across the swap;
	// Failed is the engine-side failure count — both must be zero for the
	// "no request dropped" claim.
	Requests int    `json:"requests"`
	Errors   int    `json:"errors"`
	Retries  int    `json:"retries"`
	Failed   uint64 `json:"failed"`
	// Swaps is the engine's swap counter (exactly 1 for this bench).
	Swaps uint64 `json:"swaps"`
	// WallSeconds and ThroughputRPS measure the stream including the swap.
	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

// ServeReport is the machine-readable serving benchmark — the payload
// behind `dchag-serve -bench -json`.
type ServeReport struct {
	Schema string `json:"schema"`
	// DType is the inference arithmetic the engines served under ("f64" or
	// "f32" — see tensor.DType); additive within v1, so artifacts written
	// before the field exists decode to "" and mean f64. Note carries a
	// free-text version annotation for trajectory readers.
	DType string `json:"dtype,omitempty"`
	Note  string `json:"note,omitempty"`
	// Ranks/Replicas/Partitions/Channels describe the serving topology and
	// workload; Concurrency and Requests the offered load per point.
	Ranks       int          `json:"ranks"`
	Replicas    int          `json:"replicas"`
	Partitions  int          `json:"partitions"`
	Channels    int          `json:"channels"`
	Concurrency int          `json:"concurrency"`
	Requests    int          `json:"requests_per_point"`
	Points      []ServePoint `json:"points"`
	// CacheBytes is the response-cache bound the cache sweep and swap bench
	// ran with; CachePoints the hit-ratio sweep and Swap the under-load
	// swap measurement. All additive within serve/v1: artifacts written
	// before these fields exist decode to zero values and mean "not
	// measured".
	CacheBytes  int64        `json:"cache_bytes,omitempty"`
	CachePoints []CachePoint `json:"cache_points,omitempty"`
	Swap        *SwapBench   `json:"swap,omitempty"`
}

// CachePointAt returns the cache point measured at the given hit ratio.
func (r ServeReport) CachePointAt(ratio float64) (CachePoint, bool) {
	for _, p := range r.CachePoints {
		if p.HitRatio == ratio {
			return p, true
		}
	}
	return CachePoint{}, false
}

// PointAt returns the point measured at (maxBatch, deadlineMs).
func (r ServeReport) PointAt(maxBatch int, deadlineMs float64) (ServePoint, bool) {
	for _, p := range r.Points {
		if p.MaxBatch == maxBatch && p.DeadlineMs == deadlineMs {
			return p, true
		}
	}
	return ServePoint{}, false
}

// Best returns the best-marked point.
func (r ServeReport) Best() (ServePoint, bool) {
	for _, p := range r.Points {
		if p.Best {
			return p, true
		}
	}
	return ServePoint{}, false
}

// ServeBenchConfig parameterizes the serving sweep.
type ServeBenchConfig struct {
	Arch            model.Arch
	Ranks, Replicas int
	// DType selects the engines' inference arithmetic (zero value F64 is
	// the bitwise training-equivalent path; F32 the prepacked-panel fast
	// path the committed artifact measures).
	DType tensor.DType
	// Batches are the MaxBatch values swept (include 1 for the batching-off
	// baseline); DeadlinesMs the MaxWait deadlines.
	Batches     []int
	DeadlinesMs []float64
	// Requests per point at the given client Concurrency.
	Requests    int
	Concurrency int
	// CacheHitRatios are the repetition rates of the cache sweep (empty
	// disables it); CacheBytes bounds the response cache for the sweep and
	// the swap bench.
	CacheHitRatios []float64
	CacheBytes     int64
	// SwapUnderLoad adds the hot-swap-under-load measurement.
	SwapUnderLoad bool
}

// serveBenchArch is the sweep workload: a deliberately small D-CHAG model
// (16 channels in 4 logical partitions) in the high-request-rate regime the
// north star cares about, where per-request compute is modest and the
// per-batch fixed costs — dispatch handoffs and the replica group's
// rendezvous collectives — are what micro-batching amortizes. At large
// per-request compute on this CPU-bound substrate, batching converges to
// parity (total FLOPs are batch-invariant without accelerator-style data
// parallel hardware); the small shape is where the serving tier's own
// overheads are measurable.
func serveBenchArch() model.Arch {
	return model.Arch{
		Config: core.Config{
			Channels: 16, ImgH: 4, ImgW: 4, Patch: 2,
			Embed: 8, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 515,
		},
		Depth: 1, MetaTokens: 1, Partitions: 4,
	}
}

// DefaultServeBench is the full sweep behind the committed BENCH_serve.json.
func DefaultServeBench() ServeBenchConfig {
	return ServeBenchConfig{
		Arch:  serveBenchArch(),
		Ranks: 2, Replicas: 2,
		DType:       tensor.F32,
		Batches:     []int{1, 2, 4, 8, 16},
		DeadlinesMs: []float64{2, 10},
		Requests:    4000, Concurrency: 24,
		CacheHitRatios: []float64{0, 0.5, 0.9},
		CacheBytes:     64 << 20,
		SwapUnderLoad:  true,
	}
}

// QuickServeBench is the reduced configuration the registered experiment
// (and the root benchmark) runs: one deadline, batching off vs on.
func QuickServeBench() ServeBenchConfig {
	cfg := DefaultServeBench()
	cfg.Batches = []int{1, 8}
	cfg.DeadlinesMs = []float64{2}
	cfg.Requests = 300
	cfg.Concurrency = 16
	cfg.CacheHitRatios = []float64{0, 0.9}
	return cfg
}

// RunServeBench measures every (batch, deadline) point with a fresh engine
// and the same deterministic request stream, marking the highest-throughput
// point Best.
func RunServeBench(cfg ServeBenchConfig) (ServeReport, error) {
	rep := ServeReport{
		Schema:      ServeSchema,
		DType:       cfg.DType.String(),
		Ranks:       cfg.Ranks,
		Replicas:    cfg.Replicas,
		Partitions:  cfg.Arch.Partitions,
		Channels:    cfg.Arch.Channels,
		Concurrency: cfg.Concurrency,
		Requests:    cfg.Requests,
	}
	if cfg.DType == tensor.F32 {
		rep.Note = "measured on the f32 no-grad inference path (prepacked weight panels); earlier serve/v1 artifacts without a dtype field were f64"
	}
	// A fixed pool of inputs keeps request materialization off the measured
	// path's critical section.
	const pool = 64
	inputs := make([]*tensor.Tensor, pool)
	for i := range inputs {
		inputs[i] = tensor.Randn(tensor.NewRNG(int64(1000+i)), cfg.Arch.Channels, cfg.Arch.ImgH, cfg.Arch.ImgW)
	}
	// One queue depth for every point — sized for the largest batch cap —
	// so the batching-off baseline is not additionally throttled by a
	// smaller admission window than the batched configurations.
	maxBatch := 1
	for _, b := range cfg.Batches {
		if b > maxBatch {
			maxBatch = b
		}
	}
	queueDepth := 4 * maxBatch * cfg.Replicas
	best := -1
	for _, deadlineMs := range cfg.DeadlinesMs {
		for _, b := range cfg.Batches {
			e, err := serve.Start(serve.Config{
				Ranks:      cfg.Ranks,
				Replicas:   cfg.Replicas,
				MaxBatch:   b,
				MaxWait:    time.Duration(deadlineMs * float64(time.Millisecond)),
				QueueDepth: queueDepth,
				DType:      cfg.DType,
			}, serve.FromArch(cfg.Arch))
			if err != nil {
				return rep, fmt.Errorf("experiments: starting serve engine (batch %d): %w", b, err)
			}
			res := serve.RunLoadgen(e, serve.LoadgenOptions{
				Requests:    cfg.Requests,
				Concurrency: cfg.Concurrency,
				NewRequest: func(i int) *serve.Request {
					return &serve.Request{ID: fmt.Sprint(i), Input: inputs[i%pool]}
				},
			})
			if err := e.Close(); err != nil {
				return rep, fmt.Errorf("experiments: closing serve engine (batch %d): %w", b, err)
			}
			s := res.Snapshot
			rep.Points = append(rep.Points, ServePoint{
				MaxBatch:      b,
				DeadlineMs:    deadlineMs,
				Requests:      res.Requests,
				Errors:        res.Errors,
				Retries:       res.Retries,
				WallSeconds:   res.Wall.Seconds(),
				ThroughputRPS: res.ThroughputRPS(),
				MeanBatch:     s.MeanBatch,
				QueuedP50Ms:   s.QueuedP50Ms,
				QueuedP99Ms:   s.QueuedP99Ms,
				TotalP50Ms:    s.TotalP50Ms,
				TotalP99Ms:    s.TotalP99Ms,
				MaxQueueDepth: s.MaxQueueDepth,
			})
			if p := len(rep.Points) - 1; best < 0 || rep.Points[p].ThroughputRPS > rep.Points[best].ThroughputRPS {
				best = p
			}
		}
	}
	if best >= 0 {
		rep.Points[best].Best = true
	}
	// The cache sweep and the swap bench run at the batched engine shape:
	// largest batch cap, tightest deadline — the configuration whose forward
	// throughput the cache must beat.
	benchCfg := serve.Config{
		Ranks:      cfg.Ranks,
		Replicas:   cfg.Replicas,
		MaxBatch:   maxBatch,
		MaxWait:    time.Duration(cfg.DeadlinesMs[0] * float64(time.Millisecond)),
		QueueDepth: queueDepth,
		DType:      cfg.DType,
		CacheBytes: cfg.CacheBytes,
	}
	if len(cfg.CacheHitRatios) > 0 {
		if benchCfg.CacheBytes <= 0 {
			benchCfg.CacheBytes = 64 << 20
			rep.CacheBytes = benchCfg.CacheBytes
		} else {
			rep.CacheBytes = cfg.CacheBytes
		}
		for _, ratio := range cfg.CacheHitRatios {
			p, err := runCachePoint(cfg, benchCfg, ratio)
			if err != nil {
				return rep, err
			}
			rep.CachePoints = append(rep.CachePoints, p)
		}
	}
	if cfg.SwapUnderLoad {
		sw, err := runSwapBench(cfg, benchCfg, inputs)
		if err != nil {
			return rep, err
		}
		rep.Swap = &sw
	}
	return rep, nil
}

// runCachePoint measures one hit-ratio configuration: a request stream over
// ceil(Requests*(1-ratio)) distinct inputs cycled in order, so the repeat
// fraction — and with the cache sized to hold every distinct response, the
// hit fraction — converges to ratio.
func runCachePoint(cfg ServeBenchConfig, ecfg serve.Config, ratio float64) (CachePoint, error) {
	uniques := cfg.Requests - int(float64(cfg.Requests)*ratio)
	if uniques < 1 {
		uniques = 1
	}
	inputs := make([]*tensor.Tensor, uniques)
	for i := range inputs {
		inputs[i] = tensor.Randn(tensor.NewRNG(int64(5000+i)), cfg.Arch.Channels, cfg.Arch.ImgH, cfg.Arch.ImgW)
	}
	e, err := serve.Start(ecfg, serve.FromArch(cfg.Arch))
	if err != nil {
		return CachePoint{}, fmt.Errorf("experiments: starting cached serve engine (ratio %.1f): %w", ratio, err)
	}
	res := serve.RunLoadgen(e, serve.LoadgenOptions{
		Requests:    cfg.Requests,
		Concurrency: cfg.Concurrency,
		NewRequest: func(i int) *serve.Request {
			return &serve.Request{ID: fmt.Sprint(i), Input: inputs[i%uniques]}
		},
	})
	if err := e.Close(); err != nil {
		return CachePoint{}, fmt.Errorf("experiments: closing cached serve engine (ratio %.1f): %w", ratio, err)
	}
	s := res.Snapshot
	return CachePoint{
		HitRatio:      ratio,
		Requests:      res.Requests,
		Errors:        res.Errors,
		Retries:       res.Retries,
		WallSeconds:   res.Wall.Seconds(),
		ThroughputRPS: res.ThroughputRPS(),
		CacheHits:     s.CacheHits,
		CacheMisses:   s.CacheMisses,
		Coalesced:     s.CacheCoalesced,
		HitP50Ms:      s.HitP50Ms,
		HitP99Ms:      s.HitP99Ms,
		TotalP50Ms:    s.TotalP50Ms,
		TotalP99Ms:    s.TotalP99Ms,
	}, nil
}

// runSwapBench runs a loadgen stream and hot-swaps the model once traffic
// is flowing: the claim measured is zero failed requests and exactly one
// swap while throughput holds.
func runSwapBench(cfg ServeBenchConfig, ecfg serve.Config, inputs []*tensor.Tensor) (SwapBench, error) {
	e, err := serve.Start(ecfg, serve.FromArch(cfg.Arch))
	if err != nil {
		return SwapBench{}, fmt.Errorf("experiments: starting swap-bench engine: %w", err)
	}
	next := cfg.Arch
	next.Seed++ // same geometry, different weights: a real model change
	done := make(chan serve.LoadgenResult, 1)
	go func() {
		done <- serve.RunLoadgen(e, serve.LoadgenOptions{
			Requests:    cfg.Requests,
			Concurrency: cfg.Concurrency,
			NewRequest: func(i int) *serve.Request {
				return &serve.Request{ID: fmt.Sprint(i), Input: inputs[i%len(inputs)]}
			},
		})
	}()
	for {
		s := e.Metrics().Snapshot()
		if s.Completed+s.CacheHits > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := e.Swap(serve.FromArch(next)); err != nil {
		//lint:ignore commerr the swap error is the root cause; Close only tears down
		e.Close()
		<-done
		return SwapBench{}, fmt.Errorf("experiments: hot swap under load: %w", err)
	}
	res := <-done
	snap := e.Metrics().Snapshot()
	if err := e.Close(); err != nil {
		return SwapBench{}, fmt.Errorf("experiments: closing swap-bench engine: %w", err)
	}
	return SwapBench{
		Requests:      res.Requests,
		Errors:        res.Errors,
		Retries:       res.Retries,
		Failed:        snap.Failed,
		Swaps:         snap.Swaps,
		WallSeconds:   res.Wall.Seconds(),
		ThroughputRPS: res.ThroughputRPS(),
	}, nil
}

// runServe renders the quick serving sweep as the registered experiment.
func runServe() Result {
	rep, err := RunServeBench(QuickServeBench())
	tab := &Table{
		Title: fmt.Sprintf("Measured serving throughput (%d ch, %d partitions, %d ranks x %d replicas, %d reqs @ %d clients, %s inference)",
			rep.Channels, rep.Partitions, rep.Ranks, rep.Replicas, rep.Requests, rep.Concurrency, rep.DType),
		Headers: []string{"max batch", "deadline ms", "throughput req/s", "mean batch", "total p50 ms", "total p99 ms", "retries"},
	}
	if err != nil {
		tab.Note("serving bench failed: %v", err)
		return Result{ID: "serve", Title: "Async batched serving", Tables: []*Table{tab}}
	}
	for _, p := range rep.Points {
		tab.Add(fmt.Sprint(p.MaxBatch), fmt.Sprintf("%.0f", p.DeadlineMs),
			fmt.Sprintf("%.0f", p.ThroughputRPS), fmt.Sprintf("%.1f", p.MeanBatch),
			fmt.Sprintf("%.2f", p.TotalP50Ms), fmt.Sprintf("%.2f", p.TotalP99Ms),
			fmt.Sprint(p.Retries))
	}
	tab.Note("wall-clock measurement (not simulated): micro-batching amortizes per-batch dispatch and the replica group's rendezvous collectives across requests")
	tables := []*Table{tab}

	if len(rep.CachePoints) > 0 {
		ct := &Table{
			Title:   fmt.Sprintf("Response cache hit-ratio sweep (%d MiB cache)", rep.CacheBytes>>20),
			Headers: []string{"hit ratio", "throughput req/s", "hits", "misses", "coalesced", "hit p99 ms", "total p99 ms"},
		}
		for _, p := range rep.CachePoints {
			ct.Add(fmt.Sprintf("%.1f", p.HitRatio), fmt.Sprintf("%.0f", p.ThroughputRPS),
				fmt.Sprint(p.CacheHits), fmt.Sprint(p.CacheMisses), fmt.Sprint(p.Coalesced),
				fmt.Sprintf("%.3f", p.HitP99Ms), fmt.Sprintf("%.2f", p.TotalP99Ms))
		}
		ct.Note("forward is bitwise deterministic, so responses are content-addressable: a hit skips the queue and the forward entirely")
		tables = append(tables, ct)
	}
	if rep.Swap != nil {
		st := &Table{
			Title:   "Hot checkpoint swap under load",
			Headers: []string{"requests", "errors", "failed", "swaps", "throughput req/s"},
		}
		st.Add(fmt.Sprint(rep.Swap.Requests), fmt.Sprint(rep.Swap.Errors),
			fmt.Sprint(rep.Swap.Failed), fmt.Sprint(rep.Swap.Swaps),
			fmt.Sprintf("%.0f", rep.Swap.ThroughputRPS))
		st.Note("routing flips atomically to the new model while in-flight batches drain against the old one — no request is dropped")
		tables = append(tables, st)
	}
	return Result{ID: "serve", Title: "Async batched serving", Tables: tables}
}
