package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/dist"
	"repro/internal/obs"
)

// TestTraceBenchAgrees pins the tentpole claim: attribution from real
// traced wire volumes matches the analytic model per axis within 30% —
// and, because the inversion and pricing share the model's own
// formulas, in practice exactly.
func TestTraceBenchAgrees(t *testing.T) {
	rep, tr, err := RunTraceBench()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != TraceSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, TraceSchema)
	}
	if !rep.Agrees {
		t.Fatalf("attribution disagrees: max ratio err %.3f", rep.MaxRatioErr)
	}
	if len(rep.Axes) != int(dist.NumAxes) {
		t.Fatalf("report has %d axes, want %d", len(rep.Axes), dist.NumAxes)
	}
	for _, a := range rep.Axes {
		if a.Spans == 0 || a.WireBytes == 0 || a.MeasuredSeconds == 0 {
			t.Errorf("axis %s traced nothing: %+v", a.Axis, a)
		}
		if a.ModeledSeconds == 0 {
			t.Errorf("axis %s has no modeled schedule — the 2x2x2 strategy must exercise every axis", a.Axis)
		}
		if a.Ratio < 0.70 || a.Ratio > 1.30 {
			t.Errorf("axis %s ratio %.3f outside the 30%% gate", a.Axis, a.Ratio)
		}
	}
	// The tracer must hold a per-rank view exportable to Chrome JSON.
	if tr.Rows() != rep.World {
		t.Fatalf("tracer rows %d, want world %d", tr.Rows(), rep.World)
	}
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("bench trace does not validate: %v", err)
	}
}

// TestTraceBenchDeterministic pins the artifact's CI gate: two runs
// must serialize byte-identically (no wall clock enters the report).
func TestTraceBenchDeterministic(t *testing.T) {
	a, _, err := RunTraceBench()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunTraceBench()
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("trace reports differ between runs:\n%s\n%s", aj, bj)
	}
}
