package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"compute", "fig06", "fig07", "fig08", "fig09", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "serve", "sweep", "trace"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, all[i].ID, id)
		}
		if _, ok := Find(id); !ok {
			t.Fatalf("Find(%s) failed", id)
		}
	}
	if _, ok := Find("fig99"); ok {
		t.Fatal("Find must reject unknown ids")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Headers: []string{"a", "bb"}}
	tab.Add("1", "2")
	tab.Note("hello %d", 5)
	s := tab.String()
	for _, want := range []string{"== demo ==", "a", "bb", "note: hello 5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
}

// cell finds the first row matching the given leading cells and returns the
// value at column idx.
func cell(t *testing.T, tab *Table, idx int, prefix ...string) string {
	t.Helper()
	for _, row := range tab.Rows {
		match := true
		for i, p := range prefix {
			if row[i] != p {
				match = false
				break
			}
		}
		if match {
			return row[idx]
		}
	}
	t.Fatalf("no row with prefix %v in table %q", prefix, tab.Title)
	return ""
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimPrefix(s, "+"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse percentage %q: %v", s, err)
	}
	return v
}

func TestFig06BoundariesInTable(t *testing.T) {
	res := runFig06()
	mem := res.Tables[0]
	if got := cell(t, mem, 7, "100M", "512"); got != "fits" {
		t.Fatalf("100M@512 = %s, want fits", got)
	}
	if got := cell(t, mem, 7, "100M", "1024"); got != "OOM" {
		t.Fatalf("100M@1024 = %s, want OOM", got)
	}
	if got := cell(t, mem, 7, "1B", "256"); got != "fits" {
		t.Fatalf("1B@256 = %s", got)
	}
	if got := cell(t, mem, 7, "3B", "256"); got != "OOM" {
		t.Fatalf("3B@256 = %s", got)
	}
	// FLOPs share of the channel stage grows with channels for each model.
	flops := res.Tables[1]
	lo, _ := strconv.ParseFloat(cell(t, flops, 2, "1B", "32"), 64)
	hi, _ := strconv.ParseFloat(cell(t, flops, 2, "1B", "512"), 64)
	if !(hi > lo) {
		t.Fatalf("tokenization FLOPs share must grow with channels: %v vs %v", lo, hi)
	}
}

func TestFig08AllGatherNegatesGains(t *testing.T) {
	res := runFig08()
	tab := res.Tables[0]
	for _, row := range tab.Rows {
		baseTokAgg, _ := strconv.ParseFloat(row[2], 64)
		distTokOnly, _ := strconv.ParseFloat(row[4], 64)
		distTokAgg, _ := strconv.ParseFloat(row[5], 64)
		baseTokOnly, _ := strconv.ParseFloat(row[3], 64)
		if !(distTokOnly < baseTokOnly) {
			t.Fatalf("dist tok must shrink tokenization: %v vs %v", distTokOnly, baseTokOnly)
		}
		if !(distTokAgg > 0.85*baseTokAgg) {
			t.Fatalf("gathered aggregation must erase most of the gain: %v vs %v", distTokAgg, baseTokAgg)
		}
	}
}

func TestFig09LinearBeatsCrossAndGainsGrowWithChannels(t *testing.T) {
	res := runFig09()
	tab := res.Tables[0]
	l512 := parsePct(t, cell(t, tab, 4, "512", "2", "D-CHAG-L-Tree0"))
	c512 := parsePct(t, cell(t, tab, 4, "512", "2", "D-CHAG-C-Tree0"))
	l1024 := parsePct(t, cell(t, tab, 4, "1024", "8", "D-CHAG-L-Tree0"))
	c1024 := parsePct(t, cell(t, tab, 4, "1024", "8", "D-CHAG-C-Tree0"))
	if !(l512 > c512 && l1024 > c1024) {
		t.Fatalf("-L must beat -C: 512(%v vs %v) 1024(%v vs %v)", l512, c512, l1024, c1024)
	}
	if !(l1024 > l512 && c1024 > c512) {
		t.Fatalf("gains must grow with channels: L(%v->%v) C(%v->%v)", l512, l1024, c512, c1024)
	}
	// Paper: D-CHAG-C at 1024 channels gains ~60%.
	if c1024 < 30 || c1024 > 90 {
		t.Fatalf("D-CHAG-C@1024 gain %v%% outside the plausible band around the paper's 60%%", c1024)
	}
}

func TestFig13GainsShrinkWithModelSize(t *testing.T) {
	res := runFig13()
	tab := res.Tables[0]
	g7 := parsePct(t, cell(t, tab, 6, "7B", "256", "8", "L"))
	g15 := parsePct(t, cell(t, tab, 6, "15B", "256", "8", "L"))
	if !(g7 > g15) {
		t.Fatalf("7B gain %v%% must exceed 15B gain %v%%", g7, g15)
	}
	// Paper band for 7B-L: 30-70%.
	if g7 < 20 || g7 > 85 {
		t.Fatalf("7B-L@256 gain %v%% far from the paper's 30-70%% band", g7)
	}
}

func TestFig14DCHAGFitsLargeModel(t *testing.T) {
	res := runFig14()
	tab := res.Tables[0]
	if got := cell(t, tab, 6, "TP only", "256", "8"); got != "OOM" {
		t.Fatalf("26B@256 TP=8 = %s, want OOM", got)
	}
	if got := cell(t, tab, 6, "D-CHAG-L + TP", "512", "32"); got != "fits" {
		t.Fatalf("26B@512 D-CHAG TP=32 = %s, want fits", got)
	}
	frac, _ := strconv.ParseFloat(cell(t, tab, 5, "D-CHAG-L + TP", "512", "32"), 64)
	if frac >= 0.8 {
		t.Fatalf("26B@512 D-CHAG fraction %v, paper says < 0.8", frac)
	}
}

func TestFig15DCHAGConfigsBeatBaseline(t *testing.T) {
	res := runFig15()
	tab := res.Tables[0]
	var bestBase, bestDchag float64
	for _, row := range tab.Rows {
		if row[3] == "-" {
			continue
		}
		v, _ := strconv.ParseFloat(row[3], 64)
		if strings.HasPrefix(row[0], "TP-baseline") {
			if v > bestBase {
				bestBase = v
			}
		} else if v > bestDchag {
			bestDchag = v
		}
	}
	if !(bestDchag > 1.5*bestBase) {
		t.Fatalf("best D-CHAG config %.1f TFLOPs/s/node should clearly beat best baseline %.1f", bestDchag, bestBase)
	}
}

func TestFig16HybridMoreThanDoubles(t *testing.T) {
	res := runFig16()
	tab := res.Tables[0]
	gain := parsePct(t, cell(t, tab, 3, "1024"))
	if gain < 100 {
		t.Fatalf("hybrid gain at 1024 GCDs = %v%%, paper reports >100%% (more than double)", gain)
	}
	if gain > 400 {
		t.Fatalf("hybrid gain at 1024 GCDs = %v%% is implausibly far above the paper's +239%%", gain)
	}
	// Both columns scale with GPU count.
	t16, _ := strconv.ParseFloat(cell(t, tab, 2, "16"), 64)
	t1024, _ := strconv.ParseFloat(cell(t, tab, 2, "1024"), 64)
	if !(t1024 > 30*t16) {
		t.Fatalf("hybrid throughput must scale with GPUs: %v -> %v", t16, t1024)
	}
}

func TestFig11TrainingAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment skipped in -short mode")
	}
	res := runFig11()
	tab := res.Tables[0]
	if len(tab.Rows) == 0 {
		t.Fatal("fig11 produced no rows")
	}
	// The loss at the last reported step must have decreased for both runs.
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	b0, _ := strconv.ParseFloat(first[1], 64)
	b1, _ := strconv.ParseFloat(last[1], 64)
	d0, _ := strconv.ParseFloat(first[2], 64)
	d1, _ := strconv.ParseFloat(last[2], 64)
	if !(b1 < b0 && d1 < d0) {
		t.Fatalf("losses must decrease: baseline %v->%v dchag %v->%v", b0, b1, d0, d1)
	}
	// The zero-communication note must report 0 bytes.
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "communication: 0 bytes") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fig11 notes missing zero-comm statement: %v", tab.Notes)
	}
}

func TestFig12TrainingAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment skipped in -short mode")
	}
	res := runFig12()
	loss := res.Tables[0]
	last := loss.Rows[len(loss.Rows)-1]
	base, _ := strconv.ParseFloat(last[1], 64)
	dcC, _ := strconv.ParseFloat(last[2], 64)
	dcL, _ := strconv.ParseFloat(last[3], 64)
	for _, v := range []float64{dcC, dcL} {
		rel := (v - base) / base
		if rel < -0.25 || rel > 0.25 {
			t.Fatalf("final D-CHAG loss %v too far from baseline %v", v, base)
		}
	}
	rmse := res.Tables[1]
	if len(rmse.Rows) != 3 {
		t.Fatalf("want RMSE rows for Z500/T850/U10, got %d", len(rmse.Rows))
	}
	for _, row := range rmse.Rows {
		for _, col := range []int{4, 5} {
			rel := parsePct(t, row[col])
			if rel < -30 || rel > 30 {
				t.Fatalf("%s RMSE deviation %v%% outside the reduced-scale tolerance", row[0], rel)
			}
		}
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" || Sparkline([]float64{1}, 0) != "" {
		t.Fatal("degenerate inputs must render empty")
	}
	s := Sparkline([]float64{5, 4, 3, 2, 1}, 5)
	runes := []rune(s)
	if len(runes) != 5 {
		t.Fatalf("width = %d, want 5", len(runes))
	}
	if runes[0] != '█' || runes[4] != '▁' {
		t.Fatalf("monotone series should fall from full to empty block: %q", s)
	}
	// Downsampling keeps the requested width.
	long := make([]float64, 100)
	for i := range long {
		long[i] = float64(i)
	}
	if got := len([]rune(Sparkline(long, 12))); got != 12 {
		t.Fatalf("downsampled width = %d, want 12", got)
	}
	// Flat series renders uniformly without dividing by zero.
	flat := Sparkline([]float64{2, 2, 2}, 3)
	if len([]rune(flat)) != 3 {
		t.Fatal("flat series must render")
	}
}

func TestMarkdownRendering(t *testing.T) {
	tab := &Table{Title: "demo", Headers: []string{"a", "b"}}
	tab.Add("1", "2")
	tab.Note("note here")
	md := tab.Markdown()
	for _, want := range []string{"#### demo", "| a | b |", "| --- | --- |", "| 1 | 2 |", "*note here*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	res := Result{ID: "figX", Title: "t", Tables: []*Table{tab}}
	if !strings.Contains(res.Markdown(), "### figX — t") {
		t.Fatal("result markdown missing heading")
	}
}
