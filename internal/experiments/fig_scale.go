package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

func init() {
	register(Experiment{ID: "fig13", Title: "D-CHAG gains as model size scales: 7B/15B/26B (paper Fig. 13)", Run: runFig13})
	register(Experiment{ID: "fig14", Title: "26B model with 256/512 channels (paper Fig. 14)", Run: runFig14})
	register(Experiment{ID: "fig15", Title: "Hybrid D-CHAG/TP/FSDP/DP configurations, 7B @ 500 channels (paper Fig. 15)", Run: runFig15})
	register(Experiment{ID: "fig16", Title: "Sustained throughput vs batch scale up to 1,024 GCDs (paper Fig. 16)", Run: runFig16})
}

// runFig13 reproduces the model-size scaling study: memory gains per GPU of
// D-CHAG(+TP) over TP alone for the 7B, 15B and 26B models at the channel
// counts where TP is required.
func runFig13() Result {
	t := &Table{
		Title:   "D-CHAG + TP vs TP alone (per-GPU memory gain)",
		Headers: []string{"model", "channels", "TP", "kind", "baseline GiB", "dchag GiB", "mem gain", "throughput gain"},
	}
	machine := hw.Frontier()
	cal := perfmodel.DefaultCalibration()
	for _, tc := range []struct {
		name string
		chs  []int
		tp   int
	}{
		{"7B", []int{256, 512}, 8},
		{"15B", []int{128, 256}, 8},
		{"26B", []int{64, 128}, 8},
	} {
		shape := perfmodel.Shapes[tc.name]
		for _, ch := range tc.chs {
			wl := perfmodel.ReferenceWorkload(ch)
			base := perfmodel.AnalyzeDefault(shape, wl, perfmodel.Strategy{Method: perfmodel.MethodBaseline, TP: tc.tp})
			for _, kind := range []core.LayerKind{core.KindLinear, core.KindCross} {
				s := perfmodel.Strategy{Method: perfmodel.MethodDCHAG, TP: tc.tp, Tree: 0, Kind: kind}
				r := perfmodel.AnalyzeDefault(shape, wl, s)
				t.Add(tc.name, fmt.Sprint(ch), fmt.Sprint(tc.tp), kind.String(),
					gib(base.TotalMemBytes()), gib(r.TotalMemBytes()),
					pct(perfmodel.MemGainOverBaseline(shape, wl, s, machine, cal)),
					pct(perfmodel.ThroughputGainOverBaseline(shape, wl, s, machine, cal)))
			}
		}
	}
	t.Note("paper: ~30-70%% gains (7B, -L), 10-60%% (7B, -C), >20-50%% (15B), 10-30%% (26B)")
	t.Note("paper: gains grow with channels for fixed model size, shrink as transformer parameters grow")
	return Result{ID: "fig13", Title: "Performance as model size scales", Tables: []*Table{t}}
}

// runFig14 reproduces the 26B study: TP-only is infeasible at 256 channels
// within a node (and marginal beyond), while D-CHAG fits 512 channels below
// 80% of memory.
func runFig14() Result {
	t := &Table{
		Title:   "26B model memory (fraction of 64 GB GCD capacity)",
		Headers: []string{"method", "channels", "GPUs", "tok+agg GiB", "total GiB", "fraction", "status"},
	}
	shape := perfmodel.Shapes["26B"]
	for _, tp := range []int{8, 16, 32} {
		wl := perfmodel.ReferenceWorkload(256)
		r := perfmodel.AnalyzeDefault(shape, wl, perfmodel.Strategy{Method: perfmodel.MethodBaseline, TP: tp})
		t.Add("TP only", "256", fmt.Sprint(tp),
			gib(r.ComponentMemBytes(perfmodel.CompTok)+r.ComponentMemBytes(perfmodel.CompAgg)),
			gib(r.TotalMemBytes()),
			fmt.Sprintf("%.2f", r.TotalMemBytes()/float64(r.Machine.GPUMemBytes)),
			fitMark(r.Fits()))
	}
	for _, tp := range []int{8, 16, 32} {
		for _, ch := range []int{256, 512} {
			wl := perfmodel.ReferenceWorkload(ch)
			s := perfmodel.Strategy{Method: perfmodel.MethodDCHAG, TP: tp, Tree: 0, Kind: core.KindLinear}
			r := perfmodel.AnalyzeDefault(shape, wl, s)
			t.Add("D-CHAG-L + TP", fmt.Sprint(ch), fmt.Sprint(tp),
				gib(r.ComponentMemBytes(perfmodel.CompTok)+r.ComponentMemBytes(perfmodel.CompAgg)),
				gib(r.TotalMemBytes()),
				fmt.Sprintf("%.2f", r.TotalMemBytes()/float64(r.Machine.GPUMemBytes)),
				fitMark(r.Fits()))
		}
	}
	t.Note("paper: TP alone cannot fit 26B@256 (our model: infeasible within a node, marginal at 2+ nodes); D-CHAG fits 26B@512 under 80%% of memory")
	t.Note("paper: D-CHAG tok+agg memory grows slowly with GPUs (model size increases linearly with ranks)")
	return Result{ID: "fig14", Title: "Very large model feasibility", Tables: []*Table{t}}
}

// fig15Configs are the hybrid configurations compared at 16 GCDs (two
// Frontier nodes), 7B model, 500 channels.
func fig15Configs() []perfmodel.Strategy {
	return []perfmodel.Strategy{
		{Method: perfmodel.MethodBaseline, TP: 16},
		{Method: perfmodel.MethodBaseline, TP: 8, FSDP: 2},
		{Method: perfmodel.MethodDCHAG, TP: 8, FSDP: 2, Tree: 0, Kind: core.KindLinear},
		{Method: perfmodel.MethodDCHAG, TP: 8, DP: 2, Tree: 0, Kind: core.KindLinear},
		{Method: perfmodel.MethodDCHAG, TP: 2, FSDP: 8, Tree: 0, Kind: core.KindLinear},
		{Method: perfmodel.MethodDCHAG, TP: 2, FSDP: 4, DP: 2, Tree: 0, Kind: core.KindLinear},
	}
}

// runFig15 reproduces the hybrid optimization study: memory per GPU and
// modeled TFLOPs/sec per node for combinations of D-CHAG, TP, FSDP and DP on
// 16 GCDs with 500-channel images, letting each configuration use the
// largest micro-batch that fits.
func runFig15() Result {
	t := &Table{
		Title:   "Hybrid configurations, 7B model, 500 channels, 16 GCDs (2 nodes)",
		Headers: []string{"config", "micro-batch", "mem GiB/GPU", "TFLOPs/s/node", "status"},
	}
	shape := perfmodel.Shapes["7B"]
	machine := hw.Frontier()
	cal := perfmodel.DefaultCalibration()
	for _, s := range fig15Configs() {
		if s.World() != 16 {
			// Normalize every configuration to 16 GCDs with DP.
			s.DP = 16 / (s.TP * maxInt(s.FSDP, 1))
			if s.DP < 1 {
				continue
			}
		}
		wl := perfmodel.ReferenceWorkload(500)
		wl.MicroBatch = 1
		b := perfmodel.MaxMicroBatch(shape, wl, s, machine, cal)
		if b == 0 {
			t.Add(s.Label(), "-", "-", "-", "OOM")
			continue
		}
		wl.MicroBatch = b
		r := perfmodel.Analyze(shape, wl, s, machine, cal)
		t.Add(s.Label(), fmt.Sprint(b), gib(r.TotalMemBytes()),
			fmt.Sprintf("%.1f", r.TFLOPsPerSecPerNode()), fitMark(r.Fits()))
	}
	t.Note("paper: D-CHAG frees memory, the freed memory becomes batch, and throughput per node rises")
	return Result{ID: "fig15", Title: "Hybrid performance optimization", Tables: []*Table{t}}
}

// runFig16 reproduces the batch-size scaling study up to 1,024 GCDs: the
// baseline (TP+FSDP across two nodes, DP across pairs of nodes) versus
// Hybrid D-CHAG (node-local D-CHAG+TP+FSDP, DP across nodes).
func runFig16() Result {
	t := &Table{
		Title:   "Sustained throughput scaling, 7B model, 500 channels",
		Headers: []string{"GCDs", "baseline TFLOPs/s", "hybrid D-CHAG TFLOPs/s", "gain", "baseline batch", "hybrid batch"},
	}
	shape := perfmodel.Shapes["7B"]
	machine := hw.Frontier()
	cal := perfmodel.DefaultCalibration()
	for _, gpus := range []int{16, 32, 64, 128, 256, 512, 1024} {
		// Baseline: TP=8 x FSDP=2 spans two nodes per replica.
		base := perfmodel.Strategy{Method: perfmodel.MethodBaseline, TP: 8, FSDP: 2, DP: gpus / 16}
		// Hybrid: D-CHAG TP=2 x FSDP=4 fits in one node; DP across nodes.
		hyb := perfmodel.Strategy{Method: perfmodel.MethodDCHAG, TP: 2, FSDP: 4, DP: gpus / 8, Tree: 0, Kind: core.KindLinear}
		row := []string{fmt.Sprint(gpus)}
		wl := perfmodel.ReferenceWorkload(500)
		wl.MicroBatch = 1
		bBase := perfmodel.MaxMicroBatch(shape, wl, base, machine, cal)
		bHyb := perfmodel.MaxMicroBatch(shape, wl, hyb, machine, cal)
		var tpBase, tpHyb float64
		if bBase > 0 {
			w := wl
			w.MicroBatch = bBase
			tpBase = perfmodel.Analyze(shape, w, base, machine, cal).TFLOPsPerSec()
		}
		if bHyb > 0 {
			w := wl
			w.MicroBatch = bHyb
			tpHyb = perfmodel.Analyze(shape, w, hyb, machine, cal).TFLOPsPerSec()
		}
		gain := "-"
		if tpBase > 0 {
			gain = pct(tpHyb/tpBase - 1)
		}
		row = append(row, fmt.Sprintf("%.0f", tpBase), fmt.Sprintf("%.0f", tpHyb), gain,
			fmt.Sprint(bBase*base.FSDP*base.DP), fmt.Sprint(bHyb*hyb.FSDP*hyb.DP))
		t.Add(row...)
	}
	t.Note("paper: Hybrid D-CHAG sustains more than 2x the baseline throughput as batch size scales to 1,024 GPUs (up to +239%%)")
	return Result{ID: "fig16", Title: "Performance as batch size scales", Tables: []*Table{t}}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
