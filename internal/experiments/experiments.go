// Package experiments regenerates every figure of the paper's evaluation
// (Figs. 6-9 and 11-16) as text tables: memory-by-component studies and
// throughput projections from internal/perfmodel, and real reduced-scale
// training runs (loss-curve and RMSE comparisons) from internal/train.
//
// Each figure is an Experiment in the registry; cmd/dchag-bench, the root
// benchmark suite, and EXPERIMENTS.md all consume the same runners, so the
// documented numbers are exactly what the tools print.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a printable result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Note appends a free-text note rendered under the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*Table
}

// String renders all tables.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Experiment is a registered figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func() Result
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns the registered experiments sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// pct formats a ratio as a signed percentage.
func pct(v float64) string { return fmt.Sprintf("%+.1f%%", 100*v) }

// gib formats bytes as GiB.
func gib(v float64) string { return fmt.Sprintf("%.1f", v/(1<<30)) }

// fitMark renders the OOM marker used across the memory tables.
func fitMark(fits bool) string {
	if fits {
		return "fits"
	}
	return "OOM"
}

// Sparkline renders values as a compact unicode bar chart (min-max scaled),
// used to show training curves inline in experiment notes.
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width < 1 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	// Downsample to width by averaging buckets.
	sampled := make([]float64, 0, width)
	if len(values) <= width {
		sampled = values
	} else {
		for i := 0; i < width; i++ {
			lo := i * len(values) / width
			hi := (i + 1) * len(values) / width
			sum := 0.0
			for _, v := range values[lo:hi] {
				sum += v
			}
			sampled = append(sampled, sum/float64(hi-lo))
		}
	}
	lo, hi := sampled[0], sampled[0]
	for _, v := range sampled {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	out := make([]rune, len(sampled))
	for i, v := range sampled {
		idx := int((v - lo) / span * float64(len(glyphs)-1))
		out[i] = glyphs[idx]
	}
	return string(out)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#### %s\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// Markdown renders the whole result as markdown.
func (r Result) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.Markdown())
		b.WriteString("\n")
	}
	return b.String()
}
