package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/tensor"
)

func init() {
	register(Experiment{
		ID:    "compute",
		Title: "Compute substrate: measured GEMM throughput, naive vs blocked f64 vs f32",
		Run:   runCompute,
	})
}

// ComputeSchema identifies the JSON layout of ComputeReport — the
// single-node compute-substrate point of the perf trajectory
// (BENCH_compute.json, written by `dchag-bench -compute`). Like the serving
// artifact it is wall-clock measured, so tooling gates on its qualitative
// claims (blocked beats naive, f32 beats f64, steady state allocation-free)
// rather than exact rates.
const ComputeSchema = "dchag-bench/compute/v1"

// ComputePoint is one measured square GEMM size (dst = A@B, all [n,n]).
type ComputePoint struct {
	// Size is the square matrix extent n; each product is 2n^3 FLOPs.
	Size int `json:"size"`
	// NaiveGFLOPS is the pre-blocking reference kernel
	// (tensor.MatMulNaiveInto, parallel ikj); BlockedGFLOPS the packed,
	// register-tiled f64 driver (tensor.MatMulInto); F32GFLOPS the float32
	// kernel against a prepacked B panel (tensor.MatMulPackedF32Into — the
	// serving configuration, so packing is off the measured path).
	NaiveGFLOPS   float64 `json:"naive_gflops"`
	BlockedGFLOPS float64 `json:"blocked_gflops"`
	F32GFLOPS     float64 `json:"f32_gflops"`
	// BlockedSpeedup is BlockedGFLOPS/NaiveGFLOPS; F32Speedup is
	// F32GFLOPS/BlockedGFLOPS.
	BlockedSpeedup float64 `json:"blocked_speedup"`
	F32Speedup     float64 `json:"f32_speedup"`
	// BlockedAllocsPerOp and F32AllocsPerOp are steady-state heap
	// allocations per product with a reused destination (pool-backed panel
	// scratch warm); the destination-passing contract pins both at 0 on a
	// single-threaded run.
	BlockedAllocsPerOp float64 `json:"blocked_allocs_per_op"`
	F32AllocsPerOp     float64 `json:"f32_allocs_per_op"`
}

// ComputeClaims are the qualitative gates the artifact test asserts. The
// speedup claims hold only where the vector micro-kernels run, so
// TestComputeJSONArtifact gates them on SIMD being true in the artifact.
type ComputeClaims struct {
	// BlockedSpeedupAtMax and F32SpeedupAtMax are the speedups at the
	// largest measured size (the ISSUE gates: blocked >= 2x naive, f32 >=
	// 1.5x blocked f64 at 512^3 under SIMD).
	BlockedSpeedupAtMax float64 `json:"blocked_speedup_at_max"`
	F32SpeedupAtMax     float64 `json:"f32_speedup_at_max"`
	// AllocFree reports that every measured point ran with zero steady-state
	// allocations per product.
	AllocFree bool `json:"steady_state_alloc_free"`
}

// ComputeReport is the machine-readable compute benchmark — the payload
// behind `dchag-bench -compute`.
type ComputeReport struct {
	Schema string `json:"schema"`
	// SIMD records whether the AVX2+FMA micro-kernels were active; MaxProcs
	// the GOMAXPROCS the rates were measured under.
	SIMD     bool           `json:"simd"`
	MaxProcs int            `json:"maxprocs"`
	Sizes    []int          `json:"sizes"`
	Points   []ComputePoint `json:"points"`
	Claims   ComputeClaims  `json:"claims"`
}

// PointAt returns the point measured at size n.
func (r ComputeReport) PointAt(n int) (ComputePoint, bool) {
	for _, p := range r.Points {
		if p.Size == n {
			return p, true
		}
	}
	return ComputePoint{}, false
}

// ComputeBenchConfig parameterizes the compute benchmark.
type ComputeBenchConfig struct {
	// Sizes are the square GEMM extents measured, ascending; the claims are
	// evaluated at the last one.
	Sizes []int
	// MinTime is the minimum measured wall time per timing trial; Trials is
	// the number of best-of trials per kernel.
	MinTime time.Duration
	Trials  int
	// AllocIters is the iteration count for the allocs-per-op measurement.
	AllocIters int
}

// DefaultComputeBench is the full configuration behind the committed
// BENCH_compute.json: the 512^3 claim size plus smaller points that show
// where blocking starts to pay.
func DefaultComputeBench() ComputeBenchConfig {
	return ComputeBenchConfig{
		Sizes:      []int{64, 128, 256, 512},
		MinTime:    200 * time.Millisecond,
		Trials:     3,
		AllocIters: 10,
	}
}

// QuickComputeBench is the reduced configuration the registered experiment
// and the package tests run.
func QuickComputeBench() ComputeBenchConfig {
	return ComputeBenchConfig{
		Sizes:      []int{64, 128},
		MinTime:    10 * time.Millisecond,
		Trials:     1,
		AllocIters: 4,
	}
}

// RunComputeBench measures every configured size with deterministic
// operands and derives the claim fields from the largest one.
func RunComputeBench(cfg ComputeBenchConfig) ComputeReport {
	rep := ComputeReport{
		Schema:   ComputeSchema,
		SIMD:     tensor.SIMDEnabled(),
		MaxProcs: runtime.GOMAXPROCS(0),
		Sizes:    append([]int(nil), cfg.Sizes...),
	}
	for _, n := range cfg.Sizes {
		rng := tensor.NewRNG(int64(9000 + n))
		a := tensor.Randn(rng, n, n)
		b := tensor.Randn(rng, n, n)
		dst := tensor.New(n, n)
		pb := tensor.PackB32(b)

		p := ComputePoint{Size: n}
		p.NaiveGFLOPS = measureGFLOPS(n, cfg, func() { tensor.MatMulNaiveInto(dst, a, b) })
		p.BlockedGFLOPS = measureGFLOPS(n, cfg, func() { tensor.MatMulInto(dst, a, b) })
		p.F32GFLOPS = measureGFLOPS(n, cfg, func() { tensor.MatMulPackedF32Into(dst, a, pb) })
		p.BlockedSpeedup = p.BlockedGFLOPS / p.NaiveGFLOPS
		p.F32Speedup = p.F32GFLOPS / p.BlockedGFLOPS
		p.BlockedAllocsPerOp = allocsPerOp(cfg.AllocIters, func() { tensor.MatMulInto(dst, a, b) })
		p.F32AllocsPerOp = allocsPerOp(cfg.AllocIters, func() { tensor.MatMulPackedF32Into(dst, a, pb) })
		rep.Points = append(rep.Points, p)
	}
	last := rep.Points[len(rep.Points)-1]
	rep.Claims = ComputeClaims{
		BlockedSpeedupAtMax: last.BlockedSpeedup,
		F32SpeedupAtMax:     last.F32Speedup,
		AllocFree:           true,
	}
	for _, p := range rep.Points {
		if p.BlockedAllocsPerOp != 0 || p.F32AllocsPerOp != 0 {
			rep.Claims.AllocFree = false
		}
	}
	return rep
}

// measureGFLOPS times repeated invocations of step (one n^3 product each),
// growing the repetition count until a trial spans cfg.MinTime, and returns
// the best trial's rate in GFLOP/s.
func measureGFLOPS(n int, cfg ComputeBenchConfig, step func()) float64 {
	step() // warm the pool and the packed panels
	flops := 2 * float64(n) * float64(n) * float64(n)
	best := 0.0
	for trial := 0; trial < cfg.Trials; trial++ {
		reps := 1
		for {
			start := time.Now()
			for i := 0; i < reps; i++ {
				step()
			}
			elapsed := time.Since(start)
			if elapsed >= cfg.MinTime || reps >= 1<<24 {
				if rate := flops * float64(reps) / elapsed.Seconds() / 1e9; rate > best {
					best = rate
				}
				break
			}
			// Aim past MinTime with a 20% margin so the next attempt lands.
			grown := 2 * reps
			if elapsed > 0 {
				grown = int(1.2*float64(reps)*float64(cfg.MinTime)/float64(elapsed)) + 1
			}
			reps = grown
		}
	}
	return best
}

// allocsPerOp reports the mean heap allocations per invocation of step in
// steady state (after a warm-up call that grows the pool's panel scratch).
func allocsPerOp(iters int, step func()) float64 {
	step()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		step()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(iters)
}

// runCompute renders the quick compute benchmark as the registered
// experiment.
func runCompute() Result {
	rep := RunComputeBench(QuickComputeBench())
	tab := &Table{
		Title: fmt.Sprintf("Measured GEMM throughput (simd=%v, GOMAXPROCS=%d)", rep.SIMD, rep.MaxProcs),
		Headers: []string{"size", "naive GFLOP/s", "blocked f64 GFLOP/s", "f32 GFLOP/s",
			"blocked/naive", "f32/f64", "allocs/op"},
	}
	for _, p := range rep.Points {
		tab.Add(fmt.Sprint(p.Size),
			fmt.Sprintf("%.2f", p.NaiveGFLOPS), fmt.Sprintf("%.2f", p.BlockedGFLOPS),
			fmt.Sprintf("%.2f", p.F32GFLOPS),
			fmt.Sprintf("%.2fx", p.BlockedSpeedup), fmt.Sprintf("%.2fx", p.F32Speedup),
			fmt.Sprintf("%.0f/%.0f", p.BlockedAllocsPerOp, p.F32AllocsPerOp))
	}
	tab.Note("wall-clock measurement: packed register-tiled driver vs the pre-blocking naive kernel; f32 runs against prepacked weight panels (the serving configuration)")
	return Result{ID: "compute", Title: "Compute substrate", Tables: []*Table{tab}}
}
