package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/perfmodel"
)

func init() {
	register(Experiment{ID: "fig06", Title: "Single-GPU memory and FLOPs per component (paper Fig. 6)", Run: runFig06})
	register(Experiment{ID: "fig07", Title: "TP-baseline memory per GPU for 1.7B and 7B (paper Fig. 7)", Run: runFig07})
	register(Experiment{ID: "fig08", Title: "Distributed tokenization alone (paper Fig. 8)", Run: runFig08})
	register(Experiment{ID: "fig09", Title: "D-CHAG tree/kind configurations vs TP baseline (paper Fig. 9)", Run: runFig09})
}

// runFig06 reproduces the single-GPU component study: normalized memory and
// per-component FLOPs share for the 100M/1B/3B models across channel counts,
// with the OOM points the paper reports (512/256/128 channels).
func runFig06() Result {
	mem := &Table{
		Title:   "Memory per component, single GCD (fraction of usable 64 GB)",
		Headers: []string{"model", "channels", "tokenization", "aggregation", "transformer", "head", "total GiB", "status"},
	}
	flops := &Table{
		Title:   "Forward FLOPs share per component, single GCD",
		Headers: []string{"model", "channels", "tokenization", "aggregation", "transformer", "head"},
	}
	for _, name := range []string{"100M", "1B", "3B"} {
		shape := perfmodel.Shapes[name]
		for _, ch := range []int{32, 64, 128, 256, 512, 1024} {
			wl := perfmodel.ReferenceWorkload(ch)
			r := perfmodel.AnalyzeDefault(shape, wl, perfmodel.Strategy{Method: perfmodel.MethodBaseline})
			usable := float64(r.Machine.UsableMemBytes())
			mem.Add(name, fmt.Sprint(ch),
				fmt.Sprintf("%.2f", r.ComponentMemBytes(perfmodel.CompTok)/usable),
				fmt.Sprintf("%.2f", r.ComponentMemBytes(perfmodel.CompAgg)/usable),
				fmt.Sprintf("%.2f", r.ComponentMemBytes(perfmodel.CompViT)/usable),
				fmt.Sprintf("%.2f", r.ComponentMemBytes(perfmodel.CompHead)/usable),
				gib(r.TotalMemBytes()), fitMark(r.Fits()))
			total := 0.0
			for _, f := range r.FwdFLOPs {
				total += f
			}
			flops.Add(name, fmt.Sprint(ch),
				fmt.Sprintf("%.2f", r.FwdFLOPs[perfmodel.CompTok]/total),
				fmt.Sprintf("%.2f", r.FwdFLOPs[perfmodel.CompAgg]/total),
				fmt.Sprintf("%.2f", r.FwdFLOPs[perfmodel.CompViT]/total),
				fmt.Sprintf("%.2f", r.FwdFLOPs[perfmodel.CompHead]/total))
		}
	}
	mem.Note("paper: 100M handles up to 512 channels, 1B up to 256, 3B up to 128")
	flops.Note("paper: compute share shifts to tokenization+aggregation as channels grow")
	return Result{ID: "fig06", Title: "Single-GPU performance analysis", Tables: []*Table{mem, flops}}
}

// runFig07 reproduces the TP memory study for the 1.7B and 7B models: per-
// component memory by channel count at the minimum-feasible TP degree plus
// neighbors.
func runFig07() Result {
	t := &Table{
		Title:   "Memory per GPU under tensor parallelism (TP baseline)",
		Headers: []string{"model", "channels", "TP", "tokenization", "aggregation", "transformer", "head", "total GiB", "tok+agg share", "status"},
	}
	for _, tc := range []struct {
		name string
		ch   []int
		tps  []int
	}{
		{"1.7B", []int{256, 512, 1024}, []int{1, 2, 4, 8}},
		{"7B", []int{128, 256, 512}, []int{2, 4, 8, 16}},
	} {
		shape := perfmodel.Shapes[tc.name]
		for _, ch := range tc.ch {
			for _, tp := range tc.tps {
				if shape.Heads%tp != 0 {
					continue
				}
				wl := perfmodel.ReferenceWorkload(ch)
				r := perfmodel.AnalyzeDefault(shape, wl, perfmodel.Strategy{Method: perfmodel.MethodBaseline, TP: tp})
				chanShare := (r.ComponentMemBytes(perfmodel.CompTok) + r.ComponentMemBytes(perfmodel.CompAgg)) / r.TotalMemBytes()
				t.Add(tc.name, fmt.Sprint(ch), fmt.Sprint(tp),
					gib(r.ComponentMemBytes(perfmodel.CompTok)),
					gib(r.ComponentMemBytes(perfmodel.CompAgg)),
					gib(r.ComponentMemBytes(perfmodel.CompViT)),
					gib(r.ComponentMemBytes(perfmodel.CompHead)),
					gib(r.TotalMemBytes()),
					fmt.Sprintf("%.0f%%", 100*chanShare),
					fitMark(r.Fits()))
			}
		}
	}
	t.Note("paper: tokenization+aggregation account for 50-90%% of memory at high channel counts")
	t.Note("paper: 1.7B@512 needs TP=2; 1.7B@1024 needs a full node (TP=8); 7B@256 fits at TP=4")
	return Result{ID: "fig07", Title: "Tensor parallelism as baseline", Tables: []*Table{t}}
}

// runFig08 reproduces the distributed-tokenization study: the four bar
// groups of the paper's Fig. 8 as memory columns.
func runFig08() Result {
	t := &Table{
		Title:   "Distributed tokenization alone, 1.7B model (GiB per GPU)",
		Headers: []string{"channels", "TP", "baseline tok+agg", "baseline tok only", "dist tok only", "dist tok + agg (gathered)", "verdict"},
	}
	shape := perfmodel.Shapes["1.7B"]
	for _, tc := range []struct{ ch, tp int }{{512, 2}, {1024, 8}} {
		wl := perfmodel.ReferenceWorkload(tc.ch)
		base := perfmodel.AnalyzeDefault(shape, wl, perfmodel.Strategy{Method: perfmodel.MethodBaseline, TP: tc.tp})
		dist := perfmodel.AnalyzeDefault(shape, wl, perfmodel.Strategy{Method: perfmodel.MethodDistTok, TP: tc.tp})
		baseTokAgg := base.ComponentMemBytes(perfmodel.CompTok) + base.ComponentMemBytes(perfmodel.CompAgg)
		distTokAgg := dist.ComponentMemBytes(perfmodel.CompTok) + dist.ComponentMemBytes(perfmodel.CompAgg)
		verdict := "gain negated by AllGather"
		if distTokAgg < 0.9*baseTokAgg {
			verdict = "modest improvement"
		}
		t.Add(fmt.Sprint(tc.ch), fmt.Sprint(tc.tp),
			gib(baseTokAgg),
			gib(base.ComponentMemBytes(perfmodel.CompTok)),
			gib(dist.ComponentMemBytes(perfmodel.CompTok)),
			gib(distTokAgg),
			verdict)
	}
	t.Note("paper: distributing tokenization helps tokenization itself but the channel+spatial AllGather inflates aggregation, negating the benefit at 512 channels")
	return Result{ID: "fig08", Title: "Distributed tokenization performance", Tables: []*Table{t}}
}

// runFig09 reproduces the tree/kind configuration sweep for the 1.7B model:
// memory and modeled-throughput gains per GPU over the TP baseline for
// Tree{0,2,4,8} x {-L, -C}.
func runFig09() Result {
	t := &Table{
		Title:   "D-CHAG configurations vs TP-only baseline, 1.7B model",
		Headers: []string{"channels", "TP", "config", "mem GiB", "mem gain", "throughput gain", "max group"},
	}
	shape := perfmodel.Shapes["1.7B"]
	machine := hw.Frontier()
	cal := perfmodel.DefaultCalibration()
	for _, tc := range []struct{ ch, tp int }{{512, 2}, {1024, 8}} {
		wl := perfmodel.ReferenceWorkload(tc.ch)
		base := perfmodel.AnalyzeDefault(shape, wl, perfmodel.Strategy{Method: perfmodel.MethodBaseline, TP: tc.tp})
		t.Add(fmt.Sprint(tc.ch), fmt.Sprint(tc.tp), "TP baseline", gib(base.TotalMemBytes()), "-", "-",
			fmt.Sprint(tc.ch))
		for _, kind := range []core.LayerKind{core.KindLinear, core.KindCross} {
			for _, tree := range []int{0, 2, 4, 8} {
				s := perfmodel.Strategy{Method: perfmodel.MethodDCHAG, TP: tc.tp, Tree: tree, Kind: kind}
				r := perfmodel.AnalyzeDefault(shape, wl, s)
				plan := core.BuildTreePlan((tc.ch+tc.tp-1)/tc.tp, tree)
				t.Add(fmt.Sprint(tc.ch), fmt.Sprint(tc.tp),
					fmt.Sprintf("D-CHAG-%s-Tree%d", kind, tree),
					gib(r.TotalMemBytes()),
					pct(perfmodel.MemGainOverBaseline(shape, wl, s, machine, cal)),
					pct(perfmodel.ThroughputGainOverBaseline(shape, wl, s, machine, cal)),
					fmt.Sprint(plan.MaxGroup()))
			}
		}
	}
	t.Note("paper: -L outperforms -C; Tree0-L is the best configuration overall; gains grow with channel count")
	return Result{ID: "fig09", Title: "D-CHAG partial-module configurations", Tables: []*Table{t}}
}
