package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/model"
	"repro/internal/tensor"
	"repro/internal/train"
)

func init() {
	register(Experiment{ID: "fig11", Title: "MAE on hyperspectral plant images: baseline vs D-CHAG-L (paper Fig. 11)", Run: runFig11})
	register(Experiment{ID: "fig12", Title: "Weather forecasting: baseline vs D-CHAG-C/-L, loss and RMSE (paper Fig. 12)", Run: runFig12})
}

// Reduced-scale settings for the functional training reproductions (see
// DESIGN.md: the paper's 40M/53M-parameter models are scaled down so pure-Go
// CPU training completes in seconds; the comparison structure is identical).
const (
	fig11Channels = 32
	fig11Steps    = 30
	fig11Batch    = 4
	fig11Ranks    = 2 // paper: baseline on 1 GPU, D-CHAG on 2

	fig12Steps = 20
	fig12Batch = 2
	fig12Ranks = 4 // paper: baseline on 1 GPU, D-CHAG on 4
)

func fig11Arch() model.Arch {
	return model.Arch{
		Config: core.Config{
			Channels: fig11Channels, ImgH: 8, ImgW: 8, Patch: 2,
			Embed: 16, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 1101,
		},
		Depth:      2,
		MetaTokens: 1,
	}
}

// runFig11 trains the masked autoencoder on synthetic hyperspectral plants:
// the single-GPU baseline architecture versus D-CHAG-L on two simulated
// ranks, with identical hyperparameters (the paper's protocol). It reports
// the two loss curves, their agreement, and the D-CHAG communication ledger.
func runFig11() Result {
	arch := fig11Arch()
	gen := data.NewHyperspectral(data.HyperspectralConfig{
		Images: 494, Channels: fig11Channels, ImgH: arch.ImgH, ImgW: arch.ImgW,
		Endmembers: 4, Noise: 0.01, Seed: 4094,
	})
	batches := make([]*tensor.Tensor, fig11Steps)
	for s := range batches {
		batches[s] = gen.Batch(s*fig11Batch, fig11Batch)
	}
	batch := func(s int) (*tensor.Tensor, *tensor.Tensor) { return batches[s], batches[s] }
	opts := train.Options{
		Steps: fig11Steps, Batch: fig11Batch, LR: 3e-3, ClipNorm: 1,
		MaskRatio: 0.5, Seed: 11,
	}

	baseline := train.Serial(model.NewSerial(arch), opts, batch)
	dchag, group, err := train.Distributed(arch, fig11Ranks, false, opts, batch)
	if err != nil {
		panic(err)
	}
	equiv := train.Serial(model.NewSerialDCHAGEquivalent(arch, fig11Ranks), opts, batch)

	t := &Table{
		Title:   "MAE training loss (masked MSE), synthetic APPL hyperspectral data",
		Headers: []string{"step", "baseline (1 rank)", "D-CHAG-L (2 ranks)", "|diff|"},
	}
	maxDiff := 0.0
	for s := 0; s < fig11Steps; s++ {
		d := math.Abs(baseline.Loss[s] - dchag.Loss[s])
		if d > maxDiff {
			maxDiff = d
		}
		if s%5 == 0 || s == fig11Steps-1 {
			t.Add(fmt.Sprint(s), fmt.Sprintf("%.6f", baseline.Loss[s]), fmt.Sprintf("%.6f", dchag.Loss[s]), fmt.Sprintf("%.2e", d))
		}
	}
	relEnd := math.Abs(baseline.Last()-dchag.Last()) / baseline.Last()
	t.Note("baseline curve %s", Sparkline(baseline.Loss, 30))
	t.Note("D-CHAG-L curve %s", Sparkline(dchag.Loss, 30))
	t.Note("final losses: baseline %.6f vs D-CHAG %.6f (%.2f%% apart; paper reports 'good agreement')", baseline.Last(), dchag.Last(), 100*relEnd)
	t.Note("max per-step |baseline - D-CHAG| = %.3e (architectures differ slightly by design)", maxDiff)

	exactDiff := 0.0
	for s := range dchag.Loss {
		if d := math.Abs(dchag.Loss[s] - equiv.Loss[s]); d > exactDiff {
			exactDiff = d
		}
	}
	t.Note("D-CHAG vs its serial mathematical equivalent: max loss diff %.2e (implementation correctness)", exactDiff)
	t.Note("D-CHAG backward-pass communication: %d bytes (paper: none required)", group.Traffic().BytesInPhase("backward"))
	return Result{ID: "fig11", Title: "Mask prediction on hyperspectral images", Tables: []*Table{t}}
}

// runFig12 trains the ClimaX-like forecaster on the synthetic ERA5
// substitute: the single-GPU baseline versus D-CHAG-C and D-CHAG-L on four
// simulated ranks, reporting training loss and the latitude-weighted test
// RMSE for Z500, T850 and U10.
func runFig12() Result {
	w := data.NewWeather(data.WeatherConfig{NativeH: 32, NativeW: 64, Steps: 128, DtHours: 6, Seed: 515})
	const gridH, gridW = 8, 16
	arch := model.Arch{
		Config: core.Config{
			Channels: w.Channels(), ImgH: gridH, ImgW: gridW, Patch: 2,
			Embed: 16, Heads: 2, Tree: 0, Kind: core.KindLinear, Seed: 1202,
		},
		Depth:      2,
		MetaTokens: 1,
	}
	xs := make([]*tensor.Tensor, fig12Steps)
	ys := make([]*tensor.Tensor, fig12Steps)
	for s := 0; s < fig12Steps; s++ {
		xs[s], ys[s] = w.PairBatch(s*fig12Batch, fig12Batch, 1, gridH, gridW)
	}
	batch := func(s int) (*tensor.Tensor, *tensor.Tensor) { return xs[s], ys[s] }
	opts := train.Options{Steps: fig12Steps, Batch: fig12Batch, LR: 3e-3, ClipNorm: 1, Seed: 12}

	// Held-out evaluation pairs (beyond the training window).
	evalX, evalY := w.PairBatch(fig12Steps*fig12Batch+8, 4, 1, gridH, gridW)
	chans := []int{w.ChannelIndex("z500"), w.ChannelIndex("t850"), w.ChannelIndex("u10")}
	names := []string{"Z500", "T850", "U10"}

	baselineModel := model.NewSerial(arch)
	baseline := train.Serial(baselineModel, opts, batch)
	baseRMSE := train.EvalForecastRMSE(baselineModel, []*tensor.Tensor{evalX}, []*tensor.Tensor{evalY}, chans)

	loss := &Table{
		Title:   "Forecast training loss (MSE over all 80 channels)",
		Headers: []string{"step", "baseline (1 rank)", "D-CHAG-C (4 ranks)", "D-CHAG-L (4 ranks)"},
	}
	rmse := &Table{
		Title:   "Held-out latitude-weighted RMSE (lower is better)",
		Headers: []string{"variable", "baseline", "D-CHAG-C", "D-CHAG-L", "C vs base", "L vs base"},
	}

	variants := map[string]train.History{}
	rmses := map[string]map[int]float64{}
	for _, kind := range []core.LayerKind{core.KindCross, core.KindLinear} {
		a := arch
		a.Kind = kind
		hist, group, err := train.Distributed(a, fig12Ranks, false, opts, batch)
		if err != nil {
			panic(err)
		}
		if b := group.Traffic().BytesInPhase("backward"); b != 0 {
			panic(fmt.Sprintf("fig12: D-CHAG-%s backward moved %d bytes", kind, b))
		}
		variants[kind.String()] = hist
		// RMSE via the serial mathematical equivalent (proven identical to
		// the distributed trajectory by the train package tests).
		eq := model.NewSerialDCHAGEquivalent(a, fig12Ranks)
		train.Serial(eq, opts, batch)
		rmses[kind.String()] = train.EvalForecastRMSE(eq, []*tensor.Tensor{evalX}, []*tensor.Tensor{evalY}, chans)
	}

	for s := 0; s < fig12Steps; s++ {
		if s%4 == 0 || s == fig12Steps-1 {
			loss.Add(fmt.Sprint(s),
				fmt.Sprintf("%.6f", baseline.Loss[s]),
				fmt.Sprintf("%.6f", variants["C"].Loss[s]),
				fmt.Sprintf("%.6f", variants["L"].Loss[s]))
		}
	}
	loss.Note("baseline %s  D-CHAG-C %s  D-CHAG-L %s",
		Sparkline(baseline.Loss, 20), Sparkline(variants["C"].Loss, 20), Sparkline(variants["L"].Loss, 20))
	loss.Note("paper: training loss matches almost exactly between baseline and D-CHAG")

	for i, ch := range chans {
		b := baseRMSE[ch]
		c := rmses["C"][ch]
		l := rmses["L"][ch]
		rmse.Add(names[i],
			fmt.Sprintf("%.5f", b), fmt.Sprintf("%.5f", c), fmt.Sprintf("%.5f", l),
			pct(c/b-1), pct(l/b-1))
	}
	rmse.Note("paper: D-CHAG test RMSE within ~1%% of the baseline")
	return Result{ID: "fig12", Title: "Weather forecasting", Tables: []*Table{loss, rmse}}
}
