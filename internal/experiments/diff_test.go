package experiments

import (
	"strings"
	"testing"
)

// diffFixture builds a minimal valid sweep report.
func diffFixture() SweepReport {
	return SweepReport{
		Schema:    SweepSchema,
		Scales:    []int{8, 16},
		CliffGCDs: 16,
		Points: []SweepPoint{
			{GCDs: 8, Method: "D-CHAG", TP: 4, FSDP: 2, DP: 1, Fits: true, StepSeconds: 1.0, TFLOPsPerSecPerNode: 100, Best: true},
			{GCDs: 8, Method: "pure-FSDP", TP: 1, FSDP: 8, DP: 1, Fits: true, StepSeconds: 2.0, TFLOPsPerSecPerNode: 50},
			{GCDs: 16, Method: "D-CHAG", TP: 8, FSDP: 2, DP: 1, Fits: true, StepSeconds: 1.5, TFLOPsPerSecPerNode: 90, Best: true},
		},
		Cliff: []CliffPoint{
			{TP: 8, FSDP: 2, DP: 1, StepSeconds: 1.5},
		},
	}
}

func TestDiffSweepIdenticalReportsClean(t *testing.T) {
	rep := diffFixture()
	diffs, err := DiffSweep(rep, rep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("identical reports produced diffs: %v", diffs)
	}
}

func TestDiffSweepFlagsBestShapeChange(t *testing.T) {
	oldRep, newRep := diffFixture(), diffFixture()
	newRep.Points[0].Best = false
	newRep.Points[1].Best = true
	diffs, err := DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || !strings.Contains(diffs[0], "best shape changed") {
		t.Fatalf("diffs = %v, want one best-shape change", diffs)
	}
}

func TestDiffSweepStepTimeTolerance(t *testing.T) {
	oldRep, newRep := diffFixture(), diffFixture()
	newRep.Points[1].StepSeconds = 2.08 // +4%, inside 5%
	diffs, err := DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("within-tolerance change flagged: %v", diffs)
	}
	newRep.Points[1].StepSeconds = 2.2 // +10%
	diffs, err = DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || !strings.Contains(diffs[0], "step time") {
		t.Fatalf("diffs = %v, want one step-time regression", diffs)
	}
}

func TestDiffSweepFlagsOOMFlipAndDroppedCoverage(t *testing.T) {
	oldRep, newRep := diffFixture(), diffFixture()
	newRep.Points[1].Fits = false
	newRep.Scales = []int{8}
	newRep.Points = newRep.Points[:2]
	diffs, err := DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(diffs, "\n")
	for _, want := range []string{"now OOM", "scale 16 GCDs dropped"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("diffs %v missing %q", diffs, want)
		}
	}
}

func TestDiffSweepCliffRegression(t *testing.T) {
	oldRep, newRep := diffFixture(), diffFixture()
	newRep.Cliff[0].StepSeconds = 2.0
	diffs, err := DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || !strings.Contains(diffs[0], "cliff TP=8") {
		t.Fatalf("diffs = %v, want one cliff regression", diffs)
	}
}

func TestDiffSweepCliffCoverage(t *testing.T) {
	// Dropping the cliff series (or moving its scale) is coverage loss,
	// not a silent pass.
	oldRep, newRep := diffFixture(), diffFixture()
	newRep.CliffGCDs = 8
	diffs, err := DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || !strings.Contains(diffs[0], "cliff scale changed") {
		t.Fatalf("diffs = %v, want one cliff-scale change", diffs)
	}
	newRep = diffFixture()
	newRep.Cliff = nil
	diffs, err = DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 || !strings.Contains(diffs[0], "point dropped") {
		t.Fatalf("diffs = %v, want one dropped cliff point", diffs)
	}
}

func TestDiffSweepSchemaGuard(t *testing.T) {
	oldRep, newRep := diffFixture(), diffFixture()
	newRep.Schema = "dchag-bench/sweep/v0"
	if _, err := DiffSweep(oldRep, newRep, 0.05); err == nil {
		t.Fatal("want schema error")
	}
	if _, err := DiffSweep(oldRep, diffFixture(), -1); err == nil {
		t.Fatal("want tolerance error")
	}
}

func TestDiffSweepSelfConsistentOnRealSweep(t *testing.T) {
	// The real sweep is deterministic: diffing it against itself must be
	// clean, which is exactly the CI gate's steady state.
	rep := RunSweep([]int{8, 16})
	diffs, err := DiffSweep(rep, rep, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 {
		t.Fatalf("self-diff of the real sweep produced: %v", diffs)
	}
}
