package experiments

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// diffFixture builds a minimal valid v2 sweep report.
func diffFixture() SweepReport {
	return SweepReport{
		Schema:    SweepSchema,
		Overlap:   true,
		Scales:    []int{8, 16},
		CliffGCDs: 16,
		Points: []SweepPoint{
			{GCDs: 8, Method: "D-CHAG", TP: 4, FSDP: 2, DP: 1, Fits: true, StepSeconds: 0.8, SerialStepSeconds: 1.0, TFLOPsPerSecPerNode: 100, Best: true},
			{GCDs: 8, Method: "pure-FSDP", TP: 1, FSDP: 8, DP: 1, Fits: true, StepSeconds: 1.5, SerialStepSeconds: 2.0, TFLOPsPerSecPerNode: 50},
			{GCDs: 16, Method: "D-CHAG", TP: 8, FSDP: 2, DP: 1, Fits: true, StepSeconds: 1.2, SerialStepSeconds: 1.5, TFLOPsPerSecPerNode: 90, Best: true},
		},
		Cliff: []CliffPoint{
			{TP: 8, FSDP: 2, DP: 1, StepSeconds: 1.2, SerialStepSeconds: 1.5},
		},
	}
}

// diffFixtureV1 is the fixture's pre-overlap ancestor: same shapes and
// serial numbers, but carried under v1 semantics (step_seconds is the
// serial composition, no overlap fields).
func diffFixtureV1() SweepReport {
	rep := diffFixture()
	rep.Schema = SweepSchemaV1
	rep.Overlap = false
	for i := range rep.Points {
		rep.Points[i].StepSeconds = rep.Points[i].SerialStepSeconds
		rep.Points[i].SerialStepSeconds = 0
		rep.Points[i].Exposed = CommBreakdown{}
	}
	for i := range rep.Cliff {
		rep.Cliff[i].StepSeconds = rep.Cliff[i].SerialStepSeconds
		rep.Cliff[i].SerialStepSeconds = 0
		rep.Cliff[i].Exposed = CommBreakdown{}
	}
	return rep
}

func mustClean(t *testing.T, oldRep, newRep SweepReport, tol float64) SweepDiff {
	t.Helper()
	d, err := DiffSweep(oldRep, newRep, tol)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Clean() {
		t.Fatalf("unexpected regressions: %v", d.Regressions)
	}
	return d
}

func TestDiffSweepIdenticalReportsClean(t *testing.T) {
	rep := diffFixture()
	d := mustClean(t, rep, rep, 0.05)
	if len(d.Notes) != 0 {
		t.Fatalf("same-schema diff produced notes: %v", d.Notes)
	}
}

func TestDiffSweepFlagsBestShapeChange(t *testing.T) {
	oldRep, newRep := diffFixture(), diffFixture()
	newRep.Points[0].Best = false
	newRep.Points[1].Best = true
	d, err := DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 1 || !strings.Contains(d.Regressions[0], "best shape changed") {
		t.Fatalf("regressions = %v, want one best-shape change", d.Regressions)
	}
}

func TestDiffSweepStepTimeTolerance(t *testing.T) {
	oldRep, newRep := diffFixture(), diffFixture()
	newRep.Points[1].SerialStepSeconds = 2.08 // +4%, inside 5%
	mustClean(t, oldRep, newRep, 0.05)
	newRep.Points[1].SerialStepSeconds = 2.2 // +10%
	d, err := DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 1 || !strings.Contains(d.Regressions[0], "serial step time") {
		t.Fatalf("regressions = %v, want one serial step-time regression", d.Regressions)
	}
}

func TestDiffSweepOverlappedStepTimeRegression(t *testing.T) {
	// v2 reports also gate the overlapped step time — the headline number.
	oldRep, newRep := diffFixture(), diffFixture()
	newRep.Points[0].StepSeconds = 0.95 // +18.75% overlapped, serial unchanged
	d, err := DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 1 || !strings.Contains(d.Regressions[0], "overlapped step time") {
		t.Fatalf("regressions = %v, want one overlapped step-time regression", d.Regressions)
	}
}

func TestDiffSweepFlagsOOMFlipAndDroppedCoverage(t *testing.T) {
	oldRep, newRep := diffFixture(), diffFixture()
	newRep.Points[1].Fits = false
	newRep.Scales = []int{8}
	newRep.Points = newRep.Points[:2]
	d, err := DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(d.Regressions, "\n")
	for _, want := range []string{"now OOM", "scale 16 GCDs dropped"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("regressions %v missing %q", d.Regressions, want)
		}
	}
}

func TestDiffSweepCliffRegression(t *testing.T) {
	oldRep, newRep := diffFixture(), diffFixture()
	newRep.Cliff[0].SerialStepSeconds = 2.0
	d, err := DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 1 || !strings.Contains(d.Regressions[0], "cliff TP=8") {
		t.Fatalf("regressions = %v, want one cliff regression", d.Regressions)
	}
}

func TestDiffSweepCliffCoverage(t *testing.T) {
	// Dropping the cliff series (or moving its scale) is coverage loss,
	// not a silent pass.
	oldRep, newRep := diffFixture(), diffFixture()
	newRep.CliffGCDs = 8
	d, err := DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 1 || !strings.Contains(d.Regressions[0], "cliff scale changed") {
		t.Fatalf("regressions = %v, want one cliff-scale change", d.Regressions)
	}
	newRep = diffFixture()
	newRep.Cliff = nil
	d, err = DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 1 || !strings.Contains(d.Regressions[0], "point dropped") {
		t.Fatalf("regressions = %v, want one dropped cliff point", d.Regressions)
	}
}

func TestDiffSweepSchemaGuard(t *testing.T) {
	// Genuinely unknown schemas are errors — not silently compared.
	oldRep, newRep := diffFixture(), diffFixture()
	newRep.Schema = "dchag-bench/sweep/v0"
	if _, err := DiffSweep(oldRep, newRep, 0.05); err == nil {
		t.Fatal("want schema error for unknown new schema")
	}
	oldRep.Schema = "not-a-sweep"
	if _, err := DiffSweep(oldRep, diffFixture(), 0.05); err == nil {
		t.Fatal("want schema error for unknown old schema")
	}
	if _, err := DiffSweep(diffFixture(), diffFixture(), -1); err == nil {
		t.Fatal("want tolerance error")
	}
}

func TestDiffSweepAcrossSchemaVersions(t *testing.T) {
	// A v1 old report against a v2 new report is a defined comparison: the
	// version change is reported explicitly as a note, serial step times /
	// fits / coverage are compared, and best-shape marks are skipped (v2
	// chooses them under overlapped throughput).
	oldRep, newRep := diffFixtureV1(), diffFixture()
	// Move the v2 best mark: across schemas this must NOT be a regression.
	newRep.Points[0].Best = false
	newRep.Points[1].Best = true
	d := mustClean(t, oldRep, newRep, 0.05)
	joined := strings.Join(d.Notes, "\n")
	if !strings.Contains(joined, "schema changed") || !strings.Contains(joined, SweepSchemaV1) || !strings.Contains(joined, SweepSchema) {
		t.Fatalf("notes %v must name the schema transition explicitly", d.Notes)
	}
	if !strings.Contains(joined, "best-shape") {
		t.Fatalf("notes %v must say best-shape marks were skipped", d.Notes)
	}

	// Shared fields still gate: a serial regression in the v2 report is
	// caught against the v1 baseline's step_seconds.
	newRep = diffFixture()
	newRep.Points[1].SerialStepSeconds = 3.0 // v1 carried 2.0
	d, err := DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 1 || !strings.Contains(d.Regressions[0], "serial step time") {
		t.Fatalf("regressions = %v, want one cross-schema serial regression", d.Regressions)
	}

	// OOM flips are shared too.
	newRep = diffFixture()
	newRep.Points[0].Fits = false
	d, err = DiffSweep(oldRep, newRep, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 1 || !strings.Contains(d.Regressions[0], "now OOM") {
		t.Fatalf("regressions = %v, want one OOM flip", d.Regressions)
	}
}

func TestDiffSweepAcrossOverlapSettings(t *testing.T) {
	// Two v2 reports priced under different overlap settings disagree on
	// what step_seconds and best marks mean: the mismatch is noted and
	// only the shared serial fields are gated.
	oldRep, newRep := diffFixture(), diffFixture()
	oldRep.Overlap = false
	for i := range oldRep.Points {
		oldRep.Points[i].StepSeconds = oldRep.Points[i].SerialStepSeconds
	}
	// Overlap-on step times are smaller than overlap-off ones — a naive
	// same-schema comparison in the other direction would flag them; and
	// the best mark sits elsewhere under the other pricing.
	newRep.Points[0].Best = false
	newRep.Points[1].Best = true
	d := mustClean(t, oldRep, newRep, 0.05)
	joined := strings.Join(d.Notes, "\n")
	if !strings.Contains(joined, "overlap pricing changed") {
		t.Fatalf("notes %v must name the overlap-setting change", d.Notes)
	}
	// The regressing direction (overlap-on old, overlap-off new) must not
	// drown the gate in false overlapped step-time regressions either —
	// serial fields still gate.
	d = mustClean(t, newRep, oldRep, 0.05)
	if len(d.Notes) == 0 {
		t.Fatal("reverse overlap-setting diff must carry the note too")
	}
	worse := diffFixture()
	worse.Overlap = false
	for i := range worse.Points {
		worse.Points[i].StepSeconds = worse.Points[i].SerialStepSeconds
	}
	worse.Points[1].SerialStepSeconds = 3.0
	d, err := DiffSweep(newRep, worse, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Regressions) != 1 || !strings.Contains(d.Regressions[0], "serial step time") {
		t.Fatalf("regressions = %v, want exactly the serial regression", d.Regressions)
	}
}

func TestDiffSweepV1ArtifactTransition(t *testing.T) {
	// The committed pre-overlap trajectory point (the real sweep/v1
	// BENCH_sweep.json this repository shipped) must diff cleanly against
	// the current code's v2 sweep: serial pricing is untouched by the
	// overlap model, so the v1 -> v2 transition cannot trip the perf gate.
	raw, err := os.ReadFile("testdata/BENCH_sweep_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	var oldRep SweepReport
	if err := json.Unmarshal(raw, &oldRep); err != nil {
		t.Fatal(err)
	}
	if oldRep.Schema != SweepSchemaV1 {
		t.Fatalf("fixture schema %q, want %q", oldRep.Schema, SweepSchemaV1)
	}
	newRep := RunSweep(oldRep.Scales)
	d := mustClean(t, oldRep, newRep, 0.05)
	if len(d.Notes) == 0 {
		t.Fatal("cross-schema diff must report the version change")
	}
}

func TestDiffSweepSelfConsistentOnRealSweep(t *testing.T) {
	// The real sweep is deterministic: diffing it against itself must be
	// clean, which is exactly the CI gate's steady state.
	rep := RunSweep([]int{8, 16})
	mustClean(t, rep, rep, 0)
}
