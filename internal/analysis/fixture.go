package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// RunFixture is the analysistest analogue: it loads dir/src/<path> as a
// fixture package (imports resolve first against dir/src, then against
// the real build — so fixtures can stub repro packages under their real
// import paths), runs the analyzers over it, and compares the surviving
// diagnostics against `// want "regexp"` comments in the fixture:
//
//	c.Barrier() // want `rank-conditional`
//
// Every diagnostic must match a want on its line and every want must be
// matched, in the spirit of golang.org/x/tools/go/analysis/analysistest.
func RunFixture(t *testing.T, dir, path string, analyzers ...*Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	fl := &fixtureLoader{
		root:  filepath.Join(abs, "src"),
		dep:   NewLoader(abs),
		typed: make(map[string]*Package),
	}
	unit, err := fl.load(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	diags, err := Run(unit, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on fixture %s: %v", path, err)
	}
	checkWants(t, unit, diags)
}

// fixtureLoader resolves fixture-local import paths under root and
// everything else (stdlib) through a real Loader.
type fixtureLoader struct {
	root  string
	dep   *Loader
	typed map[string]*Package
}

func (fl *fixtureLoader) load(path string) (*Package, error) {
	if unit, ok := fl.typed[path]; ok {
		return unit, nil
	}
	dir := filepath.Join(fl.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return fl.dep.LoadOne(path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := fl.dep.FileSet()
	unit := &Package{Path: path, ListPath: path, Dir: dir, Fset: fset}
	fl.typed[path] = unit
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		unit.Files = append(unit.Files, f)
	}
	if len(unit.Files) == 0 {
		return nil, fmt.Errorf("fixture package %s has no Go files in %s", path, dir)
	}
	unit.Name = unit.Files[0].Name.Name
	unit.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			dep, err := fl.load(importPath)
			if err != nil {
				return nil, err
			}
			return dep.Types, nil
		}),
	}
	tpkg, err := conf.Check(path, fset, unit.Files, unit.Info)
	unit.Types = tpkg
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	return unit, nil
}

// wantRE extracts the quoted patterns of one `// want` comment.
var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type want struct {
	pos     token.Position
	pattern *regexp.Regexp
	matched bool
}

// checkWants cross-checks diagnostics against the fixture's `// want`
// expectations, failing the test on any mismatch in either direction.
func checkWants(t *testing.T, unit *Package, diags []Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(c.Text), "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := unit.Fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(text[len("want "):], -1)
				if len(ms) == 0 {
					t.Errorf("%s: malformed want comment: %s", pos, text)
					continue
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{pos: pos, pattern: re})
				}
			}
		}
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.pos.Filename == d.Pos.Filename && w.pos.Line == d.Pos.Line &&
				w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].pos.Line < wants[j].pos.Line })
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic matched want %q", w.pos, w.pattern)
		}
	}
}
