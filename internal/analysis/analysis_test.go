package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// badFuncs is a toy analyzer: it flags every function whose name starts
// with "bad". It needs no type information, which keeps the suppression
// tests focused on the framework.
var badFuncs = &analysis.Analyzer{
	Name: "testcheck",
	Doc:  "flag functions named bad*",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "bad") {
					pass.Reportf(fd.Pos(), "function %s is bad", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

// parseUnit builds an analysis unit from source without type-checking;
// sufficient for analyzers that only read syntax.
func parseUnit(t *testing.T, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing test source: %v", err)
	}
	return &analysis.Package{Path: "p", ListPath: "p", Name: "p", Fset: fset, Files: []*ast.File{f}}
}

func TestSuppressions(t *testing.T) {
	const src = `package p

func bad1() {}

//lint:ignore testcheck deliberate for the test
func bad2() {}

//lint:ignore all every analyzer is quiet here
func bad3() {}

//lint:ignore other,testcheck comma lists name several analyzers
func bad4() {}

func bad5() {} //lint:ignore testcheck trailing markers suppress their own line

//lint:ignore other a marker for a different analyzer does not help
func bad6() {}

func good() {}
`
	diags, err := analysis.Run(parseUnit(t, src), []*analysis.Analyzer{badFuncs})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+":"+d.Message)
	}
	want := []string{
		"testcheck:function bad1 is bad",
		"testcheck:function bad6 is bad",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestMalformedMarkerIsReported(t *testing.T) {
	const src = `package p

//lint:ignore testcheck
func bad1() {}
`
	diags, err := analysis.Run(parseUnit(t, src), []*analysis.Analyzer{badFuncs})
	if err != nil {
		t.Fatal(err)
	}
	// The reasonless marker suppresses nothing and is itself a finding:
	// the bad1 report survives and a lintignore diagnostic points at the
	// marker.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics %v, want 2", len(diags), diags)
	}
	if diags[0].Analyzer != "lintignore" || !strings.Contains(diags[0].Message, "malformed") {
		t.Errorf("first diagnostic = %v, want a malformed-marker report", diags[0])
	}
	if diags[1].Analyzer != "testcheck" {
		t.Errorf("second diagnostic = %v, want the unsuppressed testcheck finding", diags[1])
	}
}

func TestDiagnosticsSortedByPosition(t *testing.T) {
	const src = `package p

func good() {}

func bad2() {}

func bad1() {}
`
	diags, err := analysis.Run(parseUnit(t, src), []*analysis.Analyzer{badFuncs})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 || diags[0].Pos.Line >= diags[1].Pos.Line {
		t.Fatalf("diagnostics not sorted by position: %v", diags)
	}
}

// TestLoaderStdlib is the loader smoke test: a single stdlib package
// (plus its dependency closure) type-checks from source with full
// use/def information.
func TestLoaderStdlib(t *testing.T) {
	l := analysis.NewLoader(".")
	unit, err := l.LoadOne("sort")
	if err != nil {
		t.Fatalf("LoadOne(sort): %v", err)
	}
	if unit.Name != "sort" || unit.Types == nil || unit.Types.Path() != "sort" {
		t.Fatalf("unexpected unit: name=%q types=%v", unit.Name, unit.Types)
	}
	if len(unit.Info.Defs) == 0 || len(unit.Info.Uses) == 0 {
		t.Fatal("loader produced no def/use information")
	}
	if obj := unit.Types.Scope().Lookup("Sort"); obj == nil {
		t.Fatal("sort.Sort not found in the loaded package scope")
	}
}
