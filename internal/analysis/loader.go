package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked analysis unit.
type Package struct {
	// Path is the clean import path (test-variant brackets stripped);
	// ListPath the exact `go list` identity (e.g. "p [p.test]").
	Path     string
	ListPath string
	Name     string
	Dir      string
	// ForTest is the tested package's path when this unit is a test
	// variant (in-package or external test files included).
	ForTest  string
	Standard bool

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg mirrors the `go list -json` fields the loader consumes.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Standard   bool
	ForTest    string
	Module     *struct{ Path string }
	GoFiles    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Loader type-checks packages from source in dependency order, using the
// go command only to enumerate files and resolve import paths. It is not
// safe for concurrent use.
type Loader struct {
	// ModuleDir is the directory `go list` runs in (the module root for
	// whole-module loads; any directory works for stdlib-only loads).
	ModuleDir string

	fset   *token.FileSet
	listed map[string]*listedPkg
	typed  map[string]*Package
}

// NewLoader returns a Loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		ModuleDir: dir,
		fset:      token.NewFileSet(),
		listed:    make(map[string]*listedPkg),
		typed:     make(map[string]*Package),
	}
}

// FileSet returns the position set every package loaded here shares.
func (l *Loader) FileSet() *token.FileSet { return l.fset }

// Load enumerates the patterns (plus test variants and all dependencies),
// type-checks them from source, and returns the analysis targets: the
// patterns' module packages, with each package that has tests represented
// by its test-augmented variant(s) rather than twice.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	order, err := l.list(append([]string{"-deps", "-test"}, patterns...))
	if err != nil {
		return nil, err
	}
	// A package with in-package tests is listed both plain and as a test
	// variant whose GoFiles are a superset; analyzing both would duplicate
	// every finding in the non-test files. Keep the variant only.
	hasVariant := make(map[string]bool)
	for _, path := range order {
		if ft := l.listed[path].ForTest; ft != "" && l.listed[path].Name != "main" &&
			!strings.HasSuffix(l.listed[path].Name, "_test") {
			hasVariant[ft] = true
		}
	}
	var targets []*Package
	for _, path := range order {
		p := l.listed[path]
		if p.Module == nil || p.Name == "main" && strings.HasSuffix(p.ImportPath, ".test") {
			continue // dependency-only, or a synthesized test main
		}
		if p.ForTest == "" && hasVariant[p.ImportPath] {
			continue // superseded by its test variant
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		unit, err := l.typecheck(path)
		if err != nil {
			return nil, err
		}
		targets = append(targets, unit)
	}
	return targets, nil
}

// LoadOne type-checks a single import path (listing it on demand) and
// returns it as an analysis unit. Used by the fixture harness for stdlib
// dependencies of test fixtures.
func (l *Loader) LoadOne(path string) (*Package, error) {
	if err := l.ensure(path); err != nil {
		return nil, err
	}
	return l.typecheck(path)
}

// list runs `go list -e -json` with the given arguments and records every
// reported package, returning them in listing order (dependencies first).
func (l *Loader) list(args []string) ([]string, error) {
	fields := "Dir,ImportPath,Name,Standard,ForTest,Module,GoFiles,ImportMap,Error"
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=" + fields}, args...)...)
	cmd.Dir = l.ModuleDir
	// CGO_ENABLED=0 makes go list select the pure-Go file sets, which is
	// what lets the whole dependency tree type-check from source.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var order []string
	for dec.More() {
		p := new(listedPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if _, dup := l.listed[p.ImportPath]; !dup {
			l.listed[p.ImportPath] = p
			order = append(order, p.ImportPath)
		}
	}
	return order, nil
}

// ensure makes sure path (and its dependencies) are listed.
func (l *Loader) ensure(path string) error {
	if _, ok := l.listed[path]; ok {
		return nil
	}
	_, err := l.list([]string{"-deps", path})
	return err
}

// typecheck parses and type-checks the listed package, resolving imports
// recursively through the listing. Results are memoized by list path.
func (l *Loader) typecheck(listPath string) (*Package, error) {
	if listPath == "unsafe" {
		return &Package{Path: "unsafe", ListPath: "unsafe", Types: types.Unsafe}, nil
	}
	if unit, ok := l.typed[listPath]; ok {
		return unit, nil
	}
	p, ok := l.listed[listPath]
	if !ok {
		return nil, fmt.Errorf("analysis: package %q not listed", listPath)
	}
	cleanPath := listPath
	if i := strings.IndexByte(cleanPath, ' '); i >= 0 {
		cleanPath = cleanPath[:i] // strip the " [p.test]" variant suffix
	}
	unit := &Package{
		Path:     cleanPath,
		ListPath: listPath,
		Name:     p.Name,
		Dir:      p.Dir,
		ForTest:  p.ForTest,
		Standard: p.Standard,
		Fset:     l.fset,
	}
	// Memoize before checking: import cycles are impossible in valid Go,
	// but a premature entry turns a listing bug into an error, not a hang.
	l.typed[listPath] = unit
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		unit.Files = append(unit.Files, f)
	}
	unit.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			return l.resolveImport(p, importPath)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(cleanPath, l.fset, unit.Files, unit.Info)
	unit.Types = tpkg
	if err != nil {
		if len(typeErrs) > 0 {
			err = typeErrs[0]
		}
		return nil, fmt.Errorf("analysis: type-checking %s: %w (%d errors)", listPath, err, max(1, len(typeErrs)))
	}
	return unit, nil
}

// resolveImport maps an import path as written in importer's source to
// its listed package and returns that package type-checked. ImportMap
// carries go list's resolution of vendored and test-variant imports.
func (l *Loader) resolveImport(importer *listedPkg, path string) (*types.Package, error) {
	if mapped, ok := importer.ImportMap[path]; ok {
		path = mapped
	}
	if _, ok := l.listed[path]; !ok {
		if _, ok := l.listed["vendor/"+path]; ok {
			path = "vendor/" + path
		} else if err := l.ensure(path); err != nil {
			return nil, err
		}
	}
	unit, err := l.typecheck(path)
	if err != nil {
		return nil, err
	}
	return unit.Types, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
