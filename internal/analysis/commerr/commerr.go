// Package commerr flags dropped errors from the distributed-correctness
// APIs: internal/comm, internal/dist, internal/ckpt and internal/serve.
//
// These packages work hard to surface a root cause — comm.Run and
// dist.RunMesh classify a rank's real failure ahead of the ErrAborted
// cascades it triggers, ckpt commits are only signalled through the
// returned error, and serve.Engine.Close returns the engine's terminal
// error. Discarding one of these errors (calling the function as a bare
// statement, assigning the error to _, or throwing it away in a go/defer
// statement) silently converts a diagnosable failure into a hang or a
// half-written checkpoint. Deliberate drops (e.g. a best-effort Close on
// an already-failed engine) must say why with
// //lint:ignore commerr <reason>.
package commerr

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// guardedPkgs are the package paths whose error results must not be
// dropped.
var guardedPkgs = map[string]bool{
	"repro/internal/comm":  true,
	"repro/internal/dist":  true,
	"repro/internal/ckpt":  true,
	"repro/internal/serve": true,
}

// Analyzer reports discarded errors from the guarded packages.
var Analyzer = &analysis.Analyzer{
	Name: "commerr",
	Doc: "report dropped or _-assigned errors from internal/comm, internal/dist, internal/ckpt " +
		"and internal/serve APIs; a swallowed error there masks the root cause of a distributed failure",
	Run: run,
}

var errorType = types.Universe.Lookup("error").Type()

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					checkDropped(pass, call, "")
				}
			case *ast.GoStmt:
				checkDropped(pass, s.Call, "go statement ")
			case *ast.DeferStmt:
				checkDropped(pass, s.Call, "deferred call ")
			case *ast.AssignStmt:
				checkBlank(pass, s)
			}
			return true
		})
	}
	return nil
}

// checkDropped reports a statement-position call to a guarded function
// that returns an error: every result is discarded.
func checkDropped(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn, sig := callee(pass, call)
	if fn == nil {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errorType) {
			pass.Reportf(call.Pos(), "%serror result of %s.%s is dropped", how, fn.Pkg().Name(), fn.Name())
			return
		}
	}
}

// checkBlank reports guarded calls whose error result position is
// assigned to the blank identifier.
func checkBlank(pass *analysis.Pass, s *ast.AssignStmt) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn, sig := callee(pass, call)
	if fn == nil || sig.Results().Len() != len(s.Lhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if ok && id.Name == "_" && types.Identical(sig.Results().At(i).Type(), errorType) {
			pass.Reportf(id.Pos(), "error result of %s.%s is assigned to _", fn.Pkg().Name(), fn.Name())
			return
		}
	}
}

// callee resolves a call to a guarded-package function or method (and
// its signature); nil when the callee is anything else.
func callee(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, *types.Signature) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, nil
	}
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || !guardedPkgs[fn.Pkg().Path()] {
		return nil, nil
	}
	return fn, fn.Type().(*types.Signature)
}
