package commerr_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/commerr"
)

func TestAnalyzer(t *testing.T) {
	analysis.RunFixture(t, "testdata", "a", commerr.Analyzer)
}
