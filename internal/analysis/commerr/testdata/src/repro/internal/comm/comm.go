// Package comm is a fixture stub; commerr matches by package path and
// result signature only.
package comm

// Group stands in for the rendezvous group.
type Group struct{}

// Run mirrors the real signature: the error is the root cause.
func Run(size int, fn func(rank int) error) (*Group, error) { return nil, nil }

// Abort returns nothing; bare calls to it are fine.
func (g *Group) Abort() {}
