// Package ckpt is a fixture stub; commerr matches by package path and
// result signature only.
package ckpt

// Writer stands in for a checkpoint writer.
type Writer struct{}

// Open mirrors a constructor with an error result.
func Open(dir string) (*Writer, error) { return nil, nil }

// Close signals commit success only through its error.
func (w *Writer) Close() error { return nil }

// WriteManifest has a lone error result.
func WriteManifest(dir string) error { return nil }
