// Package a exercises commerr: dropped and _-assigned errors from the
// guarded packages fire; handled errors and unguarded calls do not.
package a

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/comm"
)

func drops() {
	comm.Run(2, nil)            // want `error result of comm.Run is dropped`
	ckpt.WriteManifest("d")     // want `error result of ckpt.WriteManifest is dropped`
	w, _ := ckpt.Open("d")      // want `error result of ckpt.Open is assigned to _`
	defer w.Close()             // want `deferred call error result of ckpt.Close is dropped`
	go ckpt.WriteManifest("d")  // want `go statement error result of ckpt.WriteManifest is dropped`
	_ = ckpt.WriteManifest("d") // want `error result of ckpt.WriteManifest is assigned to _`
	_, _ = comm.Run(2, nil)     // want `error result of comm.Run is assigned to _`
}

func handled() error {
	g, err := comm.Run(2, nil)
	if err != nil {
		return err
	}
	g.Abort() // no error result: fine
	if err := ckpt.WriteManifest("d"); err != nil {
		return err
	}
	fmt.Println("unguarded package calls are fine")
	return nil
}

func suppressed(w *ckpt.Writer) {
	//lint:ignore commerr best-effort close on an already-failed writer
	w.Close()
}
