// Package obs is a fixture stub of the tracing surface: the real record
// path is allocation-free by contract (dchag:hotpath-clean ring writes),
// so instrumentation calls are sanctioned inside hotpath functions.
package obs

// Rank stands in for one per-rank event row.
type Rank struct{}

// Span stands in for an open span handle.
type Span struct{}

func (r *Rank) Begin(name, cat string) Span { return Span{} }

func (r *Rank) Instant(name, cat string) {}

func (s Span) End() {}

func (s Span) EndBytes(bytes int64) {}
