// Package tensor is a fixture stub; hotalloc matches by package path
// and function name only.
package tensor

// Tensor stands in for the real dense tensor.
type Tensor struct{ Data []float64 }

// New allocates a fresh tensor.
func New(shape ...int) *Tensor { return &Tensor{} }

// FromSlice wraps data in a fresh tensor.
func FromSlice(data []float64, shape ...int) *Tensor { return &Tensor{} }

// Clone copies the tensor.
func (t *Tensor) Clone() *Tensor { return &Tensor{} }

// AddInPlace does not allocate.
func AddInPlace(dst, src *Tensor) {}

// AddInto writes a+b into dst, allocating only when dst is nil.
func AddInto(dst, a, b *Tensor) *Tensor { return dst }

// MatMulInto writes a@b into dst, allocating only when dst is nil.
func MatMulInto(dst, a, b *Tensor) *Tensor { return dst }

// EnsureShape reuses t when it already has the shape, else allocates.
func EnsureShape(t *Tensor, shape ...int) *Tensor { return t }

// Pool recycles tensors.
type Pool struct{}

// GetTensor returns a pooled tensor (contents dirty).
func (p *Pool) GetTensor(shape ...int) *Tensor { return &Tensor{} }

// PutTensor recycles t.
func (p *Pool) PutTensor(t *Tensor) {}

// DefaultPool is the process-wide pool.
var DefaultPool = &Pool{}
