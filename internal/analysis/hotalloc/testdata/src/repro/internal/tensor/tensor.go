// Package tensor is a fixture stub; hotalloc matches by package path
// and function name only.
package tensor

// Tensor stands in for the real dense tensor.
type Tensor struct{ Data []float64 }

// New allocates a fresh tensor.
func New(shape ...int) *Tensor { return &Tensor{} }

// FromSlice wraps data in a fresh tensor.
func FromSlice(data []float64, shape ...int) *Tensor { return &Tensor{} }

// Clone copies the tensor.
func (t *Tensor) Clone() *Tensor { return &Tensor{} }

// AddInPlace does not allocate.
func AddInPlace(dst, src *Tensor) {}
