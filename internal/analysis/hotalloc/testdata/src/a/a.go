// Package a exercises hotalloc: allocations inside dchag:hotpath
// functions fire; unannotated functions and in-place calls do not.
package a

import "repro/internal/tensor"

// hot is the fixture's inner loop.
//
// dchag:hotpath
func hot(dst, src *tensor.Tensor, n int) {
	buf := make([]float64, n) // want `make call in dchag:hotpath function hot`
	_ = buf
	p := new(int) // want `new call in dchag:hotpath function hot`
	_ = p
	t := tensor.New(n)                    // want `tensor allocation New in dchag:hotpath function hot`
	_ = t.Clone()                         // want `tensor allocation Clone in dchag:hotpath function hot`
	_ = tensor.FromSlice([]float64{1}, 1) // want `tensor allocation FromSlice in dchag:hotpath function hot`
	tensor.AddInPlace(dst, src)
	//lint:ignore hotalloc the result buffer is the API; reuse is follow-up work
	out := tensor.New(n)
	_ = out
}

// cold has no annotation, so it may allocate freely.
func cold(n int) *tensor.Tensor {
	_ = make([]float64, n)
	return tensor.New(n)
}
