// Package a exercises hotalloc: allocations inside dchag:hotpath
// functions fire; unannotated functions and in-place calls do not.
package a

import (
	"repro/internal/obs"
	"repro/internal/tensor"
)

// hot is the fixture's inner loop.
//
// dchag:hotpath
func hot(dst, src *tensor.Tensor, n int) {
	buf := make([]float64, n) // want `make call in dchag:hotpath function hot`
	_ = buf
	p := new(int) // want `new call in dchag:hotpath function hot`
	_ = p
	t := tensor.New(n)                    // want `tensor allocation New in dchag:hotpath function hot`
	_ = t.Clone()                         // want `tensor allocation Clone in dchag:hotpath function hot`
	_ = tensor.FromSlice([]float64{1}, 1) // want `tensor allocation FromSlice in dchag:hotpath function hot`
	tensor.AddInPlace(dst, src)
	_ = tensor.AddInto(nil, dst, src)      // want `nil dst in AddInto call in dchag:hotpath function hot`
	_ = tensor.MatMulInto((nil), dst, src) // want `nil dst in MatMulInto call in dchag:hotpath function hot`
	//lint:ignore hotalloc the result buffer is the API; reuse is follow-up work
	out := tensor.New(n)
	_ = out
}

// hotOK uses only the sanctioned allocation-free API and stays silent.
//
// dchag:hotpath
func hotOK(dst, src, scratch *tensor.Tensor, n int) {
	scratch = tensor.EnsureShape(scratch, n)
	_ = tensor.AddInto(scratch, dst, src)
	_ = tensor.MatMulInto(dst, scratch, src)
	t := tensor.DefaultPool.GetTensor(n)
	tensor.DefaultPool.PutTensor(t)
}

// hotTraced is the instrumented hot loop: obs spans and instants are
// allocation-free record calls by contract, so a fully traced hotpath
// function over reused buffers stays silent.
//
// dchag:hotpath
func hotTraced(row *obs.Rank, dst, src, scratch *tensor.Tensor) {
	sp := row.Begin("forward", "train")
	_ = tensor.AddInto(scratch, dst, src)
	sp.EndBytes(64)
	row.Instant("step-done", "train")
	tensor.AddInPlace(dst, scratch)
}

// hotTracedAlloc: a span does not excuse the allocation it wraps — the
// constructor inside the instrumented region still fires.
//
// dchag:hotpath
func hotTracedAlloc(row *obs.Rank, src *tensor.Tensor, n int) {
	sp := row.Begin("forward", "train")
	t := tensor.New(n) // want `tensor allocation New in dchag:hotpath function hotTracedAlloc`
	_ = t
	_ = tensor.AddInto(nil, src, src) // want `nil dst in AddInto call in dchag:hotpath function hotTracedAlloc`
	sp.End()
}

// cold has no annotation, so it may allocate freely — including nil-dst
// Into calls (that is what the allocating wrappers are).
func cold(n int) *tensor.Tensor {
	_ = make([]float64, n)
	_ = tensor.AddInto(nil, nil, nil)
	return tensor.New(n)
}
