// Package hotalloc flags fresh allocations inside functions annotated
// `// dchag:hotpath`.
//
// The training step and the serving dispatch loop execute their inner
// functions millions of times; an allocation there churns the GC and
// caps throughput (ROADMAP item 1 is exactly the buffer-reuse work this
// analyzer pre-paves). A function whose doc comment contains
// "dchag:hotpath" promises steady-state allocation-freedom: inside it
// (and its function literals) the analyzer reports
//
//   - make(...) and new(...),
//   - tensor constructors (tensor.New, Zeros, Ones, Full, FromSlice)
//     and Tensor.Clone,
//   - destination-passing calls (tensor.*Into) whose dst argument is a
//     literal nil: a nil dst makes the kernel allocate the result, so the
//     call is the allocating wrapper in disguise.
//
// The sanctioned alternatives are allocation-free in steady state and
// pass the check: tensor.EnsureShape (grow-once layer-owned scratch),
// tensor.Pool Get/Put (recycled transients), and *Into calls with a
// non-nil destination. The hot path carries zero //lint:ignore hotalloc
// markers; if a new one seems necessary, pool the buffer instead.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// tensorPath is the allocation-heavy package the analyzer knows.
const tensorPath = "repro/internal/tensor"

// allocFuncs are tensor-package functions that allocate fresh buffers.
var allocFuncs = map[string]bool{
	"New":       true,
	"Zeros":     true,
	"Ones":      true,
	"Full":      true,
	"FromSlice": true,
	"Clone":     true,
}

// marker is the annotation that opts a function into the check.
const marker = "dchag:hotpath"

// Analyzer reports allocations in dchag:hotpath-annotated functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "report make/new and tensor constructor calls inside functions whose doc comment " +
		"contains dchag:hotpath; hot loops must reuse buffers, not churn the GC",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Doc == nil || !strings.Contains(fd.Doc.Text(), marker) {
				continue
			}
			checkBody(pass, fd)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && (b.Name() == "make" || b.Name() == "new") {
				pass.Reportf(call.Pos(), "%s call in dchag:hotpath function %s allocates on every execution", b.Name(), fd.Name.Name)
			} else if fn := tensorAlloc(pass, fun); fn != nil {
				report(pass, call, fd, fn)
			}
		case *ast.SelectorExpr:
			if fn := tensorAlloc(pass, fun.Sel); fn != nil {
				report(pass, call, fd, fn)
			} else if fn := nilDstInto(pass, call, fun.Sel); fn != nil {
				pass.Reportf(call.Pos(), "nil dst in %s call in dchag:hotpath function %s allocates the result; pass a reused buffer", fn.Name(), fd.Name.Name)
			}
		}
		return true
	})
}

// nilDstInto resolves call to a tensor-package destination-passing function
// (name ending in "Into") invoked with a literal nil destination, or nil.
// Into calls with a real destination are the sanctioned allocation-free
// path and are not reported.
func nilDstInto(pass *analysis.Pass, call *ast.CallExpr, id *ast.Ident) *types.Func {
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != tensorPath || !strings.HasSuffix(fn.Name(), "Into") {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || dst.Name != "nil" {
		return nil
	}
	if _, isNil := pass.Info.Uses[dst].(*types.Nil); !isNil {
		return nil
	}
	return fn
}

func report(pass *analysis.Pass, call *ast.CallExpr, fd *ast.FuncDecl, fn *types.Func) {
	pass.Reportf(call.Pos(), "tensor allocation %s in dchag:hotpath function %s; reuse a buffer instead", fn.Name(), fd.Name.Name)
}

// tensorAlloc resolves id to a tensor-package allocating function or
// method, or nil.
func tensorAlloc(pass *analysis.Pass, id *ast.Ident) *types.Func {
	fn, ok := pass.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != tensorPath || !allocFuncs[fn.Name()] {
		return nil
	}
	return fn
}
