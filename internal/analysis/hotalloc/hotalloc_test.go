package hotalloc_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/hotalloc"
)

func TestAnalyzer(t *testing.T) {
	analysis.RunFixture(t, "testdata", "a", hotalloc.Analyzer)
}
