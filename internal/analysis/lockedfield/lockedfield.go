// Package lockedfield enforces `// guarded by <mu>` field annotations.
//
// A struct field whose doc or line comment says "guarded by mu" (where
// mu names a sync.Mutex or sync.RWMutex field of the same struct) may
// only be accessed in functions that visibly hold that mutex. The check
// is lexical, not path-sensitive — by design, so its verdicts are easy
// to predict:
//
//   - an access is "held" when the same function contains an earlier
//     <base>.<mu>.Lock() — or, for reads, RLock() — call on the same
//     base expression as the access;
//   - functions whose name ends in "Locked" are assumed to be called
//     with the lock held (the caller-holds contract);
//   - composite literals do not count as accesses: constructors may
//     initialize guarded fields before the value is shared.
//
// This catches the bug class that sank many a metrics counter: a new
// method reading or bumping shared state with no lock at all. Accesses
// that are safe for a subtler reason (publication via channel
// happens-before, single-goroutine phases) must either stay
// unannotated or carry //lint:ignore lockedfield <reason>.
package lockedfield

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
)

// Analyzer enforces the "guarded by" annotation contract.
var Analyzer = &analysis.Analyzer{
	Name: "lockedfield",
	Doc: "report accesses to struct fields annotated `// guarded by <mu>` outside functions " +
		"that lexically hold <mu>; methods named *Locked are assumed caller-locked",
	Run: run,
}

var guardedRE = regexp.MustCompile(`guarded by (\w+)`)

// guard ties a guarded field to its mutex field.
type guard struct {
	mutex *types.Var
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guards)
		}
	}
	return nil
}

// collectGuards scans struct declarations for annotated fields and
// resolves each annotation's mutex, reporting annotations that name a
// non-existent or non-mutex sibling (a broken contract is worse than
// none).
func collectGuards(pass *analysis.Pass) map[*types.Var]guard {
	guards := make(map[*types.Var]guard)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				muName, ok := guardAnnotation(field)
				if !ok {
					continue
				}
				mu := findField(pass, st, muName)
				if mu == nil || !isMutex(mu.Type()) {
					pass.Reportf(field.Pos(),
						"guarded-by annotation names %q, which is not a sync.Mutex/RWMutex field of this struct", muName)
					continue
				}
				for _, name := range field.Names {
					if fv, ok := pass.Info.Defs[name].(*types.Var); ok {
						guards[fv] = guard{mutex: mu}
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or trailing
// comment.
func guardAnnotation(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1], true
		}
	}
	return "", false
}

// findField resolves a field name within the struct declaration.
func findField(pass *analysis.Pass, st *ast.StructType, name string) *types.Var {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				v, _ := pass.Info.Defs[n].(*types.Var)
				return v
			}
		}
	}
	return nil
}

// isMutex reports whether t is sync.Mutex, sync.RWMutex, or a pointer
// to one.
func isMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// access is one read or write of a guarded field.
type access struct {
	sel   *ast.SelectorExpr
	field *types.Var
	write bool
}

// lockCall is one <base>.<mu>.Lock/RLock() call site.
type lockCall struct {
	base  string
	mutex *types.Var
	pos   int // file offset; "earlier" is lexical
	read  bool
}

// checkFunc verifies every guarded-field access in one function.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guards map[*types.Var]guard) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return // caller-holds contract
	}
	var locks []lockCall
	var accesses []access
	writes := writeTargets(fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// Record `base.mu.Lock()` / `base.mu.RLock()` calls.
			msel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok || (msel.Sel.Name != "Lock" && msel.Sel.Name != "RLock") {
				return true
			}
			inner, ok := ast.Unparen(msel.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fsel := pass.Info.Selections[inner]
			if fsel == nil || fsel.Kind() != types.FieldVal {
				return true
			}
			if fv, ok := fsel.Obj().(*types.Var); ok && isMutex(fv.Type()) {
				locks = append(locks, lockCall{
					base:  types.ExprString(inner.X),
					mutex: fv,
					pos:   int(x.Pos()),
					read:  msel.Sel.Name == "RLock",
				})
			}
		case *ast.SelectorExpr:
			selection := pass.Info.Selections[x]
			if selection == nil || selection.Kind() != types.FieldVal {
				return true
			}
			fv, ok := selection.Obj().(*types.Var)
			if !ok {
				return true
			}
			if _, guarded := guards[fv]; guarded {
				accesses = append(accesses, access{sel: x, field: fv, write: writes[x]})
			}
		}
		return true
	})
	for _, a := range accesses {
		g := guards[a.field]
		if !held(locks, g.mutex, types.ExprString(a.sel.X), int(a.sel.Pos()), a.write) {
			verb := "read"
			if a.write {
				verb = "written"
			}
			pass.Reportf(a.sel.Pos(),
				"%s.%s is %s without holding %s (field is annotated `guarded by %s`; lock it, or rename the function *Locked if the caller holds it)",
				types.ExprString(a.sel.X), a.field.Name(), verb, g.mutex.Name(), g.mutex.Name())
		}
	}
}

// held reports whether some earlier lock call on the same base covers
// the access; writes require a write lock.
func held(locks []lockCall, mutex *types.Var, base string, pos int, write bool) bool {
	for _, l := range locks {
		if l.mutex == mutex && l.base == base && l.pos < pos && !(write && l.read) {
			return true
		}
	}
	return false
}

// writeTargets marks the selector expressions that are written: LHS of
// assignments and IncDec targets.
func writeTargets(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	writes := make(map[*ast.SelectorExpr]bool)
	mark := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			writes[sel] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(s.X)
		case *ast.UnaryExpr:
			if s.Op.String() == "&" {
				mark(s.X) // taking the address escapes the guard; treat as write
			}
		}
		return true
	})
	return writes
}
