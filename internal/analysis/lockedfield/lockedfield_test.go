package lockedfield_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/lockedfield"
)

func TestAnalyzer(t *testing.T) {
	analysis.RunFixture(t, "testdata", "a", lockedfield.Analyzer)
}
