// Package a exercises lockedfield: guarded-field accesses outside a
// lexically held lock fire; locked paths, *Locked functions and
// constructors do not.
package a

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type broken struct {
	// guarded by nope
	x int // want `annotation names "nope", which is not a sync.Mutex/RWMutex field`
}

// newCounter may initialize guarded fields in a composite literal.
func newCounter() *counter {
	return &counter{n: 1}
}

func (c *counter) locked() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

func (c *counter) unlockedRead() int {
	return c.n // want `c.n is read without holding mu`
}

func (c *counter) unlockedWrite() {
	c.n = 7 // want `c.n is written without holding mu`
}

func (c *counter) unlockedIncr() {
	c.n++ // want `c.n is written without holding mu`
}

// snapshotLocked follows the caller-holds contract: no finding.
func (c *counter) snapshotLocked() int {
	return c.n
}

// otherBase locks a, so touching b is still unguarded.
func otherBase(a, b *counter) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n = 1
	b.n = 1 // want `b.n is written without holding mu`
}

type rw struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

func (r *rw) read() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

// writeUnderRLock holds only the read lock; the write still fires.
func (r *rw) writeUnderRLock() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.v = 1 // want `r.v is written without holding mu`
}

func (c *counter) suppressed() int {
	//lint:ignore lockedfield single-goroutine init phase in this fixture
	return c.n
}
