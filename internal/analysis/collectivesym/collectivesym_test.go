package collectivesym_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/collectivesym"
)

func TestAnalyzer(t *testing.T) {
	analysis.RunFixture(t, "testdata", "a", collectivesym.Analyzer)
}
