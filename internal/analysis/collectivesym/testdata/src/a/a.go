// Package a exercises collectivesym: collectives guarded by
// rank-conditional branches fire, symmetric ones do not.
package a

import (
	"repro/internal/comm"
	"repro/internal/obs"
)

// symmetric collectives are fine at any nesting that is not
// rank-conditional.
func symmetric(c *comm.Communicator, steps int) {
	c.Barrier()
	for s := 0; s < steps; s++ {
		if s%2 == 0 {
			c.AllReduceSum(nil)
		}
	}
	if c.Size() > 1 {
		c.Barrier()
	}
}

func direct(c *comm.Communicator) {
	if c.Rank() == 0 {
		c.Barrier() // want `rank-conditional if`
	}
}

// tainted: the condition uses a local two assignments removed from the
// rank expression; the fixpoint taint pass must carry it through.
func tainted(c *comm.Communicator) {
	primary := c.Rank() == 0
	ok := primary
	if ok {
		c.AllReduceSum(nil) // want `rank-conditional if`
	}
}

func elseBranch(c *comm.Communicator) {
	if c.Rank() == 0 {
		_ = 1
	} else {
		c.Gather(nil, 0) // want `rank-conditional if`
	}
}

func switchCases(c *comm.Communicator, x int) {
	switch c.Rank() {
	case 0:
		c.Barrier() // want `rank-conditional switch`
	}
	switch x {
	case 1:
		c.Barrier() // tag is not rank-derived: fine
	}
}

// conditions themselves are evaluated by every rank, so a collective
// inside the condition expression is symmetric.
func inCondition(c *comm.Communicator) {
	if c.AllReduceScalarSum(1) > 0 {
		_ = 1
	}
}

// point-to-point transfers are rank-addressed by design.
func p2p(c *comm.Communicator) {
	if c.Rank() == 0 {
		c.Send(1, nil)
	} else {
		_ = c.Recv(0)
	}
}

// funcLit: collectives inside a rank-guarded closure body still fire.
func funcLit(c *comm.Communicator) {
	if c.Rank() == 0 {
		f := func() {
			c.Barrier() // want `rank-conditional if`
		}
		f()
	}
}

func suppressed(c *comm.Communicator) {
	if c.Rank() == 0 {
		//lint:ignore collectivesym deliberate leader-only sentinel for this fixture
		c.Broadcast(nil, 0)
	}
}

// survivorGuard models the elastic-training bug class: gating a collective
// on "did my rank survive" is still a rank-derived condition — the dead
// rank's peers would rendezvous without it and hang. Generation membership
// must be rebuilt by re-rendezvous, never by skipping collectives.
func survivorGuard(c *comm.Communicator, failedRank int) {
	survivor := c.Rank() != failedRank
	if survivor {
		c.AllReduceSum(nil) // want `rank-conditional if`
	}
}

// instrumented is the traced training-step shape: spans and instants
// wrap the collectives, but every rank records and every rank calls the
// same collective sequence, so nothing fires. Rows are nil-safe by
// contract, which is why no tracer-presence guard ever wraps a
// collective.
func instrumented(c *comm.Communicator, row *obs.Rank, steps int) {
	for s := 0; s < steps; s++ {
		sp := row.Begin("grad-sync", "comm/dp")
		c.AllReduceSum(nil)
		sp.EndBytes(64)
		row.Instant("step", "train")
	}
	done := row.Begin("barrier", "comm/dp")
	c.Barrier()
	done.End()
}

// tracedLeaderOnly: instrumentation does not launder a rank guard — a
// collective under the rank conditional fires even with a span around it.
func tracedLeaderOnly(c *comm.Communicator, row *obs.Rank) {
	if c.Rank() == 0 {
		sp := row.Begin("broadcast", "comm/tp")
		c.Broadcast(nil, 0) // want `rank-conditional if`
		sp.End()
	}
}

// recordLeaderOnly models the "only trace rank 0" anti-pattern drifting
// into the collective itself: the guard taints through a local and the
// collective inside it fires.
func recordLeaderOnly(c *comm.Communicator, row *obs.Rank) {
	record := c.Rank() == 0
	if record {
		row.Instant("flush", "train")
		c.AllReduceSum(nil) // want `rank-conditional if`
	}
}

// generationLoop is the symmetric shape the elastic supervisor actually
// uses: every rank of the generation runs the same step range and the same
// collectives; boundaries and step counts are rank-independent, so the
// barriers and reductions sit outside any rank conditional.
func generationLoop(c *comm.Communicator, start, end int, checkpointEvery int) {
	for s := start; s < end; s++ {
		c.AllReduceSum(nil)
		if checkpointEvery > 0 && (s+1)%checkpointEvery == 0 {
			if c.Rank() == 0 {
				_ = s // leader-only bookkeeping, no collective
			}
			c.Barrier()
		}
	}
}
