// Package comm is a fixture stub: the analyzer matches by import path
// and method name only, so the bodies are empty.
package comm

// Tensor stands in for the real tensor type.
type Tensor struct{}

// Communicator mirrors the collective surface of the real package.
type Communicator struct{ rank, size int }

func (c *Communicator) Rank() int { return c.rank }

func (c *Communicator) Size() int { return c.size }

func (c *Communicator) Barrier() {}

func (c *Communicator) AllGather(x *Tensor) []*Tensor { return nil }

func (c *Communicator) AllReduceSum(x *Tensor) *Tensor { return x }

func (c *Communicator) AllReduceScalarSum(v float64) float64 { return v }

func (c *Communicator) Broadcast(x *Tensor, root int) *Tensor { return x }

func (c *Communicator) Gather(x *Tensor, root int) []*Tensor { return nil }

func (c *Communicator) Send(to int, x *Tensor) {}

func (c *Communicator) Recv(from int) *Tensor { return nil }
