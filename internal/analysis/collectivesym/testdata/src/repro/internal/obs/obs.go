// Package obs is a fixture stub of the tracing surface instrumented
// code wraps around collectives; the analyzer matches comm methods, not
// obs, so the bodies are empty.
package obs

// Rank stands in for one per-rank event row.
type Rank struct{}

// Span stands in for an open span handle.
type Span struct{}

func (r *Rank) Begin(name, cat string) Span { return Span{} }

func (r *Rank) Instant(name, cat string) {}

func (s Span) End() {}

func (s Span) EndBytes(bytes int64) {}
