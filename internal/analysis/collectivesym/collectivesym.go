// Package collectivesym flags comm collectives that are reachable only
// under a rank-conditional branch — the classic SPMD desync.
//
// Every rank of a comm.Group must execute the same collective sequence;
// a collective nested under `if rank == 0 { ... }` (or any branch whose
// condition derives from the rank, the mesh coordinate, or a
// leader/root flag) rendezvouses with peers that never arrive and
// surfaces only as a hang — or, worse, pairs with a *different*
// collective issued by the other ranks. The analyzer performs a small
// intra-function taint pass so conditions on locals derived from rank
// expressions (`lead := coord.TP == 0; if lead { ... }`) are caught
// too. Deliberately asymmetric protocols (e.g. a leader broadcasting a
// shutdown sentinel that followers match in their next loop iteration)
// must say so with //lint:ignore collectivesym <reason>.
package collectivesym

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// commPath is the package whose collectives are guarded.
const commPath = "repro/internal/comm"

// collectives are the rendezvous methods of comm.Communicator: every
// rank of the group must call them in lockstep. Send/Recv are excluded —
// point-to-point transfers are rank-addressed by design.
var collectives = map[string]bool{
	"Barrier":            true,
	"AllGather":          true,
	"AllGatherConcat":    true,
	"AllReduceSum":       true,
	"AllReduceMean":      true,
	"AllReduceMax":       true,
	"AllReduceScalarSum": true,
	"ReduceScatterSum":   true,
	"Broadcast":          true,
	"Gather":             true,
	"RingAllReduceSum":   true,
}

// Analyzer flags collective calls guarded by rank-dependent conditions.
var Analyzer = &analysis.Analyzer{
	Name: "collectivesym",
	Doc: "report comm.Communicator collectives reachable only under a rank-conditional branch; " +
		"all ranks of a group must execute the same collective sequence",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, taint: taintedLocals(pass, fd.Body)}
			w.stmt(fd.Body, nil)
		}
	}
	return nil
}

// cond is one enclosing rank-dependent branch.
type cond struct {
	pos  token.Pos
	what string // "if" or "switch"
}

type walker struct {
	pass  *analysis.Pass
	taint map[types.Object]bool
}

// stmt walks a statement under the given stack of rank-conditional
// frames, extending the stack at rank-dependent if/switch branches and
// reporting any collective call found under a non-empty stack.
func (w *walker) stmt(n ast.Node, conds []cond) {
	switch s := n.(type) {
	case nil:
	case *ast.IfStmt:
		w.scanExpr(s.Cond, conds)
		inner := conds
		if w.rankDep(s.Cond) {
			inner = append(conds[:len(conds):len(conds)], cond{pos: s.Cond.Pos(), what: "if"})
		}
		if s.Init != nil {
			w.stmt(s.Init, conds)
		}
		w.stmt(s.Body, inner)
		w.stmt(s.Else, inner)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, conds)
		}
		dep := s.Tag != nil && w.rankDep(s.Tag)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			inner := conds
			caseDep := dep
			for _, e := range cc.List {
				w.scanExpr(e, conds)
				caseDep = caseDep || w.rankDep(e)
			}
			if caseDep {
				inner = append(conds[:len(conds):len(conds)], cond{pos: s.Pos(), what: "switch"})
			}
			for _, st := range cc.Body {
				w.stmt(st, inner)
			}
		}
	default:
		// Every other node: scan embedded expressions for collective
		// calls at the current depth and recurse into child statements.
		ast.Inspect(n, func(c ast.Node) bool {
			switch cn := c.(type) {
			case *ast.IfStmt, *ast.SwitchStmt:
				w.stmt(cn.(ast.Stmt), conds)
				return false
			case *ast.CallExpr:
				w.checkCall(cn, conds)
			}
			return true
		})
	}
}

// scanExpr reports collectives inside a condition expression itself,
// which sits at the enclosing depth (all ranks evaluate the condition).
func (w *walker) scanExpr(e ast.Expr, conds []cond) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok {
			w.checkCall(call, conds)
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr, conds []cond) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := w.pass.Info.Uses[sel.Sel]
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != commPath || !collectives[obj.Name()] {
		return
	}
	if len(conds) == 0 {
		return
	}
	at := w.pass.Fset.Position(conds[len(conds)-1].pos)
	w.pass.Reportf(call.Pos(),
		"collective %s is reachable only under a rank-conditional %s (condition at %s:%d); every rank of the group must execute the same collective sequence",
		obj.Name(), conds[len(conds)-1].what, at.Filename, at.Line)
}

// rankDep reports whether the expression derives from rank identity: it
// mentions a rank-like name, calls a rank accessor, or uses a local the
// taint pass marked as rank-derived.
func (w *walker) rankDep(e ast.Expr) bool {
	dep := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if rankName(x.Name) || w.taint[w.pass.Info.Uses[x]] {
				dep = true
			}
		case *ast.SelectorExpr:
			if rankName(x.Sel.Name) {
				dep = true
			}
		}
		return !dep
	})
	return dep
}

// rankName matches identifiers that denote rank identity.
func rankName(name string) bool {
	l := strings.ToLower(name)
	switch l {
	case "lead", "leader", "islead", "isleader", "root", "isroot":
		return true
	}
	return strings.Contains(l, "rank") || strings.Contains(l, "coord")
}

// taintedLocals runs a small fixpoint over the function body: a local is
// rank-derived when any assignment to it mentions a rank-like name or
// another rank-derived local. Bounded at a handful of passes — taint
// chains longer than that do not occur in honest code.
func taintedLocals(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	taint := make(map[types.Object]bool)
	mentions := func(e ast.Expr) bool {
		dep := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.Ident:
				if rankName(x.Name) || taint[pass.Info.Uses[x]] {
					dep = true
				}
			case *ast.SelectorExpr:
				if rankName(x.Sel.Name) {
					dep = true
				}
			}
			return !dep
		})
		return dep
	}
	lhsObj := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			return obj
		}
		return pass.Info.Uses[id]
	}
	for round := 0; round < 4; round++ {
		grew := false
		mark := func(obj types.Object) {
			if obj != nil && !taint[obj] {
				taint[obj] = true
				grew = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i, lhs := range s.Lhs {
						if mentions(s.Rhs[i]) {
							mark(lhsObj(lhs))
						}
					}
				} else if len(s.Rhs) == 1 && mentions(s.Rhs[0]) {
					for _, lhs := range s.Lhs {
						mark(lhsObj(lhs))
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					switch {
					case len(s.Values) == len(s.Names) && mentions(s.Values[i]):
						mark(pass.Info.Defs[name])
					case len(s.Values) == 1 && len(s.Names) > 1 && mentions(s.Values[0]):
						mark(pass.Info.Defs[name])
					}
				}
			case *ast.RangeStmt:
				if s.X != nil && mentions(s.X) {
					if s.Key != nil {
						mark(lhsObj(s.Key))
					}
					if s.Value != nil {
						mark(lhsObj(s.Value))
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}
	return taint
}
