// Package analysis is the repository's static-analysis framework: a
// self-contained analogue of golang.org/x/tools/go/analysis (which the
// build environment does not vendor) sized to this project's needs.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. The Loader type-checks the whole module from source using
// only the standard library (go/parser + go/types, with `go list -deps`
// supplying the file sets and dependency order), so the suite runs
// anywhere the Go toolchain runs, offline. cmd/dchag-vet is the
// multichecker driver; the analyzers themselves live in subpackages
// (collectivesym, commerr, lockedfield, hotalloc).
//
// Findings are suppressed with staticcheck-style markers:
//
//	//lint:ignore collectivesym matched by the followers' next-iteration Broadcast
//
// placed on the flagged line or the line above it. The marker names one
// or more analyzers (comma-separated, or "all") and MUST carry a reason;
// a reasonless marker is itself reported. See DESIGN.md "Static
// analysis" for the annotation contracts the analyzers define
// ("guarded by <mu>", "dchag:hotpath").
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check: a name (used in //lint:ignore markers and
// diagnostics), documentation, and a Run function applied to each package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppression markers.
	// It must be a single word.
	Name string
	// Doc is the analyzer's user-facing documentation: first line a
	// summary, the rest the full contract.
	Doc string
	// Run inspects one package via the Pass and reports findings through
	// pass.Reportf. A returned error is an analyzer failure (not a
	// finding) and aborts the run.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, comments included.
	Files []*ast.File
	// Pkg is the type-checked package; Info its use/def/selection maps.
	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: which analyzer, where, and what.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies every analyzer to the package unit and returns the
// surviving findings: suppression markers in the unit's files are
// honored, and malformed markers (no reason) are reported as findings of
// the pseudo-analyzer "lintignore". The result is sorted by position.
func Run(unit *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     unit.Fset,
			Files:    unit.Files,
			Pkg:      unit.Types,
			Info:     unit.Info,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, unit.Path, err)
		}
	}
	sup := collectSuppressions(unit.Fset, unit.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppresses(d.Analyzer, d.Pos) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, sup.malformed...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return kept, nil
}

// suppressions maps file -> line -> analyzer names ignored there.
type suppressions struct {
	byLine    map[string]map[int][]string
	malformed []Diagnostic
}

// ignoreMarker is the suppression prefix the analyzers respect.
const ignoreMarker = "//lint:ignore"

// collectSuppressions scans the files' comments for //lint:ignore
// markers. A marker suppresses findings on its own line and on the line
// below it (so it works both as a trailing comment and on the preceding
// line, the staticcheck convention).
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, ignoreMarker) {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignoreMarker))
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Diagnostic{
						Analyzer: "lintignore",
						Pos:      pos,
						Message:  "malformed //lint:ignore: want \"//lint:ignore <analyzers> <reason>\"",
					})
					continue
				}
				names := strings.Split(fields[0], ",")
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					s.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
	}
	return s
}

func (s *suppressions) suppresses(analyzer string, pos token.Position) bool {
	for _, name := range s.byLine[pos.Filename][pos.Line] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}
