package debugserver

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestStartServesPprofIndex(t *testing.T) {
	addr, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"goroutine", "heap"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("pprof index missing %q profile", want)
		}
	}
}

func TestStartRejectsBadAddr(t *testing.T) {
	if _, err := Start("definitely-not-an-address:-1"); err == nil {
		t.Fatal("want an error for an unbindable address")
	}
}
