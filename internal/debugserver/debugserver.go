// Package debugserver exposes net/http/pprof on a dedicated opt-in
// listener for the dchag binaries' -debug-addr flag.
//
// The profiling endpoints are kept off the serving mux so a public
// -listen address never leaks them, and the flag defaults to off: the
// endpoints reveal heap contents, goroutine stacks, and the process
// command line, so they must never be bound on an untrusted network.
// Bind 127.0.0.1:0 (or another loopback address) and tunnel if remote
// access is needed.
package debugserver

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Start binds addr and serves the pprof endpoints on it in a background
// goroutine, returning the bound address (useful with a ":0" port). The
// listener stays open for the life of the process; errors after bind are
// dropped, matching the fire-and-forget diagnostics role.
func Start(addr string) (net.Addr, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go http.Serve(ln, mux) //nolint:errcheck // diagnostics listener lives for the process
	return ln.Addr(), nil
}
