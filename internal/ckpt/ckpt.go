// Package ckpt implements shard-aware, reshardable checkpointing for the
// repository's training runs: the durable format behind `dchag-train -save /
// -load / -resume`.
//
// A checkpoint is a directory holding one self-describing shard file per
// saving rank plus a small JSON manifest (written last, so a complete
// manifest implies a complete checkpoint). Each shard file serializes that
// rank's state Tree: one Leaf per parameter carrying the value buffer, the
// parameter's shard annotation (nn.ShardInfo — logical name, shard axis,
// full logical shape, [lo, hi) bounds), and the optimizer's moment buffers
// for that parameter (optim.State, keyed by parameter name). Moment buffers
// share their parameter's shard layout, which is what makes optimizer state
// reshardable alongside the weights.
//
// On load the Checkpoint assembles every logical tensor from whatever
// sharding it was saved under — whole replicas are deduplicated, shard
// pieces are tiled along their axis and verified to cover the full extent —
// and re-slices them for the loading topology: save at p ranks, restore at
// q ranks, including q = 1 (serial) in either direction. The load path —
// Open, OpenLatest, ListSteps, LatestDir, and everything they call — is
// strictly read-only: it never creates, renames, or touches a file, so
// checkpoints can be served from read-only mounts (the serving engine's
// contract, pinned by TestOpenIsReadOnly). The legacy bare-gob
// nn.SaveParams/LoadParams remain as the thin same-topology compatibility
// path; this package supersedes them for anything distributed.
package ckpt

import (
	"fmt"
	"sort"

	"repro/internal/nn"
	"repro/internal/optim"
)

// Format identifies the checkpoint layout. Bump the suffix on any breaking
// change so mixed-version directories are refused mechanically.
const Format = "dchag-ckpt/v1"

// Leaf is one parameter's slot in the state tree: the value buffer, the
// shard annotation (zero-valued FullShape means the parameter is whole),
// and the optimizer moment buffers keyed by buffer name.
type Leaf struct {
	// Name is the rank-local parameter name (optimizer state key).
	Name string
	// Logical, Axis, FullShape, Lo, Hi mirror nn.ShardInfo; FullShape is nil
	// for whole (unsharded/replicated) parameters and Logical then equals
	// Name.
	Logical   string
	Axis      int
	FullShape []int
	Lo, Hi    int
	// Shape and Values hold this rank's slice of the parameter.
	Shape  []int
	Values []float64
	// Opt holds the optimizer's moment buffers for this parameter, each the
	// same length as Values. Empty when the optimizer keeps no per-parameter
	// state.
	Opt map[string][]float64
}

// Tree is one rank's named, shard-annotated state snapshot: every parameter
// leaf plus the optimizer algorithm and step count.
type Tree struct {
	// Format guards against reading shard files of a different layout.
	Format string
	// OptAlgo and OptStep mirror optim.State; OptAlgo is empty when the
	// tree was built without an optimizer.
	OptAlgo string
	OptStep int
	Leaves  []Leaf
}

// BuildTree snapshots params (and, when opt is non-nil, its state) into a
// Tree. Values and moments are deep copies, safe to serialize while
// training continues.
func BuildTree(params []*nn.Param, opt optim.Stateful) Tree {
	tree := Tree{Format: Format}
	var st optim.State
	if opt != nil {
		st = opt.ExportState()
		tree.OptAlgo = st.Algo
		tree.OptStep = st.Step
	}
	for _, p := range params {
		leaf := Leaf{
			Name:    p.Name,
			Logical: p.LogicalKey(),
			Shape:   append([]int(nil), p.W.Shape...),
			Values:  append([]float64(nil), p.W.Data...),
		}
		if p.Shard != nil {
			leaf.Axis = p.Shard.Axis
			leaf.FullShape = append([]int(nil), p.Shard.FullShape...)
			leaf.Lo, leaf.Hi = p.Shard.Lo, p.Shard.Hi
		}
		if m, ok := st.Moments[p.Name]; ok {
			leaf.Opt = make(map[string][]float64, len(m))
			for k, buf := range m {
				leaf.Opt[k] = buf // ExportState already deep-copies
			}
		}
		tree.Leaves = append(tree.Leaves, leaf)
	}
	return tree
}

// sharded reports whether the leaf carries a shard annotation.
func (l Leaf) sharded() bool { return l.FullShape != nil }

// optKeys returns the leaf's moment buffer names, sorted for deterministic
// error messages and assembly.
func (l Leaf) optKeys() []string {
	keys := make([]string, 0, len(l.Opt))
	for k := range l.Opt {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func numel(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validate checks a leaf's internal consistency before assembly.
func (l Leaf) validate() error {
	if numel(l.Shape) != len(l.Values) {
		return fmt.Errorf("ckpt: leaf %q has %d values for shape %v", l.Name, len(l.Values), l.Shape)
	}
	for k, buf := range l.Opt {
		if len(buf) != len(l.Values) {
			return fmt.Errorf("ckpt: leaf %q moment %q has %d values, parameter has %d", l.Name, k, len(buf), len(l.Values))
		}
	}
	if !l.sharded() {
		return nil
	}
	if l.Axis < 0 || l.Axis >= len(l.FullShape) {
		return fmt.Errorf("ckpt: leaf %q shard axis %d out of range for %v", l.Name, l.Axis, l.FullShape)
	}
	if l.Lo < 0 || l.Hi <= l.Lo || l.Hi > l.FullShape[l.Axis] {
		return fmt.Errorf("ckpt: leaf %q shard bounds [%d,%d) invalid for extent %d", l.Name, l.Lo, l.Hi, l.FullShape[l.Axis])
	}
	for i, d := range l.FullShape {
		want := d
		if i == l.Axis {
			want = l.Hi - l.Lo
		}
		if l.Shape[i] != want {
			return fmt.Errorf("ckpt: leaf %q shape %v is not the [%d,%d) slice of %v along axis %d",
				l.Name, l.Shape, l.Lo, l.Hi, l.FullShape, l.Axis)
		}
	}
	return nil
}
