package ckpt

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

// TestAssembleMatchesOpen: assembling shard trees in memory must produce
// the same logical tensors as writing them to disk and reading them back —
// the equivalence the elastic supervisor's zero-I/O reshard path rests on.
func TestAssembleMatchesOpen(t *testing.T) {
	const rows, cols = 8, 3
	ranks := shardedParams(t, 4, rows, cols, fill)
	man := Manifest{Format: Format, Partitions: 4, Step: 7}

	dir := t.TempDir()
	saveRanks(t, dir, ranks, nil, man)
	opened, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	trees := make([]Tree, len(ranks))
	for r, params := range ranks {
		trees[r] = BuildTree(params, nil)
	}
	man.World = len(trees)
	assembled, err := Assemble(man, trees)
	if err != nil {
		t.Fatal(err)
	}

	for _, key := range opened.Keys() {
		want, _ := opened.LogicalTensor(key)
		got, ok := assembled.LogicalTensor(key)
		if !ok {
			t.Fatalf("assembled checkpoint missing %q", key)
		}
		if !tensor.SameShape(want, got) {
			t.Fatalf("%q shape %v vs %v", key, want.Shape, got.Shape)
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("%q element %d: %v vs %v", key, i, want.Data[i], got.Data[i])
			}
		}
	}
	if assembled.Manifest.Step != 7 {
		t.Fatalf("manifest step = %d", assembled.Manifest.Step)
	}
}

// TestAssembleDetectsMissingShard: dropping one rank's tree must fail the
// tiling check (the condition that forces the supervisor onto the
// checkpoint-restore path after a death with no surviving replica).
func TestAssembleDetectsMissingShard(t *testing.T) {
	ranks := shardedParams(t, 4, 8, 3, fill)
	var trees []Tree
	for r, params := range ranks {
		if r == 2 {
			continue
		}
		trees = append(trees, BuildTree(params, nil))
	}
	_, err := Assemble(Manifest{Format: Format, Partitions: 4, World: 3}, trees)
	if err == nil {
		t.Fatal("assemble succeeded with a missing shard")
	}
	if !strings.Contains(err.Error(), "gap") {
		t.Fatalf("err = %v, want tiling gap", err)
	}
}

// TestAssembleReplicaCoverage: with a replicated copy of every shard (the
// DP>1 case), any single rank's tree can be dropped and assembly still
// succeeds — replica dedup picks the surviving copy.
func TestAssembleReplicaCoverage(t *testing.T) {
	const rows, cols = 8, 3
	ranks := shardedParams(t, 4, rows, cols, fill)
	var trees []Tree
	for r, params := range ranks {
		if r == 1 {
			continue // dead rank
		}
		trees = append(trees, BuildTree(params, nil))
	}
	// Rank 1's shard survives as its DP twin's identical copy.
	twin := shardedParams(t, 4, rows, cols, fill)[1]
	trees = append(trees, BuildTree(twin, nil))
	ck, err := Assemble(Manifest{Format: Format, Partitions: 4, World: 4}, trees)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := ck.LogicalTensor("w")
	if !ok {
		t.Fatal("logical tensor missing")
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if got.At(i, j) != fill(i, j) {
				t.Fatalf("assembled[%d,%d] = %v, want %v", i, j, got.At(i, j), fill(i, j))
			}
		}
	}
}

// TestAssembleEmpty rejects a treeless assembly outright.
func TestAssembleEmpty(t *testing.T) {
	if _, err := Assemble(Manifest{Format: Format}, nil); err == nil {
		t.Fatal("want error for empty tree set")
	}
}
