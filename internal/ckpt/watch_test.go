package ckpt

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// watchOpts polls fast so the tests stay quick; MaxInterval still above
// Interval exercises the backoff arithmetic.
func watchOpts() WatchOptions {
	return WatchOptions{Interval: 2 * time.Millisecond, MaxInterval: 10 * time.Millisecond}
}

// commitStep writes a minimal committed checkpoint (one shard + manifest)
// into the retention step directory for step under root.
func commitStep(t *testing.T, root string, step int) string {
	t.Helper()
	dir := StepDir(root, step)
	writeCommitted(t, dir, step)
	return dir
}

// writeCommitted writes a complete single-slot checkpoint into dir.
func writeCommitted(t *testing.T, dir string, step int) {
	t.Helper()
	if err := WriteShard(dir, 0, Tree{Format: Format}); err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(dir, Manifest{World: 1, Step: step}); err != nil {
		t.Fatal(err)
	}
}

// waitUpdate receives the next update or fails after a deadline.
func waitUpdate(t *testing.T, ch <-chan Update) Update {
	t.Helper()
	select {
	case u, ok := <-ch:
		if !ok {
			t.Fatal("watch channel closed while an update was expected")
		}
		return u
	case <-time.After(5 * time.Second):
		t.Fatal("no watch update within 5s")
	}
	panic("unreachable")
}

// expectQuiet asserts no update arrives within a few poll intervals.
func expectQuiet(t *testing.T, ch <-chan Update) {
	t.Helper()
	select {
	case u := <-ch:
		t.Fatalf("unexpected update %+v", u)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestWatchLatestEmitsNewCommits pins the core contract: the checkpoint
// present at watch start is the baseline (not emitted), and each later
// committed step emits exactly one update resolving to its directory.
func TestWatchLatestEmitsNewCommits(t *testing.T) {
	root := t.TempDir()
	commitStep(t, root, 1)
	ch, stop := WatchLatest(root, watchOpts())
	defer stop()

	expectQuiet(t, ch) // the baseline step-1 checkpoint is not an update

	want2 := commitStep(t, root, 2)
	u := waitUpdate(t, ch)
	if u.Dir != want2 || u.Step != 2 {
		t.Fatalf("update %+v, want dir %s step 2", u, want2)
	}

	want5 := commitStep(t, root, 5)
	u = waitUpdate(t, ch)
	if u.Dir != want5 || u.Step != 5 {
		t.Fatalf("update %+v, want dir %s step 5", u, want5)
	}
}

// TestWatchLatestSkipsPartialSaves pins the commit rule: a step directory
// holding shards but no manifest — a save in flight, or crash debris —
// must never be emitted; the same directory emits once the manifest lands.
func TestWatchLatestSkipsPartialSaves(t *testing.T) {
	root := t.TempDir()
	commitStep(t, root, 1)
	ch, stop := WatchLatest(root, watchOpts())
	defer stop()

	// A partial (uncommitted) step-2 save: shard written, no manifest.
	partial := StepDir(root, 2)
	if err := WriteShard(partial, 0, Tree{Format: Format}); err != nil {
		t.Fatal(err)
	}
	expectQuiet(t, ch)

	// Unrelated debris must not emit either.
	if err := os.MkdirAll(filepath.Join(root, "not-a-step"), 0o755); err != nil {
		t.Fatal(err)
	}
	expectQuiet(t, ch)

	// The manifest is the commit point: once it lands, the update flows.
	if err := WriteManifest(partial, Manifest{World: 1, Step: 2}); err != nil {
		t.Fatal(err)
	}
	u := waitUpdate(t, ch)
	if u.Dir != partial || u.Step != 2 {
		t.Fatalf("update %+v, want dir %s step 2", u, partial)
	}
}

// TestWatchLatestEmptyBaseline starts the watch on a directory with no
// committed checkpoint at all: the first commit is an update (there is no
// baseline to supersede), partial states before it stay silent.
func TestWatchLatestEmptyBaseline(t *testing.T) {
	root := t.TempDir()
	ch, stop := WatchLatest(root, watchOpts())
	defer stop()

	expectQuiet(t, ch)
	want := commitStep(t, root, 3)
	u := waitUpdate(t, ch)
	if u.Dir != want || u.Step != 3 {
		t.Fatalf("update %+v, want dir %s step 3", u, want)
	}
}

// TestWatchLatestSingleSlotOverwrite pins in-place re-saves: under the
// single-slot layout the resolved path never changes, so the manifest's
// step count must drive the emission.
func TestWatchLatestSingleSlotOverwrite(t *testing.T) {
	dir := t.TempDir()
	writeCommitted(t, dir, 2)
	ch, stop := WatchLatest(dir, watchOpts())
	defer stop()

	expectQuiet(t, ch)
	writeCommitted(t, dir, 7) // overwrite in place at a later step
	u := waitUpdate(t, ch)
	if u.Dir != dir || u.Step != 7 {
		t.Fatalf("update %+v, want dir %s step 7", u, dir)
	}
	// A same-step rewrite does not supersede anything.
	writeCommitted(t, dir, 7)
	expectQuiet(t, ch)
}

// TestWatchLatestLatestWins pins the buffered latest-wins delivery: when
// several checkpoints commit while nobody is receiving, the consumer sees
// the newest one (possibly after an intermediate), never an older one
// after a newer one.
func TestWatchLatestLatestWins(t *testing.T) {
	root := t.TempDir()
	commitStep(t, root, 1)
	ch, stop := WatchLatest(root, watchOpts())
	defer stop()

	commitStep(t, root, 2)
	commitStep(t, root, 3)
	want := commitStep(t, root, 9)
	// Give the watcher time to observe all three and collapse the backlog.
	deadline := time.Now().Add(5 * time.Second)
	for {
		u := waitUpdate(t, ch)
		if u.Step == 9 {
			if u.Dir != want {
				t.Fatalf("update %+v, want dir %s", u, want)
			}
			return
		}
		if u.Step < 1 || u.Step > 9 || time.Now().After(deadline) {
			t.Fatalf("implausible update %+v", u)
		}
	}
}

// TestWatchLatestStop pins teardown: stop blocks until the goroutine has
// exited and the channel closes, so callers can leak-check.
func TestWatchLatestStop(t *testing.T) {
	root := t.TempDir()
	ch, stop := WatchLatest(root, watchOpts())
	stop()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after stop")
	}
	// A second stop call must not be needed; the watch is fully dead, so a
	// late commit never emits.
	commitStep(t, root, 1)
	time.Sleep(20 * time.Millisecond)
	if _, ok := <-ch; ok {
		t.Fatal("update emitted after stop")
	}
}
