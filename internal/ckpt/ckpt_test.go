package ckpt

import (
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// shardedParams builds `q` ranks' views of one logical [rows, cols] tensor
// named "w" sharded along axis 0, each rank's values filled from fill.
func shardedParams(t *testing.T, q, rows, cols int, fill func(r, c int) float64) [][]*nn.Param {
	t.Helper()
	if rows%q != 0 {
		t.Fatalf("rows %d not divisible by %d", rows, q)
	}
	per := rows / q
	out := make([][]*nn.Param, q)
	for r := 0; r < q; r++ {
		w := tensor.New(per, cols)
		for i := 0; i < per; i++ {
			for j := 0; j < cols; j++ {
				w.Set(fill(r*per+i, j), i, j)
			}
		}
		p := nn.NewParam("w", w).MarkShard("w", 0, []int{rows, cols}, r*per, (r+1)*per)
		out[r] = []*nn.Param{p}
	}
	return out
}

func fill(r, c int) float64 { return float64(100*r + c) }

func saveRanks(t *testing.T, dir string, ranks [][]*nn.Param, opts []optim.Stateful, m Manifest) {
	t.Helper()
	for r, params := range ranks {
		var opt optim.Stateful
		if opts != nil {
			opt = opts[r]
		}
		if err := WriteShard(dir, r, BuildTree(params, opt)); err != nil {
			t.Fatal(err)
		}
	}
	m.World = len(ranks)
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
}

func TestReshardValuesAcrossTopologies(t *testing.T) {
	const rows, cols = 12, 3
	dir := t.TempDir()
	saveRanks(t, dir, shardedParams(t, 4, rows, cols, fill), nil, Manifest{Partitions: 4})

	ck, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	full, ok := ck.LogicalTensor("w")
	if !ok {
		t.Fatal("logical tensor missing")
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if full.At(i, j) != fill(i, j) {
				t.Fatalf("assembled[%d,%d] = %v, want %v", i, j, full.At(i, j), fill(i, j))
			}
		}
	}
	// Restore at every dividing topology, including serial (whole).
	for _, q := range []int{1, 2, 3, 6, 12} {
		targets := shardedParams(t, q, rows, cols, func(int, int) float64 { return -1 })
		for r := 0; r < q; r++ {
			params := targets[r]
			if q == 1 {
				params = []*nn.Param{nn.NewParam("w", tensor.New(rows, cols))}
			}
			if err := ck.RestoreParams(params); err != nil {
				t.Fatalf("q=%d rank %d: %v", q, r, err)
			}
			p := params[0]
			lo := 0
			if p.Shard != nil {
				lo = p.Shard.Lo
			}
			for i := 0; i < p.W.Shape[0]; i++ {
				for j := 0; j < cols; j++ {
					if p.W.At(i, j) != fill(lo+i, j) {
						t.Fatalf("q=%d rank %d restored[%d,%d] = %v, want %v", q, r, i, j, p.W.At(i, j), fill(lo+i, j))
					}
				}
			}
		}
	}
}

func TestOptimizerStateReshards(t *testing.T) {
	const rows, cols = 4, 2
	dir := t.TempDir()
	ranks := shardedParams(t, 2, rows, cols, fill)
	opts := make([]optim.Stateful, 2)
	for r, params := range ranks {
		opt := optim.NewAdamW(params, 0.1, 0)
		// Distinct gradients per row so resharded moments are recognizable.
		for i := range params[0].Grad.Data {
			params[0].Grad.Data[i] = float64(r*rows/2*cols + i + 1)
		}
		opt.Step()
		opts[r] = opt
	}
	saveRanks(t, dir, ranks, opts, Manifest{Partitions: 2, Step: 1, OptAlgo: "adamw"})

	ck, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Restore serially: the whole-parameter moments must be the
	// concatenation of the two ranks' moments.
	whole := []*nn.Param{nn.NewParam("w", tensor.New(rows, cols))}
	opt := optim.NewAdamW(whole, 0.1, 0)
	if err := ck.RestoreParams(whole); err != nil {
		t.Fatal(err)
	}
	if err := ck.RestoreOptimizer(opt, whole); err != nil {
		t.Fatal(err)
	}
	st := opt.ExportState()
	if st.Step != 1 {
		t.Fatalf("restored step %d, want 1", st.Step)
	}
	m := st.Moments["w"]["m"]
	half := len(m) / 2
	src0 := opts[0].ExportState().Moments["w"]["m"]
	src1 := opts[1].ExportState().Moments["w"]["m"]
	for i := 0; i < half; i++ {
		if m[i] != src0[i] || m[half+i] != src1[i] {
			t.Fatalf("moment assembly wrong at %d", i)
		}
	}
}

func TestOpenRejectsGapsAndOverlaps(t *testing.T) {
	dir := t.TempDir()
	mk := func(lo, hi int) []*nn.Param {
		w := tensor.New(hi-lo, 2)
		return []*nn.Param{nn.NewParam("w", w).MarkShard("w", 0, []int{8, 2}, lo, hi)}
	}
	saveRanks(t, dir, [][]*nn.Param{mk(0, 3), mk(4, 8)}, nil, Manifest{})
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "gap or overlap") {
		t.Fatalf("want gap error, got %v", err)
	}
}

func TestOpenRejectsShortCoverage(t *testing.T) {
	dir := t.TempDir()
	w := tensor.New(4, 2)
	p := []*nn.Param{nn.NewParam("w", w).MarkShard("w", 0, []int{8, 2}, 0, 4)}
	saveRanks(t, dir, [][]*nn.Param{p}, nil, Manifest{})
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "cover") {
		t.Fatalf("want coverage error, got %v", err)
	}
}

func TestOpenDeduplicatesReplicatedShards(t *testing.T) {
	// FSDP-style replication: two ranks saving the same [lo,hi) slice must
	// collapse to one piece.
	dir := t.TempDir()
	mk := func(lo, hi int) []*nn.Param {
		w := tensor.New(hi-lo, 1)
		for i := range w.Data {
			w.Data[i] = float64(lo + i)
		}
		return []*nn.Param{nn.NewParam("w", w).MarkShard("w", 0, []int{4, 1}, lo, hi)}
	}
	saveRanks(t, dir, [][]*nn.Param{mk(0, 2), mk(0, 2), mk(2, 4), mk(2, 4)}, nil, Manifest{})
	ck, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := ck.LogicalTensor("w")
	for i := 0; i < 4; i++ {
		if full.At(i, 0) != float64(i) {
			t.Fatalf("dedup assembly wrong at %d", i)
		}
	}
}

func TestRestoreParamsReportsAllErrors(t *testing.T) {
	dir := t.TempDir()
	params := []*nn.Param{nn.NewParam("a", tensor.New(2, 2))}
	saveRanks(t, dir, [][]*nn.Param{params}, nil, Manifest{})
	ck, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	bad := []*nn.Param{
		nn.NewParam("a", tensor.Full(7, 3, 3)), // shape mismatch
		nn.NewParam("b", tensor.New(1)),        // missing
	}
	err = ck.RestoreParams(bad)
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{`"a" logical shape`, `missing parameter "b"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
	// Nothing may have been written on error.
	if bad[0].W.Data[0] != 7 {
		t.Fatal("partial restore on error")
	}
}

func TestManifestFormatGuard(t *testing.T) {
	dir := t.TempDir()
	if err := WriteManifest(dir, Manifest{Format: "other/v9", World: 1}); err == nil {
		t.Fatal("want write-format error")
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("want missing-manifest error")
	}
}

func TestExtraKeys(t *testing.T) {
	dir := t.TempDir()
	params := []*nn.Param{
		nn.NewParam("keep", tensor.New(1)),
		nn.NewParam("extra", tensor.New(1)),
	}
	saveRanks(t, dir, [][]*nn.Param{params}, nil, Manifest{})
	ck, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := ck.ExtraKeys(params[:1])
	if len(got) != 1 || got[0] != "extra" {
		t.Fatalf("ExtraKeys = %v, want [extra]", got)
	}
}
